// Package api is the versioned public wire schema of the test
// generator: the JSON request/response types exchanged between clients,
// the atpgd job server, and the CLI tools. Every top-level message
// carries an explicit schema version field ("v") so readers can reject
// messages from the future and accept messages from the past
// deliberately rather than by accident.
//
// The package is a leaf: it imports only the standard library, defines
// no behavior beyond validation and encoding, and every type is plain
// data. Conversions from the engine's internal types live in the repro
// facade (SessionRequest, FromRequest, WireMetrics, WireResult), so the
// wire schema never depends on internal packages.
//
// Version history:
//
//	1 — initial schema: JobRequest/JobStatus/JobResult/MetricsSnapshot
//	    and the server status envelope.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Version is the current wire schema version, stamped into every
// message this package encodes.
const Version = 1

// Builtin macro names accepted in MacroSpec.Builtin.
const (
	// MacroIVConverter is the paper's CMOS IV-converter case study
	// (10 nodes, 10 MOSFETs, 55-fault dictionary). The default.
	MacroIVConverter = "iv-converter"
	// MacroSimpleIVConverter is the reduced single-stage variant
	// (9 nodes, 8 MOSFETs, 44-fault dictionary).
	MacroSimpleIVConverter = "simple-iv-converter"
)

// Box-construction modes accepted in RunOptions.BoxMode.
const (
	BoxModeGrid       = "grid"
	BoxModeSeed       = "seed"
	BoxModeMonteCarlo = "montecarlo"
)

// MacroSpec selects the macro under test and its test configurations.
type MacroSpec struct {
	// Builtin names a built-in macro (MacroIVConverter when empty and no
	// inline netlist is given).
	Builtin string `json:"builtin,omitempty"`
	// Netlist is an inline SPICE-like netlist; when set it overrides
	// Builtin.
	Netlist string `json:"netlist,omitempty"`
	// NetlistName labels an inline netlist in reports ("custom" when
	// empty).
	NetlistName string `json:"netlist_name,omitempty"`
	// ExtendedConfigs adds the SINAD extension configuration (#6) to the
	// paper's Table-1 set.
	ExtendedConfigs bool `json:"extended_configs,omitempty"`
	// ConfigDSL holds additional test configuration descriptions in the
	// Fig.-1 DSL, appended after the built-in configurations.
	ConfigDSL []string `json:"config_dsl,omitempty"`
}

// FaultSpec bounds the fault dictionary of a run.
type FaultSpec struct {
	// Limit keeps only the first n dictionary faults (0: all).
	Limit int `json:"limit,omitempty"`
}

// RunOptions tunes the generation session. The zero value selects the
// experiment-grade defaults.
type RunOptions struct {
	// Workers bounds the evaluation parallelism (0: GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// BoxMode selects the tolerance-box construction: BoxModeGrid
	// (default), BoxModeSeed (fast), or BoxModeMonteCarlo.
	BoxMode string `json:"box_mode,omitempty"`
	// BoxGridN is the per-axis sample count of grid boxes.
	BoxGridN int `json:"box_grid_n,omitempty"`
	// OptTol is the Brent/Powell optimizer tolerance.
	OptTol float64 `json:"opt_tol,omitempty"`
	// MCSamples and MCSeed tune BoxModeMonteCarlo calibration.
	MCSamples int   `json:"mc_samples,omitempty"`
	MCSeed    int64 `json:"mc_seed,omitempty"`
	// Retries arms the fault-tolerant retry policy with the given
	// optimizer attempt budget when > 1 (0 or 1: fail fast).
	Retries int `json:"retries,omitempty"`
	// AttemptTimeoutMS bounds each optimizer attempt under Retries.
	AttemptTimeoutMS int64 `json:"attempt_timeout_ms,omitempty"`
	// DisableLowRank turns off the retained-evaluator / low-rank solve
	// fast path of the impact search. Results are bit-identical either
	// way; the switch exists for benchmarking and debugging.
	DisableLowRank bool `json:"disable_lowrank,omitempty"`
	// StallTimeoutMS arms the stall watchdog: a fault×config optimizer
	// task that produces no evaluations for this long is cancelled and
	// quarantined with reason "stalled" (0: watchdog off).
	StallTimeoutMS int64 `json:"stall_timeout_ms,omitempty"`
	// BreakerFallbacks arms the low-rank circuit breaker: when more than
	// this many Woodbury fallbacks land inside the breaker window, the
	// session pins itself to the slow path for a cool-down (0: breaker
	// off). Results are bit-identical either way — the two paths are
	// numerically interchangeable; the breaker only stops wasted work.
	BreakerFallbacks int `json:"breaker_fallbacks,omitempty"`
	// BreakerWindowMS and BreakerCooldownMS tune the breaker's rate
	// window and slow-path pin duration (0: defaults of 1s / 5s).
	BreakerWindowMS   int64 `json:"breaker_window_ms,omitempty"`
	BreakerCooldownMS int64 `json:"breaker_cooldown_ms,omitempty"`
}

// CompactSpec tunes test-set compaction.
type CompactSpec struct {
	// Delta is the paper's δ loss budget (0 selects the default 0.1).
	Delta float64 `json:"delta,omitempty"`
}

// JobRequest is one ATPG job submission: macro and fault selection, the
// session options, and the compaction budget. A CLI run and a server
// job are the same typed object (see repro.SessionRequest /
// repro.SystemFromRequest).
type JobRequest struct {
	// V is the wire schema version (0 is normalized to 1 for
	// hand-written requests).
	V       int         `json:"v"`
	Macro   MacroSpec   `json:"macro"`
	Faults  FaultSpec   `json:"faults,omitempty"`
	Options RunOptions  `json:"options,omitempty"`
	Compact CompactSpec `json:"compact,omitempty"`
}

// Normalize fills defaulted fields: a zero version becomes 1, an empty
// macro becomes the built-in IV-converter.
func (r *JobRequest) Normalize() {
	if r.V == 0 {
		r.V = 1
	}
	if r.Macro.Builtin == "" && r.Macro.Netlist == "" {
		r.Macro.Builtin = MacroIVConverter
	}
}

// Validate checks the request against the schema this package
// implements: a known version, a known macro, a known box mode, and
// sane numeric bounds.
func (r JobRequest) Validate() error {
	if r.V < 1 || r.V > Version {
		return fmt.Errorf("api: unsupported request schema version %d (this server speaks v1..v%d)", r.V, Version)
	}
	if r.Macro.Netlist == "" {
		switch r.Macro.Builtin {
		case "", MacroIVConverter, MacroSimpleIVConverter:
		default:
			return fmt.Errorf("api: unknown builtin macro %q", r.Macro.Builtin)
		}
	}
	switch r.Options.BoxMode {
	case "", BoxModeGrid, BoxModeSeed, BoxModeMonteCarlo:
	default:
		return fmt.Errorf("api: unknown box mode %q", r.Options.BoxMode)
	}
	if r.Faults.Limit < 0 {
		return fmt.Errorf("api: negative fault limit %d", r.Faults.Limit)
	}
	if r.Compact.Delta < 0 || r.Compact.Delta >= 1 {
		return fmt.Errorf("api: compaction delta %g outside [0, 1)", r.Compact.Delta)
	}
	if r.Options.Workers < 0 || r.Options.Retries < 0 || r.Options.AttemptTimeoutMS < 0 {
		return fmt.Errorf("api: negative run option")
	}
	if r.Options.StallTimeoutMS < 0 || r.Options.BreakerFallbacks < 0 ||
		r.Options.BreakerWindowMS < 0 || r.Options.BreakerCooldownMS < 0 {
		return fmt.Errorf("api: negative run option")
	}
	return nil
}

// JobState is the lifecycle state of a server job.
type JobState string

const (
	// StateQueued: accepted and waiting for a worker slot.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateSucceeded: finished with a result.
	StateSucceeded JobState = "succeeded"
	// StateFailed: finished with an error.
	StateFailed JobState = "failed"
	// StateCanceled: canceled by DELETE before completion.
	StateCanceled JobState = "canceled"
	// StateInterrupted: the daemon died or drained mid-job; the job
	// resumes from its checkpoint on restart.
	StateInterrupted JobState = "interrupted"
)

// Terminal reports whether the state is final (the job will not run
// again on this daemon instance).
func (s JobState) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Verdict is the terminal classification of one fault, mirroring the
// runtime's taxonomy.
type Verdict string

const (
	VerdictDetected     Verdict = "detected"
	VerdictUndetectable Verdict = "undetectable"
	VerdictUndetermined Verdict = "undetermined"
	VerdictQuarantined  Verdict = "quarantined"
)

// ProgressInfo is the wire form of a live progress snapshot.
type ProgressInfo struct {
	Phase     string  `json:"phase"`
	Done      int64   `json:"done"`
	Total     int64   `json:"total"`
	Percent   float64 `json:"percent"`
	ElapsedMS int64   `json:"elapsed_ms"`
	ETAMS     int64   `json:"eta_ms,omitempty"`
	// Run-health counters from the fault-tolerant runtime.
	Quarantined      int64 `json:"quarantined,omitempty"`
	Retries          int64 `json:"retries,omitempty"`
	Undetermined     int64 `json:"undetermined,omitempty"`
	Resumed          int64 `json:"resumed,omitempty"`
	CheckpointWrites int64 `json:"checkpoint_writes,omitempty"`
}

// JobStatus is the lifecycle view of one job (GET /v1/jobs/{id}).
type JobStatus struct {
	V     int      `json:"v"`
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Created/Started/Finished are RFC 3339 timestamps ("" when the
	// transition has not happened).
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Progress is present while the job runs.
	Progress *ProgressInfo `json:"progress,omitempty"`
	// Verdicts counts faults per terminal verdict once the job finished.
	Verdicts map[Verdict]int `json:"verdicts,omitempty"`
	// Quarantined lists isolated task panics.
	Quarantined []QuarantineInfo `json:"quarantined,omitempty"`
	// Error is the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// Attempts counts how many times this daemon (re)started the job
	// (> 1 after a crash/drain resume).
	Attempts int `json:"attempts,omitempty"`
	// EventsDropped counts SSE events lost to slow subscribers of this
	// job's stream (the journal file remains complete). Absent on
	// records written before the histogram release.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// QuarantineInfo describes one isolated fault×config task the runtime
// took out of the run: a recovered panic or a stall-watchdog kill.
type QuarantineInfo struct {
	FaultID string `json:"fault_id"`
	Config  int    `json:"config"` // -1: whole-fault selection loop
	Phase   string `json:"phase"`
	Panic   string `json:"panic,omitempty"`
	// Reason classifies the quarantine: "panic" (default when absent on
	// old records) or "stalled" (stall-watchdog cancellation).
	Reason string `json:"reason,omitempty"`
}

// SolutionInfo is the wire form of one fault's generated test.
type SolutionInfo struct {
	FaultID string  `json:"fault_id"`
	Verdict Verdict `json:"verdict"`
	// Config is the winning configuration's paper ID (-1 when the fault
	// is unresolved).
	Config int       `json:"config"`
	Params []float64 `json:"params,omitempty"`
	// Sensitivity is S_f at the dictionary impact.
	Sensitivity    float64 `json:"sensitivity"`
	CriticalImpact float64 `json:"critical_impact,omitempty"`
	Evals          int     `json:"evals"`
	ImpactIters    int     `json:"impact_iters"`
	Attempts       int     `json:"attempts,omitempty"`
}

// TestInfo is one test of the compacted set.
type TestInfo struct {
	Config     int       `json:"config"`
	ConfigName string    `json:"config_name"`
	Params     []float64 `json:"params"`
	// Covers lists the fault IDs collapsed into this test.
	Covers []string `json:"covers"`
}

// CoverageInfo summarizes fault simulation of the compacted set.
type CoverageInfo struct {
	Detected   int      `json:"detected"`
	Total      int      `json:"total"`
	Percent    float64  `json:"percent"`
	Undetected []string `json:"undetected,omitempty"`
}

// JobResult is the deterministic outcome of a job (GET
// /v1/jobs/{id}/result): everything in it depends only on the request,
// never on timing, worker count, or resume history — so an interrupted
// and resumed job encodes to the same bytes as an uninterrupted one,
// and a server job to the same bytes as the equivalent CLI run.
type JobResult struct {
	V      int     `json:"v"`
	Macro  string  `json:"macro"`
	Faults int     `json:"faults"`
	Delta  float64 `json:"delta"`
	// Solutions holds one entry per dictionary fault, in dictionary
	// order.
	Solutions []SolutionInfo `json:"solutions"`
	// Tests is the compacted test set.
	Tests    []TestInfo   `json:"tests"`
	Coverage CoverageInfo `json:"coverage"`
}

// HistogramBucket is one non-empty bucket of a latency distribution:
// Count observations with values in [Lo, Hi] inclusive (nanoseconds for
// duration series). Buckets are non-cumulative and sorted ascending.
type HistogramBucket struct {
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
	Count uint64 `json:"n"`
}

// HistogramSnapshot is the wire form of one latency (or value)
// distribution: totals, extremes, precomputed percentiles, and the raw
// log-linear buckets for consumers that re-aggregate (the Prometheus
// exposition turns them cumulative). Percentiles are midpoint estimates
// within the histogram's documented relative-error bound.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// NamedHistogram pairs a distribution with its series name (e.g.
// "sim.op", "sim.newton_iters").
type NamedHistogram struct {
	Name string `json:"name"`
	HistogramSnapshot
}

// PhaseMetrics is the wire form of one engine phase's counters.
type PhaseMetrics struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	WallNS int64  `json:"wall_ns"`
	// Latency is the phase's per-unit wall-time distribution. Nil on
	// records written before schema additions in the histogram release
	// (decoders must tolerate absence) and omitted when empty.
	Latency *HistogramSnapshot `json:"latency,omitempty"`
}

// Avg returns the mean wall time per unit in nanoseconds.
func (p PhaseMetrics) Avg() int64 {
	if p.Count == 0 {
		return 0
	}
	return p.WallNS / p.Count
}

// CacheMetrics is the wire form of the nominal-response cache counters.
type CacheMetrics struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Shared    int64 `json:"shared"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// HitRate returns the fraction of lookups served without a fresh
// simulation.
func (c CacheMetrics) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// SolverMetrics is the wire form of the simulation kernel's counters.
type SolverMetrics struct {
	Stamps           uint64 `json:"stamps"`
	Factorizations   uint64 `json:"factorizations"`
	FactorReuses     uint64 `json:"factor_reuses"`
	NewtonIterations uint64 `json:"newton_iterations"`
	Solves           uint64 `json:"solves"`
	BaseBuilds       uint64 `json:"base_builds"`
	BaseHits         uint64 `json:"base_hits"`
	RecoveryAttempts uint64 `json:"recovery_attempts,omitempty"`
	Recoveries       uint64 `json:"recoveries,omitempty"`
	// Solver-economy counters of the low-rank fault fast path. Zero (and
	// omitted) on runs that never routed a fault through it, which keeps
	// pre-fast-path consumers byte-compatible.
	WoodburySolves      uint64 `json:"woodbury_solves,omitempty"`
	WoodburyFallbacks   uint64 `json:"woodbury_fallbacks,omitempty"`
	FaultyFactorAvoided uint64 `json:"faulty_factor_avoided,omitempty"`
}

// MetricsSnapshot is the versioned wire form of an engine metrics
// snapshot — what -stats prints, what the journal's run_end record
// embeds, and what the server's /metrics endpoint serves per job.
type MetricsSnapshot struct {
	V          int            `json:"v"`
	Phases     []PhaseMetrics `json:"phases,omitempty"`
	Cache      CacheMetrics   `json:"cache"`
	Solver     SolverMetrics  `json:"solver"`
	TaskPanics int64          `json:"task_panics,omitempty"`
	// BreakerTrips counts low-rank circuit-breaker trips; BreakerOpen is
	// true while the session is pinned to the slow path. Absent on runs
	// without the breaker armed; decoders tolerate absence.
	BreakerTrips uint64 `json:"breaker_trips,omitempty"`
	BreakerOpen  bool   `json:"breaker_open,omitempty"`
	// Durations holds latency distributions from below the engine's
	// phase accounting: the simulation kernel's per-analysis wall times
	// ("sim.op", "sim.transient", ...) and its "sim.newton_iters" value
	// histogram. Absent on records written before the histogram release;
	// decoders tolerate absence.
	Durations []NamedHistogram `json:"durations,omitempty"`
}

// ServerStatus is the daemon-level health envelope (/healthz and the
// server section of /metrics).
type ServerStatus struct {
	V int `json:"v"`
	// State is "serving" or "draining".
	State    string `json:"state"`
	UptimeMS int64  `json:"uptime_ms"`
	// Queue depth and capacity of the bounded submission queue.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Jobs counts jobs per lifecycle state.
	Jobs map[JobState]int `json:"jobs"`
	// EventsDropped totals SSE events lost to slow subscribers across
	// all jobs this daemon knows of. Absent when zero; decoders
	// tolerate absence.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
	// MemShedding is true while the memory watermark monitor is
	// rejecting submissions; MemShedTotal counts submissions shed since
	// start. Absent when the monitor never shed; decoders tolerate
	// absence.
	MemShedding  bool   `json:"mem_shedding,omitempty"`
	MemShedTotal uint64 `json:"mem_shed_total,omitempty"`
	// Distributed is true when this daemon coordinates shard workers;
	// Workers counts the currently registered fleet and ShardsPending
	// the shards queued for assignment. Absent on single-node daemons;
	// decoders tolerate absence.
	Distributed   bool `json:"distributed,omitempty"`
	Workers       int  `json:"workers,omitempty"`
	ShardsPending int  `json:"shards_pending,omitempty"`
}

// ErrorReply is the JSON error envelope of every non-2xx response.
type ErrorReply struct {
	V     int    `json:"v"`
	Error string `json:"error"`
	// RetryAfterMS hints when to retry a 429-rejected submission.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Encode marshals v deterministically in the canonical wire form:
// two-space indentation, sorted map keys (encoding/json's default), and
// a trailing newline. Both the CLI's -result-json file and the server's
// result endpoint encode through this one function, which is what makes
// "byte-identical" a meaningful comparison between them.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("api: encode: %w", err)
	}
	return buf.Bytes(), nil
}
