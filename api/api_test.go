package api

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func roundTrip(t *testing.T, in, out any) {
	t.Helper()
	data, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	// out is a pointer; compare the pointed-to values.
	got := reflect.ValueOf(out).Elem().Interface()
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\ngot: %+v\nwire: %s", in, got, data)
	}
}

func TestJobRequestRoundTrip(t *testing.T) {
	req := JobRequest{
		V: Version,
		Macro: MacroSpec{
			Builtin:         MacroIVConverter,
			ExtendedConfigs: true,
			ConfigDSL:       []string{"config 7 \"x\""},
		},
		Faults: FaultSpec{Limit: 12},
		Options: RunOptions{
			Workers:          4,
			BoxMode:          BoxModeSeed,
			BoxGridN:         5,
			OptTol:           1e-3,
			Retries:          3,
			AttemptTimeoutMS: 1500,
		},
		Compact: CompactSpec{Delta: 0.1},
	}
	var got JobRequest
	roundTrip(t, req, &got)
}

func TestJobRequestNormalizeAndValidate(t *testing.T) {
	var req JobRequest
	req.Normalize()
	if req.V != 1 || req.Macro.Builtin != MacroIVConverter {
		t.Fatalf("Normalize: %+v", req)
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("Validate(normalized zero): %v", err)
	}

	bad := []JobRequest{
		{V: Version + 1},
		{V: 1, Macro: MacroSpec{Builtin: "nonesuch"}},
		{V: 1, Options: RunOptions{BoxMode: "cubic"}},
		{V: 1, Faults: FaultSpec{Limit: -1}},
		{V: 1, Compact: CompactSpec{Delta: 1.5}},
		{V: 1, Options: RunOptions{Workers: -2}},
	}
	for i, r := range bad {
		r.Macro.Builtin = orDefault(r.Macro.Builtin)
		if err := r.Validate(); err == nil {
			t.Errorf("bad[%d] (%+v): Validate passed", i, r)
		}
	}
}

func orDefault(s string) string {
	if s == "" {
		return MacroIVConverter
	}
	return s
}

func TestJobStatusRoundTrip(t *testing.T) {
	created := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	started := created.Add(time.Second)
	st := JobStatus{
		V:       Version,
		ID:      "j-0001",
		State:   StateRunning,
		Created: created,
		Started: &started,
		Progress: &ProgressInfo{
			Phase: "generate", Done: 3, Total: 10, Percent: 30,
			ElapsedMS: 1200, Retries: 1,
		},
		Verdicts:    map[Verdict]int{VerdictDetected: 3},
		Quarantined: []QuarantineInfo{{FaultID: "b-1-2", Config: 4, Phase: "optimize", Panic: "boom"}},
		Attempts:    2,
	}
	var got JobStatus
	roundTrip(t, st, &got)
}

func TestJobResultRoundTrip(t *testing.T) {
	res := JobResult{
		V:      Version,
		Macro:  "iv-converter",
		Faults: 2,
		Delta:  0.1,
		Solutions: []SolutionInfo{
			{FaultID: "b-1-2", Verdict: VerdictDetected, Config: 1,
				Params: []float64{1.25e-5, 3.0000000001e-5}, Sensitivity: -0.75,
				CriticalImpact: 3.2e4, Evals: 120, ImpactIters: 7},
			{FaultID: "p-m1", Verdict: VerdictUndetermined, Config: -1,
				Sensitivity: 10, Evals: 40, ImpactIters: 0, Attempts: 3},
		},
		Tests: []TestInfo{
			{Config: 1, ConfigName: "step-peak", Params: []float64{1e-5}, Covers: []string{"b-1-2"}},
		},
		Coverage: CoverageInfo{Detected: 1, Total: 2, Percent: 50, Undetected: []string{"p-m1"}},
	}
	var got JobResult
	roundTrip(t, res, &got)
}

func TestMetricsSnapshotRoundTrip(t *testing.T) {
	m := MetricsSnapshot{
		V: Version,
		Phases: []PhaseMetrics{
			{Name: "optimize", Count: 10, WallNS: 1e9},
			{Name: "box-build", Count: 5, WallNS: 5e8},
		},
		Cache:      CacheMetrics{Hits: 100, Misses: 20, Shared: 3, Entries: 20},
		Solver:     SolverMetrics{Stamps: 1234, Solves: 56, NewtonIterations: 200},
		TaskPanics: 1,
	}
	var got MetricsSnapshot
	roundTrip(t, m, &got)
	if m.Phases[0].Avg() != 1e8 {
		t.Fatalf("Avg = %d", m.Phases[0].Avg())
	}
	if r := m.Cache.HitRate(); r < 0.83 || r > 0.84 {
		t.Fatalf("HitRate = %v", r)
	}
}

// TestEncodeDeterminism pins the canonical encoding: same value, same
// bytes, trailing newline, two-space indent. The service CI job diffs
// a server result against a CLI result byte for byte, which is only
// sound if Encode is deterministic.
func TestEncodeDeterminism(t *testing.T) {
	res := JobResult{V: 1, Macro: "iv-converter", Faults: 1,
		Solutions: []SolutionInfo{{FaultID: "b-1-2", Verdict: VerdictDetected, Config: 1, Sensitivity: -0.5}}}
	a, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Encode not deterministic")
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Fatal("Encode output misses trailing newline")
	}
	if !strings.Contains(string(a), "\n  \"v\": 1") {
		t.Fatalf("unexpected indentation: %q", a)
	}
}

func TestJobStateTerminal(t *testing.T) {
	for st, want := range map[JobState]bool{
		StateQueued: false, StateRunning: false, StateInterrupted: false,
		StateSucceeded: true, StateFailed: true, StateCanceled: true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, st.Terminal(), want)
		}
	}
}
