package api_test

import (
	"bufio"
	"os"
	"strings"
	"testing"

	"repro/api"
)

// docExample is one annotated JSON block of docs/wire-api.md.
type docExample struct {
	kind string
	line int
	json string
}

// parseWireDoc extracts every `<!-- api:Kind -->`-annotated ```json
// block from the wire reference.
func parseWireDoc(t *testing.T, path string) []docExample {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open wire reference: %v", err)
	}
	defer f.Close()

	var (
		examples []docExample
		kind     string
		kindLine int
		inBlock  bool
		body     strings.Builder
		line     int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(text, "<!-- api:") && strings.HasSuffix(text, "-->"):
			kind = strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "<!-- api:"), "-->"))
			kindLine = line
		case text == "```json" && kind != "":
			inBlock = true
			body.Reset()
		case text == "```" && inBlock:
			examples = append(examples, docExample{kind: kind, line: kindLine, json: body.String()})
			kind, inBlock = "", false
		case inBlock:
			body.WriteString(sc.Text())
			body.WriteString("\n")
		case kind != "" && text != "":
			// Prose between the annotation and its fence is fine; any
			// other fenced block consumes the annotation so it cannot
			// leak onto a later example.
			if strings.HasPrefix(text, "```") {
				kind = ""
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan wire reference: %v", err)
	}
	return examples
}

// TestWireDocExamplesValidate round-trips every annotated example of
// docs/wire-api.md through api.Validate with strict decoding, so the
// documentation cannot drift from the schema: a stale field name, a
// removed field, or an invalid value fails this test.
func TestWireDocExamplesValidate(t *testing.T) {
	examples := parseWireDoc(t, "../docs/wire-api.md")
	if len(examples) == 0 {
		t.Fatal("docs/wire-api.md has no annotated examples")
	}
	covered := map[string]bool{}
	for _, ex := range examples {
		if err := api.Validate(ex.kind, []byte(ex.json)); err != nil {
			t.Errorf("docs/wire-api.md:%d: %s example rejected: %v", ex.line, ex.kind, err)
		}
		covered[ex.kind] = true
	}
	// Every top-level wire message must have at least one documented,
	// validated example.
	for _, kind := range []string{
		"JobRequest", "JobStatus", "JobResult", "MetricsSnapshot",
		"ServerStatus", "ErrorReply",
		"WorkerHello", "WorkerWelcome", "WorkerHeartbeat",
		"ShardRequest", "ShardResult",
	} {
		if !covered[kind] {
			t.Errorf("docs/wire-api.md documents no %s example", kind)
		}
	}
}
