package api_test

import (
	"fmt"
	"log"

	"repro/api"
)

// ExampleEncode shows the canonical wire encoding: two-space
// indentation, declaration field order, trailing newline. Every
// deterministic artifact of the system — CLI -result-json files, the
// server's result endpoint, shard payloads — encodes through this one
// function, which is what makes byte-for-byte comparison between them
// meaningful.
func ExampleEncode() {
	req := api.JobRequest{
		V:       1,
		Macro:   api.MacroSpec{Builtin: api.MacroIVConverter},
		Faults:  api.FaultSpec{Limit: 6},
		Options: api.RunOptions{BoxMode: api.BoxModeSeed},
	}
	data, err := api.Encode(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(data))
	// Output:
	// {
	//   "v": 1,
	//   "macro": {
	//     "builtin": "iv-converter"
	//   },
	//   "faults": {
	//     "limit": 6
	//   },
	//   "options": {
	//     "box_mode": "seed"
	//   },
	//   "compact": {}
	// }
}
