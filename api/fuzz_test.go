package api

import (
	"encoding/json"
	"testing"
)

// FuzzJobRequestValidate hammers the submission path with arbitrary
// bytes: whatever a client puts on the wire, Normalize+Validate must
// never panic, and a request Validate accepts must round-trip through
// Encode/Unmarshal without changing its validity — the server decodes
// what it stored and must not suddenly reject it.
func FuzzJobRequestValidate(f *testing.F) {
	f.Add([]byte(`{"v":1,"faults":{"limit":6},"options":{"box_mode":"seed"}}`))
	f.Add([]byte(`{"v":1,"macro":{"builtin":"iv-converter"},"compact":{"delta":0.05}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"v":99}`))
	f.Add([]byte(`{"v":1,"options":{"workers":-3}}`))
	f.Add([]byte(`{"v":1,"options":{"stall_timeout_ms":100,"breaker_fallbacks":5}}`))
	f.Add([]byte(`{"v":1,"macro":{"builtin":"nope"}}`))
	f.Add([]byte(`{"v":1,"compact":{"delta":1.5}}`))
	f.Add([]byte(`{"v":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"v":1,"faults":{"limit":-9}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req JobRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // not a JobRequest; nothing to validate
		}
		req.Normalize()
		if err := req.Validate(); err != nil {
			return
		}
		// Accepted requests must survive the store/reload cycle.
		b, err := Encode(req)
		if err != nil {
			t.Fatalf("Encode of a valid request failed: %v", err)
		}
		var back JobRequest
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("re-decode of a valid request failed: %v", err)
		}
		back.Normalize()
		if err := back.Validate(); err != nil {
			t.Fatalf("request changed validity across Encode/decode: %v", err)
		}
	})
}
