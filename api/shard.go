// Shard protocol: the messages exchanged between a coordinating atpgd
// and its registered workers when a job runs in distributed mode. The
// protocol is pull-based — workers register with WorkerHello, long-poll
// the coordinator for ShardRequests, stream liveness and progress back
// with WorkerHeartbeat, and return ShardResults. All messages ride the
// same schema version ("v") as the job messages; the shard types are a
// purely additive extension of wire version 1.
//
// Determinism contract: a ShardResult carries, per fault, exactly the
// fields of the engine's checkpoint record — the set proven sufficient
// to rebuild a solution bit-identically (see DESIGN.md §12). The
// coordinator merges shard solutions in fault-dictionary order, so the
// final JobResult is byte-identical to a single-node run regardless of
// shard count, assignment order, worker deaths, or retries.
package api

import "fmt"

// WorkerHello announces a worker to the coordinator
// (POST /v1/workers). The coordinator replies with a WorkerWelcome.
type WorkerHello struct {
	// V is the wire schema version.
	V int `json:"v"`
	// Name is an optional operator-chosen label, surfaced in Prometheus
	// worker series and journal events (a generated ID is used when
	// empty).
	Name string `json:"name,omitempty"`
	// PID is the worker's process ID, for operator forensics only.
	PID int `json:"pid,omitempty"`
}

// Validate checks the hello against the schema this package implements.
func (h WorkerHello) Validate() error {
	if h.V < 1 || h.V > Version {
		return fmt.Errorf("api: unsupported worker hello version %d (this server speaks v1..v%d)", h.V, Version)
	}
	if h.PID < 0 {
		return fmt.Errorf("api: negative worker pid %d", h.PID)
	}
	return nil
}

// WorkerWelcome is the coordinator's reply to a WorkerHello: the
// assigned worker identity and the lease/poll cadence the worker must
// honor.
type WorkerWelcome struct {
	// V is the wire schema version.
	V int `json:"v"`
	// WorkerID is the coordinator-assigned identity the worker presents
	// on every subsequent call.
	WorkerID string `json:"worker_id"`
	// LeaseMS is the shard lease: a worker holding a shard must check in
	// (poll, heartbeat, or result) at least this often or the shard is
	// re-queued and the worker presumed dead.
	LeaseMS int64 `json:"lease_ms"`
	// PollMS is the long-poll window of /v1/workers/{id}/poll — the
	// longest the coordinator holds an idle poll before answering 204.
	PollMS int64 `json:"poll_ms"`
}

// Validate checks the welcome against the schema this package
// implements.
func (w WorkerWelcome) Validate() error {
	if w.V < 1 || w.V > Version {
		return fmt.Errorf("api: unsupported worker welcome version %d (this client speaks v1..v%d)", w.V, Version)
	}
	if w.WorkerID == "" {
		return fmt.Errorf("api: worker welcome without worker_id")
	}
	if w.LeaseMS <= 0 {
		return fmt.Errorf("api: non-positive worker lease %d ms", w.LeaseMS)
	}
	return nil
}

// WorkerHeartbeat is a worker liveness and progress report
// (POST /v1/workers/{id}/heartbeat). It extends the lease of the named
// shard and feeds the coordinator's aggregated SSE progress stream.
type WorkerHeartbeat struct {
	// V is the wire schema version.
	V int `json:"v"`
	// WorkerID echoes the identity assigned in the WorkerWelcome.
	WorkerID string `json:"worker_id"`
	// ShardID names the shard the worker is computing ("" between
	// shards — a bare liveness ping).
	ShardID string `json:"shard_id,omitempty"`
	// Done counts the faults of the current shard finished so far; the
	// coordinator folds the delta into the job's progress snapshot.
	Done int64 `json:"done,omitempty"`
}

// Validate checks the heartbeat against the schema this package
// implements.
func (h WorkerHeartbeat) Validate() error {
	if h.V < 1 || h.V > Version {
		return fmt.Errorf("api: unsupported heartbeat version %d (this server speaks v1..v%d)", h.V, Version)
	}
	if h.WorkerID == "" {
		return fmt.Errorf("api: heartbeat without worker_id")
	}
	if h.Done < 0 {
		return fmt.Errorf("api: negative heartbeat done count %d", h.Done)
	}
	return nil
}

// ShardRequest is one unit of distributed work: a slice of a job's
// fault dictionary plus the full originating request, from which the
// worker rebuilds an identical session. Returned by a successful worker
// poll (POST /v1/workers/{id}/poll).
type ShardRequest struct {
	// V is the wire schema version.
	V int `json:"v"`
	// JobID names the coordinator job this shard belongs to.
	JobID string `json:"job_id"`
	// ShardID is unique per (job, shard); stable across reassignment, so
	// a retried shard produces an interchangeable result.
	ShardID string `json:"shard_id"`
	// Seq and Total place this shard in the job's partition (Seq in
	// [0, Total)).
	Seq int `json:"seq"`
	// Total is the number of shards the job was partitioned into.
	Total int `json:"total"`
	// FaultIDs selects the dictionary faults of this shard, in
	// dictionary order.
	FaultIDs []string `json:"fault_ids"`
	// Request is the originating job request; workers derive macro,
	// configurations, and session options from it so every shard of a
	// job computes against an identical system.
	Request JobRequest `json:"request"`
}

// Validate checks the shard request against the schema this package
// implements, including the embedded job request.
func (s ShardRequest) Validate() error {
	if s.V < 1 || s.V > Version {
		return fmt.Errorf("api: unsupported shard request version %d (this worker speaks v1..v%d)", s.V, Version)
	}
	if s.JobID == "" || s.ShardID == "" {
		return fmt.Errorf("api: shard request without job_id/shard_id")
	}
	if s.Total < 1 || s.Seq < 0 || s.Seq >= s.Total {
		return fmt.Errorf("api: shard seq %d outside partition of %d", s.Seq, s.Total)
	}
	if len(s.FaultIDs) == 0 {
		return fmt.Errorf("api: shard request without fault_ids")
	}
	return s.Request.Validate()
}

// ShardSolution is the wire form of one fault's solved state inside a
// ShardResult. It mirrors the engine's checkpoint record field for
// field — the minimal set from which the coordinator rebuilds the
// solution bit-identically (the same contract that makes kill/resume
// byte-stable).
type ShardSolution struct {
	// FaultID names the dictionary fault.
	FaultID string `json:"fault_id"`
	// ConfigIdx is the winning configuration index (-1: unresolved).
	ConfigIdx int `json:"config_idx"`
	// Params are the optimized test-condition parameters.
	Params []float64 `json:"params,omitempty"`
	// Sensitivity is S_f at the dictionary impact.
	Sensitivity float64 `json:"sensitivity"`
	// CriticalImpact is the detection threshold found by the impact
	// search.
	CriticalImpact float64 `json:"critical_impact"`
	// Undetectable, Undetermined, and Quarantined carry the fault's
	// terminal classification flags.
	Undetectable bool `json:"undetectable,omitempty"`
	Undetermined bool `json:"undetermined,omitempty"`
	Quarantined  bool `json:"quarantined,omitempty"`
	// Evals, ImpactIters, and Attempts reproduce the effort counters of
	// the original computation (they appear in the result, so they must
	// survive the wire round trip for byte identity).
	Evals       int `json:"evals"`
	ImpactIters int `json:"impact_iters"`
	Attempts    int `json:"attempts,omitempty"`
}

// ShardResult returns a completed shard to the coordinator
// (POST /v1/workers/{id}/result). Results are deterministic, so the
// coordinator accepts the first result for a shard and discards
// duplicates from presumed-dead workers that finished after all.
type ShardResult struct {
	// V is the wire schema version.
	V int `json:"v"`
	// JobID and ShardID echo the shard request.
	JobID   string `json:"job_id"`
	ShardID string `json:"shard_id"`
	// WorkerID identifies the computing worker, for journal attribution
	// and per-worker metrics.
	WorkerID string `json:"worker_id"`
	// Solutions holds one entry per shard fault, in dictionary order.
	Solutions []ShardSolution `json:"solutions"`
	// Quarantined lists fault×config tasks the worker's runtime isolated
	// (panic or stall), merged into the job's quarantine report.
	Quarantined []QuarantineInfo `json:"quarantined,omitempty"`
	// Journal is the shard's sealed observability journal (JSONL text);
	// the coordinator stitches it into the job journal with shard-tagged
	// spans.
	Journal string `json:"journal,omitempty"`
	// ElapsedMS is the worker-side wall time of the shard.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// Validate checks the shard result against the schema this package
// implements.
func (s ShardResult) Validate() error {
	if s.V < 1 || s.V > Version {
		return fmt.Errorf("api: unsupported shard result version %d (this server speaks v1..v%d)", s.V, Version)
	}
	if s.JobID == "" || s.ShardID == "" {
		return fmt.Errorf("api: shard result without job_id/shard_id")
	}
	if s.WorkerID == "" {
		return fmt.Errorf("api: shard result without worker_id")
	}
	for i, sol := range s.Solutions {
		if sol.FaultID == "" {
			return fmt.Errorf("api: shard result solution %d without fault_id", i)
		}
		if sol.Evals < 0 || sol.ImpactIters < 0 || sol.Attempts < 0 {
			return fmt.Errorf("api: shard result solution %d with negative effort counters", i)
		}
	}
	if s.ElapsedMS < 0 {
		return fmt.Errorf("api: negative shard elapsed %d ms", s.ElapsedMS)
	}
	return nil
}
