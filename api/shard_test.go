package api

import (
	"encoding/json"
	"strings"
	"testing"
)

func validShardRequest() ShardRequest {
	return ShardRequest{
		V:        Version,
		JobID:    "job-1",
		ShardID:  "job-1/s0",
		Seq:      0,
		Total:    2,
		FaultIDs: []string{"M1:GDS", "M2:DSS"},
		Request: JobRequest{
			V:     Version,
			Macro: MacroSpec{Builtin: MacroIVConverter},
		},
	}
}

func TestShardMessagesRoundTrip(t *testing.T) {
	msgs := []any{
		WorkerHello{V: Version, Name: "w-a", PID: 42},
		WorkerWelcome{V: Version, WorkerID: "w1", LeaseMS: 10000, PollMS: 15000},
		WorkerHeartbeat{V: Version, WorkerID: "w1", ShardID: "job-1/s0", Done: 3},
		validShardRequest(),
		ShardResult{
			V: Version, JobID: "job-1", ShardID: "job-1/s0", WorkerID: "w1",
			Solutions: []ShardSolution{{
				FaultID: "M1:GDS", ConfigIdx: 2, Params: []float64{1.5, 0.2},
				Sensitivity: 0.9, CriticalImpact: 12.5, Evals: 100, ImpactIters: 7,
			}},
			Quarantined: []QuarantineInfo{{FaultID: "M2:DSS", Config: 1, Phase: "optimize", Reason: "panic"}},
			Journal:     "{\"type\":\"run_start\"}\n",
			ElapsedMS:   1234,
		},
	}
	for _, m := range msgs {
		b, err := Encode(m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		// Decode into a fresh value of the same dynamic type and re-encode:
		// the canonical form must be a fixed point.
		var back any
		switch m.(type) {
		case WorkerHello:
			v := WorkerHello{}
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("decode %T: %v", m, err)
			}
			back = v
		case WorkerWelcome:
			v := WorkerWelcome{}
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("decode %T: %v", m, err)
			}
			back = v
		case WorkerHeartbeat:
			v := WorkerHeartbeat{}
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("decode %T: %v", m, err)
			}
			back = v
		case ShardRequest:
			v := ShardRequest{}
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("decode %T: %v", m, err)
			}
			back = v
		case ShardResult:
			v := ShardResult{}
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("decode %T: %v", m, err)
			}
			back = v
		}
		b2, err := Encode(back)
		if err != nil {
			t.Fatalf("re-encode %T: %v", m, err)
		}
		if string(b) != string(b2) {
			t.Fatalf("%T round trip not byte-stable:\n%s\nvs\n%s", m, b, b2)
		}
	}
}

func TestShardRequestValidate(t *testing.T) {
	if err := validShardRequest().Validate(); err != nil {
		t.Fatalf("valid shard request rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ShardRequest)
		want   string
	}{
		{"future version", func(s *ShardRequest) { s.V = Version + 1 }, "version"},
		{"zero version", func(s *ShardRequest) { s.V = 0 }, "version"},
		{"no job id", func(s *ShardRequest) { s.JobID = "" }, "job_id"},
		{"no shard id", func(s *ShardRequest) { s.ShardID = "" }, "job_id"},
		{"seq out of range", func(s *ShardRequest) { s.Seq = 2 }, "seq"},
		{"negative seq", func(s *ShardRequest) { s.Seq = -1 }, "seq"},
		{"no faults", func(s *ShardRequest) { s.FaultIDs = nil }, "fault_ids"},
		{"bad embedded request", func(s *ShardRequest) { s.Request.Macro.Builtin = "nope" }, "macro"},
	}
	for _, tc := range cases {
		s := validShardRequest()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestShardResultValidate(t *testing.T) {
	ok := ShardResult{V: Version, JobID: "j", ShardID: "j/s0", WorkerID: "w1"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid shard result rejected: %v", err)
	}
	bad := ok
	bad.WorkerID = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("shard result without worker_id accepted")
	}
	bad = ok
	bad.Solutions = []ShardSolution{{FaultID: ""}}
	if err := bad.Validate(); err == nil {
		t.Fatal("shard solution without fault_id accepted")
	}
	bad = ok
	bad.Solutions = []ShardSolution{{FaultID: "f", Evals: -1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative effort counters accepted")
	}
}

func TestWorkerMessageValidate(t *testing.T) {
	if err := (WorkerHello{V: Version}).Validate(); err != nil {
		t.Fatalf("minimal hello rejected: %v", err)
	}
	if err := (WorkerHello{V: Version + 9}).Validate(); err == nil {
		t.Fatal("future hello accepted")
	}
	if err := (WorkerWelcome{V: Version, WorkerID: "w", LeaseMS: 1}).Validate(); err != nil {
		t.Fatalf("minimal welcome rejected: %v", err)
	}
	if err := (WorkerWelcome{V: Version, WorkerID: "", LeaseMS: 1}).Validate(); err == nil {
		t.Fatal("welcome without worker_id accepted")
	}
	if err := (WorkerWelcome{V: Version, WorkerID: "w"}).Validate(); err == nil {
		t.Fatal("welcome without lease accepted")
	}
	if err := (WorkerHeartbeat{V: Version, WorkerID: "w"}).Validate(); err != nil {
		t.Fatalf("minimal heartbeat rejected: %v", err)
	}
	if err := (WorkerHeartbeat{V: Version}).Validate(); err == nil {
		t.Fatal("heartbeat without worker_id accepted")
	}
}

func TestGenericValidate(t *testing.T) {
	req, err := Encode(validShardRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate("ShardRequest", req); err != nil {
		t.Fatalf("Validate(ShardRequest): %v", err)
	}
	if err := Validate("JobRequest", []byte(`{"v":1,"macro":{"builtin":"iv-converter"}}`)); err != nil {
		t.Fatalf("Validate(JobRequest): %v", err)
	}
	if err := Validate("JobRequest", []byte(`{"v":1,"nope":true}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := Validate("JobRequest", []byte(`{"v":1} {"v":1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if err := Validate("Bogus", []byte(`{}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if err := Validate("ErrorReply", []byte(`{"v":1,"error":"queue full","retry_after_ms":250}`)); err != nil {
		t.Fatalf("Validate(ErrorReply): %v", err)
	}
	if err := Validate("ServerStatus", []byte(`{"v":99,"state":"serving","uptime_ms":1,"queue_depth":0,"queue_cap":64,"jobs":{}}`)); err == nil {
		t.Fatal("future server status accepted")
	}
}
