package api

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Validate decodes data as the named wire message and checks it against
// the schema this package implements. The decode is strict — unknown
// fields are an error — so it catches both malformed examples and
// documentation drift (a documented field the schema no longer has).
// Supported kinds are the exported top-level message names:
// "JobRequest", "JobStatus", "JobResult", "MetricsSnapshot",
// "ServerStatus", "ErrorReply", "WorkerHello", "WorkerWelcome",
// "WorkerHeartbeat", "ShardRequest", and "ShardResult".
//
// docs/wire-api.md annotates every example JSON block with one of these
// kinds, and a test round-trips each through this function; that is the
// mechanism keeping the wire reference honest.
func Validate(kind string, data []byte) error {
	decode := func(v any) error {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(v); err != nil {
			return fmt.Errorf("api: decode %s: %w", kind, err)
		}
		// Reject trailing garbage after the first JSON value.
		if dec.More() {
			return fmt.Errorf("api: decode %s: trailing data after message", kind)
		}
		return nil
	}
	version := func(v int) error {
		if v < 1 || v > Version {
			return fmt.Errorf("api: %s version %d outside v1..v%d", kind, v, Version)
		}
		return nil
	}
	switch kind {
	case "JobRequest":
		var m JobRequest
		if err := decode(&m); err != nil {
			return err
		}
		return m.Validate()
	case "JobStatus":
		var m JobStatus
		if err := decode(&m); err != nil {
			return err
		}
		if m.ID == "" {
			return fmt.Errorf("api: job status without id")
		}
		return version(m.V)
	case "JobResult":
		var m JobResult
		if err := decode(&m); err != nil {
			return err
		}
		return version(m.V)
	case "MetricsSnapshot":
		var m MetricsSnapshot
		if err := decode(&m); err != nil {
			return err
		}
		return version(m.V)
	case "ServerStatus":
		var m ServerStatus
		if err := decode(&m); err != nil {
			return err
		}
		return version(m.V)
	case "ErrorReply":
		var m ErrorReply
		if err := decode(&m); err != nil {
			return err
		}
		return version(m.V)
	case "WorkerHello":
		var m WorkerHello
		if err := decode(&m); err != nil {
			return err
		}
		return m.Validate()
	case "WorkerWelcome":
		var m WorkerWelcome
		if err := decode(&m); err != nil {
			return err
		}
		return m.Validate()
	case "WorkerHeartbeat":
		var m WorkerHeartbeat
		if err := decode(&m); err != nil {
			return err
		}
		return m.Validate()
	case "ShardRequest":
		var m ShardRequest
		if err := decode(&m); err != nil {
			return err
		}
		return m.Validate()
	case "ShardResult":
		var m ShardResult
		if err := decode(&m); err != nil {
			return err
		}
		return m.Validate()
	default:
		return fmt.Errorf("api: unknown message kind %q", kind)
	}
}
