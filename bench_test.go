package repro

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation section (plus the DESIGN.md ablations and substrate
// micro-benchmarks). Each experiment benchmark drives the same code path
// as `cmd/experiments -only <id>`, with the reduced "quick" workload so
// the whole suite finishes in minutes on one core; the full paper-scale
// rows are produced by `go run ./cmd/experiments`.

import (
	"io"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/mna"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/testcfg"
	"repro/internal/wave"
)

// benchRunner is shared by the experiment benchmarks so that the session
// and the memoized quick generation are built once, not per benchmark.
var (
	benchOnce   sync.Once
	benchShared *experiments.Runner
)

func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchShared = experiments.New(experiments.Options{Out: io.Discard, Quick: true})
	})
	return benchShared
}

// benchExperiment runs one experiment per iteration against the shared
// runner.
func benchExperiment(b *testing.B, id string) {
	r := sharedRunner(b)
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -------------------------------

func BenchmarkTable1Configs(b *testing.B)               { benchExperiment(b, "table1") }
func BenchmarkFig1ConfigDescription(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2TPSGraphHard(b *testing.B)            { benchExperiment(b, "fig2") }
func BenchmarkFig3TPSGraphSoft(b *testing.B)            { benchExperiment(b, "fig3") }
func BenchmarkFig4TPSGraphSofter(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5ToleranceBox(b *testing.B)            { benchExperiment(b, "fig5") }
func BenchmarkFig6SingleFaultGeneration(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7PinholeInsertion(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkTable2GenerateAll(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkFig8OptimalParameterScatter(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkTable3Compaction(b *testing.B)            { benchExperiment(b, "table3") }

// --- Ablation benchmarks ---------------------------------------------

func BenchmarkAblationSelectionOnly(b *testing.B) { benchExperiment(b, "ablation-selection") }
func BenchmarkAblationSoftRegion(b *testing.B)    { benchExperiment(b, "ablation-soft") }
func BenchmarkAblationOptimizers(b *testing.B)    { benchExperiment(b, "ablation-opt") }
func BenchmarkAblationDeltaSweep(b *testing.B)    { benchExperiment(b, "ablation-delta") }
func BenchmarkAblationBoxMode(b *testing.B)       { benchExperiment(b, "ablation-boxmode") }
func BenchmarkAblationRadiusSweep(b *testing.B)   { benchExperiment(b, "ablation-radius") }

// --- Substrate micro-benchmarks --------------------------------------

func BenchmarkLUFactorSolve12(b *testing.B) {
	n := 12
	s := mna.NewSystem(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := 1.0 / float64(1+i+j)
			if i == j {
				v += float64(n)
			}
			s.Add(i, j, v)
		}
		s.AddRHS(i, float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.FactorSolve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOperatingPoint(b *testing.B) {
	ckt := macros.IVConverter()
	e, err := sim.New(ckt, sim.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.OperatingPoint(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientStepResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ckt := macros.IVConverter()
		macros.SetInputWave(ckt, wave.Step{Base: 5e-6, Elev: 20e-6, Delay: 10e-9, Rise: 10e-9})
		e, err := sim.New(ckt, sim.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Transient(7.5e-6, 10e-9, []string{macros.NodeVout}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientTHDRun(b *testing.B) {
	cfg := testcfg.ByID(testcfg.IVConfigs(), 3)
	ckt := macros.IVConverter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Run(ckt, []float64{20e-6, 10e3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivityDCEval(b *testing.B) {
	scfg := core.DefaultConfig()
	scfg.BoxMode = core.BoxSeed
	s, err := core.NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], scfg)
	if err != nil {
		b.Fatal(err)
	}
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sensitivity(0, f, []float64{20e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFaultInsertion(b *testing.B) {
	ckt := macros.IVConverter()
	f := fault.NewPinhole("M6", 2e3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fc, err := f.Insert(ckt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fc.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrentQuadratic(b *testing.B) {
	f := func(x float64) float64 { return (x - 0.3) * (x - 0.3) }
	for i := 0; i < b.N; i++ {
		res := opt.Brent(f, -1, 1, 1e-6)
		if math.Abs(res.X[0]-0.3) > 1e-3 {
			b.Fatal("brent failed")
		}
	}
}

func BenchmarkPowellRosenbrockish(b *testing.B) {
	f := func(x []float64) float64 {
		u := x[0] + x[1]
		v := x[0] - x[1]
		return u*u + 100*(v-0.5)*(v-0.5)
	}
	box := opt.NewBox([]float64{-2, -2}, []float64{2, 2})
	for i := 0; i < b.N; i++ {
		res := opt.Powell(f, box, []float64{1, 1}, 1e-6)
		if res.F > 1e-4 {
			b.Fatal("powell failed")
		}
	}
}

func BenchmarkCircuitClone(b *testing.B) {
	ckt := macros.IVConverter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cc := ckt.Clone()
		if len(cc.Devices()) != len(ckt.Devices()) {
			b.Fatal("clone lost devices")
		}
	}
}

// --- Engine benchmarks -----------------------------------------------

// nominalBenchSession builds a cheap DC session and pre-warms nWarm
// distinct nominal cache entries.
func nominalBenchSession(b *testing.B, nWarm int) (*core.Session, [][]float64) {
	b.Helper()
	scfg := core.DefaultConfig()
	scfg.BoxMode = core.BoxSeed
	s, err := core.NewSession(macros.IVConverter(), testcfg.IVConfigs()[:1], scfg)
	if err != nil {
		b.Fatal(err)
	}
	params := make([][]float64, nWarm)
	for i := range params {
		params[i] = []float64{5e-6 + 30e-6*float64(i)/float64(nWarm)}
		if _, err := s.Nominal(0, params[i]); err != nil {
			b.Fatal(err)
		}
	}
	return s, params
}

// BenchmarkNominalCacheHitParallel measures the cache hit path under
// full parallelism — the path that used to serialize every Sensitivity
// call on one global mutex and now spreads across FNV shards.
func BenchmarkNominalCacheHitParallel(b *testing.B) {
	s, params := nominalBenchSession(b, 256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Nominal(0, params[i%len(params)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkNominalCacheHitSerial is the single-goroutine baseline for
// the parallel benchmark above.
func BenchmarkNominalCacheHitSerial(b *testing.B) {
	s, params := nominalBenchSession(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Nominal(0, params[i%len(params)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateAllDC runs the full generation pipeline (engine
// work-stealing pool over (fault, config) tasks) on a small DC-only
// workload.
func BenchmarkGenerateAllDC(b *testing.B) {
	scfg := core.DefaultConfig()
	scfg.BoxMode = core.BoxSeed
	s, err := core.NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], scfg)
	if err != nil {
		b.Fatal(err)
	}
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
		fault.NewPinhole("M6", 2e3),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.GenerateAll(faults); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationImpactSweep(b *testing.B) { benchExperiment(b, "ablation-impact") }

func BenchmarkMacro2Pipeline(b *testing.B) { benchExperiment(b, "macro2") }

func BenchmarkOpensExtension(b *testing.B) { benchExperiment(b, "opens") }
