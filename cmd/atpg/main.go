// Command atpg runs the complete flow of the paper on the IV-converter
// macro (or a custom netlist): enumerate the structural fault
// dictionary, generate the optimal test per fault, compact the test set
// with the δ loss budget, and fault-simulate the result.
//
// Ctrl-C cancels the run promptly (the evaluation engine propagates the
// context through generation, compaction and coverage).
//
// Usage:
//
//	atpg [-netlist file] [-delta d] [-workers n] [-fast] [-faults n] [-stats] [-v]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/internal/netlist"
	"repro/internal/report"
)

func main() {
	netlistPath := flag.String("netlist", "", "SPICE-like netlist of a custom macro (default: built-in IV-converter)")
	configFile := flag.String("config-file", "", "additional test configuration description file (Fig. 1 DSL)")
	delta := flag.Float64("delta", 0.1, "compaction loss budget δ")
	workers := flag.Int("workers", 0, "generation parallelism (0: GOMAXPROCS)")
	fast := flag.Bool("fast", false, "seed-calibrated tolerance boxes (faster, coarser)")
	limit := flag.Int("faults", 0, "limit the fault list to the first n faults (0: all)")
	stats := flag.Bool("stats", false, "print per-phase engine timings and cache statistics")
	verbose := flag.Bool("v", false, "print per-fault detail")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var opts []repro.Option
	if *fast {
		opts = append(opts, repro.WithFastBoxes())
	}
	if *workers > 0 {
		opts = append(opts, repro.WithWorkers(*workers))
	}

	configs := repro.IVConfigs()
	if *configFile != "" {
		f, ferr := os.Open(*configFile)
		if ferr != nil {
			fail(ferr)
		}
		extra, perr := repro.ParseTestConfig(f)
		f.Close()
		if perr != nil {
			fail(perr)
		}
		configs = append(configs, extra)
		fmt.Printf("loaded configuration #%d (%s) from %s\n", extra.ID, extra.Name, *configFile)
	}

	var sys *repro.System
	var err error
	if *netlistPath != "" {
		f, ferr := os.Open(*netlistPath)
		if ferr != nil {
			fail(ferr)
		}
		ckt, perr := netlist.Parse(f, *netlistPath)
		f.Close()
		if perr != nil {
			fail(perr)
		}
		sys, err = repro.NewSystem(ckt, configs, opts...)
	} else {
		sys, err = repro.NewSystem(repro.NewIVConverter(), configs, opts...)
	}
	if err != nil {
		fail(err)
	}

	faults := sys.Faults()
	if *limit > 0 && *limit < len(faults) {
		faults = faults[:*limit]
	}
	fmt.Printf("macro %q: %d devices, %d faults, %d test configurations\n",
		sys.Golden().Name(), len(sys.Golden().Devices()), len(faults), len(sys.Configs()))

	start := time.Now()
	sols, err := sys.GenerateAllContext(ctx, faults)
	if err != nil {
		fail(err)
	}
	fmt.Printf("generation: %v\n\n", time.Since(start).Round(time.Millisecond))

	if *verbose {
		t := report.NewTable("fault", "config", "params", "S_f", "critical impact")
		for _, sol := range sols {
			c := sys.Configs()[sol.ConfigIdx]
			t.AddRow(sol.Fault.ID(), c.Name, fmt.Sprintf("%v", sol.Params),
				sol.Sensitivity, report.Engineering(sol.CriticalImpact))
		}
		_, _ = t.WriteTo(os.Stdout)
		fmt.Println()
	}

	d := sys.Tabulate(sols)
	fmt.Println("best-test distribution:")
	for _, id := range d.ConfigIDs() {
		total := 0
		for _, n := range d.Counts[id] {
			total += n
		}
		fmt.Printf("  config #%d: %d faults\n", id, total)
	}

	opt := repro.DefaultCompactOptions()
	opt.Delta = *delta
	cts, err := sys.CompactContext(ctx, sols, opt)
	if err != nil {
		fail(err)
	}
	cov, err := sys.CoverageContext(ctx, repro.TestsOfCompact(cts), faults)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\ncompacted test set (δ=%.2g): %d tests for %d faults\n", *delta, len(cts), len(faults))
	t := report.NewTable("test", "config", "params", "covers")
	for i, ct := range cts {
		t.AddRow(i+1, sys.Configs()[ct.ConfigIdx].Name, fmt.Sprintf("%v", ct.Params), len(ct.Members))
	}
	_, _ = t.WriteTo(os.Stdout)
	fmt.Printf("\nfault coverage of the compacted set: %.1f %% (%d/%d)\n",
		cov.Percent(), cov.Detected, cov.Total)
	if wcov, err := repro.WeightedCoverage(repro.HeuristicIFAWeights(faults), cov); err == nil {
		fmt.Printf("IFA-weighted coverage: %.1f %%\n", wcov)
	}
	if len(cov.Undetected) > 0 {
		fmt.Println("undetected faults:")
		for _, id := range cov.Undetected {
			fmt.Printf("  %s\n", id)
		}
	}

	// ATE schedule: order the compacted tests by marginal yield per
	// second and estimate the production test time.
	sched, _, err := sys.ScheduleContext(ctx, repro.TestsOfCompact(cts), faults)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nATE schedule (total application time %v):\n",
		sys.SetTime(repro.TestsOfCompact(cts)).Round(time.Microsecond))
	st := report.NewTable("order", "config", "params", "new detections", "time")
	for i, e := range sched {
		st.AddRow(i+1, sys.Configs()[e.ConfigIdx].Name, fmt.Sprintf("%v", e.Params),
			e.NewDetections, e.Time.Round(time.Microsecond))
	}
	_, _ = st.WriteTo(os.Stdout)

	ss := sys.Stats()
	fmt.Printf("\nsimulation effort: %d nominal + %d faulty runs (%d cache hits, %d non-convergent faulty circuits)\n",
		ss.NominalRuns, ss.FaultyRuns, ss.CacheHits, ss.FaultyFailures)

	if *stats {
		printMetrics(sys.Metrics())
	}
}

// printMetrics renders the engine's per-phase timings and cache
// statistics (the -stats flag).
func printMetrics(m repro.Metrics) {
	fmt.Println("\nengine metrics:")
	t := report.NewTable("phase", "units", "wall", "avg/unit")
	for _, p := range m.Phases {
		t.AddRow(p.Name, p.Count, p.Wall.Round(time.Millisecond), p.Avg().Round(time.Microsecond))
	}
	_, _ = t.WriteTo(os.Stdout)
	c := m.Cache
	fmt.Printf("\nnominal cache: %d entries, %.1f %% hit rate (%d hits, %d misses, %d shared flights, %d evictions)\n",
		c.Entries, 100*c.HitRate(), c.Hits, c.Misses, c.Shared, c.Evictions)
	sv := m.Solver
	fmt.Printf("solver kernel: %d solves, %d Newton iterations, %d factorizations (%d reused), %d device stamps, %d base snapshots (%d hits)\n",
		sv.Solves, sv.NewtonIterations, sv.Factorizations, sv.FactorReuses, sv.Stamps, sv.BaseBuilds, sv.BaseHits)
}

func fail(err error) {
	if errors.Is(err, repro.ErrCanceled) {
		fmt.Fprintln(os.Stderr, "atpg: canceled")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
