// Command atpg runs the complete flow of the paper on the IV-converter
// macro (or a custom netlist): enumerate the structural fault
// dictionary, generate the optimal test per fault, compact the test set
// with the δ loss budget, and fault-simulate the result.
//
// Ctrl-C cancels the run promptly (the evaluation engine propagates the
// context through generation, compaction and coverage), and -timeout
// bounds the whole run with a context deadline; on either, a -journal
// file is still flushed as a truncated-but-valid record ending in
// run_canceled.
//
// The resilience flags map onto the fault-tolerant runtime (DESIGN.md
// §10): -retries arms the retry policy (perturbed optimizer restarts
// plus the simulation recovery ladder), -checkpoint/-resume persist and
// restore per-fault results across kills, and -strict turns degraded
// verdicts (quarantined or undetermined faults) into a non-zero exit.
//
// Usage:
//
//	atpg [-netlist file] [-delta d] [-workers n] [-fast] [-faults n]
//	     [-retries n] [-attempt-timeout d] [-checkpoint ckpt.json]
//	     [-resume] [-strict] [-timeout d]
//	     [-journal run.jsonl] [-trace-sample n] [-listen :6060]
//	     [-result-json out.json] [-stats] [-v]
//
// The flags assemble an api.JobRequest (the same typed object a client
// POSTs to the atpgd job server) and -result-json writes the canonical
// api.JobResult encoding, byte-identical to the server's result
// endpoint for the same request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro"
	"repro/api"
	"repro/internal/obs/export"
	"repro/internal/report"
)

// options collects the parsed flags so run stays testable.
type options struct {
	netlistPath    string
	configFile     string
	delta          float64
	workers        int
	fast           bool
	limit          int
	stats          bool
	verbose        bool
	journalPath    string
	traceSample    int
	listenAddr     string
	retries        int
	noLowRank      bool
	attemptTimeout time.Duration
	checkpointPath string
	resume         bool
	strict         bool
	timeout        time.Duration
	resultJSON     string
}

// request assembles the wire job request equivalent to the flags: the
// exact object a client would POST to atpgd to get this run. Building
// the system from it (SystemFromRequest) is what makes the CLI run and
// the server job the same typed object — and their -result-json /
// result-endpoint outputs byte-identical.
func (o options) request() (api.JobRequest, error) {
	req := api.JobRequest{V: api.Version}
	if o.netlistPath != "" {
		data, err := os.ReadFile(o.netlistPath)
		if err != nil {
			return req, err
		}
		req.Macro.Netlist = string(data)
		req.Macro.NetlistName = o.netlistPath
	}
	if o.configFile != "" {
		data, err := os.ReadFile(o.configFile)
		if err != nil {
			return req, err
		}
		req.Macro.ConfigDSL = []string{string(data)}
	}
	req.Faults.Limit = o.limit
	req.Options.Workers = o.workers
	if o.fast {
		req.Options.BoxMode = api.BoxModeSeed
	}
	req.Options.Retries = o.retries
	req.Options.DisableLowRank = o.noLowRank
	req.Options.AttemptTimeoutMS = o.attemptTimeout.Milliseconds()
	req.Compact.Delta = o.delta
	req.Normalize()
	return req, req.Validate()
}

func main() {
	var o options
	flag.StringVar(&o.netlistPath, "netlist", "", "SPICE-like netlist of a custom macro (default: built-in IV-converter)")
	flag.StringVar(&o.configFile, "config-file", "", "additional test configuration description file (Fig. 1 DSL)")
	flag.Float64Var(&o.delta, "delta", 0.1, "compaction loss budget δ")
	flag.IntVar(&o.workers, "workers", 0, "generation parallelism (0: GOMAXPROCS)")
	flag.BoolVar(&o.fast, "fast", false, "seed-calibrated tolerance boxes (faster, coarser)")
	flag.IntVar(&o.limit, "faults", 0, "limit the fault list to the first n faults (0: all)")
	flag.BoolVar(&o.stats, "stats", false, "print per-phase engine timings and cache statistics")
	flag.BoolVar(&o.verbose, "v", false, "print per-fault detail")
	flag.StringVar(&o.journalPath, "journal", "", "write a JSONL run journal (spans, events, fault verdicts) to this file")
	flag.IntVar(&o.traceSample, "trace-sample", 1, "journal one in every n spans (1: all; events are never sampled)")
	flag.StringVar(&o.listenAddr, "listen", "", "serve live /metrics, /progress and pprof on this address (e.g. :6060)")
	flag.IntVar(&o.retries, "retries", 0, "optimizer attempt budget per fault×config pair; > 1 arms the retry policy and recovery ladder (0: fail fast like the plain flow)")
	flag.BoolVar(&o.noLowRank, "no-lowrank", false, "disable the Sherman–Morrison faulty-solve fast path (A/B benchmarking; results are bit-identical either way)")
	flag.DurationVar(&o.attemptTimeout, "attempt-timeout", 0, "per-optimizer-attempt deadline under -retries (0: none)")
	flag.StringVar(&o.checkpointPath, "checkpoint", "", "crash-safe checkpoint file for per-fault generation results")
	flag.BoolVar(&o.resume, "resume", false, "skip faults already completed in the -checkpoint file")
	flag.BoolVar(&o.strict, "strict", false, "exit non-zero when any fault ends quarantined or undetermined")
	flag.DurationVar(&o.timeout, "timeout", 0, "overall run deadline; on expiry the journal is sealed like on Ctrl-C (0: none)")
	flag.StringVar(&o.resultJSON, "result-json", "", "write the run's outcome as a canonical api.JobResult JSON file (byte-identical to the atpgd result endpoint for the same request)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}

	if err := run(ctx, o); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "atpg: timed out after %v\n", o.timeout)
			os.Exit(124)
		}
		if errors.Is(err, repro.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "atpg: canceled")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
}

// run executes the full flow. It returns instead of exiting so the
// journal is sealed (run_end / run_canceled plus flush) on every path.
// The session itself is built from the wire request the flags assemble
// (SystemFromRequest); only run-scoped plumbing — journal, progress,
// checkpoint — rides on top as extra options.
func run(ctx context.Context, o options) (err error) {
	req, err := o.request()
	if err != nil {
		return err
	}
	var opts []repro.Option
	if o.checkpointPath != "" {
		opts = append(opts, repro.WithCheckpoint(o.checkpointPath, 0, o.resume))
	} else if o.resume {
		return errors.New("-resume requires -checkpoint")
	}

	var tracer *repro.Tracer
	var sys *repro.System
	if o.journalPath != "" {
		jf, ferr := os.Create(o.journalPath)
		if ferr != nil {
			return ferr
		}
		journal := repro.NewJournal(jf)
		tracer = repro.NewTracerWith(journal,
			[]repro.TraceAttr{
				repro.TraceString("cmd", "atpg"),
				repro.TraceF64("delta", o.delta),
			},
			repro.TraceSampleEvery(o.traceSample))
		opts = append(opts, repro.WithTracer(tracer))
		defer func() {
			journal.Close()
			if cerr := jf.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}
	prog := repro.NewProgress()
	opts = append(opts, repro.WithProgress(prog))
	// Seal the journal on every exit: run_canceled when the error wraps a
	// context cancellation, run_end (with the final metrics snapshot)
	// otherwise. Runs before the journal-closing defer above.
	defer func() {
		if sys != nil {
			tracer.Finish(err, repro.TraceAny("metrics", repro.WireMetrics(sys.Metrics())))
		} else {
			tracer.Finish(err)
		}
	}()

	sys, err = repro.SystemFromRequest(ctx, req, opts...)
	if err != nil {
		return err
	}
	if o.configFile != "" {
		extra := sys.Configs()[len(sys.Configs())-1]
		fmt.Printf("loaded configuration #%d (%s) from %s\n", extra.ID, extra.Name, o.configFile)
	}

	if o.listenAddr != "" {
		srv, serr := export.Serve(export.Options{
			Addr:     o.listenAddr,
			Metrics:  func() any { return sys.Metrics() },
			Progress: prog.Snapshot,
			// Prometheus scrapes (Accept: text/plain) get the engine series
			// in text exposition format; JSON stays the default.
			Prom: func(w io.Writer) {
				p := &export.PromText{}
				export.PromFromMetrics(p, repro.WireMetrics(sys.Metrics()))
				_, _ = p.WriteTo(w)
			},
		})
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Printf("serving http://%s/ (/metrics, /progress, /debug/pprof/)\n", srv.Addr())
	}

	faults := sys.RequestFaults()
	fmt.Printf("macro %q: %d devices, %d faults, %d test configurations\n",
		sys.Golden().Name(), len(sys.Golden().Devices()), len(faults), len(sys.Configs()))

	start := time.Now()
	sols, err := sys.GenerateAllContext(ctx, faults)
	if err != nil {
		return err
	}
	fmt.Printf("generation: %v\n\n", time.Since(start).Round(time.Millisecond))

	if o.verbose {
		t := report.NewTable("fault", "verdict", "config", "params", "S_f", "critical impact")
		for _, sol := range sols {
			if sol.ConfigIdx < 0 {
				// Unresolved (quarantined/undetermined): no test exists.
				t.AddRow(sol.Fault.ID(), string(sol.Verdict()), "-", "-", "-", "-")
				continue
			}
			c := sys.Configs()[sol.ConfigIdx]
			t.AddRow(sol.Fault.ID(), string(sol.Verdict()), c.Name, fmt.Sprintf("%v", sol.Params),
				sol.Sensitivity, report.Engineering(sol.CriticalImpact))
		}
		_, _ = t.WriteTo(os.Stdout)
		fmt.Println()
	}

	d := sys.Tabulate(sols)
	fmt.Println("best-test distribution:")
	for _, id := range d.ConfigIDs() {
		total := 0
		for _, n := range d.Counts[id] {
			total += n
		}
		fmt.Printf("  config #%d: %d faults\n", id, total)
	}
	unresolved := 0
	for _, n := range d.Unresolved {
		unresolved += n
	}
	if unresolved > 0 {
		fmt.Printf("  unresolved: %d faults (undetermined or quarantined)\n", unresolved)
	}

	if q := sys.Quarantined(); len(q) > 0 {
		fmt.Printf("\nquarantined tasks (%d): the run completed without them\n", len(q))
		qt := report.NewTable("fault", "config", "phase", "panic")
		for _, rec := range q {
			cfg := "-"
			if rec.ConfigID >= 0 {
				cfg = fmt.Sprintf("#%d", rec.ConfigID)
			}
			qt.AddRow(rec.FaultID, cfg, rec.Phase, rec.Value)
		}
		_, _ = qt.WriteTo(os.Stdout)
	}

	copt := repro.DefaultCompactOptions()
	copt.Delta = o.delta
	cts, err := sys.CompactContext(ctx, sols, copt)
	if err != nil {
		return err
	}
	cov, err := sys.CoverageContext(ctx, repro.TestsOfCompact(cts), faults)
	if err != nil {
		return err
	}
	fmt.Printf("\ncompacted test set (δ=%.2g): %d tests for %d faults\n", o.delta, len(cts), len(faults))
	t := report.NewTable("test", "config", "params", "covers")
	for i, ct := range cts {
		t.AddRow(i+1, sys.Configs()[ct.ConfigIdx].Name, fmt.Sprintf("%v", ct.Params), len(ct.Members))
	}
	_, _ = t.WriteTo(os.Stdout)
	fmt.Printf("\nfault coverage of the compacted set: %.1f %% (%d/%d)\n",
		cov.Percent(), cov.Detected, cov.Total)
	if wcov, werr := repro.WeightedCoverage(repro.HeuristicIFAWeights(faults), cov); werr == nil {
		fmt.Printf("IFA-weighted coverage: %.1f %%\n", wcov)
	}
	if len(cov.Undetected) > 0 {
		fmt.Println("undetected faults:")
		for _, id := range cov.Undetected {
			fmt.Printf("  %s\n", id)
		}
	}

	// ATE schedule: order the compacted tests by marginal yield per
	// second and estimate the production test time.
	sched, _, err := sys.ScheduleContext(ctx, repro.TestsOfCompact(cts), faults)
	if err != nil {
		return err
	}
	fmt.Printf("\nATE schedule (total application time %v):\n",
		sys.SetTime(repro.TestsOfCompact(cts)).Round(time.Microsecond))
	st := report.NewTable("order", "config", "params", "new detections", "time")
	for i, e := range sched {
		st.AddRow(i+1, sys.Configs()[e.ConfigIdx].Name, fmt.Sprintf("%v", e.Params),
			e.NewDetections, e.Time.Round(time.Microsecond))
	}
	_, _ = st.WriteTo(os.Stdout)

	ss := sys.Stats()
	fmt.Printf("\nsimulation effort: %d nominal + %d faulty runs (%d cache hits, %d non-convergent faulty circuits)\n",
		ss.NominalRuns, ss.FaultyRuns, ss.CacheHits, ss.FaultyFailures)
	if ss.Retries > 0 || ss.Undetermined > 0 || ss.Quarantined > 0 {
		fmt.Printf("resilience: %d optimizer retries, %d undetermined faults, %d quarantined tasks\n",
			ss.Retries, ss.Undetermined, ss.Quarantined)
	}

	if o.resultJSON != "" {
		out, rerr := api.Encode(repro.WireResult(sys, faults, sols, cts, cov, copt.Delta))
		if rerr != nil {
			return rerr
		}
		if rerr := os.WriteFile(o.resultJSON, out, 0o644); rerr != nil {
			return rerr
		}
	}
	if o.stats {
		fmt.Println("\nengine metrics:")
		if err := report.WriteMetrics(os.Stdout, repro.WireMetrics(sys.Metrics())); err != nil {
			return err
		}
	}
	if o.strict && (ss.Undetermined > 0 || ss.Quarantined > 0) {
		return fmt.Errorf("strict: %d undetermined and %d quarantined faults", ss.Undetermined, ss.Quarantined)
	}
	return nil
}
