// Command atpgd is the ATPG job daemon: it serves the versioned job API
// (package api) over HTTP, runs submissions on a bounded worker pool,
// and persists every job's request, checkpoint, journal and result
// under a data directory so a killed daemon resumes incomplete jobs on
// the next start.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions are refused
// with 503, running jobs are canceled — their checkpoints flushed and
// journals sealed — and persisted as interrupted for the next instance
// to resume. A clean drain exits 0.
//
// Usage:
//
//	atpgd [-listen :8723] [-data DIR] [-queue n] [-jobs n]
//	      [-rate r] [-burst n] [-drain-timeout d]
//	      [-mem-high bytes] [-mem-low bytes] [-failpoints SPEC]
//
// Quick start:
//
//	atpgd -data /var/lib/atpgd &
//	curl -X POST localhost:8723/v1/jobs -d '{"v":1,"faults":{"limit":6},
//	     "options":{"box_mode":"seed"}}'
//	curl localhost:8723/v1/jobs/<id>
//	curl localhost:8723/v1/jobs/<id>/result
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":8723", "HTTP listen address")
		dataDir      = flag.String("data", "atpgd-data", "durable data directory (jobs, checkpoints, journals, results)")
		queueCap     = flag.Int("queue", 16, "submission queue bound; beyond it POST /v1/jobs returns 429")
		jobWorkers   = flag.Int("jobs", 1, "jobs executed concurrently (each job parallelizes internally)")
		rate         = flag.Float64("rate", 5, "per-client submissions per second (< 0: unlimited)")
		burst        = flag.Int("burst", 10, "per-client submission burst")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for running jobs to wind down on SIGTERM")
		ckptEvery    = flag.Duration("checkpoint-every", 0, "per-job checkpoint debounce interval (0: 2s default)")
		memHigh      = flag.Uint64("mem-high", 0, "live-heap high watermark in bytes; above it submissions are shed with 503 (0: disabled)")
		memLow       = flag.Uint64("mem-low", 0, "live-heap low watermark in bytes; shedding stops below it (0: 80% of -mem-high)")
		failpoints   = flag.String("failpoints", os.Getenv("ATPGD_FAILPOINTS"), "failpoint spec `site=action[:mod];...` for chaos testing (default $ATPGD_FAILPOINTS)")
	)
	flag.Parse()

	if *failpoints != "" {
		if err := failpoint.Apply(*failpoints); err != nil {
			fmt.Fprintln(os.Stderr, "atpgd: -failpoints:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "atpgd: failpoints armed: %s\n", *failpoints)
	}

	if err := run(*listen, *dataDir, *queueCap, *jobWorkers, *rate, *burst, *drainTimeout, *ckptEvery, *memHigh, *memLow); err != nil {
		fmt.Fprintln(os.Stderr, "atpgd:", err)
		os.Exit(1)
	}
}

func run(listen, dataDir string, queueCap, jobWorkers int, rate float64, burst int, drainTimeout, ckptEvery time.Duration, memHigh, memLow uint64) error {
	srv, err := server.New(server.Options{
		DataDir:         dataDir,
		QueueCap:        queueCap,
		Workers:         jobWorkers,
		RatePerSec:      rate,
		RateBurst:       burst,
		CheckpointEvery: ckptEvery,
		MemHighWater:    memHigh,
		MemLowWater:     memLow,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	fmt.Printf("atpgd: serving on %s, data in %s\n", listen, dataDir)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("atpgd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the job server first (stop accepting, interrupt jobs, flush
	// checkpoints, seal journals), then close the HTTP listener.
	derr := srv.Shutdown(dctx)
	if herr := hs.Shutdown(dctx); derr == nil {
		derr = herr
	}
	if derr != nil {
		return derr
	}
	fmt.Println("atpgd: drained cleanly")
	return nil
}
