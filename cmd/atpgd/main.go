// Command atpgd is the ATPG job daemon: it serves the versioned job API
// (package api) over HTTP, runs submissions on a bounded worker pool,
// and persists every job's request, checkpoint, journal and result
// under a data directory so a killed daemon resumes incomplete jobs on
// the next start.
//
// SIGTERM (or SIGINT) drains gracefully: new submissions are refused
// with 503, running jobs are canceled — their checkpoints flushed and
// journals sealed — and persisted as interrupted for the next instance
// to resume. A clean drain exits 0.
//
// With -dist the daemon becomes a shard coordinator: each job's fault
// list is partitioned into shards and fanned out to worker processes
// that registered over HTTP, and the merged result is byte-identical
// to a single-node run of the same request. Workers are the same
// binary started with -worker -join; they hold no durable state, so
// killing one mid-shard costs a shard retry, never the job.
//
// Usage:
//
//	atpgd [-listen :8723] [-data DIR] [-queue n] [-jobs n]
//	      [-rate r] [-burst n] [-drain-timeout d]
//	      [-mem-high bytes] [-mem-low bytes] [-failpoints SPEC]
//	      [-dist] [-shard-size n] [-worker-lease d] [-poll-wait d]
//	      [-fallback-grace d]
//	atpgd -worker -join URL [-worker-name NAME] [-failpoints SPEC]
//
// Quick start (single node):
//
//	atpgd -data /var/lib/atpgd &
//	curl -X POST localhost:8723/v1/jobs -d '{"v":1,"faults":{"limit":6},
//	     "options":{"box_mode":"seed"}}'
//	curl localhost:8723/v1/jobs/<id>
//	curl localhost:8723/v1/jobs/<id>/result
//
// Distributed:
//
//	atpgd -dist -data /var/lib/atpgd &
//	atpgd -worker -join http://localhost:8723 -worker-name w1 &
//	atpgd -worker -join http://localhost:8723 -worker-name w2 &
//	curl -X POST localhost:8723/v1/jobs -d '{"v":1,"faults":{"limit":6},
//	     "options":{"box_mode":"seed"}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/failpoint"
	"repro/internal/server"
)

func main() {
	var (
		listen       = flag.String("listen", ":8723", "HTTP listen address")
		dataDir      = flag.String("data", "atpgd-data", "durable data directory (jobs, checkpoints, journals, results)")
		queueCap     = flag.Int("queue", 16, "submission queue bound; beyond it POST /v1/jobs returns 429")
		jobWorkers   = flag.Int("jobs", 1, "jobs executed concurrently (each job parallelizes internally)")
		rate         = flag.Float64("rate", 5, "per-client submissions per second (< 0: unlimited)")
		burst        = flag.Int("burst", 10, "per-client submission burst")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "maximum time to wait for running jobs to wind down on SIGTERM")
		ckptEvery    = flag.Duration("checkpoint-every", 0, "per-job checkpoint debounce interval (0: 2s default)")
		memHigh      = flag.Uint64("mem-high", 0, "live-heap high watermark in bytes; above it submissions are shed with 503 (0: disabled)")
		memLow       = flag.Uint64("mem-low", 0, "live-heap low watermark in bytes; shedding stops below it (0: 80% of -mem-high)")
		failpoints   = flag.String("failpoints", os.Getenv("ATPGD_FAILPOINTS"), "failpoint spec `site=action[:mod];...` for chaos testing (default $ATPGD_FAILPOINTS)")

		dist          = flag.Bool("dist", false, "coordinate jobs across registered shard workers")
		shardSize     = flag.Int("shard-size", 8, "faults per shard in distributed mode")
		workerLease   = flag.Duration("worker-lease", 10*time.Second, "shard lease; a worker silent this long forfeits its shard")
		pollWait      = flag.Duration("poll-wait", 20*time.Second, "long-poll window of the worker shard poll")
		fallbackGrace = flag.Duration("fallback-grace", 2*time.Second, "how long a job tolerates an empty worker fleet before the coordinator runs shards itself")

		workerMode = flag.Bool("worker", false, "run as a shard worker instead of a daemon")
		join       = flag.String("join", "", "coordinator base URL to join (worker mode, e.g. http://host:8723)")
		workerName = flag.String("worker-name", "", "worker label for metrics and journal attribution (default: coordinator-assigned)")
	)
	flag.Parse()

	// atpgd takes no positional arguments. Rejecting strays matters
	// because the flag package stops parsing at the first non-flag
	// argument: `atpgd -dist 2 -shard-size 4` would otherwise silently
	// drop -shard-size (-dist is boolean; "2" ends parsing).
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "atpgd: unexpected argument %q (flags after it were ignored; -dist takes no value)\n", flag.Arg(0))
		os.Exit(2)
	}

	if *failpoints != "" {
		if err := failpoint.Apply(*failpoints); err != nil {
			fmt.Fprintln(os.Stderr, "atpgd: -failpoints:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "atpgd: failpoints armed: %s\n", *failpoints)
	}

	if *workerMode {
		if *join == "" {
			fmt.Fprintln(os.Stderr, "atpgd: -worker requires -join URL")
			os.Exit(2)
		}
		if err := runWorker(*join, *workerName); err != nil {
			fmt.Fprintln(os.Stderr, "atpgd:", err)
			os.Exit(1)
		}
		return
	}

	opt := server.Options{
		DataDir:         *dataDir,
		QueueCap:        *queueCap,
		Workers:         *jobWorkers,
		RatePerSec:      *rate,
		RateBurst:       *burst,
		CheckpointEvery: *ckptEvery,
		MemHighWater:    *memHigh,
		MemLowWater:     *memLow,
		Distributed:     *dist,
		ShardSize:       *shardSize,
		WorkerLease:     *workerLease,
		PollWait:        *pollWait,
		FallbackGrace:   *fallbackGrace,
	}
	if err := run(*listen, opt, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "atpgd:", err)
		os.Exit(1)
	}
}

// runWorker runs the shard-worker loop until SIGTERM/SIGINT.
func runWorker(join, name string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("atpgd: worker joining %s\n", join)
	err := server.RunWorker(ctx, server.WorkerOptions{Coordinator: join, Name: name})
	if err == context.Canceled {
		fmt.Println("atpgd: worker stopped")
		return nil
	}
	return err
}

func run(listen string, opt server.Options, drainTimeout time.Duration) error {
	srv, err := server.New(opt)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	mode := ""
	if opt.Distributed {
		mode = " (distributed coordinator)"
	}
	fmt.Printf("atpgd: serving on %s, data in %s%s\n", listen, opt.DataDir, mode)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("atpgd: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain the job server first (stop accepting, interrupt jobs, flush
	// checkpoints, seal journals), then close the HTTP listener.
	derr := srv.Shutdown(dctx)
	if herr := hs.Shutdown(dctx); derr == nil {
		derr = herr
	}
	if derr != nil {
		return derr
	}
	fmt.Println("atpgd: drained cleanly")
	return nil
}
