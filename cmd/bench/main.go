// Command bench runs the fixed simulation benchmark suite and writes
// BENCH_sim.json: one entry per kernel or end-to-end workload, with the
// measured numbers, the checked-in pre-split-engine baseline, and the
// solver-kernel counters each workload consumed.
//
//	go run ./cmd/bench                          # writes BENCH_sim.json
//	go run ./cmd/bench -readme                  # also refresh the README table
//	go run ./cmd/bench -compare BENCH_sim.json  # CI gate: fail on regression
//
// The pre-split baselines were measured against the stamp-everything
// engine (before the split-stamp/linear-snapshot rewrite) by running
// this suite's workload definitions against that tree; the pre-lowrank
// baseline of impact_search is measured live in the same run by forcing
// the throwaway insert+restamp path, so the recorded ratio is
// machine-consistent by construction.
//
// -compare re-runs the suite and diffs it against a checked-in report:
// any workload whose ns/op regresses by more than -tolerance (default
// 10 %) fails the run with a nonzero exit, so CI catches perf
// regressions instead of silently rewriting the JSON. Workloads that
// record a latency distribution (impact_search) additionally carry a
// p99, gated at twice the ns/op tolerance — tails are noisier than
// means, but a blown tail is exactly what the mean hides.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/mna"
	"repro/internal/obs/hist"
	"repro/internal/sim"
	"repro/internal/testcfg"
	"repro/internal/wave"
)

// baseline is a reference measurement of a workload: either the
// checked-in pre-split-engine numbers or a live pre-lowrank run.
type baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// solverWork is the per-op delta of the simulation kernel counters.
type solverWork struct {
	Stamps              float64 `json:"stamps"`
	Factorizations      float64 `json:"factorizations"`
	FactorReuses        float64 `json:"factor_reuses"`
	NewtonIterations    float64 `json:"newton_iterations"`
	BaseHits            float64 `json:"base_hits"`
	WoodburySolves      float64 `json:"woodbury_solves,omitempty"`
	WoodburyFallbacks   float64 `json:"woodbury_fallbacks,omitempty"`
	FaultyFactorAvoided float64 `json:"faulty_factor_avoided,omitempty"`
}

// result is one emitted workload row. Each workload carries whichever
// baselines apply: the historical pre-split numbers, and/or the
// pre-lowrank throwaway path measured in the same run.
type result struct {
	Name        string  `json:"name"`
	Desc        string  `json:"desc"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// P99NsPerOp is the tail of the per-op latency distribution, present
	// only for workloads that record one (impact_search). The mean of a
	// generation workload hides the impact-ladder tail; this doesn't.
	P99NsPerOp         float64    `json:"p99_ns_per_op,omitempty"`
	Baseline           *baseline  `json:"baseline_pre_split,omitempty"`
	BaselinePreLowrank *baseline  `json:"baseline_pre_lowrank,omitempty"`
	Speedup            float64    `json:"speedup"`
	Solver             solverWork `json:"solver_per_op"`
}

// report is the BENCH_sim.json document. BaselineCommit records the
// tree the numbers were measured at (git rev-parse --short HEAD at
// emit time).
type report struct {
	BaselineCommit string   `json:"baseline_commit"`
	GoVersion      string   `json:"go_version"`
	GOARCH         string   `json:"goarch"`
	GOMAXPROCS     int      `json:"gomaxprocs"`
	Workloads      []result `json:"workloads"`
}

// workload pairs a benchmark body with its reference measurements.
// slow, when set, is an alternate body implementing the pre-lowrank
// path; it is benchmarked in the same process and recorded as
// baseline_pre_lowrank.
type workload struct {
	name string
	desc string
	base *baseline
	fn   func(b *testing.B)
	slow func(b *testing.B)
	// lat, when non-nil, is the per-op latency histogram the body records
	// into; its p99 lands in the JSON next to ns/op.
	lat *hist.Histogram
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path for the JSON report")
	readme := flag.Bool("readme", false, "also refresh the benchmark table in README.md between the bench-table markers")
	comparePath := flag.String("compare", "", "compare against a checked-in report instead of writing one; exit nonzero on ns/op regression beyond -tolerance")
	tolerance := flag.Float64("tolerance", 0.10, "relative ns/op regression allowed by -compare (0.10 = 10 %)")
	flag.Parse()

	rep := report{
		BaselineCommit: headCommit(),
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
	}
	for _, w := range workloads() {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			w.fn(b)
		})
		t := sim.Totals()
		n := float64(res.N)
		r := result{
			Name:        w.name,
			Desc:        w.desc,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Baseline:    w.base,
			Solver: solverWork{
				Stamps:              float64(t.Stamps) / n,
				Factorizations:      float64(t.Factorizations) / n,
				FactorReuses:        float64(t.FactorReuses) / n,
				NewtonIterations:    float64(t.NewtonIterations) / n,
				BaseHits:            float64(t.BaseHits) / n,
				WoodburySolves:      float64(t.WoodburySolves) / n,
				WoodburyFallbacks:   float64(t.WoodburyFallbacks) / n,
				FaultyFactorAvoided: float64(t.FaultyFactorAvoided) / n,
			},
		}
		if w.slow != nil {
			sres := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				w.slow(b)
			})
			r.BaselinePreLowrank = &baseline{
				NsPerOp:     float64(sres.NsPerOp()),
				BytesPerOp:  sres.AllocedBytesPerOp(),
				AllocsPerOp: sres.AllocsPerOp(),
			}
		}
		if w.lat != nil {
			if s := w.lat.Snapshot(); s.Count > 0 {
				r.P99NsPerOp = float64(s.P99())
			}
		}
		if ref := r.reference(); ref != nil && r.NsPerOp > 0 {
			r.Speedup = ref.NsPerOp / r.NsPerOp
		}
		tail := ""
		if r.P99NsPerOp > 0 {
			tail = fmt.Sprintf("   p99 %.0f ns", r.P99NsPerOp)
		}
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op   %.2fx vs baseline%s\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Speedup, tail)
		rep.Workloads = append(rep.Workloads, r)
	}

	if *comparePath != "" {
		if err := compare(*comparePath, rep, *tolerance); err != nil {
			fail(err)
		}
		fmt.Printf("no ns/op regression beyond %.0f %% vs %s\n", *tolerance*100, *comparePath)
		return
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *readme {
		if err := refreshReadme("README.md", rep); err != nil {
			fail(err)
		}
		fmt.Println("refreshed README.md bench table")
	}
}

// reference returns the baseline the workload's speedup is quoted
// against: the historical pre-split numbers when present, otherwise the
// live pre-lowrank measurement.
func (r result) reference() *baseline {
	if r.Baseline != nil {
		return r.Baseline
	}
	return r.BaselinePreLowrank
}

// headCommit stamps the provenance field from the work tree; outside a
// git checkout the field degrades to "unknown" rather than failing the
// run.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// compare diffs the fresh measurements against a checked-in report by
// workload name: ns/op gated at tol, and — when both reports carry one
// — p99 gated at twice tol, since the tail of a distribution is noisier
// than its mean (allocation counts and solver work stay informational).
// It returns an error listing every workload that regressed beyond its
// bound.
func compare(path string, fresh report, tol float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	oldBy := make(map[string]result, len(old.Workloads))
	for _, w := range old.Workloads {
		oldBy[w.Name] = w
	}
	var regressions []string
	for _, w := range fresh.Workloads {
		prev, ok := oldBy[w.Name]
		if !ok || prev.NsPerOp <= 0 {
			fmt.Printf("%-24s not in %s, skipped\n", w.Name, path)
			continue
		}
		ratio := w.NsPerOp/prev.NsPerOp - 1
		fmt.Printf("%-24s %12.0f ns/op vs %12.0f checked in  (%+.1f %%)\n",
			w.Name, w.NsPerOp, prev.NsPerOp, ratio*100)
		if ratio > tol {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed %.1f %% (%.0f -> %.0f ns/op)", w.Name, ratio*100, prev.NsPerOp, w.NsPerOp))
		}
		if prev.P99NsPerOp > 0 && w.P99NsPerOp > 0 {
			p99Tol := 2 * tol
			p99Ratio := w.P99NsPerOp/prev.P99NsPerOp - 1
			fmt.Printf("%-24s %12.0f p99   vs %12.0f checked in  (%+.1f %%, bound %.0f %%)\n",
				w.Name, w.P99NsPerOp, prev.P99NsPerOp, p99Ratio*100, p99Tol*100)
			if p99Ratio > p99Tol {
				regressions = append(regressions,
					fmt.Sprintf("%s p99 regressed %.1f %% (%.0f -> %.0f ns)", w.Name, p99Ratio*100, prev.P99NsPerOp, w.P99NsPerOp))
			}
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/op regressions beyond %.0f %%:\n  %s",
			tol*100, strings.Join(regressions, "\n  "))
	}
	return nil
}

// refreshReadme rewrites the benchmark table between the bench-table
// markers from the freshly measured report.
func refreshReadme(path string, rep report) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	const startMark = "<!-- bench-table-start"
	const endMark = "<!-- bench-table-end -->"
	s := string(src)
	i := strings.Index(s, startMark)
	j := strings.Index(s, endMark)
	if i < 0 || j < 0 || j < i {
		return fmt.Errorf("bench-table markers not found in %s", path)
	}
	// Preserve the start-marker line itself (it carries the howto).
	nl := strings.Index(s[i:], "\n")
	if nl < 0 {
		return fmt.Errorf("malformed start marker in %s", path)
	}
	var t strings.Builder
	t.WriteString("| workload | description | before | after | allocs/op | speedup |\n")
	t.WriteString("|---|---|---|---|---|---|\n")
	fmtNs := func(ns float64) string {
		if ns >= 1e3 {
			return fmt.Sprintf("%.1f µs", ns/1e3)
		}
		return fmt.Sprintf("%.0f ns", ns)
	}
	for _, w := range rep.Workloads {
		ref := w.reference()
		if ref == nil {
			ref = &baseline{}
		}
		fmt.Fprintf(&t, "| `%s` | %s | %s | %s | %d → %d | %.2f× |\n",
			w.Name, w.Desc, fmtNs(ref.NsPerOp), fmtNs(w.NsPerOp),
			ref.AllocsPerOp, w.AllocsPerOp, w.Speedup)
	}
	out := s[:i+nl+1] + t.String() + s[j:]
	return os.WriteFile(path, []byte(out), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// ladderCircuit is the linear-network kernel workload: a 16-node
// resistive ladder with cross-bridge resistors, mirroring what the
// bridging-fault dictionary does to a macro netlist (resistors between
// arbitrary node pairs densify the MNA matrix). On a linear circuit the
// stamped matrix is identical across iterations and sweep points, so
// the sweep isolates the split-stamp engine's snapshot restore and
// same-pattern factorization reuse.
func ladderCircuit() *circuit.Circuit {
	const nodes = 16
	c := circuit.New("bridged-ladder")
	node := func(i int) string { return fmt.Sprintf("n%d", (i-1)%nodes+1) }
	c.Add(device.NewISource("Iin", node(1), "0", wave.DC(0)))
	for i := 1; i < nodes; i++ {
		c.Add(device.NewResistor(fmt.Sprintf("Rs%d", i), node(i), node(i+1), 1e3))
	}
	for i := 1; i <= nodes; i++ {
		c.Add(device.NewResistor(fmt.Sprintf("Rp%d", i), node(i), "0", 10e3))
	}
	for _, stride := range []int{2, 3, 5, 7, 11} {
		for i := 1; i <= nodes; i += 2 {
			c.Add(device.NewResistor(fmt.Sprintf("Rb%d_%d", stride, i), node(i), node(i+stride), 25e3))
		}
	}
	return c
}

// impactSearchBody is the impact-search hot loop the low-rank path
// targets: full test generation — per-config optimization plus the
// relax/intensify impact ladder — for one bridging fault on the
// IV-converter. The disable variant forces every faulty evaluation
// through the throwaway insert+compile+factor route and is recorded as
// baseline_pre_lowrank, so the JSON carries a machine-consistent before
// and after of the same run. Workers=1 keeps the measurement a pure
// single-thread comparison. When h is non-nil, every Generate records
// its latency, so the report carries the distribution tail (p99)
// alongside the mean.
func impactSearchBody(disableFast bool, h *hist.Histogram) func(b *testing.B) {
	return func(b *testing.B) {
		scfg := core.DefaultConfig()
		scfg.BoxMode = core.BoxSeed
		scfg.Workers = 1
		scfg.DisableFastPath = disableFast
		s, err := core.NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], scfg)
		if err != nil {
			b.Fatal(err)
		}
		f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
		b.ResetTimer()
		sim.ResetTotals()
		for i := 0; i < b.N; i++ {
			t0 := time.Now()
			if _, err := s.Generate(f); err != nil {
				b.Fatal(err)
			}
			if h != nil {
				h.RecordDuration(time.Since(t0))
			}
		}
	}
}

// impactSearchWorkload builds the impact_search row with its latency
// histogram: the fast path records per-Generate latency (the slow
// variant doesn't — its distribution isn't reported).
func impactSearchWorkload() workload {
	h := hist.New()
	return workload{
		name: "impact_search",
		desc: "impact-ladder search for one feedback bridge (retained low-rank evaluators)",
		fn:   impactSearchBody(false, h),
		slow: impactSearchBody(true, nil),
		lat:  h,
	}
}

// workloads returns the fixed suite. Baseline numbers were measured at
// the baseline commit with the same workload bodies (2 s benchtime).
func workloads() []workload {
	return []workload{
		{
			name: "lu_factor_solve_12",
			desc: "dense real LU factor+solve, n=12 (mna kernel)",
			base: &baseline{NsPerOp: 1138, BytesPerOp: 96, AllocsPerOp: 1},
			fn: func(b *testing.B) {
				n := 12
				s := mna.NewSystem(n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						v := 1.0 / float64(1+i+j)
						if i == j {
							v += float64(n)
						}
						s.Add(i, j, v)
					}
					s.AddRHS(i, float64(i))
				}
				dst := make([]float64, n)
				save := make([]float64, n*n)
				s.SaveMatrix(save)
				// Dither one diagonal entry so the same-pattern reuse
				// cannot fire: this row measures a full factorization
				// plus substitution, like the pre-split FactorSolve.
				jitter := [2]float64{0, 1e-9}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					s.SetMatrix(save)
					s.Add(0, 0, jitter[i&1])
					if _, err := s.FactorSolveInto(dst); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "op_cold",
			desc: "cold DC operating point of the IV-converter macro",
			base: &baseline{NsPerOp: 20390, BytesPerOp: 1968, AllocsPerOp: 21},
			fn: func(b *testing.B) {
				eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.OperatingPoint(); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "newton_warm_sweep16",
			desc: "16-point warm DC sweep of the IV-converter (steady-state Newton)",
			base: &baseline{NsPerOp: 55084, BytesPerOp: 6992, AllocsPerOp: 87},
			fn: func(b *testing.B) {
				eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				vals := make([]float64, 16)
				for i := range vals {
					vals[i] = 20e-6
				}
				if _, err := eng.SweepDC(macros.InputSourceName, vals); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.SweepDC(macros.InputSourceName, vals); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "newton_linear_sweep32",
			desc: "32-point DC sweep of a bridged resistive ladder (linear Newton kernel)",
			base: &baseline{NsPerOp: 163877, BytesPerOp: 13704, AllocsPerOp: 133},
			fn: func(b *testing.B) {
				eng, err := sim.New(ladderCircuit(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				vals := make([]float64, 32)
				for i := range vals {
					vals[i] = float64(i) * 1e-6
				}
				if _, err := eng.SweepDC("Iin", vals); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.SweepDC("Iin", vals); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "ac_sweep_64",
			desc: "64-point AC Bode sweep of the IV-converter",
			base: &baseline{NsPerOp: 149230, BytesPerOp: 30696, AllocsPerOp: 142},
			fn: func(b *testing.B) {
				eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				xop, err := eng.OperatingPoint()
				if err != nil {
					b.Fatal(err)
				}
				freqs := sim.LogSpace(1e3, 1e9, 64)
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.AC(xop, macros.InputSourceName, freqs); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "transient_step",
			desc: "7.5 µs step response of the IV-converter (fixed 10 ns steps)",
			base: &baseline{NsPerOp: 2020944, BytesPerOp: 299857, AllocsPerOp: 3203},
			fn: func(b *testing.B) {
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					ckt := macros.IVConverter()
					macros.SetInputWave(ckt, wave.Step{Base: 5e-6, Elev: 20e-6, Delay: 10e-9, Rise: 10e-9})
					eng, err := sim.New(ckt, sim.DefaultOptions())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.Transient(7.5e-6, 10e-9, []string{macros.NodeVout}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		impactSearchWorkload(),
		{
			name: "coverage_dc",
			desc: "DC fault-dictionary generation: 3 faults x 2 configs end to end",
			base: &baseline{NsPerOp: 9793904, BytesPerOp: 4176768, AllocsPerOp: 43896},
			fn: func(b *testing.B) {
				scfg := core.DefaultConfig()
				scfg.BoxMode = core.BoxSeed
				s, err := core.NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], scfg)
				if err != nil {
					b.Fatal(err)
				}
				faults := []fault.Fault{
					fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
					fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
					fault.NewPinhole("M6", 2e3),
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := s.GenerateAll(faults); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}
