// Command bench runs the fixed simulation benchmark suite and writes
// BENCH_sim.json: one entry per kernel or end-to-end workload, with the
// measured numbers, the checked-in pre-split-engine baseline, and the
// solver-kernel counters each workload consumed.
//
//	go run ./cmd/bench            # writes BENCH_sim.json
//	go run ./cmd/bench -readme    # also refresh the README table
//
// The baselines were measured at commit 3ccd4fa (the stamp-everything
// engine, before the split-stamp/linear-snapshot rewrite) on the same
// machine that produced the checked-in numbers, by running this suite's
// workload definitions against that tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/mna"
	"repro/internal/sim"
	"repro/internal/testcfg"
	"repro/internal/wave"
)

// baseline is the pre-split-engine measurement of a workload.
type baseline struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// solverWork is the per-op delta of the simulation kernel counters.
type solverWork struct {
	Stamps           float64 `json:"stamps"`
	Factorizations   float64 `json:"factorizations"`
	FactorReuses     float64 `json:"factor_reuses"`
	NewtonIterations float64 `json:"newton_iterations"`
	BaseHits         float64 `json:"base_hits"`
}

// result is one emitted workload row.
type result struct {
	Name        string     `json:"name"`
	Desc        string     `json:"desc"`
	NsPerOp     float64    `json:"ns_per_op"`
	BytesPerOp  int64      `json:"bytes_per_op"`
	AllocsPerOp int64      `json:"allocs_per_op"`
	Baseline    baseline   `json:"baseline_pre_split"`
	Speedup     float64    `json:"speedup"`
	Solver      solverWork `json:"solver_per_op"`
}

// report is the BENCH_sim.json document.
type report struct {
	BaselineCommit string   `json:"baseline_commit"`
	GoVersion      string   `json:"go_version"`
	GOARCH         string   `json:"goarch"`
	Workloads      []result `json:"workloads"`
}

// workload pairs a benchmark body with its checked-in baseline.
type workload struct {
	name string
	desc string
	base baseline
	fn   func(b *testing.B)
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output path for the JSON report")
	readme := flag.Bool("readme", false, "also refresh the benchmark table in README.md between the bench-table markers")
	flag.Parse()

	rep := report{
		BaselineCommit: "3ccd4fa",
		GoVersion:      runtime.Version(),
		GOARCH:         runtime.GOARCH,
	}
	for _, w := range workloads() {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			w.fn(b)
		})
		t := sim.Totals()
		n := float64(res.N)
		r := result{
			Name:        w.name,
			Desc:        w.desc,
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Baseline:    w.base,
			Solver: solverWork{
				Stamps:           float64(t.Stamps) / n,
				Factorizations:   float64(t.Factorizations) / n,
				FactorReuses:     float64(t.FactorReuses) / n,
				NewtonIterations: float64(t.NewtonIterations) / n,
				BaseHits:         float64(t.BaseHits) / n,
			},
		}
		if r.NsPerOp > 0 {
			r.Speedup = w.base.NsPerOp / r.NsPerOp
		}
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op   %.2fx vs baseline\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Speedup)
		rep.Workloads = append(rep.Workloads, r)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *readme {
		if err := refreshReadme("README.md", rep); err != nil {
			fail(err)
		}
		fmt.Println("refreshed README.md bench table")
	}
}

// refreshReadme rewrites the benchmark table between the bench-table
// markers from the freshly measured report.
func refreshReadme(path string, rep report) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	const startMark = "<!-- bench-table-start"
	const endMark = "<!-- bench-table-end -->"
	s := string(src)
	i := strings.Index(s, startMark)
	j := strings.Index(s, endMark)
	if i < 0 || j < 0 || j < i {
		return fmt.Errorf("bench-table markers not found in %s", path)
	}
	// Preserve the start-marker line itself (it carries the howto).
	nl := strings.Index(s[i:], "\n")
	if nl < 0 {
		return fmt.Errorf("malformed start marker in %s", path)
	}
	var t strings.Builder
	t.WriteString("| workload | description | before | after | allocs/op | speedup |\n")
	t.WriteString("|---|---|---|---|---|---|\n")
	fmtNs := func(ns float64) string {
		if ns >= 1e3 {
			return fmt.Sprintf("%.1f µs", ns/1e3)
		}
		return fmt.Sprintf("%.0f ns", ns)
	}
	for _, w := range rep.Workloads {
		fmt.Fprintf(&t, "| `%s` | %s | %s | %s | %d → %d | %.2f× |\n",
			w.Name, w.Desc, fmtNs(w.Baseline.NsPerOp), fmtNs(w.NsPerOp),
			w.Baseline.AllocsPerOp, w.AllocsPerOp, w.Speedup)
	}
	out := s[:i+nl+1] + t.String() + s[j:]
	return os.WriteFile(path, []byte(out), 0o644)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// ladderCircuit is the linear-network kernel workload: a 16-node
// resistive ladder with cross-bridge resistors, mirroring what the
// bridging-fault dictionary does to a macro netlist (resistors between
// arbitrary node pairs densify the MNA matrix). On a linear circuit the
// stamped matrix is identical across iterations and sweep points, so
// the sweep isolates the split-stamp engine's snapshot restore and
// same-pattern factorization reuse.
func ladderCircuit() *circuit.Circuit {
	const nodes = 16
	c := circuit.New("bridged-ladder")
	node := func(i int) string { return fmt.Sprintf("n%d", (i-1)%nodes+1) }
	c.Add(device.NewISource("Iin", node(1), "0", wave.DC(0)))
	for i := 1; i < nodes; i++ {
		c.Add(device.NewResistor(fmt.Sprintf("Rs%d", i), node(i), node(i+1), 1e3))
	}
	for i := 1; i <= nodes; i++ {
		c.Add(device.NewResistor(fmt.Sprintf("Rp%d", i), node(i), "0", 10e3))
	}
	for _, stride := range []int{2, 3, 5, 7, 11} {
		for i := 1; i <= nodes; i += 2 {
			c.Add(device.NewResistor(fmt.Sprintf("Rb%d_%d", stride, i), node(i), node(i+stride), 25e3))
		}
	}
	return c
}

// workloads returns the fixed suite. Baseline numbers were measured at
// the baseline commit with the same workload bodies (2 s benchtime).
func workloads() []workload {
	return []workload{
		{
			name: "lu_factor_solve_12",
			desc: "dense real LU factor+solve, n=12 (mna kernel)",
			base: baseline{NsPerOp: 1138, BytesPerOp: 96, AllocsPerOp: 1},
			fn: func(b *testing.B) {
				n := 12
				s := mna.NewSystem(n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						v := 1.0 / float64(1+i+j)
						if i == j {
							v += float64(n)
						}
						s.Add(i, j, v)
					}
					s.AddRHS(i, float64(i))
				}
				dst := make([]float64, n)
				save := make([]float64, n*n)
				s.SaveMatrix(save)
				// Dither one diagonal entry so the same-pattern reuse
				// cannot fire: this row measures a full factorization
				// plus substitution, like the pre-split FactorSolve.
				jitter := [2]float64{0, 1e-9}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					s.SetMatrix(save)
					s.Add(0, 0, jitter[i&1])
					if _, err := s.FactorSolveInto(dst); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "op_cold",
			desc: "cold DC operating point of the IV-converter macro",
			base: baseline{NsPerOp: 20390, BytesPerOp: 1968, AllocsPerOp: 21},
			fn: func(b *testing.B) {
				eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.OperatingPoint(); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "newton_warm_sweep16",
			desc: "16-point warm DC sweep of the IV-converter (steady-state Newton)",
			base: baseline{NsPerOp: 55084, BytesPerOp: 6992, AllocsPerOp: 87},
			fn: func(b *testing.B) {
				eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				vals := make([]float64, 16)
				for i := range vals {
					vals[i] = 20e-6
				}
				if _, err := eng.SweepDC(macros.InputSourceName, vals); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.SweepDC(macros.InputSourceName, vals); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "newton_linear_sweep32",
			desc: "32-point DC sweep of a bridged resistive ladder (linear Newton kernel)",
			base: baseline{NsPerOp: 163877, BytesPerOp: 13704, AllocsPerOp: 133},
			fn: func(b *testing.B) {
				eng, err := sim.New(ladderCircuit(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				vals := make([]float64, 32)
				for i := range vals {
					vals[i] = float64(i) * 1e-6
				}
				if _, err := eng.SweepDC("Iin", vals); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.SweepDC("Iin", vals); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "ac_sweep_64",
			desc: "64-point AC Bode sweep of the IV-converter",
			base: baseline{NsPerOp: 149230, BytesPerOp: 30696, AllocsPerOp: 142},
			fn: func(b *testing.B) {
				eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				xop, err := eng.OperatingPoint()
				if err != nil {
					b.Fatal(err)
				}
				freqs := sim.LogSpace(1e3, 1e9, 64)
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := eng.AC(xop, macros.InputSourceName, freqs); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "transient_step",
			desc: "7.5 µs step response of the IV-converter (fixed 10 ns steps)",
			base: baseline{NsPerOp: 2020944, BytesPerOp: 299857, AllocsPerOp: 3203},
			fn: func(b *testing.B) {
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					ckt := macros.IVConverter()
					macros.SetInputWave(ckt, wave.Step{Base: 5e-6, Elev: 20e-6, Delay: 10e-9, Rise: 10e-9})
					eng, err := sim.New(ckt, sim.DefaultOptions())
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.Transient(7.5e-6, 10e-9, []string{macros.NodeVout}); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			name: "coverage_dc",
			desc: "DC fault-dictionary generation: 3 faults x 2 configs end to end",
			base: baseline{NsPerOp: 9793904, BytesPerOp: 4176768, AllocsPerOp: 43896},
			fn: func(b *testing.B) {
				scfg := core.DefaultConfig()
				scfg.BoxMode = core.BoxSeed
				s, err := core.NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], scfg)
				if err != nil {
					b.Fatal(err)
				}
				faults := []fault.Fault{
					fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
					fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
					fault.NewPinhole("M6", 2e3),
				}
				b.ResetTimer()
				sim.ResetTotals()
				for i := 0; i < b.N; i++ {
					if _, err := s.GenerateAll(faults); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}
