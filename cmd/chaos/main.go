// Command chaos is the deterministic soak harness for atpgd: it runs a
// seeded failpoint schedule against a live in-process daemon and
// asserts the three robustness invariants of the runtime:
//
//  1. the server never wedges — every step ends with the daemon
//     answering /v1/server;
//  2. every sealed journal on disk validates against its declared
//     schema (the obslint contract);
//  3. results that survive the chaos are byte-identical to an
//     uninjected reference run of the same request — including jobs
//     killed mid-flight and resumed from their checkpoints.
//
// The schedule is a pure function of -seed: two runs with the same
// seed inject the same failures into the same jobs in the same order
// (-print-schedule emits it without running, which is what the CI
// determinism check diffs). Injections on regular jobs are
// identity-safe — persistence and streaming failures that can never
// change a result, only lose durability or events — plus daemon
// kill/restart cycles. One designated victim job takes a task panic to
// drive the quarantine machinery end to end.
//
// With -dist n the soak runs the daemon as a shard coordinator with n
// in-process workers. The schedule then also kills workers mid-shard
// (a replacement joins immediately) and injects failures into the
// shard RPC paths — poll, assignment, result delivery — all of which
// must cost at most a shard retry. The byte-identity reference stays a
// single-node daemon: every distributed result is compared against the
// bytes a plain run of the same request produces.
//
// Usage:
//
//	chaos [-seed 1] [-jobs 20] [-data DIR] [-keep] [-print-schedule]
//	      [-dist n]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/api"
	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		seed          = flag.Uint64("seed", 1, "chaos schedule seed")
		jobs          = flag.Int("jobs", 20, "soak length in jobs")
		dataRoot      = flag.String("data", "", "data directory (default: a temp dir, removed on success)")
		keep          = flag.Bool("keep", false, "keep the data directory on success")
		printSchedule = flag.Bool("print-schedule", false, "print the injection schedule and exit")
		distWorkers   = flag.Int("dist", 0, "run the chaos daemon as a shard coordinator with n in-process workers (0: single-node)")
	)
	flag.Parse()

	sched := buildSchedule(*seed, *jobs, *distWorkers > 0)
	if *printSchedule {
		for _, st := range sched {
			fmt.Println(st)
		}
		return
	}

	root := *dataRoot
	if root == "" {
		dir, err := os.MkdirTemp("", "chaos-*")
		if err != nil {
			fatalf("temp dir: %v", err)
		}
		root = dir
	}
	fmt.Printf("chaos: seed %d, %d jobs, data in %s\n", *seed, *jobs, root)

	failpoint.Seed(*seed)
	if err := soak(root, sched, *distWorkers); err != nil {
		fatalf("%v", err)
	}
	if !*keep && *dataRoot == "" {
		os.RemoveAll(root)
	}
	fmt.Println("chaos: soak passed")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaos: "+format+"\n", args...)
	os.Exit(1)
}

// step is one entry of the soak schedule. Everything in it derives
// from the seed alone.
type step struct {
	Index      int
	Limit      int    // fault-dictionary prefix of the job request
	Workers    int    // session workers of the job request
	Inject     string // failpoint assignments armed for this job ("" = none)
	Kill       bool   // kill the daemon mid-job and restart over its data dir
	KillWorker bool   // kill one shard worker mid-job (distributed runs only)
	Victim     bool   // task-panic victim: quarantine expected, no byte compare
}

func (s step) String() string {
	b := fmt.Sprintf("step %02d: limit=%d workers=%d", s.Index, s.Limit, s.Workers)
	if s.Inject != "" {
		b += " inject=" + s.Inject
	}
	if s.Kill {
		b += " kill"
	}
	if s.KillWorker {
		b += " kill-worker"
	}
	if s.Victim {
		b += " victim"
	}
	return b
}

func (s step) request() api.JobRequest {
	return api.JobRequest{
		V:       api.Version,
		Macro:   api.MacroSpec{Builtin: api.MacroSimpleIVConverter},
		Faults:  api.FaultSpec{Limit: s.Limit},
		Options: api.RunOptions{BoxMode: api.BoxModeSeed, Workers: s.Workers},
	}
}

// key identifies the reference result this step's job must match.
func (s step) key() string { return fmt.Sprintf("limit%d-workers%d", s.Limit, s.Workers) }

// identitySafe is the injection menu for regular jobs: failures in the
// persistence and streaming planes, which degrade durability or event
// delivery but can never change what the ATPG computes.
var identitySafe = []string{
	"ckpt.save.write=error(chaos disk gone):p(0.5)",
	"ckpt.save.sync=error(chaos fsync lost):every(3)",
	"ckpt.save.rename=error(chaos crash in rename):p(0.3)",
	"server.sse.write=error(chaos slow client hangup):p(0.3)",
	"server.sse.write=sleep(1ms):p(0.5)",
	"server.save.record=error(chaos record store down):p(0.4)",
	"server.save.record=sleep(2ms):every(2)",
}

// distSafe extends the menu on distributed runs: failures in the shard
// RPC planes. Each costs at most a retry — a refused assignment polls
// again, a dropped poll re-registers, a lost result lets the lease
// expire and re-queues the shard — so byte identity must survive them
// all.
var distSafe = []string{
	"server.shard.assign=error(chaos assign refused):p(0.3)",
	"worker.shard.poll=error(chaos poll dropped):p(0.3)",
	"worker.shard.post=error(chaos result lost):every(3)",
}

// buildSchedule derives the soak schedule from the seed with a
// splitmix64 stream — no global randomness, no time dependence. Two
// calls with equal arguments return equal schedules.
func buildSchedule(seed uint64, n int, dist bool) []step {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	victimAt := n / 2
	sched := make([]step, n)
	for i := range sched {
		r := next()
		st := step{
			Index:   i,
			Limit:   2 + int(r%2),
			Workers: 1 + int((r>>8)%2),
		}
		switch {
		case i == victimAt:
			// The panic fires inside the objective evaluation — within the
			// engine's per-task Recover boundary — so the core quarantines
			// one fault×config and the run completes around the hole.
			st.Victim = true
			st.Inject = "core.opt.eval=panic(chaos victim):once"
		case (r>>16)%100 < 45:
			menu := identitySafe
			if dist {
				menu = append(append([]string{}, identitySafe...), distSafe...)
			}
			st.Inject = menu[(r>>24)%uint64(len(menu))]
		}
		// Every sixth job dies mid-flight and must resume. The victim is
		// spared: its one-shot panic would otherwise be lost to the
		// restart.
		if i%6 == 5 && !st.Victim {
			st.Kill = true
		}
		// On distributed runs, every fourth job loses a shard worker
		// mid-flight; a replacement joins and the re-queued shard must
		// leave the result byte-identical.
		if dist && i%4 == 2 && !st.Victim && !st.Kill {
			st.KillWorker = true
		}
		sched[i] = st
	}
	return sched
}

// daemon is one in-process atpgd instance bound to a loopback port,
// plus (on distributed runs) its fleet of in-process shard workers.
type daemon struct {
	srv     *server.Server
	hs      *http.Server
	base    string
	workers []*chaosWorker
}

// chaosWorker is one in-process shard worker the soak can kill.
type chaosWorker struct {
	name   string
	cancel context.CancelFunc
	done   chan struct{}
}

// workerSeq numbers workers across restarts so Prometheus series and
// journal attributions stay distinct.
var workerSeq int

func startDaemon(dataDir string, dist int) (*daemon, error) {
	srv, err := server.New(server.Options{
		DataDir:         dataDir,
		RatePerSec:      -1, // the soak hammers from one host by design
		Workers:         1,  // serial jobs: per-step failpoint arming stays scoped
		CheckpointEvery: time.Millisecond,
		Distributed:     dist > 0,
		ShardSize:       1, // every fault its own shard: maximal reassignment surface
		WorkerLease:     time.Second,
		PollWait:        2 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	d := &daemon{srv: srv, hs: hs, base: "http://" + ln.Addr().String()}
	for i := 0; i < dist; i++ {
		d.startWorker()
	}
	return d, nil
}

// startWorker launches one in-process shard worker against the daemon.
func (d *daemon) startWorker() {
	workerSeq++
	w := &chaosWorker{
		name: fmt.Sprintf("cw%d", workerSeq),
		done: make(chan struct{}),
	}
	ctx, cancel := context.WithCancel(context.Background())
	w.cancel = cancel
	go func() {
		defer close(w.done)
		_ = server.RunWorker(ctx, server.WorkerOptions{
			Coordinator: d.base,
			Name:        w.name,
			Logf:        func(string, ...any) {}, // worker churn is the point; keep the soak log readable
		})
	}()
	d.workers = append(d.workers, w)
}

// killWorker kills the oldest live shard worker mid-whatever-it-was-
// doing and starts a replacement, so the fleet size stays constant
// while the coordinator sees a death.
func (d *daemon) killWorker() {
	if len(d.workers) == 0 {
		return
	}
	w := d.workers[0]
	d.workers = d.workers[1:]
	w.cancel()
	<-w.done
	d.startWorker()
}

// stopWorkers winds the fleet down (soak teardown, daemon kill).
func (d *daemon) stopWorkers() {
	for _, w := range d.workers {
		w.cancel()
	}
	for _, w := range d.workers {
		<-w.done
	}
	d.workers = nil
}

// kill simulates a crash: persistence freezes, running jobs are
// cancelled, the listener drops. Nothing is drained. Workers die with
// their coordinator — the restarted daemon gets a fresh fleet.
func (d *daemon) kill() {
	d.stopWorkers()
	d.srv.Kill()
	d.hs.Close()
}

func (d *daemon) stop() error {
	defer d.hs.Close()
	d.stopWorkers()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	return d.srv.Shutdown(ctx)
}

func soak(root string, sched []step, dist int) error {
	defer failpoint.Reset()

	// Reference phase: one clean run per distinct request shape, no
	// injections, separate data directory. The reference is always
	// single-node — on distributed soaks that IS the invariant: sharded
	// results must match plain-run bytes.
	refDir := filepath.Join(root, "reference")
	ref, err := startDaemon(refDir, 0)
	if err != nil {
		return fmt.Errorf("reference daemon: %w", err)
	}
	want := map[string][]byte{}
	for _, st := range sched {
		if _, ok := want[st.key()]; ok {
			continue
		}
		fmt.Printf("chaos: reference %s\n", st.key())
		id, err := submit(ref.base, st.request())
		if err != nil {
			return fmt.Errorf("reference submit %s: %w", st.key(), err)
		}
		fin, err := waitTerminal(ref.base, id, 4*time.Minute)
		if err != nil {
			return err
		}
		if fin.State != api.StateSucceeded {
			return fmt.Errorf("reference job %s ended %s: %s", st.key(), fin.State, fin.Error)
		}
		want[st.key()], err = resultBytes(ref.srv, id)
		if err != nil {
			return err
		}
	}
	if err := ref.stop(); err != nil {
		return fmt.Errorf("reference drain: %w", err)
	}

	// Chaos phase.
	chaosDir := filepath.Join(root, "chaos")
	d, err := startDaemon(chaosDir, dist)
	if err != nil {
		return fmt.Errorf("chaos daemon: %w", err)
	}
	var succeeded, failed, lost, resumedOK, workerKills int
	victimJob := ""
	for _, st := range sched {
		failpoint.Reset()
		if st.Inject != "" {
			if err := failpoint.Apply(st.Inject); err != nil {
				return fmt.Errorf("step %d: bad injection %q: %w", st.Index, st.Inject, err)
			}
		}
		fmt.Printf("chaos: %s\n", st)
		id, err := submit(d.base, st.request())
		if err != nil {
			return fmt.Errorf("step %d: submit: %w", st.Index, err)
		}
		if st.Victim {
			victimJob = id
		}

		if st.Kill {
			// Let the job get under way, then crash the daemon and bring
			// a fresh one up over the same data directory. The job comes
			// back interrupted and resumes from whatever checkpoint
			// survived (possibly none — injections may have eaten it).
			waitRunningOrDone(d.base, id, 30*time.Second)
			time.Sleep(300 * time.Millisecond)
			d.kill()
			failpoint.Reset() // a crashed process takes its armed failpoints with it
			d, err = startDaemon(chaosDir, dist)
			if err != nil {
				return fmt.Errorf("step %d: restart: %w", st.Index, err)
			}
			// A persistence injection may have eaten every attempt to
			// write the job record before the crash — the restarted
			// daemon then has no durable trace of the job and correctly
			// answers 404. That is a lost job, not a wedge: durability
			// was the very thing the injection destroyed.
			if _, serr := status(d.base, id); errors.Is(serr, errJobUnknown) {
				lost++
				fmt.Printf("chaos:   step %d: job record never became durable before the crash — lost\n", st.Index)
				if err := probe(d.base); err != nil {
					return fmt.Errorf("step %d: server wedged: %w", st.Index, err)
				}
				continue
			}
		}

		if st.KillWorker {
			// Let a shard land on a worker, then kill it. The lease
			// expires, the shard re-queues, and the replacement (or a
			// surviving peer) recomputes it.
			waitRunningOrDone(d.base, id, 30*time.Second)
			time.Sleep(150 * time.Millisecond)
			d.killWorker()
			workerKills++
		}

		fin, err := waitTerminal(d.base, id, 4*time.Minute)
		if err != nil {
			return fmt.Errorf("step %d: %w", st.Index, err)
		}
		switch {
		case fin.State == api.StateSucceeded && !st.Victim:
			succeeded++
			got, err := resultBytes(d.srv, id)
			if err != nil {
				return fmt.Errorf("step %d: %w", st.Index, err)
			}
			if !bytes.Equal(got, want[st.key()]) {
				return fmt.Errorf("step %d: result diverged from the uninjected reference (%s)", st.Index, st.key())
			}
			if st.Kill {
				resumedOK++
			}
		case fin.State == api.StateSucceeded:
			succeeded++
		default:
			// A failed job is a legitimate chaos outcome (an injected
			// final-flush failure fails the run); a wedged one is not —
			// waitTerminal above bounds that.
			failed++
			fmt.Printf("chaos:   step %d ended %s: %s\n", st.Index, fin.State, fin.Error)
		}

		// Invariant 1: the daemon answers after every step.
		if err := probe(d.base); err != nil {
			return fmt.Errorf("step %d: server wedged: %w", st.Index, err)
		}
	}
	failpoint.Reset()

	// The victim must have quarantined its panicking task and journaled
	// it — that is the whole point of the victim.
	if victimJob != "" {
		paths, err := d.srv.Store().Job(victimJob)
		if err != nil {
			return err
		}
		j, err := os.ReadFile(paths.Journal)
		if err != nil {
			return fmt.Errorf("victim journal: %w", err)
		}
		if !bytes.Contains(j, []byte(`"quarantine"`)) {
			return fmt.Errorf("victim job %s journaled no quarantine", victimJob)
		}
	}
	if err := d.stop(); err != nil {
		return fmt.Errorf("chaos drain: %w", err)
	}

	// Invariant 2: every journal on disk validates.
	validated := 0
	for _, dir := range []string{refDir, chaosDir} {
		n, err := validateJournals(dir)
		if err != nil {
			return err
		}
		validated += n
	}

	// The soak is vacuous if chaos killed everything: require a healthy
	// majority and at least one kill/resume survivor compared clean.
	if succeeded*2 < len(sched) {
		return fmt.Errorf("only %d/%d jobs succeeded — the soak lost its signal", succeeded, len(sched))
	}
	if resumedOK == 0 {
		return fmt.Errorf("no kill/restart job survived to a byte-identical result")
	}
	if dist > 0 {
		_, _, assigned, requeued, completed := d.srv.DistStats()
		fmt.Printf("chaos: distributed: %d shards assigned, %d requeued, %d completed, %d workers killed\n",
			assigned, requeued, completed, workerKills)
	}
	fmt.Printf("chaos: %d succeeded (%d resumed bit-identical), %d failed-by-injection, %d lost-to-crash, %d journals validated\n",
		succeeded, resumedOK, failed, lost, validated)
	return nil
}

// validateJournals runs the obslint contract over every sealed journal
// under a daemon data directory.
func validateJournals(dataDir string) (int, error) {
	pattern := filepath.Join(dataDir, "jobs", "*", "journal.jsonl")
	files, err := filepath.Glob(pattern)
	if err != nil {
		return 0, err
	}
	for _, f := range files {
		fh, err := os.Open(f)
		if err != nil {
			return 0, err
		}
		_, verr := obs.Validate(fh)
		fh.Close()
		if verr != nil {
			return 0, fmt.Errorf("journal %s invalid: %w", f, verr)
		}
	}
	return len(files), nil
}

// --- minimal HTTP client against the wire API ---

var client = &http.Client{Timeout: 10 * time.Second}

func submit(base string, req api.JobRequest) (string, error) {
	body, err := api.Encode(req)
	if err != nil {
		return "", err
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := readAll(resp)
		return "", fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(b))
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// errJobUnknown marks a 404: the daemon is up but has no record of the
// job (a crash outran every attempt to persist it).
var errJobUnknown = errors.New("job unknown to the daemon")

func status(base, id string) (api.JobStatus, error) {
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return api.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return api.JobStatus{}, fmt.Errorf("status %s: %w", id, errJobUnknown)
	}
	if resp.StatusCode != http.StatusOK {
		return api.JobStatus{}, fmt.Errorf("status %s: %s", id, resp.Status)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return api.JobStatus{}, err
	}
	return st, nil
}

func waitTerminal(base, id string, timeout time.Duration) (api.JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := status(base, id)
		if err == nil && st.State.Terminal() {
			return st, nil
		}
		if time.Now().After(deadline) {
			state := "unreachable"
			if err == nil {
				state = string(st.State)
			}
			return api.JobStatus{}, fmt.Errorf("job %s wedged in %s after %v", id, state, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func waitRunningOrDone(base, id string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, err := status(base, id)
		if err == nil && (st.State == api.StateRunning || st.State.Terminal()) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func probe(base string) error {
	resp, err := client.Get(base + "/v1/server")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/v1/server: %s", resp.Status)
	}
	return nil
}

func resultBytes(srv *server.Server, id string) ([]byte, error) {
	paths, err := srv.Store().Job(id)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(paths.Result)
}

func readAll(resp *http.Response) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String(), nil
		}
	}
}
