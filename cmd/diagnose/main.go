// Command diagnose runs the fault-diagnosis extension on the
// IV-converter: it builds a signature database of the dictionary under a
// small DC test set, simulates a failing device carrying a chosen fault
// (optionally at an off-dictionary impact), and ranks the candidates.
//
// Usage:
//
//	diagnose [-fault id] [-impact r] [-top n] [-tests n]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	faultID := flag.String("fault", "pinhole:M6", "fault the device under test carries")
	impact := flag.Float64("impact", 0, "override the defect's model resistance (0: dictionary)")
	top := flag.Int("top", 8, "how many candidates to print")
	nTests := flag.Int("tests", 6, "number of DC tests in the signature database")
	flag.Parse()

	sys, err := repro.NewIVConverterSystem(repro.WithFastBoxes())
	if err != nil {
		fail(err)
	}

	// Signature tests: DC output and supply current at a spread of input
	// levels.
	var tests []repro.Test
	levels := sim.LinSpace(10e-6, 90e-6, (*nTests+1)/2)
	for _, l := range levels {
		tests = append(tests, repro.Test{ConfigIdx: 0, Params: []float64{l}})
		tests = append(tests, repro.Test{ConfigIdx: 1, Params: []float64{l}})
	}
	if len(tests) > *nTests {
		tests = tests[:*nTests]
	}

	var truth repro.Fault
	for _, f := range sys.Faults() {
		if f.ID() == *faultID {
			truth = f
		}
	}
	if truth == nil {
		fail(fmt.Errorf("fault %q not in the dictionary", *faultID))
	}
	if *impact > 0 {
		truth = truth.WithImpact(*impact)
	}

	fmt.Printf("signature database: %d faults × %d tests\n", len(sys.Faults()), len(tests))
	_, sigs, err := sys.Signatures(tests, sys.Faults())
	if err != nil {
		fail(err)
	}
	fmt.Printf("device under test carries %s at R=%s\n\n", truth.ID(), report.Engineering(truth.Impact()))
	obs, err := sys.ObserveFault(tests, truth)
	if err != nil {
		fail(err)
	}
	diag, err := sys.Diagnose(tests, sigs, obs)
	if err != nil {
		fail(err)
	}
	if *top > len(diag) {
		*top = len(diag)
	}
	t := report.NewTable("rank", "candidate", "distance")
	for i, d := range diag[:*top] {
		name := d.FaultID
		if d.FaultID == *faultID {
			name += "  <-- true defect"
		}
		t.AddRow(i+1, name, d.Distance)
	}
	_, _ = t.WriteTo(os.Stdout)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
