// Command doclint fails when an exported identifier lacks a doc
// comment. It gates the packages whose exported surface is
// documentation: the wire schema (api/), the public facade (the repo
// root), and the observability layer (internal/obs and its
// subpackages). CI runs it so the godoc of those packages can never
// silently rot.
//
// Usage:
//
//	doclint [-v] PKGDIR...
//
// Each PKGDIR is a directory containing one Go package; _test.go files
// are ignored. Exit status is 1 when any finding is reported, 2 on
// usage or parse errors.
//
// What must carry a doc comment: every exported top-level type, func,
// and method, and every exported const/var — where a doc comment on a
// grouped declaration block covers the whole group (the standard
// library convention for enum-style const blocks). Struct fields and
// interface methods are exempt: their enclosing type's comment is the
// natural home for that prose, and gating them produces boilerplate,
// not documentation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	verbose := flag.Bool("v", false, "list every checked identifier, not only findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint [-v] PKGDIR...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var findings []string
	checked := 0
	for _, dir := range flag.Args() {
		f, n, err := lintDir(dir, *verbose)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, f...)
		checked += n
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) without doc comments (%d checked)\n", len(findings), checked)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers documented\n", checked)
	}
}

// lintDir parses every non-test .go file of one package directory and
// returns a finding per undocumented exported identifier.
func lintDir(dir string, verbose bool) (findings []string, checked int, err error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, 0, fmt.Errorf("parse %s: %w", dir, err)
	}
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || receiverUnexported(d) {
						continue
					}
					checked++
					if d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, funcName(d))
					} else if verbose {
						fmt.Printf("ok %s\n", funcName(d))
					}
				case *ast.GenDecl:
					findings, checked = lintGenDecl(d, report, findings, checked, verbose)
				}
			}
		}
	}
	return findings, checked, nil
}

// lintGenDecl checks one const/var/type declaration. A doc comment on
// the grouped block covers every spec inside it; an undocumented block
// requires per-spec comments.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string), findings []string, checked int, verbose bool) ([]string, int) {
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			checked++
			if !groupDocumented && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			} else if verbose {
				fmt.Printf("ok %s\n", s.Name.Name)
			}
		case *ast.ValueSpec:
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				checked++
				if !groupDocumented && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), kind, name.Name)
				} else if verbose {
					fmt.Printf("ok %s\n", name.Name)
				}
			}
		}
	}
	return findings, checked
}

// receiverUnexported reports whether a method hangs off an unexported
// receiver type — its whole method set is internal, doc or not.
func receiverUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return !id.IsExported()
	}
	return false
}

// funcName renders "Recv.Name" for methods and "Name" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}
