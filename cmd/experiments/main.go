// Command experiments regenerates every table and figure of the paper's
// evaluation section plus the DESIGN.md ablations.
//
// Usage:
//
//	experiments [-only id[,id...]] [-quick] [-workers n] [-delta d]
//	            [-tps-fault id] [-journal run.jsonl] [-trace-sample n]
//	            [-listen :6060] [-timeout d] [-stats] [-list]
//
// Experiment IDs: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 table2 fig8
// table3 ablation-selection ablation-soft ablation-opt ablation-delta,
// or "all" (default). The full table2/fig8/table3 chain generates tests
// for all 55 faults and takes a few minutes on one core; -quick runs a
// representative subset in seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/export"
	"repro/internal/report"
)

func main() {
	only := flag.String("only", "all", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "reduced grids and fault subsets (seconds instead of minutes)")
	workers := flag.Int("workers", 0, "generation parallelism (0: GOMAXPROCS)")
	delta := flag.Float64("delta", 0.1, "compaction loss budget δ")
	tpsFault := flag.String("tps-fault", experiments.DefaultTPSFault, "bridge fault for the Fig. 2-4 tps-graphs")
	stats := flag.Bool("stats", false, "print engine per-phase timings and cache statistics at the end")
	journalPath := flag.String("journal", "", "write a JSONL run journal (spans, events, fault verdicts) to this file")
	traceSample := flag.Int("trace-sample", 1, "journal one in every n spans (1: all; events are never sampled)")
	listenAddr := flag.String("listen", "", "serve live /metrics, /progress and pprof on this address (e.g. :6060)")
	timeout := flag.Duration("timeout", 0, "overall run deadline; on expiry the journal is sealed like on Ctrl-C (0: none)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var tracer *obs.Tracer
	var journal *obs.Journal
	if *journalPath != "" {
		jf, err := os.Create(*journalPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		journal = obs.NewJournal(jf)
		tracer = obs.NewWith(journal,
			[]obs.Attr{obs.String("cmd", "experiments"), obs.String("only", *only)},
			[]obs.TracerOption{obs.SampleEvery(*traceSample)})
		defer func() {
			journal.Close()
			jf.Close()
		}()
	}
	prog := obs.NewProgress()

	r := experiments.New(experiments.Options{
		Out:        os.Stdout,
		Quick:      *quick,
		Workers:    *workers,
		Delta:      *delta,
		TPSFaultID: *tpsFault,
		Ctx:        ctx,
		Tracer:     tracer,
		Progress:   prog,
	})

	if *listenAddr != "" {
		srv, err := export.Serve(export.Options{
			Addr: *listenAddr,
			Metrics: func() any {
				m, _ := r.Metrics()
				return m
			},
			Progress: prog.Snapshot,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving http://%s/ (/metrics, /progress, /debug/pprof/)\n", srv.Addr())
	}

	start := time.Now()
	ids := strings.Split(*only, ",")
	err := r.Run(ids...)
	sealJournal(tracer, r, err)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "experiments: timed out after %v\n", *timeout)
		} else if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: canceled")
		} else {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		journalFlush(journal)
		os.Exit(1)
	}
	fmt.Printf("\n(total wall time %v)\n", time.Since(start).Round(time.Millisecond))
	if *stats {
		if m, ok := r.Metrics(); ok {
			fmt.Println("\nengine metrics:")
			if err := report.WriteMetrics(os.Stdout, repro.WireMetrics(m)); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}

// sealJournal writes the terminal record: run_canceled on cancellation,
// run_end carrying the final metrics snapshot (in its versioned wire
// form) otherwise.
func sealJournal(tracer *obs.Tracer, r *experiments.Runner, err error) {
	var m engine.Metrics
	if mm, ok := r.Metrics(); ok {
		m = mm
	}
	tracer.Finish(err, obs.Any("metrics", repro.WireMetrics(m)))
}

// journalFlush seals the journal before the surrounding os.Exit skips
// the deferred Close.
func journalFlush(j *obs.Journal) {
	if j != nil {
		j.Close()
	}
}
