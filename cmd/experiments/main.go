// Command experiments regenerates every table and figure of the paper's
// evaluation section plus the DESIGN.md ablations.
//
// Usage:
//
//	experiments [-only id[,id...]] [-quick] [-workers n] [-delta d] [-tps-fault id] [-list]
//
// Experiment IDs: table1 fig1 fig2 fig3 fig4 fig5 fig6 fig7 table2 fig8
// table3 ablation-selection ablation-soft ablation-opt ablation-delta,
// or "all" (default). The full table2/fig8/table3 chain generates tests
// for all 55 faults and takes a few minutes on one core; -quick runs a
// representative subset in seconds.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	only := flag.String("only", "all", "comma-separated experiment IDs, or 'all'")
	quick := flag.Bool("quick", false, "reduced grids and fault subsets (seconds instead of minutes)")
	workers := flag.Int("workers", 0, "generation parallelism (0: GOMAXPROCS)")
	delta := flag.Float64("delta", 0.1, "compaction loss budget δ")
	tpsFault := flag.String("tps-fault", experiments.DefaultTPSFault, "bridge fault for the Fig. 2-4 tps-graphs")
	stats := flag.Bool("stats", false, "print engine per-phase timings and cache statistics at the end")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	r := experiments.New(experiments.Options{
		Out:        os.Stdout,
		Quick:      *quick,
		Workers:    *workers,
		Delta:      *delta,
		TPSFaultID: *tpsFault,
		Ctx:        ctx,
	})
	start := time.Now()
	ids := strings.Split(*only, ",")
	if err := r.Run(ids...); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Printf("\n(total wall time %v)\n", time.Since(start).Round(time.Millisecond))
	if *stats {
		if m, ok := r.Metrics(); ok {
			fmt.Println("\nengine metrics:")
			for _, p := range m.Phases {
				fmt.Printf("  %-12s %6d units  %10v wall  %10v avg\n",
					p.Name, p.Count, p.Wall.Round(time.Millisecond), p.Avg().Round(time.Microsecond))
			}
			c := m.Cache
			fmt.Printf("  nominal cache: %d entries, %.1f %% hit rate (%d hits, %d misses, %d shared)\n",
				c.Entries, 100*c.HitRate(), c.Hits, c.Misses, c.Shared)
		}
	}
}
