// Command ivsim simulates the IV-converter macro (or a custom netlist)
// directly: operating point, DC transfer sweep, transient step response
// or small-signal AC — useful for inspecting the substrate the test
// generator runs on.
//
// Usage:
//
//	ivsim -analysis op|dc|tran|ac [-netlist file] [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/macros"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/wave"
)

func main() {
	analysis := flag.String("analysis", "op", "op | dc | tran | ac")
	netlistPath := flag.String("netlist", "", "SPICE-like netlist (default: built-in IV-converter)")
	sweepFrom := flag.Float64("from", 0, "dc: sweep start (A)")
	sweepTo := flag.Float64("to", 100e-6, "dc: sweep end (A)")
	sweepN := flag.Int("points", 11, "dc/ac: number of points")
	base := flag.Float64("base", 5e-6, "tran: step base current (A)")
	elev := flag.Float64("elev", 20e-6, "tran: step elevation (A)")
	stop := flag.Float64("stop", 7.5e-6, "tran: stop time (s)")
	dt := flag.Float64("dt", 10e-9, "tran: time step (s)")
	fLo := flag.Float64("flo", 1e2, "ac: start frequency (Hz)")
	fHi := flag.Float64("fhi", 1e8, "ac: stop frequency (Hz)")
	svgPath := flag.String("svg", "", "dc/tran: also render an SVG plot to this file")
	flag.Parse()

	var ckt *circuit.Circuit
	if *netlistPath != "" {
		fd, err := os.Open(*netlistPath)
		if err != nil {
			fail(err)
		}
		ckt, err = netlist.Parse(fd, *netlistPath)
		fd.Close()
		if err != nil {
			fail(err)
		}
	} else {
		ckt = macros.IVConverter()
	}

	switch *analysis {
	case "op":
		e := engine(ckt)
		x, err := e.OperatingPoint()
		if err != nil {
			fail(err)
		}
		t := report.NewTable("node", "voltage [V]")
		for _, n := range ckt.Nodes() {
			t.AddRow(n, ckt.NodeVoltage(x, n))
		}
		_, _ = t.WriteTo(os.Stdout)
		fmt.Println("\ndevice regions:")
		for _, d := range ckt.Devices() {
			if m, ok := d.(*device.MOSFET); ok {
				fmt.Printf("  %-6s %-6s id=%s\n", m.Name(), m.Region(x), report.Engineering(m.DrainCurrent(x)))
			}
		}
	case "dc":
		e := engine(ckt)
		vals := sim.LinSpace(*sweepFrom, *sweepTo, *sweepN)
		sols, err := e.SweepDC(macros.InputSourceName, vals)
		if err != nil {
			fail(err)
		}
		t := report.NewTable("Iin [A]", "V(Vout) [V]", "V(Iin) [V]")
		vout := make([]float64, len(sols))
		for i, x := range sols {
			vout[i] = e.Voltage(x, macros.NodeVout)
			t.AddRow(vals[i], vout[i], e.Voltage(x, macros.NodeIin))
		}
		_, _ = t.WriteTo(os.Stdout)
		writeSVG(*svgPath, report.DefaultSVGOptions("DC transfer", "Iin [A]", "V(Vout) [V]"),
			report.Series{Name: "Vout", X: vals, Y: vout})
	case "tran":
		macros.SetInputWave(ckt, wave.Step{Base: *base, Elev: *elev, Delay: 10e-9, Rise: 10e-9})
		e := engine(ckt)
		tr, err := e.Transient(*stop, *dt, []string{macros.NodeVout, macros.NodeVmid})
		if err != nil {
			fail(err)
		}
		step := tr.Len() / 25
		if step < 1 {
			step = 1
		}
		t := report.NewTable("t [s]", "V(Vout) [V]", "V(Vmid) [V]")
		for i := 0; i < tr.Len(); i += step {
			t.AddRow(tr.Times[i], tr.Signal(macros.NodeVout)[i], tr.Signal(macros.NodeVmid)[i])
		}
		_, _ = t.WriteTo(os.Stdout)
		writeSVG(*svgPath, report.DefaultSVGOptions("Step response", "t [s]", "V"),
			report.Series{Name: "Vout", X: tr.Times, Y: tr.Signal(macros.NodeVout)},
			report.Series{Name: "Vmid", X: tr.Times, Y: tr.Signal(macros.NodeVmid)})
	case "ac":
		e := engine(ckt)
		xop, err := e.OperatingPoint()
		if err != nil {
			fail(err)
		}
		freqs := sim.LogSpace(*fLo, *fHi, *sweepN)
		res, err := e.AC(xop, macros.InputSourceName, freqs)
		if err != nil {
			fail(err)
		}
		t := report.NewTable("f [Hz]", "|Vout/Iin| [dBΩ]", "phase [°]")
		for i := range freqs {
			t.AddRow(freqs[i], res.MagDB(i, macros.NodeVout), res.PhaseDeg(i, macros.NodeVout))
		}
		_, _ = t.WriteTo(os.Stdout)
	default:
		fail(fmt.Errorf("unknown analysis %q", *analysis))
	}
}

// writeSVG renders series to path when a path was requested.
func writeSVG(path string, opts report.SVGOptions, series ...report.Series) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := report.SVGPlot(f, opts, series...); err != nil {
		fail(err)
	}
	fmt.Println("plot written to", path)
}

func engine(ckt *circuit.Circuit) *sim.Engine {
	e, err := sim.New(ckt, sim.DefaultOptions())
	if err != nil {
		fail(err)
	}
	return e
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ivsim:", err)
	os.Exit(1)
}
