// Command obslint validates observability artifacts in CI without
// external tooling: Prometheus text expositions (format 0.0.4) through
// the in-repo parser, and Chrome trace-event JSON produced by
// tracereport -chrome.
//
// Usage:
//
//	obslint [-require fam1,fam2] exposition.txt
//	obslint -chrome [-complete cat1,cat2] trace.json
//
// The default mode parses a text exposition (use "-" for stdin, the
// shape of `curl -H 'Accept: text/plain' :6060/metrics | obslint -`)
// and fails on any format violation — missing TYPE headers, broken
// cumulative histogram invariants, bad escapes — plus any family named
// in -require that is absent. -chrome switches to trace validation and
// -complete lists categories that must each have at least one complete
// ("X") event, which is how CI asserts every pipeline phase made it
// into the timeline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/obs/chrometrace"
	"repro/internal/obs/export"
)

func main() {
	require := flag.String("require", "", "comma-separated metric families that must be present")
	chrome := flag.Bool("chrome", false, "validate a Chrome trace-event JSON file instead of an exposition")
	complete := flag.String("complete", "", "with -chrome: comma-separated categories that each need >= 1 complete event")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obslint [-require fams] [-chrome [-complete cats]] file|-")
		os.Exit(2)
	}

	var r io.Reader = os.Stdin
	name := flag.Arg(0)
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	} else {
		name = "<stdin>"
	}

	if *chrome {
		st, err := chrometrace.Validate(r, split(*complete))
		if err != nil {
			fail(fmt.Errorf("%s: %w", name, err))
		}
		cats := make([]string, 0, len(st.Complete))
		for c := range st.Complete {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		fmt.Printf("%s: valid Chrome trace: %d events, complete slices in %d categories (%s)\n",
			name, st.Events, len(cats), strings.Join(cats, ", "))
		return
	}

	doc, err := export.ParseProm(r)
	if err != nil {
		fail(fmt.Errorf("%s: %w", name, err))
	}
	missing := []string{}
	for _, fam := range split(*require) {
		if len(doc.Family(fam)) == 0 {
			missing = append(missing, fam)
		}
	}
	if len(missing) > 0 {
		fail(fmt.Errorf("%s: required families missing: %s", name, strings.Join(missing, ", ")))
	}
	fmt.Printf("%s: valid Prometheus text exposition: %d samples across %d typed families\n",
		name, len(doc.Samples), len(doc.Types))
}

// split parses a comma-separated flag value, dropping empty items.
func split(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obslint:", err)
	os.Exit(1)
}
