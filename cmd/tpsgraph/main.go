// Command tpsgraph computes test-parameter sensitivity graphs (paper
// §3.1, Figs. 2-4) for any fault in the IV-converter dictionary under
// any test configuration, rendered as an ASCII heat map and optionally
// as CSV.
//
// Usage:
//
//	tpsgraph [-fault id] [-config n] [-impact r] [-n1 n] [-n2 n] [-csv file] [-fast] [-list-faults]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	faultID := flag.String("fault", "bridge:Ntail-Out1", "fault ID from the dictionary")
	configID := flag.Int("config", 3, "test configuration number (1-5)")
	impact := flag.Float64("impact", 0, "fault model resistance in ohms (0: dictionary impact)")
	n1 := flag.Int("n1", 21, "grid points along parameter 1")
	n2 := flag.Int("n2", 13, "grid points along parameter 2 (two-parameter configs)")
	csvPath := flag.String("csv", "", "also write the grid as CSV to this file")
	fast := flag.Bool("fast", true, "seed-calibrated tolerance boxes")
	listFaults := flag.Bool("list-faults", false, "list fault IDs and exit")
	flag.Parse()

	var opts []repro.Option
	if *fast {
		opts = append(opts, repro.WithFastBoxes())
	}
	sys, err := repro.NewIVConverterSystem(opts...)
	if err != nil {
		fail(err)
	}
	if *listFaults {
		for _, f := range sys.Faults() {
			fmt.Println(f.ID())
		}
		return
	}

	var f repro.Fault
	for _, ff := range sys.Faults() {
		if ff.ID() == *faultID {
			f = ff
			break
		}
	}
	if f == nil {
		fail(fmt.Errorf("fault %q not in the dictionary (use -list-faults)", *faultID))
	}
	if *impact > 0 {
		f = f.WithImpact(*impact)
	}

	ci := -1
	for i, c := range sys.Configs() {
		if c.ID == *configID {
			ci = i
		}
	}
	if ci < 0 {
		fail(fmt.Errorf("configuration #%d unknown", *configID))
	}

	g, err := sys.TPS(ci, f, *n1, *n2)
	if err != nil {
		fail(err)
	}
	fmt.Printf("tps-graph: %s at R=%s under configuration #%d\n\n",
		g.FaultID, report.Engineering(g.Impact), g.ConfigID)
	if err := report.HeatMap(os.Stdout, g.S, g.Name1, g.Name2); err != nil {
		fail(err)
	}
	i, j, min := g.MinCell()
	if len(g.Axis2) > 0 {
		fmt.Printf("\nminimum S_f = %.4g at %s=%s, %s=%s\n", min,
			g.Name1, report.Engineering(g.Axis1[i]), g.Name2, report.Engineering(g.Axis2[j]))
	} else {
		fmt.Printf("\nminimum S_f = %.4g at %s=%s\n", min, g.Name1, report.Engineering(g.Axis1[i]))
	}
	fmt.Printf("detectable fraction: %.0f %%\n", 100*g.DetectableFraction())

	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		defer out.Close()
		if err := report.GridCSV(out, g.Axis1, g.Axis2, g.S); err != nil {
			fail(err)
		}
		fmt.Println("grid written to", *csvPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tpsgraph:", err)
	os.Exit(1)
}
