// Command tracereport renders a JSONL run journal (written by
// atpg -journal or experiments -journal) into human-readable summary
// tables: per-phase span aggregates, per-fault verdicts (including the
// degraded undetermined/quarantined outcomes), quarantined task panics,
// the slowest fault×config optimizations, and the final engine metrics
// snapshot embedded in the run_end record.
//
// Usage:
//
//	tracereport [-top k] [-validate] [-chrome out.json] run.jsonl
//
// The journal is validated against the schema before reporting;
// -validate stops after validation (the CI mode). -chrome converts the
// journal into Chrome trace-event JSON (phase lanes, per-fault slices,
// instant events for quarantines and guard trips — see
// internal/obs/chrometrace) and exits; the file opens directly in
// Perfetto or chrome://tracing. A journal ending in run_canceled is
// reported as a truncated-but-valid record of an interrupted run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro"
	"repro/api"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/chrometrace"
	"repro/internal/report"
)

func main() {
	top := flag.Int("top", 10, "list the k slowest optimization spans")
	validateOnly := flag.Bool("validate", false, "validate the journal against the schema and exit")
	chromeOut := flag.String("chrome", "", "write the journal as Chrome trace-event JSON to this file and exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracereport [-top k] [-validate] [-chrome out.json] run.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	stats, err := obs.Validate(bufio.NewReader(f))
	if err != nil {
		f.Close()
		fail(fmt.Errorf("%s: invalid journal: %w", path, err))
	}
	fmt.Printf("%s: valid journal (schema v%d): %d records, %d spans, terminal %s",
		path, stats.Version, stats.Events, stats.Spans, stats.Terminal)
	if stats.OpenSpans > 0 {
		fmt.Printf(", %d spans truncated by cancellation", stats.OpenSpans)
	}
	fmt.Println()
	if *validateOnly {
		f.Close()
		return
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		fail(err)
	}
	if *chromeOut != "" {
		err := writeChrome(bufio.NewReader(f), *chromeOut)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote Chrome trace %s (open in Perfetto or chrome://tracing)\n", *chromeOut)
		return
	}
	rep, err := aggregate(bufio.NewReader(f))
	f.Close()
	if err != nil {
		fail(err)
	}
	rep.render(os.Stdout, *top)
}

// spanAgg accumulates the closed spans of one name. The solver-economy
// counters (attached as span_end attributes to sim.* spans) are summed
// so the spans table can show how much low-rank work each phase served.
type spanAgg struct {
	name      string
	count     int
	total     time.Duration
	max       time.Duration
	woodbury  int64 // woodbury_solves
	fallbacks int64 // woodbury_fallbacks
	avoided   int64 // faulty_factor_avoided
}

// slowSpan is one closed span with its identifying attributes, ranked
// for the top-k table.
type slowSpan struct {
	name  string
	dur   time.Duration
	attrs map[string]any
}

// faultAgg accumulates where one fault's time went: the wall time of
// every span carrying its fault attribute, split by span name.
type faultAgg struct {
	fault   string
	spans   int
	wall    map[string]time.Duration
	total   time.Duration
	verdict string
}

// reportData is everything the renderer needs from one journal pass.
type reportData struct {
	runAttrs    map[string]any
	runDur      time.Duration
	terminal    string
	termErr     string
	byName      map[string]*spanAgg
	perFault    map[string]*faultAgg
	events      map[string]int
	verdicts    []map[string]any
	quarantines []map[string]any
	slow        []slowSpan
	metricsAttr any
}

// aggregate runs the single reporting pass over a validated journal.
func aggregate(r io.Reader) (*reportData, error) {
	d := &reportData{
		byName:   make(map[string]*spanAgg),
		perFault: make(map[string]*faultAgg),
		events:   make(map[string]int),
	}
	// open maps span IDs to their span_start attributes so the slow-span
	// table can label a duration (known only at span_end) with the
	// fault/config recorded at span_start.
	open := make(map[uint64]map[string]any)
	dec := json.NewDecoder(r)
	for {
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		switch ev.Type {
		case obs.TypeRunStart:
			d.runAttrs = ev.Attrs
		case obs.TypeSpanStart:
			open[ev.Span] = ev.Attrs
		case obs.TypeSpanEnd:
			agg := d.byName[ev.Name]
			if agg == nil {
				agg = &spanAgg{name: ev.Name}
				d.byName[ev.Name] = agg
			}
			dur := time.Duration(ev.Dur)
			agg.count++
			agg.total += dur
			if dur > agg.max {
				agg.max = dur
			}
			agg.woodbury += i64(ev.Attrs["woodbury_solves"])
			agg.fallbacks += i64(ev.Attrs["woodbury_fallbacks"])
			agg.avoided += i64(ev.Attrs["faulty_factor_avoided"])
			if ev.Name == "optimize" {
				attrs := open[ev.Span]
				if attrs == nil {
					attrs = map[string]any{}
				}
				for k, v := range ev.Attrs {
					attrs[k] = v
				}
				d.slow = append(d.slow, slowSpan{name: ev.Name, dur: dur, attrs: attrs})
			}
			// Per-fault attribution: any span whose start attributes name a
			// fault contributes its wall time to that fault's breakdown.
			if fault, ok := open[ev.Span]["fault"].(string); ok {
				fa := d.perFault[fault]
				if fa == nil {
					fa = &faultAgg{fault: fault, wall: make(map[string]time.Duration)}
					d.perFault[fault] = fa
				}
				fa.spans++
				fa.wall[ev.Name] += dur
				fa.total += dur
			}
			delete(open, ev.Span)
		case obs.TypeEvent:
			d.events[ev.Name]++
			switch ev.Name {
			case "fault_verdict":
				d.verdicts = append(d.verdicts, ev.Attrs)
				if fault, ok := ev.Attrs["fault"].(string); ok {
					if fa := d.perFault[fault]; fa != nil {
						if v, ok := ev.Attrs["verdict"].(string); ok {
							fa.verdict = v
						}
					}
				}
			case "quarantine":
				d.quarantines = append(d.quarantines, ev.Attrs)
			}
		case obs.TypeRunEnd, obs.TypeRunCanceled:
			d.terminal = ev.Type
			d.runDur = time.Duration(ev.TS)
			if ev.Attrs != nil {
				d.metricsAttr = ev.Attrs["metrics"]
				if s, ok := ev.Attrs["error"].(string); ok {
					d.termErr = s
				}
			}
		}
	}
	return d, nil
}

func (d *reportData) render(w io.Writer, top int) {
	if len(d.runAttrs) > 0 {
		fmt.Fprintf(w, "run attributes: %s\n", compactJSON(d.runAttrs))
	}
	fmt.Fprintf(w, "run wall time: %v\n", d.runDur.Round(time.Microsecond))
	if d.terminal == obs.TypeRunCanceled {
		fmt.Fprintf(w, "run CANCELED: %s\n", d.termErr)
	}

	if len(d.byName) > 0 {
		fmt.Fprintln(w, "\nspans by phase:")
		aggs := make([]*spanAgg, 0, len(d.byName))
		for _, a := range d.byName {
			aggs = append(aggs, a)
		}
		sort.Slice(aggs, func(i, j int) bool { return aggs[i].total > aggs[j].total })
		t := report.NewTable("span", "count", "total", "avg", "max", "woodbury (s/f)", "factor avoided")
		for _, a := range aggs {
			econ := "-"
			if a.woodbury > 0 || a.fallbacks > 0 {
				econ = fmt.Sprintf("%d/%d", a.woodbury, a.fallbacks)
			}
			avoided := "-"
			if a.avoided > 0 {
				avoided = fmt.Sprintf("%d", a.avoided)
			}
			t.AddRow(a.name, a.count, a.total.Round(time.Microsecond),
				(a.total / time.Duration(a.count)).Round(time.Microsecond),
				a.max.Round(time.Microsecond), econ, avoided)
		}
		_, _ = t.WriteTo(w)
	}

	if len(d.events) > 0 {
		fmt.Fprintln(w, "\npoint events:")
		names := make([]string, 0, len(d.events))
		for n := range d.events {
			names = append(names, n)
		}
		sort.Strings(names)
		t := report.NewTable("event", "count")
		for _, n := range names {
			t.AddRow(n, d.events[n])
		}
		_, _ = t.WriteTo(w)
	}

	if len(d.verdicts) > 0 {
		fmt.Fprintln(w, "\nfault verdicts:")
		t := report.NewTable("fault", "verdict", "config", "S_f", "critical impact", "evals", "attempts", "impact iters")
		for _, v := range d.verdicts {
			verdict := str(v["verdict"])
			if v["verdict"] == nil {
				// Schema v1 journals carry only the undetectable flag.
				verdict = "detected"
				if v["undetectable"] == true {
					verdict = "undetectable"
				}
			}
			sf := any("-")
			if f, ok := v["s_f"].(float64); ok {
				sf = f
			}
			ci := "-"
			if f, ok := v["critical_impact"].(float64); ok {
				ci = report.Engineering(f)
			}
			t.AddRow(str(v["fault"]), verdict, num(v["config"]), sf, ci,
				num(v["evals"]), num(v["attempts"]), num(v["impact_iters"]))
		}
		_, _ = t.WriteTo(w)
	}

	if len(d.quarantines) > 0 {
		fmt.Fprintf(w, "\nquarantined tasks (%d): isolated panics, run continued without them\n", len(d.quarantines))
		t := report.NewTable("fault", "config", "phase", "panic")
		for _, q := range d.quarantines {
			t.AddRow(str(q["fault"]), num(q["config"]), str(q["phase"]), str(q["panic"]))
		}
		_, _ = t.WriteTo(w)
	}

	if len(d.perFault) > 0 {
		// Where the time went, per fault: every span carrying the fault's
		// attribute, split into the optimization itself vs the impact
		// ladder around it. The histogram percentiles of the same
		// distribution appear in the engine metrics table (fault-e2e).
		var total time.Duration
		aggs := make([]*faultAgg, 0, len(d.perFault))
		for _, fa := range d.perFault {
			aggs = append(aggs, fa)
			total += fa.total
		}
		sort.Slice(aggs, func(i, j int) bool { return aggs[i].total > aggs[j].total })
		k := len(aggs)
		if top > 0 && k > top {
			k = top
		}
		fmt.Fprintf(w, "\nper-fault time attribution (%d of %d faults, by total wall):\n", k, len(aggs))
		t := report.NewTable("fault", "verdict", "spans", "optimize", "impact-loop", "other", "total", "share")
		for _, fa := range aggs[:k] {
			other := fa.total - fa.wall["optimize"] - fa.wall["impact-loop"]
			t.AddRow(fa.fault, orDash(fa.verdict), fa.spans,
				fa.wall["optimize"].Round(time.Microsecond),
				fa.wall["impact-loop"].Round(time.Microsecond),
				other.Round(time.Microsecond),
				fa.total.Round(time.Microsecond),
				fmt.Sprintf("%.1f%%", 100*float64(fa.total)/float64(total)))
		}
		_, _ = t.WriteTo(w)
	}

	if len(d.slow) > 0 && top > 0 {
		sort.Slice(d.slow, func(i, j int) bool { return d.slow[i].dur > d.slow[j].dur })
		k := top
		if k > len(d.slow) {
			k = len(d.slow)
		}
		fmt.Fprintf(w, "\nslowest %d optimizations (of %d):\n", k, len(d.slow))
		t := report.NewTable("fault", "config", "wall", "soft S_f", "evals")
		for _, s := range d.slow[:k] {
			t.AddRow(str(s.attrs["fault"]), num(s.attrs["config"]),
				s.dur.Round(time.Microsecond), s.attrs["soft_s"], num(s.attrs["evals"]))
		}
		_, _ = t.WriteTo(w)
	}

	if d.metricsAttr != nil {
		if m, ok := decodeMetrics(d.metricsAttr); ok {
			fmt.Fprintln(w, "\nengine metrics (run_end snapshot):")
			_ = report.WriteMetrics(w, m)
		}
	}
}

// decodeMetrics re-decodes the run_end "metrics" attribute (a generic
// JSON object after the journal round trip) into the wire form. Current
// journals embed api.MetricsSnapshot directly (recognizable by its "v"
// version field); journals from before the wire schema embedded a raw
// engine.Metrics, which is decoded and converted as the legacy
// fallback.
func decodeMetrics(v any) (api.MetricsSnapshot, bool) {
	raw, err := json.Marshal(v)
	if err != nil {
		return api.MetricsSnapshot{}, false
	}
	var m api.MetricsSnapshot
	if err := json.Unmarshal(raw, &m); err == nil && m.V >= 1 {
		return m, true
	}
	var legacy engine.Metrics
	if err := json.Unmarshal(raw, &legacy); err != nil {
		return api.MetricsSnapshot{}, false
	}
	return repro.WireMetrics(legacy), true
}

// writeChrome converts the (already schema-validated) journal into
// Chrome trace-event JSON at path.
func writeChrome(r io.Reader, path string) error {
	tr, err := chrometrace.Convert(r)
	if err != nil {
		return err
	}
	out, err := json.Marshal(tr)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// orDash renders an empty string as "-".
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func compactJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}

func str(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprintf("%v", v)
}

// i64 reads a journal counter attribute (float64 after JSON decoding);
// missing or non-numeric attributes count as zero.
func i64(v any) int64 {
	if f, ok := v.(float64); ok {
		return int64(f)
	}
	return 0
}

// num renders a journal number (float64 after JSON decoding) as an
// integer when it is one, and a missing attribute as "-".
func num(v any) string {
	if v == nil {
		return "-"
	}
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%v", v)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracereport:", err)
	os.Exit(1)
}
