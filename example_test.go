package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleNewIVConverterSystem shows the minimal generate-and-detect flow
// on one fault.
func ExampleNewIVConverterSystem() {
	sys, err := repro.NewIVConverterSystem(repro.WithFastBoxes())
	if err != nil {
		log.Fatal(err)
	}
	// The dictionary reproduces the paper's 45 bridges + 10 pinholes.
	fmt.Println("faults:", len(sys.Faults()))
	fmt.Println("configs:", len(sys.Configs()))
	// Output:
	// faults: 55
	// configs: 5
}

// ExampleSystem_Sensitivity evaluates the paper's cost function for one
// fault at chosen test parameters.
func ExampleSystem_Sensitivity() {
	sys, err := repro.NewIVConverterSystem(repro.WithFastBoxes())
	if err != nil {
		log.Fatal(err)
	}
	// The 10 kΩ feedback bridge under the DC-output configuration.
	var f repro.Fault
	for _, ff := range sys.Faults() {
		if ff.ID() == "bridge:Iin-Vout" {
			f = ff
		}
	}
	sf, err := sys.Sensitivity(0, f, []float64{20e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected:", sf < 0)
	// Output:
	// detected: true
}

// ExampleNewIVConverterSystem_options shows the functional-options
// constructor patterns: granular options compose left to right, and a
// legacy SessionConfig bundle migrates by becoming the first option
// (repro.WithConfig) with granular options layered after it.
func ExampleNewIVConverterSystem_options() {
	// The idiomatic shape: independent options, any order.
	sys, err := repro.NewIVConverterSystem(
		repro.WithFastBoxes(), // seed-calibrated boxes (fast; grid is the default)
		repro.WithWorkers(2),  // bound evaluation parallelism
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("faults:", len(sys.Faults()))

	// Migrating a stored legacy bundle: WithConfig replaces the whole
	// configuration, so it must come first; granular options then
	// override individual fields.
	cfg := repro.FastSetup()
	sys2, err := repro.NewIVConverterSystem(
		repro.WithConfig(cfg),
		repro.WithWorkers(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("configs:", len(sys2.Configs()))
	// Output:
	// faults: 55
	// configs: 5
}

// ExampleParseTestConfigString builds a runnable test configuration from
// the paper's Fig. 1 style textual description.
func ExampleParseTestConfigString() {
	cfg, err := repro.ParseTestConfigString(`
config 7 custom-dc
stimulus dc(Iindc)
param Iindc A 0 100u seed 20u
return vdc(Vout) accuracy 1m
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cfg.Name, "params:", len(cfg.Params))
	// Output:
	// custom-dc params: 1
}
