package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleNewIVConverterSystem shows the minimal generate-and-detect flow
// on one fault.
func ExampleNewIVConverterSystem() {
	sys, err := repro.NewIVConverterSystem(repro.FastSetup())
	if err != nil {
		log.Fatal(err)
	}
	// The dictionary reproduces the paper's 45 bridges + 10 pinholes.
	fmt.Println("faults:", len(sys.Faults()))
	fmt.Println("configs:", len(sys.Configs()))
	// Output:
	// faults: 55
	// configs: 5
}

// ExampleSystem_Sensitivity evaluates the paper's cost function for one
// fault at chosen test parameters.
func ExampleSystem_Sensitivity() {
	sys, err := repro.NewIVConverterSystem(repro.FastSetup())
	if err != nil {
		log.Fatal(err)
	}
	// The 10 kΩ feedback bridge under the DC-output configuration.
	var f repro.Fault
	for _, ff := range sys.Faults() {
		if ff.ID() == "bridge:Iin-Vout" {
			f = ff
		}
	}
	sf, err := sys.Sensitivity(0, f, []float64{20e-6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("detected:", sf < 0)
	// Output:
	// detected: true
}

// ExampleParseTestConfigString builds a runnable test configuration from
// the paper's Fig. 1 style textual description.
func ExampleParseTestConfigString() {
	cfg, err := repro.ParseTestConfigString(`
config 7 custom-dc
stimulus dc(Iindc)
param Iindc A 0 100u seed 20u
return vdc(Vout) accuracy 1m
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cfg.Name, "params:", len(cfg.Params))
	// Output:
	// custom-dc params: 1
}
