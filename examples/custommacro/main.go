// custommacro runs structural test generation on a user-defined macro
// loaded from an embedded SPICE-like netlist: a simple one-stage
// IV-converter variant. It demonstrates that the flow (fault
// enumeration, generation, compaction) is macro-agnostic as long as the
// macro exposes the standardized IV-converter nodes (Iin, Vout, Vdd).
//
//	go run ./examples/custommacro
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/netlist"
)

// A minimal one-stage transimpedance amplifier with the standardized
// node names the IV-converter test configurations control and observe.
const macroNetlist = `
.title simple-iv-converter
.model n nmos vt0=0.7 kp=120u lambda=0.05
.model p pmos vt0=-0.8 kp=40u lambda=0.1

Vdd  Vdd  0 5
Vref Vref 0 2.5
Iin  Iin  0 dc 0

* bias chain ~30uA
Rb  Vdd Nbias 130k
M8  Nbias Nbias 0 n w=10u l=1u

* single gain stage: NMOS input, PMOS mirror load, source follower out
M1 Nmir Vref Ntail n w=50u l=1u
M2 Out1 Iin  Ntail n w=50u l=1u
M3 Nmir Nmir Vdd  p w=25u l=1u
M4 Out1 Nmir Vdd  p w=25u l=1u
M5 Ntail Nbias 0  n w=20u l=1u
M9 Vdd Out1 Vout  n w=50u l=1u
M10 Vout Nbias 0  n w=20u l=1u

Cdom Out1 0 50p
Rf  Vout Iin 50k
.end
`

func main() {
	ckt, err := netlist.ParseString(macroNetlist, "custom")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed macro %q: %d devices, %d nodes\n",
		ckt.Name(), len(ckt.Devices()), len(ckt.AllNodes()))

	sys, err := repro.NewSystem(ckt, repro.IVConfigs(), repro.WithFastBoxes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhaustive dictionary: %d faults\n", len(sys.Faults()))

	// Generate for a slice of the dictionary to keep the example short.
	faults := sys.Faults()
	if len(faults) > 12 {
		faults = faults[:12]
	}
	sols, err := sys.GenerateAll(faults)
	if err != nil {
		log.Fatal(err)
	}
	detected := 0
	for _, sol := range sols {
		c := sys.Configs()[sol.ConfigIdx]
		mark := "detected"
		if sol.Undetectable {
			mark = "undetectable"
		} else {
			detected++
		}
		fmt.Printf("  %-24s -> #%d %-14s %s\n", sol.Fault.ID(), c.ID, c.Name, mark)
	}
	cts, err := sys.Compact(sols, repro.DefaultCompactOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d/%d faults detectable; compacted to %d tests\n",
		detected, len(faults), len(cts))
}
