// Quickstart: generate a compact structural test set for the
// IV-converter macro in a few lines using the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Functional options tune the session. WithFastBoxes selects
	// seed-calibrated tolerance boxes so this example runs in seconds;
	// omit it for the full experiment-grade grid boxes. Workers default
	// to GOMAXPROCS — WithWorkers(n) overrides.
	sys, err := repro.NewIVConverterSystem(repro.WithFastBoxes())
	if err != nil {
		log.Fatal(err)
	}

	// Work on a manageable slice of the 55-fault dictionary: the first 8
	// bridging faults plus two pinholes. Copy before appending so the
	// system's dictionary stays intact.
	faults := append([]repro.Fault{}, sys.Faults()[:8]...)
	faults = append(faults, sys.Faults()[45], sys.Faults()[50])
	fmt.Printf("generating optimal tests for %d faults...\n", len(faults))

	sols, err := sys.GenerateAll(faults)
	if err != nil {
		log.Fatal(err)
	}
	for _, sol := range sols {
		c := sys.Configs()[sol.ConfigIdx]
		status := fmt.Sprintf("S_f=%.3g", sol.Sensitivity)
		if sol.Undetectable {
			status = "UNDETECTABLE"
		}
		fmt.Printf("  %-22s -> config #%d (%s) params=%v  %s\n",
			sol.Fault.ID(), c.ID, c.Name, sol.Params, status)
	}

	// Collapse the per-fault tests into a compact set with a 10 % loss
	// budget and verify the coverage by fault simulation.
	cts, err := sys.Compact(sols, repro.DefaultCompactOptions())
	if err != nil {
		log.Fatal(err)
	}
	cov, err := sys.Coverage(repro.TestsOfCompact(cts), faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompacted: %d tests for %d faults, coverage %.1f %%\n",
		len(cts), len(faults), cov.Percent())

	// The evaluation engine tracks where the simulation time went and
	// how well the sharded nominal cache worked.
	m := sys.Metrics()
	fmt.Printf("nominal cache hit rate: %.1f %%\n", 100*m.Cache.HitRate())
}
