// Service: drive a running atpgd daemon through its versioned HTTP
// API — submit a job, follow the live event stream, and fetch the
// deterministic result. The same api.JobRequest this client posts is
// what cmd/atpg builds from its flags, so the result bytes match a
// local `atpg -fast -faults 6 -result-json` run exactly.
//
// Boot the daemon first, then run the client:
//
//	go run ./cmd/atpgd -listen :8723 -data atpgd-data &
//	go run ./examples/service -addr http://127.0.0.1:8723
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/api"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8723", "base URL of the atpgd daemon")
	macro := flag.String("macro", api.MacroIVConverter, "built-in macro to test")
	faults := flag.Int("faults", 6, "fault-dictionary prefix to run (0 = all 55)")
	flag.Parse()

	// The request is the same typed object the CLI assembles from its
	// flags; Normalize fills defaults, Validate rejects nonsense before
	// any bytes go on the wire.
	req := api.JobRequest{
		V:       api.Version,
		Macro:   api.MacroSpec{Builtin: *macro},
		Faults:  api.FaultSpec{Limit: *faults},
		Options: api.RunOptions{BoxMode: api.BoxModeSeed},
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		log.Fatal(err)
	}

	st := submit(*addr, req)
	fmt.Printf("submitted job %s (state %s)\n", st.ID, st.State)

	// Follow the job's server-sent event stream. The daemon tees the
	// run journal into the stream, so this sees the same span and
	// verdict events `atpg -journal` would write — status frames
	// bracket the stream and the connection closes when the job ends.
	follow(*addr, st.ID)

	fin := getJSON[api.JobStatus](*addr + "/v1/jobs/" + st.ID)
	if fin.State != api.StateSucceeded {
		log.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}
	res := getJSON[api.JobResult](*addr + "/v1/jobs/" + st.ID + "/result")
	fmt.Printf("\nresult (schema v%d): %s, %d faults, delta %g\n",
		res.V, res.Macro, res.Faults, res.Delta)
	for _, t := range res.Tests {
		fmt.Printf("  test config #%d (%s) params=%v covers %d faults\n",
			t.Config, t.ConfigName, t.Params, len(t.Covers))
	}
	fmt.Printf("coverage: %d/%d faults, %.1f %%\n",
		res.Coverage.Detected, res.Coverage.Total, res.Coverage.Percent)
}

// submit posts the job and decodes the 202 status reply. Overload
// replies — 429 from the bounded queue or rate limiter, 503 from the
// memory watermark shedder — carry a Retry-After header; the client
// honors it, sleeping the server's hint (or a jittered exponential
// backoff when the hint is absent) before retrying. Other failures
// are terminal.
func submit(addr string, req api.JobRequest) api.JobStatus {
	body, err := api.Encode(req)
	if err != nil {
		log.Fatal(err)
	}
	backoff := 250 * time.Millisecond
	const maxBackoff = 8 * time.Second
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			var st api.JobStatus
			err := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				log.Fatal(err)
			}
			return st
		}
		var e api.ErrorReply
		_ = json.NewDecoder(resp.Body).Decode(&e)
		retriable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retriable || attempt >= 8 {
			log.Fatalf("submit: %s (%s)", resp.Status, e.Error)
		}
		d := retryDelay(resp, &backoff)
		resp.Body.Close()
		fmt.Printf("  overloaded (%s): retrying in %v (attempt %d)\n", resp.Status, d.Round(time.Millisecond), attempt)
		time.Sleep(d)
	}
}

// retryDelay picks the next submit delay: the server's Retry-After
// seconds when present, otherwise the doubling backoff with ±25%
// jitter so a herd of shed clients doesn't re-arrive in lockstep.
func retryDelay(resp *http.Response, backoff *time.Duration) time.Duration {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			// Jitter up to +25% on top of the server hint.
			return d + time.Duration(rand.Int63n(int64(d)/4+1))
		}
	}
	d := *backoff
	*backoff *= 2
	if *backoff > 8*time.Second {
		*backoff = 8 * time.Second
	}
	jitter := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// follow streams /v1/jobs/{id}/events and prints the interesting
// frames: status transitions with live progress, per-fault verdicts,
// and run-health events (quarantine, retry, checkpoint writes). Span
// frames are counted, not printed — a full run emits thousands.
func follow(addr, id string) {
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("events: %s", resp.Status)
	}

	var event, data string
	var spans int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "":
			handleFrame(event, data, &spans)
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		log.Fatal(err)
	}
	fmt.Printf("  (stream closed; %d span frames elided)\n", spans)
}

func handleFrame(event, data string, spans *int) {
	switch event {
	case "status":
		var st api.JobStatus
		if json.Unmarshal([]byte(data), &st) != nil {
			return
		}
		if p := st.Progress; p != nil {
			fmt.Printf("  status: %s  phase %s %d/%d (%.0f %%)\n",
				st.State, p.Phase, p.Done, p.Total, p.Percent)
		} else {
			fmt.Printf("  status: %s\n", st.State)
		}
	case "event":
		var ev struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		}
		if json.Unmarshal([]byte(data), &ev) != nil {
			return
		}
		switch ev.Name {
		case "fault_verdict":
			fmt.Printf("  verdict: %v -> %v\n", ev.Attrs["fault"], ev.Attrs["verdict"])
		case "quarantine", "retry", "checkpoint_error":
			fmt.Printf("  %s: %v\n", ev.Name, ev.Attrs)
		}
	case "run_end", "run_canceled":
		fmt.Printf("  %s\n", event)
	default: // span_start, span_end, run_start
		*spans++
	}
}

// getJSON fetches one API object, failing loudly on a non-200 reply.
func getJSON[T any](url string) T {
	var v T
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		log.Fatalf("GET %s: %s: %s", url, resp.Status, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatal(err)
	}
	return v
}
