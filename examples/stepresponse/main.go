// stepresponse explores the step-response test configurations (#4 and
// #5 of Table 1, the Fig. 1 description): it simulates the macro's step
// response directly, then shows how a fault separates the measured
// return values from the tolerance box.
//
//	go run ./examples/stepresponse
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/macros"
	"repro/internal/sim"
	"repro/internal/wave"
)

func main() {
	// Raw substrate access: simulate the step response of the macro.
	ckt := repro.NewIVConverter()
	macros.SetInputWave(ckt, wave.Step{Base: 5e-6, Elev: 20e-6, Delay: 10e-9, Rise: 10e-9})
	eng, err := sim.New(ckt, sim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tr, err := eng.Transient(2e-6, 10e-9, []string{macros.NodeVout})
	if err != nil {
		log.Fatal(err)
	}
	v := tr.Signal(macros.NodeVout)
	fmt.Println("step response of V(Vout), 5µA -> 25µA input step:")
	for i := 0; i < tr.Len(); i += tr.Len() / 12 {
		fmt.Printf("  t=%7.2f ns  V=%.4f\n", tr.Times[i]*1e9, v[i])
	}
	fmt.Printf("  settled at %.4f V (expect %.4f V)\n\n",
		v[len(v)-1], macros.ReferenceVoltage-25e-6*macros.FeedbackResistance)

	// The same stimulus as a test: configuration #4 return value for the
	// golden and a faulty macro.
	sys, err := repro.NewIVConverterSystem(repro.WithFastBoxes())
	if err != nil {
		log.Fatal(err)
	}
	const cfg4 = 3 // index of configuration #4
	T := []float64{5e-6, 20e-6}
	var pinhole repro.Fault
	for _, f := range sys.Faults() {
		if f.ID() == "pinhole:M9" {
			pinhole = f
		}
	}
	sf, err := sys.Sensitivity(cfg4, pinhole, T)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configuration #4 at base=5µA elev=20µA against %s: S_f = %.3g\n", pinhole.ID(), sf)
	if sf < 0 {
		fmt.Println("the faulty ΣV leaves the tolerance box: guaranteed detection")
	} else {
		fmt.Println("inside the tolerance box: not guaranteed detectable here")
	}

	// Generate the actual optimal test for that pinhole.
	sol, err := sys.Generate(pinhole)
	if err != nil {
		log.Fatal(err)
	}
	c := sys.Configs()[sol.ConfigIdx]
	fmt.Printf("generated optimal test: config #%d (%s) params=%v, S_f=%.3g, critical impact=%.3g Ω\n",
		c.ID, c.Name, sol.Params, sol.Sensitivity, sol.CriticalImpact)
}
