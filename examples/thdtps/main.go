// thdtps reproduces the paper's Figs. 2-4 study interactively: the
// test-parameter sensitivity (tps) graph of a bridging fault under the
// THD test configuration at three impact levels, showing the hard-fault
// to soft-fault transition and the stability of the optimum location.
//
//	go run ./examples/thdtps
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	sys, err := repro.NewIVConverterSystem(repro.WithFastBoxes())
	if err != nil {
		log.Fatal(err)
	}

	// The bridge between the differential-pair tail and the first-stage
	// output — "a resistive short between two arbitrarily chosen nodes".
	var base repro.Fault
	for _, f := range sys.Faults() {
		if f.ID() == "bridge:Ntail-Out1" {
			base = f
		}
	}
	if base == nil {
		log.Fatal("fault missing from dictionary")
	}

	// THD configuration is #3 (index 2).
	const thdIdx = 2
	for _, impact := range []float64{10e3, 34e3, 75e3} {
		f := base.WithImpact(impact)
		g, err := sys.TPS(thdIdx, f, 13, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== impact R = %s ==\n", report.Engineering(impact))
		if err := report.HeatMap(os.Stdout, g.S, g.Name1, g.Name2); err != nil {
			log.Fatal(err)
		}
		i, j, min := g.MinCell()
		fmt.Printf("minimum S_f = %.4g at %s=%s, %s=%s (detectable on %.0f %% of the plane)\n",
			min, g.Name1, report.Engineering(g.Axis1[i]),
			g.Name2, report.Engineering(g.Axis2[j]), 100*g.DetectableFraction())
	}
	fmt.Println("\nhard region (10k): shape tied to the exact impact, huge magnitudes;")
	fmt.Println("soft region (34k, 75k): stable shape, flattening and shifting upward.")
}
