package repro

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
)

// This file exposes the extensions that go beyond the paper's evaluation:
// the reduced macro variant, ATE scheduling/test-time modeling, and
// IFA-style weighted coverage.

// WeightedFault pairs a fault with a relative likelihood (IFA-style).
type WeightedFault = fault.Weighted

// ScheduleEntry is one test of an ordered ATE schedule.
type ScheduleEntry = core.ScheduleEntry

// Signature is a fault's predicted response vector under a test set.
type Signature = core.Signature

// Stats summarizes a session's simulation effort.
type Stats = core.Stats

// Metrics is a snapshot of the evaluation engine's observability
// counters: per-phase wall-clock timings and nominal-cache
// effectiveness. See System.Metrics.
type Metrics = engine.Metrics

// PhaseStats is the per-phase slice of a Metrics snapshot.
type PhaseStats = engine.PhaseStats

// CacheStats summarizes the sharded nominal-response cache.
type CacheStats = engine.CacheStats

// Phase names reported in Metrics.Phases.
const (
	// PhaseBoxBuild covers tolerance-box construction.
	PhaseBoxBuild = core.PhaseBoxBuild
	// PhaseOptimize covers per-(fault, configuration) optimization.
	PhaseOptimize = core.PhaseOptimize
	// PhaseImpact covers the impact relax/intensify selection loops.
	PhaseImpact = core.PhaseImpact
	// PhaseFaultSim covers fault simulation of a test set.
	PhaseFaultSim = core.PhaseFaultSim
	// PhaseSchedule covers the ATE schedule's detection matrix.
	PhaseSchedule = core.PhaseSchedule
	// PhaseTPS covers tps-graph grid sweeps.
	PhaseTPS = core.PhaseTPS
	// PhaseCompact covers test-set compaction.
	PhaseCompact = core.PhaseCompact
)

// Diagnosis is one ranked candidate fault of a diagnosis run.
type Diagnosis = core.Diagnosis

// ParseTestConfig reads a textual test configuration description (the
// paper's Fig. 1 as a small language; see internal/testcfg's DSL docs).
func ParseTestConfig(r io.Reader) (*TestConfig, error) { return testcfg.ParseConfig(r) }

// ParseTestConfigString is ParseTestConfig over a string.
func ParseTestConfigString(s string) (*TestConfig, error) { return testcfg.ParseConfigString(s) }

// Open is a stuck-open (series-resistance) fault at a transistor
// terminal; its severity GROWS with the model resistance (inverted
// impact semantics, handled transparently by the generation loop).
type Open = fault.Open

// NewDrainOpen returns a stuck-open at the drain of the named transistor.
func NewDrainOpen(transistor string, r float64) *Open { return fault.NewDrainOpen(transistor, r) }

// AllDrainOpens enumerates one drain open per MOSFET of a macro at the
// given dictionary series resistance — an extension of the paper's
// bridge+pinhole dictionary.
func AllDrainOpens(c *Circuit, r float64) []Fault { return fault.AllDrainOpens(c, r) }

// NewSimpleIVConverter returns the reduced single-stage macro variant
// (9 nodes, 8 MOSFETs → 44-fault dictionary), a second macro type for
// experiments beyond the paper's case study.
func NewSimpleIVConverter() *Circuit { return macros.SimpleIVConverter() }

// UniformWeights wraps a fault list with equal likelihoods (the paper's
// exhaustive-list assumption).
func UniformWeights(faults []Fault) []WeightedFault { return fault.UniformWeights(faults) }

// HeuristicIFAWeights assigns layout-flavoured likelihoods (rail bridges
// likelier than signal bridges, pinholes rarer) for weighted-coverage
// reporting without a real layout.
func HeuristicIFAWeights(faults []Fault) []WeightedFault { return fault.HeuristicIFAWeights(faults) }

// WeightedCoverage turns a CoverageReport into likelihood-weighted
// coverage over the given weighted fault list.
func WeightedCoverage(ws []WeightedFault, rep CoverageReport) (float64, error) {
	detected := make(map[string]bool, len(rep.DetectedBy))
	for id := range rep.DetectedBy {
		detected[id] = true
	}
	return fault.WeightedCoverage(ws, detected)
}

// Schedule orders a test set greedily by marginal fault yield per unit
// ATE time and reports the faults no test detects.
func (s *System) Schedule(tests []Test, faults []Fault) ([]ScheduleEntry, []string, error) {
	return s.session.Schedule(tests, faults)
}

// ScheduleContext is Schedule honoring ctx.
func (s *System) ScheduleContext(ctx context.Context, tests []Test, faults []Fault) ([]ScheduleEntry, []string, error) {
	return s.session.ScheduleContext(ctx, tests, faults)
}

// Prune drops tests that add no marginal dictionary-impact detection,
// keeping the greedy-schedule order. See core.Session.Prune for the
// sensitivity trade-off.
func (s *System) Prune(tests []Test, faults []Fault) ([]Test, error) {
	return s.session.Prune(tests, faults)
}

// SetTime estimates the total ATE application time of a test set.
func (s *System) SetTime(tests []Test) time.Duration { return s.session.SetTime(tests) }

// ApplicationTime estimates the ATE application time of one test.
func (s *System) ApplicationTime(t Test) time.Duration { return s.session.ApplicationTime(t) }

// Signatures builds the fault-signature database of a test set: the
// fault-free baseline plus every fault's predicted responses.
func (s *System) Signatures(tests []Test, faults []Fault) ([][]float64, []Signature, error) {
	return s.session.Signatures(tests, faults)
}

// Diagnose ranks dictionary faults against observed responses.
func (s *System) Diagnose(tests []Test, sigs []Signature, observed [][]float64) ([]Diagnosis, error) {
	return s.session.Diagnose(tests, sigs, observed)
}

// ObserveFault simulates the tester-side responses of a device carrying
// the given fault, in the shape Diagnose expects.
func (s *System) ObserveFault(tests []Test, f Fault) ([][]float64, error) {
	return s.session.ObserveFault(tests, f)
}

// PruneContext is Prune honoring ctx.
func (s *System) PruneContext(ctx context.Context, tests []Test, faults []Fault) ([]Test, error) {
	return s.session.PruneContext(ctx, tests, faults)
}

// Stats returns the session's simulation counters.
func (s *System) Stats() Stats { return s.session.Stats() }

// Metrics snapshots the evaluation engine's observability counters:
// where simulation wall time went (box build, optimization, impact
// loops, fault simulation, tps sweeps) and how well the sharded nominal
// cache worked.
func (s *System) Metrics() Metrics { return s.session.Metrics() }
