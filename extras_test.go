package repro

import (
	"testing"
	"time"
)

func TestSimpleMacroSystem(t *testing.T) {
	sys, err := NewSystem(NewSimpleIVConverter(), IVConfigs(), FastSetup())
	if err != nil {
		t.Fatal(err)
	}
	// 9 nodes -> C(9,2)=36 bridges + 8 pinholes.
	if got := len(sys.Faults()); got != 44 {
		t.Errorf("simple macro dictionary = %d, want 44", got)
	}
}

func TestWeightedCoverageFacade(t *testing.T) {
	sys := fastSystem(t)
	faults := []Fault{sys.Faults()[8], sys.Faults()[5]} // 0-Vdd bridge among them
	tests := []Test{{ConfigIdx: 1, Params: []float64{20e-6}}}
	rep, err := sys.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	uw, err := WeightedCoverage(UniformWeights(faults), rep)
	if err != nil {
		t.Fatal(err)
	}
	if uw != rep.Percent() {
		t.Errorf("uniform weighted = %g, plain = %g", uw, rep.Percent())
	}
	if _, err := WeightedCoverage(HeuristicIFAWeights(faults), rep); err != nil {
		t.Errorf("heuristic weights: %v", err)
	}
}

func TestScheduleAndPruneFacade(t *testing.T) {
	sys := fastSystem(t)
	faults := []Fault{sys.Faults()[5], sys.Faults()[8]}
	tests := []Test{
		{ConfigIdx: 1, Params: []float64{20e-6}},
		{ConfigIdx: 0, Params: []float64{20e-6}},
		{ConfigIdx: 0, Params: []float64{10e-6}},
	}
	sched, _, err := sys.Schedule(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("schedule = %d entries", len(sched))
	}
	pruned, err := sys.Prune(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) >= len(tests) {
		t.Errorf("prune kept %d of %d redundant tests", len(pruned), len(tests))
	}
	// Pruned set must preserve dictionary coverage.
	before, err := sys.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	after, err := sys.Coverage(pruned, faults)
	if err != nil {
		t.Fatal(err)
	}
	if after.Detected != before.Detected {
		t.Errorf("prune changed coverage: %d -> %d", before.Detected, after.Detected)
	}
}

func TestSetTimePositive(t *testing.T) {
	sys := fastSystem(t)
	tests := []Test{
		{ConfigIdx: 0, Params: []float64{20e-6}},
		{ConfigIdx: 2, Params: []float64{20e-6, 1e3}},
	}
	total := sys.SetTime(tests)
	if total <= time.Millisecond {
		t.Errorf("SetTime = %v, want > 1 ms (1 kHz THD alone is ~5 ms)", total)
	}
	if sys.ApplicationTime(tests[1]) <= sys.ApplicationTime(tests[0]) {
		t.Error("1 kHz THD (5 periods = 5 ms) should cost more than a DC test")
	}
}
