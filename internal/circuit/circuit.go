// Package circuit assembles devices into a netlist, resolves node names
// onto MNA unknown indices, and offers the cloning and editing operations
// the fault-insertion and process-corner machinery relies on.
//
// A Circuit is a mutable builder. Compile freezes the current node and
// branch numbering into every device and returns the layout, after which
// the circuit can be handed to the analyses in internal/sim. Clones are
// deep: devices, models and node bookkeeping are all copied, so faulty
// and corner variants never alias the golden netlist.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/device"
)

// GroundAliases are the node names treated as the reference node.
var GroundAliases = map[string]bool{"0": true, "gnd": true, "GND": true, "": true}

// Circuit is a named collection of devices plus the node table built from
// their terminals.
type Circuit struct {
	name    string
	devices []device.Device
	byName  map[string]device.Device

	// Layout, valid after Compile.
	nodeIndex map[string]int // node name -> unknown index, ground absent
	nodeNames []string       // index -> name (non-ground nodes, sorted)
	branches  int
	compiled  bool
}

// New returns an empty circuit.
func New(name string) *Circuit {
	return &Circuit{
		name:   name,
		byName: make(map[string]device.Device),
	}
}

// Name returns the circuit name.
func (c *Circuit) Name() string { return c.name }

// Add inserts a device. It panics on duplicate instance names — netlists
// are built programmatically and a duplicate is a programming error.
func (c *Circuit) Add(d device.Device) {
	if _, dup := c.byName[d.Name()]; dup {
		panic(fmt.Sprintf("circuit %s: duplicate device %q", c.name, d.Name()))
	}
	c.devices = append(c.devices, d)
	c.byName[d.Name()] = d
	c.compiled = false
}

// Remove deletes the named device; it reports whether it was present.
func (c *Circuit) Remove(name string) bool {
	d, ok := c.byName[name]
	if !ok {
		return false
	}
	delete(c.byName, name)
	for i, dd := range c.devices {
		if dd == d {
			c.devices = append(c.devices[:i], c.devices[i+1:]...)
			break
		}
	}
	c.compiled = false
	return true
}

// Device returns the named device, or nil.
func (c *Circuit) Device(name string) device.Device { return c.byName[name] }

// Devices returns the devices in insertion order. The slice is shared;
// callers must not mutate it.
func (c *Circuit) Devices() []device.Device { return c.devices }

// Clone returns a deep copy of the circuit (devices cloned, layout
// discarded). The clone can be edited and compiled independently.
func (c *Circuit) Clone() *Circuit {
	cc := New(c.name)
	for _, d := range c.devices {
		cc.Add(d.Clone())
	}
	return cc
}

// IsGround reports whether the node name refers to the reference node.
func IsGround(node string) bool { return GroundAliases[node] }

// Nodes returns the sorted non-ground node names referenced by the
// current devices (available without compiling).
func (c *Circuit) Nodes() []string {
	seen := make(map[string]bool)
	for _, d := range c.devices {
		for _, n := range d.TerminalNames() {
			if !IsGround(n) {
				seen[n] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AllNodes returns the non-ground nodes plus the ground name "0", the
// universe the exhaustive bridging-fault generator enumerates pairs from.
func (c *Circuit) AllNodes() []string {
	return append([]string{"0"}, c.Nodes()...)
}

// Layout describes the compiled unknown vector: node voltages first, then
// source/inductor branch currents.
type Layout struct {
	// NodeIndex maps non-ground node names to unknown indices.
	NodeIndex map[string]int
	// NodeNames lists node names by unknown index.
	NodeNames []string
	// NumNodes is the count of non-ground nodes.
	NumNodes int
	// NumBranches is the count of branch-current unknowns.
	NumBranches int
}

// Dim returns the total unknown count.
func (l *Layout) Dim() int { return l.NumNodes + l.NumBranches }

// Compile resolves every device terminal to an unknown index, assigns
// branch unknowns, and returns the layout. It is idempotent and must be
// re-run after structural edits.
func (c *Circuit) Compile() (*Layout, error) {
	names := c.Nodes()
	c.nodeNames = names
	c.nodeIndex = make(map[string]int, len(names))
	for i, n := range names {
		c.nodeIndex[n] = i
	}
	branch := len(names)
	for _, d := range c.devices {
		terms := d.TerminalNames()
		idx := make([]int, len(terms))
		for i, t := range terms {
			if IsGround(t) {
				idx[i] = -1
				continue
			}
			idx[i] = c.nodeIndex[t]
		}
		d.Resolve(idx)
		if br, ok := d.(device.Brancher); ok {
			br.SetBranchBase(branch)
			branch += br.NumBranches()
		}
	}
	c.branches = branch - len(names)
	c.compiled = true
	if err := c.check(); err != nil {
		return nil, err
	}
	return c.Layout(), nil
}

// Layout returns the current layout; Compile must have succeeded.
func (c *Circuit) Layout() *Layout {
	if !c.compiled {
		panic(fmt.Sprintf("circuit %s: Layout before Compile", c.name))
	}
	idx := make(map[string]int, len(c.nodeIndex))
	for k, v := range c.nodeIndex {
		idx[k] = v
	}
	names := make([]string, len(c.nodeNames))
	copy(names, c.nodeNames)
	return &Layout{
		NodeIndex:   idx,
		NodeNames:   names,
		NumNodes:    len(names),
		NumBranches: c.branches,
	}
}

// NodeVoltage reads node's voltage out of a solution vector; ground reads
// as 0. It panics on unknown node names.
func (c *Circuit) NodeVoltage(x []float64, node string) float64 {
	if IsGround(node) {
		return 0
	}
	i, ok := c.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("circuit %s: unknown node %q", c.name, node))
	}
	return x[i]
}

// HasNode reports whether the node name exists (or is ground).
func (c *Circuit) HasNode(node string) bool {
	if IsGround(node) {
		return true
	}
	for _, n := range c.Nodes() {
		if n == node {
			return true
		}
	}
	return false
}

// check performs structural sanity checks after compilation: every
// non-ground node needs at least two device connections (a dangling node
// makes the MNA matrix singular), and the circuit needs a ground
// reference somewhere.
func (c *Circuit) check() error {
	if len(c.devices) == 0 {
		return fmt.Errorf("circuit %s: empty", c.name)
	}
	grounded := false
	degree := make(map[string]int)
	for _, d := range c.devices {
		for _, n := range d.TerminalNames() {
			if IsGround(n) {
				grounded = true
				continue
			}
			degree[n]++
		}
	}
	if !grounded {
		return fmt.Errorf("circuit %s: no ground reference", c.name)
	}
	var dangling []string
	for n, deg := range degree {
		if deg < 2 {
			dangling = append(dangling, n)
		}
	}
	if len(dangling) > 0 {
		sort.Strings(dangling)
		return fmt.Errorf("circuit %s: dangling nodes %v", c.name, dangling)
	}
	return nil
}

// String renders a netlist-style summary, one device per line.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "* circuit %s (%d devices, %d nodes)\n", c.name, len(c.devices), len(c.Nodes()))
	for _, d := range c.devices {
		fmt.Fprintf(&b, "%-8s %s\n", d.Name(), strings.Join(d.TerminalNames(), " "))
	}
	return b.String()
}
