package circuit

import (
	"strings"
	"testing"

	"repro/internal/device"
)

func divider() *Circuit {
	c := New("divider")
	c.Add(device.NewDCVSource("V1", "in", "0", 10))
	c.Add(device.NewResistor("R1", "in", "mid", 1e3))
	c.Add(device.NewResistor("R2", "mid", "0", 1e3))
	return c
}

func TestCompileAssignsIndices(t *testing.T) {
	c := divider()
	lay, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumNodes != 2 {
		t.Fatalf("NumNodes = %d, want 2", lay.NumNodes)
	}
	if lay.NumBranches != 1 {
		t.Fatalf("NumBranches = %d, want 1", lay.NumBranches)
	}
	if lay.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", lay.Dim())
	}
	r1 := c.Device("R1")
	if r1.Terminals() == nil {
		t.Fatal("R1 not resolved")
	}
	// Branch index comes after nodes.
	v1 := c.Device("V1").(*device.VSource)
	if v1.BranchBase() != 2 {
		t.Errorf("branch base = %d, want 2", v1.BranchBase())
	}
}

func TestGroundAliases(t *testing.T) {
	for _, g := range []string{"0", "gnd", "GND", ""} {
		if !IsGround(g) {
			t.Errorf("IsGround(%q) = false", g)
		}
	}
	if IsGround("Vdd") {
		t.Error("Vdd must not be ground")
	}
}

func TestNodesSortedAndGroundFree(t *testing.T) {
	c := divider()
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0] != "in" || nodes[1] != "mid" {
		t.Errorf("Nodes = %v, want [in mid]", nodes)
	}
	all := c.AllNodes()
	if len(all) != 3 || all[0] != "0" {
		t.Errorf("AllNodes = %v, want ground first", all)
	}
}

func TestDuplicateDevicePanics(t *testing.T) {
	c := New("x")
	c.Add(device.NewResistor("R1", "a", "0", 1))
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	c.Add(device.NewResistor("R1", "a", "0", 2))
}

func TestRemoveDevice(t *testing.T) {
	c := divider()
	if !c.Remove("R2") {
		t.Fatal("Remove R2 = false")
	}
	if c.Remove("R2") {
		t.Fatal("second Remove R2 = true")
	}
	if c.Device("R2") != nil {
		t.Fatal("R2 still present")
	}
	if len(c.Devices()) != 2 {
		t.Fatalf("device count = %d, want 2", len(c.Devices()))
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := divider()
	cc := c.Clone()
	r := cc.Device("R1").(*device.Resistor)
	r.R = 9e9
	if c.Device("R1").(*device.Resistor).R != 1e3 {
		t.Error("clone shares device storage with original")
	}
	if _, err := cc.Compile(); err != nil {
		t.Fatalf("clone does not compile: %v", err)
	}
}

func TestDanglingNodeRejected(t *testing.T) {
	c := New("bad")
	c.Add(device.NewDCVSource("V1", "in", "0", 1))
	c.Add(device.NewResistor("R1", "in", "nowhere", 1e3))
	if _, err := c.Compile(); err == nil {
		t.Fatal("dangling node accepted")
	} else if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error %q does not name the dangling node", err)
	}
}

func TestNoGroundRejected(t *testing.T) {
	c := New("floating")
	c.Add(device.NewDCVSource("V1", "a", "b", 1))
	c.Add(device.NewResistor("R1", "a", "b", 1e3))
	if _, err := c.Compile(); err == nil {
		t.Fatal("ground-free circuit accepted")
	}
}

func TestEmptyCircuitRejected(t *testing.T) {
	if _, err := New("empty").Compile(); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

func TestNodeVoltage(t *testing.T) {
	c := divider()
	if _, err := c.Compile(); err != nil {
		t.Fatal(err)
	}
	x := []float64{10, 5, -5e-3}
	if got := c.NodeVoltage(x, "mid"); got != 5 {
		t.Errorf("V(mid) = %g, want 5", got)
	}
	if got := c.NodeVoltage(x, "0"); got != 0 {
		t.Errorf("V(0) = %g, want 0", got)
	}
}

func TestNodeVoltagePanicsOnUnknown(t *testing.T) {
	c := divider()
	if _, err := c.Compile(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown node did not panic")
		}
	}()
	c.NodeVoltage([]float64{0, 0, 0}, "bogus")
}

func TestHasNode(t *testing.T) {
	c := divider()
	if !c.HasNode("mid") || !c.HasNode("0") {
		t.Error("HasNode false negatives")
	}
	if c.HasNode("xyz") {
		t.Error("HasNode false positive")
	}
}

func TestLayoutIsACopy(t *testing.T) {
	c := divider()
	lay, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	lay.NodeIndex["in"] = 99
	lay2 := c.Layout()
	if lay2.NodeIndex["in"] == 99 {
		t.Error("Layout exposes internal map")
	}
}

func TestRecompileAfterEdit(t *testing.T) {
	c := divider()
	if _, err := c.Compile(); err != nil {
		t.Fatal(err)
	}
	// Bridge a new node in: structural edit requires recompile.
	c.Add(device.NewResistor("Rb", "mid", "newnode", 1e4))
	c.Add(device.NewResistor("Rb2", "newnode", "0", 1e4))
	lay, err := c.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if lay.NumNodes != 3 {
		t.Errorf("NumNodes = %d, want 3 after edit", lay.NumNodes)
	}
}

func TestStringContainsDevices(t *testing.T) {
	s := divider().String()
	for _, want := range []string{"V1", "R1", "R2", "divider"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}
