package circuit

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

// randomResistorNet builds a random connected resistor network with a
// driving source, guaranteed compilable: node i connects to a random
// earlier node (spanning-tree construction), so nothing dangles.
func randomResistorNet(rng *rand.Rand) *Circuit {
	c := New("random")
	n := 2 + rng.Intn(8)
	c.Add(device.NewDCVSource("V0", "n1", "0", 1+rng.Float64()*9))
	c.Add(device.NewResistor("Rg", "n1", "0", 100+rng.Float64()*1e4))
	for i := 2; i <= n; i++ {
		prev := fmt.Sprintf("n%d", 1+rng.Intn(i-1))
		cur := fmt.Sprintf("n%d", i)
		c.Add(device.NewResistor(fmt.Sprintf("Ra%d", i), prev, cur, 100+rng.Float64()*1e4))
		// Second connection keeps the degree ≥ 2 so compile's dangling
		// check passes.
		c.Add(device.NewResistor(fmt.Sprintf("Rb%d", i), cur, "0", 100+rng.Float64()*1e4))
	}
	return c
}

// TestCloneCompilesIdentically: a clone must compile to the same layout
// (node naming and dimensions) as its original.
func TestCloneCompilesIdentically(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomResistorNet(rng)
		l1, err := c.Compile()
		if err != nil {
			return false
		}
		cc := c.Clone()
		l2, err := cc.Compile()
		if err != nil {
			return false
		}
		if l1.Dim() != l2.Dim() || l1.NumNodes != l2.NumNodes {
			return false
		}
		for k, v := range l1.NodeIndex {
			if l2.NodeIndex[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRemoveAddIsIdentity: removing a device and re-adding an identical
// one preserves the compiled layout.
func TestRemoveAddIsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomResistorNet(rng)
		l1, err := c.Compile()
		if err != nil {
			return false
		}
		r := c.Device("Rg").(*device.Resistor)
		val := r.R
		if !c.Remove("Rg") {
			return false
		}
		c.Add(device.NewResistor("Rg", "n1", "0", val))
		l2, err := c.Compile()
		if err != nil {
			return false
		}
		return l1.Dim() == l2.Dim()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNodesDeterministic: Nodes() is sorted and stable across calls.
func TestNodesDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomResistorNet(rng)
		a := c.Nodes()
		b := c.Nodes()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if i > 0 && a[i-1] >= a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
