// Package ckpt implements crash-safe JSON checkpoint files: every write
// goes to a temporary file in the destination directory, is fsynced,
// atomically renamed over the destination, and the directory is fsynced
// so the rename itself survives a power cut. A reader therefore always
// sees either the previous complete checkpoint or the new complete
// checkpoint — never a torn mixture — no matter when the writer dies.
//
// Float64 values round-trip exactly through encoding/json (Go emits the
// shortest representation that parses back to the identical bits), which
// is what makes resume-from-checkpoint bit-identical to an uninterrupted
// run. Values must avoid NaN/±Inf, which JSON cannot represent.
package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// Failpoint sites covering the three windows of the atomic-write
// protocol. fpRename deliberately leaves a *torn* destination file
// behind (the first half of the payload) before erroring: that is the
// on-disk state a crash on a non-ordered filesystem produces, and it
// is what the corrupt-checkpoint regression tests load against.
var (
	fpSaveWrite  = failpoint.At("ckpt.save.write")
	fpSaveSync   = failpoint.At("ckpt.save.sync")
	fpSaveRename = failpoint.At("ckpt.save.rename")
)

// Save atomically writes v as JSON to path.
func Save(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("ckpt: marshal: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if ferr := fpSaveWrite.Hit(); ferr != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmpName, ferr)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: write %s: %w", tmpName, err)
	}
	if ferr := fpSaveSync.Hit(); ferr != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: fsync %s: %w", tmpName, ferr)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: fsync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: close %s: %w", tmpName, err)
	}
	if ferr := fpSaveRename.Hit(); ferr != nil {
		// Simulate the crash this window exposes: the destination ends
		// up with a truncated payload instead of either complete state.
		_ = os.WriteFile(path, data[:len(data)/2], 0o644)
		return fmt.Errorf("ckpt: rename: %w", ferr)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ckpt: rename: %w", err)
	}
	// Fsync the directory so the rename is durable, not just ordered.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads the JSON checkpoint at path into v. A missing file is
// reported as os.ErrNotExist (via the underlying open error).
func Load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("ckpt: parse %s: %w", path, err)
	}
	return nil
}

// Writer debounces periodic checkpoint writes: MaybeSave persists at
// most once per interval, Flush persists unconditionally. Safe for
// concurrent use; concurrent saves serialize.
type Writer struct {
	path     string
	interval time.Duration

	mu     sync.Mutex
	last   time.Time
	writes int64
}

// NewWriter returns a debounced writer (interval <= 0 defaults to 2s).
func NewWriter(path string, interval time.Duration) *Writer {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Writer{path: path, interval: interval}
}

// Path returns the destination file.
func (w *Writer) Path() string { return w.path }

// Writes returns the number of completed file writes.
func (w *Writer) Writes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes
}

// MaybeSave persists the snapshot returned by state if at least the
// debounce interval has passed since the last write. state is only
// called when a write will happen. Reports whether a write occurred.
func (w *Writer) MaybeSave(state func() any) (bool, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if time.Since(w.last) < w.interval {
		return false, nil
	}
	return true, w.saveLocked(state())
}

// Flush persists v unconditionally.
func (w *Writer) Flush(v any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.saveLocked(v)
}

func (w *Writer) saveLocked(v any) error {
	if err := Save(w.path, v); err != nil {
		return err
	}
	w.last = time.Now()
	w.writes++
	return nil
}
