package ckpt

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type payload struct {
	N  int       `json:"n"`
	Xs []float64 `json:"xs"`
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	// Awkward floats: exact round-trip is the point.
	in := payload{N: 3, Xs: []float64{0.1, 1e-300, math.Nextafter(1, 2), -2.5e17}}
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || len(out.Xs) != len(in.Xs) {
		t.Fatalf("round trip mangled shape: %+v", out)
	}
	for i := range in.Xs {
		if math.Float64bits(out.Xs[i]) != math.Float64bits(in.Xs[i]) {
			t.Errorf("Xs[%d]: %x != %x (not bit-identical)", i,
				math.Float64bits(out.Xs[i]), math.Float64bits(in.Xs[i]))
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if err := Save(path, payload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, payload{N: 2}); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Errorf("N = %d, want the second write", out.N)
	}
	// No temp files left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("directory has %d entries, want only the checkpoint", len(ents))
	}
}

func TestLoadMissing(t *testing.T) {
	var out payload
	err := Load(filepath.Join(t.TempDir(), "nope.json"), &out)
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("err = %v, want os.ErrNotExist", err)
	}
}

func TestWriterDebounce(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	w := NewWriter(path, time.Hour)
	state := func() any { return payload{N: 1} }

	wrote, err := w.MaybeSave(state)
	if err != nil || !wrote {
		t.Fatalf("first MaybeSave = (%v, %v), want a write", wrote, err)
	}
	wrote, err = w.MaybeSave(func() any {
		t.Error("state built despite debounce")
		return nil
	})
	if err != nil || wrote {
		t.Fatalf("debounced MaybeSave = (%v, %v), want no write", wrote, err)
	}
	if err := w.Flush(payload{N: 7}); err != nil {
		t.Fatal(err)
	}
	if w.Writes() != 2 {
		t.Errorf("Writes = %d, want 2", w.Writes())
	}
	var out payload
	if err := Load(path, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 7 {
		t.Errorf("N = %d, want the flushed value", out.N)
	}
}
