package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the multi-job checkpoint directory layout of the job server:
// one subdirectory per job under <root>/jobs, each holding the job's
// durable files. Every write goes through the package's atomic Save, so
// a daemon killed at any instant leaves every job either at its previous
// or its next complete state — the property restart-resume builds on.
//
//	<root>/jobs/<id>/job.json        submission record (request + lifecycle state)
//	<root>/jobs/<id>/ckpt.json       per-fault generation checkpoint (core schema)
//	<root>/jobs/<id>/journal.jsonl   JSONL run journal
//	<root>/jobs/<id>/result.json     canonical wire-encoded job result
type Store struct {
	root string
}

// JobPaths names the durable files of one job.
type JobPaths struct {
	// Dir is the job's directory.
	Dir string
	// Record is the submission record (request + state).
	Record string
	// Checkpoint is the per-fault generation checkpoint.
	Checkpoint string
	// Journal is the JSONL run journal.
	Journal string
	// Result is the canonical encoded result.
	Result string
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("ckpt: empty store root")
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: store root: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// validID guards against job IDs that would escape the layout. IDs are
// server-generated, but the store is also fed from directory listings
// of disks it does not fully own.
func validID(id string) error {
	if id == "" || id == "." || id == ".." {
		return fmt.Errorf("ckpt: invalid job id %q", id)
	}
	if strings.ContainsAny(id, "/\\") {
		return fmt.Errorf("ckpt: invalid job id %q", id)
	}
	return nil
}

// Job returns the file layout of one job id without touching the disk.
func (s *Store) Job(id string) (JobPaths, error) {
	if err := validID(id); err != nil {
		return JobPaths{}, err
	}
	dir := filepath.Join(s.root, "jobs", id)
	return JobPaths{
		Dir:        dir,
		Record:     filepath.Join(dir, "job.json"),
		Checkpoint: filepath.Join(dir, "ckpt.json"),
		Journal:    filepath.Join(dir, "journal.jsonl"),
		Result:     filepath.Join(dir, "result.json"),
	}, nil
}

// Create makes the job's directory and returns its layout.
func (s *Store) Create(id string) (JobPaths, error) {
	p, err := s.Job(id)
	if err != nil {
		return JobPaths{}, err
	}
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return JobPaths{}, fmt.Errorf("ckpt: job dir %s: %w", id, err)
	}
	return p, nil
}

// List returns the IDs of every job directory that holds a submission
// record, sorted lexically (server job IDs sort chronologically).
// Directories without a record — a crash between MkdirAll and the first
// record write — are skipped: they carry no recoverable state.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: list jobs: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() || validID(e.Name()) != nil {
			continue
		}
		p, _ := s.Job(e.Name())
		if _, err := os.Stat(p.Record); err != nil {
			continue
		}
		ids = append(ids, e.Name())
	}
	sort.Strings(ids)
	return ids, nil
}

// SaveRecord atomically persists the job's submission record, creating
// the job's directory if needed.
func (s *Store) SaveRecord(id string, v any) error {
	p, err := s.Create(id)
	if err != nil {
		return err
	}
	return Save(p.Record, v)
}

// LoadRecord reads the job's submission record into v.
func (s *Store) LoadRecord(id string, v any) error {
	p, err := s.Job(id)
	if err != nil {
		return err
	}
	return Load(p.Record, v)
}

// Remove deletes a job's directory and everything in it.
func (s *Store) Remove(id string) error {
	p, err := s.Job(id)
	if err != nil {
		return err
	}
	return os.RemoveAll(p.Dir)
}
