package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

type fakeRecord struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func TestStoreLayoutAndRoundTrip(t *testing.T) {
	root := t.TempDir()
	st, err := NewStore(root)
	if err != nil {
		t.Fatal(err)
	}
	p, err := st.Create("20260807-0001")
	if err != nil {
		t.Fatal(err)
	}
	if p.Dir != filepath.Join(root, "jobs", "20260807-0001") {
		t.Fatalf("Dir = %q", p.Dir)
	}
	for _, f := range []string{p.Record, p.Checkpoint, p.Journal, p.Result} {
		if filepath.Dir(f) != p.Dir {
			t.Fatalf("file %q outside job dir %q", f, p.Dir)
		}
	}

	want := fakeRecord{ID: "20260807-0001", State: "queued"}
	if err := st.SaveRecord(want.ID, want); err != nil {
		t.Fatal(err)
	}
	var got fakeRecord
	if err := st.LoadRecord(want.ID, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("record round trip: got %+v want %+v", got, want)
	}
}

func TestStoreListSkipsEmptyAndSorts(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"b-2", "a-1", "c-3"} {
		if err := st.SaveRecord(id, fakeRecord{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	// Directory without a record: crash between mkdir and first save.
	if _, err := st.Create("d-4"); err != nil {
		t.Fatal(err)
	}
	// Stray file at the jobs level must be ignored.
	if err := os.WriteFile(filepath.Join(st.Root(), "jobs", "stray.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a-1", "b-2", "c-3"}
	if len(ids) != len(want) {
		t.Fatalf("List = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("List = %v, want %v", ids, want)
		}
	}
}

func TestStoreRejectsBadIDs(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := st.Job(id); err == nil {
			t.Fatalf("Job(%q) accepted", id)
		}
	}
}

func TestStoreRemove(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRecord("gone", fakeRecord{ID: "gone"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("gone"); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("List after Remove = %v", ids)
	}
}
