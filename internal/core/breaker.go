package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// Default breaker tuning (Config fields override).
const (
	defaultBreakerWindow   = time.Second
	defaultBreakerCooldown = 5 * time.Second
)

// breaker is the session's low-rank circuit breaker. The Woodbury fast
// path falls back to a full restamp+factor whenever its stability guard
// trips; on a pathological macro (or under injected guard trips) every
// eligible solve can take the fallback, paying the fast path's setup
// cost on top of the slow path's solve cost. The breaker watches the
// session-scoped woodbury_fallbacks rate and, past the threshold, pins
// the session to the slow path for a cool-down: newFaultEval returns
// nil while the breaker is open, so evaluations route through the
// throwaway path. Results are bit-identical on both paths (the PR-6
// identity property), which is what makes tripping safe mid-run.
type breaker struct {
	s         *Session
	threshold uint64        // fallbacks per window that trip the breaker
	window    time.Duration // rate window
	cooldown  time.Duration // slow-path pin duration after a trip

	trips atomic.Uint64
	open  atomic.Bool

	mu        sync.Mutex
	winStart  time.Time
	winBase   uint64 // session fallback count at window start
	openUntil time.Time
}

// newBreaker builds the breaker from the session config, or nil when
// the config leaves it disarmed.
func newBreaker(s *Session) *breaker {
	if s.cfg.BreakerFallbacks <= 0 {
		return nil
	}
	b := &breaker{
		s:         s,
		threshold: uint64(s.cfg.BreakerFallbacks),
		window:    s.cfg.BreakerWindow,
		cooldown:  s.cfg.BreakerCooldown,
	}
	if b.window <= 0 {
		b.window = defaultBreakerWindow
	}
	if b.cooldown <= 0 {
		b.cooldown = defaultBreakerCooldown
	}
	return b
}

// allow reports whether the fast path may be used right now, advancing
// the breaker's window/trip state machine. fallbacks is the session-
// scoped woodbury_fallbacks total. Called once per retained-evaluator
// construction — a handful of times per fault — so a mutex is fine.
func (b *breaker) allow(now time.Time, fallbacks uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open.Load() {
		if now.Before(b.openUntil) {
			return false
		}
		// Cool-down over: close the breaker and start a fresh window.
		b.open.Store(false)
		b.winStart, b.winBase = now, fallbacks
		b.s.tr.Emit("breaker_reset", obs.I64("trips", int64(b.trips.Load())))
		return true
	}
	if b.winStart.IsZero() || now.Sub(b.winStart) > b.window {
		b.winStart, b.winBase = now, fallbacks
		return true
	}
	if fallbacks-b.winBase >= b.threshold {
		b.trips.Add(1)
		b.open.Store(true)
		b.openUntil = now.Add(b.cooldown)
		b.s.tr.Emit("breaker_trip",
			obs.I64("fallbacks_in_window", int64(fallbacks-b.winBase)),
			obs.I64("threshold", int64(b.threshold)),
			obs.I64("cooldown_ms", b.cooldown.Milliseconds()))
		return false
	}
	return true
}

// stats snapshots the breaker for engine metrics.
func (b *breaker) stats() engine.BreakerStats {
	return engine.BreakerStats{Trips: b.trips.Load(), Open: b.open.Load()}
}

// sessionFallbacks returns the session-scoped Woodbury fallback count
// (the process-wide total minus the session's construction-time base).
func (s *Session) sessionFallbacks() uint64 {
	return solverSnapshot().WoodburyFallbacks - s.solverBase.WoodburyFallbacks
}
