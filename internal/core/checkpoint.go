package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/obs"
)

// CheckpointVersion is the on-disk checkpoint schema version. Resume
// refuses checkpoints written by a different version.
const CheckpointVersion = 1

// SolutionRecord is the checkpoint serialization of one completed
// fault: exactly the fields coverage, compaction, and reporting consume,
// so a resumed run is bit-identical to an uninterrupted one. Candidates
// and the impact trace are deliberately not persisted — they are debug
// artifacts, and omitting them keeps checkpoints small.
type SolutionRecord struct {
	FaultID        string    `json:"fault_id"`
	ConfigIdx      int       `json:"config_idx"`
	Params         []float64 `json:"params,omitempty"`
	Sensitivity    float64   `json:"sensitivity"`
	CriticalImpact float64   `json:"critical_impact"`
	Undetectable   bool      `json:"undetectable,omitempty"`
	Undetermined   bool      `json:"undetermined,omitempty"`
	Quarantined    bool      `json:"quarantined,omitempty"`
	Evals          int       `json:"evals"`
	ImpactIters    int       `json:"impact_iters"`
	Attempts       int       `json:"attempts,omitempty"`
}

// Checkpoint is the versioned on-disk state of a GenerateAll run.
type Checkpoint struct {
	Version     int                       `json:"version"`
	Fingerprint string                    `json:"fingerprint"`
	Solutions   map[string]SolutionRecord `json:"solutions"`
}

// recordOf serializes a completed solution.
func recordOf(sol *Solution) SolutionRecord {
	return SolutionRecord{
		FaultID:        sol.Fault.ID(),
		ConfigIdx:      sol.ConfigIdx,
		Params:         sol.Params,
		Sensitivity:    sol.Sensitivity,
		CriticalImpact: sol.CriticalImpact,
		Undetectable:   sol.Undetectable,
		Undetermined:   sol.Undetermined,
		Quarantined:    sol.Quarantined,
		Evals:          sol.Evals,
		ImpactIters:    sol.ImpactIters,
		Attempts:       sol.Attempts,
	}
}

// solution rebuilds a Solution from its record (Resumed marks it as
// restored rather than computed; Candidates and Trace are absent).
func (r SolutionRecord) solution(f fault.Fault) *Solution {
	return &Solution{
		Fault:          f,
		ConfigIdx:      r.ConfigIdx,
		Params:         append([]float64(nil), r.Params...),
		Sensitivity:    r.Sensitivity,
		CriticalImpact: r.CriticalImpact,
		Undetectable:   r.Undetectable,
		Undetermined:   r.Undetermined,
		Quarantined:    r.Quarantined,
		Evals:          r.Evals,
		ImpactIters:    r.ImpactIters,
		Attempts:       r.Attempts,
		Resumed:        true,
	}
}

// fingerprint hashes everything a checkpoint's results depend on — the
// macro, the configurations, the box construction, the optimizer and
// impact-loop settings, the retry policy, and the fault list. Worker
// count is deliberately excluded: results are identical for any
// parallelism, so resuming on a different machine size is legal.
func (s *Session) fingerprint(faults []fault.Fault) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|macro=%s|box=%d/%d|opttol=%g|soft=%g|impact=[%g,%g]|mc=%d/%d|",
		CheckpointVersion, s.golden.Name(), s.cfg.BoxMode, s.cfg.BoxGridN,
		s.cfg.OptTol, s.cfg.SoftImpactFactor, s.cfg.MinImpact, s.cfg.MaxImpact,
		s.cfg.MCSamples, s.cfg.MCSeed)
	if p := s.cfg.Retry; p != nil {
		fmt.Fprintf(h, "retry=%d/%s/%g/%d|", p.MaxAttempts, p.AttemptTimeout, p.SeedPerturbation, len(p.ladder()))
	}
	for _, c := range s.configs {
		fmt.Fprintf(h, "cfg%d|", c.ID)
	}
	for _, f := range faults {
		h.Write([]byte(f.ID()))
		h.Write([]byte{'|'})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// ckptState is the live checkpoint of one GenerateAll run: the record
// map guarded by a mutex, and a debounced atomic writer.
type ckptState struct {
	s  *Session
	w  *ckpt.Writer
	mu sync.Mutex
	cp Checkpoint
}

// openCheckpoint prepares checkpointing for a run over the given faults.
// Returns (nil, nil, nil) when checkpointing is disabled. With Resume
// set and a compatible checkpoint on disk, the second return maps fault
// IDs to their restored solutions.
func (s *Session) openCheckpoint(faults []fault.Fault) (*ckptState, map[string]*Solution, error) {
	if s.cfg.CheckpointPath == "" {
		return nil, nil, nil
	}
	fp := s.fingerprint(faults)
	cs := &ckptState{
		s: s,
		w: ckpt.NewWriter(s.cfg.CheckpointPath, s.cfg.CheckpointEvery),
		cp: Checkpoint{
			Version:     CheckpointVersion,
			Fingerprint: fp,
			Solutions:   make(map[string]SolutionRecord),
		},
	}
	resumed := make(map[string]*Solution)
	if !s.cfg.Resume {
		return cs, resumed, nil
	}
	var prev Checkpoint
	err := ckpt.Load(s.cfg.CheckpointPath, &prev)
	switch {
	case errors.Is(err, os.ErrNotExist):
		// First run: nothing to resume.
		return cs, resumed, nil
	case err != nil:
		// Truncated or corrupt checkpoint — the torn-write residue of a
		// crash. That is exactly the situation checkpoints exist for, so
		// failing the job here would be self-defeating: log it and start
		// fresh. The next debounced write replaces the damaged file.
		s.tr.Emit("checkpoint_error",
			obs.String("error", err.Error()),
			obs.String("recovery", "corrupt checkpoint ignored; starting fresh"))
		return cs, resumed, nil
	case prev.Version != CheckpointVersion:
		return nil, nil, fmt.Errorf("core: resume: checkpoint version %d, want %d", prev.Version, CheckpointVersion)
	case prev.Fingerprint != fp:
		return nil, nil, fmt.Errorf("core: resume: checkpoint fingerprint %s does not match this run (%s): different macro, configurations, faults, or settings", prev.Fingerprint, fp)
	}
	byID := make(map[string]fault.Fault, len(faults))
	for _, f := range faults {
		byID[f.ID()] = f
	}
	for id, rec := range prev.Solutions {
		f, ok := byID[id]
		if !ok {
			continue
		}
		cs.cp.Solutions[id] = rec
		resumed[id] = rec.solution(f)
	}
	return cs, resumed, nil
}

// record adds a completed solution and persists the checkpoint if the
// debounce interval has passed. Write failures are reported as journal
// events, not errors: a failing disk should degrade checkpointing, not
// the run.
func (cs *ckptState) record(sol *Solution) {
	rec := recordOf(sol)
	cs.mu.Lock()
	cs.cp.Solutions[rec.FaultID] = rec
	cs.mu.Unlock()
	wrote, err := cs.w.MaybeSave(cs.snapshot)
	cs.observe(wrote, err)
}

// flush persists the checkpoint unconditionally (run end, cancellation).
func (cs *ckptState) flush() error {
	err := cs.w.Flush(cs.snapshot())
	cs.observe(err == nil, err)
	return err
}

func (cs *ckptState) observe(wrote bool, err error) {
	if err != nil {
		cs.s.tr.Emit("checkpoint_error", obs.String("error", err.Error()))
		return
	}
	if wrote {
		cs.s.prog.AddCheckpointWrites(1)
		cs.mu.Lock()
		n := len(cs.cp.Solutions)
		cs.mu.Unlock()
		cs.s.tr.Emit("checkpoint_write", obs.Int("solutions", n))
	}
}

// snapshot deep-copies the record map for the writer (records themselves
// are immutable once inserted).
func (cs *ckptState) snapshot() any {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cp := Checkpoint{
		Version:     cs.cp.Version,
		Fingerprint: cs.cp.Fingerprint,
		Solutions:   make(map[string]SolutionRecord, len(cs.cp.Solutions)),
	}
	for k, v := range cs.cp.Solutions {
		cp.Solutions[k] = v
	}
	return cp
}
