package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/obs"
)

// Test is a runnable test: a configuration plus concrete parameters.
type Test struct {
	ConfigIdx int
	Params    []float64
}

// CompactTest is one collapsed test of the compacted set: the parameter
// average of a group of fault-specific optimal tests, together with the
// fault IDs it covers.
type CompactTest struct {
	Test
	// Members lists the fault IDs whose optimal tests were collapsed
	// into this one.
	Members []string
}

// CompactOptions tunes the collapse algorithm.
type CompactOptions struct {
	// Delta is the paper's δ: the maximal allowed fractional shift of
	// S_f at the collapsed parameters towards the insensitivity level 1.
	// For every group member the screen
	//
	//	S_f(T_c) ≤ S_f(T_opt) + δ·(1 − S_f(T_opt))
	//
	// must hold.
	Delta float64
	// Radius is the grouping radius in normalized parameter space
	// (each axis scaled to [0, 1]); default 0.15.
	Radius float64
}

// DefaultCompactOptions returns δ = 0.1, radius = 0.15.
func DefaultCompactOptions() CompactOptions {
	return CompactOptions{Delta: 0.1, Radius: 0.15}
}

// Compact collapses the fault-specific optimal tests onto a much smaller
// test set. It is CompactContext with context.Background().
func (s *Session) Compact(sols []*Solution, o CompactOptions) ([]CompactTest, error) {
	return s.CompactContext(context.Background(), sols, o)
}

// CompactContext collapses the fault-specific optimal tests onto a much
// smaller test set (paper §4.1):
//
//  1. Per configuration, the optimal parameter vectors are grouped in
//     normalized parameter space (greedy nearest-centroid clustering
//     with the given radius).
//  2. Each group's candidate collapsed test is the average of its
//     members' parameters.
//  3. The collapse is screened with the δ acceptance rule, evaluating
//     S_f at the dictionary impact: members failing the screen are
//     evicted into their own groups, and the remainder is re-averaged
//     until the screen passes.
//
// Undetectable faults and unresolved (undetermined/quarantined) ones are
// skipped (no test covers them). Cancellation of ctx aborts the δ
// screening promptly with an error wrapping ErrCanceled.
func (s *Session) CompactContext(ctx context.Context, sols []*Solution, o CompactOptions) ([]CompactTest, error) {
	defer s.eng.Time(PhaseCompact)()
	if o.Delta < 0 || o.Delta >= 1 {
		return nil, fmt.Errorf("core: delta %g outside [0, 1)", o.Delta)
	}
	if o.Radius <= 0 {
		o.Radius = 0.15
	}

	var out []CompactTest
	ctx, sp := s.tr.Start(ctx, "compact",
		obs.Int("solutions", len(sols)), obs.F64("delta", o.Delta))
	defer func() { sp.End(obs.Int("tests", len(out))) }()
	for ci := range s.configs {
		var members []*Solution
		for _, sol := range sols {
			if sol.ConfigIdx == ci && !sol.Undetectable {
				members = append(members, sol)
			}
		}
		if len(members) == 0 {
			continue
		}
		groups := s.group(ci, members, o.Radius)
		for len(groups) > 0 {
			g := groups[0]
			groups = groups[1:]
			ct, rejected, err := s.screenGroup(ctx, ci, g, o.Delta)
			if err != nil {
				return nil, err
			}
			if ct != nil {
				out = append(out, *ct)
			}
			// Each rejected member becomes its own singleton group, which
			// always passes the screen (T_c = T_opt).
			for _, r := range rejected {
				groups = append(groups, []*Solution{r})
			}
		}
	}
	sortCompact(out)
	return out, nil
}

// group clusters solutions of one configuration by greedy
// nearest-centroid assignment in normalized parameter space.
func (s *Session) group(ci int, sols []*Solution, radius float64) [][]*Solution {
	b := s.configs[ci].Bounds()
	norm := func(T []float64) []float64 {
		n := make([]float64, len(T))
		for i := range T {
			span := b.Hi[i] - b.Lo[i]
			if span <= 0 {
				span = 1
			}
			n[i] = (T[i] - b.Lo[i]) / span
		}
		return n
	}
	var groups [][]*Solution
	var centers [][]float64
	for _, sol := range sols {
		p := norm(sol.Params)
		best, bestD := -1, math.Inf(1)
		for gi, c := range centers {
			d := 0.0
			for i := range p {
				d += (p[i] - c[i]) * (p[i] - c[i])
			}
			d = math.Sqrt(d)
			if d < bestD {
				best, bestD = gi, d
			}
		}
		if best >= 0 && bestD <= radius {
			groups[best] = append(groups[best], sol)
			// Update centroid incrementally.
			n := float64(len(groups[best]))
			for i := range centers[best] {
				centers[best][i] += (p[i] - centers[best][i]) / n
			}
			continue
		}
		groups = append(groups, []*Solution{sol})
		centers = append(centers, p)
	}
	return groups
}

// screenGroup averages a group and applies the δ screen at the
// dictionary impact. It returns the accepted collapsed test (possibly
// covering only part of the group) and the rejected members.
func (s *Session) screenGroup(ctx context.Context, ci int, g []*Solution, delta float64) (*CompactTest, []*Solution, error) {
	if len(g) == 0 {
		return nil, nil, nil
	}
	dim := len(g[0].Params)
	avg := make([]float64, dim)
	for _, sol := range g {
		for i := range avg {
			avg[i] += sol.Params[i] / float64(len(g))
		}
	}
	var accepted []*Solution
	var rejected []*Solution
	for _, sol := range g {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("%w: compaction screen: %w", ErrCanceled, err)
		}
		fd := sol.Fault.WithImpact(sol.Fault.InitialImpact())
		sc, err := s.Sensitivity(ci, fd, avg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: screen %s: %w", sol.Fault.ID(), err)
		}
		// Acceptance rule: S_f(T_c) ≤ S_f(T_opt) + δ(1 − S_f(T_opt)).
		limit := sol.Sensitivity + delta*(1-sol.Sensitivity)
		if sc <= limit {
			accepted = append(accepted, sol)
		} else {
			rejected = append(rejected, sol)
		}
	}
	if len(accepted) == 0 {
		// Averaging failed for everyone; split the group apart.
		if len(g) == 1 {
			// A singleton uses its own optimal parameters and passes by
			// construction (S_f(T_c) = S_f(T_opt)); reaching this branch
			// means the sensitivity is irreproducible — keep it anyway.
			sol := g[0]
			return &CompactTest{
				Test:    Test{ConfigIdx: ci, Params: append([]float64(nil), sol.Params...)},
				Members: []string{sol.Fault.ID()},
			}, nil, nil
		}
		return nil, g, nil
	}
	if len(rejected) > 0 && len(accepted) > 0 {
		// Re-average over the accepted members only.
		ct, moreRejected, err := s.screenGroup(ctx, ci, accepted, delta)
		if err != nil {
			return nil, nil, err
		}
		return ct, append(rejected, moreRejected...), nil
	}
	ids := make([]string, len(accepted))
	for i, sol := range accepted {
		ids[i] = sol.Fault.ID()
	}
	sort.Strings(ids)
	return &CompactTest{
		Test:    Test{ConfigIdx: ci, Params: avg},
		Members: ids,
	}, rejected, nil
}

func sortCompact(ts []CompactTest) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].ConfigIdx != ts[j].ConfigIdx {
			return ts[i].ConfigIdx < ts[j].ConfigIdx
		}
		return len(ts[i].Members) > len(ts[j].Members)
	})
}
