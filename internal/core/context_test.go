package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
)

func TestGenerateAllContextCanceledReturnsPromptly(t *testing.T) {
	s := dcSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := s.GenerateAllContext(ctx, fault.Dictionary(macros.IVConverter(), 10e3, 2e3))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("canceled generation still took %v", d)
	}
}

func TestCoverageContextCanceled(t *testing.T) {
	s := dcSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tests := []Test{{ConfigIdx: 0, Params: []float64{20e-6}}}
	_, err := s.CoverageContext(ctx, tests, fault.Dictionary(macros.IVConverter(), 10e3, 2e3))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestTPSContextCanceled(t *testing.T) {
	s := dcSession(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	if _, err := s.TPSContext(ctx, 0, f, 9, 0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestNewSessionContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	_, err := NewSessionContext(ctx, macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestNoConfigsSentinel(t *testing.T) {
	_, err := NewSession(macros.IVConverter(), nil, DefaultConfig())
	if !errors.Is(err, ErrNoConfigs) {
		t.Fatalf("err = %v, want ErrNoConfigs", err)
	}
}

// TestParallelDeterminism: the generated solutions must be bit-identical
// for any worker count — parallelism may only change scheduling, never
// results.
func TestParallelDeterminism(t *testing.T) {
	sessionWith := func(workers int) *Session {
		t.Helper()
		cfg := DefaultConfig()
		cfg.BoxMode = BoxSeed
		cfg.Workers = workers
		s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
		fault.NewPinhole("M6", 2e3),
		fault.NewPinhole("M2", 2e3),
	}
	serial, err := sessionWith(1).GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sessionWith(8).GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("solution counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.ConfigIdx != b.ConfigIdx {
			t.Errorf("%s: winning config %d vs %d", a.Fault.ID(), a.ConfigIdx, b.ConfigIdx)
		}
		if a.Sensitivity != b.Sensitivity {
			t.Errorf("%s: sensitivity %g vs %g", a.Fault.ID(), a.Sensitivity, b.Sensitivity)
		}
		if a.CriticalImpact != b.CriticalImpact {
			t.Errorf("%s: critical impact %g vs %g", a.Fault.ID(), a.CriticalImpact, b.CriticalImpact)
		}
		if len(a.Params) != len(b.Params) {
			t.Fatalf("%s: param dims differ", a.Fault.ID())
		}
		for d := range a.Params {
			if a.Params[d] != b.Params[d] {
				t.Errorf("%s: param %d: %g vs %g", a.Fault.ID(), d, a.Params[d], b.Params[d])
			}
		}
	}
}

// TestSessionMetricsPhases: a generation run must populate the optimize
// and impact-loop phases and show cache activity.
func TestSessionMetricsPhases(t *testing.T) {
	s := dcSession(t)
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	if _, err := s.Generate(f); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if p := m.Phase(PhaseBoxBuild); p.Count != 2 {
		t.Errorf("box-build units = %d, want 2 (one per config)", p.Count)
	}
	if p := m.Phase(PhaseOptimize); p.Count != 2 || p.Wall <= 0 {
		t.Errorf("optimize phase = %+v, want 2 timed units", p)
	}
	if p := m.Phase(PhaseImpact); p.Count != 1 {
		t.Errorf("impact-loop units = %d, want 1", p.Count)
	}
	if m.Cache.Misses == 0 {
		t.Error("no nominal-cache misses recorded after a generation")
	}
}
