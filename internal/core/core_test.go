package core

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
)

// dcSession returns a session over the two cheap DC configurations
// (#1 dc-out, #2 supply-current) with seed-calibrated boxes, which keeps
// unit tests fast while exercising the full algorithm.
func dcSession(t *testing.T) *Session {
	t.Helper()
	cfgs := testcfg.IVConfigs()[:2]
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfg.Workers = 4
	s, err := NewSession(macros.IVConverter(), cfgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidation(t *testing.T) {
	if _, err := NewSession(macros.IVConverter(), nil, DefaultConfig()); err == nil {
		t.Error("empty config list accepted")
	}
}

func TestSensitivityWeakFaultNearOne(t *testing.T) {
	s := dcSession(t)
	// A 1 GΩ bridge is electrically invisible: S_f ≈ 1.
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 1e9)
	sf, err := s.Sensitivity(0, f, []float64{20e-6})
	if err != nil {
		t.Fatal(err)
	}
	if sf < 0.9 || sf > 1.0001 {
		t.Errorf("S_f(invisible fault) = %g, want ≈ 1", sf)
	}
}

func TestSensitivityStrongFaultNegative(t *testing.T) {
	s := dcSession(t)
	// Shorting the feedback with 10 kΩ halves the transimpedance: a huge
	// signature on the DC output.
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	sf, err := s.Sensitivity(0, f, []float64{20e-6})
	if err != nil {
		t.Fatal(err)
	}
	if sf >= 0 {
		t.Errorf("S_f(feedback bridge) = %g, want < 0 (detected)", sf)
	}
}

func TestSensitivityMonotoneInImpact(t *testing.T) {
	s := dcSession(t)
	T := []float64{20e-6}
	prev := math.Inf(-1)
	// Weakening the bridge (raising R) must not make it easier to detect.
	for _, r := range []float64{5e3, 20e3, 100e3, 1e6, 1e9} {
		f := fault.NewBridge(macros.NodeIin, macros.NodeVout, r)
		sf, err := s.Sensitivity(0, f, T)
		if err != nil {
			t.Fatal(err)
		}
		if sf < prev-1e-9 {
			t.Errorf("S_f not monotone: R=%g gives %g < previous %g", r, sf, prev)
		}
		prev = sf
	}
}

func TestDetects(t *testing.T) {
	s := dcSession(t)
	strong := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	weak := fault.NewBridge(macros.NodeIin, macros.NodeVout, 1e9)
	if d, err := s.Detects(0, strong, []float64{20e-6}); err != nil || !d {
		t.Errorf("strong fault not detected (err=%v)", err)
	}
	if d, err := s.Detects(0, weak, []float64{20e-6}); err != nil || d {
		t.Errorf("invisible fault detected (err=%v)", err)
	}
}

func TestNominalCacheHits(t *testing.T) {
	s := dcSession(t)
	T := []float64{10e-6}
	r1, err := s.Nominal(0, T)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Nominal(0, T)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &r2[0] {
		t.Error("second Nominal call did not hit the cache")
	}
	if n := s.eng.Cache().Len(); n != 1 {
		t.Errorf("cache size = %d, want 1", n)
	}
}

func TestTPS1D(t *testing.T) {
	s := dcSession(t)
	f := fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3)
	g, err := s.TPS(0, f, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Axis1) != 9 || len(g.Axis2) != 0 || len(g.S) != 1 || len(g.S[0]) != 9 {
		t.Fatalf("tps shape wrong: %d × %d", len(g.S), len(g.S[0]))
	}
	if g.FaultID != f.ID() || g.ConfigID != 1 {
		t.Error("tps metadata wrong")
	}
	mp := g.MinParams()
	if len(mp) != 1 || mp[0] < 0 || mp[0] > 100e-6 {
		t.Errorf("MinParams = %v outside bounds", mp)
	}
}

func TestTPSDetectableFraction(t *testing.T) {
	s := dcSession(t)
	// Supply short: detected practically everywhere on config #2.
	f := fault.NewBridge("0", macros.NodeVdd, 10e3)
	g, err := s.TPS(1, f, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if frac := g.DetectableFraction(); frac < 0.9 {
		t.Errorf("Vdd-gnd bridge detectable fraction = %g, want ≈ 1", frac)
	}
}

func TestGenerateSingleFault(t *testing.T) {
	s := dcSession(t)
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	sol, err := s.Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Undetectable {
		t.Fatal("feedback bridge flagged undetectable")
	}
	if sol.Sensitivity >= 0 {
		t.Errorf("winning test does not detect at dictionary impact: S=%g", sol.Sensitivity)
	}
	if len(sol.Candidates) != 2 {
		t.Errorf("candidate count = %d, want one per config", len(sol.Candidates))
	}
	if sol.CriticalImpact <= 0 {
		t.Errorf("critical impact = %g", sol.CriticalImpact)
	}
	if sol.Evals == 0 || sol.ImpactIters == 0 {
		t.Error("bookkeeping counters empty")
	}
	box := s.configs[sol.ConfigIdx].Bounds()
	if !box.Contains(sol.Params) {
		t.Errorf("winning params %v outside bounds", sol.Params)
	}
}

func TestGenerateVddBridgePrefersSupplyCurrent(t *testing.T) {
	// A resistive short across the supply barely moves the DC output but
	// adds 0.5 mA of supply current: configuration #2 must win.
	s := dcSession(t)
	f := fault.NewBridge("0", macros.NodeVdd, 10e3)
	sol, err := s.Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.ConfigID(s); got != 2 {
		t.Errorf("winning config = #%d, want #2 (supply current)", got)
	}
	// Only one configuration detects this fault at the dictionary impact,
	// so the impact loop may terminate without relaxing.
	if sol.CriticalImpact < f.InitialImpact() {
		t.Errorf("critical impact %g below dictionary %g for an easy fault",
			sol.CriticalImpact, f.InitialImpact())
	}
}

func TestGenerateAllAndTabulate(t *testing.T) {
	s := dcSession(t)
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge("0", macros.NodeVdd, 10e3),
		fault.NewPinhole("M6", 2e3),
	}
	sols, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("solution count = %d", len(sols))
	}
	for i, sol := range sols {
		if sol.Fault.ID() != faults[i].ID() {
			t.Error("solution order does not match input order")
		}
	}
	d := s.Tabulate(sols)
	total := 0
	for _, id := range d.ConfigIDs() {
		for _, n := range d.Counts[id] {
			total += n
		}
	}
	for _, n := range d.Undetectable {
		total += n
	}
	if total != 3 {
		t.Errorf("tabulated faults = %d, want 3", total)
	}
}

func TestCompactReducesTestCount(t *testing.T) {
	s := dcSession(t)
	// Several faults whose optimal DC tests cluster: compaction must
	// produce fewer tests than faults while preserving coverage.
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
		fault.NewBridge(macros.NodeOut1, macros.NodeVmid, 10e3),
		fault.NewBridge("0", macros.NodeVdd, 10e3),
		fault.NewPinhole("M6", 2e3),
	}
	sols, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	cts, err := s.Compact(sols, DefaultCompactOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) == 0 {
		t.Fatal("compaction produced no tests")
	}
	if len(cts) > len(sols) {
		t.Errorf("compacted set (%d) larger than input (%d)", len(cts), len(sols))
	}
	// Every detectable fault appears in exactly one collapsed test.
	seen := make(map[string]int)
	for _, ct := range cts {
		for _, id := range ct.Members {
			seen[id]++
		}
	}
	for _, sol := range sols {
		if sol.Undetectable {
			continue
		}
		if seen[sol.Fault.ID()] != 1 {
			t.Errorf("fault %s appears %d times in the compacted set", sol.Fault.ID(), seen[sol.Fault.ID()])
		}
	}
	// Coverage of the compacted set must still be full for these faults.
	rep, err := s.Coverage(TestsOfCompact(cts), faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Percent() < 100 {
		t.Errorf("compacted coverage = %.1f %%, undetected: %v", rep.Percent(), rep.Undetected)
	}
}

func TestCompactDeltaValidation(t *testing.T) {
	s := dcSession(t)
	if _, err := s.Compact(nil, CompactOptions{Delta: 1.5}); err == nil {
		t.Error("delta > 1 accepted")
	}
	if _, err := s.Compact(nil, CompactOptions{Delta: -0.1}); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestCoverageReport(t *testing.T) {
	s := dcSession(t)
	tests := []Test{{ConfigIdx: 0, Params: []float64{20e-6}}}
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3), // detected
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 1e9),  // invisible
	}
	rep, err := s.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != 2 || rep.Detected != 1 {
		t.Errorf("coverage = %d/%d, want 1/2", rep.Detected, rep.Total)
	}
	if math.Abs(rep.Percent()-50) > 1e-9 {
		t.Errorf("percent = %g, want 50", rep.Percent())
	}
	if len(rep.Undetected) != 1 {
		t.Errorf("undetected = %v", rep.Undetected)
	}
	if rep.Sims == 0 {
		t.Error("simulation counter empty")
	}
}

func TestTestsOfDedup(t *testing.T) {
	f1 := fault.NewBridge("a", "b", 1e3)
	f2 := fault.NewBridge("c", "d", 1e3)
	sols := []*Solution{
		{Fault: f1, ConfigIdx: 0, Params: []float64{1e-6}},
		{Fault: f2, ConfigIdx: 0, Params: []float64{1e-6}},
		{Fault: f2, ConfigIdx: 1, Params: []float64{1e-6}},
		{Fault: f2, ConfigIdx: 1, Params: []float64{2e-6}, Undetectable: true},
	}
	ts := TestsOf(sols)
	if len(ts) != 2 {
		t.Errorf("deduplicated tests = %d, want 2", len(ts))
	}
}

func TestDistributionConfigIDs(t *testing.T) {
	d := Distribution{Counts: map[int]map[fault.Kind]int{3: {}, 1: {}, 2: {}}}
	ids := d.ConfigIDs()
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Errorf("ConfigIDs = %v, want sorted", ids)
	}
}
