package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// CoverageReport summarizes fault simulation of a test set against a
// fault dictionary.
type CoverageReport struct {
	Total      int
	Detected   int
	Undetected []string // fault IDs missed by every test
	// DetectedBy maps fault IDs to the index (into the evaluated test
	// set) of the first test that detects them.
	DetectedBy map[string]int
	// Sims counts the simulations spent on the evaluation.
	Sims int
}

// Percent returns the fault coverage in percent.
func (r CoverageReport) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// Coverage fault-simulates the test set against the dictionary: a fault
// counts as detected when at least one test's sensitivity at the fault's
// dictionary impact is negative. Tests are tried in order, so placing
// high-yield tests first minimizes simulation count. Faults are
// evaluated concurrently up to the session's worker limit.
func (s *Session) Coverage(tests []Test, faults []fault.Fault) (CoverageReport, error) {
	rep := CoverageReport{Total: len(faults), DetectedBy: make(map[string]int)}
	type result struct {
		detectedBy int // -1: undetected
		err        error
	}
	results := make([]result, len(faults))
	var sims atomic.Int64
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for fi, f := range faults {
		wg.Add(1)
		go func(fi int, f fault.Fault) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fd := f.WithImpact(f.InitialImpact())
			results[fi].detectedBy = -1
			for ti, t := range tests {
				sims.Add(1)
				sf, err := s.Sensitivity(t.ConfigIdx, fd, t.Params)
				if err != nil {
					results[fi].err = fmt.Errorf("core: coverage of %s: %w", f.ID(), err)
					return
				}
				if sf < 0 {
					results[fi].detectedBy = ti
					return
				}
			}
		}(fi, f)
	}
	wg.Wait()
	rep.Sims = int(sims.Load())
	for fi, r := range results {
		if r.err != nil {
			return rep, r.err
		}
		if r.detectedBy >= 0 {
			rep.Detected++
			rep.DetectedBy[faults[fi].ID()] = r.detectedBy
		} else {
			rep.Undetected = append(rep.Undetected, faults[fi].ID())
		}
	}
	sort.Strings(rep.Undetected)
	return rep, nil
}

// TestsOf converts generation solutions (one test per fault) into a flat
// test list, deduplicated per (config, params) within a small tolerance.
func TestsOf(sols []*Solution) []Test {
	var out []Test
	for _, sol := range sols {
		if sol.Undetectable {
			continue
		}
		t := Test{ConfigIdx: sol.ConfigIdx, Params: append([]float64(nil), sol.Params...)}
		dup := false
		for _, u := range out {
			if u.ConfigIdx == t.ConfigIdx && sameParams(u.Params, t.Params, 1e-12) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}

// TestsOfCompact flattens a compacted set into runnable tests.
func TestsOfCompact(cts []CompactTest) []Test {
	out := make([]Test, len(cts))
	for i, ct := range cts {
		out[i] = Test{ConfigIdx: ct.ConfigIdx, Params: append([]float64(nil), ct.Params...)}
	}
	return out
}

func sameParams(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
