package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
)

// CoverageReport summarizes fault simulation of a test set against a
// fault dictionary.
type CoverageReport struct {
	Total      int
	Detected   int
	Undetected []string // fault IDs missed by every test
	// DetectedBy maps fault IDs to the index (into the evaluated test
	// set) of the first test that detects them.
	DetectedBy map[string]int
	// Sims counts the simulations spent on the evaluation.
	Sims int
}

// Percent returns the fault coverage in percent.
func (r CoverageReport) Percent() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// Coverage fault-simulates a test set against the dictionary. It is
// CoverageContext with context.Background().
func (s *Session) Coverage(tests []Test, faults []fault.Fault) (CoverageReport, error) {
	return s.CoverageContext(context.Background(), tests, faults)
}

// CoverageContext fault-simulates the test set against the dictionary: a
// fault counts as detected when at least one test's sensitivity at the
// fault's dictionary impact is negative. Tests are tried in order, so
// placing high-yield tests first minimizes simulation count. Faults are
// evaluated on the engine's work-stealing pool; cancellation of ctx
// aborts the run promptly with an error wrapping ErrCanceled.
func (s *Session) CoverageContext(ctx context.Context, tests []Test, faults []fault.Fault) (CoverageReport, error) {
	rep := CoverageReport{Total: len(faults), DetectedBy: make(map[string]int)}
	ctx, sp := s.tr.Start(ctx, "coverage",
		obs.Int("tests", len(tests)), obs.Int("faults", len(faults)))
	defer func() { sp.End(obs.Int("detected", rep.Detected), obs.Int("sims", rep.Sims)) }()
	s.prog.SetPhase(PhaseFaultSim, len(faults))
	detectedBy := make([]int, len(faults)) // -1: undetected
	var sims atomic.Int64
	err := s.eng.ForEach(ctx, len(faults), func(ctx context.Context, fi int) error {
		defer s.eng.Time(PhaseFaultSim)()
		defer s.prog.Step(1)
		f := faults[fi]
		fd := f.WithImpact(f.InitialImpact())
		detectedBy[fi] = -1
		// Retained evaluators per configuration, built lazily: a test set
		// typically evaluates several tests of the same configuration
		// against one fault, and each after the first reuses the compiled
		// faulty circuit and its engine.
		var fes map[int]*faultEval
		for ti, t := range tests {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w: coverage of %s: %w", ErrCanceled, f.ID(), err)
			}
			sims.Add(1)
			fe, ok := fes[t.ConfigIdx]
			if !ok {
				fe = s.newFaultEval(fd, t.ConfigIdx)
				if fes == nil {
					fes = make(map[int]*faultEval)
				}
				fes[t.ConfigIdx] = fe
			}
			sf, err := s.evalSensitivity(fe, t.ConfigIdx, fd, t.Params)
			if err != nil {
				return fmt.Errorf("core: coverage of %s: %w", f.ID(), err)
			}
			if sf < 0 {
				detectedBy[fi] = ti
				s.tr.Event(ctx, "coverage_verdict",
					obs.String("fault", f.ID()), obs.Int("detected_by", ti))
				return nil
			}
		}
		s.tr.Event(ctx, "coverage_verdict",
			obs.String("fault", f.ID()), obs.Int("detected_by", -1))
		return nil
	})
	rep.Sims = int(sims.Load())
	if err != nil {
		return rep, err
	}
	for fi, ti := range detectedBy {
		if ti >= 0 {
			rep.Detected++
			rep.DetectedBy[faults[fi].ID()] = ti
		} else {
			rep.Undetected = append(rep.Undetected, faults[fi].ID())
		}
	}
	sort.Strings(rep.Undetected)
	return rep, nil
}

// TestsOf converts generation solutions (one test per fault) into a flat
// test list, deduplicated per (config, params) within a small tolerance.
// Undetectable faults and unresolved ones (undetermined/quarantined, no
// usable test) contribute nothing.
func TestsOf(sols []*Solution) []Test {
	var out []Test
	for _, sol := range sols {
		if sol.Undetectable || sol.ConfigIdx < 0 || sol.Params == nil {
			continue
		}
		t := Test{ConfigIdx: sol.ConfigIdx, Params: append([]float64(nil), sol.Params...)}
		dup := false
		for _, u := range out {
			if u.ConfigIdx == t.ConfigIdx && sameParams(u.Params, t.Params, 1e-12) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	return out
}

// TestsOfCompact flattens a compacted set into runnable tests.
func TestsOfCompact(cts []CompactTest) []Test {
	out := make([]Test, len(cts))
	for i, ct := range cts {
		out[i] = Test{ConfigIdx: ct.ConfigIdx, Params: append([]float64(nil), ct.Params...)}
	}
	return out
}

func sameParams(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}
