package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Fault diagnosis: the natural follow-up to structural test generation
// (and listed as the motivation for fault dictionaries in the IFA
// literature the paper builds on). Each dictionary fault's predicted
// responses under a test set form its signature; a failing device's
// measured responses are matched against the signature database to rank
// candidate defects.

// Signature is the predicted response of one fault under a test set.
type Signature struct {
	FaultID string
	// Responses[t] holds the return values of test t; nil marks a test
	// the faulty circuit could not complete (catastrophic — itself a
	// strong signature).
	Responses [][]float64
}

// Signatures simulates every fault (at dictionary impact) under every
// test and returns the signature database, plus the fault-free baseline
// in the first return value.
func (s *Session) Signatures(tests []Test, faults []fault.Fault) (baseline [][]float64, sigs []Signature, err error) {
	_, sp := s.tr.Start(context.Background(), "signatures",
		obs.Int("tests", len(tests)), obs.Int("faults", len(faults)))
	defer sp.End()
	baseline = make([][]float64, len(tests))
	for ti, t := range tests {
		r, err := s.Nominal(t.ConfigIdx, t.Params)
		if err != nil {
			return nil, nil, fmt.Errorf("core: baseline for test %d: %w", ti, err)
		}
		baseline[ti] = r
	}
	for _, f := range faults {
		fd := f.WithImpact(f.InitialImpact())
		sig := Signature{FaultID: f.ID(), Responses: make([][]float64, len(tests))}
		faulty, err := fd.Insert(s.golden)
		if err != nil {
			return nil, nil, err
		}
		for ti, t := range tests {
			r, err := s.configs[t.ConfigIdx].Run(faulty, t.Params)
			if err != nil {
				sig.Responses[ti] = nil // catastrophic marker
				continue
			}
			sig.Responses[ti] = r
		}
		sigs = append(sigs, sig)
	}
	return baseline, sigs, nil
}

// Diagnosis is one ranked candidate fault.
type Diagnosis struct {
	FaultID string
	// Distance is the box-normalized RMS distance between the candidate
	// signature and the observation; smaller is a better match.
	Distance float64
}

// Diagnose ranks the signature database against observed responses.
// observed[t] holds the measured return values of test t; a nil entry
// means the test could not be completed on the device under test and
// matches catastrophic signatures. Distances are normalized per return
// value by the tolerance-box halfwidth, so heterogeneous units compose.
func (s *Session) Diagnose(tests []Test, sigs []Signature, observed [][]float64) ([]Diagnosis, error) {
	_, sp := s.tr.Start(context.Background(), "diagnose",
		obs.Int("tests", len(tests)), obs.Int("signatures", len(sigs)))
	defer sp.End()
	if len(observed) != len(tests) {
		return nil, fmt.Errorf("core: %d observations for %d tests", len(observed), len(tests))
	}
	// The distance for a (nil, non-nil) pair must exceed any plausible
	// numeric distance without destroying the ordering among other
	// candidates.
	const catastrophicMismatch = 1e6
	out := make([]Diagnosis, 0, len(sigs))
	for _, sig := range sigs {
		if len(sig.Responses) != len(tests) {
			return nil, fmt.Errorf("core: signature %s covers %d tests, want %d",
				sig.FaultID, len(sig.Responses), len(tests))
		}
		sum, n := 0.0, 0
		for ti, t := range tests {
			pred := sig.Responses[ti]
			obs := observed[ti]
			switch {
			case pred == nil && obs == nil:
				// Both catastrophic: perfect agreement on this test.
				n++
			case pred == nil || obs == nil:
				sum += catastrophicMismatch * catastrophicMismatch
				n++
			default:
				box := s.boxes[t.ConfigIdx].Halfwidths(t.Params)
				for i := range pred {
					hw := 1e-12
					if i < len(box) && box[i] > hw {
						hw = box[i]
					}
					d := (pred[i] - obs[i]) / hw
					sum += d * d
					n++
				}
			}
		}
		if n == 0 {
			continue
		}
		out = append(out, Diagnosis{FaultID: sig.FaultID, Distance: math.Sqrt(sum / float64(n))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].FaultID < out[j].FaultID
	})
	return out, nil
}

// ObserveFault simulates the responses a tester would record on a device
// carrying the given fault (at its current impact), in the shape
// Diagnose expects — the test-bench side of a diagnosis experiment.
func (s *Session) ObserveFault(tests []Test, f fault.Fault) ([][]float64, error) {
	faulty, err := f.Insert(s.golden)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(tests))
	for ti, t := range tests {
		r, err := s.configs[t.ConfigIdx].Run(faulty, t.Params)
		if err != nil {
			out[ti] = nil
			continue
		}
		out[ti] = r
	}
	return out, nil
}
