package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
)

func diagSetup(t *testing.T) (*Session, []Test, []fault.Fault) {
	t.Helper()
	s := dcSession(t)
	tests := []Test{
		{ConfigIdx: 0, Params: []float64{20e-6}},
		{ConfigIdx: 0, Params: []float64{60e-6}},
		{ConfigIdx: 1, Params: []float64{20e-6}},
		{ConfigIdx: 1, Params: []float64{80e-6}},
	}
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge("0", macros.NodeVdd, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
		fault.NewPinhole("M6", 2e3),
	}
	return s, tests, faults
}

func TestSignaturesShape(t *testing.T) {
	s, tests, faults := diagSetup(t)
	baseline, sigs, err := s.Signatures(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != len(tests) {
		t.Fatalf("baseline covers %d tests", len(baseline))
	}
	if len(sigs) != len(faults) {
		t.Fatalf("signature count = %d", len(sigs))
	}
	for _, sig := range sigs {
		if len(sig.Responses) != len(tests) {
			t.Errorf("%s: %d responses", sig.FaultID, len(sig.Responses))
		}
	}
}

func TestDiagnoseRanksTrueFaultFirst(t *testing.T) {
	s, tests, faults := diagSetup(t)
	_, sigs, err := s.Signatures(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, truth := range faults {
		obs, err := s.ObserveFault(tests, truth.WithImpact(truth.InitialImpact()))
		if err != nil {
			t.Fatal(err)
		}
		diag, err := s.Diagnose(tests, sigs, obs)
		if err != nil {
			t.Fatal(err)
		}
		if len(diag) != len(faults) {
			t.Fatalf("diagnosis count = %d", len(diag))
		}
		if diag[0].FaultID != truth.ID() {
			t.Errorf("true fault %s ranked behind %s (d=%g)", truth.ID(), diag[0].FaultID, diag[0].Distance)
		}
		if diag[0].Distance > 1e-6 {
			t.Errorf("self-match distance = %g, want ~0", diag[0].Distance)
		}
	}
}

func TestDiagnoseRobustToImpactShift(t *testing.T) {
	// A real defect rarely sits exactly at the dictionary impact: observe
	// the fault at 2× weaker impact and expect the true candidate still
	// in the top 2.
	s, tests, faults := diagSetup(t)
	_, sigs, err := s.Signatures(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	truth := faults[0]
	obs, err := s.ObserveFault(tests, fault.Weaken(truth, 2))
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.Diagnose(tests, sigs, obs)
	if err != nil {
		t.Fatal(err)
	}
	if diag[0].FaultID != truth.ID() && diag[1].FaultID != truth.ID() {
		t.Errorf("off-impact fault fell to rank > 2: %v", diag[:2])
	}
}

func TestDiagnoseValidation(t *testing.T) {
	s, tests, faults := diagSetup(t)
	_, sigs, err := s.Signatures(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Diagnose(tests, sigs, make([][]float64, 1)); err == nil {
		t.Error("observation arity mismatch accepted")
	}
	bad := []Signature{{FaultID: "x", Responses: make([][]float64, 1)}}
	if _, err := s.Diagnose(tests, bad, make([][]float64, len(tests))); err == nil {
		t.Error("signature arity mismatch accepted")
	}
}

func TestDiagnoseCatastrophicMatching(t *testing.T) {
	s, tests, _ := diagSetup(t)
	sigs := []Signature{
		{FaultID: "cat", Responses: [][]float64{nil, nil, nil, nil}},
		{FaultID: "mild", Responses: [][]float64{{1.5}, {0.5}, {2e-4}, {2e-4}}},
	}
	// Device dies on every test: the catastrophic candidate must win.
	obs := [][]float64{nil, nil, nil, nil}
	diag, err := s.Diagnose(tests, sigs, obs)
	if err != nil {
		t.Fatal(err)
	}
	if diag[0].FaultID != "cat" || diag[0].Distance != 0 {
		t.Errorf("catastrophic match failed: %v", diag)
	}
}
