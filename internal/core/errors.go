package core

import (
	"errors"

	"repro/internal/engine"
)

// Sentinel errors of the generation core. The public facade re-exports
// them (repro.ErrCanceled, repro.ErrNoConfigs) so callers can use
// errors.Is instead of matching message strings.
var (
	// ErrCanceled is wrapped into every error returned because a
	// context was canceled or its deadline expired mid-evaluation.
	ErrCanceled = engine.ErrCanceled
	// ErrNoConfigs is returned by NewSession when no test
	// configurations are supplied.
	ErrNoConfigs = errors.New("core: no test configurations")
)

// Phase names used for engine observability. Session.Metrics reports
// wall time and unit counts under these keys.
const (
	// PhaseBoxBuild covers tolerance-box construction (corner or Monte
	// Carlo simulations), one unit per configuration.
	PhaseBoxBuild = "box-build"
	// PhaseOptimize covers per-(fault, configuration) test-parameter
	// optimization, one unit per candidate.
	PhaseOptimize = "optimize"
	// PhaseImpact covers the impact relax/intensify selection loop, one
	// unit per fault.
	PhaseImpact = "impact-loop"
	// PhaseGenerate is the progress label of the fused GenerateAll
	// schedule: optimization tasks plus the per-fault selection runs that
	// piggyback on each fault's last completed configuration. Engine
	// timings still split into PhaseOptimize and PhaseImpact.
	PhaseGenerate = "generate"
	// PhaseFaultSim covers fault simulation of a test set (coverage),
	// one unit per fault.
	PhaseFaultSim = "fault-sim"
	// PhaseSchedule covers the detection matrix behind ATE scheduling,
	// one unit per (test, fault) pair.
	PhaseSchedule = "schedule"
	// PhaseTPS covers tps-graph grid sweeps, one unit per grid cell.
	PhaseTPS = "tps-sweep"
	// PhaseCompact covers test-set compaction (δ screening), one unit
	// per Compact call.
	PhaseCompact = "compact"
	// PhaseFaultE2E covers one fault's end-to-end generation time: from
	// the start of its first configuration's optimization to the end of
	// its selection loop, one unit per fault. Unlike PhaseOptimize and
	// PhaseImpact (which partition the same work by step), this phase
	// measures the per-fault latency a user waits on, so its histogram is
	// the "which faults are slow" distribution.
	PhaseFaultE2E = "fault-e2e"
)
