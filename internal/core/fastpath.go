package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/testcfg"
)

// The impact-search fast path. Session.Sensitivity rebuilds the faulty
// world on every call: insert the fault into the golden netlist, clone,
// compile, allocate an engine, solve. The impact loop calls it dozens of
// times per fault varying only the fault resistance, and the optimizer
// hundreds of times varying only the stimulus parameters — both are
// rank-1 perturbations of a fixed structure.
//
// A faultEval amortizes the structure: the fault is inserted and the
// configuration's evaluator prepared once per (fault, configuration)
// pair, the fault's branch indices are resolved once (fault.LowRankFault
// .Perturbation) and registered with the engine, and each evaluation
// only retargets the fault resistor. On linear macros the solve then
// goes through the Sherman–Morrison–Woodbury update against a retained
// factorization (sim.EnableLowRank); on nonlinear macros the retained
// engine restamps from its invalidated snapshots, which the kernel
// guarantees bit-identical to a fresh engine.
//
// Eligibility is conservative: the session must not disable the path,
// the fault must expose its low-rank structure, and the configuration
// must support retained evaluation. Any construction failure silently
// yields the throwaway path — the fast path is an optimization, never a
// semantic fork.

// ladderMargin is the decision margin of the warm-start impact ladder: a
// warm (approximate) sensitivity within this distance of a decision
// boundary — the S_f < 0 detection threshold, or the gap to the
// most-sensitive candidate — is recomputed exactly before any decision
// consumes it. Warm and exact evaluations differ by the Newton
// convergence tolerance (~1e-6 relative), orders of magnitude below this
// margin, so decisions match the exact path while typical ladder steps
// run warm.
const ladderMargin = 0.1

// deepDetectSF is the floor below which warm values are always
// recomputed exactly: far in the detection zone the tolerance boxes can
// be degenerate (hw floored at 1e-12), which amplifies seed-dependent
// solver noise enough that the margin argument no longer applies.
const deepDetectSF = -100

// faultEval is a retained evaluator for one (fault, configuration)
// pair. Like the engine it wraps, it belongs to a single goroutine.
type faultEval struct {
	s     *Session
	f     fault.Fault
	ci    int
	ev    *testcfg.Evaluator
	dev   string // fault resistor name, resolved once per fault
	evals int
}

// newFaultEval builds the retained evaluator for (f, ci), or nil when
// the pair is ineligible or construction fails; the caller then uses the
// throwaway path, so a nil return is never an error.
func (s *Session) newFaultEval(f fault.Fault, ci int) *faultEval {
	if s.cfg.DisableFastPath {
		return nil
	}
	// Circuit breaker: when guard-trip fallbacks are storming, pin the
	// session to the throwaway path for the cool-down. Both paths are
	// bit-identical (the transparency property above), so the gate can
	// flip between evaluator constructions without changing results.
	if s.brk != nil && !s.brk.allow(time.Now(), s.sessionFallbacks()) {
		return nil
	}
	lrf, ok := f.(fault.LowRankFault)
	if !ok {
		return nil
	}
	c := s.configs[ci]
	if !c.CanPrepare() {
		return nil
	}
	fc, err := lrf.Insert(s.golden)
	if err != nil {
		return nil
	}
	ev, err := c.Prepare(fc)
	if err != nil {
		return nil
	}
	dev := lrf.ImpactDevice()
	rows, cols, vals, err := lrf.Perturbation(ev.Engine().Circuit())
	if err != nil {
		return nil
	}
	if err := ev.Engine().EnableLowRank(sim.Perturb{Device: dev, RowA: rows, RowB: cols, Vals: vals}); err != nil {
		return nil
	}
	return &faultEval{s: s, f: f, ci: ci, ev: ev, dev: dev}
}

// eval runs one faulty evaluation at the given impact on the retained
// engine and folds it into S_f with exactly Session.Sensitivity's
// arithmetic (same statements, same order). warm selects the warm-start
// recipe; runErr distinguishes "the faulty circuit did not converge"
// (reported via the sentinel by exact callers) from infrastructure
// errors.
func (fe *faultEval) eval(impact float64, T []float64, warm bool) (sf float64, runErr error, err error) {
	s := fe.s
	nom, err := s.Nominal(fe.ci, T)
	if err != nil {
		return 0, nil, fmt.Errorf("core: nominal for config #%d at %v: %w", s.configs[fe.ci].ID, T, err)
	}
	if err := fe.ev.Retarget(fe.dev, impact); err != nil {
		return 0, nil, err
	}
	if fe.evals > 0 {
		// Every evaluation after the first skipped a full
		// insert+clone+compile+factor cycle.
		sim.AddFaultyFactorAvoided(1)
	}
	fe.evals++
	s.faultyRuns.Add(1)
	var rf []float64
	if warm {
		rf, runErr = fe.ev.RunWarm(T)
	} else {
		rf, runErr = fe.ev.Run(T)
	}
	if runErr != nil {
		return 0, runErr, nil
	}
	box := s.boxes[fe.ci].Halfwidths(T)
	sf = math.Inf(1)
	for i := range nom {
		hw := box[i]
		if hw <= 0 {
			hw = 1e-12
		}
		v := 1 - math.Abs(rf[i]-nom[i])/hw
		if v < sf {
			sf = v
		}
	}
	return sf, nil, nil
}

// sensitivity is the exact fast-path evaluation: bit-identical to
// Session.Sensitivity(ci, f.WithImpact(impact), T), including the
// DetectedSentinel semantics for non-convergent faulty circuits. With
// Config.CrossCheck set it also runs the throwaway path and errors on
// disagreement beyond 1e-9.
func (fe *faultEval) sensitivity(impact float64, T []float64) (float64, error) {
	// Breaker pulse: guard-trip fallbacks accrue during the evaluation
	// loop, long after the evaluator was constructed, so the gate in
	// newFaultEval alone could never observe a storm. Re-checking per
	// evaluation lets the breaker trip mid-candidate and route the rest
	// of the loop through the throwaway path — invisible in results,
	// since the two paths are bit-identical.
	if s := fe.s; s.brk != nil && !s.brk.allow(time.Now(), s.sessionFallbacks()) {
		return s.Sensitivity(fe.ci, fe.f.WithImpact(impact), T)
	}
	sf, runErr, err := fe.eval(impact, T, false)
	if err != nil {
		return 0, err
	}
	if runErr != nil {
		// Catastrophically broken circuit: counts as detected.
		fe.s.faultyFails.Add(1)
		sf = DetectedSentinel
	}
	if fe.s.cfg.CrossCheck {
		slow, err := fe.s.Sensitivity(fe.ci, fe.f.WithImpact(impact), T)
		if err != nil {
			return 0, fmt.Errorf("core: cross-check of %s under config #%d: %w",
				fe.f.ID(), fe.s.configs[fe.ci].ID, err)
		}
		if d := math.Abs(sf - slow); d > 1e-9*math.Max(1, math.Abs(slow)) {
			return 0, fmt.Errorf("core: fast path disagrees for %s under config #%d at impact %g: fast %g, slow %g (diff %g)",
				fe.f.ID(), fe.s.configs[fe.ci].ID, impact, sf, slow, d)
		}
	}
	return sf, nil
}

// sensitivityWarm evaluates with the previous solution as the Newton
// seed and reports whether the returned value is exact. Configurations
// without a warm recipe (and cross-checked sessions) evaluate exactly; a
// warm run that fails to converge is not a verdict — the fault might
// converge from a cold start — so it falls back to the exact evaluation
// instead of reporting the sentinel.
func (fe *faultEval) sensitivityWarm(impact float64, T []float64) (float64, bool, error) {
	if !fe.ev.HasWarm() || fe.s.cfg.CrossCheck {
		sf, err := fe.sensitivity(impact, T)
		return sf, true, err
	}
	if s := fe.s; s.brk != nil && !s.brk.allow(time.Now(), s.sessionFallbacks()) {
		sf, err := s.Sensitivity(fe.ci, fe.f.WithImpact(impact), T)
		return sf, true, err
	}
	sf, runErr, err := fe.eval(impact, T, true)
	if err != nil {
		return 0, false, err
	}
	if runErr != nil {
		sf, err := fe.sensitivity(impact, T)
		return sf, true, err
	}
	return sf, false, nil
}

// evalSensitivity routes one exact sensitivity evaluation through the
// retained evaluator when one exists, and through Session.Sensitivity
// otherwise. The two are bit-identical; only the setup cost differs.
func (s *Session) evalSensitivity(fe *faultEval, ci int, f fault.Fault, T []float64) (float64, error) {
	if fe == nil {
		return s.Sensitivity(ci, f, T)
	}
	return fe.sensitivity(f.Impact(), T)
}
