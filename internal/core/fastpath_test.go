package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
)

// fastFaultMix is a dictionary slice covering every fast-path
// eligibility class: bridges and pinholes implement fault.LowRankFault
// (retained evaluators), opens do not (throwaway path), and the weak
// bridge drives the impact ladder through many weaken steps.
func fastFaultMix() []fault.Fault {
	tn := macros.TransistorNames()
	return []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 20e3),
		fault.NewPinhole(tn[0], 1e3),
		fault.NewDrainOpen(tn[1], 1e6),
	}
}

func fastSession(t *testing.T, disable bool) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfg.Workers = 4
	cfg.DisableFastPath = disable
	s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFastPathBitIdentical is the end-to-end identity property: with the
// retained-evaluator fast path forced on vs off, generation must produce
// bit-identical outputs — winning configuration, parameters, critical
// impact, dictionary-impact sensitivity, verdicts, and the impact-ladder
// trajectory (impact values and detect counts; the recorded per-step
// sensitivities may be warm values and are exempt). Run under -race in
// CI, with parallel workers on both sessions.
func TestFastPathBitIdentical(t *testing.T) {
	fastS := fastSession(t, false)
	slowS := fastSession(t, true)
	faults := fastFaultMix()

	fastSols, err := fastS.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	slowSols, err := slowS.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range faults {
		fs, ss := fastSols[i], slowSols[i]
		if fs.ConfigIdx != ss.ConfigIdx {
			t.Errorf("%s: ConfigIdx %d (fast) vs %d (slow)", f.ID(), fs.ConfigIdx, ss.ConfigIdx)
		}
		if len(fs.Params) != len(ss.Params) {
			t.Fatalf("%s: param arity %d vs %d", f.ID(), len(fs.Params), len(ss.Params))
		}
		for j := range fs.Params {
			if fs.Params[j] != ss.Params[j] {
				t.Errorf("%s: Params[%d] = %g (fast) vs %g (slow) — must be bit-identical",
					f.ID(), j, fs.Params[j], ss.Params[j])
			}
		}
		if fs.Sensitivity != ss.Sensitivity {
			t.Errorf("%s: Sensitivity %g (fast) vs %g (slow)", f.ID(), fs.Sensitivity, ss.Sensitivity)
		}
		if fs.CriticalImpact != ss.CriticalImpact {
			t.Errorf("%s: CriticalImpact %g (fast) vs %g (slow)", f.ID(), fs.CriticalImpact, ss.CriticalImpact)
		}
		if fs.Undetectable != ss.Undetectable || fs.Verdict() != ss.Verdict() {
			t.Errorf("%s: verdict %s/%v (fast) vs %s/%v (slow)",
				f.ID(), fs.Verdict(), fs.Undetectable, ss.Verdict(), ss.Undetectable)
		}
		if fs.ImpactIters != ss.ImpactIters || len(fs.Trace) != len(ss.Trace) {
			t.Fatalf("%s: ladder shape %d/%d (fast) vs %d/%d (slow)",
				f.ID(), fs.ImpactIters, len(fs.Trace), ss.ImpactIters, len(ss.Trace))
		}
		for k := range fs.Trace {
			if fs.Trace[k].Impact != ss.Trace[k].Impact || fs.Trace[k].Detects != ss.Trace[k].Detects {
				t.Errorf("%s: ladder step %d: impact/detects %g/%d (fast) vs %g/%d (slow)",
					f.ID(), k, fs.Trace[k].Impact, fs.Trace[k].Detects, ss.Trace[k].Impact, ss.Trace[k].Detects)
			}
		}
		for j := range fs.Candidates {
			fc, sc := fs.Candidates[j], ss.Candidates[j]
			if fc.SoftS != sc.SoftS || len(fc.Params) != len(sc.Params) {
				t.Errorf("%s: candidate %d SoftS %g (fast) vs %g (slow)", f.ID(), j, fc.SoftS, sc.SoftS)
				continue
			}
			for p := range fc.Params {
				if fc.Params[p] != sc.Params[p] {
					t.Errorf("%s: candidate %d Params[%d] differ", f.ID(), j, p)
				}
			}
		}
	}

	// Coverage verdicts must be identical as well.
	tests := TestsOf(slowSols)
	fastRep, err := fastS.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	slowRep, err := slowS.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if fastRep.Detected != slowRep.Detected || len(fastRep.Undetected) != len(slowRep.Undetected) {
		t.Errorf("coverage: %d detected (fast) vs %d (slow)", fastRep.Detected, slowRep.Detected)
	}
	for id, ti := range slowRep.DetectedBy {
		if fastRep.DetectedBy[id] != ti {
			t.Errorf("coverage: %s detected by test %d (fast) vs %d (slow)", id, fastRep.DetectedBy[id], ti)
		}
	}
}

// TestCrossCheckClean: with the debug cross-check enabled, every
// fast-path evaluation is replayed through the throwaway path; a run
// completing without error is the machine-checked statement that the
// two never disagree beyond 1e-9.
func TestCrossCheckClean(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfg.Workers = 4
	cfg.CrossCheck = true
	s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	sol, err := s.Generate(f)
	if err != nil {
		t.Fatalf("cross-checked generation failed: %v", err)
	}
	if sol.Verdict() != VerdictDetected {
		t.Errorf("feedback bridge verdict = %s, want detected", sol.Verdict())
	}
}

// TestFastPathCountsAvoidedFactors: the retained evaluators must credit
// the solver-economy counter that surfaces in metrics and reports.
func TestFastPathCountsAvoidedFactors(t *testing.T) {
	s := fastSession(t, false)
	before := s.Metrics().Solver.FaultyFactorAvoided
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	if _, err := s.Generate(f); err != nil {
		t.Fatal(err)
	}
	after := s.Metrics().Solver.FaultyFactorAvoided
	if after <= before {
		t.Errorf("FaultyFactorAvoided did not advance (%d -> %d)", before, after)
	}
}
