package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/failpoint"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/opt"
)

// fpOptEval fires once per objective evaluation, before the simulation
// pair. Arm it with a sleep to wedge an optimization attempt (exercising
// the stall watchdog) or with an error to poison evaluation points. One
// atomic load per evaluation — noise next to a simulation pair.
var fpOptEval = failpoint.At("core.opt.eval")

// Candidate is the optimized test of one configuration for one fault:
// the result of minimizing S_f over the configuration's parameter box
// with the fault weakened into its soft-fault tps region.
type Candidate struct {
	ConfigIdx int
	Params    []float64
	// SoftS is the optimized sensitivity of the weakened fault model.
	SoftS float64
	// Evals counts objective evaluations (simulation pairs) spent.
	Evals int
	// Attempts counts optimizer attempts taken (1 without a retry
	// policy; up to RetryPolicy.MaxAttempts with one).
	Attempts int
	// Failed marks a candidate whose every attempt stalled (no valid
	// evaluation); only set under a retry policy. Selection skips it.
	Failed bool
	// Quarantined marks a candidate whose optimization task panicked and
	// was isolated. Selection skips it.
	Quarantined bool
}

// usable reports whether selection may evaluate this candidate.
func (c Candidate) usable() bool { return !c.Failed && !c.Quarantined }

// Solution is the best test for one fault: the output of the paper's
// Fig. 6 scheme.
type Solution struct {
	Fault     fault.Fault
	ConfigIdx int
	Params    []float64
	// Sensitivity is S_f at the dictionary impact and the winning
	// parameters.
	Sensitivity float64
	// CriticalImpact is the model resistance at which exactly one test
	// still detected the fault during the selection loop.
	CriticalImpact float64
	// Undetectable is set when even the strongest allowed impact is
	// detected by no test; Params then hold the most sensitive test.
	Undetectable bool
	// Undetermined is set when the runtime could not produce a usable
	// test (persistent non-convergence through every retry rung);
	// ConfigIdx is -1 and Params nil. Only produced under a retry policy.
	Undetermined bool
	// Quarantined is set when a panic isolated this fault's tasks and no
	// surviving configuration produced a test; ConfigIdx is -1.
	Quarantined bool
	// Resumed marks a solution restored from a checkpoint rather than
	// computed this run (Candidates and Trace are then absent).
	Resumed bool
	// Candidates are the per-configuration optimized tests.
	Candidates []Candidate
	// Evals is the total number of objective evaluations spent.
	Evals int
	// Attempts is the total number of optimizer attempts across
	// configurations (equals the configuration count without retries).
	Attempts int
	// ImpactIters counts iterations of the impact relax/intensify loop.
	ImpactIters int
	// Trace records the impact loop step by step (paper Fig. 6).
	Trace []ImpactStep
}

// Verdict classifies the solution's terminal outcome.
func (sol *Solution) Verdict() Verdict {
	switch {
	case sol.Quarantined:
		return VerdictQuarantined
	case sol.Undetermined:
		return VerdictUndetermined
	case sol.Undetectable:
		return VerdictUndetectable
	default:
		return VerdictDetected
	}
}

// ImpactStep is one iteration of the impact relax/intensify loop.
type ImpactStep struct {
	Impact float64
	// Sens holds S_f per candidate (configuration order).
	Sens []float64
	// Detects is the number of candidates with S_f < 0.
	Detects int
}

// ConfigID resolves the paper numbering of the winning configuration,
// or -1 for unresolved (undetermined/quarantined) solutions.
func (sol *Solution) ConfigID(s *Session) int {
	if sol.ConfigIdx < 0 {
		return -1
	}
	return s.configs[sol.ConfigIdx].ID
}

// Generate produces the optimal test for one fault. It is
// GenerateContext with context.Background().
func (s *Session) Generate(f fault.Fault) (*Solution, error) {
	return s.GenerateContext(context.Background(), f)
}

// GenerateContext produces the optimal test for one fault:
//
//  1. For every test configuration, the fault is weakened by the
//     SoftImpactFactor (into its soft-fault tps region) and the test
//     parameters are optimized with Brent/Powell from the seed values.
//  2. Starting from the dictionary impact, the fault impact is relaxed
//     while more than one optimized test detects the model and
//     intensified while none does, with damped factors after a reversal,
//     until a unique most-sensitive test survives (the critical impact
//     level).
//
// Cancellation of ctx aborts both steps promptly with an error wrapping
// ErrCanceled.
func (s *Session) GenerateContext(ctx context.Context, f fault.Fault) (*Solution, error) {
	defer s.eng.Time(PhaseFaultE2E)()
	cands := make([]Candidate, len(s.configs))
	err := s.eng.ForEach(ctx, len(s.configs), func(ctx context.Context, ci int) error {
		c, err := s.optimizeCandidate(ctx, f, ci)
		if err != nil {
			return err
		}
		cands[ci] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s.selectTest(ctx, f, cands)
}

// optimizeCandidate runs step 1 for one (fault, configuration) pair.
// Under a retry policy, an attempt whose best objective is still the
// poison value (meaning not a single evaluation succeeded — a Brent or
// Powell trajectory wandering a non-convergent region, or an expired
// per-attempt deadline) is restarted from a deterministically perturbed
// seed, up to the policy's attempt budget; a candidate that exhausts the
// budget is marked Failed and skipped by selection instead of aborting
// the run.
func (s *Session) optimizeCandidate(ctx context.Context, f fault.Fault, ci int) (Candidate, error) {
	defer s.eng.Time(PhaseOptimize)()
	soft := fault.Weaken(f.WithImpact(f.InitialImpact()), s.cfg.SoftImpactFactor)
	c := s.configs[ci]
	// The soft-fault impact is fixed for the whole optimization, so one
	// retained evaluator serves every objective evaluation (nil when the
	// pair is ineligible: the objective then uses the throwaway path).
	fe := s.newFaultEval(soft, ci)
	ctx, sp := s.tr.Start(ctx, "optimize",
		obs.String("fault", f.ID()), obs.Int("config", c.ID))
	// Every return path below ends the span with its own attributes — but
	// a device-model panic unwinds straight to the engine's Recover
	// boundary, where the pair is quarantined and the run completes. The
	// sealed journal must not carry an open span for it.
	ended := false
	defer func() {
		if !ended {
			sp.End(obs.String("error", "panic"))
		}
	}()
	box := c.Bounds()
	evals := 0
	var watch opt.IterObserver
	if s.tr.Enabled() {
		watch = func(stage string, iter int, _ []float64, fx float64) {
			s.tr.Event(ctx, "opt_iter",
				obs.String("stage", stage), obs.Int("iter", iter), obs.F64("s_f", fx))
		}
	}

	policy := s.cfg.Retry
	budget := policy.attempts()
	var res opt.Result
	attempts := 0
	for attempt := 0; attempt < budget; attempt++ {
		attempts++
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if policy != nil && policy.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, policy.AttemptTimeout)
		}
		var wd *watchdog
		if s.cfg.StallTimeout > 0 {
			actx, wd = startWatchdog(actx, s.cfg.StallTimeout)
		}
		obj := func(T []float64) float64 {
			if actx.Err() != nil {
				// Poison every point so the optimizer retreats and returns
				// quickly; cancellation is reported below, an expired
				// attempt deadline counts as a stall.
				return poisonSF
			}
			wd.touch()
			if err := fpOptEval.Hit(); err != nil {
				return poisonSF
			}
			evals++
			sf, err := s.evalSensitivity(fe, ci, soft, T)
			if err != nil {
				// An unreachable parameter point: poison it so the
				// optimizer retreats.
				return poisonSF
			}
			return sf
		}
		res = opt.MinimizeObserved(obj, box, s.perturbedSeed(f.ID(), c.ID, attempt, box, c.Seeds()),
			s.cfg.OptTol, watch)
		cancel()
		if wd != nil {
			wd.stop()
			if stalled(actx) {
				// The watchdog killed this attempt: the task produced no
				// progress for the configured deadline. Quarantine the pair
				// (reason "stalled") instead of retrying — a wedged device
				// model will wedge the retry too.
				s.quarantineStall(PhaseOptimize, f.ID(), c.ID)
				sp.End(obs.String("error", "stalled"))
				return Candidate{ConfigIdx: ci, SoftS: poisonSF, Evals: evals,
					Attempts: attempts, Quarantined: true}, nil
			}
		}
		if err := ctx.Err(); err != nil {
			ended = true
			sp.End(obs.String("error", "canceled"))
			return Candidate{}, fmt.Errorf("%w: optimization of %s under config #%d: %w",
				ErrCanceled, f.ID(), c.ID, err)
		}
		if res.F < poisonSF {
			break // at least one valid evaluation: not a stall
		}
		if attempt+1 < budget {
			s.retries.Add(1)
			s.prog.AddRetries(1)
			s.tr.Event(ctx, "retry",
				obs.String("fault", f.ID()), obs.Int("config", c.ID), obs.Int("attempt", attempt+1))
		}
	}
	cand := Candidate{ConfigIdx: ci, Params: res.X, SoftS: res.F, Evals: evals, Attempts: attempts}
	if policy != nil && res.F >= poisonSF {
		cand.Failed = true
	}
	ended = true
	sp.End(obs.F64("soft_s", res.F), obs.Int("evals", evals), obs.Int("attempts", attempts))
	return cand, nil
}

// selectTest runs step 2 (the impact relax/intensify selection loop of
// Fig. 6) over the per-configuration candidates. Candidates that failed
// optimization or were quarantined are skipped; if none survive (or
// every surviving one stops evaluating under a retry policy), the fault
// ends as VerdictUndetermined/VerdictQuarantined instead of aborting.
func (s *Session) selectTest(ctx context.Context, f fault.Fault, cands []Candidate) (*Solution, error) {
	defer s.eng.Time(PhaseImpact)()
	sol := &Solution{Fault: f, Candidates: cands}
	ctx, sp := s.tr.Start(ctx, "impact-loop", obs.String("fault", f.ID()))
	defer func() { sp.End(obs.Int("iters", sol.ImpactIters)) }()
	for _, c := range cands {
		sol.Evals += c.Evals
		sol.Attempts += c.Attempts
	}
	usable := make([]bool, len(cands))
	nUsable := 0
	for i, c := range cands {
		if c.usable() {
			usable[i] = true
			nUsable++
		}
	}
	if nUsable == 0 {
		return s.unresolved(ctx, sol), nil
	}

	// Selection with impact manipulation. For bridges/pinholes weakening
	// raises the model resistance; for inverted models (opens) the
	// direction flips, which fault.Weaken/Strengthen encapsulate.
	//
	// Retained evaluators, one per usable candidate (nil entries use the
	// throwaway path). The ladder holds each candidate's parameters fixed
	// while only the impact moves, so eligible candidates evaluate with a
	// warm Newton seed and the decision-margin pass below recomputes
	// exactly wherever an approximate value could affect a decision —
	// signs, detect counts and the argmin therefore match the exact path,
	// while typical ladder steps run warm. Trace sensitivities may be
	// warm values (agreeing to solver tolerance); everything a decision
	// or the Solution reports is exact.
	fes := make([]*faultEval, len(cands))
	for i, c := range cands {
		if usable[i] {
			fes[i] = s.newFaultEval(f, c.ConfigIdx)
		}
	}
	fi := f.WithImpact(f.InitialImpact())
	factor := 2.0
	lastDir := 0 // +1 weaken, -1 strengthen
	winner := -1
	sens := make([]float64, len(cands))
	exact := make([]bool, len(cands))
	for iter := 0; iter < 60; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: selection for %s: %w", ErrCanceled, f.ID(), err)
		}
		sol.ImpactIters++
		for i, c := range cands {
			if !usable[i] {
				sens[i] = poisonSF
				exact[i] = true
				continue
			}
			var sf float64
			var ex bool
			var err error
			if fes[i] != nil {
				sf, ex, err = fes[i].sensitivityWarm(fi.Impact(), c.Params)
			} else {
				sf, err = s.Sensitivity(c.ConfigIdx, fi, c.Params)
				ex = true
			}
			if err != nil {
				if s.cfg.Retry == nil {
					return nil, fmt.Errorf("core: selection for %s: %w", f.ID(), err)
				}
				// Nominal non-convergence at this candidate's parameters:
				// under a retry policy, drop the candidate instead of
				// aborting the whole run.
				usable[i] = false
				nUsable--
				sens[i] = poisonSF
				exact[i] = true
				continue
			}
			sens[i], exact[i] = sf, ex
		}
		if nUsable == 0 {
			return s.unresolved(ctx, sol), nil
		}
		// Decision-margin pass: an approximate value near the detection
		// threshold, deep in the detection zone (degenerate boxes amplify
		// solver noise there), or within the margin of the current minimum
		// is recomputed exactly before any decision consumes it.
		for {
			changed := false
			minS := math.Inf(1)
			for i := range cands {
				if usable[i] && sens[i] < minS {
					minS = sens[i]
				}
			}
			for i := range cands {
				if !usable[i] || exact[i] {
					continue
				}
				if math.Abs(sens[i]) > ladderMargin && sens[i] > deepDetectSF && sens[i] > minS+ladderMargin {
					continue
				}
				sf, err := fes[i].sensitivity(fi.Impact(), cands[i].Params)
				if err != nil {
					if s.cfg.Retry == nil {
						return nil, fmt.Errorf("core: selection for %s: %w", f.ID(), err)
					}
					usable[i] = false
					nUsable--
					sens[i] = poisonSF
					exact[i] = true
					changed = true
					continue
				}
				sens[i] = sf
				exact[i] = true
				changed = true
			}
			if !changed {
				break
			}
		}
		if nUsable == 0 {
			return s.unresolved(ctx, sol), nil
		}
		detects := 0
		best := -1
		for i := range cands {
			if !usable[i] {
				continue
			}
			if sens[i] < 0 {
				detects++
			}
			if best < 0 || sens[i] < sens[best] {
				best = i
			}
		}
		sol.Trace = append(sol.Trace, ImpactStep{
			Impact:  fi.Impact(),
			Sens:    append([]float64(nil), sens...),
			Detects: detects,
		})
		s.tr.Event(ctx, "impact_step",
			obs.F64("impact", fi.Impact()), obs.Int("detects", detects))
		switch {
		case detects == 1:
			winner = best
		case detects > 1:
			if lastDir == -1 {
				factor = math.Sqrt(factor)
			}
			lastDir = 1
			fi = fault.Weaken(fi, factor)
		default: // none detects
			if lastDir == 1 {
				factor = math.Sqrt(factor)
			}
			lastDir = -1
			fi = fault.Strengthen(fi, factor)
		}
		if winner >= 0 {
			break
		}
		impact := fi.Impact()
		if factor < 1.001 || impact > s.cfg.MaxImpact || impact < s.cfg.MinImpact {
			// Converged without a unique detector: take the most
			// sensitive test.
			winner = best
			strongLimit := impact < s.cfg.MinImpact
			if fault.Inverted(f) {
				strongLimit = impact > s.cfg.MaxImpact
			}
			if strongLimit {
				// Even maximal impact undetected anywhere.
				allPositive := true
				for _, v := range sens {
					if v < 0 {
						allPositive = false
					}
				}
				sol.Undetectable = allPositive
			}
			break
		}
	}
	if winner < 0 {
		// Loop exhausted while still flip-flopping; fall back to the most
		// sensitive candidate at the dictionary impact.
		winner = -1
		fd := f.WithImpact(f.InitialImpact())
		bestS := math.Inf(1)
		for i, c := range cands {
			if !usable[i] {
				continue
			}
			sf, err := s.evalSensitivity(fes[i], c.ConfigIdx, fd, c.Params)
			if err != nil {
				if s.cfg.Retry == nil {
					return nil, err
				}
				usable[i] = false
				nUsable--
				continue
			}
			if winner < 0 || sf < bestS {
				bestS = sf
				winner = i
			}
		}
		if winner < 0 {
			return s.unresolved(ctx, sol), nil
		}
	}

	sol.ConfigIdx = cands[winner].ConfigIdx
	sol.Params = cands[winner].Params
	sol.CriticalImpact = fi.Impact()
	// Record the sensitivity at the dictionary impact for compaction.
	fd := f.WithImpact(f.InitialImpact())
	sf, err := s.evalSensitivity(fes[winner], sol.ConfigIdx, fd, sol.Params)
	if err != nil {
		if s.cfg.Retry == nil {
			return nil, err
		}
		return s.unresolved(ctx, sol), nil
	}
	sol.Sensitivity = sf
	s.tr.Event(ctx, "fault_verdict",
		obs.String("fault", f.ID()),
		obs.Int("config", s.configs[sol.ConfigIdx].ID),
		obs.String("verdict", string(sol.Verdict())),
		obs.F64("s_f", sol.Sensitivity),
		obs.F64("critical_impact", sol.CriticalImpact),
		obs.Bool("undetectable", sol.Undetectable),
		obs.Int("evals", sol.Evals),
		obs.Int("attempts", sol.Attempts),
		obs.Int("impact_iters", sol.ImpactIters))
	return sol, nil
}

// unresolved finalizes a solution for which no usable test exists: the
// verdict is quarantined when a panic took out at least one candidate,
// undetermined otherwise (persistent non-convergence).
func (s *Session) unresolved(ctx context.Context, sol *Solution) *Solution {
	sol.ConfigIdx = -1
	sol.Params = nil
	sol.Sensitivity = poisonSF
	quarantined := false
	for _, c := range sol.Candidates {
		if c.Quarantined {
			quarantined = true
		}
	}
	sol.Quarantined = quarantined
	sol.Undetermined = !quarantined
	if sol.Undetermined {
		s.undetermined.Add(1)
		s.prog.AddUndetermined(1)
	}
	s.tr.Event(ctx, "fault_verdict",
		obs.String("fault", sol.Fault.ID()),
		obs.Int("config", -1),
		obs.String("verdict", string(sol.Verdict())),
		obs.Int("evals", sol.Evals),
		obs.Int("attempts", sol.Attempts),
		obs.Int("impact_iters", sol.ImpactIters))
	return sol
}

// GenerateAll generates the best test for every fault in the dictionary.
// It is GenerateAllContext with context.Background().
func (s *Session) GenerateAll(faults []fault.Fault) ([]*Solution, error) {
	return s.GenerateAllContext(context.Background(), faults)
}

// GenerateAllContext generates the best test for every fault on the
// engine's work-stealing pool. The optimization step is scheduled as a
// flat list of (fault, configuration) tasks — the unit of work the pool
// balances across cores — and each fault's selection loop runs as soon
// as its last configuration finishes (no phase barrier). Results keep
// the input order and are identical for any worker count.
// Cancellation of ctx aborts the run promptly with an error wrapping
// ErrCanceled.
//
// Failure semantics (see DESIGN.md §10): a panic inside a task is
// recovered at the task boundary and quarantines only that fault×config
// pair — the run completes and Quarantined() reports the isolation.
// With Config.CheckpointPath set, completed per-fault results are
// periodically persisted (atomic rename + fsync), and with Config.Resume
// faults already present in a compatible checkpoint are skipped.
func (s *Session) GenerateAllContext(ctx context.Context, faults []fault.Fault) ([]*Solution, error) {
	nc := len(s.configs)
	ctx, sp := s.tr.Start(ctx, "generate-all",
		obs.Int("faults", len(faults)), obs.Int("configs", nc))
	defer sp.End()

	cs, resumed, err := s.openCheckpoint(faults)
	if err != nil {
		return nil, err
	}
	sols := make([]*Solution, len(faults))
	skip := make([]bool, len(faults))
	nSkip := 0
	for fi, f := range faults {
		if sol, ok := resumed[f.ID()]; ok {
			sols[fi] = sol
			skip[fi] = true
			nSkip++
		}
	}
	if nSkip > 0 {
		s.prog.AddResumed(nSkip)
		s.tr.Emit("resume", obs.Int("skipped", nSkip), obs.Int("total", len(faults)))
	}

	// Steps 1 and 2 fused: one optimization task per (fault,
	// configuration) pair — the unit of work the pool balances — and the
	// task that completes a fault's last configuration runs that fault's
	// selection loop inline. No barrier separates the steps, so per-fault
	// results stream into the checkpoint as soon as they exist: a run
	// killed mid-optimization resumes from every fault that had finished,
	// not from the last full phase boundary. Results are identical to the
	// two-phase schedule — each selection consumes exactly its own
	// fault's completed candidates.
	s.prog.SetPhase(PhaseGenerate, len(faults)*nc+(len(faults)-nSkip))
	cands := make([]Candidate, len(faults)*nc)
	pending := make([]atomic.Int32, len(faults))
	// starts[fi] is the wall-clock nanosecond at which the first task of
	// fault fi began (CAS so only the first task wins); finishFault turns
	// it into the fault's end-to-end latency. The fused schedule has no
	// per-fault scope to defer a timer in, so the timestamp rides here.
	starts := make([]atomic.Int64, len(faults))
	for fi := range pending {
		pending[fi].Store(int32(nc))
	}
	err = s.eng.ForEach(ctx, len(faults)*nc, func(ctx context.Context, k int) error {
		defer s.prog.Step(1)
		fi, ci := k/nc, k%nc
		if skip[fi] {
			return nil
		}
		starts[fi].CompareAndSwap(0, time.Now().UnixNano())
		err := s.eng.Recover(k, func() error {
			c, err := s.optimizeCandidate(ctx, faults[fi], ci)
			if err != nil {
				return err
			}
			cands[k] = c
			return nil
		})
		var pe *engine.TaskPanicError
		if errors.As(err, &pe) {
			s.quarantine(PhaseOptimize, faults[fi].ID(), s.configs[ci].ID, pe)
			cands[k] = Candidate{ConfigIdx: ci, SoftS: poisonSF, Attempts: 1, Quarantined: true}
		} else if err != nil {
			return fmt.Errorf("core: fault %s: %w", faults[fi].ID(), err)
		}
		if pending[fi].Add(-1) != 0 {
			return nil
		}
		ferr := s.finishFault(ctx, faults[fi], cands[fi*nc:(fi+1)*nc], sols, fi, cs)
		if t0 := starts[fi].Load(); t0 != 0 {
			s.eng.Observe(PhaseFaultE2E, time.Duration(time.Now().UnixNano()-t0))
		}
		return ferr
	})
	if err != nil {
		flushCheckpoint(cs)
		return nil, err
	}
	if cs != nil {
		if ferr := cs.flush(); ferr != nil {
			return sols, fmt.Errorf("core: final checkpoint: %w", ferr)
		}
	}
	return sols, nil
}

// finishFault runs the selection loop for one fault whose candidates
// are all complete, records the solution in the checkpoint, and steps
// the per-fault progress unit. A panic inside selection quarantines the
// whole fault.
func (s *Session) finishFault(ctx context.Context, f fault.Fault, cands []Candidate, sols []*Solution, fi int, cs *ckptState) error {
	defer s.prog.Step(1)
	err := s.eng.Recover(fi, func() error {
		sol, err := s.selectTest(ctx, f, cands)
		if err != nil {
			return err
		}
		sols[fi] = sol
		return nil
	})
	var pe *engine.TaskPanicError
	if errors.As(err, &pe) {
		s.quarantine(PhaseImpact, f.ID(), -1, pe)
		sols[fi] = &Solution{
			Fault:       f,
			ConfigIdx:   -1,
			Sensitivity: poisonSF,
			Quarantined: true,
			Candidates:  append([]Candidate(nil), cands...),
		}
	} else if err != nil {
		return fmt.Errorf("core: fault %s: %w", f.ID(), err)
	}
	if cs != nil {
		cs.record(sols[fi])
	}
	return nil
}

// flushCheckpoint best-effort persists the checkpoint on an abort path,
// so a canceled or failed run still resumes from its completed faults.
func flushCheckpoint(cs *ckptState) {
	if cs != nil {
		_ = cs.flush() // the abort error takes precedence; flush errors are journaled
	}
}

// Distribution tabulates how many faults of each kind selected each
// configuration — the paper's Table 2.
type Distribution struct {
	// Counts[configID][kind] is the number of faults of that kind whose
	// best test uses that configuration.
	Counts map[int]map[fault.Kind]int
	// Undetectable counts per kind.
	Undetectable map[fault.Kind]int
	// Unresolved counts undetermined and quarantined faults per kind —
	// runtime failures, not fault properties.
	Unresolved map[fault.Kind]int
}

// Tabulate builds the Table-2 distribution from generation results.
func (s *Session) Tabulate(sols []*Solution) Distribution {
	d := Distribution{
		Counts:       make(map[int]map[fault.Kind]int),
		Undetectable: make(map[fault.Kind]int),
		Unresolved:   make(map[fault.Kind]int),
	}
	for _, c := range s.configs {
		d.Counts[c.ID] = make(map[fault.Kind]int)
	}
	for _, sol := range sols {
		kind := sol.Fault.Kind()
		if sol.ConfigIdx < 0 {
			d.Unresolved[kind]++
			continue
		}
		if sol.Undetectable {
			d.Undetectable[kind]++
			continue
		}
		d.Counts[s.configs[sol.ConfigIdx].ID][kind]++
	}
	return d
}

// ConfigIDs returns the sorted configuration IDs present in a
// distribution.
func (d Distribution) ConfigIDs() []int {
	ids := make([]int, 0, len(d.Counts))
	for id := range d.Counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
