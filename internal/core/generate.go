package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/opt"
)

// Candidate is the optimized test of one configuration for one fault:
// the result of minimizing S_f over the configuration's parameter box
// with the fault weakened into its soft-fault tps region.
type Candidate struct {
	ConfigIdx int
	Params    []float64
	// SoftS is the optimized sensitivity of the weakened fault model.
	SoftS float64
	// Evals counts objective evaluations (simulation pairs) spent.
	Evals int
}

// Solution is the best test for one fault: the output of the paper's
// Fig. 6 scheme.
type Solution struct {
	Fault     fault.Fault
	ConfigIdx int
	Params    []float64
	// Sensitivity is S_f at the dictionary impact and the winning
	// parameters.
	Sensitivity float64
	// CriticalImpact is the model resistance at which exactly one test
	// still detected the fault during the selection loop.
	CriticalImpact float64
	// Undetectable is set when even the strongest allowed impact is
	// detected by no test; Params then hold the most sensitive test.
	Undetectable bool
	// Candidates are the per-configuration optimized tests.
	Candidates []Candidate
	// Evals is the total number of objective evaluations spent.
	Evals int
	// ImpactIters counts iterations of the impact relax/intensify loop.
	ImpactIters int
	// Trace records the impact loop step by step (paper Fig. 6).
	Trace []ImpactStep
}

// ImpactStep is one iteration of the impact relax/intensify loop.
type ImpactStep struct {
	Impact float64
	// Sens holds S_f per candidate (configuration order).
	Sens []float64
	// Detects is the number of candidates with S_f < 0.
	Detects int
}

// ConfigID resolves the paper numbering of the winning configuration.
func (sol *Solution) ConfigID(s *Session) int { return s.configs[sol.ConfigIdx].ID }

// Generate produces the optimal test for one fault. It is
// GenerateContext with context.Background().
func (s *Session) Generate(f fault.Fault) (*Solution, error) {
	return s.GenerateContext(context.Background(), f)
}

// GenerateContext produces the optimal test for one fault:
//
//  1. For every test configuration, the fault is weakened by the
//     SoftImpactFactor (into its soft-fault tps region) and the test
//     parameters are optimized with Brent/Powell from the seed values.
//  2. Starting from the dictionary impact, the fault impact is relaxed
//     while more than one optimized test detects the model and
//     intensified while none does, with damped factors after a reversal,
//     until a unique most-sensitive test survives (the critical impact
//     level).
//
// Cancellation of ctx aborts both steps promptly with an error wrapping
// ErrCanceled.
func (s *Session) GenerateContext(ctx context.Context, f fault.Fault) (*Solution, error) {
	cands := make([]Candidate, len(s.configs))
	err := s.eng.ForEach(ctx, len(s.configs), func(ctx context.Context, ci int) error {
		c, err := s.optimizeCandidate(ctx, f, ci)
		if err != nil {
			return err
		}
		cands[ci] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s.selectTest(ctx, f, cands)
}

// optimizeCandidate runs step 1 for one (fault, configuration) pair.
func (s *Session) optimizeCandidate(ctx context.Context, f fault.Fault, ci int) (Candidate, error) {
	defer s.eng.Time(PhaseOptimize)()
	soft := fault.Weaken(f.WithImpact(f.InitialImpact()), s.cfg.SoftImpactFactor)
	c := s.configs[ci]
	ctx, sp := s.tr.Start(ctx, "optimize",
		obs.String("fault", f.ID()), obs.Int("config", c.ID))
	box := c.Bounds()
	evals := 0
	obj := func(T []float64) float64 {
		if ctx.Err() != nil {
			// Poison every point so the optimizer retreats and returns
			// quickly; the cancellation error is reported below.
			return 10
		}
		evals++
		sf, err := s.Sensitivity(ci, soft, T)
		if err != nil {
			// An unreachable parameter point: poison it so the
			// optimizer retreats.
			return 10
		}
		return sf
	}
	var watch opt.IterObserver
	if s.tr.Enabled() {
		watch = func(stage string, iter int, _ []float64, fx float64) {
			s.tr.Event(ctx, "opt_iter",
				obs.String("stage", stage), obs.Int("iter", iter), obs.F64("s_f", fx))
		}
	}
	res := opt.MinimizeObserved(obj, box, c.Seeds(), s.cfg.OptTol, watch)
	if err := ctx.Err(); err != nil {
		sp.End(obs.String("error", "canceled"))
		return Candidate{}, fmt.Errorf("%w: optimization of %s under config #%d: %w",
			ErrCanceled, f.ID(), c.ID, err)
	}
	sp.End(obs.F64("soft_s", res.F), obs.Int("evals", evals))
	return Candidate{ConfigIdx: ci, Params: res.X, SoftS: res.F, Evals: evals}, nil
}

// selectTest runs step 2 (the impact relax/intensify selection loop of
// Fig. 6) over the per-configuration candidates.
func (s *Session) selectTest(ctx context.Context, f fault.Fault, cands []Candidate) (*Solution, error) {
	defer s.eng.Time(PhaseImpact)()
	sol := &Solution{Fault: f, Candidates: cands}
	ctx, sp := s.tr.Start(ctx, "impact-loop", obs.String("fault", f.ID()))
	defer func() { sp.End(obs.Int("iters", sol.ImpactIters)) }()
	for _, c := range cands {
		sol.Evals += c.Evals
	}

	// Selection with impact manipulation. For bridges/pinholes weakening
	// raises the model resistance; for inverted models (opens) the
	// direction flips, which fault.Weaken/Strengthen encapsulate.
	fi := f.WithImpact(f.InitialImpact())
	factor := 2.0
	lastDir := 0 // +1 weaken, -1 strengthen
	winner := -1
	sens := make([]float64, len(cands))
	for iter := 0; iter < 60; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: selection for %s: %w", ErrCanceled, f.ID(), err)
		}
		sol.ImpactIters++
		detects := 0
		best := -1
		for i, c := range cands {
			sf, err := s.Sensitivity(c.ConfigIdx, fi, c.Params)
			if err != nil {
				return nil, fmt.Errorf("core: selection for %s: %w", f.ID(), err)
			}
			sens[i] = sf
			if sf < 0 {
				detects++
			}
			if best < 0 || sf < sens[best] {
				best = i
			}
		}
		sol.Trace = append(sol.Trace, ImpactStep{
			Impact:  fi.Impact(),
			Sens:    append([]float64(nil), sens...),
			Detects: detects,
		})
		s.tr.Event(ctx, "impact_step",
			obs.F64("impact", fi.Impact()), obs.Int("detects", detects))
		switch {
		case detects == 1:
			winner = best
		case detects > 1:
			if lastDir == -1 {
				factor = math.Sqrt(factor)
			}
			lastDir = 1
			fi = fault.Weaken(fi, factor)
		default: // none detects
			if lastDir == 1 {
				factor = math.Sqrt(factor)
			}
			lastDir = -1
			fi = fault.Strengthen(fi, factor)
		}
		if winner >= 0 {
			break
		}
		impact := fi.Impact()
		if factor < 1.001 || impact > s.cfg.MaxImpact || impact < s.cfg.MinImpact {
			// Converged without a unique detector: take the most
			// sensitive test.
			winner = best
			strongLimit := impact < s.cfg.MinImpact
			if fault.Inverted(f) {
				strongLimit = impact > s.cfg.MaxImpact
			}
			if strongLimit {
				// Even maximal impact undetected anywhere.
				allPositive := true
				for _, v := range sens {
					if v < 0 {
						allPositive = false
					}
				}
				sol.Undetectable = allPositive
			}
			break
		}
	}
	if winner < 0 {
		// Loop exhausted while still flip-flopping; fall back to the most
		// sensitive candidate at the dictionary impact.
		winner = 0
		fd := f.WithImpact(f.InitialImpact())
		bestS := math.Inf(1)
		for i, c := range cands {
			sf, err := s.Sensitivity(c.ConfigIdx, fd, c.Params)
			if err != nil {
				return nil, err
			}
			if sf < bestS {
				bestS = sf
				winner = i
			}
		}
	}

	sol.ConfigIdx = cands[winner].ConfigIdx
	sol.Params = cands[winner].Params
	sol.CriticalImpact = fi.Impact()
	// Record the sensitivity at the dictionary impact for compaction.
	fd := f.WithImpact(f.InitialImpact())
	sf, err := s.Sensitivity(sol.ConfigIdx, fd, sol.Params)
	if err != nil {
		return nil, err
	}
	sol.Sensitivity = sf
	s.tr.Event(ctx, "fault_verdict",
		obs.String("fault", f.ID()),
		obs.Int("config", s.configs[sol.ConfigIdx].ID),
		obs.F64("s_f", sol.Sensitivity),
		obs.F64("critical_impact", sol.CriticalImpact),
		obs.Bool("undetectable", sol.Undetectable),
		obs.Int("evals", sol.Evals),
		obs.Int("impact_iters", sol.ImpactIters))
	return sol, nil
}

// GenerateAll generates the best test for every fault in the dictionary.
// It is GenerateAllContext with context.Background().
func (s *Session) GenerateAll(faults []fault.Fault) ([]*Solution, error) {
	return s.GenerateAllContext(context.Background(), faults)
}

// GenerateAllContext generates the best test for every fault on the
// engine's work-stealing pool. The optimization step is scheduled as a
// flat list of (fault, configuration) tasks — the unit of work the pool
// balances across cores — followed by the per-fault selection loops.
// Results keep the input order and are identical for any worker count.
// Cancellation of ctx aborts the run promptly with an error wrapping
// ErrCanceled.
func (s *Session) GenerateAllContext(ctx context.Context, faults []fault.Fault) ([]*Solution, error) {
	nc := len(s.configs)
	ctx, sp := s.tr.Start(ctx, "generate-all",
		obs.Int("faults", len(faults)), obs.Int("configs", nc))
	defer sp.End()
	// Step 1: one optimization task per (fault, configuration) pair.
	s.prog.SetPhase(PhaseOptimize, len(faults)*nc)
	cands := make([]Candidate, len(faults)*nc)
	err := s.eng.ForEach(ctx, len(faults)*nc, func(ctx context.Context, k int) error {
		defer s.prog.Step(1)
		fi, ci := k/nc, k%nc
		c, err := s.optimizeCandidate(ctx, faults[fi], ci)
		if err != nil {
			return fmt.Errorf("core: fault %s: %w", faults[fi].ID(), err)
		}
		cands[k] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Step 2: the impact selection loop per fault.
	s.prog.SetPhase(PhaseImpact, len(faults))
	sols := make([]*Solution, len(faults))
	err = s.eng.ForEach(ctx, len(faults), func(ctx context.Context, fi int) error {
		defer s.prog.Step(1)
		sol, err := s.selectTest(ctx, faults[fi], cands[fi*nc:(fi+1)*nc])
		if err != nil {
			return fmt.Errorf("core: fault %s: %w", faults[fi].ID(), err)
		}
		sols[fi] = sol
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sols, nil
}

// Distribution tabulates how many faults of each kind selected each
// configuration — the paper's Table 2.
type Distribution struct {
	// Counts[configID][kind] is the number of faults of that kind whose
	// best test uses that configuration.
	Counts map[int]map[fault.Kind]int
	// Undetectable counts per kind.
	Undetectable map[fault.Kind]int
}

// Tabulate builds the Table-2 distribution from generation results.
func (s *Session) Tabulate(sols []*Solution) Distribution {
	d := Distribution{
		Counts:       make(map[int]map[fault.Kind]int),
		Undetectable: make(map[fault.Kind]int),
	}
	for _, c := range s.configs {
		d.Counts[c.ID] = make(map[fault.Kind]int)
	}
	for _, sol := range sols {
		kind := sol.Fault.Kind()
		if sol.Undetectable {
			d.Undetectable[kind]++
			continue
		}
		d.Counts[s.configs[sol.ConfigIdx].ID][kind]++
	}
	return d
}

// ConfigIDs returns the sorted configuration IDs present in a
// distribution.
func (d Distribution) ConfigIDs() []int {
	ids := make([]int, 0, len(d.Counts))
	for id := range d.Counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
