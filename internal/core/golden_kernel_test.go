package core

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/sim"
	"repro/internal/testcfg"
	"repro/internal/wave"
)

// goldenKernel is the frozen behaviour of the simulation kernel, captured
// from the pre-split-stamp implementation. The kernel rewrite (linear
// snapshots, in-place solves, cached AC bases) must reproduce every value
// bit-identically (tolerance 1e-12): the restamp/restore refactor changes
// the order of additions only between *different* matrix entries, never
// within one, so the float results must not move.
//
// Regenerate with:
//
//	GOLDEN_UPDATE=1 go test ./internal/core -run TestGoldenKernel
type goldenKernel struct {
	Sensitivities map[string]float64 `json:"sensitivities"`
	Coverage      struct {
		Detected   int            `json:"detected"`
		Total      int            `json:"total"`
		DetectedBy map[string]int `json:"detected_by"`
		Undetected []string       `json:"undetected"`
	} `json:"coverage"`
	Compact []struct {
		ConfigIdx int       `json:"config_idx"`
		Params    []float64 `json:"params"`
		Members   []string  `json:"members"`
	} `json:"compact"`
	ACMagDB     []float64 `json:"ac_mag_db"`
	ACPhaseDeg  []float64 `json:"ac_phase_deg"`
	NoiseVrtHz  []float64 `json:"noise_v_rthz"`
	StepSamples []float64 `json:"step_samples"`
}

const goldenPath = "testdata/golden_kernel.json"

// goldenFaults is the fixed dictionary slice the golden workload runs:
// a representative mix of bridges and pinholes, cheap enough for -race.
func goldenFaults() []fault.Fault {
	return []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
		fault.NewBridge(macros.NodeVout, "0", 10e3),
		fault.NewPinhole("M6", 2e3),
		fault.NewPinhole("M1", 2e3),
	}
}

// goldenTests covers the DC kernel (configs #1, #2) and the transient
// kernel (config #4 step integral) at fixed parameter vectors.
func goldenTests() []Test {
	return []Test{
		{ConfigIdx: 0, Params: []float64{20e-6}},
		{ConfigIdx: 1, Params: []float64{35e-6}},
		{ConfigIdx: 2, Params: []float64{5e-6, 20e-6}},
	}
}

func goldenSession(t testing.TB) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfgs := testcfg.IVConfigs()
	// Configs #1 (dc-out), #2 (supply-current), #4 (step-integral).
	sel := []*testcfg.Config{cfgs[0], cfgs[1], cfgs[3]}
	s, err := NewSession(macros.IVConverter(), sel, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// computeGolden runs the full golden workload on the current kernel.
func computeGolden(t testing.TB) goldenKernel {
	t.Helper()
	var g goldenKernel
	s := goldenSession(t)
	faults := goldenFaults()
	tests := goldenTests()

	// Per-(fault, test) sensitivities: the raw cost function the
	// optimizers see, at the dictionary impact.
	g.Sensitivities = make(map[string]float64)
	for _, f := range faults {
		fd := f.WithImpact(f.InitialImpact())
		for ti, tst := range tests {
			sf, err := s.Sensitivity(tst.ConfigIdx, fd, tst.Params)
			if err != nil {
				t.Fatalf("sensitivity %s test %d: %v", f.ID(), ti, err)
			}
			g.Sensitivities[f.ID()+"#"+string(rune('0'+ti))] = sf
		}
	}

	// Fault-dictionary coverage on the engine pool (exercises the kernel
	// from many goroutines; meaningful under -race).
	rep, err := s.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	g.Coverage.Detected = rep.Detected
	g.Coverage.Total = rep.Total
	g.Coverage.DetectedBy = rep.DetectedBy
	g.Coverage.Undetected = rep.Undetected
	if g.Coverage.Undetected == nil {
		g.Coverage.Undetected = []string{}
	}

	// Compaction of synthetic solutions built from the computed
	// sensitivities (fixed parameters, so the collapse is deterministic).
	var sols []*Solution
	solParams := [][]float64{{18e-6}, {22e-6}, {60e-6}}
	for i, f := range faults[:3] {
		p := solParams[i]
		sf, err := s.Sensitivity(0, f.WithImpact(f.InitialImpact()), p)
		if err != nil {
			t.Fatal(err)
		}
		sols = append(sols, &Solution{Fault: f, ConfigIdx: 0, Params: p, Sensitivity: sf})
	}
	cts, err := s.Compact(sols, DefaultCompactOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, ct := range cts {
		g.Compact = append(g.Compact, struct {
			ConfigIdx int       `json:"config_idx"`
			Params    []float64 `json:"params"`
			Members   []string  `json:"members"`
		}{ct.ConfigIdx, ct.Params, ct.Members})
	}

	// AC and noise kernels, straight on a sim engine.
	eng, err := sim.New(macros.IVConverter(), sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xop, err := eng.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	freqs := sim.LogSpace(1e3, 1e8, 9)
	ac, err := eng.AC(xop, macros.InputSourceName, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range freqs {
		g.ACMagDB = append(g.ACMagDB, ac.MagDB(i, macros.NodeVout))
		g.ACPhaseDeg = append(g.ACPhaseDeg, ac.PhaseDeg(i, macros.NodeVout))
	}
	nz, err := eng.Noise(xop, macros.NodeVout, []float64{1e4, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range nz.Points {
		g.NoiseVrtHz = append(g.NoiseVrtHz, pt.Density)
	}

	// Transient kernel: a short fixed-step step response, every 50th
	// sample frozen.
	tckt := macros.IVConverter()
	macros.SetInputWave(tckt, wave.Step{Base: 5e-6, Elev: 20e-6, Delay: 10e-9, Rise: 10e-9})
	teng, err := sim.New(tckt, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := teng.Transient(2e-6, 10e-9, []string{macros.NodeVout})
	if err != nil {
		t.Fatal(err)
	}
	sig := tr.Signal(macros.NodeVout)
	for i := 0; i < len(sig); i += 50 {
		g.StepSamples = append(g.StepSamples, sig[i])
	}
	return g
}

// TestGoldenKernel locks the kernel's numerical behaviour. Set
// GOLDEN_UPDATE=1 to regenerate the frozen values (only legitimate when
// a change intentionally alters numerics, which the split-stamp rewrite
// must not).
func TestGoldenKernel(t *testing.T) {
	got := computeGolden(t)

	if os.Getenv("GOLDEN_UPDATE") == "1" {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden kernel values rewritten to %s", goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want goldenKernel
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}

	const tol = 1e-12
	near := func(a, b float64) bool {
		if a == b {
			return true
		}
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		return math.Abs(a-b) <= tol*scale
	}

	for k, w := range want.Sensitivities {
		if gv, ok := got.Sensitivities[k]; !ok || !near(gv, w) {
			t.Errorf("sensitivity %s: got %.17g want %.17g", k, gv, w)
		}
	}
	if got.Coverage.Detected != want.Coverage.Detected || got.Coverage.Total != want.Coverage.Total {
		t.Errorf("coverage %d/%d, want %d/%d", got.Coverage.Detected, got.Coverage.Total,
			want.Coverage.Detected, want.Coverage.Total)
	}
	for id, ti := range want.Coverage.DetectedBy {
		if got.Coverage.DetectedBy[id] != ti {
			t.Errorf("fault %s detected by test %d, want %d", id, got.Coverage.DetectedBy[id], ti)
		}
	}
	if len(got.Compact) != len(want.Compact) {
		t.Fatalf("compaction produced %d tests, want %d", len(got.Compact), len(want.Compact))
	}
	for i := range want.Compact {
		gw, ww := got.Compact[i], want.Compact[i]
		if gw.ConfigIdx != ww.ConfigIdx || len(gw.Members) != len(ww.Members) {
			t.Errorf("compact[%d]: got cfg %d members %v, want cfg %d members %v",
				i, gw.ConfigIdx, gw.Members, ww.ConfigIdx, ww.Members)
			continue
		}
		for j := range ww.Members {
			if gw.Members[j] != ww.Members[j] {
				t.Errorf("compact[%d] member %d: got %s want %s", i, j, gw.Members[j], ww.Members[j])
			}
		}
		for j := range ww.Params {
			if !near(gw.Params[j], ww.Params[j]) {
				t.Errorf("compact[%d] param %d: got %.17g want %.17g", i, j, gw.Params[j], ww.Params[j])
			}
		}
	}
	vecNear := func(name string, g, w []float64) {
		if len(g) != len(w) {
			t.Errorf("%s: length %d, want %d", name, len(g), len(w))
			return
		}
		for i := range w {
			if !near(g[i], w[i]) {
				t.Errorf("%s[%d]: got %.17g want %.17g", name, i, g[i], w[i])
			}
		}
	}
	vecNear("ac_mag_db", got.ACMagDB, want.ACMagDB)
	vecNear("ac_phase_deg", got.ACPhaseDeg, want.ACPhaseDeg)
	vecNear("noise", got.NoiseVrtHz, want.NoiseVrtHz)
	vecNear("step", got.StepSamples, want.StepSamples)
}
