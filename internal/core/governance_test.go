package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/failpoint"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/testcfg"
	"repro/internal/wave"
)

// TestStallWatchdogQuarantines arms the core.opt.eval failpoint with a
// one-shot sleep longer than the stall deadline: the first objective
// evaluation wedges, the watchdog cancels the attempt, and exactly that
// fault×config pair must be quarantined with reason "stalled" — while
// the fault still resolves through the surviving configuration.
func TestStallWatchdogQuarantines(t *testing.T) {
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Apply("core.opt.eval=sleep(300ms):once"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.New(obs.NewJournal(&buf))
	s := chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.Workers = 1 // deterministic victim: fault 0 under config 101
		c.StallTimeout = 50 * time.Millisecond
		c.Tracer = tr
	})
	sols, err := s.GenerateAll(chaosFaults())
	if err != nil {
		t.Fatalf("GenerateAll with a wedged attempt aborted: %v", err)
	}
	tr.Finish(nil)

	q := s.Quarantined()
	if len(q) != 1 {
		t.Fatalf("quarantine records = %+v, want exactly one", q)
	}
	rec := q[0]
	if rec.Reason != QuarantineStalled {
		t.Errorf("Reason = %q, want %q", rec.Reason, QuarantineStalled)
	}
	if rec.FaultID != "bridge:Iin-Vout" || rec.ConfigID != 101 || rec.Phase != PhaseOptimize {
		t.Errorf("quarantined %s under config %d in phase %s, want bridge:Iin-Vout under 101 in %s",
			rec.FaultID, rec.ConfigID, rec.Phase, PhaseOptimize)
	}
	if rec.Value != "" || rec.Stack != "" {
		t.Errorf("stall quarantine carries panic payload: value %q stack %d bytes", rec.Value, len(rec.Stack))
	}

	// The wedged pair is out; the fault survives via config 102.
	if v := sols[0].Verdict(); v != VerdictDetected {
		t.Errorf("victim fault verdict = %s, want %s", v, VerdictDetected)
	}
	if id := sols[0].ConfigID(s); id != 102 {
		t.Errorf("victim fault won config %d, want the surviving 102", id)
	}
	nq := 0
	for _, c := range sols[0].Candidates {
		if c.Quarantined {
			nq++
		}
	}
	if nq != 1 {
		t.Errorf("victim fault has %d quarantined candidates, want 1", nq)
	}
	if v := sols[1].Verdict(); v != VerdictDetected {
		t.Errorf("sibling fault verdict = %s, want %s", v, VerdictDetected)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"reason":"stalled"`)) {
		t.Error("journal has no stalled-reason quarantine event")
	}
}

// TestWatchdogIdleWhenProgressing: a healthy run under a generous stall
// deadline must not quarantine anything.
func TestWatchdogIdleWhenProgressing(t *testing.T) {
	s := chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.StallTimeout = 5 * time.Second
	})
	sols, err := s.GenerateAll(chaosFaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Quarantined()) != 0 {
		t.Fatalf("healthy run quarantined: %+v", s.Quarantined())
	}
	for i, sol := range sols {
		if v := sol.Verdict(); v != VerdictDetected {
			t.Errorf("fault %d verdict = %s, want %s", i, v, VerdictDetected)
		}
	}
}

// TestBreakerStateMachine drives the breaker's window/trip/cool-down
// transitions with synthetic clock and counter values.
func TestBreakerStateMachine(t *testing.T) {
	col := &obs.Collector{}
	tr := obs.New(col)
	s := &Session{
		cfg: Config{BreakerFallbacks: 5, BreakerWindow: time.Second, BreakerCooldown: 2 * time.Second},
		tr:  tr,
	}
	b := newBreaker(s)
	if b == nil {
		t.Fatal("breaker not armed")
	}
	t0 := time.Now()
	at := func(d time.Duration) time.Time { return t0.Add(d) }

	if !b.allow(at(0), 0) {
		t.Fatal("fresh breaker denied the fast path")
	}
	if !b.allow(at(100*time.Millisecond), 4) {
		t.Fatal("4 fallbacks under a threshold of 5 tripped")
	}
	if b.allow(at(200*time.Millisecond), 5) {
		t.Fatal("threshold reached but breaker did not trip")
	}
	st := b.stats()
	if st.Trips != 1 || !st.Open {
		t.Fatalf("stats after trip = %+v, want 1 trip, open", st)
	}
	// Cooling down: denied regardless of counter movement.
	if b.allow(at(1*time.Second), 5) {
		t.Fatal("open breaker admitted the fast path mid-cooldown")
	}
	// Cool-down expired: re-admitted with a fresh window.
	if !b.allow(at(2500*time.Millisecond), 7) {
		t.Fatal("breaker did not reset after the cool-down")
	}
	if st := b.stats(); st.Open {
		t.Fatal("breaker still open after reset")
	}
	// New window bases at 7: +4 is fine, +5 trips again.
	if !b.allow(at(2600*time.Millisecond), 11) {
		t.Fatal("4 fallbacks in the fresh window tripped")
	}
	if b.allow(at(2700*time.Millisecond), 12) {
		t.Fatal("5 fallbacks in the fresh window did not trip")
	}
	if st := b.stats(); st.Trips != 2 {
		t.Fatalf("Trips = %d, want 2", st.Trips)
	}
	// A quiet stretch longer than the window resets the base instead of
	// accumulating stale counts (checked on a fresh breaker).
	b2 := newBreaker(s)
	if !b2.allow(at(0), 100) {
		t.Fatal("fresh breaker denied")
	}
	if !b2.allow(at(5*time.Second), 104) {
		t.Fatal("expired window still accumulated old fallbacks")
	}

	trips, resets := 0, 0
	for _, ev := range col.Events() {
		switch ev.Name {
		case "breaker_trip":
			trips++
		case "breaker_reset":
			resets++
		}
	}
	if trips != 2 || resets != 1 {
		t.Fatalf("journal: %d trips, %d resets, want 2/1", trips, resets)
	}
}

// linearMacro is a resistive macro with the standard IV interface
// (Iin current source, Vdd supply, Vout node): no nonlinear devices, so
// the retained fast path serves operating points through the Woodbury
// rank-k update — the only configuration in which guard-trip fallbacks
// (and hence the circuit breaker) can occur.
func linearMacro() *circuit.Circuit {
	c := circuit.New("linear-iv")
	c.Add(device.NewDCVSource(macros.SupplySourceName, macros.NodeVdd, "0", macros.SupplyVoltage))
	c.Add(device.NewISource(macros.InputSourceName, macros.NodeIin, "0", wave.DC(0)))
	c.Add(device.NewResistor("R1", macros.NodeIin, macros.NodeVout, 10e3))
	c.Add(device.NewResistor("R2", macros.NodeVout, "0", 10e3))
	c.Add(device.NewResistor("R3", macros.NodeVdd, macros.NodeVout, 20e3))
	c.Add(device.NewResistor("R4", macros.NodeIin, "0", 50e3))
	return c
}

func linearSession(t *testing.T, mod func(*Config)) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfg.Workers = 4
	if mod != nil {
		mod(&cfg)
	}
	s, err := NewSession(linearMacro(), testcfg.IVConfigs()[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBreakerPinsSlowPath is the integration cut: on a linear macro
// (where the fast path really runs Woodbury solves) with the
// mna.lowrank.guard failpoint storming guard trips, an armed breaker
// must trip and pin the session to the throwaway path — and the
// generation outcomes must match an uninjected run, because the fallback
// path computes the same operating points.
func TestBreakerPinsSlowPath(t *testing.T) {
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 5e3),
		fault.NewBridge(macros.NodeVdd, macros.NodeVout, 5e3),
	}
	baseline := linearSession(t, nil)
	want, err := baseline.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if m := baseline.Metrics(); m.Solver.WoodburySolves == 0 {
		t.Fatalf("baseline spent no Woodbury solves — the linear macro no longer exercises the fast path")
	}

	t.Cleanup(failpoint.Reset)
	if err := failpoint.Apply("mna.lowrank.guard=error(injected guard trip)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.New(obs.NewJournal(&buf))
	s := linearSession(t, func(c *Config) {
		c.BreakerFallbacks = 3
		c.BreakerWindow = time.Minute // whole run inside one window
		c.BreakerCooldown = time.Minute
		c.Tracer = tr
	})
	got, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish(nil)

	for i := range faults {
		w, g := want[i], got[i]
		if w.ConfigIdx != g.ConfigIdx || w.Verdict() != g.Verdict() {
			t.Errorf("fault %d diverged under the breaker: got config %d %s, want config %d %s",
				i, g.ConfigIdx, g.Verdict(), w.ConfigIdx, w.Verdict())
		}
		// Woodbury and full-factor agree to solver tolerance, not bit for
		// bit; the decisions above must match exactly, the numbers tightly.
		if d := math.Abs(w.Sensitivity - g.Sensitivity); d > 1e-6*math.Max(1, math.Abs(w.Sensitivity)) {
			t.Errorf("fault %d sensitivity diverged: %v vs %v", i, g.Sensitivity, w.Sensitivity)
		}
	}
	m := s.Metrics()
	if m.Solver.WoodburyFallbacks == 0 {
		t.Fatal("guard-trip failpoint produced no fallbacks")
	}
	if m.Breaker.Trips < 1 {
		t.Fatalf("Breaker.Trips = %d, want >= 1 under a guard-trip storm", m.Breaker.Trips)
	}
	if !m.Breaker.Open {
		t.Error("breaker closed again despite a one-minute cool-down")
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"breaker_trip"`)) {
		t.Error("journal has no breaker_trip event")
	}
}
