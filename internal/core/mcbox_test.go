package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
	"repro/internal/tolerance"
)

func mcSession(t *testing.T, seed int64) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BoxMode = BoxMonteCarlo
	cfg.MCSamples = 12
	cfg.MCSeed = seed
	s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMonteCarloBoxBuilds(t *testing.T) {
	s := mcSession(t, 1)
	hw := s.Box(0).Halfwidths([]float64{20e-6})
	if len(hw) != 1 || hw[0] <= 0 {
		t.Fatalf("MC box halfwidths = %v", hw)
	}
	// Must include at least the equipment accuracy floor.
	if hw[0] < 1e-3 {
		t.Errorf("MC box %g below the 1 mV accuracy floor", hw[0])
	}
}

func TestMonteCarloBoxReproducible(t *testing.T) {
	a := mcSession(t, 42).Box(0).Halfwidths([]float64{20e-6})
	b := mcSession(t, 42).Box(0).Halfwidths([]float64{20e-6})
	if a[0] != b[0] {
		t.Errorf("same seed gave different boxes: %g vs %g", a[0], b[0])
	}
}

func TestMonteCarloBoxComparableToCorners(t *testing.T) {
	mc := mcSession(t, 7).Box(0).Halfwidths([]float64{20e-6})[0]
	corner := dcSession(t).Box(0).Halfwidths([]float64{20e-6})[0]
	// The MC spread is calibrated to the corner extremes at 3σ, so with a
	// modest sample count it lands at the same order of magnitude but
	// usually below the worst-case corners.
	if mc > corner*1.5 || mc < corner/20 {
		t.Errorf("MC box %g implausible against corner box %g", mc, corner)
	}
}

func TestMonteCarloSensitivityStillWorks(t *testing.T) {
	s := mcSession(t, 3)
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	sf, err := s.Sensitivity(0, f, []float64{20e-6})
	if err != nil {
		t.Fatal(err)
	}
	if sf >= 0 {
		t.Errorf("feedback bridge undetected under MC boxes: S_f = %g", sf)
	}
}

func TestMonteCarloDeviationDirect(t *testing.T) {
	c := testcfg.IVConfigs()[0]
	golden := macros.IVConverter()
	seeds := c.Seeds()
	dev, err := tolerance.MonteCarloDeviation(golden, tolerance.DefaultSpread(), 8, 99,
		func(ck *circuit.Circuit) ([]float64, error) { return c.Run(ck, seeds) })
	if err != nil {
		t.Fatal(err)
	}
	if len(dev) != 1 || dev[0] <= 0 {
		t.Errorf("deviation = %v, want one positive entry", dev)
	}
}
