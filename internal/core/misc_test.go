package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
)

func TestSessionAccessors(t *testing.T) {
	s := dcSession(t)
	if s.Golden() == nil || s.Golden().Name() != "iv-converter" {
		t.Error("Golden accessor wrong")
	}
	if len(s.Configs()) != 2 {
		t.Errorf("Configs = %d", len(s.Configs()))
	}
}

func TestSessionDefaultsFilled(t *testing.T) {
	// A zero-value config must be normalized rather than rejected.
	s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:1], Config{BoxMode: BoxSeed})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Workers <= 0 || s.cfg.OptTol <= 0 || s.cfg.SoftImpactFactor <= 1 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	if s.cfg.MinImpact <= 0 || s.cfg.MaxImpact <= s.cfg.MinImpact {
		t.Errorf("impact caps not applied: %+v", s.cfg)
	}
}

func TestPruneDirect(t *testing.T) {
	s := dcSession(t)
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge("0", macros.NodeVdd, 10e3),
	}
	tests := []Test{
		{ConfigIdx: 0, Params: []float64{20e-6}},
		{ConfigIdx: 0, Params: []float64{25e-6}}, // redundant
		{ConfigIdx: 1, Params: []float64{20e-6}},
	}
	pruned, err := s.Prune(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) == 0 || len(pruned) >= len(tests) {
		t.Errorf("pruned = %d of %d", len(pruned), len(tests))
	}
	before, err := s.Coverage(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.Coverage(pruned, faults)
	if err != nil {
		t.Fatal(err)
	}
	if before.Detected != after.Detected {
		t.Errorf("prune lost coverage: %d -> %d", before.Detected, after.Detected)
	}
}

// TestGenerateUndetectableFault drives the strengthen-to-the-floor path:
// a bridge between the reference source and ground is invisible to both
// DC configurations at any impact, so the loop must bottom out and flag
// it.
func TestGenerateUndetectableFault(t *testing.T) {
	s := dcSession(t)
	f := fault.NewBridge("0", macros.NodeVref, 10e3)
	sol, err := s.Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Undetectable {
		t.Errorf("reference-loading bridge not flagged undetectable (S=%g, critical=%g)",
			sol.Sensitivity, sol.CriticalImpact)
	}
	if sol.ImpactIters < 3 {
		t.Errorf("impact loop gave up after %d iterations", sol.ImpactIters)
	}
}
