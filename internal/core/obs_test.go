package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/testcfg"
)

// tracedSession builds the cheap two-config session with a tracer
// journaling into buf.
func tracedSession(t *testing.T, buf *bytes.Buffer) (*Session, *obs.Tracer, *obs.Journal) {
	t.Helper()
	j := obs.NewJournal(buf)
	tr := obs.New(j, obs.String("cmd", "core-test"))
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfg.Workers = 4
	cfg.Tracer = tr
	cfg.Progress = obs.NewProgress()
	s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, tr, j
}

// TestTracedRunJournalValid: a full generate+coverage run under a tracer
// must produce a schema-valid journal ending in run_end, with all spans
// closed and the domain events present.
func TestTracedRunJournalValid(t *testing.T) {
	var buf bytes.Buffer
	s, tr, j := tracedSession(t, &buf)
	faults := []fault.Fault{fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)}
	sols, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Coverage(TestsOf(sols), faults); err != nil {
		t.Fatal(err)
	}
	tr.Finish(nil, obs.Any("metrics", s.Metrics()))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := obs.Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("journal invalid: %v", err)
	}
	if st.Terminal != obs.TypeRunEnd {
		t.Errorf("terminal = %s, want run_end", st.Terminal)
	}
	if st.OpenSpans != 0 {
		t.Errorf("%d spans left open after a completed run", st.OpenSpans)
	}
	if st.Spans == 0 {
		t.Error("no spans recorded")
	}
	for _, want := range []string{
		`"generate-all"`, `"optimize"`, `"impact-loop"`, `"coverage"`,
		`"fault_verdict"`, `"opt_iter"`, `"impact_step"`, `"sim.`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("journal misses %s records", want)
		}
	}
}

// TestCanceledRunJournalTruncatedButValid: a canceled run must still
// flush a well-formed journal whose terminal record is run_canceled
// (open spans permitted — the truncated-but-valid contract).
func TestCanceledRunJournalTruncatedButValid(t *testing.T) {
	var buf bytes.Buffer
	s, tr, j := tracedSession(t, &buf)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.GenerateAllContext(ctx, fault.Dictionary(macros.IVConverter(), 10e3, 2e3))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	tr.Finish(err)
	if cerr := j.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	st, verr := obs.Validate(bytes.NewReader(buf.Bytes()))
	if verr != nil {
		t.Fatalf("canceled-run journal invalid: %v", verr)
	}
	if st.Terminal != obs.TypeRunCanceled {
		t.Errorf("terminal = %s, want run_canceled", st.Terminal)
	}
}

// TestTracingDisabledNoJournal: without a tracer the same run must not
// touch any sink (the nil-tracer no-op contract at the session level).
func TestTracingDisabledNoJournal(t *testing.T) {
	s := dcSession(t)
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	if _, err := s.Generate(f); err != nil {
		t.Fatal(err)
	}
	// No assertion target: the absence of a panic on the nil tracer and
	// nil progress across the full path is the test.
}
