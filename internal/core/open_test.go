package core

import (
	"testing"

	"repro/internal/fault"
)

// TestGenerateOpenFault exercises the inverted impact loop end to end: a
// drain open's impact is weakened by LOWERING its series resistance, and
// the selection must still converge to a unique detecting test.
func TestGenerateOpenFault(t *testing.T) {
	s := dcSession(t)
	f := fault.NewDrainOpen("M10", 10e6)
	sol, err := s.Generate(f)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Undetectable {
		t.Fatal("hard drain open flagged undetectable")
	}
	if sol.Sensitivity >= 0 {
		t.Errorf("winning test does not detect the open: S_f = %g", sol.Sensitivity)
	}
	// The impact trace must stay positive and finite throughout.
	for _, st := range sol.Trace {
		if st.Impact <= 0 {
			t.Errorf("impact loop produced non-positive resistance %g", st.Impact)
		}
	}
	if sol.CriticalImpact <= 0 {
		t.Errorf("critical impact = %g", sol.CriticalImpact)
	}
}

// TestOpenCoverage: the DC configurations detect hard drain opens in the
// signal path.
func TestOpenCoverage(t *testing.T) {
	s := dcSession(t)
	opens := []fault.Fault{
		fault.NewDrainOpen("M10", 10e6),
		fault.NewDrainOpen("M5", 10e6),
	}
	tests := []Test{
		{ConfigIdx: 0, Params: []float64{20e-6}},
		{ConfigIdx: 1, Params: []float64{20e-6}},
	}
	rep, err := s.Coverage(tests, opens)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected == 0 {
		t.Errorf("no hard open detected: %+v", rep)
	}
}
