package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/testcfg"
)

// The chaos tests drive the real generation pipeline with closed-form
// test configurations: the runner computes its response analytically
// from the inserted bridge device instead of simulating, so a full
// GenerateAll run over the IV-converter macro costs microseconds and
// failure injection (panics, guaranteed stalls) is exact.

// chaosMeter returns a runner whose response is 1+x nominally, plus a
// deviation proportional to the conductance of any inserted bridge
// fault — so impact weakening shrinks the deviation exactly like a real
// sensitivity, and the impact loop converges to a critical level.
func chaosMeter(gain float64, boom func(*circuit.Circuit)) testcfg.Runner {
	return func(ckt *circuit.Circuit, T []float64) ([]float64, error) {
		if boom != nil {
			boom(ckt)
		}
		v := 1.0 + T[0]
		for _, name := range []string{"FB_Iin_Vout", "FB_Nmir_Vout"} {
			if r, ok := ckt.Device(name).(*device.Resistor); ok {
				v += gain * (0.2 + T[0]) * 1e3 / r.R
			}
		}
		return []float64{v}, nil
	}
}

// chaosConfigs builds two custom configurations; boom (may be nil) is
// invoked by the second one on every run, before measuring.
func chaosConfigs(boom func(*circuit.Circuit)) []*testcfg.Config {
	params := []testcfg.Param{{Name: "x", Unit: "", Lo: 0, Hi: 1, Seed: 0.5}}
	returns := []testcfg.Return{{Name: "v", Unit: "V", Accuracy: 1e-3}}
	return []*testcfg.Config{
		testcfg.NewCustom(101, "chaos-meter", params, returns, chaosMeter(1, nil)),
		testcfg.NewCustom(102, "chaos-victim", params, returns, chaosMeter(0.5, boom)),
	}
}

func chaosFaults() []fault.Fault {
	return []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 1e3),
		fault.NewBridge(macros.NodeNmir, macros.NodeVout, 1e3),
	}
}

func chaosSession(t *testing.T, cfgs []*testcfg.Config, mod func(*Config)) *Session {
	t.Helper()
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	cfg.Workers = 4
	if mod != nil {
		mod(&cfg)
	}
	s, err := NewSession(macros.IVConverter(), cfgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Retry != nil {
		t.Cleanup(func() { sim.SetDefaultRecovery(nil) })
	}
	return s
}

// TestPanicQuarantinesOnlyThatPair injects a device-model panic that
// fires only when one specific fault is inserted under one specific
// configuration: exactly that fault×config pair must be quarantined,
// the fault must still be detected through the surviving configuration,
// and the sibling fault must be untouched.
func TestPanicQuarantinesOnlyThatPair(t *testing.T) {
	boom := func(ckt *circuit.Circuit) {
		if ckt.Device("FB_Iin_Vout") != nil {
			panic("chaos: injected device-model panic")
		}
	}
	var buf bytes.Buffer
	tr := obs.New(obs.NewJournal(&buf))
	s := chaosSession(t, chaosConfigs(boom), func(c *Config) { c.Tracer = tr })
	sols, err := s.GenerateAll(chaosFaults())
	if err != nil {
		t.Fatalf("GenerateAll with injected panic aborted: %v", err)
	}
	tr.Finish(nil)
	for i, sol := range sols {
		if sol == nil {
			t.Fatalf("solution %d missing", i)
		}
	}

	q := s.Quarantined()
	if len(q) != 1 {
		t.Fatalf("quarantine records = %+v, want exactly one", q)
	}
	rec := q[0]
	if rec.FaultID != "bridge:Iin-Vout" || rec.ConfigID != 102 || rec.Phase != PhaseOptimize {
		t.Errorf("quarantined %s under config %d in phase %s, want bridge:Iin-Vout under 102 in %s",
			rec.FaultID, rec.ConfigID, rec.Phase, PhaseOptimize)
	}
	if !strings.Contains(rec.Value, "injected device-model panic") {
		t.Errorf("panic value %q lost the original message", rec.Value)
	}
	if rec.Stack == "" {
		t.Error("quarantine record has no stack trace")
	}

	// The victim fault still resolves through the surviving config.
	if v := sols[0].Verdict(); v != VerdictDetected {
		t.Errorf("victim fault verdict = %s, want %s", v, VerdictDetected)
	}
	if id := sols[0].ConfigID(s); id != 101 {
		t.Errorf("victim fault won config %d, want the surviving 101", id)
	}
	nq := 0
	for _, c := range sols[0].Candidates {
		if c.Quarantined {
			nq++
		}
	}
	if nq != 1 {
		t.Errorf("victim fault has %d quarantined candidates, want 1", nq)
	}
	// The sibling fault is untouched.
	if v := sols[1].Verdict(); v != VerdictDetected {
		t.Errorf("sibling fault verdict = %s, want %s", v, VerdictDetected)
	}
	for _, c := range sols[1].Candidates {
		if c.Quarantined {
			t.Error("sibling fault has a quarantined candidate")
		}
	}

	if st := s.Stats(); st.Quarantined != 1 {
		t.Errorf("Stats().Quarantined = %d, want 1", st.Quarantined)
	}
	if m := s.Metrics(); m.TaskPanics < 1 {
		t.Errorf("Metrics().TaskPanics = %d, want >= 1", m.TaskPanics)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"quarantine"`)) {
		t.Error("journal has no quarantine event")
	}
}

// TestAllConfigsPanicQuarantinedVerdict panics every configuration for
// one fault: no surviving candidate exists, so the fault must end as
// VerdictQuarantined with ConfigIdx -1, excluded from tests and
// tabulated as unresolved — while the run still completes.
func TestAllConfigsPanicQuarantinedVerdict(t *testing.T) {
	boom := func(ckt *circuit.Circuit) {
		if ckt.Device("FB_Iin_Vout") != nil {
			panic("chaos: total loss")
		}
	}
	params := []testcfg.Param{{Name: "x", Unit: "", Lo: 0, Hi: 1, Seed: 0.5}}
	returns := []testcfg.Return{{Name: "v", Unit: "V", Accuracy: 1e-3}}
	cfgs := []*testcfg.Config{
		testcfg.NewCustom(101, "boom-a", params, returns, chaosMeter(1, boom)),
		testcfg.NewCustom(102, "boom-b", params, returns, chaosMeter(0.5, boom)),
	}
	s := chaosSession(t, cfgs, nil)
	sols, err := s.GenerateAll(chaosFaults())
	if err != nil {
		t.Fatalf("GenerateAll aborted: %v", err)
	}
	sol := sols[0]
	if v := sol.Verdict(); v != VerdictQuarantined {
		t.Fatalf("verdict = %s, want %s", v, VerdictQuarantined)
	}
	if sol.ConfigIdx != -1 || sol.ConfigID(s) != -1 || sol.Params != nil {
		t.Errorf("quarantined solution carries a test: config %d params %v", sol.ConfigIdx, sol.Params)
	}
	if len(s.Quarantined()) != 2 {
		t.Errorf("quarantine records = %d, want 2 (both configs)", len(s.Quarantined()))
	}
	if tests := TestsOf(sols); len(tests) != 1 {
		t.Errorf("TestsOf kept %d tests, want 1 (sibling only)", len(tests))
	}
	d := s.Tabulate(sols)
	if d.Unresolved[fault.KindBridge] != 1 {
		t.Errorf("Tabulate unresolved = %v, want 1 bridge", d.Unresolved)
	}
	// The sibling is still fine.
	if v := sols[1].Verdict(); v != VerdictDetected {
		t.Errorf("sibling verdict = %s, want %s", v, VerdictDetected)
	}
}

// TestStallAbortsWithoutPolicyEndsUndeterminedWithOne pins both sides
// of the retry contract with a fault whose insertion always fails, so
// every objective evaluation is poisoned: without a policy the run
// aborts (the seed's fail-fast), with one the fault ends as
// VerdictUndetermined carrying the attempt history.
func TestStallAbortsWithoutPolicyEndsUndeterminedWithOne(t *testing.T) {
	bogus := fault.NewBridge("NoSuchNode", macros.NodeVout, 1e3)
	faults := []fault.Fault{chaosFaults()[0], bogus}

	// Fail-fast without a policy.
	s := chaosSession(t, chaosConfigs(nil), nil)
	if _, err := s.GenerateAll(faults); err == nil {
		t.Fatal("run with an uninsertable fault and no retry policy did not abort")
	}

	// Degraded completion with one.
	s = chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.Retry = &RetryPolicy{MaxAttempts: 3}
	})
	sols, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatalf("GenerateAll under retry policy aborted: %v", err)
	}
	sol := sols[1]
	if v := sol.Verdict(); v != VerdictUndetermined {
		t.Fatalf("stalled fault verdict = %s, want %s", v, VerdictUndetermined)
	}
	if sol.ConfigIdx != -1 || sol.Params != nil {
		t.Errorf("undetermined solution carries a test: config %d params %v", sol.ConfigIdx, sol.Params)
	}
	// 2 configs × 3 attempts each, with 2 retries per config.
	if sol.Attempts != 6 {
		t.Errorf("attempt history = %d, want 6", sol.Attempts)
	}
	st := s.Stats()
	if st.Retries != 4 {
		t.Errorf("Stats().Retries = %d, want 4", st.Retries)
	}
	if st.Undetermined != 1 {
		t.Errorf("Stats().Undetermined = %d, want 1", st.Undetermined)
	}
	for _, c := range sol.Candidates {
		if !c.Failed || c.Attempts != 3 {
			t.Errorf("candidate %+v, want Failed after 3 attempts", c)
		}
	}
	// The healthy fault is unaffected.
	if v := sols[0].Verdict(); v != VerdictDetected {
		t.Errorf("healthy fault verdict = %s, want %s", v, VerdictDetected)
	}
}

// solutionRecords flattens solutions for bit-exact comparison
// (SolutionRecord holds exactly the fields downstream stages consume).
func solutionRecords(sols []*Solution) []SolutionRecord {
	out := make([]SolutionRecord, len(sols))
	for i, sol := range sols {
		out[i] = recordOf(sol)
	}
	return out
}

// TestCheckpointResumeBitIdentical runs generation three ways — without
// checkpointing, with it, and resumed from a truncated checkpoint (a
// stand-in for a killed run) — and requires all three to produce
// bit-identical results.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	faults := chaosFaults()
	path := filepath.Join(t.TempDir(), "ckpt.json")

	baseline := chaosSession(t, chaosConfigs(nil), nil)
	want, err := baseline.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}

	// A checkpointed run writes a complete, versioned checkpoint.
	s := chaosSession(t, chaosConfigs(nil), func(c *Config) { c.CheckpointPath = path })
	got, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solutionRecords(want), solutionRecords(got)) {
		t.Fatalf("checkpointed run diverged:\n%+v\nwant\n%+v", solutionRecords(got), solutionRecords(want))
	}
	var cp Checkpoint
	if err := ckpt.Load(path, &cp); err != nil {
		t.Fatalf("final checkpoint unreadable: %v", err)
	}
	if cp.Version != CheckpointVersion || len(cp.Solutions) != len(faults) {
		t.Fatalf("checkpoint version %d with %d solutions, want %d with %d",
			cp.Version, len(cp.Solutions), CheckpointVersion, len(faults))
	}

	// Simulate a mid-run kill: drop one fault's record, resume, and
	// require the merged result to be bit-identical to the baseline.
	delete(cp.Solutions, faults[1].ID())
	if err := ckpt.Save(path, cp); err != nil {
		t.Fatal(err)
	}
	s = chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.CheckpointPath = path
		c.Resume = true
	})
	got, err = s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solutionRecords(want), solutionRecords(got)) {
		t.Fatalf("resumed run diverged:\n%+v\nwant\n%+v", solutionRecords(got), solutionRecords(want))
	}
	if !got[0].Resumed || got[1].Resumed {
		t.Errorf("Resumed flags = %v/%v, want restored/recomputed", got[0].Resumed, got[1].Resumed)
	}

	// A fully-resumed run restores everything and simulates nothing.
	s = chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.CheckpointPath = path
		c.Resume = true
	})
	got, err = s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solutionRecords(want), solutionRecords(got)) {
		t.Fatal("fully-resumed run diverged")
	}
	for i, sol := range got {
		if !sol.Resumed {
			t.Errorf("solution %d not marked Resumed", i)
		}
	}
	if st := s.Stats(); st.FaultyRuns != 0 {
		t.Errorf("fully-resumed run spent %d faulty simulations, want 0", st.FaultyRuns)
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint from a different run
// setup (here: a different fault list) must be refused, not silently
// merged.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	faults := chaosFaults()
	path := filepath.Join(t.TempDir(), "ckpt.json")
	s := chaosSession(t, chaosConfigs(nil), func(c *Config) { c.CheckpointPath = path })
	if _, err := s.GenerateAll(faults); err != nil {
		t.Fatal(err)
	}
	s = chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.CheckpointPath = path
		c.Resume = true
	})
	_, err := s.GenerateAll(faults[:1])
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("resume with a foreign checkpoint: err = %v, want fingerprint mismatch", err)
	}
}
