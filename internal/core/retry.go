package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/sim"
)

// poisonSF is the sensitivity value fed to the optimizer for evaluation
// points that cannot be computed (cancellation, nominal non-convergence):
// far above any real S_f, so the optimizer retreats. An optimization
// whose best value is still poisonSF never produced a single valid
// evaluation — the stall signal the retry policy keys on.
const poisonSF = 10

// Verdict is the terminal classification of one fault after generation.
// It refines the boolean Undetectable of the seed implementation with the
// failure-mode outcomes the fault-tolerant runtime can produce.
type Verdict string

const (
	// VerdictDetected: a test with S_f < 0 at the dictionary impact was
	// found (the normal outcome).
	VerdictDetected Verdict = "detected"
	// VerdictUndetectable: even the strongest allowed impact is detected
	// by no test — a property of the fault, not a runtime failure.
	VerdictUndetectable Verdict = "undetectable"
	// VerdictUndetermined: the runtime could not produce a usable test
	// (persistent non-convergence through every retry rung); the fault
	// needs manual attention but did not abort the run.
	VerdictUndetermined Verdict = "undetermined"
	// VerdictQuarantined: a panic in a device model (or other task code)
	// was isolated to this fault; every surviving configuration also
	// failed, so no test exists.
	VerdictQuarantined Verdict = "quarantined"
)

// RetryPolicy bounds how hard the runtime fights per-fault failures
// before giving up with VerdictUndetermined. The zero value (and a nil
// *RetryPolicy in Config) disables every mechanism, reproducing the
// seed's fail-fast behavior bit for bit.
type RetryPolicy struct {
	// MaxAttempts is the optimizer attempt budget per (fault,
	// configuration) pair. After a stalled attempt (no valid evaluation)
	// the optimizer restarts from a deterministically perturbed seed.
	// Values <= 1 mean a single attempt.
	MaxAttempts int
	// AttemptTimeout is the per-attempt deadline. An expired attempt is
	// treated as stalled and retried (or given up) under the same budget.
	// 0 disables per-attempt deadlines.
	AttemptTimeout time.Duration
	// SeedPerturbation is the restart jitter as a fraction of each
	// parameter's box range (default 0.15 when <= 0).
	SeedPerturbation float64
	// SimLadder is the relaxed-tolerance/raised-gmin re-solve ladder
	// installed into the simulation kernel (above its built-in gmin and
	// source stepping) for the session's lifetime. Nil selects
	// sim.StandardRecovery(); an empty non-nil ladder disables sim-level
	// recovery while keeping the optimizer-level retries.
	SimLadder []sim.Relaxation
}

// DefaultRetryPolicy returns the policy the resilience-minded callers
// use: three optimizer attempts, no per-attempt deadline, the standard
// simulation recovery ladder.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, SimLadder: sim.StandardRecovery()}
}

// attempts returns the effective optimizer attempt budget.
func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// ladder returns the simulation recovery rungs the policy installs.
func (p *RetryPolicy) ladder() []sim.Relaxation {
	if p == nil {
		return nil
	}
	if p.SimLadder == nil {
		return sim.StandardRecovery()
	}
	return p.SimLadder
}

// Quarantine reasons. A record's Reason tells the operator whether the
// task died loudly (a panic caught at the isolation boundary) or
// silently (the stall watchdog canceled it for producing no progress).
const (
	// QuarantinePanic: a panic in a device model (or other task code)
	// was isolated to this fault×config task.
	QuarantinePanic = "panic"
	// QuarantineStalled: the stall watchdog canceled the task after it
	// produced no objective evaluations for Config.StallTimeout.
	QuarantineStalled = "stalled"
)

// QuarantineRecord describes one isolated fault×config task: which pair
// died, why (panic or stall), and — for panics — the value and stack.
type QuarantineRecord struct {
	// FaultID identifies the fault ("" for non-generation tasks).
	FaultID string `json:"fault_id"`
	// ConfigID is the paper numbering of the configuration (-1 when the
	// task was not config-specific, e.g. a selection loop).
	ConfigID int `json:"config_id"`
	// Phase names the phase the failure occurred in.
	Phase string `json:"phase"`
	// Reason classifies the quarantine: QuarantinePanic or
	// QuarantineStalled.
	Reason string `json:"reason"`
	// Value is the stringified panic value (panic quarantines only).
	Value string `json:"value,omitempty"`
	// Stack is the panicking goroutine's stack trace.
	Stack string `json:"stack,omitempty"`
}

// quarantine records an isolated panic, journals it, and bumps the
// health counters. It is safe for concurrent use.
func (s *Session) quarantine(phase, faultID string, configID int, pe *engine.TaskPanicError) {
	rec := QuarantineRecord{
		FaultID:  faultID,
		ConfigID: configID,
		Phase:    phase,
		Reason:   QuarantinePanic,
		Value:    fmt.Sprint(pe.Value),
		Stack:    string(pe.Stack),
	}
	s.quarMu.Lock()
	s.quarantined = append(s.quarantined, rec)
	s.quarMu.Unlock()
	s.prog.AddQuarantined(1)
	s.tr.Emit("quarantine",
		obs.String("fault", faultID),
		obs.Int("config", configID),
		obs.String("phase", phase),
		obs.String("reason", QuarantinePanic),
		obs.String("panic", rec.Value))
}

// quarantineStall records a stall-watchdog quarantine: the task was
// canceled for producing no progress, there is no panic value or stack.
func (s *Session) quarantineStall(phase, faultID string, configID int) {
	rec := QuarantineRecord{
		FaultID:  faultID,
		ConfigID: configID,
		Phase:    phase,
		Reason:   QuarantineStalled,
	}
	s.quarMu.Lock()
	s.quarantined = append(s.quarantined, rec)
	s.quarMu.Unlock()
	s.prog.AddQuarantined(1)
	s.tr.Emit("quarantine",
		obs.String("fault", faultID),
		obs.Int("config", configID),
		obs.String("phase", phase),
		obs.String("reason", QuarantineStalled))
}

// Quarantined returns the panics isolated so far, sorted by fault then
// configuration for stable reporting.
func (s *Session) Quarantined() []QuarantineRecord {
	s.quarMu.Lock()
	out := make([]QuarantineRecord, len(s.quarantined))
	copy(out, s.quarantined)
	s.quarMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].FaultID != out[j].FaultID {
			return out[i].FaultID < out[j].FaultID
		}
		return out[i].ConfigID < out[j].ConfigID
	})
	return out
}

// perturbedSeed returns the deterministic restart point for the given
// attempt (attempt 0 is the configuration's own seed).
func (s *Session) perturbedSeed(f string, configID, attempt int, box opt.Box, seed []float64) []float64 {
	if attempt == 0 {
		return seed
	}
	frac := 0.15
	if p := s.cfg.Retry; p != nil && p.SeedPerturbation > 0 {
		frac = p.SeedPerturbation
	}
	salt := opt.SaltFrom(fmt.Sprintf("%s#%d", f, configID), attempt)
	return opt.PerturbedSeed(seed, box, salt, frac)
}
