package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
)

// The paper's motivation for compaction is production test cost: "the
// test set size is proportional to the number of tested faults which is
// undesirable". This file models that cost explicitly — every test
// configuration carries an application-time estimate — and orders a test
// set so that high-yield tests run first, which minimizes the expected
// time to first detection on faulty parts.

// ApplicationTime estimates how long one application of configuration
// t.ConfigIdx takes on ATE: the stimulus/measure window plus a fixed
// setup overhead per test. DC measurements settle in ~1 ms; the THD
// configuration needs its warm-up plus measured periods at the test's
// frequency; the step configurations take their 7.5 µs window.
func (s *Session) ApplicationTime(t Test) time.Duration {
	const setup = 500 * time.Microsecond
	c := s.configs[t.ConfigIdx]
	switch c.Name {
	case "thd":
		freq := 1e3
		if len(t.Params) > 1 && t.Params[1] > 0 {
			freq = t.Params[1]
		}
		return setup + time.Duration(5/freq*float64(time.Second))
	case "step-integral", "step-peak":
		return setup + 7500*time.Nanosecond
	default: // DC configurations
		return setup + time.Millisecond
	}
}

// SetTime sums the application time over a test set.
func (s *Session) SetTime(tests []Test) time.Duration {
	var total time.Duration
	for _, t := range tests {
		total += s.ApplicationTime(t)
	}
	return total
}

// ScheduleEntry is one test of an ordered schedule with its yield
// statistics against the fault dictionary.
type ScheduleEntry struct {
	Test
	// NewDetections is the number of dictionary faults this test is the
	// first to detect under the schedule order.
	NewDetections int
	// Time is the estimated application time.
	Time time.Duration
}

// Schedule orders a test set greedily by marginal fault yield per unit
// ATE time. It is ScheduleContext with context.Background().
func (s *Session) Schedule(tests []Test, faults []fault.Fault) ([]ScheduleEntry, []string, error) {
	return s.ScheduleContext(context.Background(), tests, faults)
}

// ScheduleContext orders a test set greedily by marginal fault yield per
// unit ATE time: at each step the test covering the most not-yet-detected
// faults per second goes next. Tests that add no coverage are appended
// at the end (they still consume tester time but catch nothing new).
// It also returns the fault IDs no test in the set detects. The
// underlying (test, fault) detection matrix is filled on the engine's
// work-stealing pool; cancellation of ctx aborts the run promptly with
// an error wrapping ErrCanceled.
func (s *Session) ScheduleContext(ctx context.Context, tests []Test, faults []fault.Fault) ([]ScheduleEntry, []string, error) {
	// Detection matrix, one pool task per (test, fault) pair.
	detects := make([][]bool, len(tests))
	for ti := range tests {
		detects[ti] = make([]bool, len(faults))
	}
	nf := len(faults)
	err := s.eng.ForEach(ctx, len(tests)*nf, func(ctx context.Context, k int) error {
		defer s.eng.Time(PhaseSchedule)()
		ti, fi := k/nf, k%nf
		t, f := tests[ti], faults[fi]
		fd := f.WithImpact(f.InitialImpact())
		sf, err := s.Sensitivity(t.ConfigIdx, fd, t.Params)
		if err != nil {
			return fmt.Errorf("core: schedule matrix for %s: %w", f.ID(), err)
		}
		detects[ti][fi] = sf < 0
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	covered := make([]bool, len(faults))
	used := make([]bool, len(tests))
	var order []ScheduleEntry
	for range tests {
		best, bestRate, bestNew := -1, -1.0, 0
		for ti := range tests {
			if used[ti] {
				continue
			}
			n := 0
			for fi := range faults {
				if detects[ti][fi] && !covered[fi] {
					n++
				}
			}
			rate := float64(n) / s.ApplicationTime(tests[ti]).Seconds()
			if rate > bestRate {
				best, bestRate, bestNew = ti, rate, n
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		for fi := range faults {
			if detects[best][fi] {
				covered[fi] = true
			}
		}
		order = append(order, ScheduleEntry{
			Test:          tests[best],
			NewDetections: bestNew,
			Time:          s.ApplicationTime(tests[best]),
		})
	}
	var undetected []string
	for fi, ok := range covered {
		if !ok {
			undetected = append(undetected, faults[fi].ID())
		}
	}
	return order, undetected, nil
}

// Prune drops the tests that add no marginal detection at the faults'
// dictionary impacts, using the greedy schedule as the keep order. The
// result covers exactly the same faults with (usually far) fewer tests.
//
// Pruning trades away the compaction algorithm's sensitivity guarantee:
// a kept test detects the reassigned faults, but not necessarily within
// the δ budget of their per-fault optima. Use it when raw dictionary
// coverage per tester-second is the objective. It is PruneContext with
// context.Background().
func (s *Session) Prune(tests []Test, faults []fault.Fault) ([]Test, error) {
	return s.PruneContext(context.Background(), tests, faults)
}

// PruneContext is Prune honoring ctx during the schedule's detection
// matrix fill.
func (s *Session) PruneContext(ctx context.Context, tests []Test, faults []fault.Fault) ([]Test, error) {
	order, _, err := s.ScheduleContext(ctx, tests, faults)
	if err != nil {
		return nil, err
	}
	var kept []Test
	for _, e := range order {
		if e.NewDetections > 0 {
			kept = append(kept, e.Test)
		}
	}
	return kept, nil
}
