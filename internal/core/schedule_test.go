package core

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/testcfg"
)

// allConfigs returns the full five-configuration list for tests that
// need the transient configurations.
func allConfigs() []*testcfg.Config { return testcfg.IVConfigs() }

func TestApplicationTimePerConfig(t *testing.T) {
	s := dcSession(t)
	dc := s.ApplicationTime(Test{ConfigIdx: 0, Params: []float64{20e-6}})
	if dc < time.Millisecond || dc > 5*time.Millisecond {
		t.Errorf("DC application time = %v, want ~1.5 ms", dc)
	}
}

func TestApplicationTimeTHDScalesWithFrequency(t *testing.T) {
	// Need the full config list to exercise the THD branch.
	cfg := DefaultConfig()
	cfg.BoxMode = BoxSeed
	s, err := NewSession(macros.IVConverter(), allConfigs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	thdIdx := 2
	slow := s.ApplicationTime(Test{ConfigIdx: thdIdx, Params: []float64{20e-6, 1e3}})
	fast := s.ApplicationTime(Test{ConfigIdx: thdIdx, Params: []float64{20e-6, 100e3}})
	if slow <= fast {
		t.Errorf("1 kHz THD (%v) should take longer than 100 kHz (%v)", slow, fast)
	}
	// 5 periods at 1 kHz = 5 ms plus setup.
	if slow < 5*time.Millisecond {
		t.Errorf("1 kHz THD time = %v, want >= 5 ms", slow)
	}
}

func TestSetTimeSums(t *testing.T) {
	s := dcSession(t)
	tests := []Test{
		{ConfigIdx: 0, Params: []float64{10e-6}},
		{ConfigIdx: 1, Params: []float64{20e-6}},
	}
	total := s.SetTime(tests)
	want := s.ApplicationTime(tests[0]) + s.ApplicationTime(tests[1])
	if total != want {
		t.Errorf("SetTime = %v, want %v", total, want)
	}
}

func TestScheduleOrdersByYield(t *testing.T) {
	s := dcSession(t)
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3),
		fault.NewBridge("0", macros.NodeVdd, 10e3),
		fault.NewBridge(macros.NodeVref, macros.NodeIin, 10e3),
	}
	// Test 0 detects nothing interesting (weak parameters at 0 current),
	// test 1 detects the supply bridge, test 2 the DC faults.
	tests := []Test{
		{ConfigIdx: 1, Params: []float64{20e-6}}, // supply current
		{ConfigIdx: 0, Params: []float64{20e-6}}, // dc-out
	}
	order, undetected, err := s.Schedule(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("schedule length = %d", len(order))
	}
	// The first scheduled test must contribute at least as many new
	// detections as the second.
	if order[0].NewDetections < order[1].NewDetections {
		t.Errorf("schedule not ordered by yield: %d then %d",
			order[0].NewDetections, order[1].NewDetections)
	}
	totalNew := order[0].NewDetections + order[1].NewDetections
	if totalNew+len(undetected) != len(faults) {
		t.Errorf("accounting: %d new + %d undetected != %d faults",
			totalNew, len(undetected), len(faults))
	}
	for _, e := range order {
		if e.Time <= 0 {
			t.Error("schedule entry without time estimate")
		}
	}
}

func TestScheduleAllUndetected(t *testing.T) {
	s := dcSession(t)
	faults := []fault.Fault{
		fault.NewBridge(macros.NodeIin, macros.NodeVout, 1e9), // invisible
	}
	tests := []Test{{ConfigIdx: 0, Params: []float64{20e-6}}}
	_, undetected, err := s.Schedule(tests, faults)
	if err != nil {
		t.Fatal(err)
	}
	if len(undetected) != 1 {
		t.Errorf("undetected = %v, want the invisible fault", undetected)
	}
}
