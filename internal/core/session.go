// Package core implements the paper's test-generation methodology on top
// of the simulation substrate: the sensitivity cost function S_f over
// tolerance boxes, tps-graphs, fault-specific test generation with
// impact manipulation (Fig. 6), test-set compaction with the δ loss
// budget (§4.1), and fault-coverage evaluation of a test set.
//
// All parallel evaluation flows through internal/engine: a work-stealing
// worker pool with context cancellation, a sharded single-flight nominal
// cache, and per-phase metrics (see Session.Metrics).
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/hist"
	"repro/internal/sim"
	"repro/internal/testcfg"
	"repro/internal/tolerance"
)

// DetectedSentinel is the sensitivity value reported when the faulty
// circuit cannot be simulated at all (no convergence): such a
// catastrophic defect trivially fails any test, so it counts as a strong
// detection while keeping the cost function finite for the optimizer.
const DetectedSentinel = -1e3

// BoxMode selects how tolerance-box functions are built for a session.
type BoxMode int

const (
	// BoxGrid samples process corners on a grid over each configuration's
	// parameter space and interpolates (the full box-function build).
	BoxGrid BoxMode = iota
	// BoxSeed calibrates a constant box from corner runs at the seed
	// parameters only. Much cheaper; used by tests and quick runs.
	BoxSeed
	// BoxMonteCarlo calibrates a constant box from random process samples
	// at the seed parameters (tolerance.MonteCarloDeviation) instead of
	// deterministic corners.
	BoxMonteCarlo
)

// Config tunes a Session.
type Config struct {
	// BoxMode selects the box-function construction (default BoxGrid).
	BoxMode BoxMode
	// BoxGridN is the per-axis sample count for BoxGrid (default 5).
	BoxGridN int
	// Corners are the process corners for box construction.
	Corners []tolerance.Corner
	// Workers bounds the parallelism of evaluation (default:
	// runtime.GOMAXPROCS(0)).
	Workers int
	// CacheEntries bounds the nominal-response cache size (total entries
	// across shards; default 65536).
	CacheEntries int
	// OptTol is the optimizer tolerance (default 1e-3).
	OptTol float64
	// SoftImpactFactor is the impact-weakening factor applied before
	// per-configuration optimization so the fault model sits in its
	// soft-fault tps region (§3.2; default 4).
	SoftImpactFactor float64
	// MinImpact is the strongest model resistance the impact loop may
	// reach before declaring a fault undetectable (default 1 Ω).
	MinImpact float64
	// MaxImpact caps impact weakening (default 1e9 Ω).
	MaxImpact float64
	// MCSamples is the sample count for BoxMonteCarlo (default 32).
	MCSamples int
	// MCSeed seeds the BoxMonteCarlo RNG for reproducible boxes.
	MCSeed int64
	// Tracer, when non-nil, receives a span/event record of the run:
	// per-phase and per-task spans, per-optimizer-iteration S_f events,
	// fault verdicts, nominal-cache hits and misses, and per-analysis
	// solver spans. Nil (the default) disables tracing; instrumented
	// paths then cost a nil check.
	Tracer *obs.Tracer
	// Progress, when non-nil, tracks phase/unit completion for live
	// export (/progress). Nil disables the tracking.
	Progress *obs.Progress
	// Retry, when non-nil, enables the fault-tolerant retry machinery:
	// perturbed optimizer restarts, per-attempt deadlines, and the
	// simulation-level recovery ladder. Nil (the default) reproduces the
	// fail-fast seed behavior exactly.
	Retry *RetryPolicy
	// CheckpointPath, when non-empty, enables crash-safe checkpointing of
	// per-fault generation results to the given file (atomic rename +
	// fsync on every write).
	CheckpointPath string
	// CheckpointEvery debounces checkpoint writes (default 2s; results
	// are also flushed on completion and on cancellation).
	CheckpointEvery time.Duration
	// Resume makes GenerateAllContext skip faults already completed in
	// the checkpoint file, after verifying its version and fingerprint.
	Resume bool
	// DisableFastPath turns off the retained-evaluator / low-rank solve
	// fast path (fastpath.go), forcing every sensitivity evaluation
	// through the throwaway insert+rebuild path. Results are bit-identical
	// either way; the switch exists for benchmarking the speedup and for
	// the identity property tests.
	DisableFastPath bool
	// CrossCheck runs every fast-path sensitivity evaluation through the
	// throwaway path as well and fails the run when the two disagree
	// beyond 1e-9 — the debug mode backing the fast path's
	// bit-transparency claim. Expensive; off by default.
	CrossCheck bool
	// StallTimeout arms the per-attempt stall watchdog: a fault×config
	// optimization that produces no objective evaluations for this long
	// is canceled and quarantined with reason "stalled". 0 (the default)
	// disables the watchdog.
	StallTimeout time.Duration
	// BreakerFallbacks arms the low-rank circuit breaker: when the
	// session's woodbury_fallbacks counter grows by at least this many
	// within BreakerWindow, the session is pinned to the slow path for
	// BreakerCooldown. 0 (the default) disables the breaker.
	BreakerFallbacks int
	// BreakerWindow is the breaker's rate window (default 1s).
	BreakerWindow time.Duration
	// BreakerCooldown is how long a tripped breaker holds the session on
	// the slow path (default 5s).
	BreakerCooldown time.Duration
}

// DefaultConfig returns the settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		BoxMode:          BoxGrid,
		BoxGridN:         5,
		Corners:          tolerance.DefaultCorners(),
		Workers:          0, // GOMAXPROCS
		OptTol:           1e-3,
		SoftImpactFactor: 4,
		MinImpact:        1,
		MaxImpact:        1e9,
	}
}

// Session binds a golden macro netlist to its test configurations and
// tolerance-box functions, and memoizes nominal responses in a sharded
// single-flight cache. A Session is safe for concurrent use.
type Session struct {
	golden  *circuit.Circuit
	configs []*testcfg.Config
	boxes   []tolerance.BoxFunc
	cfg     Config
	eng     *engine.Engine
	tr      *obs.Tracer   // nil: tracing disabled
	prog    *obs.Progress // nil: progress tracking disabled

	nominalRuns atomic.Int64
	cacheHits   atomic.Int64
	faultyRuns  atomic.Int64
	faultyFails atomic.Int64

	retries      atomic.Int64
	undetermined atomic.Int64
	quarMu       sync.Mutex
	quarantined  []QuarantineRecord

	// solverBase is the kernel's process-wide totals at construction;
	// session-scoped counters subtract it.
	solverBase engine.SolverStats
	// brk is the low-rank circuit breaker (nil when disarmed).
	brk *breaker
}

// Stats summarizes the simulation effort a session has spent — the
// paper's stated cost metric ("global optimization requires a much
// larger amount of simulations which we consider unacceptable").
type Stats struct {
	// NominalRuns counts fault-free measurement simulations.
	NominalRuns int64
	// CacheHits counts nominal evaluations served from the memo
	// (including callers that joined an in-flight simulation).
	CacheHits int64
	// FaultyRuns counts faulty-circuit measurement simulations.
	FaultyRuns int64
	// FaultyFailures counts faulty runs that did not converge (reported
	// as DetectedSentinel).
	FaultyFailures int64
	// Retries counts perturbed optimizer restarts taken under the retry
	// policy.
	Retries int64
	// Undetermined counts faults that ended as VerdictUndetermined.
	Undetermined int64
	// Quarantined counts fault×config tasks isolated after a panic.
	Quarantined int64
}

// solverSnapshot reads the simulation kernel's process-wide totals in
// the engine's snapshot shape.
func solverSnapshot() engine.SolverStats {
	t := sim.Totals()
	return engine.SolverStats{
		Stamps:           t.Stamps,
		Factorizations:   t.Factorizations,
		FactorReuses:     t.FactorReuses,
		NewtonIterations: t.NewtonIterations,
		Solves:           t.Solves,
		BaseBuilds:       t.BaseBuilds,
		BaseHits:         t.BaseHits,
		RecoveryAttempts: t.RecoveryAttempts,
		Recoveries:       t.Recoveries,

		WoodburySolves:      t.WoodburySolves,
		WoodburyFallbacks:   t.WoodburyFallbacks,
		FaultyFactorAvoided: t.FaultyFactorAvoided,
	}
}

// Stats returns a snapshot of the session's simulation counters.
func (s *Session) Stats() Stats {
	s.quarMu.Lock()
	nq := int64(len(s.quarantined))
	s.quarMu.Unlock()
	return Stats{
		NominalRuns:    s.nominalRuns.Load(),
		CacheHits:      s.cacheHits.Load(),
		FaultyRuns:     s.faultyRuns.Load(),
		FaultyFailures: s.faultyFails.Load(),
		Retries:        s.retries.Load(),
		Undetermined:   s.undetermined.Load(),
		Quarantined:    nq,
	}
}

// Metrics snapshots the evaluation engine's observability counters:
// per-phase wall-clock timings (box build, per-config optimization,
// impact loops, fault simulation, tps sweeps) and nominal-cache
// effectiveness.
func (s *Session) Metrics() engine.Metrics { return s.eng.Metrics() }

// NewSession builds the box functions (corner simulations) and returns a
// ready session. It is NewSessionContext with context.Background().
func NewSession(golden *circuit.Circuit, configs []*testcfg.Config, cfg Config) (*Session, error) {
	return NewSessionContext(context.Background(), golden, configs, cfg)
}

// NewSessionContext builds a session, honoring ctx during the (possibly
// expensive) tolerance-box construction. Returns an error wrapping
// ErrNoConfigs when configs is empty, and one wrapping ErrCanceled when
// ctx ends before the boxes are built.
func NewSessionContext(ctx context.Context, golden *circuit.Circuit, configs []*testcfg.Config, cfg Config) (*Session, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("%w (macro %q)", ErrNoConfigs, golden.Name())
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BoxGridN < 2 {
		cfg.BoxGridN = 5
	}
	if cfg.OptTol <= 0 {
		cfg.OptTol = 1e-3
	}
	if cfg.SoftImpactFactor <= 1 {
		cfg.SoftImpactFactor = 4
	}
	if cfg.MinImpact <= 0 {
		cfg.MinImpact = 1
	}
	if cfg.MaxImpact <= cfg.MinImpact {
		cfg.MaxImpact = 1e9
	}
	if len(cfg.Corners) == 0 {
		cfg.Corners = tolerance.DefaultCorners()
	}
	s := &Session{
		golden:  golden,
		configs: configs,
		cfg:     cfg,
		tr:      cfg.Tracer,
		prog:    cfg.Progress,
		eng: engine.New(engine.Options{
			Workers:      cfg.Workers,
			CacheEntries: cfg.CacheEntries,
		}),
	}
	s.eng.SetTracer(cfg.Tracer)
	if cfg.Retry != nil {
		// Install the policy's re-solve ladder as the simulation kernel's
		// default recovery. The hook is package-wide for the same reason
		// the trace hook and counter totals are: engines are built deep
		// inside test-configuration closures. With one active session at a
		// time (the CLI case) attribution is clean; sessions without a
		// policy never install anything, so their solves stay bit-identical
		// to the ladder-free kernel.
		sim.SetDefaultRecovery(cfg.Retry.ladder())
	}
	if cfg.Tracer.Enabled() {
		// Surface per-analysis solver spans. The hook is package-wide for
		// the same reason the counter totals are (engines are built deep
		// inside configuration closures); with one traced session at a
		// time — the CLI case — attribution is clean.
		tr := cfg.Tracer
		sim.SetTraceHook(func(analysis string, d time.Duration, delta sim.Counters) {
			tr.Complete("sim."+analysis, d,
				obs.I64("stamps", int64(delta.Stamps)),
				obs.I64("factorizations", int64(delta.Factorizations)),
				obs.I64("factor_reuses", int64(delta.FactorReuses)),
				obs.I64("newton_iters", int64(delta.NewtonIterations)),
				obs.I64("solves", int64(delta.Solves)),
				obs.I64("base_hits", int64(delta.BaseHits)),
				obs.I64("woodbury_solves", int64(delta.WoodburySolves)),
				obs.I64("woodbury_fallbacks", int64(delta.WoodburyFallbacks)),
				obs.I64("faulty_factor_avoided", int64(delta.FaultyFactorAvoided)))
		})
	}
	// Surface the simulation kernel's counters in engine metrics.
	// Engines are built deep inside test-configuration closures, so the
	// kernel's process-wide totals are the observation point. Snapshots
	// are scoped to this session's lifetime by subtracting the totals at
	// construction time, so a session started inside a long-running
	// process (a job server that has already executed other jobs) reports
	// only its own work. Jobs running concurrently in one process still
	// share the process-wide counters — their solver sections then report
	// combined activity over the job's lifetime, which the server
	// documents.
	base := solverSnapshot()
	s.solverBase = base
	s.eng.SetSolverSource(func() engine.SolverStats {
		return solverSnapshot().Sub(base)
	})
	if s.brk = newBreaker(s); s.brk != nil {
		brk := s.brk
		s.eng.SetBreakerSource(func() engine.BreakerStats { return brk.stats() })
	}
	// Same scoping for the kernel's per-analysis latency histograms: the
	// session reports the distribution of work done since it was built.
	// Min/Max in the scoped snapshots remain process-lifetime extremes
	// (they cannot be subtracted); counts, sums and buckets are exact.
	histBase := sim.HistSnapshots()
	s.eng.SetDurationSource(func() []hist.NamedSnapshot {
		return hist.SubNamed(sim.HistSnapshots(), histBase)
	})
	boxes, err := s.buildBoxes(ctx)
	if err != nil {
		return nil, err
	}
	s.boxes = boxes
	return s, nil
}

// Golden returns the fault-free macro.
func (s *Session) Golden() *circuit.Circuit { return s.golden }

// Config returns the session's effective configuration (defaults
// applied). Callers use it to reconstruct the wire request a session
// corresponds to; mutating the returned copy has no effect.
func (s *Session) Config() Config { return s.cfg }

// Configs returns the session's test configurations.
func (s *Session) Configs() []*testcfg.Config { return s.configs }

// Box returns the tolerance-box function for configuration index ci.
func (s *Session) Box(ci int) tolerance.BoxFunc { return s.boxes[ci] }

// engineForEach exposes the session's pool to the other core files.
func (s *Session) engineForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return s.eng.ForEach(ctx, n, fn)
}

// cornerDeviation runs the fault-free circuit at every corner and
// returns the max deviation per return value at parameters T.
func (s *Session) cornerDeviation(c *testcfg.Config, T []float64) ([]float64, error) {
	nom, err := c.Run(s.golden, T)
	if err != nil {
		return nil, err
	}
	var corners [][]float64
	for _, k := range s.cfg.Corners {
		ck := tolerance.Apply(s.golden, k)
		r, err := c.Run(ck, T)
		if err != nil {
			return nil, fmt.Errorf("corner %s: %w", k.Name, err)
		}
		corners = append(corners, r)
	}
	return tolerance.MaxDeviation(nom, corners), nil
}

// buildBoxes constructs one box function per configuration on the
// engine pool.
func (s *Session) buildBoxes(ctx context.Context) ([]tolerance.BoxFunc, error) {
	s.prog.SetPhase(PhaseBoxBuild, len(s.configs))
	boxes := make([]tolerance.BoxFunc, len(s.configs))
	err := s.eng.ForEach(ctx, len(s.configs), func(ctx context.Context, i int) error {
		defer s.eng.Time(PhaseBoxBuild)()
		defer s.prog.Step(1)
		c := s.configs[i]
		ctx, sp := s.tr.Start(ctx, "box-build", obs.Int("config", c.ID))
		defer sp.End()
		switch s.cfg.BoxMode {
		case BoxSeed:
			dev, err := s.cornerDeviation(c, c.Seeds())
			if err != nil {
				return fmt.Errorf("core: box for config #%d: %w", c.ID, err)
			}
			acc := c.Accuracies()
			hw := make(tolerance.ConstBox, len(dev))
			for r := range dev {
				hw[r] = dev[r] + acc[r]
			}
			boxes[i] = hw
		case BoxMonteCarlo:
			n := s.cfg.MCSamples
			if n <= 0 {
				n = 32
			}
			seeds := c.Seeds()
			dev, err := tolerance.MonteCarloDeviation(s.golden, tolerance.DefaultSpread(), n,
				s.cfg.MCSeed+int64(i), func(ck *circuit.Circuit) ([]float64, error) {
					return c.Run(ck, seeds)
				})
			if err != nil {
				return fmt.Errorf("core: MC box for config #%d: %w", c.ID, err)
			}
			acc := c.Accuracies()
			hw := make(tolerance.ConstBox, len(dev))
			for r := range dev {
				hw[r] = dev[r] + acc[r]
			}
			boxes[i] = hw
		default: // BoxGrid
			b := c.Bounds()
			gb, err := tolerance.BuildGridBox(b.Lo, b.Hi, s.cfg.BoxGridN, c.Accuracies(),
				func(T []float64) ([]float64, error) { return s.cornerDeviation(c, T) })
			if err != nil {
				return fmt.Errorf("core: box for config #%d: %w", c.ID, err)
			}
			boxes[i] = gb
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return boxes, nil
}

// nomKey quantizes a parameter vector into a cache key.
func nomKey(ci int, T []float64) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(ci))
	for _, v := range T {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(v, 'e', 12, 64))
	}
	return b.String()
}

// Nominal returns the fault-free return values of configuration ci at
// parameters T, memoized in the sharded single-flight cache: concurrent
// misses on the same parameter point run one simulation and share it.
func (s *Session) Nominal(ci int, T []float64) ([]float64, error) {
	r, hit, err := s.eng.Cache().GetOrCompute(nomKey(ci, T), func() ([]float64, error) {
		s.nominalRuns.Add(1)
		return s.configs[ci].Run(s.golden, T)
	})
	if hit {
		s.cacheHits.Add(1)
		s.tr.Emit("cache_hit", obs.Int("config", s.configs[ci].ID))
	} else if err == nil {
		s.tr.Emit("cache_miss", obs.Int("config", s.configs[ci].ID))
	}
	return r, err
}

// Sensitivity evaluates the paper's cost function for fault f under
// configuration ci at parameters T:
//
//	S_f(T) = min_i ( 1 − |r_f,i(T) − r_nom,i(T)| / r_box,i(T) )
//
// S_f = 1 means the faulty response coincides with the nominal one
// (insensitive); S_f < 0 means guaranteed detection. When the faulty
// circuit cannot be simulated, DetectedSentinel is returned (see its
// doc).
func (s *Session) Sensitivity(ci int, f fault.Fault, T []float64) (float64, error) {
	nom, err := s.Nominal(ci, T)
	if err != nil {
		return 0, fmt.Errorf("core: nominal for config #%d at %v: %w", s.configs[ci].ID, T, err)
	}
	faulty, err := f.Insert(s.golden)
	if err != nil {
		return 0, err
	}
	s.faultyRuns.Add(1)
	rf, err := s.configs[ci].Run(faulty, T)
	if err != nil {
		// Catastrophically broken circuit: counts as detected.
		s.faultyFails.Add(1)
		return DetectedSentinel, nil
	}
	box := s.boxes[ci].Halfwidths(T)
	sf := math.Inf(1)
	for i := range nom {
		hw := box[i]
		if hw <= 0 {
			hw = 1e-12
		}
		v := 1 - math.Abs(rf[i]-nom[i])/hw
		if v < sf {
			sf = v
		}
	}
	return sf, nil
}

// Detects reports whether configuration ci at parameters T detects fault
// f (S_f < 0).
func (s *Session) Detects(ci int, f fault.Fault, T []float64) (bool, error) {
	sf, err := s.Sensitivity(ci, f, T)
	if err != nil {
		return false, err
	}
	return sf < 0, nil
}
