package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/obs"
)

// This file is the generation core's distributed seam. A coordinator
// partitions the fault dictionary, ships each shard (as fault IDs plus
// the originating request) to a worker, and folds the workers' records
// back into one run through a MergeRun. Both halves reuse the
// checkpoint machinery: GenerateShardContext is a thin shard-tagged
// wrapper over GenerateAllContext, and MergeRun is openCheckpoint's
// record map fed from the wire instead of from the local pool — which
// is what makes a distributed run byte-identical to a local one, and a
// coordinator restart resume from whatever shards had already merged.

// GenerateShardContext generates tests for one shard of a distributed
// run: GenerateAllContext restricted to the given faults, wrapped in a
// "shard" span so the worker's journal attributes its work. The session
// should have checkpointing disabled — durability of a distributed run
// lives in the coordinator's merge checkpoint, not on workers.
func (s *Session) GenerateShardContext(ctx context.Context, shardID string, faults []fault.Fault) ([]*Solution, error) {
	ctx, sp := s.tr.Start(ctx, "shard",
		obs.String("shard", shardID), obs.Int("faults", len(faults)))
	sols, err := s.GenerateAllContext(ctx, faults)
	sp.End(obs.Bool("ok", err == nil))
	return sols, err
}

// RecordOf returns the checkpoint-record serialization of a completed
// solution — the minimal field set proven sufficient to rebuild the
// solution bit-identically. Shard results travel the wire in exactly
// this shape.
func RecordOf(sol *Solution) SolutionRecord { return recordOf(sol) }

// Restore rebuilds a Solution from its record for the given fault. The
// solution is marked Resumed (restored rather than computed);
// candidates and the impact trace are absent, as after a checkpoint
// resume.
func (r SolutionRecord) Restore(f fault.Fault) *Solution { return r.solution(f) }

// FaultsByID resolves fault IDs against a dictionary slice, preserving
// the dictionary's order (not the order of ids). Unknown IDs are an
// error — a shard request referencing faults this session does not have
// means coordinator and worker disagree about the macro.
func FaultsByID(faults []fault.Fault, ids []string) ([]fault.Fault, error) {
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	out := make([]fault.Fault, 0, len(ids))
	for _, f := range faults {
		if want[f.ID()] {
			out = append(out, f)
			delete(want, f.ID())
		}
	}
	if len(want) != 0 {
		for id := range want {
			return nil, fmt.Errorf("core: unknown fault id %q in shard", id)
		}
	}
	return out, nil
}

// MergeRun accumulates per-fault records of a distributed run and
// rebuilds the dictionary-ordered solution slice a local
// GenerateAllContext would have produced. It shares the session's
// checkpoint machinery: with Config.CheckpointPath set, merged records
// persist with the same debounce and atomic-rename discipline as local
// runs, and with Config.Resume a compatible checkpoint pre-fills
// already-solved faults — so a restarted coordinator reshards only the
// remainder. The checkpoint fingerprint ignores worker count and
// sharding entirely, so a single-node checkpoint resumes into a
// distributed run and vice versa.
//
// MergeRun is safe for concurrent use; duplicate records for a fault
// are ignored (results are deterministic, so the first merged record is
// as good as any).
type MergeRun struct {
	s      *Session
	faults []fault.Fault
	index  map[string]int
	cs     *ckptState

	mu   sync.Mutex
	sols []*Solution
	done int
}

// OpenMerge starts the coordinator side of a distributed run over the
// given fault dictionary slice.
func (s *Session) OpenMerge(faults []fault.Fault) (*MergeRun, error) {
	cs, resumed, err := s.openCheckpoint(faults)
	if err != nil {
		return nil, err
	}
	m := &MergeRun{
		s:      s,
		faults: faults,
		index:  make(map[string]int, len(faults)),
		cs:     cs,
		sols:   make([]*Solution, len(faults)),
	}
	for fi, f := range faults {
		m.index[f.ID()] = fi
		if sol, ok := resumed[f.ID()]; ok {
			m.sols[fi] = sol
			m.done++
		}
	}
	if m.done > 0 {
		s.prog.AddResumed(m.done)
		s.tr.Emit("resume", obs.Int("skipped", m.done), obs.Int("total", len(faults)))
	}
	return m, nil
}

// Pending returns the faults not yet solved, in dictionary order — the
// set the coordinator partitions into shards.
func (m *MergeRun) Pending() []fault.Fault {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []fault.Fault
	for fi, f := range m.faults {
		if m.sols[fi] == nil {
			out = append(out, f)
		}
	}
	return out
}

// Remaining returns the number of faults still unsolved.
func (m *MergeRun) Remaining() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.faults) - m.done
}

// Record folds one fault's wire record into the run and feeds the
// debounced checkpoint. Records for faults outside the dictionary are
// an error; records for already-solved faults are ignored.
func (m *MergeRun) Record(rec SolutionRecord) error {
	m.mu.Lock()
	fi, ok := m.index[rec.FaultID]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("core: merge: record for unknown fault %q", rec.FaultID)
	}
	if m.sols[fi] != nil {
		m.mu.Unlock()
		return nil
	}
	sol := rec.solution(m.faults[fi])
	m.sols[fi] = sol
	m.done++
	m.mu.Unlock()
	if m.cs != nil {
		m.cs.record(sol)
	}
	return nil
}

// Solutions returns the complete dictionary-ordered solutions and
// flushes the checkpoint. It is an error to call before every fault has
// a record.
func (m *MergeRun) Solutions() ([]*Solution, error) {
	m.mu.Lock()
	if m.done != len(m.faults) {
		n := len(m.faults) - m.done
		m.mu.Unlock()
		return nil, fmt.Errorf("core: merge incomplete: %d faults unsolved", n)
	}
	sols := m.sols
	m.mu.Unlock()
	if m.cs != nil {
		if err := m.cs.flush(); err != nil {
			return sols, fmt.Errorf("core: final checkpoint: %w", err)
		}
	}
	return sols, nil
}

// Flush best-effort persists the merge checkpoint — the abort-path
// twin of Solutions, so a canceled or failed distributed run still
// resumes from its merged faults.
func (m *MergeRun) Flush() { flushCheckpoint(m.cs) }
