package core

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/macros"
	"repro/internal/testcfg"
)

// TestShardMergeBitIdentical is the distributed-identity property at
// the core level: generating shards on independent sessions and merging
// their records — in an order unlike the dictionary's — must rebuild
// exactly the records a single local run produces.
func TestShardMergeBitIdentical(t *testing.T) {
	faults := fastFaultMix()

	localSols, err := fastSession(t, false).GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}

	coord := fastSession(t, false)
	merge, err := coord.OpenMerge(faults)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(merge.Pending()); got != len(faults) {
		t.Fatalf("Pending() = %d faults, want %d", got, len(faults))
	}

	// Two shards on fresh worker sessions, merged back-to-front.
	shards := [][]int{{2, 3}, {0, 1}}
	for si, idxs := range shards {
		worker := fastSession(t, false)
		var shardFaults []string
		for _, fi := range idxs {
			shardFaults = append(shardFaults, faults[fi].ID())
		}
		fs, err := FaultsByID(faults, shardFaults)
		if err != nil {
			t.Fatal(err)
		}
		sols, err := worker.GenerateShardContext(context.Background(), "t/s0", fs)
		if err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		for _, sol := range sols {
			if err := merge.Record(RecordOf(sol)); err != nil {
				t.Fatalf("shard %d: record: %v", si, err)
			}
		}
	}
	// A duplicate record is ignored, an unknown fault rejected.
	if err := merge.Record(RecordOf(localSols[0])); err != nil {
		t.Fatalf("duplicate record rejected: %v", err)
	}
	if err := merge.Record(SolutionRecord{FaultID: "no-such-fault"}); err == nil {
		t.Fatal("record for unknown fault accepted")
	}

	merged, err := merge.Solutions()
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		got, want := RecordOf(merged[i]), RecordOf(localSols[i])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("fault %s: merged record differs:\n got %+v\nwant %+v", faults[i].ID(), got, want)
		}
	}
}

// TestMergeIncomplete pins the guard: Solutions before every fault has
// a record is an error, Remaining counts down as records merge.
func TestMergeIncomplete(t *testing.T) {
	faults := fastFaultMix()
	s := fastSession(t, false)
	merge, err := s.OpenMerge(faults)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := merge.Solutions(); err == nil {
		t.Fatal("Solutions() on an empty merge succeeded")
	}
	if err := merge.Record(SolutionRecord{FaultID: faults[0].ID(), ConfigIdx: -1, Undetermined: true}); err != nil {
		t.Fatal(err)
	}
	if got := merge.Remaining(); got != len(faults)-1 {
		t.Fatalf("Remaining() = %d, want %d", got, len(faults)-1)
	}
}

// TestMergeCheckpointResume pins checkpoint-aware resharding: a merge
// run flushed mid-way resumes on a fresh session with only the
// remainder pending — and the resumed faults restore bit-identically.
func TestMergeCheckpointResume(t *testing.T) {
	faults := fastFaultMix()
	path := filepath.Join(t.TempDir(), "merge.ckpt")

	mk := func(resume bool) *Session {
		t.Helper()
		cfg := DefaultConfig()
		cfg.BoxMode = BoxSeed
		cfg.Workers = 4
		cfg.CheckpointPath = path
		cfg.Resume = resume
		s, err := NewSession(macros.IVConverter(), testcfg.IVConfigs()[:2], cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	localSols, err := fastSession(t, false).GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}

	first, err := mk(false).OpenMerge(faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range []int{0, 2} {
		if err := first.Record(RecordOf(localSols[fi])); err != nil {
			t.Fatal(err)
		}
	}
	first.Flush()

	second, err := mk(true).OpenMerge(faults)
	if err != nil {
		t.Fatal(err)
	}
	pending := second.Pending()
	if len(pending) != 2 {
		t.Fatalf("resumed Pending() = %d faults, want 2", len(pending))
	}
	if pending[0].ID() != faults[1].ID() || pending[1].ID() != faults[3].ID() {
		t.Fatalf("resumed pending = %s, %s", pending[0].ID(), pending[1].ID())
	}
	for _, fi := range []int{1, 3} {
		if err := second.Record(RecordOf(localSols[fi])); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := second.Solutions()
	if err != nil {
		t.Fatal(err)
	}
	for i := range faults {
		if !reflect.DeepEqual(RecordOf(merged[i]), RecordOf(localSols[i])) {
			t.Fatalf("fault %s: resumed merge differs", faults[i].ID())
		}
	}
}

// TestFaultsByID pins dictionary-order preservation and unknown-ID
// rejection.
func TestFaultsByID(t *testing.T) {
	faults := fastFaultMix()
	got, err := FaultsByID(faults, []string{faults[3].ID(), faults[1].ID()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID() != faults[1].ID() || got[1].ID() != faults[3].ID() {
		t.Fatalf("FaultsByID order = %v", got)
	}
	if _, err := FaultsByID(faults, []string{"bogus"}); err == nil {
		t.Fatal("unknown fault id accepted")
	}
}
