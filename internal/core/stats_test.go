package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/macros"
)

func TestStatsCountSimulations(t *testing.T) {
	s := dcSession(t)
	before := s.Stats()
	T := []float64{20e-6}
	f := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	if _, err := s.Sensitivity(0, f, T); err != nil {
		t.Fatal(err)
	}
	mid := s.Stats()
	if mid.FaultyRuns != before.FaultyRuns+1 {
		t.Errorf("faulty runs %d -> %d, want +1", before.FaultyRuns, mid.FaultyRuns)
	}
	if mid.NominalRuns != before.NominalRuns+1 {
		t.Errorf("nominal runs %d -> %d, want +1", before.NominalRuns, mid.NominalRuns)
	}
	// Repeat at the same parameters: nominal is cached, faulty is not.
	if _, err := s.Sensitivity(0, f, T); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.CacheHits != mid.CacheHits+1 {
		t.Errorf("cache hits %d -> %d, want +1", mid.CacheHits, after.CacheHits)
	}
	if after.NominalRuns != mid.NominalRuns {
		t.Error("cached nominal still counted as a run")
	}
	if after.FaultyRuns != mid.FaultyRuns+1 {
		t.Error("second faulty run not counted")
	}
}

func TestStatsCountFailures(t *testing.T) {
	s := dcSession(t)
	// Short the two ideal voltage sources together at 1 µΩ: the node
	// voltages stay pinned (so the DC-output configuration is blind), but
	// megaamps circulate through the supply — config #2 must either
	// detect a gigantic deviation or fail to converge; both paths count
	// as detection and the counters must stay coherent.
	f := fault.NewBridge(macros.NodeVdd, macros.NodeVref, 1e-6)
	sf, err := s.Sensitivity(1, f, []float64{20e-6})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// Either it simulated (huge deviation, S_f << 0) or it failed and was
	// reported as the sentinel; both count as detected, and the counters
	// must be coherent.
	if sf >= 0 {
		t.Errorf("supply-to-reference short undetected: S_f = %g", sf)
	}
	if st.FaultyFailures > st.FaultyRuns {
		t.Error("failure counter exceeds run counter")
	}
}
