package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/failpoint"
	"repro/internal/obs"
)

// TestTornCheckpointWriteResumesFresh is the torn-write regression
// test: a writer killed in the rename window (the ckpt.save.rename
// failpoint leaves the destination with half the payload, exactly the
// residue of a crash on a non-ordered filesystem) must not poison the
// next run. Resume over the torn file treats it as "no checkpoint",
// journals the recovery, recomputes everything, and lands bit-identical
// to an uninterrupted run.
func TestTornCheckpointWriteResumesFresh(t *testing.T) {
	faults := chaosFaults()
	path := filepath.Join(t.TempDir(), "ckpt.json")

	baseline := chaosSession(t, chaosConfigs(nil), nil)
	want, err := baseline.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}

	// First run: every checkpoint write dies mid-rename (a disk that
	// went bad under the writer). Interim write failures degrade to
	// journal events; the final flush failure is reported — and the
	// file on disk is torn.
	t.Cleanup(failpoint.Reset)
	if err := failpoint.Apply("ckpt.save.rename=error(crash in rename window)"); err != nil {
		t.Fatal(err)
	}
	s := chaosSession(t, chaosConfigs(nil), func(c *Config) { c.CheckpointPath = path })
	if _, err := s.GenerateAll(faults); err == nil || !strings.Contains(err.Error(), "final checkpoint") {
		t.Fatalf("torn final flush: err = %v, want final-checkpoint failure", err)
	}
	failpoint.Reset()
	var cp Checkpoint
	if err := ckpt.Load(path, &cp); err == nil {
		t.Fatal("torn checkpoint loaded cleanly — the failpoint no longer tears the file")
	}

	// Resume over the torn file: no error, fresh computation,
	// bit-identical results, and the journal records the recovery.
	var buf bytes.Buffer
	tr := obs.New(obs.NewJournal(&buf))
	s = chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.CheckpointPath = path
		c.Resume = true
		c.Tracer = tr
	})
	got, err := s.GenerateAll(faults)
	if err != nil {
		t.Fatalf("resume over a torn checkpoint failed: %v", err)
	}
	tr.Finish(nil)
	if !reflect.DeepEqual(solutionRecords(want), solutionRecords(got)) {
		t.Fatal("resume over a torn checkpoint diverged from the uninterrupted run")
	}
	for i, sol := range got {
		if sol.Resumed {
			t.Errorf("solution %d restored from a torn checkpoint", i)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte("corrupt checkpoint ignored")) {
		t.Error("journal does not record the corrupt-checkpoint recovery")
	}

	// The recovered run rewrote the checkpoint; a second resume now
	// restores everything from it.
	s = chaosSession(t, chaosConfigs(nil), func(c *Config) {
		c.CheckpointPath = path
		c.Resume = true
	})
	got, err = s.GenerateAll(faults)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solutionRecords(want), solutionRecords(got)) {
		t.Fatal("resume after recovery diverged")
	}
	for i, sol := range got {
		if !sol.Resumed {
			t.Errorf("solution %d recomputed despite a healed checkpoint", i)
		}
	}
}
