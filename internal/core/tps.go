package core

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// TPSGraph is a test-parameter sensitivity graph (paper §3.1, Figs. 2-4):
// the sensitivity S_f of one fault under one test configuration sampled
// over the allowed parameter space. For 2-parameter configurations the
// graph is a grid; for 1-parameter configurations Axis2 is empty and S
// has a single row.
type TPSGraph struct {
	ConfigID int
	FaultID  string
	Impact   float64
	// Axis1 spans the first test parameter, Axis2 the second (empty for
	// one-parameter configurations).
	Axis1, Axis2 []float64
	// S[j][i] is the sensitivity at (Axis1[i], Axis2[j]); for
	// one-parameter configurations S[0][i] at Axis1[i].
	S [][]float64
	// Names of the axes (parameter names).
	Name1, Name2 string
}

// MinCell returns the grid minimum: the most sensitive sampled parameter
// combination.
func (g *TPSGraph) MinCell() (i, j int, s float64) {
	s = g.S[0][0]
	for jj := range g.S {
		for ii, v := range g.S[jj] {
			if v < s {
				s = v
				i, j = ii, jj
			}
		}
	}
	return i, j, s
}

// MinParams returns the parameter vector at the grid minimum.
func (g *TPSGraph) MinParams() []float64 {
	i, j, _ := g.MinCell()
	if len(g.Axis2) == 0 {
		return []float64{g.Axis1[i]}
	}
	return []float64{g.Axis1[i], g.Axis2[j]}
}

// DetectableFraction returns the fraction of sampled cells with S_f < 0.
func (g *TPSGraph) DetectableFraction() float64 {
	total, neg := 0, 0
	for _, row := range g.S {
		for _, v := range row {
			total++
			if v < 0 {
				neg++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(neg) / float64(total)
}

// TPS computes the tps-graph of fault f (at its CURRENT impact) under
// configuration index ci on an n1 × n2 uniform grid (n2 ignored for
// one-parameter configurations). It is TPSContext with
// context.Background().
func (s *Session) TPS(ci int, f fault.Fault, n1, n2 int) (*TPSGraph, error) {
	return s.TPSContext(context.Background(), ci, f, n1, n2)
}

// TPSContext computes the tps-graph, sweeping the grid cells on the
// engine's work-stealing pool. Cancellation of ctx aborts the sweep
// promptly with an error wrapping ErrCanceled.
func (s *Session) TPSContext(ctx context.Context, ci int, f fault.Fault, n1, n2 int) (*TPSGraph, error) {
	c := s.configs[ci]
	if n1 < 2 {
		n1 = 2
	}
	b := c.Bounds()
	g := &TPSGraph{
		ConfigID: c.ID,
		FaultID:  f.ID(),
		Impact:   f.Impact(),
		Name1:    c.Params[0].Name,
	}
	g.Axis1 = sim.LinSpace(b.Lo[0], b.Hi[0], n1)
	rows := 1
	if b.Dim() == 2 {
		if n2 < 2 {
			n2 = 2
		}
		g.Name2 = c.Params[1].Name
		g.Axis2 = sim.LinSpace(b.Lo[1], b.Hi[1], n2)
		rows = n2
	}
	g.S = make([][]float64, rows)
	for j := 0; j < rows; j++ {
		g.S[j] = make([]float64, n1)
	}
	// One pool task per grid cell: tps cells vary wildly in cost (a
	// non-convergent faulty circuit retries its source stepping), which
	// is exactly what work stealing smooths out.
	err := s.eng.ForEach(ctx, rows*n1, func(ctx context.Context, k int) error {
		defer s.eng.Time(PhaseTPS)()
		j, i := k/n1, k%n1
		T := []float64{g.Axis1[i]}
		if b.Dim() == 2 {
			T = append(T, g.Axis2[j])
		}
		sf, err := s.Sensitivity(ci, f, T)
		if err != nil {
			return fmt.Errorf("core: tps at %v: %w", T, err)
		}
		g.S[j][i] = sf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
