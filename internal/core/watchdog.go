package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errStalled is the cancel cause the stall watchdog attaches when it
// kills an attempt. optimizeCandidate checks for it via context.Cause to
// distinguish a watchdog kill (quarantine, reason "stalled") from an
// ordinary deadline or caller cancellation.
var errStalled = errors.New("core: optimizer attempt stalled (no progress before the watchdog deadline)")

// watchdog cancels an optimizer attempt whose objective stops producing
// evaluations. Cancellation is cooperative — the objective checks its
// context between simulations — so a task wedged *inside* a single
// simulation call is only reaped at its next context check; the watchdog
// bounds silent inactivity, it cannot preempt running code.
type watchdog struct {
	last   atomic.Int64 // UnixNano of the last observed progress
	cancel context.CancelCauseFunc
	done   chan struct{}
}

// touch records progress; the objective calls it once per evaluation.
// Nil-safe so callers without a watchdog need no branch.
func (w *watchdog) touch() {
	if w == nil {
		return
	}
	w.last.Store(time.Now().UnixNano())
}

// stop shuts the monitor goroutine down and releases the wrapped
// context (a stall cause already attached wins over stop's nil cause).
// Idempotent.
func (w *watchdog) stop() {
	select {
	case <-w.done:
	default:
		close(w.done)
	}
	w.cancel(nil)
}

// startWatchdog wraps ctx with a cancel-cause and starts a monitor that
// cancels it with errStalled when touch has not been called for deadline.
// The caller must invoke the returned watchdog's stop (and the cancel is
// folded into stop's cleanup by the caller's defer of cancel).
func startWatchdog(ctx context.Context, deadline time.Duration) (context.Context, *watchdog) {
	wctx, cancel := context.WithCancelCause(ctx)
	w := &watchdog{cancel: cancel, done: make(chan struct{})}
	w.touch()
	// Poll at a fraction of the deadline so a stall is detected within
	// ~1.25× the configured timeout, without a busy loop.
	every := deadline / 4
	if every < time.Millisecond {
		every = time.Millisecond
	}
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-w.done:
				return
			case <-wctx.Done():
				return
			case <-t.C:
				if time.Since(time.Unix(0, w.last.Load())) > deadline {
					cancel(errStalled)
					return
				}
			}
		}
	}()
	return wctx, w
}

// stalled reports whether ctx was killed by the stall watchdog.
func stalled(ctx context.Context) bool {
	return errors.Is(context.Cause(ctx), errStalled)
}
