package device

import (
	"fmt"
	"math"

	"repro/internal/mna"
)

// BJT support (Ebers-Moll transport model) rounds out the simulator
// substrate: the paper's methodology is not CMOS-specific, and bipolar
// analog macros were the era's other mainstream implementation style.

// BJTType distinguishes NPN from PNP transistors.
type BJTType int

const (
	// NPN conducts collector current for positive VBE.
	NPN BJTType = iota
	// PNP is the complementary flavour.
	PNP
)

// String returns "npn" or "pnp".
func (t BJTType) String() string {
	if t == PNP {
		return "pnp"
	}
	return "npn"
}

// BJTModel holds Ebers-Moll transport parameters.
type BJTModel struct {
	Type BJTType
	IS   float64 // transport saturation current (A)
	BF   float64 // forward beta
	BR   float64 // reverse beta
	VT   float64 // thermal voltage (V)
}

// DefaultNPNModel returns a generic small-signal NPN.
func DefaultNPNModel() *BJTModel {
	return &BJTModel{Type: NPN, IS: 1e-15, BF: 100, BR: 2, VT: 0.02585}
}

// DefaultPNPModel returns the complementary PNP.
func DefaultPNPModel() *BJTModel {
	return &BJTModel{Type: PNP, IS: 1e-15, BF: 60, BR: 2, VT: 0.02585}
}

// BJT is a three-terminal (collector, base, emitter) bipolar transistor.
type BJT struct {
	base
	Model *BJTModel
}

// NewBJT returns a transistor with terminals (collector, base, emitter).
func NewBJT(name, c, b, e string, m *BJTModel) *BJT {
	if m == nil {
		panic("device: BJT requires a model")
	}
	if m.BF <= 0 || m.BR <= 0 || m.IS <= 0 || m.VT <= 0 {
		panic(fmt.Sprintf("device: BJT %s with non-positive model parameters", name))
	}
	return &BJT{base: newBase(name, c, b, e), Model: m}
}

// Clone implements Device.
func (q *BJT) Clone() Device {
	m := *q.Model
	return &BJT{base: q.cloneBase(), Model: &m}
}

// limExp is an overflow-limited exponential with continuous derivative.
func limExp(x float64) (e, de float64) {
	const expCap = 40.0
	if x > expCap {
		ec := math.Exp(expCap)
		return ec * (1 + (x - expCap)), ec
	}
	e = math.Exp(x)
	return e, e
}

// currents evaluates the Ebers-Moll transport currents and their
// derivatives in the NPN convention (sign-mirrored for PNP by the
// caller): ic and ib flow INTO collector and base.
func (q *BJT) currents(vbe, vbc float64) (ic, ib, gmf, gmr, gpif, gpir float64) {
	m := q.Model
	ef, def := limExp(vbe / m.VT)
	er, der := limExp(vbc / m.VT)
	icc := m.IS * (ef - 1) // forward transport
	iec := m.IS * (er - 1) // reverse transport
	dicc := m.IS * def / m.VT
	diec := m.IS * der / m.VT

	ic = icc - iec - iec/m.BR
	ib = icc/m.BF + iec/m.BR
	gmf = dicc // ∂ic/∂vbe
	gmr = -diec * (1 + 1/m.BR)
	gpif = dicc / m.BF // ∂ib/∂vbe
	gpir = diec / m.BR // ∂ib/∂vbc
	return ic, ib, gmf, gmr, gpif, gpir
}

// Stamp implements Stamper with the linearized Ebers-Moll companion.
func (q *BJT) Stamp(s *mna.System, x []float64, ctx *Context) {
	idx := q.Terminals()
	c, b, e := idx[0], idx[1], idx[2]
	sign := 1.0
	if q.Model.Type == PNP {
		sign = -1
	}
	vbe := sign * (volt(x, b) - volt(x, e))
	vbc := sign * (volt(x, b) - volt(x, c))
	ic, ib, gmf, gmr, gpif, gpir := q.currents(vbe, vbc)

	// Linearized currents (NPN convention, into the terminal):
	//	ic ≈ ic0 + gmf·Δvbe + gmr·Δvbc
	//	ib ≈ ib0 + gpif·Δvbe + gpir·Δvbc
	// Under the PNP mirror, conductance-like stamps are invariant and
	// residual currents change sign.
	icEq := ic - gmf*vbe - gmr*vbc
	ibEq := ib - gpif*vbe - gpir*vbc

	// Collector row: current into the device at C is +ic.
	s.Add(c, b, gmf+gmr)
	s.Add(c, e, -gmf)
	s.Add(c, c, -gmr)
	// Base row.
	s.Add(b, b, gpif+gpir)
	s.Add(b, e, -gpif)
	s.Add(b, c, -gpir)
	// Emitter row: ie = -(ic+ib).
	s.Add(e, b, -(gmf + gmr + gpif + gpir))
	s.Add(e, e, gmf+gpif)
	s.Add(e, c, gmr+gpir)

	// Convergence-aid leakage.
	s.StampConductance(c, e, ctx.Gmin)
	s.StampConductance(b, e, ctx.Gmin)

	if q.Model.Type == PNP {
		s.AddRHS(c, icEq)
		s.AddRHS(b, ibEq)
		s.AddRHS(e, -(icEq + ibEq))
	} else {
		s.AddRHS(c, -icEq)
		s.AddRHS(b, -ibEq)
		s.AddRHS(e, icEq+ibEq)
	}
}

// StampAC implements ACStamper with the small-signal hybrid-π parameters
// at the operating point.
func (q *BJT) StampAC(s *mna.ComplexSystem, xop []float64, _ float64) {
	idx := q.Terminals()
	c, b, e := idx[0], idx[1], idx[2]
	sign := 1.0
	if q.Model.Type == PNP {
		sign = -1
	}
	vbe := sign * (volt(xop, b) - volt(xop, e))
	vbc := sign * (volt(xop, b) - volt(xop, c))
	_, _, gmf, gmr, gpif, gpir := q.currents(vbe, vbc)
	s.Add(c, b, complex(gmf+gmr, 0))
	s.Add(c, e, complex(-gmf, 0))
	s.Add(c, c, complex(-gmr, 0))
	s.Add(b, b, complex(gpif+gpir, 0))
	s.Add(b, e, complex(-gpif, 0))
	s.Add(b, c, complex(-gpir, 0))
	s.Add(e, b, complex(-(gmf+gmr+gpif+gpir), 0))
	s.Add(e, e, complex(gmf+gpif, 0))
	s.Add(e, c, complex(gmr+gpir, 0))
}

// CollectorCurrent returns the current into the collector terminal.
func (q *BJT) CollectorCurrent(x []float64) float64 {
	idx := q.Terminals()
	sign := 1.0
	if q.Model.Type == PNP {
		sign = -1
	}
	vbe := sign * (volt(x, idx[1]) - volt(x, idx[2]))
	vbc := sign * (volt(x, idx[1]) - volt(x, idx[0]))
	ic, _, _, _, _, _ := q.currents(vbe, vbc)
	return sign * ic
}

// BaseCurrent returns the current into the base terminal.
func (q *BJT) BaseCurrent(x []float64) float64 {
	idx := q.Terminals()
	sign := 1.0
	if q.Model.Type == PNP {
		sign = -1
	}
	vbe := sign * (volt(x, idx[1]) - volt(x, idx[2]))
	vbc := sign * (volt(x, idx[1]) - volt(x, idx[0]))
	_, ib, _, _, _, _ := q.currents(vbe, vbc)
	return sign * ib
}
