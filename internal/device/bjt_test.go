package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mna"
)

func TestBJTForwardActiveCurrents(t *testing.T) {
	q := NewBJT("Q1", "c", "b", "e", DefaultNPNModel())
	resolve(q, 0, 1, 2)
	// Forward active: vbe = 0.65, vbc < 0.
	x := []float64{5, 0.65, 0}
	ic := q.CollectorCurrent(x)
	ib := q.BaseCurrent(x)
	wantIc := 1e-15 * (math.Exp(0.65/0.02585) - 1)
	if math.Abs(ic-wantIc) > 1e-3*wantIc {
		t.Errorf("Ic = %g, want %g", ic, wantIc)
	}
	if beta := ic / ib; math.Abs(beta-100) > 1 {
		t.Errorf("beta = %g, want 100", beta)
	}
}

func TestBJTOffState(t *testing.T) {
	q := NewBJT("Q1", "c", "b", "e", DefaultNPNModel())
	resolve(q, 0, 1, 2)
	x := []float64{5, 0, 0}
	if ic := q.CollectorCurrent(x); math.Abs(ic) > 1e-14 {
		t.Errorf("off-state Ic = %g", ic)
	}
}

func TestPNPMirrorsNPN(t *testing.T) {
	n := NewBJT("QN", "c", "b", "e", DefaultNPNModel())
	pm := *DefaultNPNModel()
	pm.Type = PNP
	p := NewBJT("QP", "c", "b", "e", &pm)
	resolve(n, 0, 1, 2)
	resolve(p, 0, 1, 2)
	xn := []float64{5, 0.65, 0}
	xp := []float64{-5, -0.65, 0}
	if in, ip := n.CollectorCurrent(xn), p.CollectorCurrent(xp); math.Abs(in+ip) > 1e-12*math.Abs(in) {
		t.Errorf("NPN Ic=%g, PNP Ic=%g, want opposite", in, ip)
	}
}

// TestBJTStampConsistency: at the linearization point, A·x − b reproduces
// the exact terminal currents for both flavours.
func TestBJTStampConsistency(t *testing.T) {
	f := func(vcRaw, vbRaw, veRaw float64, pnp bool) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 1.4) }
		vc, vb, ve := clamp(vcRaw)*3, clamp(vbRaw), clamp(veRaw)
		m := DefaultNPNModel()
		if pnp {
			mm := *DefaultPNPModel()
			m = &mm
			vc, vb, ve = -vc, -vb, -ve
		}
		q := NewBJT("Q1", "c", "b", "e", m)
		resolve(q, 0, 1, 2)
		x := []float64{vc, vb, ve}
		s := mna.NewSystem(3)
		q.Stamp(s, x, opCtx())
		for row, want := range map[int]float64{
			0: q.CollectorCurrent(x),
			1: q.BaseCurrent(x),
			2: -(q.CollectorCurrent(x) + q.BaseCurrent(x)),
		} {
			lhs := 0.0
			for j := 0; j < 3; j++ {
				lhs += s.At(row, j) * x[j]
			}
			lhs -= s.RHS(row)
			tol := 1e-9 * math.Max(1, math.Abs(want))
			if math.Abs(lhs-want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBJTLimitedExponentFinite(t *testing.T) {
	q := NewBJT("Q1", "c", "b", "e", DefaultNPNModel())
	resolve(q, 0, 1, 2)
	ic := q.CollectorCurrent([]float64{5, 3, 0}) // vbe = 3 V
	if math.IsInf(ic, 0) || math.IsNaN(ic) {
		t.Error("limited exponential overflowed")
	}
}

func TestBJTCloneIndependence(t *testing.T) {
	q := NewBJT("Q1", "c", "b", "e", DefaultNPNModel())
	c := q.Clone().(*BJT)
	c.Model.BF = 5
	if q.Model.BF != 100 {
		t.Error("clone shares model with original")
	}
}

func TestBJTPanicsOnBadModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad model accepted")
		}
	}()
	NewBJT("Q1", "c", "b", "e", &BJTModel{Type: NPN, IS: 0, BF: 100, BR: 1, VT: 0.025})
}
