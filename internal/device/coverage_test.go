package device

import (
	"math"
	"testing"

	"repro/internal/mna"
	"repro/internal/wave"
)

// Direct unit coverage for the stamps and plumbing that the sim-level
// tests only exercise transitively.

func TestTypeStrings(t *testing.T) {
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Error("MOSType strings wrong")
	}
	if NPN.String() != "npn" || PNP.String() != "pnp" {
		t.Error("BJTType strings wrong")
	}
}

func TestResistorACStamp(t *testing.T) {
	r := NewResistor("R1", "a", "b", 2e3)
	resolve(r, 0, 1)
	s := mna.NewComplexSystem(2)
	r.StampAC(s, nil, 1e3)
	if got := real(s.At(0, 0)); math.Abs(got-5e-4) > 1e-12 {
		t.Errorf("AC conductance = %g, want 5e-4", got)
	}
}

func TestCapacitorACStamp(t *testing.T) {
	c := NewCapacitor("C1", "a", "b", 1e-9)
	resolve(c, 0, 1)
	s := mna.NewComplexSystem(2)
	omega := 2 * math.Pi * 1e6
	c.StampAC(s, nil, omega)
	if got := imag(s.At(0, 0)); math.Abs(got-omega*1e-9) > 1e-12 {
		t.Errorf("AC susceptance = %g, want %g", got, omega*1e-9)
	}
}

func TestInductorACStamp(t *testing.T) {
	l := NewInductor("L1", "a", "b", 1e-3)
	resolve(l, 0, 1)
	l.SetBranchBase(2)
	s := mna.NewComplexSystem(3)
	omega := 2 * math.Pi * 1e3
	l.StampAC(s, nil, omega)
	if got := imag(s.At(2, 2)); math.Abs(got+omega*1e-3) > 1e-12 {
		t.Errorf("branch reactance = %g, want %g", got, -omega*1e-3)
	}
}

func TestInductorTransientCompanion(t *testing.T) {
	// RL charge: i(t) = V/R (1 - exp(-t R/L)); run the companion by hand.
	l := NewInductor("L1", "n", "", 1e-3)
	r := NewResistor("R1", "in", "n", 1e3)
	vs := NewDCVSource("V1", "in", "", 1)
	resolve(l, 1, -1)
	resolve(r, 0, 1)
	resolve(vs, 0, -1)
	l.SetBranchBase(2)
	vs.SetBranchBase(3)
	state := make([]float64, l.NumStates())
	// Start de-energized.
	state[0], state[1] = 0, 0
	sys := mna.NewSystem(4)
	dt := 1e-7 // tau = 1 µs
	var x []float64
	for step := 0; step < 10; step++ {
		ctx := trCtx(float64(step+1)*dt, dt, Trapezoidal)
		sys.Clear()
		r.Stamp(sys, nil, ctx)
		vs.Stamp(sys, nil, ctx)
		l.StampDynamic(sys, nil, state, ctx)
		var err error
		x, err = sys.FactorSolve()
		if err != nil {
			t.Fatal(err)
		}
		l.Commit(x, state, ctx)
	}
	want := 1e-3 * (1 - math.Exp(-1)) // after 1 tau
	if math.Abs(state[0]-want) > 2e-5*1e3 {
		t.Errorf("i(tau) = %g, want %g", state[0], want)
	}
}

func TestDiodeACStamp(t *testing.T) {
	d := NewDiode("D1", "a", "", nil)
	resolve(d, 0, -1)
	s := mna.NewComplexSystem(1)
	xop := []float64{0.6}
	d.StampAC(s, xop, 1e3)
	_, gd := d.current(0.6)
	if got := real(s.At(0, 0)); math.Abs(got-gd) > 1e-12*gd {
		t.Errorf("AC conductance = %g, want %g", got, gd)
	}
}

func TestBJTACStampGm(t *testing.T) {
	q := NewBJT("Q1", "c", "b", "e", DefaultNPNModel())
	resolve(q, 0, 1, 2)
	s := mna.NewComplexSystem(3)
	xop := []float64{5, 0.65, 0}
	q.StampAC(s, xop, 1e3)
	gm := q.CollectorCurrent(xop) / q.Model.VT
	if got := real(s.At(0, 1)); math.Abs(got-gm) > 0.02*gm {
		t.Errorf("AC gm entry = %g, want ≈ %g", got, gm)
	}
}

func TestClonesEverywhere(t *testing.T) {
	devs := []Device{
		NewResistor("R", "a", "b", 1e3),
		NewCapacitor("C", "a", "b", 1e-12),
		NewInductor("L", "a", "b", 1e-6),
		NewDiode("D", "a", "b", nil),
		NewVSource("V", "a", "b", wave.DC(1)),
		NewISource("I", "a", "b", wave.DC(1)),
		NewVCVS("E", "a", "b", "c", "d", 2),
		NewVCCS("G", "a", "b", "c", "d", 1e-3),
		NewMOSFET("M", "a", "b", "c", DefaultNMOSModel(), 1e-6, 1e-6),
		NewBJT("Q", "a", "b", "c", DefaultNPNModel()),
	}
	for _, d := range devs {
		c := d.Clone()
		if c.Name() != d.Name() {
			t.Errorf("%T clone lost its name", d)
		}
		if len(c.TerminalNames()) != len(d.TerminalNames()) {
			t.Errorf("%T clone lost terminals", d)
		}
		if c.Terminals() != nil {
			t.Errorf("%T clone retained resolved indices", d)
		}
	}
}

func TestScaleValues(t *testing.T) {
	c := NewCapacitor("C", "a", "b", 1e-12)
	c.ScaleValue(1.1)
	if math.Abs(c.C-1.1e-12) > 1e-24 {
		t.Errorf("C = %g", c.C)
	}
	l := NewInductor("L", "a", "b", 1e-6)
	l.ScaleValue(0.9)
	if math.Abs(l.L-0.9e-6) > 1e-18 {
		t.Errorf("L = %g", l.L)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewCapacitor("C", "a", "b", 0) },
		func() { NewInductor("L", "a", "b", -1) },
		func() { NewMOSFET("M", "a", "b", "c", DefaultNMOSModel(), 0, 1e-6) },
		func() { NewMOSFET("M", "a", "b", "c", nil, 1e-6, 1e-6) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMOSFETGmAccessor(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 10e-6, 1e-6)
	resolve(m, 0, 1, 2)
	x := []float64{3, 1.5, 0}
	gm := m.Gm(x)
	want := m.Beta() * 0.8 * (1 + m.Model.Lambda*3)
	if math.Abs(gm-want) > 1e-9 {
		t.Errorf("Gm = %g, want %g", gm, want)
	}
}

func TestMOSCapTrapezoidalCompanion(t *testing.T) {
	m := capMOS()
	resolve(m, 0, 1, 2)
	state := make([]float64, m.NumStates())
	m.InitState([]float64{2, 1, 0}, state)
	s := mna.NewSystem(3)
	ctx := trCtx(1e-9, 1e-9, Trapezoidal)
	m.StampDynamic(s, nil, state, ctx)
	// Gate row picks up both capacitor companions.
	wantG := 2*m.Cgs()/1e-9 + 2*m.Cgd()/1e-9
	if got := s.At(1, 1); math.Abs(got-wantG) > 1e-9*wantG {
		t.Errorf("gate self-conductance = %g, want %g", got, wantG)
	}
	// Commit with unchanged voltages: currents stay zero.
	m.Commit([]float64{2, 1, 0}, state, ctx)
	if math.Abs(state[1]) > 1e-18 || math.Abs(state[3]) > 1e-18 {
		t.Error("static commit produced current")
	}
}

func TestVCVSAC(t *testing.T) {
	e := NewVCVS("E1", "p", "m", "cp", "cm", 10)
	resolve(e, 0, 1, 2, 3)
	e.SetBranchBase(4)
	s := mna.NewComplexSystem(5)
	e.StampAC(s, nil, 1e3)
	if got := real(s.At(4, 2)); got != -10 {
		t.Errorf("VCVS AC gain entry = %g, want -10", got)
	}
}

func TestVCCSAC(t *testing.T) {
	g := NewVCCS("G1", "p", "m", "cp", "cm", 1e-3)
	resolve(g, 0, 1, 2, 3)
	s := mna.NewComplexSystem(4)
	g.StampAC(s, nil, 1e3)
	if got := real(s.At(0, 2)); math.Abs(got-1e-3) > 1e-15 {
		t.Errorf("VCCS AC gm entry = %g, want 1e-3", got)
	}
}
