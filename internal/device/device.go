// Package device implements the circuit elements the simulator knows how
// to stamp into an MNA system: resistors, capacitors, inductors,
// independent and controlled sources, diodes, and the Shichman–Hodges
// (SPICE level-1) MOSFET that the IV-converter macro is built from.
//
// Devices are descriptors plus stamping behaviour. They hold no
// per-simulation state: dynamic elements (C, L) declare how many state
// variables they need and the analysis engine owns the storage, so a
// compiled circuit can be simulated from several goroutines concurrently
// as long as each run owns its own state vector.
package device

import "repro/internal/mna"

// Mode selects the analysis a stamp is being assembled for.
type Mode int

const (
	// OP assembles the DC operating-point system: capacitors open,
	// inductors short, waveform sources at their DC level.
	OP Mode = iota
	// Transient assembles one implicit time step using companion models.
	Transient
)

// Integration selects the implicit integration method for dynamic stamps.
type Integration int

const (
	// BackwardEuler is L-stable and heavily damped; used for the first
	// step after a discontinuity.
	BackwardEuler Integration = iota
	// Trapezoidal is A-stable and second-order; the default.
	Trapezoidal
)

// Context carries per-assembly information into device stamps.
type Context struct {
	Mode Mode
	// Time is the time at the end of the pending step (transient only).
	Time float64
	// Dt is the pending step size (transient only).
	Dt float64
	// Gmin is a convergence-aid conductance stamped across nonlinear
	// junctions. It is ramped down to its floor by gmin stepping.
	Gmin float64
	// SrcScale multiplies every independent source, used by source
	// stepping; 1 in normal operation.
	SrcScale float64
	// Integ is the integration method for dynamic stamps.
	Integ Integration
}

// Device is the minimal descriptor every element implements.
type Device interface {
	// Name returns the instance name (unique within a circuit).
	Name() string
	// TerminalNames returns the node names the device connects to, in
	// declaration order.
	TerminalNames() []string
	// Resolve stores the MNA unknown index for each terminal (-1 for
	// ground), in the same order as TerminalNames. Called by the circuit
	// compiler.
	Resolve(idx []int)
	// Terminals returns the resolved indices (nil before Resolve).
	Terminals() []int
	// Clone returns a deep copy with unresolved state preserved, used for
	// fault insertion and process-corner scaling.
	Clone() Device
}

// Stamper is implemented by every device that contributes static (DC and
// resistive) stamps. x is the current Newton estimate of the solution
// vector; linear devices ignore it.
type Stamper interface {
	Stamp(s *mna.System, x []float64, ctx *Context)
}

// LinearStamper is implemented by devices whose static stamps do not
// depend on the Newton estimate x: resistors, independent and controlled
// sources, the inductor's OP short. The engine assembles these once and
// restores the result by copy instead of re-stamping every Newton
// iteration, so the split must uphold the linear-snapshot invariant:
//
//   - StampLinearMatrix may depend only on ctx.Mode (with Dt/Integ fixed
//     by the analysis) — never on Time, SrcScale, or any mutable device
//     parameter, so the matrix snapshot stays valid for a whole analysis;
//   - StampLinearRHS may additionally depend on Time and SrcScale; it is
//     re-assembled once per solve (not per iteration).
//
// The embedded Stamp must remain equivalent to StampLinearMatrix followed
// by StampLinearRHS; engines without the fast path still call it.
type LinearStamper interface {
	Stamper
	// StampLinearMatrix adds the x-independent matrix entries.
	StampLinearMatrix(s *mna.System, ctx *Context)
	// StampLinearRHS adds the x-independent right-hand-side entries.
	StampLinearRHS(s *mna.System, ctx *Context)
}

// Dynamic is implemented by energy-storage devices. The engine allocates
// NumStates float64 slots per device and threads them through the three
// phase methods.
type Dynamic interface {
	// NumStates returns how many state variables the device needs.
	NumStates() int
	// InitState fills state from a converged DC solution x.
	InitState(x []float64, state []float64)
	// StampDynamic stamps the companion model for the pending step; state
	// holds the previous time point.
	StampDynamic(s *mna.System, x []float64, state []float64, ctx *Context)
	// Commit updates state from the accepted solution x of the step that
	// ctx describes.
	Commit(x []float64, state []float64, ctx *Context)
}

// SplitDynamic refines Dynamic for companion models whose conductance
// pattern depends only on the step configuration (Dt, Integ), never on
// the committed state or the Newton estimate — true for every linear
// reactance. The engine folds StampCompanionMatrix into the cached linear
// matrix snapshot (rebuilt only when Dt or the method changes, fixing the
// stepper's restamp-on-every-step behaviour) and re-assembles only the
// state-dependent StampCompanionRHS once per step.
//
// StampDynamic must remain equivalent to StampCompanionMatrix followed by
// StampCompanionRHS.
type SplitDynamic interface {
	Dynamic
	// StampCompanionMatrix adds the companion conductances, a function of
	// ctx.Dt and ctx.Integ only.
	StampCompanionMatrix(s *mna.System, ctx *Context)
	// StampCompanionRHS adds the companion sources computed from the
	// committed state of the previous time point.
	StampCompanionRHS(s *mna.System, state []float64, ctx *Context)
}

// Brancher is implemented by devices that need extra MNA branch-current
// unknowns (voltage sources, inductors, VCVS).
type Brancher interface {
	// NumBranches returns how many branch unknowns the device needs.
	NumBranches() int
	// SetBranchBase stores the first branch unknown index assigned by the
	// compiler; the device uses base, base+1, ...
	SetBranchBase(base int)
	// BranchBase returns the assigned base index (-1 before assignment).
	BranchBase() int
}

// ACStamper is implemented by devices that participate in small-signal AC
// analysis. xop is the DC operating point the device linearizes around
// and omega the angular frequency.
type ACStamper interface {
	StampAC(s *mna.ComplexSystem, xop []float64, omega float64)
}

// ACSplitStamper refines ACStamper by separating the frequency-
// independent small-signal stamps (conductances, transconductances,
// source patterns — assembled once per sweep and restored by copy) from
// the reactive jω terms added at each frequency point. Because the base
// contributes only real parts and the reactive stamps only imaginary
// parts of any shared entry, the split is bit-identical to StampAC.
//
// StampAC must remain equivalent to StampACBase followed by
// StampACReactive.
type ACSplitStamper interface {
	ACStamper
	// StampACBase adds the frequency-independent small-signal stamps at
	// the operating point xop.
	StampACBase(s *mna.ComplexSystem, xop []float64)
	// StampACReactive adds the jω-dependent stamps.
	StampACReactive(s *mna.ComplexSystem, xop []float64, omega float64)
}

// Scalable is implemented by devices whose primary parameter can be
// scaled multiplicatively, used by the process-corner machinery
// (resistances, capacitances) — MOSFET models scale through ModelScaler.
type Scalable interface {
	// ScaleValue multiplies the primary parameter by k.
	ScaleValue(k float64)
}

// volt reads the voltage of resolved terminal index i from solution x;
// ground (-1) reads as 0.
func volt(x []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return x[i]
}

// base carries the descriptor plumbing shared by all devices.
type base struct {
	name  string
	nodes []string
	idx   []int
}

func newBase(name string, nodes ...string) base {
	return base{name: name, nodes: nodes}
}

// Name implements Device.
func (b *base) Name() string { return b.name }

// TerminalNames implements Device.
func (b *base) TerminalNames() []string { return b.nodes }

// Resolve implements Device.
func (b *base) Resolve(idx []int) {
	b.idx = make([]int, len(idx))
	copy(b.idx, idx)
}

// Terminals implements Device.
func (b *base) Terminals() []int { return b.idx }

// cloneBase copies the descriptor; resolved indices are dropped because a
// clone is re-compiled in its new circuit.
func (b *base) cloneBase() base {
	nodes := make([]string, len(b.nodes))
	copy(nodes, b.nodes)
	return base{name: b.name, nodes: nodes}
}

// RenameTerminal rewires terminal slot i to a different node name; used
// by the pinhole fault transform when it splits a transistor channel.
func RenameTerminal(d Device, i int, node string) {
	switch dev := d.(type) {
	case interface{ renameTerminal(int, string) }:
		dev.renameTerminal(i, node)
	default:
		panic("device: RenameTerminal on unsupported device type")
	}
}

func (b *base) renameTerminal(i int, node string) {
	b.nodes[i] = node
	b.idx = nil
}
