package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mna"
	"repro/internal/wave"
)

// resolve wires a device's terminals to the given indices directly,
// bypassing the circuit compiler for unit tests.
func resolve(d Device, idx ...int) {
	d.Resolve(idx)
}

func opCtx() *Context { return &Context{Mode: OP, SrcScale: 1} }
func trCtx(t, dt float64, in Integration) *Context {
	return &Context{Mode: Transient, Time: t, Dt: dt, SrcScale: 1, Integ: in}
}

func TestResistorStamp(t *testing.T) {
	r := NewResistor("R1", "a", "b", 2e3)
	resolve(r, 0, 1)
	s := mna.NewSystem(2)
	r.Stamp(s, nil, opCtx())
	g := 1 / 2e3
	if s.At(0, 0) != g || s.At(1, 1) != g || s.At(0, 1) != -g || s.At(1, 0) != -g {
		t.Error("resistor stamp pattern wrong")
	}
}

func TestResistorCurrent(t *testing.T) {
	r := NewResistor("R1", "a", "b", 1e3)
	resolve(r, 0, 1)
	x := []float64{5, 3}
	if got := r.Current(x); math.Abs(got-2e-3) > 1e-15 {
		t.Errorf("Current = %g, want 2mA", got)
	}
}

func TestResistorPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for R <= 0")
		}
	}()
	NewResistor("R1", "a", "b", 0)
}

func TestResistorScaleAndClone(t *testing.T) {
	r := NewResistor("R1", "a", "b", 1e3)
	c := r.Clone().(*Resistor)
	c.ScaleValue(1.05)
	if r.R != 1e3 {
		t.Error("scaling a clone mutated the original")
	}
	if math.Abs(c.R-1050) > 1e-9 {
		t.Errorf("clone R = %g, want 1050", c.R)
	}
	if c.Terminals() != nil {
		t.Error("clone should drop resolved terminals")
	}
}

func TestCapacitorOPIsOpen(t *testing.T) {
	c := NewCapacitor("C1", "a", "b", 1e-12)
	resolve(c, 0, 1)
	s := mna.NewSystem(2)
	// Capacitor implements Dynamic, not Stamper: it contributes nothing
	// to the static system.
	if _, ok := interface{}(c).(Stamper); ok {
		t.Fatal("capacitor should not be a static Stamper")
	}
	_ = s
}

func TestCapacitorBackwardEulerCompanion(t *testing.T) {
	c := NewCapacitor("C1", "a", "", 1e-9)
	resolve(c, 0, -1)
	state := make([]float64, c.NumStates())
	// DC solution: 2 V across the cap, zero current.
	c.InitState([]float64{2}, state)
	if state[0] != 2 || state[1] != 0 {
		t.Fatalf("init state = %v", state)
	}
	s := mna.NewSystem(1)
	dt := 1e-9
	ctx := trCtx(dt, dt, BackwardEuler)
	c.StampDynamic(s, nil, state, ctx)
	geq := 1e-9 / dt
	if math.Abs(s.At(0, 0)-geq) > 1e-12 {
		t.Errorf("geq = %g, want %g", s.At(0, 0), geq)
	}
	if math.Abs(s.RHS(0)-geq*2) > 1e-12 {
		t.Errorf("ieq = %g, want %g", s.RHS(0), geq*2)
	}
	// If the node stays at 2 V the committed current must be ~0.
	c.Commit([]float64{2}, state, ctx)
	if math.Abs(state[1]) > 1e-15 {
		t.Errorf("current after constant voltage = %g, want 0", state[1])
	}
}

func TestCapacitorTrapezoidalRCDecay(t *testing.T) {
	// Hand-rolled RC discharge using the companion model only:
	// node with R=1k to ground, C=1µF charged to 1 V. tau = 1 ms.
	r := NewResistor("R", "n", "", 1e3)
	c := NewCapacitor("C", "n", "", 1e-6)
	resolve(r, 0, -1)
	resolve(c, 0, -1)
	state := make([]float64, c.NumStates())
	c.InitState([]float64{1}, state)
	// The DC init above gives i=0, but at t=0+ the discharge current is
	// -1mA; trapezoidal handles that via its first BE step in the real
	// engine. Here we set the consistent initial current directly.
	state[1] = -1e-3
	dt := 10e-6
	v := 1.0
	sys := mna.NewSystem(1)
	for step := 0; step < 100; step++ {
		ctx := trCtx(float64(step+1)*dt, dt, Trapezoidal)
		sys.Clear()
		r.Stamp(sys, nil, ctx)
		c.StampDynamic(sys, nil, state, ctx)
		x, err := sys.FactorSolve()
		if err != nil {
			t.Fatal(err)
		}
		v = x[0]
		c.Commit(x, state, ctx)
	}
	want := math.Exp(-1) // after 1 tau
	if math.Abs(v-want) > 2e-4 {
		t.Errorf("v(tau) = %g, want %g (trapezoidal accuracy)", v, want)
	}
}

func TestInductorOPIsShort(t *testing.T) {
	// V source -> R -> L -> ground; OP current = V/R.
	vs := NewDCVSource("V1", "in", "", 5)
	r := NewResistor("R1", "in", "mid", 1e3)
	l := NewInductor("L1", "mid", "", 1e-3)
	resolve(vs, 0, -1)
	resolve(r, 0, 1)
	resolve(l, 1, -1)
	vs.SetBranchBase(2)
	l.SetBranchBase(3)
	s := mna.NewSystem(4)
	ctx := opCtx()
	vs.Stamp(s, nil, ctx)
	r.Stamp(s, nil, ctx)
	l.Stamp(s, nil, ctx)
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]) > 1e-12 {
		t.Errorf("mid node = %g, want 0 (inductor shorts to ground)", x[1])
	}
	if math.Abs(x[3]-5e-3) > 1e-12 {
		t.Errorf("inductor current = %g, want 5mA", x[3])
	}
}

func TestVSourceTransientFollowsWaveform(t *testing.T) {
	w := wave.Sine{Offset: 1, Amplitude: 1, Freq: 1e3}
	vs := NewVSource("V1", "n", "", w)
	resolve(vs, 0, -1)
	vs.SetBranchBase(1)
	s := mna.NewSystem(2)
	ctx := trCtx(0.25e-3, 1e-6, Trapezoidal) // quarter period: peak
	vs.Stamp(s, nil, ctx)
	if math.Abs(s.RHS(1)-2) > 1e-9 {
		t.Errorf("stamped V = %g, want 2 at sine peak", s.RHS(1))
	}
}

func TestSourceScaling(t *testing.T) {
	is := NewDCISource("I1", "n", "", 10e-6)
	resolve(is, 0, -1)
	s := mna.NewSystem(1)
	ctx := opCtx()
	ctx.SrcScale = 0.5
	is.Stamp(s, nil, ctx)
	if math.Abs(s.RHS(0)-5e-6) > 1e-18 {
		t.Errorf("scaled injection = %g, want 5µA", s.RHS(0))
	}
}

func TestISourceInjectsIntoPlus(t *testing.T) {
	// 1 µA into a 1 MΩ to ground: V = 1.
	is := NewDCISource("I1", "n", "", 1e-6)
	r := NewResistor("R1", "n", "", 1e6)
	resolve(is, 0, -1)
	resolve(r, 0, -1)
	s := mna.NewSystem(1)
	is.Stamp(s, nil, opCtx())
	r.Stamp(s, nil, opCtx())
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 {
		t.Errorf("V = %g, want +1 (current into plus)", x[0])
	}
}

func TestVCVSGain(t *testing.T) {
	// E = 10 × control; control node held at 0.3 V.
	vc := NewDCVSource("Vc", "c", "", 0.3)
	e := NewVCVS("E1", "out", "", "c", "", 10)
	rl := NewResistor("RL", "out", "", 1e3)
	resolve(vc, 0, -1)
	resolve(e, 1, -1, 0, -1)
	resolve(rl, 1, -1)
	vc.SetBranchBase(2)
	e.SetBranchBase(3)
	s := mna.NewSystem(4)
	for _, d := range []Stamper{vc, e, rl} {
		d.Stamp(s, nil, opCtx())
	}
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("out = %g, want 3", x[1])
	}
}

func TestDiodeForwardDrop(t *testing.T) {
	// 5 V source through 1 kΩ into diode: solve by fixed-point Newton here.
	d := NewDiode("D1", "a", "", nil)
	resolve(d, 0, -1)
	// Newton on the scalar node equation using the device's own stamps.
	x := []float64{0.6}
	var v float64
	for it := 0; it < 50; it++ {
		s := mna.NewSystem(1)
		d.Stamp(s, x, opCtx())
		// Thevenin drive: (5 - v)/1k into the node.
		s.Add(0, 0, 1e-3)
		s.AddRHS(0, 5e-3)
		xs, err := s.FactorSolve()
		if err != nil {
			t.Fatal(err)
		}
		v = xs[0]
		// Damp like the engine does.
		if dv := v - x[0]; math.Abs(dv) > 0.1 {
			v = x[0] + math.Copysign(0.1, dv)
		}
		x[0] = v
	}
	if v < 0.55 || v > 0.75 {
		t.Errorf("diode drop = %g, want ~0.6-0.7", v)
	}
	// KCL closure: diode current equals resistor current.
	id := d.Current(x)
	ir := (5 - v) / 1e3
	if math.Abs(id-ir) > 1e-7 {
		t.Errorf("KCL mismatch: id=%g ir=%g", id, ir)
	}
}

func TestDiodeExponentLimitingIsFinite(t *testing.T) {
	d := NewDiode("D1", "a", "", nil)
	resolve(d, 0, -1)
	id, gd := d.current(5) // would overflow a naive exp(5/0.0259)
	if math.IsInf(id, 0) || math.IsNaN(id) || math.IsInf(gd, 0) {
		t.Error("limited diode current overflowed")
	}
	if id <= 0 || gd <= 0 {
		t.Error("limited diode current must stay positive and monotone")
	}
}

func TestMOSFETCutoff(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 10e-6, 1e-6)
	resolve(m, 0, 1, 2)
	x := []float64{5, 0.3, 0} // vgs=0.3 < vt=0.7
	if got := m.DrainCurrent(x); got != 0 {
		t.Errorf("cutoff current = %g, want 0", got)
	}
	if m.Region(x) != "off" {
		t.Errorf("region = %s, want off", m.Region(x))
	}
}

func TestMOSFETSaturationCurrent(t *testing.T) {
	mod := DefaultNMOSModel()
	mod.Lambda = 0
	m := NewMOSFET("M1", "d", "g", "s", mod, 50e-6, 1e-6)
	resolve(m, 0, 1, 2)
	x := []float64{5, 1.7, 0} // vov = 1.0, deep saturation
	want := 0.5 * mod.KP * 50 * 1 * 1
	if got := m.DrainCurrent(x); math.Abs(got-want) > 1e-12 {
		t.Errorf("Id = %g, want %g", got, want)
	}
	if m.Region(x) != "sat" {
		t.Errorf("region = %s, want sat", m.Region(x))
	}
}

func TestMOSFETTriodeRegion(t *testing.T) {
	mod := DefaultNMOSModel()
	mod.Lambda = 0
	m := NewMOSFET("M1", "d", "g", "s", mod, 10e-6, 1e-6)
	resolve(m, 0, 1, 2)
	x := []float64{0.1, 1.7, 0} // vds=0.1 < vov=1.0
	beta := mod.KP * 10
	want := beta * (1.0*0.1 - 0.5*0.01)
	if got := m.DrainCurrent(x); math.Abs(got-want) > 1e-15 {
		t.Errorf("Id = %g, want %g", got, want)
	}
	if m.Region(x) != "triode" {
		t.Errorf("region = %s, want triode", m.Region(x))
	}
}

func TestMOSFETSymmetry(t *testing.T) {
	// Swapping drain and source voltages flips the current direction.
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 10e-6, 1e-6)
	resolve(m, 0, 1, 2)
	fwd := m.DrainCurrent([]float64{2, 3, 0})
	rev := m.DrainCurrent([]float64{0, 3, 2})
	if math.Abs(fwd+rev) > 1e-12 {
		t.Errorf("fwd=%g rev=%g, want mirror symmetry", fwd, rev)
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	nm := DefaultNMOSModel()
	pm := &MOSModel{Type: PMOS, VT0: -nm.VT0, KP: nm.KP, Lambda: nm.Lambda}
	n := NewMOSFET("MN", "d", "g", "s", nm, 10e-6, 1e-6)
	p := NewMOSFET("MP", "d", "g", "s", pm, 10e-6, 1e-6)
	resolve(n, 0, 1, 2)
	resolve(p, 0, 1, 2)
	xn := []float64{2, 1.5, 0}
	xp := []float64{-2, -1.5, 0}
	in := n.DrainCurrent(xn)
	ip := p.DrainCurrent(xp)
	if math.Abs(in+ip) > 1e-12 {
		t.Errorf("NMOS id=%g, PMOS id=%g, want opposite", in, ip)
	}
}

// TestMOSFETStampConsistency checks that the linearized stamp reproduces
// the device current at the linearization point: A·x0 - b must equal the
// exact KCL contribution.
func TestMOSFETStampConsistency(t *testing.T) {
	f := func(vd, vg, vs float64) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 5) }
		vd, vg, vs = clamp(vd), clamp(vg), clamp(vs)
		m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 20e-6, 1e-6)
		resolve(m, 0, 1, 2)
		x := []float64{vd, vg, vs}
		s := mna.NewSystem(3)
		m.Stamp(s, x, opCtx())
		// Row 0 (drain): sum_j A[0][j]·x[j] − b[0] should equal the current
		// leaving the drain node, i.e. +Id.
		lhs := 0.0
		for j := 0; j < 3; j++ {
			lhs += s.At(0, j) * x[j]
		}
		lhs -= s.RHS(0)
		id := m.DrainCurrent(x)
		return math.Abs(lhs-id) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPMOSStampConsistency is the PMOS analogue of the above.
func TestPMOSStampConsistency(t *testing.T) {
	f := func(vd, vg, vs float64) bool {
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 5) }
		vd, vg, vs = clamp(vd), clamp(vg), clamp(vs)
		m := NewMOSFET("M1", "d", "g", "s", DefaultPMOSModel(), 20e-6, 1e-6)
		resolve(m, 0, 1, 2)
		x := []float64{vd, vg, vs}
		s := mna.NewSystem(3)
		m.Stamp(s, x, opCtx())
		lhs := 0.0
		for j := 0; j < 3; j++ {
			lhs += s.At(0, j) * x[j]
		}
		lhs -= s.RHS(0)
		id := m.DrainCurrent(x)
		return math.Abs(lhs-id) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestMOSFETGmMatchesFiniteDifference validates the analytic gm against a
// numerical derivative in both triode and saturation.
func TestMOSFETGmMatchesFiniteDifference(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 20e-6, 1e-6)
	resolve(m, 0, 1, 2)
	for _, vds := range []float64{0.2, 3.0} {
		vg := 1.5
		h := 1e-6
		i1 := m.DrainCurrent([]float64{vds, vg + h, 0})
		i0 := m.DrainCurrent([]float64{vds, vg - h, 0})
		num := (i1 - i0) / (2 * h)
		_, gm, _, _, _, _ := m.operating([]float64{vds, vg, 0})
		if math.Abs(num-gm) > 1e-6*math.Max(1, math.Abs(gm)) {
			t.Errorf("vds=%g: gm=%g, finite-diff=%g", vds, gm, num)
		}
	}
}

func TestMOSFETCloneIndependence(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 20e-6, 1e-6)
	c := m.Clone().(*MOSFET)
	c.Model.KP *= 1.1
	if m.Model.KP != 120e-6 {
		t.Error("clone shares model storage with original")
	}
}

func TestRenameTerminal(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 20e-6, 1e-6)
	RenameTerminal(m, 2, "split")
	if m.TerminalNames()[2] != "split" {
		t.Errorf("terminal = %s, want split", m.TerminalNames()[2])
	}
}

func TestSaturationMarginSigns(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 20e-6, 1e-6)
	resolve(m, 0, 1, 2)
	if sm := m.SaturationMargin([]float64{3, 1.5, 0}); sm <= 0 {
		t.Errorf("saturation margin = %g, want > 0 in sat", sm)
	}
	if sm := m.SaturationMargin([]float64{0.2, 1.5, 0}); sm >= 0 {
		t.Errorf("saturation margin = %g, want < 0 in triode", sm)
	}
}
