package device

import (
	"math"

	"repro/internal/mna"
)

// DiodeModel holds the parameters of the exponential junction diode.
type DiodeModel struct {
	IS float64 // saturation current (A)
	N  float64 // emission coefficient
	VT float64 // thermal voltage (V)
}

// DefaultDiodeModel returns a generic silicon junction model at 300 K.
func DefaultDiodeModel() *DiodeModel {
	return &DiodeModel{IS: 1e-14, N: 1, VT: 0.02585}
}

// Diode is a two-terminal exponential junction (anode, cathode).
type Diode struct {
	base
	Model *DiodeModel
}

// NewDiode returns a diode from anode a to cathode k. A nil model gets
// the default silicon parameters.
func NewDiode(name, a, k string, m *DiodeModel) *Diode {
	if m == nil {
		m = DefaultDiodeModel()
	}
	return &Diode{base: newBase(name, a, k), Model: m}
}

// Clone implements Device. The model is copied so corner scaling of a
// clone never mutates the original.
func (d *Diode) Clone() Device {
	m := *d.Model
	return &Diode{base: d.cloneBase(), Model: &m}
}

// current returns (id, gd) at junction voltage v with exponent limiting
// to keep Newton iterations finite.
func (d *Diode) current(v float64) (id, gd float64) {
	nvt := d.Model.N * d.Model.VT
	// Limit the exponent: above vmax the exponential is continued
	// linearly, which preserves C1 continuity and prevents overflow.
	vmax := nvt * 40
	if v > vmax {
		e := math.Exp(40)
		id = d.Model.IS * (e*(1+(v-vmax)/nvt) - 1)
		gd = d.Model.IS * e / nvt
		return id, gd
	}
	e := math.Exp(v / nvt)
	id = d.Model.IS * (e - 1)
	gd = d.Model.IS * e / nvt
	return id, gd
}

// Stamp implements Stamper with the linearized Norton companion:
// i ≈ id0 + gd·(v − v0), stamped as conductance gd plus the residual
// current id0 − gd·v0 from anode to cathode.
func (d *Diode) Stamp(s *mna.System, x []float64, ctx *Context) {
	a, k := d.idx[0], d.idx[1]
	v := volt(x, a) - volt(x, k)
	id, gd := d.current(v)
	geq := gd + ctx.Gmin
	ieq := id - gd*v
	s.StampConductance(a, k, geq)
	s.StampCurrent(a, k, ieq)
}

// StampAC implements ACStamper with the small-signal conductance at the
// operating point.
func (d *Diode) StampAC(s *mna.ComplexSystem, xop []float64, _ float64) {
	d.StampACBase(s, xop)
}

// StampACBase implements ACSplitStamper.
func (d *Diode) StampACBase(s *mna.ComplexSystem, xop []float64) {
	v := volt(xop, d.idx[0]) - volt(xop, d.idx[1])
	_, gd := d.current(v)
	s.StampAdmittance(d.idx[0], d.idx[1], complex(gd, 0))
}

// StampACReactive implements ACSplitStamper: the junction is modelled
// without capacitance.
func (d *Diode) StampACReactive(*mna.ComplexSystem, []float64, float64) {}

// Current returns the diode current at the given solution.
func (d *Diode) Current(x []float64) float64 {
	v := volt(x, d.idx[0]) - volt(x, d.idx[1])
	id, _ := d.current(v)
	return id
}
