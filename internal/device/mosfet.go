package device

import (
	"fmt"

	"repro/internal/mna"
)

// MOSType distinguishes n-channel from p-channel transistors.
type MOSType int

const (
	// NMOS is an n-channel enhancement transistor.
	NMOS MOSType = iota
	// PMOS is a p-channel enhancement transistor.
	PMOS
)

// String returns "nmos" or "pmos".
func (t MOSType) String() string {
	if t == PMOS {
		return "pmos"
	}
	return "nmos"
}

// MOSModel holds the Shichman–Hodges (SPICE level-1) parameters shared by
// transistors of one flavour. VT0 is expressed for the n-channel
// convention; PMOS models carry a negative VT0.
type MOSModel struct {
	Type   MOSType
	VT0    float64 // threshold voltage (V); negative for PMOS
	KP     float64 // transconductance parameter k' = µ·Cox (A/V²)
	Lambda float64 // channel-length modulation (1/V)

	// Optional charge storage (see mosfetcap.go); zero values keep the
	// transistor purely static.
	Cox  float64 // gate-oxide capacitance (F/m²)
	CGSO float64 // gate-source overlap capacitance (F/m)
	CGDO float64 // gate-drain overlap capacitance (F/m)
}

// DefaultNMOSModel returns the n-channel model used by the IV-converter
// macro (0.7 V threshold, 120 µA/V²).
func DefaultNMOSModel() *MOSModel {
	return &MOSModel{Type: NMOS, VT0: 0.7, KP: 120e-6, Lambda: 0.05}
}

// DefaultPMOSModel returns the matching p-channel model (−0.8 V
// threshold, 40 µA/V²).
func DefaultPMOSModel() *MOSModel {
	return &MOSModel{Type: PMOS, VT0: -0.8, KP: 40e-6, Lambda: 0.1}
}

// MOSFET is a three-terminal (drain, gate, source) level-1 transistor.
// The bulk is assumed tied to the source (no body effect), which is how
// the macro's transistors are laid out.
type MOSFET struct {
	base
	Model *MOSModel
	W, L  float64 // channel width/length in metres
}

// NewMOSFET returns a transistor with terminals (drain, gate, source).
func NewMOSFET(name, d, g, s string, m *MOSModel, w, l float64) *MOSFET {
	if m == nil {
		panic("device: MOSFET requires a model")
	}
	if w <= 0 || l <= 0 {
		panic(fmt.Sprintf("device: MOSFET %s with non-positive geometry W=%g L=%g", name, w, l))
	}
	return &MOSFET{base: newBase(name, d, g, s), Model: m, W: w, L: l}
}

// Clone implements Device. The model is copied so corner scaling of a
// clone never mutates the original.
func (m *MOSFET) Clone() Device {
	mm := *m.Model
	return &MOSFET{base: m.cloneBase(), Model: &mm, W: m.W, L: m.L}
}

// Beta returns k'·W/L.
func (m *MOSFET) Beta() float64 { return m.Model.KP * m.W / m.L }

// ids evaluates the drain current and its partial derivatives for an
// n-channel-convention transistor with vds ≥ 0:
//
//	cutoff:  vgs ≤ VT              id = 0
//	triode:  vds < vgs − VT        id = β((vgs−VT)vds − vds²/2)(1+λvds)
//	sat:     vds ≥ vgs − VT        id = β/2 (vgs−VT)² (1+λvds)
func (m *MOSFET) ids(vgs, vds float64) (id, gm, gds float64) {
	vt := m.Model.VT0
	if m.Model.Type == PMOS {
		vt = -vt // after the sign transform below, thresholds are positive
	}
	beta := m.Beta()
	lam := m.Model.Lambda
	vov := vgs - vt
	if vov <= 0 {
		return 0, 0, 0
	}
	clm := 1 + lam*vds
	if vds < vov {
		// Triode region.
		id = beta * (vov*vds - 0.5*vds*vds) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-0.5*vds*vds)*lam
	} else {
		// Saturation.
		id = 0.5 * beta * vov * vov * clm
		gm = beta * vov * clm
		gds = 0.5 * beta * vov * vov * lam
	}
	return id, gm, gds
}

// operating evaluates the transistor at the node voltages in x and
// returns the drain current flowing into the drain terminal together
// with the linearization (gm, gds) referred to the ORIGINAL terminal
// order, plus the effective (vgs, vds) after source/drain swapping.
func (m *MOSFET) operating(x []float64) (id, gm, gds, vgs, vds float64, swapped bool) {
	vd := volt(x, m.idx[0])
	vg := volt(x, m.idx[1])
	vs := volt(x, m.idx[2])
	if m.Model.Type == PMOS {
		// Work in the mirrored domain where the PMOS looks like an NMOS.
		vd, vg, vs = -vd, -vg, -vs
	}
	// The level-1 device is symmetric: if vds < 0, the physical source is
	// the terminal labelled drain.
	if vd < vs {
		vd, vs = vs, vd
		swapped = true
	}
	vgs = vg - vs
	vds = vd - vs
	id, gm, gds = m.ids(vgs, vds)
	return id, gm, gds, vgs, vds, swapped
}

// Stamp implements Stamper with the standard linearized MOSFET companion:
// conductance gds between drain and source, transconductance gm
// controlled by (gate, source), and the residual current source.
func (m *MOSFET) Stamp(s *mna.System, x []float64, ctx *Context) {
	d, g, src := m.idx[0], m.idx[1], m.idx[2]
	neg := m.Model.Type == PMOS

	id, gm, gds, vgs, vds, swapped := m.operating(x)
	// Map back: in the mirrored+swapped domain, "drain" and "source" are:
	ed, es := d, src
	if swapped {
		ed, es = src, d
	}
	// Residual current in the mirrored domain flows ed -> es:
	// Ieq = I0 − gm·vgs0 − gds·vds0 with primed (mirrored) voltages.
	ieq := id - gm*vgs - gds*vds

	// Under the PMOS mirror the conductance and VCCS stamps are invariant
	// (double sign flip), but the residual current changes sign.
	s.StampConductance(ed, es, gds+ctx.Gmin)
	s.StampVCCS(ed, es, g, es, gm)
	if neg {
		s.StampCurrent(es, ed, ieq)
	} else {
		s.StampCurrent(es, ed, -ieq)
	}
}

// StampAC implements ACStamper with the small-signal model at the DC
// operating point: gds in parallel with a gm-VCCS, plus the gate
// capacitances when the model carries them.
func (m *MOSFET) StampAC(s *mna.ComplexSystem, xop []float64, omega float64) {
	m.StampACBase(s, xop)
	m.StampACReactive(s, xop, omega)
}

// StampACBase implements ACSplitStamper: the resistive small-signal
// model. This is the expensive part of the AC stamp (it re-evaluates the
// transistor at the operating point), and the part the cached sweep base
// assembles exactly once.
func (m *MOSFET) StampACBase(s *mna.ComplexSystem, xop []float64) {
	d, g, src := m.idx[0], m.idx[1], m.idx[2]
	_, gm, gds, _, _, swapped := m.operating(xop)
	ed, es := d, src
	if swapped {
		ed, es = src, d
	}
	s.StampAdmittance(ed, es, complex(gds, 0))
	s.StampVCCS(ed, es, g, es, complex(gm, 0))
}

// StampACReactive implements ACSplitStamper: the gate capacitances.
func (m *MOSFET) StampACReactive(s *mna.ComplexSystem, _ []float64, omega float64) {
	m.stampACCaps(s, omega)
}

// DrainCurrent returns the current flowing into the drain terminal at the
// given solution (negative for PMOS conducting "upward").
func (m *MOSFET) DrainCurrent(x []float64) float64 {
	id, _, _, _, _, swapped := m.operating(x)
	sign := 1.0
	if m.Model.Type == PMOS {
		sign = -sign
	}
	if swapped {
		sign = -sign
	}
	return sign * id
}

// Region reports the operating region at solution x: "off", "triode" or
// "sat", for diagnostics and tests.
func (m *MOSFET) Region(x []float64) string {
	_, _, _, vgs, vds, _ := m.operating(x)
	vt := m.Model.VT0
	if m.Model.Type == PMOS {
		vt = -vt
	}
	switch {
	case vgs-vt <= 0:
		return "off"
	case vds < vgs-vt:
		return "triode"
	default:
		return "sat"
	}
}

// SaturationMargin returns vds − (vgs − VT) at solution x; positive in
// saturation.
func (m *MOSFET) SaturationMargin(x []float64) float64 {
	_, _, _, vgs, vds, _ := m.operating(x)
	vt := m.Model.VT0
	if m.Model.Type == PMOS {
		vt = -vt
	}
	return vds - (vgs - vt)
}

// Gm returns the small-signal transconductance at solution x, used by
// noise analysis and diagnostics.
func (m *MOSFET) Gm(x []float64) float64 {
	_, gm, _, _, _, _ := m.operating(x)
	return gm
}
