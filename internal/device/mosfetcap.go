package device

import (
	"repro/internal/mna"
)

// Gate-capacitance extension of the level-1 MOSFET. The 1997 paper's
// macro relied on explicit compensation capacitors; real layouts add
// gate-oxide and overlap capacitance on every transistor. When a model
// carries oxide/overlap parameters, the MOSFET becomes a dynamic device
// with two charge-storage branches:
//
//	Cgs = CGSO·W + (2/3)·Cox·W·L     (channel charge assigned to the source)
//	Cgd = CGDO·W                     (overlap only, saturation convention)
//
// Both are held constant across regions (a simplified Meyer model) —
// adequate for the macro-level dynamics the test generator needs. All
// parameters default to zero, which keeps the transistor purely static.

// WithGateCaps sets oxide and overlap capacitance on a model and returns
// it, for fluent construction. cox is in F/m², cgso/cgdo in F/m.
func (m *MOSModel) WithGateCaps(cox, cgso, cgdo float64) *MOSModel {
	m.Cox = cox
	m.CGSO = cgso
	m.CGDO = cgdo
	return m
}

// Cgs returns the effective gate-source capacitance of the transistor.
func (m *MOSFET) Cgs() float64 {
	return m.Model.CGSO*m.W + (2.0/3.0)*m.Model.Cox*m.W*m.L
}

// Cgd returns the effective gate-drain capacitance of the transistor.
func (m *MOSFET) Cgd() float64 {
	return m.Model.CGDO * m.W
}

// hasCaps reports whether the transistor stores any charge.
func (m *MOSFET) hasCaps() bool { return m.Cgs() > 0 || m.Cgd() > 0 }

// NumStates implements Dynamic: [vgs, igs, vgd, igd].
func (m *MOSFET) NumStates() int { return 4 }

// InitState implements Dynamic: capacitor voltages from the DC solution,
// zero currents.
func (m *MOSFET) InitState(x []float64, state []float64) {
	vd := volt(x, m.idx[0])
	vg := volt(x, m.idx[1])
	vs := volt(x, m.idx[2])
	state[0] = vg - vs
	state[1] = 0
	state[2] = vg - vd
	state[3] = 0
}

// capCompanion computes the Norton companion of one linear capacitor.
func capCompanion(c float64, vPrev, iPrev float64, ctx *Context) (geq, ieq float64) {
	switch ctx.Integ {
	case Trapezoidal:
		geq = 2 * c / ctx.Dt
		ieq = geq*vPrev + iPrev
	default:
		geq = c / ctx.Dt
		ieq = geq * vPrev
	}
	return geq, ieq
}

// StampDynamic implements Dynamic: the two gate capacitors' companion
// models between (gate, source) and (gate, drain).
func (m *MOSFET) StampDynamic(s *mna.System, _ []float64, state []float64, ctx *Context) {
	m.StampCompanionMatrix(s, ctx)
	m.StampCompanionRHS(s, state, ctx)
}

// StampCompanionMatrix implements SplitDynamic. The simplified Meyer
// capacitances are region-independent constants, so geq depends only on
// the step configuration.
func (m *MOSFET) StampCompanionMatrix(s *mna.System, ctx *Context) {
	if !m.hasCaps() {
		return
	}
	d, g, src := m.idx[0], m.idx[1], m.idx[2]
	if cgs := m.Cgs(); cgs > 0 {
		geq, _ := capCompanion(cgs, 0, 0, ctx)
		s.StampConductance(g, src, geq)
	}
	if cgd := m.Cgd(); cgd > 0 {
		geq, _ := capCompanion(cgd, 0, 0, ctx)
		s.StampConductance(g, d, geq)
	}
}

// StampCompanionRHS implements SplitDynamic.
func (m *MOSFET) StampCompanionRHS(s *mna.System, state []float64, ctx *Context) {
	if !m.hasCaps() {
		return
	}
	d, g, src := m.idx[0], m.idx[1], m.idx[2]
	if cgs := m.Cgs(); cgs > 0 {
		_, ieq := capCompanion(cgs, state[0], state[1], ctx)
		s.StampCurrent(src, g, ieq)
	}
	if cgd := m.Cgd(); cgd > 0 {
		_, ieq := capCompanion(cgd, state[2], state[3], ctx)
		s.StampCurrent(d, g, ieq)
	}
}

// Commit implements Dynamic.
func (m *MOSFET) Commit(x []float64, state []float64, ctx *Context) {
	if !m.hasCaps() {
		return
	}
	vd := volt(x, m.idx[0])
	vg := volt(x, m.idx[1])
	vs := volt(x, m.idx[2])
	if cgs := m.Cgs(); cgs > 0 {
		geq, ieq := capCompanion(cgs, state[0], state[1], ctx)
		v := vg - vs
		state[0] = v
		state[1] = geq*v - ieq
	}
	if cgd := m.Cgd(); cgd > 0 {
		geq, ieq := capCompanion(cgd, state[2], state[3], ctx)
		v := vg - vd
		state[2] = v
		state[3] = geq*v - ieq
	}
}

// stampACCaps adds the gate capacitances to the small-signal system.
func (m *MOSFET) stampACCaps(s *mna.ComplexSystem, omega float64) {
	if !m.hasCaps() {
		return
	}
	d, g, src := m.idx[0], m.idx[1], m.idx[2]
	if cgs := m.Cgs(); cgs > 0 {
		s.StampAdmittance(g, src, complex(0, omega*cgs))
	}
	if cgd := m.Cgd(); cgd > 0 {
		s.StampAdmittance(g, d, complex(0, omega*cgd))
	}
}
