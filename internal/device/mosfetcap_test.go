package device

import (
	"math"
	"testing"

	"repro/internal/mna"
)

func capMOS() *MOSFET {
	mod := DefaultNMOSModel().WithGateCaps(3.45e-3, 0.3e-9, 0.3e-9)
	return NewMOSFET("M1", "d", "g", "s", mod, 10e-6, 1e-6)
}

func TestGateCapValues(t *testing.T) {
	m := capMOS()
	wantCgs := 0.3e-9*10e-6 + (2.0/3.0)*3.45e-3*10e-6*1e-6
	wantCgd := 0.3e-9 * 10e-6
	if math.Abs(m.Cgs()-wantCgs) > 1e-21 {
		t.Errorf("Cgs = %g, want %g", m.Cgs(), wantCgs)
	}
	if math.Abs(m.Cgd()-wantCgd) > 1e-21 {
		t.Errorf("Cgd = %g, want %g", m.Cgd(), wantCgd)
	}
}

func TestDefaultModelHasNoCaps(t *testing.T) {
	m := NewMOSFET("M1", "d", "g", "s", DefaultNMOSModel(), 10e-6, 1e-6)
	if m.hasCaps() {
		t.Error("default model should be purely static")
	}
	// Dynamic stamps must be no-ops.
	resolve(m, 0, 1, 2)
	s := mna.NewSystem(3)
	state := make([]float64, m.NumStates())
	m.StampDynamic(s, nil, state, trCtx(1e-9, 1e-9, BackwardEuler))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if s.At(i, j) != 0 {
				t.Fatal("capless MOSFET stamped dynamics")
			}
		}
	}
}

func TestGateCapInitState(t *testing.T) {
	m := capMOS()
	resolve(m, 0, 1, 2)
	state := make([]float64, m.NumStates())
	m.InitState([]float64{3, 1.5, 0.5}, state)
	if state[0] != 1.0 { // vgs = 1.5 - 0.5
		t.Errorf("vgs state = %g, want 1", state[0])
	}
	if state[2] != -1.5 { // vgd = 1.5 - 3
		t.Errorf("vgd state = %g, want -1.5", state[2])
	}
	if state[1] != 0 || state[3] != 0 {
		t.Error("initial cap currents must be zero")
	}
}

func TestGateCapCommitConstantVoltage(t *testing.T) {
	m := capMOS()
	resolve(m, 0, 1, 2)
	state := make([]float64, m.NumStates())
	x := []float64{3, 1.5, 0.5}
	m.InitState(x, state)
	ctx := trCtx(1e-9, 1e-9, BackwardEuler)
	m.Commit(x, state, ctx)
	if math.Abs(state[1]) > 1e-18 || math.Abs(state[3]) > 1e-18 {
		t.Errorf("constant voltages should give zero cap currents, got %g/%g", state[1], state[3])
	}
}

func TestGateCapACAdmittance(t *testing.T) {
	m := capMOS()
	resolve(m, 0, 1, 2)
	s := mna.NewComplexSystem(3)
	omega := 2 * math.Pi * 1e6
	// Off transistor: gm = gds = 0, only the caps stamp.
	m.StampAC(s, []float64{0, 0, 0}, omega)
	wantGS := omega * m.Cgs()
	if got := imag(s.At(1, 1)); math.Abs(got-(omega*m.Cgs()+omega*m.Cgd())) > 1e-12 {
		t.Errorf("gate self-admittance = %g, want %g", got, omega*(m.Cgs()+m.Cgd()))
	}
	if got := imag(s.At(1, 2)); math.Abs(got+wantGS) > 1e-12 {
		t.Errorf("gate-source coupling = %g, want %g", got, -wantGS)
	}
}

func TestWithGateCapsFluent(t *testing.T) {
	m := DefaultPMOSModel().WithGateCaps(1e-3, 1e-10, 2e-10)
	if m.Cox != 1e-3 || m.CGSO != 1e-10 || m.CGDO != 2e-10 {
		t.Error("WithGateCaps did not set parameters")
	}
}

func TestGateCapCloneIndependence(t *testing.T) {
	m := capMOS()
	c := m.Clone().(*MOSFET)
	c.Model.Cox = 0
	if m.Model.Cox == 0 {
		t.Error("clone shares cap parameters with original")
	}
}
