package device

import (
	"fmt"

	"repro/internal/mna"
)

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	base
	R float64 // ohms, must be > 0
}

// NewResistor returns a resistor named name of r ohms between nodes a and b.
func NewResistor(name, a, b string, r float64) *Resistor {
	if r <= 0 {
		panic(fmt.Sprintf("device: resistor %s with non-positive resistance %g", name, r))
	}
	return &Resistor{base: newBase(name, a, b), R: r}
}

// Clone implements Device.
func (r *Resistor) Clone() Device { return &Resistor{base: r.cloneBase(), R: r.R} }

// ScaleValue implements Scalable.
func (r *Resistor) ScaleValue(k float64) { r.R *= k }

// SetResistance retargets the resistor to r ohms. Changing a linear
// device's value invalidates any engine base snapshot stamped from it —
// sim.Engine.Retarget is the sanctioned caller and performs that
// invalidation; mutating R behind a live engine's back is not safe.
func (r *Resistor) SetResistance(rOhms float64) error {
	if !(rOhms > 0) { // rejects zero, negatives, and NaN
		return fmt.Errorf("device: resistor %s retargeted to non-positive resistance %g", r.Name(), rOhms)
	}
	r.R = rOhms
	return nil
}

// Stamp implements Stamper.
func (r *Resistor) Stamp(s *mna.System, _ []float64, ctx *Context) {
	r.StampLinearMatrix(s, ctx)
}

// StampLinearMatrix implements LinearStamper.
func (r *Resistor) StampLinearMatrix(s *mna.System, _ *Context) {
	s.StampConductance(r.idx[0], r.idx[1], 1/r.R)
}

// StampLinearRHS implements LinearStamper: a resistor has no sources.
func (r *Resistor) StampLinearRHS(*mna.System, *Context) {}

// StampAC implements ACStamper.
func (r *Resistor) StampAC(s *mna.ComplexSystem, xop []float64, _ float64) {
	r.StampACBase(s, xop)
}

// StampACBase implements ACSplitStamper.
func (r *Resistor) StampACBase(s *mna.ComplexSystem, _ []float64) {
	s.StampAdmittance(r.idx[0], r.idx[1], complex(1/r.R, 0))
}

// StampACReactive implements ACSplitStamper: a resistor is purely real.
func (r *Resistor) StampACReactive(*mna.ComplexSystem, []float64, float64) {}

// Current returns the current flowing from terminal a to terminal b for a
// given solution.
func (r *Resistor) Current(x []float64) float64 {
	return (volt(x, r.idx[0]) - volt(x, r.idx[1])) / r.R
}

// Capacitor is a linear two-terminal capacitance. In OP mode it is an
// open circuit; in transient mode it stamps a Norton companion model.
type Capacitor struct {
	base
	C float64 // farads, must be > 0
}

// NewCapacitor returns a capacitor named name of c farads between a and b.
func NewCapacitor(name, a, b string, c float64) *Capacitor {
	if c <= 0 {
		panic(fmt.Sprintf("device: capacitor %s with non-positive capacitance %g", name, c))
	}
	return &Capacitor{base: newBase(name, a, b), C: c}
}

// Clone implements Device.
func (c *Capacitor) Clone() Device { return &Capacitor{base: c.cloneBase(), C: c.C} }

// ScaleValue implements Scalable.
func (c *Capacitor) ScaleValue(k float64) { c.C *= k }

// NumStates implements Dynamic: state = [v(t_n), i(t_n)].
func (c *Capacitor) NumStates() int { return 2 }

// InitState implements Dynamic. At a DC operating point the capacitor
// current is zero.
func (c *Capacitor) InitState(x []float64, state []float64) {
	state[0] = volt(x, c.idx[0]) - volt(x, c.idx[1])
	state[1] = 0
}

// StampDynamic implements Dynamic: trapezoidal geq = 2C/dt with
// Ieq = geq·v_n + i_n, or backward-Euler geq = C/dt with Ieq = geq·v_n.
// The companion current Ieq flows from terminal b to a (source into the
// + node).
func (c *Capacitor) StampDynamic(s *mna.System, _ []float64, state []float64, ctx *Context) {
	c.StampCompanionMatrix(s, ctx)
	c.StampCompanionRHS(s, state, ctx)
}

// StampCompanionMatrix implements SplitDynamic: geq depends only on the
// step size and method.
func (c *Capacitor) StampCompanionMatrix(s *mna.System, ctx *Context) {
	geq := c.C / ctx.Dt
	if ctx.Integ == Trapezoidal {
		geq = 2 * c.C / ctx.Dt
	}
	s.StampConductance(c.idx[0], c.idx[1], geq)
}

// StampCompanionRHS implements SplitDynamic.
func (c *Capacitor) StampCompanionRHS(s *mna.System, state []float64, ctx *Context) {
	_, ieq := c.companion(state, ctx)
	s.StampCurrent(c.idx[1], c.idx[0], ieq)
}

func (c *Capacitor) companion(state []float64, ctx *Context) (geq, ieq float64) {
	switch ctx.Integ {
	case Trapezoidal:
		geq = 2 * c.C / ctx.Dt
		ieq = geq*state[0] + state[1]
	default: // BackwardEuler
		geq = c.C / ctx.Dt
		ieq = geq * state[0]
	}
	return geq, ieq
}

// Commit implements Dynamic: i_{n+1} = geq·v_{n+1} − Ieq.
func (c *Capacitor) Commit(x []float64, state []float64, ctx *Context) {
	geq, ieq := c.companion(state, ctx)
	v := volt(x, c.idx[0]) - volt(x, c.idx[1])
	state[0] = v
	state[1] = geq*v - ieq
}

// StampAC implements ACStamper with admittance jωC.
func (c *Capacitor) StampAC(s *mna.ComplexSystem, xop []float64, omega float64) {
	c.StampACReactive(s, xop, omega)
}

// StampACBase implements ACSplitStamper: a capacitor is purely reactive.
func (c *Capacitor) StampACBase(*mna.ComplexSystem, []float64) {}

// StampACReactive implements ACSplitStamper.
func (c *Capacitor) StampACReactive(s *mna.ComplexSystem, _ []float64, omega float64) {
	s.StampAdmittance(c.idx[0], c.idx[1], complex(0, omega*c.C))
}

// Inductor is a linear two-terminal inductance. It carries a branch
// unknown so the OP short circuit and the transient companion model are
// both well posed.
type Inductor struct {
	base
	L      float64 // henries, must be > 0
	branch int
}

// NewInductor returns an inductor named name of l henries between a and b.
func NewInductor(name, a, b string, l float64) *Inductor {
	if l <= 0 {
		panic(fmt.Sprintf("device: inductor %s with non-positive inductance %g", name, l))
	}
	return &Inductor{base: newBase(name, a, b), L: l, branch: -1}
}

// Clone implements Device.
func (l *Inductor) Clone() Device { return &Inductor{base: l.cloneBase(), L: l.L, branch: -1} }

// ScaleValue implements Scalable.
func (l *Inductor) ScaleValue(k float64) { l.L *= k }

// NumBranches implements Brancher.
func (l *Inductor) NumBranches() int { return 1 }

// SetBranchBase implements Brancher.
func (l *Inductor) SetBranchBase(base int) { l.branch = base }

// BranchBase implements Brancher.
func (l *Inductor) BranchBase() int { return l.branch }

// Stamp implements Stamper. In OP mode the inductor is an ideal short:
// V(a) − V(b) = 0 with the branch current as unknown. Transient stamping
// happens in StampDynamic.
func (l *Inductor) Stamp(s *mna.System, _ []float64, ctx *Context) {
	l.StampLinearMatrix(s, ctx)
}

// StampLinearMatrix implements LinearStamper: the OP short-circuit
// constraint pattern (the RHS entry is zero, so the matrix part is all
// there is).
func (l *Inductor) StampLinearMatrix(s *mna.System, ctx *Context) {
	if ctx.Mode != OP {
		return
	}
	br := l.branch
	s.Add(l.idx[0], br, 1)
	s.Add(l.idx[1], br, -1)
	s.Add(br, l.idx[0], 1)
	s.Add(br, l.idx[1], -1)
}

// StampLinearRHS implements LinearStamper.
func (l *Inductor) StampLinearRHS(*mna.System, *Context) {}

// NumStates implements Dynamic: state = [i(t_n), v(t_n)].
func (l *Inductor) NumStates() int { return 2 }

// InitState implements Dynamic.
func (l *Inductor) InitState(x []float64, state []float64) {
	state[0] = x[l.branch]
	state[1] = 0 // dc voltage across an inductor is zero
}

// StampDynamic implements Dynamic using the branch formulation:
// v = L·di/dt discretized as V(a) − V(b) − req·i = −veq with
// req = 2L/dt (TR) and veq = req·i_n + v_n, or req = L/dt (BE) and
// veq = req·i_n.
func (l *Inductor) StampDynamic(s *mna.System, _ []float64, state []float64, ctx *Context) {
	l.StampCompanionMatrix(s, ctx)
	l.StampCompanionRHS(s, state, ctx)
}

// StampCompanionMatrix implements SplitDynamic: the branch pattern and
// req depend only on the step size and method.
func (l *Inductor) StampCompanionMatrix(s *mna.System, ctx *Context) {
	req := l.L / ctx.Dt
	if ctx.Integ == Trapezoidal {
		req = 2 * l.L / ctx.Dt
	}
	br := l.branch
	s.Add(l.idx[0], br, 1)
	s.Add(l.idx[1], br, -1)
	s.Add(br, l.idx[0], 1)
	s.Add(br, l.idx[1], -1)
	s.Add(br, br, -req)
}

// StampCompanionRHS implements SplitDynamic.
func (l *Inductor) StampCompanionRHS(s *mna.System, state []float64, ctx *Context) {
	_, veq := l.companion(state, ctx)
	s.AddRHS(l.branch, -veq)
}

func (l *Inductor) companion(state []float64, ctx *Context) (req, veq float64) {
	switch ctx.Integ {
	case Trapezoidal:
		req = 2 * l.L / ctx.Dt
		veq = req*state[0] + state[1]
	default:
		req = l.L / ctx.Dt
		veq = req * state[0]
	}
	return req, veq
}

// Commit implements Dynamic.
func (l *Inductor) Commit(x []float64, state []float64, ctx *Context) {
	i := x[l.branch]
	req, veq := l.companion(state, ctx)
	state[0] = i
	state[1] = req*i - veq
}

// StampAC implements ACStamper: branch equation V(a) − V(b) = jωL·i.
func (l *Inductor) StampAC(s *mna.ComplexSystem, xop []float64, omega float64) {
	l.StampACBase(s, xop)
	l.StampACReactive(s, xop, omega)
}

// StampACBase implements ACSplitStamper: the branch constraint pattern.
func (l *Inductor) StampACBase(s *mna.ComplexSystem, _ []float64) {
	br := l.branch
	s.Add(l.idx[0], br, 1)
	s.Add(l.idx[1], br, -1)
	s.Add(br, l.idx[0], 1)
	s.Add(br, l.idx[1], -1)
}

// StampACReactive implements ACSplitStamper: the −jωL branch impedance.
func (l *Inductor) StampACReactive(s *mna.ComplexSystem, _ []float64, omega float64) {
	s.Add(l.branch, l.branch, complex(0, -omega*l.L))
}
