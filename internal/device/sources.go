package device

import (
	"repro/internal/mna"
	"repro/internal/wave"
)

// VSource is an independent voltage source V(plus) − V(minus) = w(t),
// carrying one branch unknown whose solved value is the source current
// flowing into the plus terminal from inside the source (SPICE
// convention: positive current flows from plus, through the source, out
// of minus — the solved branch value is the current entering the plus
// node from the external circuit, negated).
type VSource struct {
	base
	W      wave.Waveform
	branch int
}

// NewVSource returns a voltage source between plus and minus driven by w.
func NewVSource(name, plus, minus string, w wave.Waveform) *VSource {
	return &VSource{base: newBase(name, plus, minus), W: w, branch: -1}
}

// NewDCVSource returns a constant voltage source.
func NewDCVSource(name, plus, minus string, v float64) *VSource {
	return NewVSource(name, plus, minus, wave.DC(v))
}

// Clone implements Device.
func (v *VSource) Clone() Device { return &VSource{base: v.cloneBase(), W: v.W, branch: -1} }

// NumBranches implements Brancher.
func (v *VSource) NumBranches() int { return 1 }

// SetBranchBase implements Brancher.
func (v *VSource) SetBranchBase(base int) { v.branch = base }

// BranchBase implements Brancher.
func (v *VSource) BranchBase() int { return v.branch }

// Stamp implements Stamper.
func (v *VSource) Stamp(s *mna.System, _ []float64, ctx *Context) {
	v.StampLinearMatrix(s, ctx)
	v.StampLinearRHS(s, ctx)
}

// StampLinearMatrix implements LinearStamper: the branch constraint
// pattern, independent of the waveform.
func (v *VSource) StampLinearMatrix(s *mna.System, _ *Context) {
	br := v.branch
	s.Add(v.idx[0], br, 1)
	s.Add(v.idx[1], br, -1)
	s.Add(br, v.idx[0], 1)
	s.Add(br, v.idx[1], -1)
}

// StampLinearRHS implements LinearStamper: the source value at the
// assembly time, scaled for source stepping.
func (v *VSource) StampLinearRHS(s *mna.System, ctx *Context) {
	val := v.W.DC()
	if ctx.Mode == Transient {
		val = v.W.Value(ctx.Time)
	}
	s.AddRHS(v.branch, val*ctx.SrcScale)
}

// StampAC implements ACStamper. Independent sources are AC-quiet unless
// designated as the AC input via ACMagnitude on the analysis, so the
// branch enforces ΔV = 0 here; the engine overrides the RHS for the
// excitation source.
func (v *VSource) StampAC(s *mna.ComplexSystem, xop []float64, _ float64) {
	v.StampACBase(s, xop)
}

// StampACBase implements ACSplitStamper. The RHS entry is zero, so only
// the matrix pattern is stamped; the engine drives the excitation
// through the RHS separately.
func (v *VSource) StampACBase(s *mna.ComplexSystem, _ []float64) {
	br := v.branch
	s.Add(v.idx[0], br, 1)
	s.Add(v.idx[1], br, -1)
	s.Add(br, v.idx[0], 1)
	s.Add(br, v.idx[1], -1)
}

// StampACReactive implements ACSplitStamper.
func (v *VSource) StampACReactive(*mna.ComplexSystem, []float64, float64) {}

// Current returns the MNA branch variable: the current flowing into the
// plus terminal from the external circuit. For a supply that delivers
// current (e.g. Vdd at the top of a circuit) the value is negative;
// -Current is the delivered supply current.
func (v *VSource) Current(x []float64) float64 { return x[v.branch] }

// ISource is an independent current source pushing w(t) amperes into the
// plus terminal (out of minus, through the source, into plus).
type ISource struct {
	base
	W wave.Waveform
}

// NewISource returns a current source whose current w flows from minus to
// plus through the source (i.e. is injected into node plus).
func NewISource(name, plus, minus string, w wave.Waveform) *ISource {
	return &ISource{base: newBase(name, plus, minus), W: w}
}

// NewDCISource returns a constant current source.
func NewDCISource(name, plus, minus string, i float64) *ISource {
	return NewISource(name, plus, minus, wave.DC(i))
}

// Clone implements Device.
func (i *ISource) Clone() Device { return &ISource{base: i.cloneBase(), W: i.W} }

// Stamp implements Stamper.
func (i *ISource) Stamp(s *mna.System, _ []float64, ctx *Context) {
	i.StampLinearRHS(s, ctx)
}

// StampLinearMatrix implements LinearStamper: a current source is pure RHS.
func (i *ISource) StampLinearMatrix(*mna.System, *Context) {}

// StampLinearRHS implements LinearStamper.
func (i *ISource) StampLinearRHS(s *mna.System, ctx *Context) {
	val := i.W.DC()
	if ctx.Mode == Transient {
		val = i.W.Value(ctx.Time)
	}
	s.StampCurrent(i.idx[1], i.idx[0], val*ctx.SrcScale)
}

// StampAC implements ACStamper: quiet in AC analysis.
func (i *ISource) StampAC(_ *mna.ComplexSystem, _ []float64, _ float64) {}

// StampACBase implements ACSplitStamper.
func (i *ISource) StampACBase(*mna.ComplexSystem, []float64) {}

// StampACReactive implements ACSplitStamper.
func (i *ISource) StampACReactive(*mna.ComplexSystem, []float64, float64) {}

// VCVS is a linear voltage-controlled voltage source:
// V(p) − V(m) = Gain · (V(cp) − V(cm)). Terminal order: p, m, cp, cm.
type VCVS struct {
	base
	Gain   float64
	branch int
}

// NewVCVS returns an ideal voltage-controlled voltage source.
func NewVCVS(name, p, m, cp, cm string, gain float64) *VCVS {
	return &VCVS{base: newBase(name, p, m, cp, cm), Gain: gain, branch: -1}
}

// Clone implements Device.
func (e *VCVS) Clone() Device { return &VCVS{base: e.cloneBase(), Gain: e.Gain, branch: -1} }

// NumBranches implements Brancher.
func (e *VCVS) NumBranches() int { return 1 }

// SetBranchBase implements Brancher.
func (e *VCVS) SetBranchBase(base int) { e.branch = base }

// BranchBase implements Brancher.
func (e *VCVS) BranchBase() int { return e.branch }

// Stamp implements Stamper.
func (e *VCVS) Stamp(s *mna.System, _ []float64, _ *Context) {
	e.stampReal(s)
}

// StampLinearMatrix implements LinearStamper.
func (e *VCVS) StampLinearMatrix(s *mna.System, _ *Context) {
	e.stampReal(s)
}

// StampLinearRHS implements LinearStamper.
func (e *VCVS) StampLinearRHS(*mna.System, *Context) {}

func (e *VCVS) stampReal(s *mna.System) {
	br := e.branch
	p, m, cp, cm := e.idx[0], e.idx[1], e.idx[2], e.idx[3]
	s.Add(p, br, 1)
	s.Add(m, br, -1)
	s.Add(br, p, 1)
	s.Add(br, m, -1)
	s.Add(br, cp, -e.Gain)
	s.Add(br, cm, e.Gain)
}

// StampAC implements ACStamper.
func (e *VCVS) StampAC(s *mna.ComplexSystem, xop []float64, _ float64) {
	e.StampACBase(s, xop)
}

// StampACBase implements ACSplitStamper.
func (e *VCVS) StampACBase(s *mna.ComplexSystem, _ []float64) {
	br := e.branch
	p, m, cp, cm := e.idx[0], e.idx[1], e.idx[2], e.idx[3]
	s.Add(p, br, 1)
	s.Add(m, br, -1)
	s.Add(br, p, 1)
	s.Add(br, m, -1)
	s.Add(br, cp, complex(-e.Gain, 0))
	s.Add(br, cm, complex(e.Gain, 0))
}

// StampACReactive implements ACSplitStamper.
func (e *VCVS) StampACReactive(*mna.ComplexSystem, []float64, float64) {}

// VCCS is a linear voltage-controlled current source: a current
// Gm · (V(cp) − V(cm)) flows from p to m through the external circuit
// (injected into m). Terminal order: p, m, cp, cm.
type VCCS struct {
	base
	Gm float64
}

// NewVCCS returns an ideal transconductor.
func NewVCCS(name, p, m, cp, cm string, gm float64) *VCCS {
	return &VCCS{base: newBase(name, p, m, cp, cm), Gm: gm}
}

// Clone implements Device.
func (g *VCCS) Clone() Device { return &VCCS{base: g.cloneBase(), Gm: g.Gm} }

// Stamp implements Stamper.
func (g *VCCS) Stamp(s *mna.System, _ []float64, ctx *Context) {
	g.StampLinearMatrix(s, ctx)
}

// StampLinearMatrix implements LinearStamper.
func (g *VCCS) StampLinearMatrix(s *mna.System, _ *Context) {
	s.StampVCCS(g.idx[0], g.idx[1], g.idx[2], g.idx[3], g.Gm)
}

// StampLinearRHS implements LinearStamper.
func (g *VCCS) StampLinearRHS(*mna.System, *Context) {}

// StampAC implements ACStamper.
func (g *VCCS) StampAC(s *mna.ComplexSystem, xop []float64, _ float64) {
	g.StampACBase(s, xop)
}

// StampACBase implements ACSplitStamper.
func (g *VCCS) StampACBase(s *mna.ComplexSystem, _ []float64) {
	s.StampVCCS(g.idx[0], g.idx[1], g.idx[2], g.idx[3], complex(g.Gm, 0))
}

// StampACReactive implements ACSplitStamper.
func (g *VCCS) StampACReactive(*mna.ComplexSystem, []float64, float64) {}
