// Package dsp post-processes transient waveforms into the return values
// the test configurations report: total harmonic distortion via Goertzel
// single-bin DFTs, RMS and mean levels, peak detection, accumulation
// (the paper's ΣV return value) and settling metrics.
package dsp

import (
	"fmt"
	"math"
)

// Goertzel evaluates the DFT of samples at the bin corresponding to k
// cycles over the whole record and returns the complex amplitude
// normalized so that a pure sine A·sin(2πkt/N) yields magnitude A.
//
// The record is assumed to span an integer number of periods of the
// fundamental; the test configurations arrange this by construction.
func Goertzel(samples []float64, k int) complex128 {
	n := len(samples)
	if n == 0 || k < 0 {
		return 0
	}
	w := 2 * math.Pi * float64(k) / float64(n)
	cw := math.Cos(w)
	coeff := 2 * cw
	var s0, s1, s2 float64
	for _, x := range samples {
		s0 = x + coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	re := s1*cw - s2
	im := s1 * math.Sin(w)
	// Scale: |X_k| for a unit sine is N/2.
	scale := 2 / float64(n)
	return complex(re*scale, im*scale)
}

// Amplitude returns the magnitude of the k-cycle bin of samples.
func Amplitude(samples []float64, k int) float64 {
	c := Goertzel(samples, k)
	return math.Hypot(real(c), imag(c))
}

// THDPercent computes total harmonic distortion of a record spanning
// `cycles` full periods of the fundamental:
//
//	THD = 100 · sqrt(Σ_{h=2..maxHarmonic} A_h²) / A_1
//
// in percent. It returns an error when the record is too short or the
// fundamental vanishes (no signal to measure).
func THDPercent(samples []float64, cycles, maxHarmonic int) (float64, error) {
	if cycles < 1 {
		return 0, fmt.Errorf("dsp: THD needs at least one full cycle, got %d", cycles)
	}
	if maxHarmonic < 2 {
		return 0, fmt.Errorf("dsp: THD needs maxHarmonic ≥ 2, got %d", maxHarmonic)
	}
	if len(samples) < 2*(maxHarmonic+1)*cycles {
		return 0, fmt.Errorf("dsp: %d samples too few for %d cycles × %d harmonics",
			len(samples), cycles, maxHarmonic)
	}
	fund := Amplitude(samples, cycles)
	if fund <= 0 || math.IsNaN(fund) {
		return 0, fmt.Errorf("dsp: zero fundamental, cannot form THD")
	}
	sum := 0.0
	for h := 2; h <= maxHarmonic; h++ {
		a := Amplitude(samples, h*cycles)
		sum += a * a
	}
	return 100 * math.Sqrt(sum) / fund, nil
}

// Mean returns the average of samples (0 for an empty slice).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range samples {
		s += v
	}
	return s / float64(len(samples))
}

// RMS returns the root-mean-square of samples.
func RMS(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range samples {
		s += v * v
	}
	return math.Sqrt(s / float64(len(samples)))
}

// Max returns the maximum sample (−Inf for an empty slice), the paper's
// Max(y1..yn) post-processing operator.
func Max(samples []float64) float64 {
	m := math.Inf(-1)
	for _, v := range samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum sample (+Inf for an empty slice).
func Min(samples []float64) float64 {
	m := math.Inf(1)
	for _, v := range samples {
		if v < m {
			m = v
		}
	}
	return m
}

// PeakToPeak returns Max − Min (0 for an empty slice).
func PeakToPeak(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	return Max(samples) - Min(samples)
}

// Accumulate returns the sum of samples scaled by the sample interval —
// the discrete integral ΣV·Δt of the paper's "sample and accumulate"
// return value (Fig. 1).
func Accumulate(samples []float64, dt float64) float64 {
	s := 0.0
	for _, v := range samples {
		s += v
	}
	return s * dt
}

// Resample picks the sample nearest to each requested time from a
// (times, values) record, emulating an ATE sampling comb (e.g. 100 MHz
// for 7.5 µs in test configurations #4/#5). times must be ascending.
func Resample(times, values []float64, at []float64) []float64 {
	out := make([]float64, len(at))
	j := 0
	for i, t := range at {
		for j+1 < len(times) && math.Abs(times[j+1]-t) <= math.Abs(times[j]-t) {
			j++
		}
		if len(values) > 0 {
			out[i] = values[j]
		}
	}
	return out
}

// SettlingTime returns the first time after which the signal stays within
// ±tol of its final value, or −1 if it never settles.
func SettlingTime(times, values []float64, tol float64) float64 {
	if len(values) == 0 {
		return -1
	}
	final := values[len(values)-1]
	settled := -1.0
	for i, v := range values {
		if math.Abs(v-final) > tol {
			settled = -1
			continue
		}
		if settled < 0 {
			settled = times[i]
		}
	}
	return settled
}

// Overshoot returns the maximum excursion beyond the final value,
// normalized by the total step size, in percent. A monotone response
// returns 0.
func Overshoot(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	start, final := values[0], values[len(values)-1]
	step := final - start
	if step == 0 {
		return 0
	}
	worst := 0.0
	for _, v := range values {
		var ex float64
		if step > 0 {
			ex = v - final
		} else {
			ex = final - v
		}
		if ex > worst {
			worst = ex
		}
	}
	return 100 * worst / math.Abs(step)
}
