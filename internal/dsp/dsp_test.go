package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

// sine generates n samples of Σ_k amp[k]·sin(2π·k·cycles·i/n + ph[k]).
func synth(n, cycles int, amp map[int]float64, ph map[int]float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n)
		for h, a := range amp {
			out[i] += a * math.Sin(2*math.Pi*float64(h*cycles)*t+ph[h])
		}
	}
	return out
}

func TestGoertzelPureSine(t *testing.T) {
	s := synth(1024, 4, map[int]float64{1: 2.5}, map[int]float64{1: 0.3})
	if got := Amplitude(s, 4); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("fundamental amplitude = %g, want 2.5", got)
	}
	if got := Amplitude(s, 8); got > 1e-9 {
		t.Errorf("2nd harmonic amplitude = %g, want 0", got)
	}
}

func TestGoertzelDCBin(t *testing.T) {
	s := make([]float64, 100)
	for i := range s {
		s[i] = 3
	}
	// Bin 0 of a DC signal: magnitude 2·mean (scale 2/N convention).
	if got := Amplitude(s, 0); math.Abs(got-6) > 1e-9 {
		t.Errorf("DC bin = %g, want 6", got)
	}
}

func TestGoertzelEmptyAndNegative(t *testing.T) {
	if Goertzel(nil, 1) != 0 {
		t.Error("empty record should give 0")
	}
	if Goertzel([]float64{1, 2}, -1) != 0 {
		t.Error("negative bin should give 0")
	}
}

func TestTHDKnownMixture(t *testing.T) {
	// 1.0 fundamental + 0.03 second + 0.04 third: THD = 5 %.
	s := synth(4096, 4,
		map[int]float64{1: 1, 2: 0.03, 3: 0.04},
		map[int]float64{1: 0, 2: 1, 3: 2})
	thd, err := THDPercent(s, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(thd-5) > 1e-6 {
		t.Errorf("THD = %g %%, want 5", thd)
	}
}

func TestTHDPureSineIsZero(t *testing.T) {
	s := synth(2048, 2, map[int]float64{1: 1}, map[int]float64{1: 0})
	thd, err := THDPercent(s, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if thd > 1e-9 {
		t.Errorf("THD of pure sine = %g %%, want 0", thd)
	}
}

func TestTHDErrors(t *testing.T) {
	s := synth(1024, 2, map[int]float64{1: 1}, map[int]float64{1: 0})
	if _, err := THDPercent(s, 0, 5); err == nil {
		t.Error("cycles=0 accepted")
	}
	if _, err := THDPercent(s, 2, 1); err == nil {
		t.Error("maxHarmonic=1 accepted")
	}
	if _, err := THDPercent(make([]float64, 8), 2, 5); err == nil {
		t.Error("short record accepted")
	}
	if _, err := THDPercent(make([]float64, 2048), 2, 5); err == nil {
		t.Error("zero fundamental accepted")
	}
}

// TestTHDInvariantToAmplitudeScale: THD is a ratio, so scaling the signal
// must not change it.
func TestTHDInvariantToAmplitudeScale(t *testing.T) {
	f := func(scaleRaw float64) bool {
		scale := 0.1 + math.Mod(math.Abs(scaleRaw), 10)
		base := synth(2048, 2, map[int]float64{1: 1, 3: 0.1}, map[int]float64{1: 0, 3: 0.5})
		scaled := make([]float64, len(base))
		for i, v := range base {
			scaled[i] = v * scale
		}
		a, err1 := THDPercent(base, 2, 5)
		b, err2 := THDPercent(scaled, 2, 5)
		return err1 == nil && err2 == nil && math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMeanRMS(t *testing.T) {
	s := []float64{1, -1, 1, -1}
	if Mean(s) != 0 {
		t.Errorf("Mean = %g, want 0", Mean(s))
	}
	if RMS(s) != 1 {
		t.Errorf("RMS = %g, want 1", RMS(s))
	}
	if Mean(nil) != 0 || RMS(nil) != 0 {
		t.Error("empty records should read 0")
	}
}

func TestRMSOfSine(t *testing.T) {
	s := synth(4096, 4, map[int]float64{1: 2}, map[int]float64{1: 0})
	if got := RMS(s); math.Abs(got-2/math.Sqrt2) > 1e-3 {
		t.Errorf("RMS = %g, want %g", got, 2/math.Sqrt2)
	}
}

func TestMinMaxPeakToPeak(t *testing.T) {
	s := []float64{0.5, -2, 3, 1}
	if Max(s) != 3 || Min(s) != -2 {
		t.Error("Min/Max wrong")
	}
	if PeakToPeak(s) != 5 {
		t.Errorf("PeakToPeak = %g, want 5", PeakToPeak(s))
	}
	if PeakToPeak(nil) != 0 {
		t.Error("empty PeakToPeak should be 0")
	}
	if !math.IsInf(Max(nil), -1) || !math.IsInf(Min(nil), 1) {
		t.Error("empty Max/Min should be ∓Inf")
	}
}

func TestAccumulate(t *testing.T) {
	s := []float64{1, 2, 3}
	if got := Accumulate(s, 0.5); math.Abs(got-3) > 1e-12 {
		t.Errorf("Accumulate = %g, want 3", got)
	}
}

func TestResampleNearest(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4}
	vals := []float64{10, 11, 12, 13, 14}
	got := Resample(times, vals, []float64{0.4, 0.6, 2.0, 3.9, 99})
	want := []float64{10, 11, 12, 14, 14}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Resample[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSettlingTime(t *testing.T) {
	times := []float64{0, 1, 2, 3, 4, 5}
	vals := []float64{0, 0.5, 0.9, 1.02, 0.99, 1.0}
	if got := SettlingTime(times, vals, 0.05); got != 3 {
		t.Errorf("settling = %g, want 3", got)
	}
	// Never settles within 0.001.
	if got := SettlingTime(times, []float64{0, 2, 0, 2, 0, 1}, 0.001); got != 5 {
		// only the final point is inside the band
		t.Errorf("settling = %g, want 5 (final point)", got)
	}
	if SettlingTime(nil, nil, 0.1) != -1 {
		t.Error("empty record should return -1")
	}
}

func TestOvershoot(t *testing.T) {
	// Rising step to 1.0 with a 1.2 peak: 20 % overshoot.
	vals := []float64{0, 0.7, 1.2, 0.95, 1.0}
	if got := Overshoot(vals); math.Abs(got-20) > 1e-9 {
		t.Errorf("overshoot = %g %%, want 20", got)
	}
	// Falling step, monotone: 0 %.
	if got := Overshoot([]float64{1, 0.6, 0.3, 0.1, 0}); got != 0 {
		t.Errorf("monotone overshoot = %g, want 0", got)
	}
	if Overshoot([]float64{1}) != 0 || Overshoot([]float64{1, 1}) != 0 {
		t.Error("degenerate records should be 0")
	}
}

// TestGoertzelMatchesNaiveDFT cross-checks the recurrence against the
// direct correlation definition on random-ish signals.
func TestGoertzelMatchesNaiveDFT(t *testing.T) {
	s := synth(512, 3, map[int]float64{1: 1, 2: 0.2, 5: 0.05},
		map[int]float64{1: 0.1, 2: 0.9, 5: 1.7})
	for _, k := range []int{0, 1, 3, 6, 15} {
		// Standard DFT convention: X_k = Σ x·e^{−jωn}.
		var re, im float64
		n := float64(len(s))
		for i, v := range s {
			ang := 2 * math.Pi * float64(k) * float64(i) / n
			re += v * math.Cos(ang)
			im -= v * math.Sin(ang)
		}
		re *= 2 / n
		im *= 2 / n
		g := Goertzel(s, k)
		if math.Abs(real(g)-re) > 1e-9 || math.Abs(imag(g)-im) > 1e-9 {
			t.Errorf("bin %d: goertzel=%v naive=(%g,%g)", k, g, re, im)
		}
	}
}
