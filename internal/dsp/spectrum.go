package dsp

import (
	"fmt"
	"math"
)

// Spectrum metrics beyond plain THD, for richer mixed-signal return
// values (SINAD/SFDR/ENOB are the standard dynamic ATE measurements a
// production flow would add next to the paper's THD configuration).

// Spectrum holds the single-sided amplitude spectrum of a coherent
// record: Amp[k] is the amplitude of the k-cycles-per-record bin.
type Spectrum struct {
	Amp []float64
	// Fundamental is the bin index of the stimulus fundamental.
	Fundamental int
}

// AnalyzeSpectrum computes bins 0..maxBin of a coherent record via
// Goertzel and marks the fundamental at `cycles` cycles per record.
func AnalyzeSpectrum(samples []float64, cycles, maxBin int) (*Spectrum, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("dsp: empty record")
	}
	if cycles < 1 || cycles > maxBin {
		return nil, fmt.Errorf("dsp: fundamental %d outside spectrum 0..%d", cycles, maxBin)
	}
	if maxBin >= len(samples)/2 {
		maxBin = len(samples)/2 - 1
	}
	sp := &Spectrum{Amp: make([]float64, maxBin+1), Fundamental: cycles}
	for k := 0; k <= maxBin; k++ {
		sp.Amp[k] = Amplitude(samples, k)
	}
	// The DC bin's 2/N scaling convention counts the mean twice.
	sp.Amp[0] /= 2
	return sp, nil
}

// SINADdB returns the signal to noise-and-distortion ratio in dB: the
// fundamental power against everything else except DC.
func (sp *Spectrum) SINADdB() (float64, error) {
	sig := sp.Amp[sp.Fundamental]
	if sig <= 0 {
		return 0, fmt.Errorf("dsp: zero fundamental")
	}
	noise := 0.0
	for k, a := range sp.Amp {
		if k == 0 || k == sp.Fundamental {
			continue
		}
		noise += a * a
	}
	if noise <= 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(sig*sig/noise), nil
}

// SFDRdB returns the spurious-free dynamic range in dB: fundamental over
// the largest other non-DC bin.
func (sp *Spectrum) SFDRdB() (float64, error) {
	sig := sp.Amp[sp.Fundamental]
	if sig <= 0 {
		return 0, fmt.Errorf("dsp: zero fundamental")
	}
	worst := 0.0
	for k, a := range sp.Amp {
		if k == 0 || k == sp.Fundamental {
			continue
		}
		if a > worst {
			worst = a
		}
	}
	if worst <= 0 {
		return math.Inf(1), nil
	}
	return 20 * math.Log10(sig/worst), nil
}

// ENOB converts SINAD to effective bits via the standard
// (SINAD − 1.76)/6.02 formula.
func (sp *Spectrum) ENOB() (float64, error) {
	sinad, err := sp.SINADdB()
	if err != nil {
		return 0, err
	}
	return (sinad - 1.76) / 6.02, nil
}

// THDPercentFromSpectrum recomputes THD from an analyzed spectrum using
// the harmonics up to maxHarmonic, cross-checkable against THDPercent.
func (sp *Spectrum) THDPercentFromSpectrum(maxHarmonic int) (float64, error) {
	sig := sp.Amp[sp.Fundamental]
	if sig <= 0 {
		return 0, fmt.Errorf("dsp: zero fundamental")
	}
	sum := 0.0
	for h := 2; h <= maxHarmonic; h++ {
		k := h * sp.Fundamental
		if k >= len(sp.Amp) {
			break
		}
		sum += sp.Amp[k] * sp.Amp[k]
	}
	return 100 * math.Sqrt(sum) / sig, nil
}
