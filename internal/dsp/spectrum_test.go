package dsp

import (
	"math"
	"testing"
)

func TestAnalyzeSpectrumPicksComponents(t *testing.T) {
	s := synth(2048, 4, map[int]float64{1: 1, 3: 0.1}, map[int]float64{1: 0, 3: 1})
	sp, err := AnalyzeSpectrum(s, 4, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Amp[4]-1) > 1e-9 {
		t.Errorf("fundamental = %g, want 1", sp.Amp[4])
	}
	if math.Abs(sp.Amp[12]-0.1) > 1e-9 {
		t.Errorf("3rd harmonic = %g, want 0.1", sp.Amp[12])
	}
	if sp.Amp[8] > 1e-9 {
		t.Errorf("2nd harmonic = %g, want 0", sp.Amp[8])
	}
}

func TestSpectrumDCBin(t *testing.T) {
	s := make([]float64, 256)
	for i := range s {
		s[i] = 2 + math.Sin(2*math.Pi*4*float64(i)/256)
	}
	sp, err := AnalyzeSpectrum(s, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Amp[0]-2) > 1e-9 {
		t.Errorf("DC bin = %g, want the mean 2", sp.Amp[0])
	}
}

func TestAnalyzeSpectrumErrors(t *testing.T) {
	if _, err := AnalyzeSpectrum(nil, 1, 4); err == nil {
		t.Error("empty record accepted")
	}
	if _, err := AnalyzeSpectrum(make([]float64, 64), 0, 4); err == nil {
		t.Error("zero fundamental accepted")
	}
	if _, err := AnalyzeSpectrum(make([]float64, 64), 8, 4); err == nil {
		t.Error("fundamental above maxBin accepted")
	}
}

func TestSINADKnownRatio(t *testing.T) {
	// 1.0 fundamental + 0.01 spur: SINAD = 40 dB.
	s := synth(4096, 4, map[int]float64{1: 1, 5: 0.01}, map[int]float64{1: 0, 5: 0.7})
	sp, err := AnalyzeSpectrum(s, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	sinad, err := sp.SINADdB()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sinad-40) > 0.1 {
		t.Errorf("SINAD = %g dB, want 40", sinad)
	}
}

func TestSFDRFindsWorstSpur(t *testing.T) {
	s := synth(4096, 4, map[int]float64{1: 1, 2: 0.02, 7: 0.05},
		map[int]float64{1: 0, 2: 0.3, 7: 0.9})
	sp, err := AnalyzeSpectrum(s, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	sfdr, err := sp.SFDRdB()
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * math.Log10(1/0.05)
	if math.Abs(sfdr-want) > 0.1 {
		t.Errorf("SFDR = %g dB, want %g", sfdr, want)
	}
}

func TestENOBPerfectSineIsLarge(t *testing.T) {
	s := synth(4096, 4, map[int]float64{1: 1}, map[int]float64{1: 0})
	sp, err := AnalyzeSpectrum(s, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	enob, err := sp.ENOB()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(enob, 1) && enob < 20 {
		t.Errorf("ENOB of a perfect sine = %g, want very large", enob)
	}
}

func TestTHDFromSpectrumMatchesDirect(t *testing.T) {
	s := synth(4096, 4, map[int]float64{1: 1, 2: 0.03, 3: 0.04},
		map[int]float64{1: 0, 2: 1, 3: 2})
	direct, err := THDPercent(s, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := AnalyzeSpectrum(s, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := sp.THDPercentFromSpectrum(5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-fromSpec) > 1e-6 {
		t.Errorf("THD direct %g vs spectrum %g", direct, fromSpec)
	}
}

func TestSpectrumZeroFundamentalErrors(t *testing.T) {
	s := make([]float64, 256) // silence
	sp, err := AnalyzeSpectrum(s, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.SINADdB(); err == nil {
		t.Error("SINAD of silence accepted")
	}
	if _, err := sp.SFDRdB(); err == nil {
		t.Error("SFDR of silence accepted")
	}
	if _, err := sp.THDPercentFromSpectrum(5); err == nil {
		t.Error("THD of silence accepted")
	}
}
