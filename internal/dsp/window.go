package dsp

import (
	"fmt"
	"math"
)

// Window functions for non-coherent records. The test configurations
// sample coherently by construction (integer periods per record), but a
// production tester seldom has that luxury: a Hann window bounds the
// leakage when the stimulus and the sampling comb are not locked.

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// ApplyWindow multiplies samples by the window into a fresh slice.
func ApplyWindow(samples, window []float64) ([]float64, error) {
	if len(samples) != len(window) {
		return nil, fmt.Errorf("dsp: window length %d != record length %d", len(window), len(samples))
	}
	out := make([]float64, len(samples))
	for i := range samples {
		out[i] = samples[i] * window[i]
	}
	return out, nil
}

// hannCoherentGain is the amplitude attenuation of a Hann window (the
// mean of the window), compensated by WindowedAmplitude.
const hannCoherentGain = 0.5

// WindowedAmplitude estimates the amplitude of a sinusoidal component
// near normalized frequency f (cycles per record, not necessarily an
// integer) from a Hann-windowed record: the three DFT bins around f are
// combined by root-sum-square, which recovers the amplitude of a
// leakage-spread tone to within a fraction of a percent.
func WindowedAmplitude(samples []float64, f float64) (float64, error) {
	if len(samples) < 8 {
		return 0, fmt.Errorf("dsp: record too short for windowed estimate")
	}
	if f < 1 || f > float64(len(samples))/2-2 {
		return 0, fmt.Errorf("dsp: frequency %g outside usable range", f)
	}
	win, err := ApplyWindow(samples, HannWindow(len(samples)))
	if err != nil {
		return 0, err
	}
	k := int(math.Round(f))
	sum := 0.0
	for _, kk := range []int{k - 1, k, k + 1} {
		a := Amplitude(win, kk)
		sum += a * a
	}
	// The Hann main lobe spans three bins; the RSS of those bins equals
	// amplitude × coherentGain × sqrt(1 + 2·(1/2)²) = A × 0.5 × sqrt(1.5)
	// at bin centre. A mild frequency-dependent ripple remains; the
	// calibration constant below is exact for on-bin tones.
	const rssGain = hannCoherentGain * 1.2247448713915889 // sqrt(1.5)
	return sum0SafeSqrt(sum) / rssGain, nil
}

func sum0SafeSqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
