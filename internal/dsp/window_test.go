package dsp

import (
	"math"
	"testing"
)

func TestHannWindowShape(t *testing.T) {
	w := HannWindow(101)
	if w[0] > 1e-12 || w[100] > 1e-12 {
		t.Error("Hann endpoints must be ~0")
	}
	if math.Abs(w[50]-1) > 1e-12 {
		t.Error("Hann midpoint must be 1")
	}
	if HannWindow(1)[0] != 1 {
		t.Error("degenerate window must be identity")
	}
}

func TestApplyWindow(t *testing.T) {
	out, err := ApplyWindow([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 2 || out[2] != 1.5 {
		t.Errorf("windowed = %v", out)
	}
	if _, err := ApplyWindow([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestWindowedAmplitudeCoherent(t *testing.T) {
	// On-bin tone: the estimate should be exact up to the calibration.
	s := synth(1024, 16, map[int]float64{1: 0.8}, map[int]float64{1: 0.4})
	a, err := WindowedAmplitude(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-0.8) > 0.01 {
		t.Errorf("on-bin amplitude = %g, want 0.8", a)
	}
}

func TestWindowedAmplitudeNonCoherent(t *testing.T) {
	// A tone exactly between two bins: plain Goertzel smears badly, the
	// windowed estimate stays within a few percent.
	n := 1024
	f := 16.5
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.8 * math.Sin(2*math.Pi*f*float64(i)/float64(n))
	}
	plain := Amplitude(s, 16)
	windowed, err := WindowedAmplitude(s, f)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(windowed-0.8) > 0.05 {
		t.Errorf("windowed amplitude = %g, want 0.8±0.05", windowed)
	}
	if math.Abs(plain-0.8) < math.Abs(windowed-0.8) {
		t.Errorf("window did not help: plain err %g < windowed err %g",
			math.Abs(plain-0.8), math.Abs(windowed-0.8))
	}
}

func TestWindowedAmplitudeErrors(t *testing.T) {
	if _, err := WindowedAmplitude(make([]float64, 4), 1); err == nil {
		t.Error("short record accepted")
	}
	if _, err := WindowedAmplitude(make([]float64, 64), 0.5); err == nil {
		t.Error("sub-bin frequency accepted")
	}
	if _, err := WindowedAmplitude(make([]float64, 64), 31.5); err == nil {
		t.Error("near-Nyquist frequency accepted")
	}
}
