package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cache is a sharded, size-bounded, single-flight memo for simulation
// responses. Keys are quantized parameter strings; values are response
// vectors. Sharding by FNV-1a hash replaces the single global mutex the
// nominal cache used to serialize on; single-flight guarantees that
// concurrent misses on the same key run the underlying simulation once,
// with every waiter sharing the result.
type Cache struct {
	shards []cacheShard
	mask   uint32
	// perShard bounds the entry count of each shard; a full shard evicts
	// an arbitrary entry before inserting.
	perShard int

	hits      atomic.Int64
	misses    atomic.Int64
	shared    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string][]float64
	flights map[string]*flight
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  []float64
	err  error
}

// newCache builds a cache with the given total entry bound and shard
// count (both defaulted when <= 0; shards rounds up to a power of two).
func newCache(entries, shards int) *Cache {
	if entries <= 0 {
		entries = 65536
	}
	if shards <= 0 {
		shards = 32
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := entries / n
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint32(n - 1), perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[string][]float64)
		c.shards[i].flights = make(map[string]*flight)
	}
	return c
}

// fnv32a is FNV-1a over the key, inlined to keep the shard lookup
// allocation-free (hash/fnv would heap-allocate a hasher per call).
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv32a(key)&c.mask]
}

// GetOrCompute returns the cached value for key, or runs compute exactly
// once (across all concurrent callers of the same key) to produce it.
// hit reports whether the value was served without this caller invoking
// compute — either straight from the memo or by joining another caller's
// in-flight computation. Errors are not cached: a failed computation is
// retried by the next caller.
//
// A panic inside compute is fatal to the calling task only: the in-flight
// entry is resolved with an error before the panic is re-raised, so
// goroutines that joined the flight unblock with that error instead of
// waiting forever on a channel nobody will close.
func (c *Cache) GetOrCompute(key string, compute func() ([]float64, error)) (val []float64, hit bool, err error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if v, ok := sh.entries[key]; ok {
		sh.mu.Unlock()
		c.hits.Add(1)
		return v, true, nil
	}
	if fl, ok := sh.flights[key]; ok {
		sh.mu.Unlock()
		c.shared.Add(1)
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		return fl.val, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	sh.flights[key] = fl
	sh.mu.Unlock()
	c.misses.Add(1)

	panicked := true
	defer func() {
		if !panicked {
			return
		}
		// compute panicked: settle the flight so waiters unblock, then let
		// the panic continue to the task-level recovery boundary.
		fl.err = fmt.Errorf("engine: cache compute for key %q panicked", key)
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = compute()
	panicked = false

	sh.mu.Lock()
	delete(sh.flights, key)
	if fl.err == nil {
		if len(sh.entries) >= c.perShard {
			for k := range sh.entries {
				delete(sh.entries, k)
				c.evictions.Add(1)
				break
			}
		}
		sh.entries[key] = fl.val
	}
	sh.mu.Unlock()
	close(fl.done)
	return fl.val, false, fl.err
}

// Len returns the current number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups served from the memo.
	Hits int64
	// Misses counts lookups that ran the computation.
	Misses int64
	// Shared counts lookups that joined another caller's in-flight
	// computation instead of duplicating it.
	Shared int64
	// Evictions counts entries dropped by the size bound.
	Evictions int64
	// Entries is the current cached entry count.
	Entries int
}

// HitRate returns the fraction of lookups served without a fresh
// computation (hits plus shared flights over all lookups).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Shared
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
