package engine

import (
	"fmt"
	"sync"
	"testing"
)

// benchKeys pre-computes a working set of keys and values.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("0|%de-06", i)
	}
	return keys
}

// BenchmarkCacheHitParallelSharded is the engine's sharded single-flight
// cache on the pure hit path under full parallelism.
func BenchmarkCacheHitParallelSharded(b *testing.B) {
	c := newCache(1<<16, 32)
	keys := benchKeys(256)
	for _, k := range keys {
		_, _, _ = c.GetOrCompute(k, func() ([]float64, error) { return []float64{1}, nil })
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := c.GetOrCompute(keys[i%len(keys)], nil); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkCacheHitParallelGlobalMutex reproduces the pre-engine design
// — one map guarded by one sync.Mutex — as the contention baseline the
// sharded cache replaces.
func BenchmarkCacheHitParallelGlobalMutex(b *testing.B) {
	var mu sync.Mutex
	m := make(map[string][]float64)
	keys := benchKeys(256)
	for _, k := range keys {
		m[k] = []float64{1}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			mu.Lock()
			v := m[keys[i%len(keys)]]
			mu.Unlock()
			if v == nil {
				b.Fatal("miss")
			}
			i++
		}
	})
}
