// Package engine is the shared concurrent evaluation substrate of the
// test generator. It owns the three concerns every parallel workload in
// internal/core used to reimplement ad hoc:
//
//   - a work-stealing worker pool over index spans with full
//     context.Context cancellation (ForEach),
//   - a sharded, size-bounded, single-flight response cache (Cache),
//   - per-phase wall-clock/counter observability (Metrics).
//
// The paper's own cost metric is simulation count ("global optimization
// requires a much larger amount of simulations which we consider
// unacceptable"); the engine makes that cost observable and spends it on
// all cores without a global lock on the hot cache path.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/obs"
	"repro/internal/obs/hist"
)

// fpTaskStart fires at the top of every pool task, inside the Recover
// boundary. Arm it with a panic to exercise quarantine, or with a sleep
// to wedge a task and exercise the core's stall watchdog. An injected
// error becomes the task's error like any fn failure.
var fpTaskStart = failpoint.At("engine.task.start")

// ErrCanceled is returned (wrapped) by ForEach when the caller's context
// is canceled or its deadline expires before all tasks have run.
var ErrCanceled = errors.New("engine: evaluation canceled")

// Options tunes a new Engine. The zero value is usable: every field has
// a sensible default.
type Options struct {
	// Workers bounds the parallelism of ForEach. Default (and any value
	// <= 0): runtime.GOMAXPROCS(0).
	Workers int
	// CacheEntries bounds the total number of cached responses across
	// all shards (default 65536). The bound is approximate: it is
	// enforced per shard.
	CacheEntries int
	// CacheShards is the shard count, rounded up to a power of two
	// (default 32). More shards mean less lock contention.
	CacheShards int
}

// Engine is a reusable evaluation substrate: a worker pool, a response
// cache and a metrics registry. An Engine is safe for concurrent use.
type Engine struct {
	workers     int
	cache       *Cache
	phases      sync.Map // string -> *phase
	solverSrc   atomic.Pointer[func() SolverStats]
	durationSrc atomic.Pointer[func() []hist.NamedSnapshot]
	breakerSrc  atomic.Pointer[func() BreakerStats]
	tracer      atomic.Pointer[obs.Tracer]
	panics      atomic.Int64
}

// SetTracer registers a span tracer. When set, ForEach opens one
// "engine.task" span per task (worker and index attributes), and the
// task's fn runs under a context carrying that span so nested spans
// parent correctly. Passing nil disables tracing; a disabled pool pays
// one atomic load per ForEach call.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer.Store(t) }

// New returns an engine with the given options.
func New(o Options) *Engine {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: o.Workers,
		cache:   newCache(o.CacheEntries, o.CacheShards),
	}
}

// Workers returns the pool's parallelism bound.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's sharded response cache.
func (e *Engine) Cache() *Cache { return e.cache }

// span is a contiguous index range owned by one worker. The owner pops
// from the front, thieves steal from the back, so owner and thief only
// contend on the last few indices of a span.
type span struct {
	mu     sync.Mutex
	lo, hi int
}

// pop takes the next index from the front of the span.
func (s *span) pop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	i := s.lo
	s.lo++
	return i, true
}

// steal takes an index from the back of the span.
func (s *span) steal() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	s.hi--
	return s.hi, true
}

// ForEach runs fn(ctx, i) for every i in [0, n) on up to Workers()
// goroutines with work stealing: indices are split into per-worker
// spans, and a worker whose span drains steals from the back of its
// peers' spans, so uneven task costs (a THD transient next to a cheap DC
// point) still keep every core busy.
//
// The first error returned by fn cancels the remaining tasks and is
// returned. If ctx is canceled (or its deadline expires) before all
// tasks complete, ForEach stops promptly and returns an error wrapping
// both ErrCanceled and ctx.Err().
func (e *Engine) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	tr := e.tracer.Load()
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("%w: %w", ErrCanceled, err)
			}
			if err := e.runTask(tr, ctx, fn, i, 0); err != nil {
				return err
			}
		}
		return nil
	}

	// Split [0, n) into one span per worker (first n%workers spans get
	// one extra index).
	spans := make([]*span, workers)
	chunk, rem := n/workers, n%workers
	lo := 0
	for w := range spans {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		spans[w] = &span{lo: lo, hi: hi}
		lo = hi
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i, ok := spans[w].pop()
				if !ok {
					// Own span drained: steal from peers, starting at the
					// next worker to spread thieves across victims.
					for d := 1; d < workers && !ok; d++ {
						i, ok = spans[(w+d)%workers].steal()
					}
					if !ok {
						return
					}
				}
				if err := e.runTask(tr, runCtx, fn, i, w); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// runTask executes fn(ctx, i), wrapped in an "engine.task" span when a
// tracer is registered. The span rides the context into fn, so spans
// opened inside the task nest under it.
//
// A panic escaping fn is recovered into a *TaskPanicError and returned as
// the task's error: the pool never lets a single task kill the process.
// Callers that want to *survive* the panic (quarantine the task and keep
// the run going) additionally wrap their task body in Engine.Recover,
// which catches the panic before it reaches this last-resort boundary.
func (e *Engine) runTask(tr *obs.Tracer, ctx context.Context, fn func(context.Context, int) error, i, w int) error {
	if tr == nil {
		return e.Recover(i, func() error {
			if err := fpTaskStart.Hit(); err != nil {
				return err
			}
			return fn(ctx, i)
		})
	}
	tctx, sp := tr.Start(ctx, "engine.task", obs.Int("index", i), obs.Int("worker", w))
	err := e.Recover(i, func() error {
		if err := fpTaskStart.Hit(); err != nil {
			return err
		}
		return fn(tctx, i)
	})
	if err != nil {
		sp.End(obs.String("error", err.Error()))
	} else {
		sp.End()
	}
	return err
}
