package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	e := New(Options{Workers: 7})
	const n = 1000
	var counts [n]atomic.Int32
	err := e.ForEach(context.Background(), n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, c)
		}
	}
}

func TestForEachStealsSkewedWork(t *testing.T) {
	// The first span gets all the slow tasks; without stealing the run
	// would serialize on worker 0.
	e := New(Options{Workers: 4})
	var slow, total atomic.Int32
	err := e.ForEach(context.Background(), 64, func(_ context.Context, i int) error {
		total.Add(1)
		if i < 16 { // worker 0's span
			slow.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 || slow.Load() != 16 {
		t.Fatalf("ran %d tasks (%d slow), want 64 (16)", total.Load(), slow.Load())
	}
}

func TestForEachFirstErrorCancelsRest(t *testing.T) {
	e := New(Options{Workers: 4})
	boom := errors.New("boom")
	var after atomic.Int32
	err := e.ForEach(context.Background(), 400, func(ctx context.Context, i int) error {
		if i == 3 {
			return fmt.Errorf("task %d: %w", i, boom)
		}
		if ctx.Err() != nil {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestForEachCanceledContextReturnsPromptly(t *testing.T) {
	e := New(Options{Workers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	start := time.Now()
	err := e.ForEach(ctx, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also wrap context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran despite pre-canceled context", ran.Load())
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("took %v to notice cancellation", d)
	}
}

func TestForEachMidRunCancellation(t *testing.T) {
	e := New(Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := e.ForEach(ctx, 500, func(_ context.Context, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := ran.Load(); n >= 500 {
		t.Errorf("all %d tasks ran despite mid-run cancel", n)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(1024, 8)
	var computes atomic.Int32
	var wg sync.WaitGroup
	const callers = 32
	release := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.GetOrCompute("key", func() ([]float64, error) {
				computes.Add(1)
				<-release
				return []float64{42}, nil
			})
			if err != nil || v[0] != 42 {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	// Give every caller time to reach the cache before releasing the
	// one in-flight computation.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times for one key, want 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Shared+st.Hits != callers-1 {
		t.Errorf("shared %d + hits %d, want %d", st.Shared, st.Hits, callers-1)
	}
}

func TestCacheConcurrentShards(t *testing.T) {
	// Hammer many keys from many goroutines under -race: every lookup
	// must return the right value and the counters must balance.
	c := newCache(1<<14, 16)
	const keys = 200
	var wg sync.WaitGroup
	var lookups atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				for k := 0; k < keys; k++ {
					key := fmt.Sprintf("k%03d", (k+g*7)%keys)
					want := float64((k + g*7) % keys)
					v, _, err := c.GetOrCompute(key, func() ([]float64, error) {
						return []float64{want}, nil
					})
					lookups.Add(1)
					if err != nil || v[0] != want {
						t.Errorf("key %s: got %v, %v", key, v, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Shared != lookups.Load() {
		t.Errorf("counters %d+%d+%d don't add up to %d lookups",
			st.Hits, st.Misses, st.Shared, lookups.Load())
	}
	if st.Entries != keys {
		t.Errorf("entries = %d, want %d", st.Entries, keys)
	}
}

func TestCacheSizeBound(t *testing.T) {
	c := newCache(64, 4) // 16 entries per shard
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.GetOrCompute(key, func() ([]float64, error) {
			return []float64{float64(i)}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Len(); n > 64 {
		t.Errorf("cache grew to %d entries, bound is 64", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("no evictions recorded despite overflow")
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := newCache(64, 4)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, _, err := c.GetOrCompute("k", func() ([]float64, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("failed computation retried %d times, want 2 (errors must not be cached)", calls)
	}
}

func TestMetricsPhases(t *testing.T) {
	e := New(Options{})
	e.Observe("alpha", 10*time.Millisecond)
	e.Observe("alpha", 30*time.Millisecond)
	e.Observe("beta", 5*time.Millisecond)
	m := e.Metrics()
	a := m.Phase("alpha")
	if a.Count != 2 || a.Wall != 40*time.Millisecond || a.Avg() != 20*time.Millisecond {
		t.Errorf("alpha stats = %+v", a)
	}
	if len(m.Phases) != 2 || m.Phases[0].Name != "alpha" {
		t.Errorf("phases not sorted by wall time: %+v", m.Phases)
	}
	if z := m.Phase("gamma"); z.Count != 0 || z.Name != "gamma" {
		t.Errorf("unknown phase = %+v", z)
	}
}
