package engine

import (
	"sort"
	"sync/atomic"
	"time"
)

// phase accumulates one named phase's counters.
type phase struct {
	count atomic.Int64
	wall  atomic.Int64 // nanoseconds
}

// Observe records one completed unit of the named phase and the wall
// time it took. Phases are created on first use.
func (e *Engine) Observe(name string, d time.Duration) {
	p, ok := e.phases.Load(name)
	if !ok {
		p, _ = e.phases.LoadOrStore(name, &phase{})
	}
	ph := p.(*phase)
	ph.count.Add(1)
	ph.wall.Add(int64(d))
}

// Time starts a timer for the named phase and returns the function that
// stops it and records the observation:
//
//	defer e.Time("box-build")()
func (e *Engine) Time(name string) func() {
	t0 := time.Now()
	return func() { e.Observe(name, time.Since(t0)) }
}

// PhaseStats is the snapshot of one phase.
type PhaseStats struct {
	// Name identifies the phase (e.g. "box-build", "impact-loop").
	Name string
	// Count is the number of completed units (per-config optimizations,
	// per-fault selection loops, ...).
	Count int64
	// Wall is the summed wall-clock time across all units. Units run in
	// parallel, so Wall can exceed the elapsed real time; it measures
	// where the compute budget went.
	Wall time.Duration
}

// Avg returns the mean wall time per unit.
func (p PhaseStats) Avg() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Wall / time.Duration(p.Count)
}

// Metrics is a point-in-time snapshot of an engine's observability
// counters: where simulation time went, and how well the response cache
// is working.
type Metrics struct {
	// Phases holds one entry per observed phase, sorted by descending
	// wall time.
	Phases []PhaseStats
	// Cache summarizes the sharded response cache.
	Cache CacheStats
}

// Phase returns the stats of the named phase (zero value when the phase
// has not been observed).
func (m Metrics) Phase(name string) PhaseStats {
	for _, p := range m.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStats{Name: name}
}

// Metrics snapshots the engine's phase and cache counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{Cache: e.cache.Stats()}
	e.phases.Range(func(k, v any) bool {
		ph := v.(*phase)
		m.Phases = append(m.Phases, PhaseStats{
			Name:  k.(string),
			Count: ph.count.Load(),
			Wall:  time.Duration(ph.wall.Load()),
		})
		return true
	})
	sort.Slice(m.Phases, func(i, j int) bool {
		if m.Phases[i].Wall != m.Phases[j].Wall {
			return m.Phases[i].Wall > m.Phases[j].Wall
		}
		return m.Phases[i].Name < m.Phases[j].Name
	})
	return m
}
