package engine

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/obs/hist"
)

// phase accumulates one named phase's counters and its latency
// distribution.
type phase struct {
	count atomic.Int64
	wall  atomic.Int64 // nanoseconds
	lat   *hist.Histogram
}

// Observe records one completed unit of the named phase and the wall
// time it took. Phases are created on first use. Beyond the running
// count/wall totals, every observation lands in the phase's log-linear
// latency histogram, so Metrics can report tail percentiles (the
// impact-ladder searches that dominate a run are invisible in means).
func (e *Engine) Observe(name string, d time.Duration) {
	p, ok := e.phases.Load(name)
	if !ok {
		p, _ = e.phases.LoadOrStore(name, &phase{lat: hist.New()})
	}
	ph := p.(*phase)
	ph.count.Add(1)
	ph.wall.Add(int64(d))
	ph.lat.RecordDuration(d)
}

// Time starts a timer for the named phase and returns the function that
// stops it and records the observation:
//
//	defer e.Time("box-build")()
func (e *Engine) Time(name string) func() {
	t0 := time.Now()
	return func() { e.Observe(name, time.Since(t0)) }
}

// PhaseStats is the snapshot of one phase.
type PhaseStats struct {
	// Name identifies the phase (e.g. "box-build", "impact-loop").
	Name string
	// Count is the number of completed units (per-config optimizations,
	// per-fault selection loops, ...).
	Count int64
	// Wall is the summed wall-clock time across all units. Units run in
	// parallel, so Wall can exceed the elapsed real time; it measures
	// where the compute budget went.
	Wall time.Duration
	// Latency is the per-unit wall-time distribution (nanoseconds):
	// count, sum, extremes and log-linear buckets, from which p50/p90/p99
	// are derived. Means hide the slow tail this exists to expose.
	Latency hist.Snapshot
}

// Avg returns the mean wall time per unit.
func (p PhaseStats) Avg() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Wall / time.Duration(p.Count)
}

// SolverStats is a snapshot of the simulation kernel's work counters.
// The engine does not produce these itself — the simulation layer
// registers a source via SetSolverSource — but they belong in the same
// snapshot because "how many stamps and factorizations did the budget
// buy" is the kernel-level refinement of the paper's simulation-count
// cost metric.
type SolverStats struct {
	// Stamps counts device stamp calls (linear assemblies plus
	// per-iteration nonlinear re-stamps).
	Stamps uint64
	// Factorizations counts LU factorizations, real and complex.
	Factorizations uint64
	// FactorReuses counts solves served by the same-pattern
	// factorization reuse instead of a fresh factorization.
	FactorReuses uint64
	// NewtonIterations counts Newton iterations across all solves.
	NewtonIterations uint64
	// Solves counts completed Newton solves.
	Solves uint64
	// BaseBuilds counts linear-snapshot assemblies (cache misses).
	BaseBuilds uint64
	// BaseHits counts solves served from a cached linear snapshot.
	BaseHits uint64
	// RecoveryAttempts counts relaxation-ladder rungs tried after a full
	// operating-point strategy failure.
	RecoveryAttempts uint64
	// Recoveries counts operating points rescued by a ladder rung.
	Recoveries uint64
	// WoodburySolves counts solves served by the Sherman–Morrison–
	// Woodbury rank-k update against a retained factorization.
	WoodburySolves uint64
	// WoodburyFallbacks counts eligible solves whose update guard tripped,
	// falling back to a full restamp+factor.
	WoodburyFallbacks uint64
	// FaultyFactorAvoided counts faulty-circuit factor-from-scratch cycles
	// the low-rank machinery avoided (retained factorizations reused plus
	// retained-evaluator evaluations that skipped a full rebuild).
	FaultyFactorAvoided uint64
}

// Sub returns s minus base, field by field. Sessions use it to scope
// the kernel's monotone process-wide totals to their own lifetime: the
// source registered with SetSolverSource subtracts the totals captured
// at session construction, so a session started late in a long-running
// process (a job server) reports only the work done since it began.
func (s SolverStats) Sub(base SolverStats) SolverStats {
	return SolverStats{
		Stamps:           s.Stamps - base.Stamps,
		Factorizations:   s.Factorizations - base.Factorizations,
		FactorReuses:     s.FactorReuses - base.FactorReuses,
		NewtonIterations: s.NewtonIterations - base.NewtonIterations,
		Solves:           s.Solves - base.Solves,
		BaseBuilds:       s.BaseBuilds - base.BaseBuilds,
		BaseHits:         s.BaseHits - base.BaseHits,
		RecoveryAttempts: s.RecoveryAttempts - base.RecoveryAttempts,
		Recoveries:       s.Recoveries - base.Recoveries,

		WoodburySolves:      s.WoodburySolves - base.WoodburySolves,
		WoodburyFallbacks:   s.WoodburyFallbacks - base.WoodburyFallbacks,
		FaultyFactorAvoided: s.FaultyFactorAvoided - base.FaultyFactorAvoided,
	}
}

// BreakerStats is a snapshot of the session-level low-rank circuit
// breaker (zero when no breaker is armed): how often the fallback-rate
// threshold tripped it, and whether it is currently holding the session
// on the slow path.
type BreakerStats struct {
	Trips uint64
	Open  bool
}

// Metrics is a point-in-time snapshot of an engine's observability
// counters: where simulation time went, how well the response cache is
// working, and what the simulation kernel did for it.
type Metrics struct {
	// Phases holds one entry per observed phase, sorted by descending
	// wall time.
	Phases []PhaseStats
	// Cache summarizes the sharded response cache.
	Cache CacheStats
	// Solver carries the simulation kernel's counters (zero when no
	// source is registered).
	Solver SolverStats
	// TaskPanics counts panics recovered at the task isolation boundary
	// (Engine.Recover), whether they were quarantined or failed the run.
	TaskPanics int64
	// Durations holds latency distributions from layers below the engine
	// (the simulation kernel's per-analysis wall times and Newton
	// iteration counts), provided by the source registered with
	// SetDurationSource. Nil when no source is registered.
	Durations []hist.NamedSnapshot
	// Breaker carries the low-rank circuit breaker's state (zero when no
	// source is registered — i.e. no breaker armed).
	Breaker BreakerStats
}

// Phase returns the stats of the named phase (zero value when the phase
// has not been observed).
func (m Metrics) Phase(name string) PhaseStats {
	for _, p := range m.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStats{Name: name}
}

// SetSolverSource registers fn as the provider of kernel counters for
// Metrics snapshots. The simulation layer calls this once at session
// construction; passing nil clears the source. Safe for concurrent use
// with Metrics.
func (e *Engine) SetSolverSource(fn func() SolverStats) {
	if fn == nil {
		e.solverSrc.Store((*func() SolverStats)(nil))
		return
	}
	e.solverSrc.Store(&fn)
}

// SetDurationSource registers fn as the provider of sub-engine latency
// distributions for Metrics snapshots (the simulation layer wires it to
// its per-analysis histograms at session construction). Passing nil
// clears the source. Safe for concurrent use with Metrics.
func (e *Engine) SetDurationSource(fn func() []hist.NamedSnapshot) {
	if fn == nil {
		e.durationSrc.Store((*func() []hist.NamedSnapshot)(nil))
		return
	}
	e.durationSrc.Store(&fn)
}

// SetBreakerSource registers fn as the provider of circuit-breaker
// state for Metrics snapshots (the core session wires it up when a
// breaker is armed). Passing nil clears the source. Safe for concurrent
// use with Metrics.
func (e *Engine) SetBreakerSource(fn func() BreakerStats) {
	if fn == nil {
		e.breakerSrc.Store((*func() BreakerStats)(nil))
		return
	}
	e.breakerSrc.Store(&fn)
}

// Metrics snapshots the engine's phase and cache counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{Cache: e.cache.Stats(), TaskPanics: e.panics.Load()}
	if p := e.solverSrc.Load(); p != nil && *p != nil {
		m.Solver = (*p)()
	}
	if p := e.durationSrc.Load(); p != nil && *p != nil {
		m.Durations = (*p)()
	}
	if p := e.breakerSrc.Load(); p != nil && *p != nil {
		m.Breaker = (*p)()
	}
	e.phases.Range(func(k, v any) bool {
		ph := v.(*phase)
		m.Phases = append(m.Phases, PhaseStats{
			Name:    k.(string),
			Count:   ph.count.Load(),
			Wall:    time.Duration(ph.wall.Load()),
			Latency: ph.lat.Snapshot(),
		})
		return true
	})
	sort.Slice(m.Phases, func(i, j int) bool {
		if m.Phases[i].Wall != m.Phases[j].Wall {
			return m.Phases[i].Wall > m.Phases[j].Wall
		}
		return m.Phases[i].Name < m.Phases[j].Name
	})
	return m
}
