package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsSnapshotWhileRunning hammers Metrics() snapshots against
// concurrent phase observations, cache traffic and traced ForEach
// tasks. All engine counters are atomics and Metrics copies on read, so
// under -race this must be silent — the snapshot-while-running
// guarantee of the observability layer.
func TestMetricsSnapshotWhileRunning(t *testing.T) {
	e := New(Options{Workers: 4, CacheEntries: 256})
	col := &obs.Collector{}
	e.SetTracer(obs.New(col))
	e.SetSolverSource(func() SolverStats { return SolverStats{Solves: 1} })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m := e.Metrics()
					_ = m.Phase("work").Avg()
					_ = m.Cache.HitRate()
					_ = m.Solver.Solves
				}
			}
		}()
	}

	for round := 0; round < 25; round++ {
		err := e.ForEach(context.Background(), 64, func(ctx context.Context, k int) error {
			e.Observe("work", time.Microsecond)
			key := fmt.Sprintf("k%d", k%16)
			_, _, err := e.Cache().GetOrCompute(key, func() ([]float64, error) {
				return []float64{float64(k)}, nil
			})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	m := e.Metrics()
	if got := m.Phase("work").Count; got != 25*64 {
		t.Errorf("work units = %d, want %d", got, 25*64)
	}
	if m.Cache.Hits+m.Cache.Misses+m.Cache.Shared != 25*64 {
		t.Errorf("cache lookups = %d, want %d",
			m.Cache.Hits+m.Cache.Misses+m.Cache.Shared, 25*64)
	}
}

// TestTracerSwapWhileRunning: SetTracer mid-flight must not race with
// workers loading the tracer pointer.
func TestTracerSwapWhileRunning(t *testing.T) {
	e := New(Options{Workers: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if i%2 == 0 {
					e.SetTracer(obs.New(&obs.Collector{}))
				} else {
					e.SetTracer(nil)
				}
			}
		}
	}()
	for round := 0; round < 25; round++ {
		err := e.ForEach(context.Background(), 32, func(ctx context.Context, k int) error {
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
