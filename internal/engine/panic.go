package engine

import (
	"fmt"
	"runtime/debug"
)

// TaskPanicError is the typed error a recovered task panic is converted
// into. It carries the panic value and the panicking goroutine's stack so
// the quarantine report can say *what* blew up, not just that something
// did. Callers detect it with errors.As and decide whether to quarantine
// the task (continue the run) or fail the run.
type TaskPanicError struct {
	// Index is the task index within the ForEach call (or the caller's
	// index for Engine.Recover).
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("engine: task %d panicked: %v", e.Index, e.Value)
}

// Recover runs fn, converting a panic into a *TaskPanicError and counting
// it in Metrics.TaskPanics. It is the per-task isolation boundary: the
// generation core wraps each fault×config task in Recover so a panicking
// device model quarantines one task instead of killing the process.
func (e *Engine) Recover(index int, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e.panics.Add(1)
			err = &TaskPanicError{Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}
