package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestRecoverConvertsPanic(t *testing.T) {
	e := New(Options{Workers: 1})
	err := e.Recover(7, func() error { panic("device model blew up") })
	var pe *TaskPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Recover returned %v, want *TaskPanicError", err)
	}
	if pe.Index != 7 {
		t.Errorf("Index = %d, want 7", pe.Index)
	}
	if pe.Value != "device model blew up" {
		t.Errorf("Value = %v, want the panic value", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panic.go") && len(pe.Stack) == 0 {
		t.Error("Stack is empty")
	}
	if got := e.Metrics().TaskPanics; got != 1 {
		t.Errorf("TaskPanics = %d, want 1", got)
	}
}

func TestRecoverPassesThrough(t *testing.T) {
	e := New(Options{Workers: 1})
	want := errors.New("ordinary failure")
	if err := e.Recover(0, func() error { return want }); err != want {
		t.Errorf("Recover = %v, want %v", err, want)
	}
	if err := e.Recover(0, func() error { return nil }); err != nil {
		t.Errorf("Recover = %v, want nil", err)
	}
	if got := e.Metrics().TaskPanics; got != 0 {
		t.Errorf("TaskPanics = %d, want 0", got)
	}
}

// TestForEachPanicBecomesError checks the pool-level last-resort boundary:
// a panic escaping a task fails the run with a typed error instead of
// killing the process, across both the serial and parallel paths.
func TestForEachPanicBecomesError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(Options{Workers: workers})
		err := e.ForEach(context.Background(), 16, func(ctx context.Context, i int) error {
			if i == 5 {
				panic("boom")
			}
			return nil
		})
		var pe *TaskPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: ForEach = %v, want *TaskPanicError", workers, err)
		}
		if pe.Index != 5 {
			t.Errorf("workers=%d: Index = %d, want 5", workers, pe.Index)
		}
	}
}

// TestForEachQuarantineViaRecover checks the caller-level isolation
// pattern the generation core uses: wrapping the task body in Recover and
// swallowing the TaskPanicError lets every other task complete.
func TestForEachQuarantineViaRecover(t *testing.T) {
	e := New(Options{Workers: 4})
	const n = 32
	var mu sync.Mutex
	done := make(map[int]bool)
	quarantined := make(map[int]bool)
	err := e.ForEach(context.Background(), n, func(ctx context.Context, i int) error {
		err := e.Recover(i, func() error {
			if i%10 == 3 {
				panic("injected")
			}
			return nil
		})
		var pe *TaskPanicError
		if errors.As(err, &pe) {
			mu.Lock()
			quarantined[i] = true
			mu.Unlock()
			return nil
		}
		if err != nil {
			return err
		}
		mu.Lock()
		done[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach = %v, want nil", err)
	}
	if len(quarantined) != 3 { // 3, 13, 23
		t.Errorf("quarantined %d tasks, want 3", len(quarantined))
	}
	if len(done)+len(quarantined) != n {
		t.Errorf("done=%d quarantined=%d, want them to cover all %d tasks", len(done), len(quarantined), n)
	}
}

// TestCachePanicUnblocksWaiters checks that a panic inside a cache compute
// resolves the single-flight entry with an error (waiters do not deadlock)
// and re-raises so the task boundary still sees the panic.
func TestCachePanicUnblocksWaiters(t *testing.T) {
	c := newCache(16, 1)
	entered := make(chan struct{})
	release := make(chan struct{})

	primaryDone := make(chan any, 1)
	go func() {
		defer func() { primaryDone <- recover() }()
		c.GetOrCompute("k", func() ([]float64, error) {
			close(entered)
			<-release
			panic("compute died")
		})
	}()

	<-entered
	waiterErr := make(chan error, 1)
	go func() {
		// Poll until the waiter actually joins the flight, then block on it.
		_, _, err := c.GetOrCompute("k", func() ([]float64, error) {
			// If the flight was already settled we recompute; that is fine —
			// return a value so this path is distinguishable.
			return []float64{1}, nil
		})
		waiterErr <- err
	}()
	close(release)

	if r := <-primaryDone; r != "compute died" {
		t.Fatalf("primary recover = %v, want the original panic value", r)
	}
	if err := <-waiterErr; err != nil && !strings.Contains(err.Error(), "panicked") {
		t.Errorf("waiter error = %v, want nil (recomputed) or a panicked-flight error", err)
	}

	// The flight must be gone: a later caller recomputes successfully.
	v, hit, err := c.GetOrCompute("k", func() ([]float64, error) { return []float64{42}, nil })
	if err != nil || hit && v == nil {
		t.Fatalf("post-panic GetOrCompute = (%v, %v, %v), want a usable value", v, hit, err)
	}
}
