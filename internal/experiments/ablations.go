package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/opt"
	"repro/internal/report"
)

// AblationSelection quantifies the paper's §2.2 claim that selecting
// from a fixed predefined test set "will not result in the most
// sensitive test set": coverage of the five seed tests alone versus the
// per-fault optimized tests versus the compacted set.
func (r *Runner) AblationSelection() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	faults := r.Faults()
	w := r.opts.Out

	// Fixed predefined set: each configuration at its designer seed.
	var seedTests []core.Test
	for ci, c := range r.configs {
		seedTests = append(seedTests, core.Test{ConfigIdx: ci, Params: c.Seeds()})
	}
	seedCov, err := s.Coverage(seedTests, faults)
	if err != nil {
		return err
	}

	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	optTests := core.TestsOf(sols)
	optCov, err := s.Coverage(optTests, faults)
	if err != nil {
		return err
	}
	copts := core.DefaultCompactOptions()
	copts.Delta = r.opts.Delta
	cts, err := s.Compact(sols, copts)
	if err != nil {
		return err
	}
	cptCov, err := s.Coverage(core.TestsOfCompact(cts), faults)
	if err != nil {
		return err
	}

	t := report.NewTable("strategy", "tests", "coverage %", "undetected")
	t.AddRow("seed selection only", len(seedTests), seedCov.Percent(), len(seedCov.Undetected))
	t.AddRow("per-fault optimized", len(optTests), optCov.Percent(), len(optCov.Undetected))
	t.AddRow(fmt.Sprintf("compacted (δ=%.2g)", copts.Delta), len(cts), cptCov.Percent(), len(cptCov.Undetected))
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nfaults missed by seed selection but caught by optimization:")
	missed := 0
	caughtBy := make(map[string]bool)
	for _, id := range optCov.Undetected {
		caughtBy[id] = true
	}
	for _, id := range seedCov.Undetected {
		if !caughtBy[id] {
			fmt.Fprintf(w, "  %s\n", id)
			missed++
		}
	}
	if missed == 0 {
		fmt.Fprintln(w, "  (none on this fault list)")
	}
	return nil
}

// AblationSoft verifies the §3.2 soft-fault stability observation: for
// weakened impacts the optimized parameter location stays put, while the
// hard-fault (dictionary) impact may optimize elsewhere.
func (r *Runner) AblationSoft() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	w := r.opts.Out
	ci := indexOfConfig(r.configs, 3) // THD configuration, as in Figs. 2-4
	c := r.configs[ci]
	box := c.Bounds()

	faults := []fault.Fault{
		fault.ByID(r.dict, r.opts.TPSFaultID),
		fault.NewBridge(macros.NodeVref, macros.NodeNtail, 10e3),
	}
	norm := func(T []float64) []float64 {
		out := make([]float64, len(T))
		for i := range T {
			out[i] = (T[i] - box.Lo[i]) / (box.Hi[i] - box.Lo[i])
		}
		return out
	}
	dist := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			d += (a[i] - b[i]) * (a[i] - b[i])
		}
		return math.Sqrt(d)
	}
	optimize := func(f fault.Fault) ([]float64, float64, error) {
		var lastErr error
		obj := func(T []float64) float64 {
			sf, err := s.Sensitivity(ci, f, T)
			if err != nil {
				lastErr = err
				return 10
			}
			return sf
		}
		res := opt.Minimize(obj, box, c.Seeds(), 1e-3)
		return res.X, res.F, lastErr
	}

	t := report.NewTable("fault", "impact", "optimized parameters", "S_f", "distance to weakest optimum")
	for _, f := range faults {
		if f == nil {
			continue
		}
		impacts := []float64{1, 2, 4, 8} // × dictionary impact
		var ref []float64
		// Walk from the weakest (most soft) down so the reference is the
		// softest model.
		for k := len(impacts) - 1; k >= 0; k-- {
			fi := f.WithImpact(f.InitialImpact() * impacts[k])
			T, sf, err := optimize(fi)
			if err != nil {
				return err
			}
			if ref == nil {
				ref = norm(T)
			}
			t.AddRow(f.ID(), report.Engineering(fi.Impact()), paramString(c, T), sf, dist(norm(T), ref))
		}
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nsoft-region (weak impact) rows should cluster: small distances; the")
	fmt.Fprintln(w, "dictionary-impact row may sit elsewhere (hard-fault region shape).")
	return nil
}

// AblationOptimizers compares Powell against Nelder-Mead and exhaustive
// grid search on the soft-fault optimization of the Fig. 2-4 example:
// achieved sensitivity versus simulation count, the paper's stated
// reason for avoiding global optimization.
func (r *Runner) AblationOptimizers() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	w := r.opts.Out
	ci := indexOfConfig(r.configs, 3)
	c := r.configs[ci]
	box := c.Bounds()
	base := fault.ByID(r.dict, r.opts.TPSFaultID)
	f := base.WithImpact(base.InitialImpact() * 4) // soft region

	evals := 0
	obj := func(T []float64) float64 {
		evals++
		sf, err := s.Sensitivity(ci, f, T)
		if err != nil {
			return 10
		}
		return sf
	}
	gridN := 7
	if r.opts.Quick {
		gridN = 5
	}
	t := report.NewTable("optimizer", "S_f found", "parameters", "simulations")
	run := func(name string, m func() opt.Result) {
		evals = 0
		res := m()
		t.AddRow(name, res.F, paramString(c, res.X), evals)
	}
	run("Powell (paper)", func() opt.Result { return opt.Powell(obj, box, c.Seeds(), 1e-3) })
	run("Nelder-Mead", func() opt.Result { return opt.NelderMead(obj, box, c.Seeds(), 1e-3) })
	run(fmt.Sprintf("grid %d×%d", gridN, gridN), func() opt.Result { return opt.Grid(obj, box, gridN) })
	_, err = t.WriteTo(w)
	return err
}

// AblationDelta sweeps the compaction loss budget δ and reports the
// size/coverage trade-off.
func (r *Runner) AblationDelta() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	faults := r.Faults()
	w := r.opts.Out
	t := report.NewTable("δ", "compacted tests", "coverage %", "undetected")
	for _, delta := range []float64{0, 0.05, 0.1, 0.2, 0.4} {
		o := core.DefaultCompactOptions()
		o.Delta = delta
		cts, err := s.Compact(sols, o)
		if err != nil {
			return err
		}
		cov, err := s.Coverage(core.TestsOfCompact(cts), faults)
		if err != nil {
			return err
		}
		t.AddRow(delta, len(cts), cov.Percent(), len(cov.Undetected))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nlarger δ accepts more sensitivity loss: fewer tests, possibly lower coverage.")
	return nil
}
