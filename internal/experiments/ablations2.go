package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/testcfg"
)

// AblationBoxMode compares tolerance-box construction strategies:
// deterministic process corners at the seed point versus Monte-Carlo
// sampling. Wider boxes make faults harder to detect (a fault must leave
// the box), so the box source directly moves the sensitivity scale.
func (r *Runner) AblationBoxMode() error {
	w := r.opts.Out
	t := report.NewTable("box source", "box(V(Vout)) [V]", "box(I(Vdd)) [A]", "S_f(feedback bridge)")
	for _, mode := range []struct {
		name string
		mode core.BoxMode
	}{
		{"corners @ seed", core.BoxSeed},
		{"Monte-Carlo (32 samples)", core.BoxMonteCarlo},
	} {
		cfg := core.DefaultConfig()
		cfg.BoxMode = mode.mode
		cfg.MCSeed = 1
		s, err := core.NewSession(r.golden, testcfg.IVConfigs()[:2], cfg)
		if err != nil {
			return err
		}
		b1 := s.Box(0).Halfwidths([]float64{20e-6})[0]
		b2 := s.Box(1).Halfwidths([]float64{20e-6})[0]
		f := r.dict[findFault(r, "bridge:Iin-Vout")]
		sf, err := s.Sensitivity(0, f, []float64{20e-6})
		if err != nil {
			return err
		}
		t.AddRow(mode.name, b1, b2, sf)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nthe Monte-Carlo box is usually tighter than worst-case corners; both keep")
	fmt.Fprintln(w, "the dictionary-impact feedback bridge deeply detected (S_f << 0).")
	return nil
}

func findFault(r *Runner, id string) int {
	for i, f := range r.dict {
		if f.ID() == id {
			return i
		}
	}
	return 0
}

// AblationRadius sweeps the compaction grouping radius: larger radii
// form bigger groups (fewer tests) but push the δ screen harder.
func (r *Runner) AblationRadius() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	faults := r.Faults()
	w := r.opts.Out
	t := report.NewTable("radius", "compacted tests", "coverage %")
	for _, radius := range []float64{0.05, 0.1, 0.15, 0.25, 0.4} {
		o := core.DefaultCompactOptions()
		o.Delta = r.opts.Delta
		o.Radius = radius
		cts, err := s.Compact(sols, o)
		if err != nil {
			return err
		}
		cov, err := s.Coverage(core.TestsOfCompact(cts), faults)
		if err != nil {
			return err
		}
		t.AddRow(radius, len(cts), cov.Percent())
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Compare against coverage-based pruning, the beyond-paper shrink.
	pruned, err := s.Prune(core.TestsOf(sols), faults)
	if err != nil {
		return err
	}
	cov, err := s.Coverage(pruned, faults)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncoverage-pruned (no sensitivity guarantee): %d tests, %.1f %%\n",
		len(pruned), cov.Percent())
	return nil
}
