package experiments

import (
	"strings"
	"testing"
)

func TestAblationBoxModeOutput(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("ablation-boxmode"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"corners @ seed", "Monte-Carlo", "S_f(feedback bridge)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-boxmode missing %q", want)
		}
	}
	// Both rows must report detection (a negative S_f somewhere).
	if !strings.Contains(out, "-") {
		t.Error("no negative sensitivities reported")
	}
}

func TestAblationRadiusOutput(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("ablation-radius"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"radius", "compacted tests", "coverage-pruned"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-radius missing %q", want)
		}
	}
}
