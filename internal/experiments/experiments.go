// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. It is shared
// by cmd/experiments (full runs) and the repository benchmark harness
// (reduced runs exercising the same code paths).
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/obs"
	"repro/internal/testcfg"
)

// DefaultTPSFault is the bridging fault whose tps-graphs reproduce
// Figs. 2-4 ("a resistive short between two arbitrarily chosen nodes").
const DefaultTPSFault = "bridge:Ntail-Out1"

// Options tunes a Runner.
type Options struct {
	// Out receives the experiment reports.
	Out io.Writer
	// Quick shrinks grids and fault subsets so a run finishes in seconds;
	// used by the benchmark harness. Full runs reproduce the paper-scale
	// experiment (55 faults, full grids).
	Quick bool
	// Workers bounds generation parallelism (0: core default).
	Workers int
	// TPSFaultID overrides the bridge used for the Fig. 2-4 tps-graphs.
	TPSFaultID string
	// Delta is the compaction loss budget (default 0.1).
	Delta float64
	// Ctx cancels long-running experiment phases (generation) when it
	// ends; nil means context.Background().
	Ctx context.Context
	// Tracer records run spans and events into its sink; nil disables
	// tracing.
	Tracer *obs.Tracer
	// Progress feeds a live progress tracker; nil disables it.
	Progress *obs.Progress
}

// Runner executes experiments, sharing one session and memoizing the
// expensive full-dictionary generation across experiments.
type Runner struct {
	opts    Options
	golden  *circuit.Circuit
	configs []*testcfg.Config
	dict    []fault.Fault

	mu      sync.Mutex
	session *core.Session
	sols    []*core.Solution
}

// New prepares a runner; sessions and generations are built lazily.
func New(opts Options) *Runner {
	if opts.Out == nil {
		panic("experiments: Options.Out required")
	}
	if opts.TPSFaultID == "" {
		opts.TPSFaultID = DefaultTPSFault
	}
	if opts.Delta == 0 {
		opts.Delta = 0.1
	}
	if opts.Ctx == nil {
		opts.Ctx = context.Background()
	}
	golden := macros.IVConverter()
	return &Runner{
		opts:    opts,
		golden:  golden,
		configs: testcfg.IVConfigs(),
		dict:    fault.Dictionary(golden, 10e3, 2e3),
	}
}

// Session lazily builds the shared session (grid boxes for full runs,
// seed boxes for quick runs).
func (r *Runner) Session() (*core.Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.session != nil {
		return r.session, nil
	}
	cfg := core.DefaultConfig()
	if r.opts.Workers > 0 {
		cfg.Workers = r.opts.Workers
	}
	if r.opts.Quick {
		cfg.BoxMode = core.BoxSeed
	}
	cfg.Tracer = r.opts.Tracer
	cfg.Progress = r.opts.Progress
	s, err := core.NewSession(r.golden, r.configs, cfg)
	if err != nil {
		return nil, err
	}
	r.session = s
	return s, nil
}

// Faults returns the fault list an experiment iterates: the full 55-
// fault dictionary, or a representative 13-fault subset in quick mode.
func (r *Runner) Faults() []fault.Fault {
	if !r.opts.Quick {
		return r.dict
	}
	var sub []fault.Fault
	for i, f := range r.dict {
		if f.Kind() == fault.KindBridge && i%5 == 0 {
			sub = append(sub, f)
		}
	}
	for _, name := range []string{"M2", "M6", "M9"} {
		if f := fault.ByID(r.dict, "pinhole:"+name); f != nil {
			sub = append(sub, f)
		}
	}
	return sub
}

// Solutions lazily runs the full generation (the Table-2 workload) and
// memoizes the result for the dependent experiments (Fig. 8, Table 3,
// δ-sweep).
func (r *Runner) Solutions() ([]*core.Solution, error) {
	r.mu.Lock()
	cached := r.sols
	r.mu.Unlock()
	if cached != nil {
		return cached, nil
	}
	s, err := r.Session()
	if err != nil {
		return nil, err
	}
	sols, err := s.GenerateAllContext(r.opts.Ctx, r.Faults())
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.sols = sols
	r.mu.Unlock()
	return sols, nil
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) error
}

// All returns every experiment in canonical order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: test configuration definitions", (*Runner).Table1},
		{"fig1", "Fig. 1: test configuration description", (*Runner).Fig1},
		{"fig2", "Fig. 2: tps-graph, hard-fault region (R=10k)", (*Runner).Fig2},
		{"fig3", "Fig. 3: tps-graph, soft-fault region (R=34k)", (*Runner).Fig3},
		{"fig4", "Fig. 4: tps-graph, soft-fault region (R=75k)", (*Runner).Fig4},
		{"fig5", "Fig. 5: tolerance box in a 2-D measurement space", (*Runner).Fig5},
		{"fig6", "Fig. 6: generation scheme trace for one fault", (*Runner).Fig6},
		{"fig7", "Fig. 7: pinhole fault model insertion", (*Runner).Fig7},
		{"table2", "Table 2: best-test distribution over the fault list", (*Runner).Table2},
		{"fig8", "Fig. 8: optimal test parameter values (clusters)", (*Runner).Fig8},
		{"table3", "Table 3: collapsed (compacted) test set", (*Runner).Table3},
		{"ablation-selection", "Ablation: seed-selection-only vs tailored optimization", (*Runner).AblationSelection},
		{"ablation-soft", "Ablation: soft-fault region optimum stability", (*Runner).AblationSoft},
		{"ablation-opt", "Ablation: Powell vs Nelder-Mead vs grid search", (*Runner).AblationOptimizers},
		{"ablation-delta", "Ablation: compaction δ sweep", (*Runner).AblationDelta},
		{"ablation-boxmode", "Ablation: corner vs Monte-Carlo tolerance boxes", (*Runner).AblationBoxMode},
		{"ablation-radius", "Ablation: compaction grouping radius sweep + pruning", (*Runner).AblationRadius},
		{"ablation-impact", "Ablation: coverage vs bridge impact (quality level curve)", (*Runner).AblationImpact},
		{"macro2", "Cross-check: full pipeline on the single-stage macro variant", (*Runner).Macro2},
		{"opens", "Extension: stuck-open faults with inverted impact semantics", (*Runner).Opens},
	}
}

// ByID finds an experiment, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			ee := e
			return &ee
		}
	}
	return nil
}

// Run executes the named experiments ("all" for everything) with banner
// lines between them.
func (r *Runner) Run(ids ...string) error {
	var list []Experiment
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		list = All()
	} else {
		for _, id := range ids {
			e := ByID(id)
			if e == nil {
				return fmt.Errorf("experiments: unknown experiment %q", id)
			}
			list = append(list, *e)
		}
	}
	for _, e := range list {
		if err := r.opts.Ctx.Err(); err != nil {
			return fmt.Errorf("experiments: canceled before %s: %w", e.ID, err)
		}
		fmt.Fprintf(r.opts.Out, "\n==== %s — %s ====\n\n", e.ID, e.Title)
		if err := e.Run(r); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
	}
	return nil
}

// Metrics snapshots the shared session's engine metrics; ok is false
// when no session has been built yet.
func (r *Runner) Metrics() (m engine.Metrics, ok bool) {
	r.mu.Lock()
	s := r.session
	r.mu.Unlock()
	if s == nil {
		return engine.Metrics{}, false
	}
	return s.Metrics(), true
}

// faultsByKind splits the runner's fault list per kind for reporting.
func (r *Runner) faultsByKind() map[fault.Kind][]fault.Fault {
	out := make(map[fault.Kind][]fault.Fault)
	for _, f := range r.Faults() {
		out[f.Kind()] = append(out[f.Kind()], f)
	}
	return out
}

// sortedKinds returns the kinds in stable order.
func sortedKinds(m map[fault.Kind][]fault.Fault) []fault.Kind {
	kinds := make([]fault.Kind, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
