package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// The quick runner is shared across tests: building the session and the
// memoized generation dominate runtime.
var (
	rOnce sync.Once
	rBuf  *bytes.Buffer
	rQ    *Runner
)

func quickRunner(t *testing.T) (*Runner, *bytes.Buffer) {
	t.Helper()
	rOnce.Do(func() {
		rBuf = &bytes.Buffer{}
		rQ = New(Options{Out: rBuf, Quick: true, Workers: 4})
	})
	rBuf.Reset()
	return rQ, rBuf
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"table2", "fig8", "table3",
		"ablation-selection", "ablation-soft", "ablation-opt", "ablation-delta",
		"ablation-boxmode", "ablation-radius", "ablation-impact", "macro2", "opens",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("experiment count = %d, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if ByID(id) == nil {
			t.Errorf("ByID(%s) = nil", id)
		}
	}
	if ByID("nope") != nil {
		t.Error("ByID(nope) should be nil")
	}
}

func TestRunUnknownID(t *testing.T) {
	r, _ := quickRunner(t)
	if err := r.Run("not-an-experiment"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestQuickFaultSubset(t *testing.T) {
	r, _ := quickRunner(t)
	faults := r.Faults()
	if len(faults) >= 55 || len(faults) < 8 {
		t.Errorf("quick subset size = %d, want a small representative slice", len(faults))
	}
	full := New(Options{Out: &bytes.Buffer{}})
	if len(full.Faults()) != 55 {
		t.Errorf("full fault list = %d, want 55", len(full.Faults()))
	}
}

func TestTable1Output(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("table1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dc-out", "supply-current", "thd", "step-integral", "step-peak", "Iindc"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q", want)
		}
	}
}

func TestFig1Output(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("fig1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Macro type: IV-converter") {
		t.Error("fig1 missing the macro-type header")
	}
}

func TestFig5Output(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("fig5"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "tolerance box") || !strings.Contains(out, "nominal") {
		t.Errorf("fig5 output incomplete:\n%s", out)
	}
}

func TestFig6TraceShowsLoop(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("fig6"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per-configuration optimization", "impact relax/intensify", "winner"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 missing %q", want)
		}
	}
}

func TestFig7ShowsSplit(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("fig7"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"M6_d", "M6_s", "FP_M6"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q", want)
		}
	}
}

func TestTPSFigureSoftVsHard(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("fig3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "minimum S_f") || !strings.Contains(out, "x-axis: Iindc") {
		t.Errorf("fig3 output incomplete:\n%s", out)
	}
}

func TestTable2ColumnsSum(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("table2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "column bridge sums to") {
		t.Error("table2 missing the bridge checksum line")
	}
	// Checksum lines must assert full assignment (the phrase repeats the
	// total on both sides when consistent).
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "sums to") {
			parts := strings.Fields(line)
			// "column <kind> sums to <n> of <m> faults"
			if parts[4] != parts[6] {
				t.Errorf("inconsistent checksum: %s", line)
			}
		}
	}
}

func TestTable3AndDeltaShareSolutions(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("table3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "compacted:") || !strings.Contains(out, "uncompacted:") {
		t.Errorf("table3 output incomplete:\n%s", out)
	}
	// The second run must reuse memoized solutions (fast path).
	buf.Reset()
	if err := r.Run("ablation-delta"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "compacted tests") {
		t.Error("delta sweep output incomplete")
	}
}

func TestAblationSelectionOutput(t *testing.T) {
	r, buf := quickRunner(t)
	if err := r.Run("ablation-selection"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"seed selection only", "per-fault optimized", "compacted"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation-selection missing %q", want)
		}
	}
}

func TestNewPanicsWithoutOut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Options without Out accepted")
		}
	}()
	New(Options{})
}
