package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/testcfg"
)

// Fig1 prints the Fig. 1 style description of the step-response test
// configuration.
func (r *Runner) Fig1() error {
	c := testcfg.ByID(r.configs, 4)
	_, err := fmt.Fprint(r.opts.Out, c.Describe())
	return err
}

// tpsGrid returns the grid resolution for the tps figures.
func (r *Runner) tpsGrid() (n1, n2 int) {
	if r.opts.Quick {
		return 9, 7
	}
	return 21, 13
}

// tpsFigure renders one tps-graph of the Fig. 2-4 bridge at the given
// impact under the THD configuration (#3).
func (r *Runner) tpsFigure(impact float64) error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	base := fault.ByID(r.dict, r.opts.TPSFaultID)
	if base == nil {
		return fmt.Errorf("tps fault %q not in the dictionary", r.opts.TPSFaultID)
	}
	f := base.WithImpact(impact)
	ci := indexOfConfig(r.configs, 3)
	n1, n2 := r.tpsGrid()
	g, err := s.TPS(ci, f, n1, n2)
	if err != nil {
		return err
	}
	w := r.opts.Out
	fmt.Fprintf(w, "fault %s at impact R=%s, configuration #%d (%s)\n",
		f.ID(), report.Engineering(impact), 3, "THD measurement")
	fmt.Fprintf(w, "axes: %s in [%s, %s], %s in [%s, %s]\n\n",
		g.Name1, report.Engineering(g.Axis1[0]), report.Engineering(g.Axis1[len(g.Axis1)-1]),
		g.Name2, report.Engineering(g.Axis2[0]), report.Engineering(g.Axis2[len(g.Axis2)-1]))
	if err := report.HeatMap(w, g.S, g.Name1, g.Name2); err != nil {
		return err
	}
	i, j, min := g.MinCell()
	fmt.Fprintf(w, "\n  minimum S_f = %.4g at %s=%s, %s=%s\n",
		min, g.Name1, report.Engineering(g.Axis1[i]), g.Name2, report.Engineering(g.Axis2[j]))
	fmt.Fprintf(w, "  detectable fraction of the parameter plane: %.0f %%\n",
		100*g.DetectableFraction())
	return nil
}

// Fig2 is the hard-fault-region tps-graph (dictionary impact 10 kΩ).
func (r *Runner) Fig2() error { return r.tpsFigure(10e3) }

// Fig3 is the soft-fault-region tps-graph at 34 kΩ.
func (r *Runner) Fig3() error { return r.tpsFigure(34e3) }

// Fig4 is the soft-fault-region tps-graph at 75 kΩ; the paper's point is
// that its shape matches Fig. 3 with a global flattening and upward
// shift, so the optimum location is stable.
func (r *Runner) Fig4() error { return r.tpsFigure(75e3) }

// Fig5 demonstrates the tolerance box in a p=2 measurement space by
// pairing the two DC configurations (#1 voltage, #2 supply current) at a
// common parameter value: the nominal point, the box halfwidths, one
// response inside the box (indistinguishable from fault-free) and one
// outside (guaranteed faulty).
func (r *Runner) Fig5() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	w := r.opts.Out
	T := []float64{20e-6}
	c1 := indexOfConfig(r.configs, 1)
	c2 := indexOfConfig(r.configs, 2)
	nom1, err := s.Nominal(c1, T)
	if err != nil {
		return err
	}
	nom2, err := s.Nominal(c2, T)
	if err != nil {
		return err
	}
	b1 := s.Box(c1).Halfwidths(T)
	b2 := s.Box(c2).Halfwidths(T)
	fmt.Fprintf(w, "measurement space: r1 = V(Vout) [V], r2 = I(Vdd) [A] at Iin,dc = 20 µA\n")
	fmt.Fprintf(w, "nominal       (%.6g V, %.6g A)\n", nom1[0], nom2[0])
	fmt.Fprintf(w, "tolerance box ±%.3g V × ±%.3g A (process corners + equipment accuracy)\n", b1[0], b2[0])

	inside := fault.NewBridge(macros.NodeNmir, macros.NodeVdd, 5e6) // barely-there defect
	outside := fault.NewBridge(macros.NodeIin, macros.NodeVout, 10e3)
	for _, c := range []struct {
		name string
		f    fault.Fault
	}{{"R(T)1 (inside box: may be fault-free)", inside}, {"R(T)2 (outside box: only a faulty circuit)", outside}} {
		fc, err := c.f.Insert(r.golden)
		if err != nil {
			return err
		}
		r1, err := r.configs[c1].Run(fc, T)
		if err != nil {
			return err
		}
		r2, err := r.configs[c2].Run(fc, T)
		if err != nil {
			return err
		}
		s1, err := s.Sensitivity(c1, c.f, T)
		if err != nil {
			return err
		}
		s2, err := s.Sensitivity(c2, c.f, T)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-42s (%.6g V, %.6g A)  S_f = (%.3g, %.3g)\n", c.name, r1[0], r2[0], s1, s2)
	}
	fmt.Fprintln(w, "\nS_f ≥ 0 means the response stays inside the box; S_f < 0 leaves it (detected).")
	return nil
}

// Fig6 traces the generation scheme (optimize per configuration, then
// relax/intensify the fault impact until one test survives) for a single
// fault.
func (r *Runner) Fig6() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	w := r.opts.Out
	f := fault.NewBridge(macros.NodeVref, macros.NodeNtail, 10e3)
	sol, err := s.Generate(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fault: %s (dictionary impact %s)\n\n", f.ID(), report.Engineering(f.InitialImpact()))
	fmt.Fprintln(w, "step 1 — per-configuration optimization (soft-fault model):")
	t := report.NewTable("config", "optimized parameters", "soft S_f", "evals")
	for _, c := range sol.Candidates {
		t.AddRow(fmt.Sprintf("#%d %s", r.configs[c.ConfigIdx].ID, r.configs[c.ConfigIdx].Name),
			paramString(r.configs[c.ConfigIdx], c.Params), c.SoftS, c.Evals)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nstep 2 — impact relax/intensify loop:")
	t2 := report.NewTable("iter", "impact", "detects", "per-config S_f")
	for i, st := range sol.Trace {
		sens := ""
		for j, v := range st.Sens {
			if j > 0 {
				sens += "  "
			}
			sens += fmt.Sprintf("%.3g", v)
		}
		t2.AddRow(i+1, report.Engineering(st.Impact), st.Detects, sens)
	}
	if _, err := t2.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwinner: configuration #%d (%s) at %s, critical impact %s, S_f(dictionary)=%.3g\n",
		sol.ConfigID(s), r.configs[sol.ConfigIdx].Name,
		paramString(r.configs[sol.ConfigIdx], sol.Params),
		report.Engineering(sol.CriticalImpact), sol.Sensitivity)
	return nil
}

// Fig7 shows the pinhole fault model: the netlist before and after
// inserting the Eckersall gate-oxide short into M6.
func (r *Runner) Fig7() error {
	w := r.opts.Out
	f := fault.NewPinhole("M6", 2e3)
	fc, err := f.Insert(r.golden)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pinhole model: %s\n\n", f)
	fmt.Fprintln(w, "golden transistor line:")
	fmt.Fprintf(w, "  %s", grepLines(netlist.Format(r.golden), "M6 "))
	fmt.Fprintln(w, "after insertion (channel split 25 %/75 % + gate-to-channel shunt):")
	for _, pat := range []string{"M6_d ", "M6_s ", "FP_M6 "} {
		fmt.Fprintf(w, "  %s", grepLines(netlist.Format(fc), pat))
	}
	return nil
}

// Fig8 lists the optimized parameter values per configuration for the
// generated solutions — the scatter whose clusters drive compaction.
func (r *Runner) Fig8() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	w := r.opts.Out
	for ci, c := range r.configs {
		var rows []*core.Solution
		for _, sol := range sols {
			if sol.ConfigIdx == ci && !sol.Undetectable {
				rows = append(rows, sol)
			}
		}
		if len(rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "configuration #%d (%s): %d faults\n", c.ID, c.Name, len(rows))
		t := report.NewTable("fault", "optimal parameters", "S_f(dict)")
		for _, sol := range rows {
			t.AddRow(sol.Fault.ID(), paramString(c, sol.Params), sol.Sensitivity)
		}
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	_ = s
	return nil
}
