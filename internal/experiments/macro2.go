package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/macros"
	"repro/internal/report"
	"repro/internal/testcfg"
)

// Macro2 runs the complete pipeline (generation, compaction, coverage)
// on the second macro type — the single-stage SimpleIVConverter with its
// 44-fault dictionary — validating that nothing in the methodology is
// specific to the paper's case-study netlist.
func (r *Runner) Macro2() error {
	w := r.opts.Out
	golden := macros.SimpleIVConverter()
	cfg := core.DefaultConfig()
	if r.opts.Workers > 0 {
		cfg.Workers = r.opts.Workers
	}
	// Seed boxes keep this cross-check affordable even in full runs; the
	// primary macro carries the grid-box experiments.
	cfg.BoxMode = core.BoxSeed
	s, err := core.NewSession(golden, r.configs, cfg)
	if err != nil {
		return err
	}
	dict := fault.Dictionary(golden, 10e3, 2e3)
	if r.opts.Quick {
		var sub []fault.Fault
		for i, f := range dict {
			if i%4 == 0 {
				sub = append(sub, f)
			}
		}
		dict = sub
	}
	fmt.Fprintf(w, "macro %q: %d nodes, %d faults\n\n", golden.Name(), len(golden.AllNodes()), len(dict))

	sols, err := s.GenerateAll(dict)
	if err != nil {
		return err
	}
	d := s.Tabulate(sols)
	t := report.NewTable("configuration", "bridge", "pinhole")
	for _, id := range d.ConfigIDs() {
		t.AddRow(fmt.Sprintf("#%d %s", id, testcfg.ByID(r.configs, id).Name),
			d.Counts[id][fault.KindBridge], d.Counts[id][fault.KindPinhole])
	}
	t.AddRow("undetectable", d.Undetectable[fault.KindBridge], d.Undetectable[fault.KindPinhole])
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	opts := core.DefaultCompactOptions()
	opts.Delta = r.opts.Delta
	cts, err := s.Compact(sols, opts)
	if err != nil {
		return err
	}
	cov, err := s.Coverage(core.TestsOfCompact(cts), dict)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncompacted: %d tests, coverage %.1f %% (%d/%d)\n",
		len(cts), cov.Percent(), cov.Detected, cov.Total)
	st := s.Stats()
	fmt.Fprintf(w, "simulation effort: %d nominal + %d faulty runs (%d cache hits)\n",
		st.NominalRuns, st.FaultyRuns, st.CacheHits)
	return nil
}
