package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/report"
)

// Opens extends the paper's dictionary with stuck-open faults (one drain
// open per MOSFET, 10 MΩ series) and runs generation over them. Opens
// invert the impact convention — severity grows with resistance — which
// the relax/intensify loop must handle transparently.
func (r *Runner) Opens() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	w := r.opts.Out
	opens := fault.AllDrainOpens(r.golden, 10e6)
	if r.opts.Quick {
		opens = opens[:4]
	}
	fmt.Fprintf(w, "dictionary extension: %d drain opens at 10 MΩ series resistance\n\n", len(opens))
	sols, err := s.GenerateAll(opens)
	if err != nil {
		return err
	}
	t := report.NewTable("fault", "config", "parameters", "S_f(dict)", "critical impact")
	detected := 0
	for _, sol := range sols {
		c := r.configs[sol.ConfigIdx]
		flag := ""
		if sol.Undetectable {
			flag = " (undetectable)"
		} else if sol.Sensitivity < 0 {
			detected++
		}
		t.AddRow(sol.Fault.ID()+flag, fmt.Sprintf("#%d %s", c.ID, c.Name),
			paramString(c, sol.Params), sol.Sensitivity, report.Engineering(sol.CriticalImpact))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	cov, err := s.Coverage(core.TestsOf(sols), opens)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%d/%d opens detected at the dictionary impact; coverage of the generated set %.1f %%\n",
		detected, len(opens), cov.Percent())
	fmt.Fprintln(w, "(note: critical impacts move DOWNWARD in resistance — the inverted convention)")
	return nil
}
