package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/report"
)

// AblationImpact sweeps the bridging-fault impact and reports the
// coverage of the (coverage-pruned) test set at each severity: the
// quality-level curve. Weak defects escape (the tolerance box hides
// them); the curve shows where the escape threshold sits relative to the
// 10 kΩ dictionary impact.
func (r *Runner) AblationImpact() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	faults := r.Faults()
	pruned, err := s.Prune(core.TestsOf(sols), faults)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.opts.Out, "test set: %d coverage-pruned tests; bridges swept around the 10 kΩ dictionary impact\n\n", len(pruned))

	var bridges []fault.Fault
	for _, f := range faults {
		if f.Kind() == fault.KindBridge {
			bridges = append(bridges, f)
		}
	}
	t := report.NewTable("impact ×dict", "bridge R", "bridges detected", "coverage %")
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		scaled := make([]fault.Fault, len(bridges))
		for i, f := range bridges {
			// Rebase the dictionary impact itself so Coverage (which
			// resets to InitialImpact) sees the scaled severity.
			scaled[i] = fault.NewBridge(f.(*fault.Bridge).NodeA, f.(*fault.Bridge).NodeB,
				f.InitialImpact()*mult)
		}
		cov, err := s.Coverage(pruned, scaled)
		if err != nil {
			return err
		}
		t.AddRow(mult, report.Engineering(10e3*mult), cov.Detected, cov.Percent())
	}
	if _, err := t.WriteTo(r.opts.Out); err != nil {
		return err
	}
	fmt.Fprintln(r.opts.Out, "\nstronger defects (lower R) stay covered; weakening raises escapes, locating")
	fmt.Fprintln(r.opts.Out, "the quality level the compact set guarantees.")
	return nil
}
