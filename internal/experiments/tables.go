package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/testcfg"
)

// indexOfConfig resolves a paper configuration number to its slice index.
func indexOfConfig(cfgs []*testcfg.Config, id int) int {
	for i, c := range cfgs {
		if c.ID == id {
			return i
		}
	}
	return -1
}

// paramString renders a parameter vector with engineering units and the
// configuration's parameter names.
func paramString(c *testcfg.Config, T []float64) string {
	parts := make([]string, len(T))
	for i, v := range T {
		parts[i] = fmt.Sprintf("%s=%s%s", c.Params[i].Name, report.Engineering(v), c.Params[i].Unit)
	}
	return strings.Join(parts, " ")
}

// grepLines returns the lines of text containing pat (prefix match on
// trimmed lines), newline-terminated.
func grepLines(text, pat string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), pat) {
			b.WriteString(strings.TrimSpace(line))
			b.WriteByte('\n')
		}
	}
	if b.Len() == 0 {
		b.WriteString("(none)\n")
	}
	return b.String()
}

// Table1 prints the five test configuration definitions.
func (r *Runner) Table1() error {
	w := r.opts.Out
	t := report.NewTable("#", "name", "parameters (bounds, seed)", "stimulus", "return value")
	for _, c := range r.configs {
		var ps []string
		for _, p := range c.Params {
			ps = append(ps, fmt.Sprintf("%s∈[%s,%s] seed %s",
				p.Name, report.Engineering(p.Lo), report.Engineering(p.Hi), report.Engineering(p.Seed)))
		}
		var rets []string
		for _, ret := range c.Returns {
			rets = append(rets, fmt.Sprintf("%s ±%s%s", ret.Name, report.Engineering(ret.Accuracy), ret.Unit))
		}
		t.AddRow(c.ID, c.Name, strings.Join(ps, "; "), c.Stimulus, strings.Join(rets, "; "))
	}
	_, err := t.WriteTo(w)
	return err
}

// Table2 runs the full generation and prints the distribution of winning
// configurations split by fault kind, the paper's Table 2.
func (r *Runner) Table2() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	d := s.Tabulate(sols)
	w := r.opts.Out
	byKind := r.faultsByKind()
	kinds := sortedKinds(byKind)

	header := []string{"ID test configuration tc"}
	for _, k := range kinds {
		header = append(header, fmt.Sprintf("%s(%d)", k, len(byKind[k])))
	}
	t := report.NewTable(header...)
	for _, id := range d.ConfigIDs() {
		row := []interface{}{fmt.Sprintf("#%d %s", id, r.configs[indexOfConfig(r.configs, id)].Name)}
		for _, k := range kinds {
			row = append(row, d.Counts[id][k])
		}
		t.AddRow(row...)
	}
	undet := []interface{}{"undetectable"}
	for _, k := range kinds {
		undet = append(undet, d.Undetectable[k])
	}
	t.AddRow(undet...)
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	// Column checksums: every fault is assigned exactly once.
	for _, k := range kinds {
		total := d.Undetectable[k]
		for _, id := range d.ConfigIDs() {
			total += d.Counts[id][k]
		}
		fmt.Fprintf(w, "column %s sums to %d of %d faults\n", k, total, len(byKind[k]))
	}

	// Per-fault detail (engineering record the paper omits).
	fmt.Fprintln(w, "\nper-fault winners:")
	t2 := report.NewTable("fault", "config", "parameters", "S_f(dict)", "critical impact", "evals")
	for _, sol := range sols {
		flag := ""
		if sol.Undetectable {
			flag = " (undetectable)"
		}
		c := r.configs[sol.ConfigIdx]
		t2.AddRow(sol.Fault.ID()+flag, fmt.Sprintf("#%d", c.ID), paramString(c, sol.Params),
			sol.Sensitivity, report.Engineering(sol.CriticalImpact), sol.Evals)
	}
	_, err = t2.WriteTo(w)
	return err
}

// Table3 compacts the generated solutions and prints the collapsed test
// set, the paper's Table 3.
func (r *Runner) Table3() error {
	s, err := r.Session()
	if err != nil {
		return err
	}
	sols, err := r.Solutions()
	if err != nil {
		return err
	}
	opts := core.DefaultCompactOptions()
	opts.Delta = r.opts.Delta
	cts, err := s.Compact(sols, opts)
	if err != nil {
		return err
	}
	w := r.opts.Out
	fmt.Fprintf(w, "δ = %.2g, grouping radius = %.2g (normalized)\n\n", opts.Delta, opts.Radius)
	t := report.NewTable("test", "config", "parameters", "faults covered")
	for i, ct := range cts {
		c := r.configs[ct.ConfigIdx]
		t.AddRow(i+1, fmt.Sprintf("#%d %s", c.ID, c.Name), paramString(c, ct.Params), len(ct.Members))
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}

	faults := r.Faults()
	before, err := s.Coverage(core.TestsOf(sols), faults)
	if err != nil {
		return err
	}
	after, err := s.Coverage(core.TestsOfCompact(cts), faults)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nuncompacted: %d tests, coverage %.1f %% (%d/%d)\n",
		len(core.TestsOf(sols)), before.Percent(), before.Detected, before.Total)
	fmt.Fprintf(w, "compacted:   %d tests, coverage %.1f %% (%d/%d)\n",
		len(cts), after.Percent(), after.Detected, after.Total)
	if len(after.Undetected) > 0 {
		fmt.Fprintf(w, "undetected by the compacted set: %s\n", strings.Join(after.Undetected, ", "))
	}
	// The paper's Table 3 highlights configuration #5 retaining two tests.
	n5 := 0
	for _, ct := range cts {
		if r.configs[ct.ConfigIdx].ID == 5 {
			n5++
		}
	}
	fmt.Fprintf(w, "configuration #5 contributes %d collapsed test(s) (paper: 2)\n", n5)
	return nil
}
