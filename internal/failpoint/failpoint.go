// Package failpoint is a stdlib-only, deterministic fault-injection
// registry. Production code declares named sites at the seams where
// failures are interesting (checkpoint rename, Newton convergence,
// task dispatch, ...) and tests or the chaos harness arm them with an
// action. A disarmed site costs exactly one atomic pointer load — the
// same budget as the tracing hooks in internal/sim — so sites can live
// on hot paths (the overhead is benchmark-enforced in
// failpoint_bench_test.go and by BenchmarkNewtonLinearSweep32).
//
// Determinism: probabilistic triggers draw from a per-site splitmix64
// stream seeded from a single global seed XOR the site-name hash, so a
// chaos schedule is fully replayable from one integer. The per-site
// decision *sequence* is deterministic; which goroutine observes which
// decision still depends on scheduling, which is exactly the degree of
// freedom a chaos run wants to explore.
package failpoint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the action a fired site performs.
type Kind int

const (
	// KindError makes Hit return an injected *Error.
	KindError Kind = iota
	// KindPanic makes Hit panic with an *Error value.
	KindPanic
	// KindSleep makes Hit block for the configured duration, then
	// return nil (the caller proceeds normally, just late).
	KindSleep
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindSleep:
		return "sleep"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Error is the value returned (KindError) or panicked (KindPanic) by a
// fired site. Callers can detect injected failures with
// errors.Is(err, ErrInjected).
type Error struct {
	Site string // site name
	Msg  string // message from the arming spec
}

func (e *Error) Error() string {
	return "failpoint " + e.Site + ": " + e.Msg
}

// Is makes errors.Is(err, ErrInjected) true for every injected error.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// ErrInjected is the errors.Is target matching every failpoint *Error.
var ErrInjected = &sentinel{}

type sentinel struct{}

func (*sentinel) Error() string { return "failpoint: injected failure" }

// Spec describes how an armed site behaves. The zero value of the
// trigger fields means "fire on every hit".
type Spec struct {
	Kind  Kind
	Msg   string        // error / panic message
	Sleep time.Duration // KindSleep duration

	Every int     // fire on every Nth hit (0 or 1: every hit)
	Prob  float64 // fire with this probability (0: always)
	Times int     // total fires before auto-disarm (0: unlimited; 1: one-shot)
}

// arming is the immutable armed state plus its mutable counters. The
// site holds it behind an atomic pointer so disarmed sites pay one
// nil-check load and armed state swaps are race-free.
type arming struct {
	spec      Spec
	hits      atomic.Uint64 // evaluations since arming
	fires     atomic.Uint64 // times the action ran
	remaining atomic.Int64  // fires left before auto-disarm (<0: unlimited)
	rng       atomic.Uint64 // splitmix64 stream state
}

// Site is a named injection point. Resolve it once with At (package
// init or constructor) and call Hit on the hot path.
type Site struct {
	name  string
	armed atomic.Pointer[arming]
}

// Name returns the site's registry name.
func (s *Site) Name() string { return s.name }

// Hit evaluates the site. Disarmed (the common case) it is a single
// atomic load returning nil. Armed, it applies the spec's trigger and
// either returns nil (not selected this hit) or performs the action:
// KindError returns an *Error, KindPanic panics with one, KindSleep
// blocks and returns nil.
func (s *Site) Hit() error {
	a := s.armed.Load()
	if a == nil {
		return nil
	}
	return s.fire(a)
}

// fire is the armed slow path, kept out of Hit so the disarmed path
// stays trivially inlinable.
func (s *Site) fire(a *arming) error {
	hits := a.hits.Add(1)
	if p := a.spec.Prob; p > 0 && p < 1 {
		if u01(a.rng.Add(0x9e3779b97f4a7c15)) >= p {
			return nil
		}
	}
	if n := a.spec.Every; n > 1 && hits%uint64(n) != 0 {
		return nil
	}
	if a.spec.Times > 0 {
		left := a.remaining.Add(-1)
		if left < 0 {
			return nil
		}
		if left == 0 {
			// Last permitted fire: auto-disarm, but only if this arming
			// is still current (a concurrent re-arm wins).
			s.armed.CompareAndSwap(a, nil)
		}
	}
	a.fires.Add(1)
	switch a.spec.Kind {
	case KindPanic:
		panic(&Error{Site: s.name, Msg: a.spec.Msg})
	case KindSleep:
		time.Sleep(a.spec.Sleep)
		return nil
	default:
		return &Error{Site: s.name, Msg: a.spec.Msg}
	}
}

// Arm installs spec on the site, replacing any previous arming and
// resetting its counters. The trigger PRNG is seeded from the global
// seed and the site name, so a fixed Seed yields a fixed decision
// sequence regardless of arming order.
func (s *Site) Arm(spec Spec) {
	if spec.Kind == KindError && spec.Msg == "" {
		spec.Msg = "injected error"
	}
	a := &arming{spec: spec}
	if spec.Times > 0 {
		a.remaining.Store(int64(spec.Times))
	} else {
		a.remaining.Store(-1)
	}
	a.rng.Store(splitmix64(globalSeed.Load() ^ fnv64(s.name)))
	s.armed.Store(a)
}

// Disarm removes the site's arming; subsequent Hits are free again.
func (s *Site) Disarm() { s.armed.Store(nil) }

// Status is a point-in-time view of one armed site (List output).
type Status struct {
	Name  string
	Spec  Spec
	Hits  uint64
	Fires uint64
}

// --- registry ----------------------------------------------------------

var (
	registry   sync.Map // name -> *Site
	globalSeed atomic.Uint64
)

// At returns the site registered under name, creating it on first use.
// Call it once per site (package var or constructor), not per hit.
func At(name string) *Site {
	if v, ok := registry.Load(name); ok {
		return v.(*Site)
	}
	v, _ := registry.LoadOrStore(name, &Site{name: name})
	return v.(*Site)
}

// Arm arms the named site (creating it if production code has not
// declared it yet — arming before the site's package loads is legal).
func Arm(name string, spec Spec) { At(name).Arm(spec) }

// Disarm disarms the named site if it exists.
func Disarm(name string) {
	if v, ok := registry.Load(name); ok {
		v.(*Site).Disarm()
	}
}

// Reset disarms every site. Tests should defer this after arming.
func Reset() {
	registry.Range(func(_, v any) bool {
		v.(*Site).Disarm()
		return true
	})
}

// Seed sets the global chaos seed used (XOR site-name hash) to seed
// each site's trigger PRNG at Arm time. Set it before arming; it does
// not retroactively reseed already-armed sites.
func Seed(seed uint64) { globalSeed.Store(seed) }

// List returns the currently armed sites, sorted by name.
func List() []Status {
	var out []Status
	registry.Range(func(_, v any) bool {
		s := v.(*Site)
		if a := s.armed.Load(); a != nil {
			out = append(out, Status{
				Name:  s.name,
				Spec:  a.spec,
				Hits:  a.hits.Load(),
				Fires: a.fires.Load(),
			})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// --- spec strings ------------------------------------------------------

// ParseSpec parses the textual arming grammar used by CLI flags and
// the chaos schedule:
//
//	spec     = action *( ":" modifier )
//	action   = "error(" msg ")" | "panic(" msg ")" | "sleep(" duration ")"
//	modifier = "once" | "every(" n ")" | "p(" x ")" | "times(" n ")"
//
// Examples: "error(disk full)", "sleep(250ms):p(0.1)",
// "panic(boom):once", "error(torn write):every(3):times(2)".
func ParseSpec(text string) (Spec, error) {
	var spec Spec
	parts := strings.Split(text, ":")
	head, arg, err := term(parts[0])
	if err != nil {
		return spec, err
	}
	switch head {
	case "error":
		spec.Kind = KindError
		spec.Msg = arg
	case "panic":
		spec.Kind = KindPanic
		if arg == "" {
			arg = "injected panic"
		}
		spec.Msg = arg
	case "sleep":
		spec.Kind = KindSleep
		d, derr := time.ParseDuration(arg)
		if derr != nil {
			return spec, fmt.Errorf("failpoint: sleep duration %q: %w", arg, derr)
		}
		spec.Sleep = d
	default:
		return spec, fmt.Errorf("failpoint: unknown action %q", head)
	}
	for _, p := range parts[1:] {
		name, arg, err := term(p)
		if err != nil {
			return spec, err
		}
		switch name {
		case "once":
			spec.Times = 1
		case "times":
			n, nerr := strconv.Atoi(arg)
			if nerr != nil || n < 1 {
				return spec, fmt.Errorf("failpoint: times(%s): want positive integer", arg)
			}
			spec.Times = n
		case "every":
			n, nerr := strconv.Atoi(arg)
			if nerr != nil || n < 1 {
				return spec, fmt.Errorf("failpoint: every(%s): want positive integer", arg)
			}
			spec.Every = n
		case "p":
			x, xerr := strconv.ParseFloat(arg, 64)
			if xerr != nil || x <= 0 || x > 1 {
				return spec, fmt.Errorf("failpoint: p(%s): want probability in (0,1]", arg)
			}
			spec.Prob = x
		default:
			return spec, fmt.Errorf("failpoint: unknown modifier %q", name)
		}
	}
	return spec, nil
}

// String renders the spec back into the ParseSpec grammar.
func (s Spec) String() string {
	var b strings.Builder
	switch s.Kind {
	case KindSleep:
		fmt.Fprintf(&b, "sleep(%s)", s.Sleep)
	default:
		fmt.Fprintf(&b, "%s(%s)", s.Kind, s.Msg)
	}
	if s.Prob > 0 && s.Prob < 1 {
		fmt.Fprintf(&b, ":p(%g)", s.Prob)
	}
	if s.Every > 1 {
		fmt.Fprintf(&b, ":every(%d)", s.Every)
	}
	switch {
	case s.Times == 1:
		b.WriteString(":once")
	case s.Times > 1:
		fmt.Fprintf(&b, ":times(%d)", s.Times)
	}
	return b.String()
}

// term splits "name(arg)" or bare "name" into its pieces.
func term(s string) (name, arg string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("failpoint: malformed term %q", s)
	}
	return s[:open], s[open+1 : len(s)-1], nil
}

// Apply parses and arms a semicolon-separated list of "site=spec"
// assignments, e.g. the atpgd -failpoints flag:
//
//	ckpt.save.rename=error(torn write):once;engine.task.start=sleep(1s):p(0.01)
func Apply(assignments string) error {
	if strings.TrimSpace(assignments) == "" {
		return nil
	}
	for _, pair := range strings.Split(assignments, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, specText, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("failpoint: assignment %q: want site=spec", pair)
		}
		spec, err := ParseSpec(strings.TrimSpace(specText))
		if err != nil {
			return err
		}
		Arm(strings.TrimSpace(name), spec)
	}
	return nil
}

// --- deterministic PRNG ------------------------------------------------

// splitmix64 is the finalizer of the splitmix64 generator — the same
// mix the optimizer's seed-perturbation uses, so one chaos seed drives
// one reproducible stream per site.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a raw state increment through the mixer onto [0,1).
func u01(state uint64) float64 {
	return float64(splitmix64(state)>>11) / (1 << 53)
}

// fnv64 is FNV-1a, used to derive per-site seeds from names.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
