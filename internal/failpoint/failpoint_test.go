package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedSiteReturnsNil(t *testing.T) {
	s := At("test.disarmed")
	for i := 0; i < 100; i++ {
		if err := s.Hit(); err != nil {
			t.Fatalf("disarmed site fired: %v", err)
		}
	}
}

func TestErrorActionAndSentinel(t *testing.T) {
	defer Reset()
	s := At("test.error")
	s.Arm(Spec{Kind: KindError, Msg: "disk full"})
	err := s.Hit()
	if err == nil {
		t.Fatal("armed error site returned nil")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(err, ErrInjected) = false for %v", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "test.error" || fe.Msg != "disk full" {
		t.Fatalf("unexpected error payload: %#v", err)
	}
}

func TestOneShotAutoDisarms(t *testing.T) {
	defer Reset()
	s := At("test.once")
	s.Arm(Spec{Kind: KindError, Times: 1})
	if err := s.Hit(); err == nil {
		t.Fatal("one-shot site did not fire on first hit")
	}
	for i := 0; i < 10; i++ {
		if err := s.Hit(); err != nil {
			t.Fatalf("one-shot site fired twice: %v", err)
		}
	}
	if got := List(); len(got) != 0 {
		t.Fatalf("one-shot site still listed as armed: %+v", got)
	}
}

func TestEveryNth(t *testing.T) {
	defer Reset()
	s := At("test.every")
	s.Arm(Spec{Kind: KindError, Every: 3})
	var fired []int
	for i := 1; i <= 9; i++ {
		if s.Hit() != nil {
			fired = append(fired, i)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("every(3) fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("every(3) fired at %v, want %v", fired, want)
		}
	}
}

func TestTimesLimit(t *testing.T) {
	defer Reset()
	s := At("test.times")
	s.Arm(Spec{Kind: KindError, Times: 3})
	n := 0
	for i := 0; i < 50; i++ {
		if s.Hit() != nil {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("times(3) fired %d times", n)
	}
}

func TestPanicAction(t *testing.T) {
	defer Reset()
	s := At("test.panic")
	s.Arm(Spec{Kind: KindPanic, Msg: "boom"})
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Msg != "boom" {
			t.Fatalf("panic value = %#v, want *Error{Msg: boom}", r)
		}
	}()
	_ = s.Hit()
	t.Fatal("armed panic site did not panic")
}

func TestSleepAction(t *testing.T) {
	defer Reset()
	s := At("test.sleep")
	s.Arm(Spec{Kind: KindSleep, Sleep: 30 * time.Millisecond})
	t0 := time.Now()
	if err := s.Hit(); err != nil {
		t.Fatalf("sleep action returned error: %v", err)
	}
	if d := time.Since(t0); d < 25*time.Millisecond {
		t.Fatalf("sleep action returned after %v, want >=30ms", d)
	}
}

// TestProbabilityDeterministic pins the contract the chaos harness
// depends on: a fixed global seed yields the identical fire/skip
// decision sequence at a site, run after run.
func TestProbabilityDeterministic(t *testing.T) {
	defer Reset()
	defer Seed(0)
	run := func() []bool {
		Seed(42)
		s := At("test.prob")
		s.Arm(Spec{Kind: KindError, Prob: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Hit() != nil
		}
		s.Disarm()
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically-seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	// ~30% of 200 with generous slack: the point is determinism, but a
	// grossly skewed rate would mean the trigger is broken.
	if fired < 30 || fired > 90 {
		t.Fatalf("p(0.3) fired %d/200 times", fired)
	}

	Seed(43)
	s := At("test.prob")
	s.Arm(Spec{Kind: KindError, Prob: 0.3})
	diff := false
	for i := range a {
		if (s.Hit() != nil) != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced the identical decision sequence")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"error(disk full)",
		"panic(boom):once",
		"sleep(250ms):p(0.1)",
		"error(torn write):every(3):times(2)",
	}
	for _, text := range cases {
		spec, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", text, err)
		}
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", spec.String(), text, err)
		}
		if back != spec {
			t.Fatalf("round trip %q: %+v != %+v", text, back, spec)
		}
	}
	for _, bad := range []string{"", "explode(x)", "error(x):p(2)", "sleep(abc)", "error(x):every(0)", "error(x:y"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

func TestApply(t *testing.T) {
	defer Reset()
	err := Apply("test.apply.a=error(one):once; test.apply.b=sleep(1ms)")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	got := List()
	if len(got) != 2 || got[0].Name != "test.apply.a" || got[1].Name != "test.apply.b" {
		t.Fatalf("List after Apply = %+v", got)
	}
	if err := Apply("missing-equals"); err == nil {
		t.Fatal("Apply accepted assignment without '='")
	}
	if err := Apply(""); err != nil {
		t.Fatalf("Apply(\"\") = %v", err)
	}
}

func TestListCounters(t *testing.T) {
	defer Reset()
	s := At("test.counters")
	s.Arm(Spec{Kind: KindError, Every: 2})
	for i := 0; i < 10; i++ {
		_ = s.Hit()
	}
	got := List()
	if len(got) != 1 {
		t.Fatalf("List = %+v", got)
	}
	if got[0].Hits != 10 || got[0].Fires != 5 {
		t.Fatalf("counters = hits %d fires %d, want 10/5", got[0].Hits, got[0].Fires)
	}
}

// BenchmarkSiteDisabled enforces the zero-overhead contract: a
// disarmed hit is one atomic load (sub-nanosecond on current
// hardware). Regressions here show up directly in the <2% budget on
// BenchmarkNewtonLinearSweep32.
func BenchmarkSiteDisabled(b *testing.B) {
	s := At("bench.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSiteArmedSkip measures the armed-but-not-selected path
// (probability trigger that misses), the worst case a soak run pays.
func BenchmarkSiteArmedSkip(b *testing.B) {
	defer Reset()
	s := At("bench.armed")
	s.Arm(Spec{Kind: KindError, Prob: 1e-12})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Hit()
	}
}
