// Package fault models the structural defects the test generator targets:
// resistive bridging faults between circuit nodes and gate-oxide pinhole
// shorts inside MOSFETs (Eckersall model), together with exhaustive
// fault-list generation for a macro.
//
// Every fault carries an *impact* — the physical severity of the defect,
// expressed as a model resistance. The generation algorithm manipulates
// the impact (weakening bridging faults by raising the bridge resistance,
// pinholes by raising the shunt resistance) to find the critical impact
// level at which exactly one test still detects the defect.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Kind labels a fault model type.
type Kind string

const (
	// KindBridge is a resistive short between two circuit nodes.
	KindBridge Kind = "bridge"
	// KindPinhole is a gate-oxide short to the channel (Eckersall).
	KindPinhole Kind = "pinhole"
)

// Fault is a structural defect that can be inserted into a circuit at a
// chosen impact level.
type Fault interface {
	// ID returns a unique, stable identifier, e.g. "bridge:Iin-Vout".
	ID() string
	// Kind returns the fault model type.
	Kind() Kind
	// Impact returns the current model resistance in ohms. By the paper's
	// convention a LOWER resistance is a STRONGER bridging defect and a
	// LOWER shunt resistance is a STRONGER pinhole.
	Impact() float64
	// WithImpact returns a copy of the fault at the given model
	// resistance.
	WithImpact(r float64) Fault
	// InitialImpact returns the dictionary impact the fault list assigned.
	InitialImpact() float64
	// Insert returns a faulty deep copy of the circuit. The input circuit
	// is never modified.
	Insert(c *circuit.Circuit) (*circuit.Circuit, error)
	// String returns a human-readable description.
	String() string
}

// Weaken returns the fault with its impact weakened by factor k > 1: the
// model resistance is multiplied by k for bridges and pinholes, divided
// by k for inverted models (opens).
func Weaken(f Fault, k float64) Fault {
	if Inverted(f) {
		return f.WithImpact(f.Impact() / k)
	}
	return f.WithImpact(f.Impact() * k)
}

// Strengthen returns the fault with its impact intensified by factor
// k > 1, the inverse of Weaken.
func Strengthen(f Fault, k float64) Fault {
	if Inverted(f) {
		return f.WithImpact(f.Impact() * k)
	}
	return f.WithImpact(f.Impact() / k)
}

// Bridge is a resistive short between two nodes.
type Bridge struct {
	NodeA, NodeB string
	R            float64 // current model resistance
	R0           float64 // dictionary impact
}

// NewBridge returns a bridging fault between a and b with dictionary
// impact r ohms. Node order is normalized so IDs are stable.
func NewBridge(a, b string, r float64) *Bridge {
	if a > b {
		a, b = b, a
	}
	return &Bridge{NodeA: a, NodeB: b, R: r, R0: r}
}

// ID implements Fault.
func (b *Bridge) ID() string { return fmt.Sprintf("bridge:%s-%s", b.NodeA, b.NodeB) }

// Kind implements Fault.
func (b *Bridge) Kind() Kind { return KindBridge }

// Impact implements Fault.
func (b *Bridge) Impact() float64 { return b.R }

// InitialImpact implements Fault.
func (b *Bridge) InitialImpact() float64 { return b.R0 }

// WithImpact implements Fault.
func (b *Bridge) WithImpact(r float64) Fault {
	nb := *b
	nb.R = r
	return &nb
}

// Insert implements Fault: it adds a resistor of the model resistance
// between the two bridged nodes on a clone of the circuit.
func (b *Bridge) Insert(c *circuit.Circuit) (*circuit.Circuit, error) {
	if !c.HasNode(b.NodeA) || !c.HasNode(b.NodeB) {
		return nil, fmt.Errorf("fault %s: node missing from circuit %s", b.ID(), c.Name())
	}
	if b.NodeA == b.NodeB {
		return nil, fmt.Errorf("fault %s: degenerate bridge", b.ID())
	}
	if b.R <= 0 {
		return nil, fmt.Errorf("fault %s: non-positive impact %g", b.ID(), b.R)
	}
	cc := c.Clone()
	cc.Add(device.NewResistor("FB_"+b.NodeA+"_"+b.NodeB, b.NodeA, b.NodeB, b.R))
	return cc, nil
}

// String implements Fault.
func (b *Bridge) String() string {
	return fmt.Sprintf("bridge %s-%s (R=%.3g Ω)", b.NodeA, b.NodeB, b.R)
}

// Pinhole is a gate-oxide short inside a MOSFET, modeled after Eckersall
// et al. (paper Fig. 7): the channel is split at the defect position into
// a drain-side and a source-side transistor sharing the original gate,
// with a shunt resistor Rp from the gate to the split point. Defects are
// placed at 25 % of the channel length from the drain, the low-
// detectability position the paper adopts.
type Pinhole struct {
	Transistor string
	// Position is the defect location as the fraction of channel length
	// measured from the drain (0.25 in the paper).
	Position float64
	Rp       float64 // current shunt resistance
	Rp0      float64 // dictionary impact
}

// NewPinhole returns a pinhole fault in the named transistor at the
// paper's 25 % position with dictionary shunt resistance rp.
func NewPinhole(transistor string, rp float64) *Pinhole {
	return &Pinhole{Transistor: transistor, Position: 0.25, Rp: rp, Rp0: rp}
}

// ID implements Fault.
func (p *Pinhole) ID() string { return "pinhole:" + p.Transistor }

// Kind implements Fault.
func (p *Pinhole) Kind() Kind { return KindPinhole }

// Impact implements Fault.
func (p *Pinhole) Impact() float64 { return p.Rp }

// InitialImpact implements Fault.
func (p *Pinhole) InitialImpact() float64 { return p.Rp0 }

// WithImpact implements Fault.
func (p *Pinhole) WithImpact(r float64) Fault {
	np := *p
	np.Rp = r
	return &np
}

// Insert implements Fault. On a clone of the circuit, the target MOSFET
// M(d,g,s) with length L is replaced by
//
//	Md(d, g, x)  with length Position·L     (drain side)
//	Ms(x, g, s)  with length (1−Position)·L (source side)
//	Rp(g, x)                                (the oxide short)
//
// where x is a fresh internal node.
func (p *Pinhole) Insert(c *circuit.Circuit) (*circuit.Circuit, error) {
	if p.Rp <= 0 {
		return nil, fmt.Errorf("fault %s: non-positive impact %g", p.ID(), p.Rp)
	}
	if p.Position <= 0 || p.Position >= 1 {
		return nil, fmt.Errorf("fault %s: position %g outside (0,1)", p.ID(), p.Position)
	}
	cc := c.Clone()
	d, ok := cc.Device(p.Transistor).(*device.MOSFET)
	if !ok {
		return nil, fmt.Errorf("fault %s: transistor not found in circuit %s", p.ID(), c.Name())
	}
	terms := d.TerminalNames()
	drain, gate, source := terms[0], terms[1], terms[2]
	split := p.Transistor + "#ph"
	cc.Remove(p.Transistor)
	cc.Add(device.NewMOSFET(p.Transistor+"_d", drain, gate, split, d.Model, d.W, d.L*p.Position))
	cc.Add(device.NewMOSFET(p.Transistor+"_s", split, gate, source, d.Model, d.W, d.L*(1-p.Position)))
	cc.Add(device.NewResistor("FP_"+p.Transistor, gate, split, p.Rp))
	return cc, nil
}

// String implements Fault.
func (p *Pinhole) String() string {
	return fmt.Sprintf("pinhole %s @%.0f%% from drain (Rp=%.3g Ω)", p.Transistor, p.Position*100, p.Rp)
}

// AllBridges enumerates the exhaustive bridging fault list: one fault per
// unordered pair of circuit nodes (ground included), each at dictionary
// impact r0. For the 10-node IV-converter this yields the paper's 45
// bridging faults.
func AllBridges(c *circuit.Circuit, r0 float64) []Fault {
	nodes := c.AllNodes()
	sort.Strings(nodes)
	var out []Fault
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			out = append(out, NewBridge(nodes[i], nodes[j], r0))
		}
	}
	return out
}

// AllPinholes enumerates one pinhole fault per MOSFET in the circuit at
// dictionary impact rp0, in device insertion order.
func AllPinholes(c *circuit.Circuit, rp0 float64) []Fault {
	var out []Fault
	for _, d := range c.Devices() {
		if _, ok := d.(*device.MOSFET); ok {
			out = append(out, NewPinhole(d.Name(), rp0))
		}
	}
	return out
}

// Dictionary builds the paper's exhaustive fault list for a macro: all
// node-pair bridges at bridgeR plus one pinhole per transistor at
// pinholeR. For the IV-converter this is 45 + 10 = 55 faults.
func Dictionary(c *circuit.Circuit, bridgeR, pinholeR float64) []Fault {
	return append(AllBridges(c, bridgeR), AllPinholes(c, pinholeR)...)
}

// ByID finds a fault in a list by identifier, or nil.
func ByID(list []Fault, id string) Fault {
	for _, f := range list {
		if f.ID() == id {
			return f
		}
	}
	return nil
}
