package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/macros"
	"repro/internal/sim"
)

func TestBridgeNormalizesNodeOrder(t *testing.T) {
	a := NewBridge("Vout", "Iin", 10e3)
	b := NewBridge("Iin", "Vout", 10e3)
	if a.ID() != b.ID() {
		t.Errorf("IDs differ: %s vs %s", a.ID(), b.ID())
	}
	if a.ID() != "bridge:Iin-Vout" {
		t.Errorf("ID = %s", a.ID())
	}
}

func TestBridgeInsertAddsResistor(t *testing.T) {
	c := macros.IVConverter()
	f := NewBridge("Iin", "Vout", 10e3)
	fc, err := f.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Devices()) != len(c.Devices())+1 {
		t.Error("bridge did not add exactly one device")
	}
	// Original untouched.
	if c.Device("FB_Iin_Vout") != nil {
		t.Error("bridge mutated the original circuit")
	}
	r, ok := fc.Device("FB_Iin_Vout").(*device.Resistor)
	if !ok {
		t.Fatal("bridge resistor missing")
	}
	if r.R != 10e3 {
		t.Errorf("bridge R = %g, want 10k", r.R)
	}
}

func TestBridgeInsertErrors(t *testing.T) {
	c := macros.IVConverter()
	if _, err := NewBridge("nope", "Vout", 1e3).Insert(c); err == nil {
		t.Error("missing node accepted")
	}
	if _, err := (&Bridge{NodeA: "Iin", NodeB: "Iin", R: 1e3}).Insert(c); err == nil {
		t.Error("degenerate bridge accepted")
	}
	if _, err := NewBridge("Iin", "Vout", 0).Insert(c); err == nil {
		t.Error("zero impact accepted")
	}
}

func TestWeakenStrengthen(t *testing.T) {
	f := Fault(NewBridge("a", "b", 10e3))
	w := Weaken(f, 2)
	if w.Impact() != 20e3 {
		t.Errorf("weakened impact = %g, want 20k", w.Impact())
	}
	s := Strengthen(f, 4)
	if s.Impact() != 2.5e3 {
		t.Errorf("strengthened impact = %g, want 2.5k", s.Impact())
	}
	if f.Impact() != 10e3 {
		t.Error("impact manipulation mutated the base fault")
	}
	if w.InitialImpact() != 10e3 || s.InitialImpact() != 10e3 {
		t.Error("InitialImpact must survive WithImpact")
	}
}

func TestPinholeInsertSplitsChannel(t *testing.T) {
	c := macros.IVConverter()
	m := c.Device("M1").(*device.MOSFET)
	f := NewPinhole("M1", 2e3)
	fc, err := f.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Device("M1") != nil {
		t.Error("original transistor still present")
	}
	md, ok1 := fc.Device("M1_d").(*device.MOSFET)
	ms, ok2 := fc.Device("M1_s").(*device.MOSFET)
	rp, ok3 := fc.Device("FP_M1").(*device.Resistor)
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("pinhole transform incomplete")
	}
	if math.Abs(md.L-0.25*m.L) > 1e-15 || math.Abs(ms.L-0.75*m.L) > 1e-15 {
		t.Errorf("split lengths %g/%g, want 25%%/75%% of %g", md.L, ms.L, m.L)
	}
	if md.W != m.W || ms.W != m.W {
		t.Error("split widths changed")
	}
	if rp.R != 2e3 {
		t.Errorf("Rp = %g, want 2k", rp.R)
	}
	// Gate wiring: both halves keep the gate; the shunt ties gate to split.
	if md.TerminalNames()[1] != m.TerminalNames()[1] || ms.TerminalNames()[1] != m.TerminalNames()[1] {
		t.Error("split transistors lost the gate net")
	}
	if got := md.TerminalNames()[2]; got != "M1#ph" {
		t.Errorf("split node = %s, want M1#ph", got)
	}
	// Faulty circuit must still compile (fresh node wired with degree 3).
	if _, err := fc.Compile(); err != nil {
		t.Fatalf("pinhole circuit does not compile: %v", err)
	}
}

func TestPinholeInsertErrors(t *testing.T) {
	c := macros.IVConverter()
	if _, err := NewPinhole("M99", 2e3).Insert(c); err == nil {
		t.Error("missing transistor accepted")
	}
	if _, err := NewPinhole("M1", 0).Insert(c); err == nil {
		t.Error("zero impact accepted")
	}
	bad := NewPinhole("M1", 2e3)
	bad.Position = 1.5
	if _, err := bad.Insert(c); err == nil {
		t.Error("position outside (0,1) accepted")
	}
}

func TestPinholeSplitPreservesHealthyBehaviour(t *testing.T) {
	// With a huge Rp the split transistor must behave like the original:
	// same DC transfer within tolerance.
	c := macros.IVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	vout := e.Voltage(x, macros.NodeVout)

	f := NewPinhole("M2", 1e12) // essentially absent defect
	fc, err := f.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := sim.New(fc, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fe.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	fvout := fe.Voltage(fx, macros.NodeVout)
	// The series split (0.25L + 0.75L) is electrically equivalent to the
	// original L in both triode and saturation only approximately (the
	// split point floats), so allow a modest tolerance.
	if math.Abs(vout-fvout) > 0.05 {
		t.Errorf("benign pinhole shifted Vout by %g", math.Abs(vout-fvout))
	}
}

func TestStrongPinholeDisturbsCircuit(t *testing.T) {
	c := macros.IVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	idd0, err := e.BranchCurrent(x, macros.SupplySourceName)
	if err != nil {
		t.Fatal(err)
	}

	f := NewPinhole("M6", 2e3) // dictionary impact: hard short
	fc, err := f.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := sim.New(fc, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fe.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	idd1, err := fe.BranchCurrent(fx, macros.SupplySourceName)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(idd1-idd0) < 1e-6 {
		t.Errorf("dictionary pinhole barely changed Idd: %g vs %g", idd1, idd0)
	}
}

func TestAllBridgesCount(t *testing.T) {
	c := macros.IVConverter()
	bridges := AllBridges(c, 10e3)
	if len(bridges) != 45 {
		t.Fatalf("bridge count = %d, want 45 (paper parity)", len(bridges))
	}
	// All IDs unique.
	seen := make(map[string]bool)
	for _, f := range bridges {
		if seen[f.ID()] {
			t.Errorf("duplicate fault %s", f.ID())
		}
		seen[f.ID()] = true
		if f.Impact() != 10e3 {
			t.Errorf("%s impact = %g, want 10k", f.ID(), f.Impact())
		}
	}
}

func TestAllPinholesCount(t *testing.T) {
	c := macros.IVConverter()
	ph := AllPinholes(c, 2e3)
	if len(ph) != 10 {
		t.Fatalf("pinhole count = %d, want 10 (paper parity)", len(ph))
	}
}

func TestDictionaryMatchesPaper(t *testing.T) {
	c := macros.IVConverter()
	dict := Dictionary(c, 10e3, 2e3)
	if len(dict) != 55 {
		t.Fatalf("dictionary size = %d, want 55", len(dict))
	}
	nb, np := 0, 0
	for _, f := range dict {
		switch f.Kind() {
		case KindBridge:
			nb++
		case KindPinhole:
			np++
		}
	}
	if nb != 45 || np != 10 {
		t.Errorf("dictionary split = %d bridges / %d pinholes, want 45/10", nb, np)
	}
}

func TestByID(t *testing.T) {
	c := macros.IVConverter()
	dict := Dictionary(c, 10e3, 2e3)
	if f := ByID(dict, "pinhole:M3"); f == nil {
		t.Error("pinhole:M3 not found")
	}
	if f := ByID(dict, "bogus"); f != nil {
		t.Error("bogus fault found")
	}
}

func TestEveryDictionaryFaultInserts(t *testing.T) {
	c := macros.IVConverter()
	for _, f := range Dictionary(c, 10e3, 2e3) {
		fc, err := f.Insert(c)
		if err != nil {
			t.Errorf("%s: insert failed: %v", f.ID(), err)
			continue
		}
		if _, err := fc.Compile(); err != nil {
			t.Errorf("%s: faulty circuit does not compile: %v", f.ID(), err)
		}
	}
}

func TestFaultStrings(t *testing.T) {
	b := NewBridge("Iin", "Vout", 10e3)
	if !strings.Contains(b.String(), "Iin") || !strings.Contains(b.String(), "1e+04") &&
		!strings.Contains(b.String(), "10000") && !strings.Contains(b.String(), "1e4") {
		t.Logf("bridge string: %s", b.String())
	}
	p := NewPinhole("M1", 2e3)
	if !strings.Contains(p.String(), "M1") || !strings.Contains(p.String(), "25%") {
		t.Errorf("pinhole string incomplete: %s", p.String())
	}
}

func TestBridgeToGroundOnSupply(t *testing.T) {
	// The Vdd-gnd bridge is the canonical supply-current fault: Idd must
	// jump by ~Vdd/R.
	c := macros.IVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, _ := e.OperatingPoint()
	i0, _ := e.BranchCurrent(x, macros.SupplySourceName)

	f := NewBridge("0", macros.NodeVdd, 10e3)
	fc, err := f.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := sim.New(fc, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fx, err := fe.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := fe.BranchCurrent(fx, macros.SupplySourceName)
	dIdd := math.Abs(i1 - i0)
	if math.Abs(dIdd-0.5e-3) > 5e-5 {
		t.Errorf("ΔIdd = %g, want ≈ 0.5 mA (5V/10k)", dIdd)
	}
}
