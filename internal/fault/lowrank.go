package fault

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
)

// LowRankFault is the optional interface of faults that are a low-rank
// conductance perturbation of the circuit matrix: inserting the fault
// changes the MNA system only by Σ_m g_m·w_m w_mᵀ with branch vectors
// w_m = e_rows[m] − e_cols[m]. Such faults qualify for the
// Sherman–Morrison fast path (mna.SolveRankK): the simulator retains one
// factorization of the faulty base and re-solves the impact ladder
// through rank-k updates instead of restamping and refactoring.
//
// A resistive bridge is exactly rank 1 (one conductance between the
// bridged nodes); a pinhole's resistive part is rank 1 as well (the
// gate→split shunt — the channel split itself changes nonlinear device
// geometry, which the eligibility rules in internal/core account for
// separately). Opens deliberately do not implement the interface: their
// series insertion rewires a terminal onto a new node, which is a
// structural change, and they exercise the full-insert fallback path.
type LowRankFault interface {
	Fault
	// ImpactDevice returns the name of the resistor Insert adds whose
	// resistance equals the fault's impact — the retarget handle of the
	// retained-engine fast path.
	ImpactDevice() string
	// Perturbation resolves the fault's branch structure against fc, a
	// compiled circuit produced by this fault's Insert: node-index
	// resolution happens here, once per fault, not per impact step. It
	// returns parallel branch endpoint index slices (−1 is ground) and a
	// vals closure mapping an impact resistance to the per-branch
	// conductances. The closure reuses its result slice, so callers must
	// consume the values before the next call.
	Perturbation(fc *circuit.Circuit) (rows, cols []int, vals func(impact float64) []float64, err error)
}

// resistorPerturbation resolves the named fault resistor inside the
// compiled faulty circuit and describes it as a rank-1 branch: the one
// shape both bridges and pinholes reduce to.
func resistorPerturbation(fc *circuit.Circuit, name string) (rows, cols []int, vals func(float64) []float64, err error) {
	d := fc.Device(name)
	if d == nil {
		return nil, nil, nil, fmt.Errorf("fault: impact device %s not present in circuit %s", name, fc.Name())
	}
	r, ok := d.(*device.Resistor)
	if !ok {
		return nil, nil, nil, fmt.Errorf("fault: impact device %s is a %T, want resistor", name, d)
	}
	terms := r.Terminals()
	if len(terms) != 2 {
		return nil, nil, nil, fmt.Errorf("fault: impact device %s unresolved (circuit not compiled?)", name)
	}
	buf := make([]float64, 1)
	vals = func(impact float64) []float64 {
		buf[0] = 1 / impact
		return buf
	}
	return []int{terms[0]}, []int{terms[1]}, vals, nil
}

// ImpactDevice implements LowRankFault: the bridge resistor Insert
// appends.
func (b *Bridge) ImpactDevice() string { return "FB_" + b.NodeA + "_" + b.NodeB }

// Perturbation implements LowRankFault.
func (b *Bridge) Perturbation(fc *circuit.Circuit) ([]int, []int, func(float64) []float64, error) {
	return resistorPerturbation(fc, b.ImpactDevice())
}

// ImpactDevice implements LowRankFault: the gate→split shunt resistor.
func (p *Pinhole) ImpactDevice() string { return "FP_" + p.Transistor }

// Perturbation implements LowRankFault. The split node exists only in
// the faulty circuit, which is why resolution runs against Insert's
// output rather than the golden netlist.
func (p *Pinhole) Perturbation(fc *circuit.Circuit) ([]int, []int, func(float64) []float64, error) {
	return resistorPerturbation(fc, p.ImpactDevice())
}
