package fault

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
)

// Stuck-open faults: a broken contact or via in series with a transistor
// terminal. IFA-derived dictionaries list opens next to bridges and
// pinholes; the paper restricted itself to the latter two, so opens are
// an extension here.
//
// Opens invert the impact convention: a HIGHER series resistance is a
// STRONGER defect (a perfect open is R → ∞), while for bridges and
// pinholes a LOWER resistance is stronger. Fault models advertise this
// through Inverted, and Weaken/Strengthen respect it.

// KindOpen is a resistive series open at a transistor terminal.
const KindOpen Kind = "open"

// impactInverted is implemented by fault models whose severity grows
// with the model resistance.
type impactInverted interface {
	ImpactInverted() bool
}

// Inverted reports whether the fault's severity grows with its model
// resistance (true for opens, false for bridges and pinholes).
func Inverted(f Fault) bool {
	if ii, ok := f.(impactInverted); ok {
		return ii.ImpactInverted()
	}
	return false
}

// Open is a resistive series open between a MOSFET terminal and its net.
type Open struct {
	Transistor string
	// Terminal selects the broken pin: 0 = drain, 2 = source (gate opens
	// leave the gate floating, which the DC solver cannot bias, so they
	// are not modeled).
	Terminal int
	R        float64
	R0       float64
}

// NewDrainOpen returns a stuck-open at the drain of the named transistor
// with dictionary series resistance r (e.g. 10 MΩ for a hard open).
func NewDrainOpen(transistor string, r float64) *Open {
	return &Open{Transistor: transistor, Terminal: 0, R: r, R0: r}
}

// NewSourceOpen returns a stuck-open at the source of the transistor.
func NewSourceOpen(transistor string, r float64) *Open {
	return &Open{Transistor: transistor, Terminal: 2, R: r, R0: r}
}

// ID implements Fault.
func (o *Open) ID() string {
	pin := "d"
	if o.Terminal == 2 {
		pin = "s"
	}
	return fmt.Sprintf("open:%s-%s", o.Transistor, pin)
}

// Kind implements Fault.
func (o *Open) Kind() Kind { return KindOpen }

// Impact implements Fault.
func (o *Open) Impact() float64 { return o.R }

// InitialImpact implements Fault.
func (o *Open) InitialImpact() float64 { return o.R0 }

// WithImpact implements Fault.
func (o *Open) WithImpact(r float64) Fault {
	oo := *o
	oo.R = r
	return &oo
}

// ImpactInverted marks the open's severity direction.
func (o *Open) ImpactInverted() bool { return true }

// Insert implements Fault: on a clone, the transistor's terminal is
// rewired to a fresh node and the series resistance bridges the gap.
func (o *Open) Insert(c *circuit.Circuit) (*circuit.Circuit, error) {
	if o.R <= 0 {
		return nil, fmt.Errorf("fault %s: non-positive impact %g", o.ID(), o.R)
	}
	if o.Terminal != 0 && o.Terminal != 2 {
		return nil, fmt.Errorf("fault %s: unsupported terminal %d", o.ID(), o.Terminal)
	}
	cc := c.Clone()
	d, ok := cc.Device(o.Transistor).(*device.MOSFET)
	if !ok {
		return nil, fmt.Errorf("fault %s: transistor not found in circuit %s", o.ID(), c.Name())
	}
	orig := d.TerminalNames()[o.Terminal]
	split := o.Transistor + "#op"
	device.RenameTerminal(d, o.Terminal, split)
	cc.Add(device.NewResistor("FO_"+o.ID()[5:], orig, split, o.R))
	return cc, nil
}

// String implements Fault.
func (o *Open) String() string {
	return fmt.Sprintf("%s (series R=%.3g Ω)", o.ID(), o.R)
}

// AllDrainOpens enumerates one drain open per MOSFET at dictionary
// impact r0.
func AllDrainOpens(c *circuit.Circuit, r0 float64) []Fault {
	var out []Fault
	for _, d := range c.Devices() {
		if _, ok := d.(*device.MOSFET); ok {
			out = append(out, NewDrainOpen(d.Name(), r0))
		}
	}
	return out
}
