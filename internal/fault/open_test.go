package fault

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/macros"
	"repro/internal/sim"
)

func TestOpenIDsAndKind(t *testing.T) {
	d := NewDrainOpen("M9", 10e6)
	if d.ID() != "open:M9-d" || d.Kind() != KindOpen {
		t.Errorf("ID/Kind = %s/%s", d.ID(), d.Kind())
	}
	s := NewSourceOpen("M9", 10e6)
	if s.ID() != "open:M9-s" {
		t.Errorf("source ID = %s", s.ID())
	}
	if !Inverted(d) {
		t.Error("opens must report inverted impact")
	}
	if Inverted(NewBridge("a", "b", 1e3)) {
		t.Error("bridges must not be inverted")
	}
}

func TestOpenWeakenLowersResistance(t *testing.T) {
	f := Fault(NewDrainOpen("M9", 10e6))
	w := Weaken(f, 2)
	if w.Impact() != 5e6 {
		t.Errorf("weakened open R = %g, want 5e6 (lower = weaker)", w.Impact())
	}
	s := Strengthen(f, 4)
	if s.Impact() != 40e6 {
		t.Errorf("strengthened open R = %g, want 40e6", s.Impact())
	}
}

func TestOpenInsertRewiresTerminal(t *testing.T) {
	c := macros.IVConverter()
	f := NewDrainOpen("M7", 10e6)
	fc, err := f.Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	m := fc.Device("M7").(*device.MOSFET)
	if m.TerminalNames()[0] != "M7#op" {
		t.Errorf("drain terminal = %s, want M7#op", m.TerminalNames()[0])
	}
	if fc.Device("FO_M7-d") == nil {
		t.Error("series resistor missing")
	}
	if _, err := fc.Compile(); err != nil {
		t.Fatalf("open circuit does not compile: %v", err)
	}
	// Original untouched.
	if c.Device("M7").(*device.MOSFET).TerminalNames()[0] == "M7#op" {
		t.Error("Insert mutated the golden circuit")
	}
}

func TestOpenInsertErrors(t *testing.T) {
	c := macros.IVConverter()
	if _, err := NewDrainOpen("M99", 1e6).Insert(c); err == nil {
		t.Error("missing transistor accepted")
	}
	if _, err := NewDrainOpen("M7", 0).Insert(c); err == nil {
		t.Error("zero impact accepted")
	}
	bad := &Open{Transistor: "M7", Terminal: 1, R: 1e6, R0: 1e6}
	if _, err := bad.Insert(c); err == nil {
		t.Error("gate open accepted")
	}
}

func TestDrainOpenDisturbsMacro(t *testing.T) {
	// Opening M10's drain kills the output sink: the DC output must move
	// far from nominal.
	c := macros.IVConverter()
	run := func(ck *circuit.Circuit) float64 {
		// The opened circuit is a hard solve; arm the recovery ladder so
		// the test always reaches a verdict instead of skipping on
		// non-convergence.
		opts := sim.DefaultOptions()
		opts.Recovery = sim.StandardRecovery()
		e, err := sim.New(ck, opts)
		if err != nil {
			t.Fatal(err)
		}
		x, err := e.OperatingPoint()
		if err != nil {
			t.Fatalf("open state did not converge even through the recovery ladder: %v", err)
		}
		return e.Voltage(x, macros.NodeVmid)
	}
	nom := run(c.Clone())
	fc, err := NewDrainOpen("M10", 10e6).Insert(c)
	if err != nil {
		t.Fatal(err)
	}
	bad := run(fc)
	if math.Abs(nom-bad) < 0.05 {
		t.Errorf("drain open barely moved Vmid: %g -> %g", nom, bad)
	}
}

func TestAllDrainOpensCount(t *testing.T) {
	c := macros.IVConverter()
	opens := AllDrainOpens(c, 10e6)
	if len(opens) != 10 {
		t.Fatalf("open count = %d, want one per MOSFET", len(opens))
	}
	seen := map[string]bool{}
	for _, f := range opens {
		if seen[f.ID()] {
			t.Errorf("duplicate %s", f.ID())
		}
		seen[f.ID()] = true
	}
}
