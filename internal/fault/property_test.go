package fault

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/macros"
)

// TestWeakenStrengthenInverse: Strengthen(Weaken(f, k), k) restores the
// impact (floating-point exactly for multiplicative round trips with the
// same k).
func TestWeakenStrengthenInverse(t *testing.T) {
	f := func(kRaw float64) bool {
		k := 1 + math.Mod(math.Abs(kRaw), 10)
		base := Fault(NewBridge("a", "b", 10e3))
		round := Strengthen(Weaken(base, k), k)
		return math.Abs(round.Impact()-base.Impact()) < 1e-9*base.Impact()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestWithImpactPreservesIdentity: impact manipulation never changes the
// fault's identity or dictionary impact.
func TestWithImpactPreservesIdentity(t *testing.T) {
	f := func(rRaw float64) bool {
		r := 1 + math.Mod(math.Abs(rRaw), 1e9)
		for _, base := range []Fault{NewBridge("x", "y", 10e3), NewPinhole("M1", 2e3)} {
			v := base.WithImpact(r)
			if v.ID() != base.ID() || v.Kind() != base.Kind() {
				return false
			}
			if v.InitialImpact() != base.InitialImpact() {
				return false
			}
			if v.Impact() != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInsertNeverMutatesGolden: fault insertion at any impact leaves the
// golden netlist untouched.
func TestInsertNeverMutatesGolden(t *testing.T) {
	golden := macros.IVConverter()
	before := golden.String()
	f := func(idx uint8, rRaw float64) bool {
		r := 10 + math.Mod(math.Abs(rRaw), 1e7)
		dict := Dictionary(golden, 10e3, 2e3)
		fl := dict[int(idx)%len(dict)].WithImpact(r)
		if _, err := fl.Insert(golden); err != nil {
			return false
		}
		return golden.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDictionaryDeterministic: two enumerations agree element-wise.
func TestDictionaryDeterministic(t *testing.T) {
	g := macros.IVConverter()
	a := Dictionary(g, 10e3, 2e3)
	b := Dictionary(g, 10e3, 2e3)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].ID() != b[i].ID() {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].ID(), b[i].ID())
		}
	}
}
