package fault

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's fault dictionaries ultimately come from inductive fault
// analysis (IFA): layout extraction assigns each structural defect a
// likelihood (critical area × defect density). The exhaustive list used
// in the paper weighs every fault equally "for simplicity"; this file
// adds the weighted view so weighted fault coverage — the quantity IFA
// flows actually optimize — can be reported.

// Weighted pairs a fault with its relative likelihood.
type Weighted struct {
	Fault
	// Weight is a non-negative relative likelihood; weights need not be
	// normalized.
	Weight float64
}

// UniformWeights wraps a fault list with equal weights, reproducing the
// paper's exhaustive-list assumption.
func UniformWeights(faults []Fault) []Weighted {
	out := make([]Weighted, len(faults))
	for i, f := range faults {
		out[i] = Weighted{Fault: f, Weight: 1}
	}
	return out
}

// HeuristicIFAWeights assigns layout-flavoured likelihoods without a
// layout: bridges touching the supply or ground rails are more likely
// (long, wide wires → large critical area), signal-signal bridges carry
// unit weight, and pinholes follow gate area via the transistor name
// heuristic (all equal here, at the typical oxide-defect share). The
// point is not accuracy — no layout exists — but a *non-uniform*
// distribution with a documented rationale so weighted metrics exercise
// a realistic shape.
func HeuristicIFAWeights(faults []Fault) []Weighted {
	out := make([]Weighted, len(faults))
	for i, f := range faults {
		w := 1.0
		switch ff := f.(type) {
		case *Bridge:
			if isRail(ff.NodeA) || isRail(ff.NodeB) {
				w = 3 // rail wires dominate routed area
			}
		case *Pinhole:
			w = 0.5 // oxide defects rarer than metal shorts
		}
		out[i] = Weighted{Fault: f, Weight: w}
	}
	return out
}

func isRail(node string) bool {
	switch strings.ToLower(node) {
	case "0", "gnd", "vdd", "vss":
		return true
	}
	return false
}

// TotalWeight sums the weights.
func TotalWeight(ws []Weighted) float64 {
	t := 0.0
	for _, w := range ws {
		t += w.Weight
	}
	return t
}

// WeightedCoverage computes the likelihood-weighted coverage given the
// set of detected fault IDs: Σ detected weights / Σ all weights, in
// percent. It returns an error when every weight is zero.
func WeightedCoverage(ws []Weighted, detected map[string]bool) (float64, error) {
	total := TotalWeight(ws)
	if total <= 0 {
		return 0, fmt.Errorf("fault: weighted coverage over zero total weight")
	}
	got := 0.0
	for _, w := range ws {
		if detected[w.ID()] {
			got += w.Weight
		}
	}
	return 100 * got / total, nil
}

// TopByWeight returns the n highest-weight faults (ties broken by ID for
// determinism), the ordering an IFA-driven flow would target first.
func TopByWeight(ws []Weighted, n int) []Weighted {
	sorted := make([]Weighted, len(ws))
	copy(sorted, ws)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Weight != sorted[j].Weight {
			return sorted[i].Weight > sorted[j].Weight
		}
		return sorted[i].ID() < sorted[j].ID()
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}
