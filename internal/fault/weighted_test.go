package fault

import (
	"math"
	"testing"

	"repro/internal/macros"
)

func TestUniformWeights(t *testing.T) {
	dict := Dictionary(macros.IVConverter(), 10e3, 2e3)
	ws := UniformWeights(dict)
	if len(ws) != 55 {
		t.Fatalf("weighted list = %d, want 55", len(ws))
	}
	if TotalWeight(ws) != 55 {
		t.Errorf("total weight = %g, want 55", TotalWeight(ws))
	}
}

func TestHeuristicIFAWeights(t *testing.T) {
	dict := Dictionary(macros.IVConverter(), 10e3, 2e3)
	ws := HeuristicIFAWeights(dict)
	var rail, signal, pin float64
	for _, w := range ws {
		switch {
		case w.Kind() == KindPinhole:
			pin = w.Weight
		case isRail((w.Fault.(*Bridge)).NodeA) || isRail((w.Fault.(*Bridge)).NodeB):
			rail = w.Weight
		default:
			signal = w.Weight
		}
	}
	if !(rail > signal && signal > pin) {
		t.Errorf("weight ordering rail(%g) > signal(%g) > pinhole(%g) violated", rail, signal, pin)
	}
}

func TestWeightedCoverage(t *testing.T) {
	ws := []Weighted{
		{Fault: NewBridge("a", "b", 1e3), Weight: 3},
		{Fault: NewBridge("c", "d", 1e3), Weight: 1},
	}
	cov, err := WeightedCoverage(ws, map[string]bool{"bridge:a-b": true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov-75) > 1e-9 {
		t.Errorf("weighted coverage = %g, want 75", cov)
	}
	if _, err := WeightedCoverage([]Weighted{{Fault: NewBridge("a", "b", 1), Weight: 0}}, nil); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestWeightedCoverageUniformMatchesCount(t *testing.T) {
	dict := Dictionary(macros.IVConverter(), 10e3, 2e3)
	ws := UniformWeights(dict)
	detected := map[string]bool{}
	for i, f := range dict {
		if i%2 == 0 {
			detected[f.ID()] = true
		}
	}
	cov, err := WeightedCoverage(ws, detected)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * float64(len(detected)) / float64(len(dict))
	if math.Abs(cov-want) > 1e-9 {
		t.Errorf("uniform weighted coverage = %g, want plain %g", cov, want)
	}
}

func TestTopByWeight(t *testing.T) {
	ws := []Weighted{
		{Fault: NewBridge("a", "b", 1e3), Weight: 1},
		{Fault: NewBridge("c", "d", 1e3), Weight: 5},
		{Fault: NewPinhole("M1", 2e3), Weight: 3},
	}
	top := TopByWeight(ws, 2)
	if len(top) != 2 || top[0].Weight != 5 || top[1].Weight != 3 {
		t.Errorf("top = %+v", top)
	}
	all := TopByWeight(ws, 99)
	if len(all) != 3 {
		t.Errorf("overlong n should clamp, got %d", len(all))
	}
	// Determinism on ties.
	tie := []Weighted{
		{Fault: NewBridge("x", "y", 1), Weight: 2},
		{Fault: NewBridge("a", "b", 1), Weight: 2},
	}
	first := TopByWeight(tie, 1)[0].ID()
	if first != "bridge:a-b" {
		t.Errorf("tie broken by %s, want lexicographic", first)
	}
}
