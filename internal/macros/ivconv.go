// Package macros contains the analog macro designs used by the test
// generation experiments, most importantly the CMOS IV-converter
// (transimpedance amplifier) that reproduces the paper's case study.
//
// The IV-converter substitutes for the photodetector macro of Kimmels
// [9] referenced in the paper, which is not publicly available. It is a
// two-stage CMOS amplifier with a source-follower output buffer and a
// resistive feedback network, sized for a 0–40 µA input current range on
// a 5 V supply. Its defining property for the reproduction is its node
// and transistor count: exactly 10 circuit nodes including ground (45
// exhaustive bridging faults) and 10 MOSFETs (10 pinhole faults), giving
// the paper's 55-fault dictionary.
package macros

import (
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/wave"
)

// Standardized node names of the IV-converter macro type, as required by
// the paper's reusable test configuration descriptions ("node names
// should however be standardized").
const (
	NodeIin   = "Iin"   // current input / summing node
	NodeVout  = "Vout"  // buffered voltage output
	NodeVdd   = "Vdd"   // positive supply
	NodeVref  = "Vref"  // reference input (virtual ground level)
	NodeNmir  = "Nmir"  // mirror gate node (first stage)
	NodeOut1  = "Out1"  // first-stage output
	NodeVmid  = "Vmid"  // second-stage output
	NodeNbias = "Nbias" // bias rail
	NodeNtail = "Ntail" // differential-pair tail
)

// Supply and reference levels of the macro.
const (
	SupplyVoltage    = 5.0
	ReferenceVoltage = 2.5
	// FeedbackResistance is the transimpedance: Vout ≈ Vref − Iin·Rf.
	FeedbackResistance = 50e3
)

// InputSourceName is the instance name of the input current source the
// test configurations control.
const InputSourceName = "Iin"

// SupplySourceName is the instance name of the Vdd supply, whose branch
// current is the supply-current return value of configuration #2.
const SupplySourceName = "Vdd"

// IVConverter builds the macro with a quiet (0 A) input source attached.
// Callers replace the input source waveform to apply stimuli.
func IVConverter() *circuit.Circuit {
	c := circuit.New("iv-converter")

	nm := device.DefaultNMOSModel()
	pm := device.DefaultPMOSModel()

	// Supplies and reference.
	c.Add(device.NewDCVSource(SupplySourceName, NodeVdd, "0", SupplyVoltage))
	c.Add(device.NewDCVSource("Vref", NodeVref, "0", ReferenceVoltage))
	// Input current source: current flows INTO the summing node.
	c.Add(device.NewISource(InputSourceName, NodeIin, "0", wave.DC(0)))

	// Input pad protection: the ESD clamps give over-range input currents
	// a path into the rails, so the DC configurations can sweep Iin,dc to
	// 100 µA (beyond the 40 µA linear range) with a well-posed solution.
	c.Add(device.NewDiode("Desd1", NodeIin, NodeVdd, nil))
	c.Add(device.NewDiode("Desd2", "0", NodeIin, nil))

	// Bias generator: Rb + diode-connected M8 set ~30 µA.
	c.Add(device.NewResistor("Rb", NodeVdd, NodeNbias, 130e3))
	c.Add(device.NewMOSFET("M8", NodeNbias, NodeNbias, "0", nm, 10e-6, 1e-6))

	// First stage: NMOS differential pair with PMOS mirror load.
	// M1 gate is the inverting input (Iin), M2 gate the reference.
	c.Add(device.NewMOSFET("M1", NodeNmir, NodeIin, NodeNtail, nm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M2", NodeOut1, NodeVref, NodeNtail, nm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M3", NodeNmir, NodeNmir, NodeVdd, pm, 25e-6, 1e-6))
	c.Add(device.NewMOSFET("M4", NodeOut1, NodeNmir, NodeVdd, pm, 25e-6, 1e-6))
	c.Add(device.NewMOSFET("M5", NodeNtail, NodeNbias, "0", nm, 20e-6, 1e-6))

	// Second stage: PMOS common source with NMOS current-sink load.
	c.Add(device.NewMOSFET("M6", NodeVmid, NodeOut1, NodeVdd, pm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M7", NodeVmid, NodeNbias, "0", nm, 20e-6, 1e-6))

	// Output buffer: NMOS source follower with current-sink bias.
	c.Add(device.NewMOSFET("M9", NodeVdd, NodeVmid, NodeVout, nm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M10", NodeVout, NodeNbias, "0", nm, 20e-6, 1e-6))

	// Compensation, load and feedback. The dominant pole sits at Out1 via
	// a grounded capacitor rather than a Miller capacitor: the level-1
	// transistors carry no gate capacitance, so the Miller RHP zero would
	// sit right at the loop's unity-gain frequency and destabilize it.
	// Cdom is sized for ≈70° phase margin with the follower's output pole.
	c.Add(device.NewCapacitor("Cdom", NodeOut1, "0", 300e-12))
	c.Add(device.NewCapacitor("CL", NodeVout, "0", 1e-12))
	c.Add(device.NewResistor("Rf", NodeVout, NodeIin, FeedbackResistance))

	return c
}

// SetInputWave replaces the input current waveform on (a clone of) the
// macro. It panics if the input source is missing, which indicates a
// corrupted netlist rather than a recoverable condition.
func SetInputWave(c *circuit.Circuit, w wave.Waveform) {
	src, ok := c.Device(InputSourceName).(*device.ISource)
	if !ok {
		panic("macros: circuit has no input current source " + InputSourceName)
	}
	src.W = w
}

// TransistorNames lists the macro's MOSFETs in schematic order; the
// pinhole fault generator enumerates these.
func TransistorNames() []string {
	return []string{"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10"}
}
