package macros

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/wave"
)

func TestIVConverterStructure(t *testing.T) {
	c := IVConverter()
	// Paper parity: 10 nodes incl. ground -> C(10,2)=45 bridges; 10 MOSFETs.
	if got := len(c.AllNodes()); got != 10 {
		t.Errorf("node count (incl. ground) = %d, want 10", got)
	}
	mos := 0
	for _, d := range c.Devices() {
		if _, ok := d.(*device.MOSFET); ok {
			mos++
		}
	}
	if mos != 10 {
		t.Errorf("MOSFET count = %d, want 10", mos)
	}
	for _, name := range TransistorNames() {
		if _, ok := c.Device(name).(*device.MOSFET); !ok {
			t.Errorf("transistor %s missing", name)
		}
	}
}

func TestIVConverterOperatingPoint(t *testing.T) {
	c := IVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// With zero input current the summing node sits at the virtual
	// ground and the output returns to Vref through Rf.
	viin := e.Voltage(x, NodeIin)
	vout := e.Voltage(x, NodeVout)
	if math.Abs(viin-ReferenceVoltage) > 0.05 {
		t.Errorf("V(Iin) = %g, want ≈ %g (virtual ground)", viin, ReferenceVoltage)
	}
	if math.Abs(vout-ReferenceVoltage) > 0.05 {
		t.Errorf("V(Vout) = %g, want ≈ %g at zero input", vout, ReferenceVoltage)
	}
	// Every transistor in the signal path must be on.
	for _, name := range TransistorNames() {
		m := c.Device(name).(*device.MOSFET)
		if m.Region(x) == "off" {
			t.Errorf("%s is off at the operating point (margin %g)", name, m.SaturationMargin(x))
		}
	}
}

func TestIVConverterTransferSlope(t *testing.T) {
	// Vout ≈ Vref − Iin·Rf over the linear range.
	c := IVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	points := []float64{0, 10e-6, 20e-6, 30e-6, 40e-6}
	sols, err := e.SweepDC(InputSourceName, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range sols {
		want := ReferenceVoltage - points[i]*FeedbackResistance
		got := e.Voltage(x, NodeVout)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("Iin=%g: Vout=%g, want %g±0.1", points[i], got, want)
		}
	}
}

func TestIVConverterSupplyCurrentScale(t *testing.T) {
	c := IVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	i, err := e.BranchCurrent(x, SupplySourceName)
	if err != nil {
		t.Fatal(err)
	}
	idd := -i
	// Bias chain ~30µA + first stage ~60µA + second ~60µA + buffer ~60µA.
	if idd < 50e-6 || idd > 500e-6 {
		t.Errorf("Idd = %g, want ~100-300 µA", idd)
	}
}

func TestIVConverterStepResponseSettles(t *testing.T) {
	c := IVConverter()
	SetInputWave(c, wave.Step{Base: 5e-6, Elev: 20e-6, Delay: 10e-9, Rise: 10e-9})
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Transient(7.5e-6, 10e-9, []string{NodeVout})
	if err != nil {
		t.Fatal(err)
	}
	v := tr.Signal(NodeVout)
	start, final := v[0], v[len(v)-1]
	wantStart := ReferenceVoltage - 5e-6*FeedbackResistance
	wantFinal := ReferenceVoltage - 25e-6*FeedbackResistance
	if math.Abs(start-wantStart) > 0.1 {
		t.Errorf("start = %g, want %g", start, wantStart)
	}
	if math.Abs(final-wantFinal) > 0.1 {
		t.Errorf("final = %g, want %g", final, wantFinal)
	}
}

func TestIVConverterTHDBaselineSmall(t *testing.T) {
	// Mid-range bias, 5 µA sine: the nominal converter is nearly linear,
	// so THD should be small.
	c := IVConverter()
	f := 10e3
	SetInputWave(c, wave.Sine{Offset: 20e-6, Amplitude: 5e-6, Freq: f})
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	period := 1 / f
	tr, err := e.Transient(5*period, period/256, []string{NodeVout})
	if err != nil {
		t.Fatal(err)
	}
	// Use the last 2 periods (steady state).
	v := tr.Signal(NodeVout)
	tail := v[len(v)-512:]
	amp1 := 0.0
	{
		// Fundamental amplitude should be ≈ 5µA·50k = 0.25 V.
		maxv, minv := tail[0], tail[0]
		for _, s := range tail {
			if s > maxv {
				maxv = s
			}
			if s < minv {
				minv = s
			}
		}
		amp1 = (maxv - minv) / 2
	}
	if math.Abs(amp1-0.25) > 0.05 {
		t.Errorf("output sine amplitude = %g, want ≈ 0.25", amp1)
	}
}

func TestSetInputWavePanicsWithoutSource(t *testing.T) {
	c := IVConverter()
	c.Remove(InputSourceName)
	defer func() {
		if recover() == nil {
			t.Error("SetInputWave on gutted circuit did not panic")
		}
	}()
	SetInputWave(c, wave.DC(1e-6))
}
