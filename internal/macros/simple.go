package macros

import (
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/wave"
)

// SimpleIVConverter builds a reduced single-stage variant of the macro:
// the same standardized interface (Iin, Vout, Vdd, Vref) with one gain
// stage and a source-follower buffer — 8 transistors, 9 circuit nodes
// including ground. It serves as a second macro type for tests and for
// demonstrating that the generation flow is macro-agnostic; its
// exhaustive dictionary is C(9,2) = 36 bridges + 8 pinholes = 44 faults.
func SimpleIVConverter() *circuit.Circuit {
	c := circuit.New("simple-iv-converter")

	nm := device.DefaultNMOSModel()
	pm := device.DefaultPMOSModel()

	c.Add(device.NewDCVSource(SupplySourceName, NodeVdd, "0", SupplyVoltage))
	c.Add(device.NewDCVSource("Vref", NodeVref, "0", ReferenceVoltage))
	c.Add(device.NewISource(InputSourceName, NodeIin, "0", wave.DC(0)))

	// Input protection (same rationale as the full macro).
	c.Add(device.NewDiode("Desd1", NodeIin, NodeVdd, nil))
	c.Add(device.NewDiode("Desd2", "0", NodeIin, nil))

	// Bias chain ~30 µA.
	c.Add(device.NewResistor("Rb", NodeVdd, NodeNbias, 130e3))
	c.Add(device.NewMOSFET("M8", NodeNbias, NodeNbias, "0", nm, 10e-6, 1e-6))

	// Single gain stage: differential pair with mirror load.
	c.Add(device.NewMOSFET("M1", NodeNmir, NodeVref, NodeNtail, nm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M2", NodeOut1, NodeIin, NodeNtail, nm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M3", NodeNmir, NodeNmir, NodeVdd, pm, 25e-6, 1e-6))
	c.Add(device.NewMOSFET("M4", NodeOut1, NodeNmir, NodeVdd, pm, 25e-6, 1e-6))
	c.Add(device.NewMOSFET("M5", NodeNtail, NodeNbias, "0", nm, 20e-6, 1e-6))

	// Buffer.
	c.Add(device.NewMOSFET("M9", NodeVdd, NodeOut1, NodeVout, nm, 50e-6, 1e-6))
	c.Add(device.NewMOSFET("M10", NodeVout, NodeNbias, "0", nm, 20e-6, 1e-6))

	// Single-stage loop: a modest dominant cap suffices.
	c.Add(device.NewCapacitor("Cdom", NodeOut1, "0", 50e-12))
	c.Add(device.NewCapacitor("CL", NodeVout, "0", 1e-12))
	c.Add(device.NewResistor("Rf", NodeVout, NodeIin, FeedbackResistance))

	return c
}

// SimpleTransistorNames lists the reduced macro's MOSFETs.
func SimpleTransistorNames() []string {
	return []string{"M1", "M2", "M3", "M4", "M5", "M8", "M9", "M10"}
}
