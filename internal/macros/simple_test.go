package macros

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/sim"
)

func TestSimpleIVConverterStructure(t *testing.T) {
	c := SimpleIVConverter()
	if got := len(c.AllNodes()); got != 9 {
		t.Errorf("node count = %d, want 9 (incl. ground)", got)
	}
	mos := 0
	for _, d := range c.Devices() {
		if _, ok := d.(*device.MOSFET); ok {
			mos++
		}
	}
	if mos != 8 {
		t.Errorf("MOSFET count = %d, want 8", mos)
	}
	for _, n := range SimpleTransistorNames() {
		if c.Device(n) == nil {
			t.Errorf("transistor %s missing", n)
		}
	}
}

func TestSimpleIVConverterOperatingPoint(t *testing.T) {
	c := SimpleIVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage(x, NodeVout); math.Abs(got-ReferenceVoltage) > 0.1 {
		t.Errorf("V(Vout) = %g, want ≈ %g", got, ReferenceVoltage)
	}
}

func TestSimpleIVConverterTransfer(t *testing.T) {
	c := SimpleIVConverter()
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	points := []float64{0, 10e-6, 20e-6, 30e-6}
	sols, err := e.SweepDC(InputSourceName, points)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range sols {
		want := ReferenceVoltage - points[i]*FeedbackResistance
		got := e.Voltage(x, NodeVout)
		// The single-stage loop has ~20× less gain than the full macro:
		// allow a correspondingly larger static error.
		if math.Abs(got-want) > 0.25 {
			t.Errorf("Iin=%g: Vout=%g, want %g±0.25", points[i], got, want)
		}
	}
}

func TestSimpleMacroSharesInterface(t *testing.T) {
	// Both macros expose the standardized nodes, so the same test
	// configurations must run on either.
	for _, c := range []*circuit.Circuit{IVConverter(), SimpleIVConverter()} {
		for _, n := range []string{NodeIin, NodeVout, NodeVdd, NodeVref} {
			if !c.HasNode(n) {
				t.Errorf("macro %s missing node %s", c.Name(), n)
			}
		}
		if c.Device(InputSourceName) == nil || c.Device(SupplySourceName) == nil {
			t.Errorf("macro %s missing standard sources", c.Name())
		}
	}
}
