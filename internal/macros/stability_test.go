package macros

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func measurePeaking(t *testing.T, e *sim.Engine) float64 {
	t.Helper()
	xop, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	freqs := sim.LogSpace(1e2, 1e9, 71)
	res, err := e.AC(xop, InputSourceName, freqs)
	if err != nil {
		t.Fatal(err)
	}
	ref := res.MagDB(0, NodeVout)
	worst := 0.0
	for i := range freqs {
		if p := res.MagDB(i, NodeVout) - ref; p > worst {
			worst = p
		}
	}
	return worst
}

func TestIVConverterClosedLoopStable(t *testing.T) {
	e, err := sim.New(IVConverter(), sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if peak := measurePeaking(t, e); peak > 6 {
		t.Errorf("closed-loop peaking = %.1f dB: loop under-compensated", peak)
	}
}

func TestSimpleIVConverterClosedLoopStable(t *testing.T) {
	e, err := sim.New(SimpleIVConverter(), sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if peak := measurePeaking(t, e); peak > 6 {
		t.Errorf("closed-loop peaking = %.1f dB: loop under-compensated", peak)
	}
}

func TestIVConverterLowFrequencyTransimpedance(t *testing.T) {
	// |Vout/Iin| at low frequency equals Rf (= 94 dBΩ for 50 kΩ).
	e, err := sim.New(IVConverter(), sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xop, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AC(xop, InputSourceName, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * math.Log10(FeedbackResistance)
	if got := res.MagDB(0, NodeVout); math.Abs(got-want) > 0.5 {
		t.Errorf("low-frequency transimpedance = %.2f dBΩ, want %.2f", got, want)
	}
}

func TestIVConverterBandwidthReasonable(t *testing.T) {
	// Find the -3 dB frequency; it must sit in the MHz decade the
	// compensation targets (fast enough for the 7.5 µs step window, slow
	// enough to be dominated by Cdom).
	e, err := sim.New(IVConverter(), sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xop, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	freqs := sim.LogSpace(1e3, 1e9, 121)
	res, err := e.AC(xop, InputSourceName, freqs)
	if err != nil {
		t.Fatal(err)
	}
	ref := res.MagDB(0, NodeVout)
	f3 := 0.0
	for i := range freqs {
		if res.MagDB(i, NodeVout) < ref-3 {
			f3 = freqs[i]
			break
		}
	}
	if f3 < 1e5 || f3 > 1e9 {
		t.Errorf("closed-loop -3 dB at %g Hz, want 0.1 MHz - 1 GHz", f3)
	}
}
