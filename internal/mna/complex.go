package mna

import (
	"fmt"
	"math/cmplx"
)

// ComplexSystem is the complex-valued analogue of System, used by the AC
// small-signal analysis where reactive stamps are jωC / 1/(jωL).
type ComplexSystem struct {
	n    int
	a    []complex128
	b    []complex128
	lu   []complex128
	perm []int
	x    []complex128
}

// NewComplexSystem returns a zeroed n-dimensional complex system.
func NewComplexSystem(n int) *ComplexSystem {
	if n < 0 {
		panic(fmt.Sprintf("mna: negative dimension %d", n))
	}
	return &ComplexSystem{
		n:    n,
		a:    make([]complex128, n*n),
		b:    make([]complex128, n),
		lu:   make([]complex128, n*n),
		perm: make([]int, n),
		x:    make([]complex128, n),
	}
}

// Dim returns the system dimension.
func (s *ComplexSystem) Dim() int { return s.n }

// Clear zeroes the matrix and right-hand side.
func (s *ComplexSystem) Clear() {
	for i := range s.a {
		s.a[i] = 0
	}
	for i := range s.b {
		s.b[i] = 0
	}
}

// At returns matrix entry (i, j); ground indices (-1) read as 0.
func (s *ComplexSystem) At(i, j int) complex128 {
	if i < 0 || j < 0 {
		return 0
	}
	return s.a[i*s.n+j]
}

// Add adds v to matrix entry (i, j); either index may be -1 (ground).
func (s *ComplexSystem) Add(i, j int, v complex128) {
	if i < 0 || j < 0 {
		return
	}
	s.a[i*s.n+j] += v
}

// AddRHS adds v to right-hand-side entry i; i may be -1 (ground).
func (s *ComplexSystem) AddRHS(i int, v complex128) {
	if i < 0 {
		return
	}
	s.b[i] += v
}

// StampAdmittance stamps a two-terminal admittance y between unknowns i
// and j (either may be -1 for ground).
func (s *ComplexSystem) StampAdmittance(i, j int, y complex128) {
	s.Add(i, i, y)
	s.Add(j, j, y)
	s.Add(i, j, -y)
	s.Add(j, i, -y)
}

// StampCurrent stamps a phasor current flowing from node a into node b.
func (s *ComplexSystem) StampCurrent(a, b int, cur complex128) {
	s.AddRHS(a, -cur)
	s.AddRHS(b, cur)
}

// StampVoltageSource stamps an ideal phasor voltage source with branch
// unknown br: V(plus) − V(minus) = v.
func (s *ComplexSystem) StampVoltageSource(br, plus, minus int, v complex128) {
	s.Add(plus, br, 1)
	s.Add(minus, br, -1)
	s.Add(br, plus, 1)
	s.Add(br, minus, -1)
	s.AddRHS(br, v)
}

// StampVCCS stamps a voltage-controlled current source with transadmittance g.
func (s *ComplexSystem) StampVCCS(p, m, cp, cm int, g complex128) {
	s.Add(p, cp, g)
	s.Add(p, cm, -g)
	s.Add(m, cp, -g)
	s.Add(m, cm, g)
}

// Factor computes the LU factorization with partial pivoting.
func (s *ComplexSystem) Factor() error {
	copy(s.lu, s.a)
	n := s.n
	m := s.lu
	for i := range s.perm {
		s.perm[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		max := cmplx.Abs(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(m[i*n+k]); v > max {
				max = v
				p = i
			}
		}
		if max == 0 {
			return fmt.Errorf("%w: zero pivot in column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				m[k*n+j], m[p*n+j] = m[p*n+j], m[k*n+j]
			}
			s.perm[k], s.perm[p] = s.perm[p], s.perm[k]
		}
		piv := m[k*n+k]
		for i := k + 1; i < n; i++ {
			l := m[i*n+k] / piv
			m[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				m[i*n+j] -= l * m[k*n+j]
			}
		}
	}
	return nil
}

// Solve solves the factored system for the stamped right-hand side. The
// returned slice is reused by subsequent calls.
func (s *ComplexSystem) Solve() []complex128 {
	n := s.n
	m := s.lu
	x := s.x
	tmp := make([]complex128, n)
	for i := 0; i < n; i++ {
		tmp[i] = s.b[s.perm[i]]
	}
	copy(x, tmp)
	for i := 1; i < n; i++ {
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= m[i*n+j] * x[j]
		}
		x[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= m[i*n+j] * x[j]
		}
		x[i] = sum / m[i*n+i]
	}
	return x
}
