package mna

import (
	"fmt"
)

// ComplexSystem is the complex-valued analogue of System, used by the AC
// small-signal analysis where reactive stamps are jωC / 1/(jωL).
type ComplexSystem struct {
	n    int
	a    []complex128
	b    []complex128
	lu   []complex128
	perm []int
	x    []complex128
	dinv []complex128 // reciprocal pivots of the factorization
	// facValid records that lu/perm/dinv hold a successful factorization,
	// the precondition of the low-rank update path (lowrank.go).
	facValid bool
	rk       complexRankScratch
	rk1r     [1]int
	rk1c     [1]int
	rk1g     [1]complex128
}

// NewComplexSystem returns a zeroed n-dimensional complex system.
func NewComplexSystem(n int) *ComplexSystem {
	if n < 0 {
		panic(fmt.Sprintf("mna: negative dimension %d", n))
	}
	return &ComplexSystem{
		n:    n,
		a:    make([]complex128, n*n),
		b:    make([]complex128, n),
		lu:   make([]complex128, n*n),
		perm: make([]int, n),
		x:    make([]complex128, n),
		dinv: make([]complex128, n),
	}
}

// Dim returns the system dimension.
func (s *ComplexSystem) Dim() int { return s.n }

// Clear zeroes the matrix and right-hand side.
func (s *ComplexSystem) Clear() {
	s.ClearMatrix()
	s.ClearRHS()
}

// ClearMatrix zeroes the matrix only.
func (s *ComplexSystem) ClearMatrix() {
	for i := range s.a {
		s.a[i] = 0
	}
}

// ClearRHS zeroes the right-hand side only.
func (s *ComplexSystem) ClearRHS() {
	for i := range s.b {
		s.b[i] = 0
	}
}

// SaveMatrix copies the stamped matrix into dst (length Dim()·Dim()).
// With SetMatrix it implements the cached-base fast path of AC sweeps:
// the frequency-independent stamps are assembled once and restored by
// copy at every frequency point, which then only adds the jω terms.
func (s *ComplexSystem) SaveMatrix(dst []complex128) { copy(dst, s.a) }

// SetMatrix overwrites the matrix from src (length Dim()·Dim()).
func (s *ComplexSystem) SetMatrix(src []complex128) { copy(s.a, src) }

// SaveRHS copies the right-hand side into dst (length Dim()).
func (s *ComplexSystem) SaveRHS(dst []complex128) { copy(dst, s.b) }

// SetRHS overwrites the right-hand side from src (length Dim()).
func (s *ComplexSystem) SetRHS(src []complex128) { copy(s.b, src) }

// At returns matrix entry (i, j); ground indices (-1) read as 0.
func (s *ComplexSystem) At(i, j int) complex128 {
	if i < 0 || j < 0 {
		return 0
	}
	return s.a[i*s.n+j]
}

// Add adds v to matrix entry (i, j); either index may be -1 (ground).
func (s *ComplexSystem) Add(i, j int, v complex128) {
	if i < 0 || j < 0 {
		return
	}
	s.a[i*s.n+j] += v
}

// AddRHS adds v to right-hand-side entry i; i may be -1 (ground).
func (s *ComplexSystem) AddRHS(i int, v complex128) {
	if i < 0 {
		return
	}
	s.b[i] += v
}

// StampAdmittance stamps a two-terminal admittance y between unknowns i
// and j (either may be -1 for ground).
func (s *ComplexSystem) StampAdmittance(i, j int, y complex128) {
	s.Add(i, i, y)
	s.Add(j, j, y)
	s.Add(i, j, -y)
	s.Add(j, i, -y)
}

// StampCurrent stamps a phasor current flowing from node a into node b.
func (s *ComplexSystem) StampCurrent(a, b int, cur complex128) {
	s.AddRHS(a, -cur)
	s.AddRHS(b, cur)
}

// StampVoltageSource stamps an ideal phasor voltage source with branch
// unknown br: V(plus) − V(minus) = v.
func (s *ComplexSystem) StampVoltageSource(br, plus, minus int, v complex128) {
	s.Add(plus, br, 1)
	s.Add(minus, br, -1)
	s.Add(br, plus, 1)
	s.Add(br, minus, -1)
	s.AddRHS(br, v)
}

// StampVCCS stamps a voltage-controlled current source with transadmittance g.
func (s *ComplexSystem) StampVCCS(p, m, cp, cm int, g complex128) {
	s.Add(p, cp, g)
	s.Add(p, cm, -g)
	s.Add(m, cp, -g)
	s.Add(m, cm, g)
}

// abs2 is the squared magnitude |z|². The pivot search maximizes it
// instead of cmplx.Abs: squaring is monotonic, so the selected pivot is
// identical while avoiding a hypot call per candidate. (Entries beyond
// ±1e154, whose squares would overflow, do not occur in circuit
// matrices.)
func abs2(z complex128) float64 {
	re, im := real(z), imag(z)
	return re*re + im*im
}

// Factor computes the LU factorization with partial pivoting. The stamped
// matrix is preserved in a, the factorization lives in the lu workspace.
func (s *ComplexSystem) Factor() error {
	copy(s.lu, s.a)
	return s.factor()
}

// FactorInPlace factors destructively: the matrix buffer becomes the LU
// workspace without the defensive copy. The stamps are lost; callers
// restore from a snapshot (or re-stamp) before the next solve.
func (s *ComplexSystem) FactorInPlace() error {
	s.a, s.lu = s.lu, s.a
	return s.factor()
}

func (s *ComplexSystem) factor() error {
	err := s.factorLU()
	s.facValid = err == nil
	return err
}

func (s *ComplexSystem) factorLU() error {
	n := s.n
	m := s.lu
	for i := range s.perm {
		s.perm[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		max := abs2(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := abs2(m[i*n+k]); v > max {
				max = v
				p = i
			}
		}
		if max == 0 || max != max {
			return fmt.Errorf("%w: zero pivot in column %d", ErrSingular, k)
		}
		if p != k {
			rowK := m[k*n : k*n+n]
			rowP := m[p*n : p*n+n]
			for j := 0; j < n; j++ {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			s.perm[k], s.perm[p] = s.perm[p], s.perm[k]
		}
		// Complex division is a (slow) runtime call; divide once per pivot
		// and multiply through the column, as LAPACK's zgetrf does. The
		// reciprocal itself is conj(z)/|z|² with one real division — the
		// naive formula is safe here for the same reason abs2 is: circuit
		// matrix entries are nowhere near the ±1e154 overflow range.
		piv := m[k*n+k]
		pd := 1 / (real(piv)*real(piv) + imag(piv)*imag(piv))
		pivInv := complex(real(piv)*pd, -imag(piv)*pd)
		s.dinv[k] = pivInv
		rowK := m[k*n+k+1 : k*n+n]
		for i := k + 1; i < n; i++ {
			l := m[i*n+k] * pivInv
			m[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := m[i*n+k+1 : i*n+n][:len(rowK)]
			for j := range rowK {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return nil
}

// Solve solves the factored system for the stamped right-hand side. The
// returned slice is reused by subsequent calls.
func (s *ComplexSystem) Solve() []complex128 {
	s.SolveInto(s.x)
	return s.x
}

// SolveInto solves the factored system into dst (length Dim()) without
// allocating; the permutation is applied while copying the RHS. dst must
// not alias the system's RHS buffer.
func (s *ComplexSystem) SolveInto(dst []complex128) {
	n := s.n
	m := s.lu
	for i := 0; i < n; i++ {
		dst[i] = s.b[s.perm[i]]
	}
	for i := 1; i < n; i++ {
		row := m[i*n : i*n+i]
		sum := dst[i]
		for j, l := range row {
			sum -= l * dst[j]
		}
		dst[i] = sum
	}
	for i := n - 1; i >= 0; i-- {
		row := m[i*n+i : i*n+n]
		sum := dst[i]
		for j := 1; j < len(row); j++ {
			sum -= row[j] * dst[i+j]
		}
		dst[i] = sum * s.dinv[i]
	}
}

// FactorSolveInto factors destructively (see FactorInPlace) and solves
// into dst without allocating.
func (s *ComplexSystem) FactorSolveInto(dst []complex128) error {
	if err := s.FactorInPlace(); err != nil {
		return err
	}
	s.SolveInto(dst)
	return nil
}
