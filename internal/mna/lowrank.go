package mna

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/failpoint"
)

// fpGuardTrip forces the capacitance solve's stability guard to trip,
// driving callers down the full-refactor fallback exactly as a real
// cancellation would. Chaos runs arm it to provoke fallback storms for
// the session circuit breaker.
var fpGuardTrip = failpoint.At("mna.lowrank.guard")

// This file implements Sherman–Morrison–Woodbury solves against a
// retained factorization: given A = L·U already factored and a rank-k
// symmetric conductance perturbation
//
//	A' = A + Σ_m dg[m] · w_m w_mᵀ,   w_m = e_rows[m] − e_cols[m],
//
// SolveRankKInto solves A'·x = b without refactoring, in the G-free form
//
//	y = A⁻¹ b,   Z = A⁻¹ W,   C = I_k + diag(dg)·Wᵀ Z,
//	C q = diag(dg)·Wᵀ y,      x = y − Z q,
//
// which stays well defined for arbitrarily small dg (no inversion of the
// perturbation itself). Cost is k+1 substitutions plus a k×k solve —
// O((k+1)·n²) against the O(n³/3) of a fresh factorization — and the
// branch-pair structure matches exactly what a resistive fault changes in
// an MNA matrix (see internal/fault.LowRankFault).
//
// The k×k capacitance solve carries the stability guard: when the pivot
// cancels below RankUpdateGuard of the matrix scale, the perturbed system
// is (numerically) singular as seen through the retained factorization —
// e.g. a fault branch whose removal floats a node — and the update result
// would be garbage amplified by the cancellation. The solve then returns
// ErrUpdateUnstable and the caller falls back to a full restamp+factor.

// ErrUpdateUnstable is returned when the low-rank update's denominator
// (the k×k capacitance matrix) cancels so catastrophically that the
// updated solution cannot be trusted; callers must fall back to a full
// factorization of the perturbed matrix.
var ErrUpdateUnstable = errors.New("mna: low-rank update numerically unstable")

// ErrNoFactorization is returned when a low-rank solve is requested
// before Factor/FactorInPlace/FactorSolveInto has retained a successful
// factorization.
var ErrNoFactorization = errors.New("mna: no retained factorization for low-rank solve")

// RankUpdateGuard is the relative pivot threshold of the capacitance
// solve. It is deliberately conservative (the update error grows like
// ε·κ(A)/|pivot_rel|, so 1e-4 caps the extra error near 1e-12·κ): a
// fallback to a full factor costs one O(n³) at macro sizes, while a
// silently inaccurate update would poison a bit-identity contract.
const RankUpdateGuard = 1e-4

// maxRankUpdate bounds k. Faults are rank-1 or rank-2 perturbations; the
// bound is generous while keeping the k×k solve trivially small.
const maxRankUpdate = 8

// rankScratch holds the reused buffers of the real low-rank solve; they
// grow on first use and are retained so steady-state calls allocate
// nothing.
type rankScratch struct {
	w []float64 // n: sparse basis RHS
	z []float64 // k·n: Z = A⁻¹W, column-major by branch
	c []float64 // k·k capacitance matrix
	t []float64 // k: RHS of the capacitance solve, becomes q
}

func (rk *rankScratch) grow(n, k int) {
	if cap(rk.w) < n {
		rk.w = make([]float64, n)
	}
	rk.w = rk.w[:n]
	if cap(rk.z) < k*n {
		rk.z = make([]float64, k*n)
	}
	rk.z = rk.z[:k*n]
	if cap(rk.c) < k*k {
		rk.c = make([]float64, k*k)
	}
	rk.c = rk.c[:k*k]
	if cap(rk.t) < k {
		rk.t = make([]float64, k)
	}
	rk.t = rk.t[:k]
}

// pairDiff reads v[a] − v[b] with the usual ground convention (-1 reads
// as 0).
func pairDiff(v []float64, a, b int) float64 {
	var d float64
	if a >= 0 {
		d = v[a]
	}
	if b >= 0 {
		d -= v[b]
	}
	return d
}

// SolveRank1 solves (A + dg·w wᵀ)·x = b for the stamped RHS, where
// w = e_a − e_b, against the retained factorization of A. The returned
// slice is reused by subsequent solves.
func (s *System) SolveRank1(a, b int, dg float64) ([]float64, error) {
	err := s.SolveRank1Into(s.x, a, b, dg)
	return s.x, err
}

// SolveRank1Into is the allocation-free form of SolveRank1.
func (s *System) SolveRank1Into(dst []float64, a, b int, dg float64) error {
	s.rk1r[0], s.rk1c[0], s.rk1g[0] = a, b, dg
	return s.SolveRankKInto(dst, s.rk1r[:], s.rk1c[:], s.rk1g[:])
}

// SolveRankK solves the rank-k perturbed system (see SolveRankKInto).
// The returned slice is reused by subsequent solves.
func (s *System) SolveRankK(rows, cols []int, dg []float64) ([]float64, error) {
	err := s.SolveRankKInto(s.x, rows, cols, dg)
	return s.x, err
}

// SolveRankKInto solves (A + Σ dg[m]·w_m w_mᵀ)·x = b, w_m being the
// branch vector e_rows[m] − e_cols[m] (indices may be -1 for ground),
// against the factorization retained by the last successful
// Factor/FactorInPlace/FactorSolveInto. The stamped matrix buffer is not
// consulted, so the call composes with the destructive factor variants.
//
// dst (length Dim()) must not alias the system's RHS buffer. Scratch is
// reused across calls: after the first call at a given rank, the solve
// performs no allocations.
//
// Returns ErrUpdateUnstable when the capacitance pivot cancels below
// RankUpdateGuard (perturbation drives the matrix toward singularity) or
// a non-finite value appears; the caller must then restamp and factor
// the perturbed system directly.
func (s *System) SolveRankKInto(dst []float64, rows, cols []int, dg []float64) error {
	k := len(dg)
	if len(rows) != k || len(cols) != k {
		return fmt.Errorf("mna: rank-%d update with %d/%d branch indices", k, len(rows), len(cols))
	}
	if k > maxRankUpdate {
		return fmt.Errorf("mna: rank %d exceeds the low-rank update bound %d", k, maxRankUpdate)
	}
	if !s.facValid {
		return ErrNoFactorization
	}
	n := s.n
	for m := 0; m < k; m++ {
		if rows[m] < -1 || rows[m] >= n || cols[m] < -1 || cols[m] >= n {
			return fmt.Errorf("mna: branch %d indices (%d,%d) out of range for dim %d", m, rows[m], cols[m], n)
		}
	}
	// y = A⁻¹ b straight into dst.
	luSolve(s.lu, s.perm, s.dinv, n, s.b, dst)
	allZero := true
	for _, g := range dg {
		if g != 0 {
			allZero = false
			break
		}
	}
	if k == 0 || allZero {
		return nil
	}
	s.rk.grow(n, k)
	// Z columns: z_m = A⁻¹ (e_rows[m] − e_cols[m]).
	for m := 0; m < k; m++ {
		w := s.rk.w
		for i := range w {
			w[i] = 0
		}
		if rows[m] >= 0 {
			w[rows[m]] = 1
		}
		if cols[m] >= 0 {
			w[cols[m]] -= 1
		}
		luSolve(s.lu, s.perm, s.dinv, n, w, s.rk.z[m*n:(m+1)*n])
	}
	// C = I + diag(dg)·WᵀZ, t = diag(dg)·Wᵀy.
	for m := 0; m < k; m++ {
		s.rk.t[m] = dg[m] * pairDiff(dst, rows[m], cols[m])
		for l := 0; l < k; l++ {
			v := dg[m] * pairDiff(s.rk.z[l*n:(l+1)*n], rows[m], cols[m])
			if m == l {
				v += 1
			}
			s.rk.c[m*k+l] = v
		}
	}
	if err := solveCapacitance(s.rk.c, s.rk.t, k); err != nil {
		return err
	}
	// x = y − Z q.
	for m := 0; m < k; m++ {
		q := s.rk.t[m]
		if q == 0 {
			continue
		}
		z := s.rk.z[m*n : (m+1)*n]
		for i := range dst {
			dst[i] -= q * z[i]
		}
	}
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return ErrUpdateUnstable
		}
	}
	return nil
}

// solveCapacitance solves the k×k system c·q = t in place (q overwrites
// t) by Gaussian elimination with partial pivoting, guarding every pivot
// against RankUpdateGuard·scale where scale is the largest initial entry
// magnitude: a pivot that small relative to the matrix means the
// Woodbury denominator canceled and the update is untrustworthy.
func solveCapacitance(c, t []float64, k int) error {
	if fpGuardTrip.Hit() != nil {
		return ErrUpdateUnstable
	}
	scale := 1.0
	for _, v := range c {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) {
		return ErrUpdateUnstable
	}
	for col := 0; col < k; col++ {
		// Partial pivot in column col.
		p := col
		max := math.Abs(c[col*k+col])
		for r := col + 1; r < k; r++ {
			if v := math.Abs(c[r*k+col]); v > max {
				max = v
				p = r
			}
		}
		if max < RankUpdateGuard*scale || math.IsNaN(max) {
			return ErrUpdateUnstable
		}
		if p != col {
			for j := 0; j < k; j++ {
				c[col*k+j], c[p*k+j] = c[p*k+j], c[col*k+j]
			}
			t[col], t[p] = t[p], t[col]
		}
		piv := c[col*k+col]
		for r := col + 1; r < k; r++ {
			l := c[r*k+col] / piv
			if l == 0 {
				continue
			}
			for j := col + 1; j < k; j++ {
				c[r*k+j] -= l * c[col*k+j]
			}
			t[r] -= l * t[col]
		}
	}
	for col := k - 1; col >= 0; col-- {
		sum := t[col]
		for j := col + 1; j < k; j++ {
			sum -= c[col*k+j] * t[j]
		}
		t[col] = sum / c[col*k+col]
	}
	return nil
}
