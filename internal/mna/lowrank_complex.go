package mna

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Complex analogue of lowrank.go: Sherman–Morrison–Woodbury against the
// retained factorization of a ComplexSystem. The AC fault sweep retains
// one factored base per frequency point and re-solves the whole sweep
// for each impact step through this path.

// complexRankScratch mirrors rankScratch for the complex solve.
type complexRankScratch struct {
	w []complex128
	z []complex128
	c []complex128
	t []complex128
}

func (rk *complexRankScratch) grow(n, k int) {
	if cap(rk.w) < n {
		rk.w = make([]complex128, n)
	}
	rk.w = rk.w[:n]
	if cap(rk.z) < k*n {
		rk.z = make([]complex128, k*n)
	}
	rk.z = rk.z[:k*n]
	if cap(rk.c) < k*k {
		rk.c = make([]complex128, k*k)
	}
	rk.c = rk.c[:k*k]
	if cap(rk.t) < k {
		rk.t = make([]complex128, k)
	}
	rk.t = rk.t[:k]
}

func pairDiffC(v []complex128, a, b int) complex128 {
	var d complex128
	if a >= 0 {
		d = v[a]
	}
	if b >= 0 {
		d -= v[b]
	}
	return d
}

// SolveRank1 solves (A + dy·w wᵀ)·x = b, w = e_a − e_b, against the
// retained factorization. The returned slice is reused.
func (s *ComplexSystem) SolveRank1(a, b int, dy complex128) ([]complex128, error) {
	err := s.SolveRank1Into(s.x, a, b, dy)
	return s.x, err
}

// SolveRank1Into is the allocation-free form of SolveRank1.
func (s *ComplexSystem) SolveRank1Into(dst []complex128, a, b int, dy complex128) error {
	s.rk1r[0], s.rk1c[0], s.rk1g[0] = a, b, dy
	return s.SolveRankKInto(dst, s.rk1r[:], s.rk1c[:], s.rk1g[:])
}

// SolveRankK solves the rank-k perturbed system (see SolveRankKInto).
// The returned slice is reused by subsequent solves.
func (s *ComplexSystem) SolveRankK(rows, cols []int, dy []complex128) ([]complex128, error) {
	err := s.SolveRankKInto(s.x, rows, cols, dy)
	return s.x, err
}

// SolveRankKInto solves (A + Σ dy[m]·w_m w_mᵀ)·x = b against the
// factorization retained by the last successful Factor/FactorInPlace/
// FactorSolveInto. Semantics, scratch reuse, and the ErrUpdateUnstable
// guard match the real-valued SolveRankKInto.
func (s *ComplexSystem) SolveRankKInto(dst []complex128, rows, cols []int, dy []complex128) error {
	k := len(dy)
	if len(rows) != k || len(cols) != k {
		return fmt.Errorf("mna: rank-%d update with %d/%d branch indices", k, len(rows), len(cols))
	}
	if k > maxRankUpdate {
		return fmt.Errorf("mna: rank %d exceeds the low-rank update bound %d", k, maxRankUpdate)
	}
	if !s.facValid {
		return ErrNoFactorization
	}
	n := s.n
	for m := 0; m < k; m++ {
		if rows[m] < -1 || rows[m] >= n || cols[m] < -1 || cols[m] >= n {
			return fmt.Errorf("mna: branch %d indices (%d,%d) out of range for dim %d", m, rows[m], cols[m], n)
		}
	}
	s.SolveInto(dst) // y = A⁻¹ b
	allZero := true
	for _, g := range dy {
		if g != 0 {
			allZero = false
			break
		}
	}
	if k == 0 || allZero {
		return nil
	}
	s.rk.grow(n, k)
	savedB := s.b
	for m := 0; m < k; m++ {
		w := s.rk.w
		for i := range w {
			w[i] = 0
		}
		if rows[m] >= 0 {
			w[rows[m]] = 1
		}
		if cols[m] >= 0 {
			w[cols[m]] -= 1
		}
		// SolveInto reads s.b; point it at the basis vector for the
		// substitution and restore afterwards.
		s.b = w
		s.SolveInto(s.rk.z[m*n : (m+1)*n])
	}
	s.b = savedB
	for m := 0; m < k; m++ {
		s.rk.t[m] = dy[m] * pairDiffC(dst, rows[m], cols[m])
		for l := 0; l < k; l++ {
			v := dy[m] * pairDiffC(s.rk.z[l*n:(l+1)*n], rows[m], cols[m])
			if m == l {
				v += 1
			}
			s.rk.c[m*k+l] = v
		}
	}
	if err := solveCapacitanceC(s.rk.c, s.rk.t, k); err != nil {
		return err
	}
	for m := 0; m < k; m++ {
		q := s.rk.t[m]
		if q == 0 {
			continue
		}
		z := s.rk.z[m*n : (m+1)*n]
		for i := range dst {
			dst[i] -= q * z[i]
		}
	}
	for _, v := range dst {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			return ErrUpdateUnstable
		}
	}
	return nil
}

// solveCapacitanceC is the complex k×k capacitance solve with the same
// relative-pivot guard as solveCapacitance; magnitudes are compared via
// abs2, so the guard squares the threshold.
func solveCapacitanceC(c, t []complex128, k int) error {
	scale2 := 1.0
	for _, v := range c {
		if a := abs2(v); a > scale2 {
			scale2 = a
		}
	}
	if math.IsNaN(scale2) || math.IsInf(scale2, 0) {
		return ErrUpdateUnstable
	}
	guard2 := RankUpdateGuard * RankUpdateGuard * scale2
	for col := 0; col < k; col++ {
		p := col
		max := abs2(c[col*k+col])
		for r := col + 1; r < k; r++ {
			if v := abs2(c[r*k+col]); v > max {
				max = v
				p = r
			}
		}
		if max < guard2 || math.IsNaN(max) {
			return ErrUpdateUnstable
		}
		if p != col {
			for j := 0; j < k; j++ {
				c[col*k+j], c[p*k+j] = c[p*k+j], c[col*k+j]
			}
			t[col], t[p] = t[p], t[col]
		}
		piv := c[col*k+col]
		for r := col + 1; r < k; r++ {
			l := c[r*k+col] / piv
			if l == 0 {
				continue
			}
			for j := col + 1; j < k; j++ {
				c[r*k+j] -= l * c[col*k+j]
			}
			t[r] -= l * t[col]
		}
	}
	for col := k - 1; col >= 0; col-- {
		sum := t[col]
		for j := col + 1; j < k; j++ {
			sum -= c[col*k+j] * t[j]
		}
		t[col] = sum / c[col*k+col]
	}
	return nil
}
