package mna

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randSystem builds a diagonally dominant (SPD-ish) random system of
// dimension n, the well-conditioned regime of MNA conductance matrices.
func randSystem(rng *rand.Rand, n int) *System {
	s := NewSystem(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				s.Add(i, j, float64(n)+2+rng.Float64()*4)
			} else {
				v := rng.Float64()*2 - 1
				s.Add(i, j, v)
			}
		}
		s.AddRHS(i, rng.Float64()*2-1)
	}
	return s
}

// clone copies the stamped matrix and RHS into a fresh system.
func cloneSystem(s *System) *System {
	c := NewSystem(s.n)
	copy(c.a, s.a)
	copy(c.b, s.b)
	return c
}

// TestSolveRankKMatchesDirect is the property test of the satellite:
// random SPD-ish systems under random rank-1/rank-2 branch perturbations
// must agree with a direct factor+solve of the perturbed matrix to
// ≤1e-10, and when the perturbation drives the system toward
// singularity the guard must fire instead of returning garbage.
func TestSolveRankKMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const cases = 500
	guarded := 0
	for tc := 0; tc < cases; tc++ {
		n := 3 + rng.Intn(10)
		base := randSystem(rng, n)
		if err := base.Factor(); err != nil {
			t.Fatalf("case %d: base factor: %v", tc, err)
		}
		k := 1 + rng.Intn(2)
		rows := make([]int, k)
		cols := make([]int, k)
		dg := make([]float64, k)
		for m := 0; m < k; m++ {
			rows[m] = rng.Intn(n)
			// Occasionally ground one end, as a fault branch to ground does.
			if rng.Intn(4) == 0 {
				cols[m] = -1
			} else {
				cols[m] = rng.Intn(n)
			}
			mag := math.Pow(10, rng.Float64()*3.5-2) // 1e-2 .. ~3e1
			if rng.Intn(2) == 0 {
				mag = -mag
			}
			dg[m] = mag
		}

		got := make([]float64, n)
		err := base.SolveRankKInto(got, rows, cols, dg)
		if errors.Is(err, ErrUpdateUnstable) {
			guarded++
			continue
		}
		if err != nil {
			t.Fatalf("case %d: SolveRankKInto: %v", tc, err)
		}

		direct := cloneSystem(base)
		for m := 0; m < k; m++ {
			direct.StampConductance(rows[m], cols[m], dg[m])
		}
		if err := direct.Factor(); err != nil {
			// The perturbed matrix is singular but the guard let the update
			// through: that would be exactly the garbage the guard exists
			// to stop.
			t.Fatalf("case %d: update accepted but direct factor failed: %v", tc, err)
		}
		want := make([]float64, n)
		direct.SolveInto(want)

		norm := 1.0
		for _, v := range want {
			if a := math.Abs(v); a > norm {
				norm = a
			}
		}
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-10*norm {
				t.Fatalf("case %d (n=%d k=%d dg=%v): x[%d] = %g, direct %g, diff %g",
					tc, n, k, dg, i, got[i], want[i], d)
			}
		}
	}
	if guarded > cases/2 {
		t.Fatalf("guard fired on %d of %d random cases; threshold too aggressive", guarded, cases)
	}
}

// TestSolveRank1GuardFires drives the canonical unstable case: node 1 is
// held only by the fault branch, and the perturbation removes (almost)
// all of that conductance. The perturbed matrix is numerically singular
// through the retained factorization and the guard must refuse.
func TestSolveRank1GuardFires(t *testing.T) {
	s := NewSystem(2)
	s.StampConductance(0, -1, 2)
	s.StampConductance(0, 1, 1e-9) // (almost) no other path to node 1
	s.StampConductance(1, -1, 1)   // the "fault" branch holding node 1
	s.AddRHS(0, 1)
	if err := s.Factor(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	err := s.SolveRank1Into(x, 1, -1, -1+1e-13)
	if !errors.Is(err, ErrUpdateUnstable) {
		t.Fatalf("near-singular update returned %v, want ErrUpdateUnstable", err)
	}
}

// TestSolveRankKRequiresFactorization: the update path must refuse to run
// against a stale or absent factorization.
func TestSolveRankKRequiresFactorization(t *testing.T) {
	s := NewSystem(3)
	s.StampConductance(0, 1, 1)
	s.StampConductance(1, 2, 1)
	s.StampConductance(2, -1, 1)
	x := make([]float64, 3)
	if err := s.SolveRank1Into(x, 0, 1, 0.5); !errors.Is(err, ErrNoFactorization) {
		t.Fatalf("unfactored solve returned %v, want ErrNoFactorization", err)
	}
}

// TestComplexSolveRankKMatchesDirect mirrors the real property test for
// the AC path.
func TestComplexSolveRankKMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const cases = 300
	guarded := 0
	for tc := 0; tc < cases; tc++ {
		n := 3 + rng.Intn(8)
		s := NewComplexSystem(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					s.Add(i, j, complex(float64(n)+2+rng.Float64()*4, rng.Float64()*2))
				} else {
					s.Add(i, j, complex(rng.Float64()*2-1, rng.Float64()*2-1))
				}
			}
			s.AddRHS(i, complex(rng.Float64()*2-1, rng.Float64()*2-1))
		}
		if err := s.Factor(); err != nil {
			t.Fatalf("case %d: factor: %v", tc, err)
		}
		k := 1 + rng.Intn(2)
		rows := make([]int, k)
		cols := make([]int, k)
		dy := make([]complex128, k)
		for m := 0; m < k; m++ {
			rows[m] = rng.Intn(n)
			cols[m] = -1
			if rng.Intn(2) == 0 {
				cols[m] = rng.Intn(n)
			}
			mag := math.Pow(10, rng.Float64()*3-1.5)
			if rng.Intn(2) == 0 {
				mag = -mag
			}
			dy[m] = complex(mag, (rng.Float64()*2-1)*math.Abs(mag))
		}

		got := make([]complex128, n)
		err := s.SolveRankKInto(got, rows, cols, dy)
		if errors.Is(err, ErrUpdateUnstable) {
			guarded++
			continue
		}
		if err != nil {
			t.Fatalf("case %d: SolveRankKInto: %v", tc, err)
		}

		d := NewComplexSystem(n)
		copy(d.a, s.a)
		copy(d.b, s.b)
		for m := 0; m < k; m++ {
			d.StampAdmittance(rows[m], cols[m], dy[m])
		}
		if err := d.Factor(); err != nil {
			t.Fatalf("case %d: direct factor: %v", tc, err)
		}
		want := make([]complex128, n)
		d.SolveInto(want)

		norm := 1.0
		for _, v := range want {
			if a := math.Sqrt(abs2(v)); a > norm {
				norm = a
			}
		}
		for i := range want {
			if diff := math.Sqrt(abs2(got[i] - want[i])); diff > 1e-10*norm {
				t.Fatalf("case %d (n=%d k=%d): x[%d] = %v, direct %v, diff %g",
					tc, n, k, i, got[i], want[i], diff)
			}
		}
	}
	if guarded > cases/2 {
		t.Fatalf("guard fired on %d of %d complex cases", guarded, cases)
	}
}

// TestSolveRankKZeroAllocs: the steady-state acceptance criterion — after
// the first call grows the scratch, low-rank solves allocate nothing.
func TestSolveRankKZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSystem(rng, 12)
	if err := s.Factor(); err != nil {
		t.Fatal(err)
	}
	rows := []int{2, 5}
	cols := []int{7, -1}
	dg := []float64{0.5, 1.5}
	dst := make([]float64, 12)
	if err := s.SolveRankKInto(dst, rows, cols, dg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		dg[0] = 0.5 + dg[0]*1e-6 // vary the perturbation as an impact ladder does
		if err := s.SolveRankKInto(dst, rows, cols, dg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveRankKInto allocates %v/op in steady state, want 0", allocs)
	}

	cs := NewComplexSystem(8)
	for i := 0; i < 8; i++ {
		cs.Add(i, i, complex(10+float64(i), 1))
		cs.AddRHS(i, complex(1, 0.5))
	}
	cs.StampAdmittance(0, 3, complex(0.5, 0.1))
	if err := cs.Factor(); err != nil {
		t.Fatal(err)
	}
	cdst := make([]complex128, 8)
	if err := cs.SolveRank1Into(cdst, 1, 4, complex(0.3, 0.2)); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := cs.SolveRank1Into(cdst, 1, 4, complex(0.3, 0.2)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("complex SolveRank1Into allocates %v/op in steady state, want 0", allocs)
	}
}
