// Package mna provides the modified-nodal-analysis (MNA) linear systems
// used by the circuit simulator: dense real and complex matrices with LU
// factorization, and the index bookkeeping that maps circuit nodes and
// source branches onto matrix rows.
//
// Analog macros are small (tens of unknowns), so a dense solver with
// partial pivoting is both simpler and faster than a sparse one.
//
// The hot-path API is allocation-free: SolveInto/FactorSolveInto reuse
// the system's permutation and scratch buffers, and SaveMatrix/SetMatrix
// (plus the RHS variants) let an engine snapshot the linear part of a
// stamped system once and restore it by copy instead of clearing and
// re-stamping every Newton iteration.
package mna

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when LU factorization encounters a pivot that is
// numerically zero, i.e. the circuit matrix is singular (floating node,
// voltage-source loop, ...).
var ErrSingular = errors.New("mna: singular matrix")

// System is a dense real linear system A·x = b of dimension n.
//
// Row/column index 0 corresponds to the first non-ground unknown; the
// ground node is eliminated by convention. Stamping helpers accept the
// value -1 for "ground" and silently drop contributions to that row or
// column, so device code can stamp without special-casing ground.
type System struct {
	n    int
	a    []float64 // row-major n×n
	b    []float64
	lu   []float64 // factorization workspace
	perm []int     // row permutation from partial pivoting
	x    []float64
	prev []float64 // matrix bits behind the current factorization
	dinv []float64 // reciprocal pivots of the factorization
	luOK bool      // lu/perm correspond to prev
	// facValid records that lu/perm/dinv hold a successful factorization,
	// the precondition of the low-rank update path (lowrank.go).
	facValid bool
	rk       rankScratch
	rk1r     [1]int
	rk1c     [1]int
	rk1g     [1]float64
}

// NewSystem returns a zeroed n-dimensional system.
func NewSystem(n int) *System {
	if n < 0 {
		panic(fmt.Sprintf("mna: negative dimension %d", n))
	}
	return &System{
		n:    n,
		a:    make([]float64, n*n),
		b:    make([]float64, n),
		lu:   make([]float64, n*n),
		perm: make([]int, n),
		x:    make([]float64, n),
		prev: make([]float64, n*n),
		dinv: make([]float64, n),
	}
}

// Dim returns the system dimension.
func (s *System) Dim() int { return s.n }

// Clear zeroes the matrix and right-hand side so the system can be
// re-stamped for the next Newton iteration or time step.
func (s *System) Clear() {
	s.ClearMatrix()
	s.ClearRHS()
}

// ClearMatrix zeroes the matrix only.
func (s *System) ClearMatrix() {
	for i := range s.a {
		s.a[i] = 0
	}
}

// ClearRHS zeroes the right-hand side only.
func (s *System) ClearRHS() {
	for i := range s.b {
		s.b[i] = 0
	}
}

// SaveMatrix copies the stamped matrix into dst, which must have length
// Dim()·Dim(). Together with SetMatrix it implements the linear-snapshot
// fast path: stamp the x-independent part once, save it, and restore it
// by copy before each Newton iteration's nonlinear delta.
func (s *System) SaveMatrix(dst []float64) { copy(dst, s.a) }

// SetMatrix overwrites the matrix from src (length Dim()·Dim()).
func (s *System) SetMatrix(src []float64) { copy(s.a, src) }

// SaveRHS copies the stamped right-hand side into dst (length Dim()).
func (s *System) SaveRHS(dst []float64) { copy(dst, s.b) }

// SetRHS overwrites the right-hand side from src (length Dim()).
func (s *System) SetRHS(src []float64) { copy(s.b, src) }

// At returns matrix entry (i, j). Ground indices (-1) read as 0.
func (s *System) At(i, j int) float64 {
	if i < 0 || j < 0 {
		return 0
	}
	return s.a[i*s.n+j]
}

// RHS returns right-hand-side entry i. Ground (-1) reads as 0.
func (s *System) RHS(i int) float64 {
	if i < 0 {
		return 0
	}
	return s.b[i]
}

// Add adds v to matrix entry (i, j). Either index may be -1 (ground), in
// which case the contribution is dropped.
func (s *System) Add(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	s.a[i*s.n+j] += v
}

// AddRHS adds v to right-hand-side entry i; i may be -1 (ground).
func (s *System) AddRHS(i int, v float64) {
	if i < 0 {
		return
	}
	s.b[i] += v
}

// StampConductance stamps a two-terminal conductance g between unknowns i
// and j (either may be -1 for ground): the usual
//
//	[ +g  -g ]
//	[ -g  +g ]
//
// pattern.
func (s *System) StampConductance(i, j int, g float64) {
	s.Add(i, i, g)
	s.Add(j, j, g)
	s.Add(i, j, -g)
	s.Add(j, i, -g)
}

// StampCurrent stamps an independent current i flowing from node a into
// node b (current leaves a, enters b).
func (s *System) StampCurrent(a, b int, cur float64) {
	s.AddRHS(a, -cur)
	s.AddRHS(b, cur)
}

// StampVoltageSource stamps an ideal voltage source with branch unknown
// br: V(plus) − V(minus) = v. The branch row enforces the constraint and
// the branch column injects the branch current into the node equations.
func (s *System) StampVoltageSource(br, plus, minus int, v float64) {
	s.Add(plus, br, 1)
	s.Add(minus, br, -1)
	s.Add(br, plus, 1)
	s.Add(br, minus, -1)
	s.AddRHS(br, v)
}

// StampVCCS stamps a voltage-controlled current source: a current
// g·(V(cp)−V(cm)) flowing from node p to node m.
func (s *System) StampVCCS(p, m, cp, cm int, g float64) {
	s.Add(p, cp, g)
	s.Add(p, cm, -g)
	s.Add(m, cp, -g)
	s.Add(m, cm, g)
}

// Factor computes the LU factorization with partial pivoting. The stamped
// matrix is preserved; the factorization lives in a private workspace so
// the same stamps can be inspected after solving.
func (s *System) Factor() error {
	s.luOK = false
	copy(s.lu, s.a)
	err := luFactor(s.lu, s.perm, s.dinv, s.n)
	s.facValid = err == nil
	return err
}

// FactorInPlace factors the stamped matrix destructively: the matrix
// buffer itself becomes the LU workspace, skipping the defensive copy of
// Factor. The stamps are lost; use it when the matrix will be restored
// from a snapshot (or re-stamped) before the next solve anyway — the
// Newton hot path.
func (s *System) FactorInPlace() error {
	// Swap the roles of a and lu so the factorization writes into what
	// used to be the stamp buffer; the next SetMatrix/Clear overwrites it.
	s.luOK = false
	s.a, s.lu = s.lu, s.a
	err := luFactor(s.lu, s.perm, s.dinv, s.n)
	s.facValid = err == nil
	return err
}

// Solve solves the factored system for the stamped right-hand side and
// returns the solution. The returned slice is reused by subsequent calls;
// callers that retain it must copy. Factor must have been called since the
// last Clear/stamp cycle.
func (s *System) Solve() []float64 {
	s.SolveInto(s.x)
	return s.x
}

// SolveInto solves the factored system for the stamped right-hand side
// into dst (length Dim()), without allocating. dst must not alias the
// system's RHS buffer.
func (s *System) SolveInto(dst []float64) {
	luSolve(s.lu, s.perm, s.dinv, s.n, s.b, dst)
}

// FactorSolve clears nothing, factors, and solves in one call.
func (s *System) FactorSolve() ([]float64, error) {
	if err := s.Factor(); err != nil {
		return nil, err
	}
	return s.Solve(), nil
}

// FactorSolveInto factors and solves into dst without allocating — the
// zero-allocation Newton kernel. It carries the same-pattern fast path:
// when the stamped matrix is bit-identical to the one behind the current
// factorization (common once Newton has settled onto a fixed point), the
// LU and permutation are reused and only the substitution runs. A reused
// factorization yields bit-identical results by construction. Returns
// whether the factorization was reused.
//
// Like FactorInPlace, the call is destructive: the stamp buffer is
// recycled, so re-stamp (or SetMatrix) before the next solve.
func (s *System) FactorSolveInto(dst []float64) (reused bool, err error) {
	if s.luOK && equalBits(s.a, s.prev) {
		s.SolveInto(dst)
		return true, nil
	}
	// Keep the pristine stamped bits in prev for the next comparison and
	// factor a copy.
	s.a, s.prev = s.prev, s.a
	copy(s.lu, s.prev)
	s.luOK = false
	if err := luFactor(s.lu, s.perm, s.dinv, s.n); err != nil {
		s.facValid = false
		return false, err
	}
	s.luOK = true
	s.facValid = true
	s.SolveInto(dst)
	return false, nil
}

// equalBits reports whether a and b hold identical values. The compare
// uses != so any NaN forces a refactor; ±0 compare equal, which is safe
// because the sign of a zero never changes pivot selection.
func equalBits(a, b []float64) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// luFactor performs in-place Doolittle LU with partial pivoting on the
// row-major n×n matrix m, recording the pivot rows in perm and the
// reciprocal pivots in dinv. The inner elimination runs on row slices so
// the compiler can drop bounds checks.
func luFactor(m []float64, perm []int, dinv []float64, n int) error {
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p := k
		max := math.Abs(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m[i*n+k]); v > max {
				max = v
				p = i
			}
		}
		if max == 0 || math.IsNaN(max) {
			return fmt.Errorf("%w: zero pivot in column %d", ErrSingular, k)
		}
		if p != k {
			rowK := m[k*n : k*n+n]
			rowP := m[p*n : p*n+n]
			for j := 0; j < n; j++ {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		// One division per pivot, multiplied through the column: at the
		// small dimensions of analog macros the n²/2 scalar divisions are
		// a sizable slice of the factorization, and a divide is an order
		// of magnitude slower than a multiply.
		pivInv := 1 / m[k*n+k]
		dinv[k] = pivInv
		rowK := m[k*n+k+1 : k*n+n]
		for i := k + 1; i < n; i++ {
			l := m[i*n+k] * pivInv
			m[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := m[i*n+k+1 : i*n+n][:len(rowK)]
			for j := range rowK {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return nil
}

// luSolve solves LU·x = P·b: the permutation is applied while copying b
// into x, so no scratch buffer is needed. x and b must not alias.
func luSolve(m []float64, perm []int, dinv []float64, n int, b, x []float64) {
	// Apply permutation during the copy.
	for i := 0; i < n; i++ {
		x[i] = b[perm[i]]
	}
	// Forward substitution (unit lower triangle).
	for i := 1; i < n; i++ {
		row := m[i*n : i*n+i]
		sum := x[i]
		for j, l := range row {
			sum -= l * x[j]
		}
		x[i] = sum
	}
	// Back substitution, dividing by reciprocal multiplication.
	for i := n - 1; i >= 0; i-- {
		row := m[i*n+i : i*n+n]
		sum := x[i]
		for j := 1; j < len(row); j++ {
			sum -= row[j] * x[i+j]
		}
		x[i] = sum * dinv[i]
	}
}
