// Package mna provides the modified-nodal-analysis (MNA) linear systems
// used by the circuit simulator: dense real and complex matrices with LU
// factorization, and the index bookkeeping that maps circuit nodes and
// source branches onto matrix rows.
//
// Analog macros are small (tens of unknowns), so a dense solver with
// partial pivoting is both simpler and faster than a sparse one.
package mna

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when LU factorization encounters a pivot that is
// numerically zero, i.e. the circuit matrix is singular (floating node,
// voltage-source loop, ...).
var ErrSingular = errors.New("mna: singular matrix")

// System is a dense real linear system A·x = b of dimension n.
//
// Row/column index 0 corresponds to the first non-ground unknown; the
// ground node is eliminated by convention. Stamping helpers accept the
// value -1 for "ground" and silently drop contributions to that row or
// column, so device code can stamp without special-casing ground.
type System struct {
	n    int
	a    []float64 // row-major n×n
	b    []float64
	lu   []float64 // factorization workspace
	perm []int     // row permutation from partial pivoting
	x    []float64
}

// NewSystem returns a zeroed n-dimensional system.
func NewSystem(n int) *System {
	if n < 0 {
		panic(fmt.Sprintf("mna: negative dimension %d", n))
	}
	return &System{
		n:    n,
		a:    make([]float64, n*n),
		b:    make([]float64, n),
		lu:   make([]float64, n*n),
		perm: make([]int, n),
		x:    make([]float64, n),
	}
}

// Dim returns the system dimension.
func (s *System) Dim() int { return s.n }

// Clear zeroes the matrix and right-hand side so the system can be
// re-stamped for the next Newton iteration or time step.
func (s *System) Clear() {
	for i := range s.a {
		s.a[i] = 0
	}
	for i := range s.b {
		s.b[i] = 0
	}
}

// At returns matrix entry (i, j). Ground indices (-1) read as 0.
func (s *System) At(i, j int) float64 {
	if i < 0 || j < 0 {
		return 0
	}
	return s.a[i*s.n+j]
}

// RHS returns right-hand-side entry i. Ground (-1) reads as 0.
func (s *System) RHS(i int) float64 {
	if i < 0 {
		return 0
	}
	return s.b[i]
}

// Add adds v to matrix entry (i, j). Either index may be -1 (ground), in
// which case the contribution is dropped.
func (s *System) Add(i, j int, v float64) {
	if i < 0 || j < 0 {
		return
	}
	s.a[i*s.n+j] += v
}

// AddRHS adds v to right-hand-side entry i; i may be -1 (ground).
func (s *System) AddRHS(i int, v float64) {
	if i < 0 {
		return
	}
	s.b[i] += v
}

// StampConductance stamps a two-terminal conductance g between unknowns i
// and j (either may be -1 for ground): the usual
//
//	[ +g  -g ]
//	[ -g  +g ]
//
// pattern.
func (s *System) StampConductance(i, j int, g float64) {
	s.Add(i, i, g)
	s.Add(j, j, g)
	s.Add(i, j, -g)
	s.Add(j, i, -g)
}

// StampCurrent stamps an independent current i flowing from node a into
// node b (current leaves a, enters b).
func (s *System) StampCurrent(a, b int, cur float64) {
	s.AddRHS(a, -cur)
	s.AddRHS(b, cur)
}

// StampVoltageSource stamps an ideal voltage source with branch unknown
// br: V(plus) − V(minus) = v. The branch row enforces the constraint and
// the branch column injects the branch current into the node equations.
func (s *System) StampVoltageSource(br, plus, minus int, v float64) {
	s.Add(plus, br, 1)
	s.Add(minus, br, -1)
	s.Add(br, plus, 1)
	s.Add(br, minus, -1)
	s.AddRHS(br, v)
}

// StampVCCS stamps a voltage-controlled current source: a current
// g·(V(cp)−V(cm)) flowing from node p to node m.
func (s *System) StampVCCS(p, m, cp, cm int, g float64) {
	s.Add(p, cp, g)
	s.Add(p, cm, -g)
	s.Add(m, cp, -g)
	s.Add(m, cm, g)
}

// Factor computes the LU factorization with partial pivoting. The stamped
// matrix is preserved; the factorization lives in a private workspace so
// the same stamps can be inspected after solving.
func (s *System) Factor() error {
	copy(s.lu, s.a)
	return luFactor(s.lu, s.perm, s.n)
}

// Solve solves the factored system for the stamped right-hand side and
// returns the solution. The returned slice is reused by subsequent calls;
// callers that retain it must copy. Factor must have been called since the
// last Clear/stamp cycle.
func (s *System) Solve() []float64 {
	copy(s.x, s.b)
	luSolve(s.lu, s.perm, s.n, s.x)
	return s.x
}

// FactorSolve clears nothing, factors, and solves in one call.
func (s *System) FactorSolve() ([]float64, error) {
	if err := s.Factor(); err != nil {
		return nil, err
	}
	return s.Solve(), nil
}

// luFactor performs in-place Doolittle LU with partial pivoting on the
// row-major n×n matrix m, recording the pivot rows in perm.
func luFactor(m []float64, perm []int, n int) error {
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot search in column k.
		p := k
		max := math.Abs(m[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m[i*n+k]); v > max {
				max = v
				p = i
			}
		}
		if max == 0 || math.IsNaN(max) {
			return fmt.Errorf("%w: zero pivot in column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				m[k*n+j], m[p*n+j] = m[p*n+j], m[k*n+j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		piv := m[k*n+k]
		for i := k + 1; i < n; i++ {
			l := m[i*n+k] / piv
			m[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				m[i*n+j] -= l * m[k*n+j]
			}
		}
	}
	return nil
}

// luSolve solves LU·x = P·b in place: x carries b on entry and the
// solution on return.
func luSolve(m []float64, perm []int, n int, x []float64) {
	// Apply permutation.
	tmp := make([]float64, n)
	for i := 0; i < n; i++ {
		tmp[i] = x[perm[i]]
	}
	copy(x, tmp)
	// Forward substitution (unit lower triangle).
	for i := 1; i < n; i++ {
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= m[i*n+j] * x[j]
		}
		x[i] = sum
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= m[i*n+j] * x[j]
		}
		x[i] = sum / m[i*n+i]
	}
}
