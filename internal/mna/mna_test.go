package mna

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSolveIdentity(t *testing.T) {
	s := NewSystem(3)
	for i := 0; i < 3; i++ {
		s.Add(i, i, 1)
		s.AddRHS(i, float64(i+1))
	}
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !almostEqual(x[i], float64(i+1), 1e-12) {
			t.Errorf("x[%d] = %g, want %g", i, x[i], float64(i+1))
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5].
	s := NewSystem(2)
	s.Add(0, 0, 2)
	s.Add(0, 1, 1)
	s.Add(1, 0, 1)
	s.Add(1, 1, 3)
	s.AddRHS(0, 3)
	s.AddRHS(1, 5)
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 0.8, 1e-12) || !almostEqual(x[1], 1.4, 1e-12) {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	s := NewSystem(2)
	s.Add(0, 0, 0)
	s.Add(0, 1, 1)
	s.Add(1, 0, 1)
	s.Add(1, 1, 0)
	s.AddRHS(0, 2)
	s.AddRHS(1, 3)
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSingularMatrix(t *testing.T) {
	s := NewSystem(2)
	s.Add(0, 0, 1)
	s.Add(0, 1, 2)
	s.Add(1, 0, 2)
	s.Add(1, 1, 4)
	if err := s.Factor(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor() err = %v, want ErrSingular", err)
	}
}

func TestGroundIndexIgnored(t *testing.T) {
	s := NewSystem(2)
	s.StampConductance(-1, 0, 5) // half to ground
	s.StampConductance(0, 1, 2)
	s.StampCurrent(-1, 0, 1e-3) // 1 mA into node 0
	s.Add(1, 1, 1)              // pin node 1 weakly so the system is regular
	if got := s.At(-1, 0); got != 0 {
		t.Errorf("At(-1,0) = %g, want 0", got)
	}
	if got := s.RHS(-1); got != 0 {
		t.Errorf("RHS(-1) = %g, want 0", got)
	}
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	// Node 0: (5+2)V0 - 2V1 = 1e-3 ; node 1: -2V0 + 3V1 = 0.
	v1 := 2 * x[0] / 3
	if !almostEqual(x[1], v1, 1e-12) {
		t.Errorf("node1 = %g, want %g", x[1], v1)
	}
}

func TestVoltageDividerStamp(t *testing.T) {
	// 10 V source, two 1 kΩ resistors in series to ground; middle node = 5 V.
	// Unknowns: 0 = top node, 1 = middle node, 2 = source branch current.
	s := NewSystem(3)
	g := 1e-3
	s.StampConductance(0, 1, g)
	s.StampConductance(1, -1, g)
	s.StampVoltageSource(2, 0, -1, 10)
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 10, 1e-9) {
		t.Errorf("top = %g, want 10", x[0])
	}
	if !almostEqual(x[1], 5, 1e-9) {
		t.Errorf("mid = %g, want 5", x[1])
	}
	// Branch current flows out of the + terminal through the divider: 5 mA.
	if !almostEqual(x[2], -5e-3, 1e-9) {
		t.Errorf("branch current = %g, want -5e-3", x[2])
	}
}

func TestVCCSStamp(t *testing.T) {
	// VCCS from a fixed control voltage drives current into a 1 kΩ load.
	// Unknowns: 0 = control node, 1 = load node, 2 = control source branch.
	s := NewSystem(3)
	s.StampVoltageSource(2, 0, -1, 2) // V(control) = 2
	s.StampConductance(1, -1, 1e-3)   // load
	s.StampVCCS(-1, 1, 0, -1, 1e-3)   // i = 1m*Vctl from gnd into load node
	s.Add(0, 0, 0)                    // no-op, control handled by source
	x, err := s.FactorSolve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[1], 2, 1e-9) {
		t.Errorf("load = %g, want 2 (1m*2V across 1k)", x[1])
	}
}

func TestClearResets(t *testing.T) {
	s := NewSystem(2)
	s.Add(0, 0, 3)
	s.AddRHS(1, 4)
	s.Clear()
	if s.At(0, 0) != 0 || s.RHS(1) != 0 {
		t.Error("Clear did not zero the system")
	}
}

// TestRandomSystemsResidual is a property test: for random well-conditioned
// systems, the solution satisfies A x = b to tight tolerance.
func TestRandomSystemsResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		s := NewSystem(n)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				if i == j {
					v += float64(n) * 2 // diagonal dominance
				}
				a[i*n+j] = v
				s.Add(i, j, v)
			}
			s.AddRHS(i, rng.NormFloat64())
		}
		x, err := s.FactorSolve()
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += a[i*n+j] * x[j]
			}
			if !almostEqual(sum, s.RHS(i), 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRefactorAfterRestamp verifies Factor/Solve can be repeated after
// Clear, the pattern used by every Newton iteration.
func TestRefactorAfterRestamp(t *testing.T) {
	s := NewSystem(1)
	for k := 1; k <= 5; k++ {
		s.Clear()
		s.Add(0, 0, float64(k))
		s.AddRHS(0, float64(k*k))
		x, err := s.FactorSolve()
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(x[0], float64(k), 1e-12) {
			t.Fatalf("iteration %d: x = %g, want %d", k, x[0], k)
		}
	}
}

func TestSolveReusesBuffer(t *testing.T) {
	s := NewSystem(1)
	s.Add(0, 0, 1)
	s.AddRHS(0, 2)
	if err := s.Factor(); err != nil {
		t.Fatal(err)
	}
	x1 := s.Solve()
	x2 := s.Solve()
	if &x1[0] != &x2[0] {
		t.Error("Solve allocated a fresh slice; documented contract is reuse")
	}
}

func TestComplexSolveKnown(t *testing.T) {
	// (1+j) x = 2 -> x = 1-j.
	s := NewComplexSystem(1)
	s.Add(0, 0, complex(1, 1))
	s.AddRHS(0, 2)
	if err := s.Factor(); err != nil {
		t.Fatal(err)
	}
	x := s.Solve()
	if math.Abs(real(x[0])-1) > 1e-12 || math.Abs(imag(x[0])+1) > 1e-12 {
		t.Errorf("x = %v, want (1-1i)", x[0])
	}
}

func TestComplexRCAdmittance(t *testing.T) {
	// Node with R to ground and C to ground driven by 1 A: V = 1/(G + jωC).
	s := NewComplexSystem(1)
	g := 1e-3
	w := 2 * math.Pi * 1e3
	c := 1e-6
	s.StampAdmittance(0, -1, complex(g, w*c))
	s.StampCurrent(-1, 0, 1)
	if err := s.Factor(); err != nil {
		t.Fatal(err)
	}
	x := s.Solve()
	den := complex(g, w*c)
	want := 1 / den
	if math.Abs(real(x[0])-real(want)) > 1e-9 || math.Abs(imag(x[0])-imag(want)) > 1e-9 {
		t.Errorf("V = %v, want %v", x[0], want)
	}
}

func TestComplexSingular(t *testing.T) {
	s := NewComplexSystem(2)
	s.Add(0, 0, 1)
	s.Add(1, 0, 1)
	if err := s.Factor(); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor() err = %v, want ErrSingular", err)
	}
}

func TestComplexVoltageSource(t *testing.T) {
	// Phasor source across an RC divider.
	s := NewComplexSystem(3)
	s.StampAdmittance(0, 1, 1e-3)
	s.StampAdmittance(1, -1, complex(0, 1e-3)) // purely capacitive leg
	s.StampVoltageSource(2, 0, -1, 1)
	if err := s.Factor(); err != nil {
		t.Fatal(err)
	}
	x := s.Solve()
	// Divider: V1 = (1/j·1e-3 leg) / total = 1/(1+j) = 0.5 − 0.5j.
	if math.Abs(real(x[1])-0.5) > 1e-9 || math.Abs(imag(x[1])+0.5) > 1e-9 {
		t.Errorf("V1 = %v, want 0.5-0.5i", x[1])
	}
}

func TestNewSystemPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSystem(-1) did not panic")
		}
	}()
	NewSystem(-1)
}
