package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

const ceAmpNetlist = `
.title ce-amp
.model q1 npn bf=150 is=2e-15
Vcc vcc 0 10
Vb  b   0 0.68
Q1  c b 0 q1
RC  vcc c 5k
`

func TestParseBJT(t *testing.T) {
	c, err := ParseString(ceAmpNetlist, "x")
	if err != nil {
		t.Fatal(err)
	}
	q, ok := c.Device("Q1").(*device.BJT)
	if !ok {
		t.Fatal("Q1 missing")
	}
	if q.Model.BF != 150 || q.Model.IS != 2e-15 || q.Model.Type != device.NPN {
		t.Errorf("model = %+v", q.Model)
	}
}

func TestBJTCommonEmitterOP(t *testing.T) {
	c, err := ParseString(ceAmpNetlist, "x")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// Ic = IS·exp(0.68/VT) ≈ 0.54 mA, Vc = 10 − 5k·Ic ≈ 7.3 V.
	q := c.Device("Q1").(*device.BJT)
	ic := q.CollectorCurrent(x)
	vc := e.Voltage(x, "c")
	if math.Abs(vc-(10-5e3*ic)) > 1e-6 {
		t.Errorf("KCL: Vc=%g with Ic=%g", vc, ic)
	}
	if vc < 5 || vc > 9.5 {
		t.Errorf("Vc = %g, want a mid-rail bias", vc)
	}
}

func TestBJTCommonEmitterACGain(t *testing.T) {
	c, err := ParseString(ceAmpNetlist, "x")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	xop, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AC(xop, "Vb", []float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	q := c.Device("Q1").(*device.BJT)
	gm := q.CollectorCurrent(xop) / 0.02585
	want := gm * 5e3
	got := res.Voltage(0, "c")
	if math.Abs(real(got)+want) > 0.01*want {
		t.Errorf("AC gain = %v, want -%g", got, want)
	}
}

func TestBJTUnknownModelRejected(t *testing.T) {
	if _, err := ParseString("Q1 c b 0 nosuch\nVc c 0 1\nVb b 0 1\n", "x"); err == nil {
		t.Error("unknown BJT model accepted")
	}
	if _, err := ParseString(".model m npn bf\nQ1 c b 0 m\n", "x"); err == nil {
		t.Error("malformed BJT model parameter accepted")
	}
}

func TestBJTInSubckt(t *testing.T) {
	src := `
.subckt stage in out vcc
.model q npn
Q1 out in 0 q
RC vcc out 5k
.ends
Vcc vcc 0 10
Vin in 0 0.66
X1 in out vcc stage
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Device("X1.Q1").(*device.BJT); !ok {
		t.Fatalf("flattened BJT missing: %s", c.String())
	}
}

func TestFormatBJT(t *testing.T) {
	c, err := ParseString(ceAmpNetlist, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(c), "Q1 c b 0 npn") {
		t.Errorf("Format output:\n%s", Format(c))
	}
}
