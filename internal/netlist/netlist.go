// Package netlist parses a SPICE-like textual netlist into a circuit, so
// custom macros can be fed to the test generator without writing Go.
//
// Supported syntax (one element per line, case-insensitive keywords):
//
//   - comment                 ; also "; comment"
//     .title anything
//     .model NAME nmos|pmos [vt0=..] [kp=..] [lambda=..]
//     Rxxx n1 n2 value
//     Cxxx n1 n2 value
//     Lxxx n1 n2 value
//     Dxxx anode cathode [is=..] [n=..]
//     Vxxx n+ n- <source>
//     Ixxx n+ n- <source>
//     Exxx n+ n- nc+ nc- gain          ; VCVS
//     Gxxx n+ n- nc+ nc- gm            ; VCCS
//     Mxxx d g s MODELNAME [w=..] [l=..]
//     .end                      ; optional
//
// where <source> is a bare number (DC), "dc v", "sin(off amp freq)",
// "step(base elev delay rise)", "pulse(lo hi delay rise fall width
// period)" or "pwl(t1 v1 t2 v2 ...)". Values accept SI suffixes
// (f p n u m k meg g t) as in SPICE.
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/wave"
)

// Parse reads a netlist and builds the circuit. The name is used for the
// circuit when no .title line is present.
func Parse(r io.Reader, name string) (*circuit.Circuit, error) {
	p := &parser{
		models:    make(map[string]*device.MOSModel),
		bjtModels: make(map[string]*device.BJTModel),
		name:      name,
	}
	scanner := bufio.NewScanner(r)
	lineno := 0
	var lines []string
	for scanner.Scan() {
		lineno++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "*") || strings.HasPrefix(line, ";") {
			continue
		}
		if i := strings.Index(line, ";"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		lines = append(lines, fmt.Sprintf("%d %s", lineno, line))
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	// Flatten subcircuits before anything else.
	defs, top, err := extractSubckts(lines)
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	lines, err = expandInstances(top, defs, 0)
	if err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	// First pass: models and title, so device lines can reference models
	// defined later in the file.
	var deviceLines []string
	for _, l := range lines {
		n, body, _ := strings.Cut(l, " ")
		low := strings.ToLower(body)
		switch {
		case strings.HasPrefix(low, ".model"):
			if err := p.parseModel(body); err != nil {
				return nil, fmt.Errorf("netlist line %s: %w", n, err)
			}
		case strings.HasPrefix(low, ".title"):
			p.name = strings.TrimSpace(body[len(".title"):])
		case strings.HasPrefix(low, ".end"):
			// ignore
		default:
			deviceLines = append(deviceLines, l)
		}
	}
	c := circuit.New(p.name)
	for _, l := range deviceLines {
		n, body, _ := strings.Cut(l, " ")
		if err := p.parseDevice(c, body); err != nil {
			return nil, fmt.Errorf("netlist line %s: %w", n, err)
		}
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s, name string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

type parser struct {
	models    map[string]*device.MOSModel
	bjtModels map[string]*device.BJTModel
	name      string
}

// ParseValue converts a SPICE-style number with optional SI suffix
// ("50k", "2p", "1meg", "10u") to a float64.
func ParseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split the trailing alphabetic suffix.
	i := len(s)
	for i > 0 {
		ch := s[i-1]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == '+' || ch == '-' {
			break
		}
		i--
	}
	num, suffix := s[:i], s[i:]
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	switch suffix {
	case "", "v", "a", "s", "hz", "ohm", "f0": // bare units ignored
		return v, nil
	case "f":
		return v * 1e-15, nil
	case "p":
		return v * 1e-12, nil
	case "n":
		return v * 1e-9, nil
	case "u", "µ":
		return v * 1e-6, nil
	case "m":
		return v * 1e-3, nil
	case "k":
		return v * 1e3, nil
	case "meg":
		return v * 1e6, nil
	case "g":
		return v * 1e9, nil
	case "t":
		return v * 1e12, nil
	default:
		// Allow unit tails after the scale letter, e.g. "50kohm", "10uF".
		for _, pre := range []struct {
			s string
			m float64
		}{{"meg", 1e6}, {"f", 1e-15}, {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6}, {"m", 1e-3}, {"k", 1e3}, {"g", 1e9}, {"t", 1e12}} {
			if strings.HasPrefix(suffix, pre.s) {
				return v * pre.m, nil
			}
		}
		return 0, fmt.Errorf("unknown suffix %q in %q", suffix, s)
	}
}

func (p *parser) parseModel(body string) error {
	fields := strings.Fields(body)
	if len(fields) < 3 {
		return fmt.Errorf(".model needs a name and a type")
	}
	name := strings.ToLower(fields[1])
	typ := strings.ToLower(fields[2])
	switch typ {
	case "nmos", "pmos":
		m := device.DefaultNMOSModel()
		if typ == "pmos" {
			m = device.DefaultPMOSModel()
		}
		for _, kv := range fields[3:] {
			k, v, ok := strings.Cut(strings.ToLower(kv), "=")
			if !ok {
				return fmt.Errorf("bad model parameter %q", kv)
			}
			val, err := ParseValue(v)
			if err != nil {
				return err
			}
			switch k {
			case "vt0", "vto":
				m.VT0 = val
			case "kp":
				m.KP = val
			case "lambda":
				m.Lambda = val
			case "cox":
				m.Cox = val
			case "cgso":
				m.CGSO = val
			case "cgdo":
				m.CGDO = val
			default:
				return fmt.Errorf("unknown model parameter %q", k)
			}
		}
		p.models[name] = m
	case "npn", "pnp":
		m := device.DefaultNPNModel()
		if typ == "pnp" {
			m = device.DefaultPNPModel()
		}
		for _, kv := range fields[3:] {
			k, v, ok := strings.Cut(strings.ToLower(kv), "=")
			if !ok {
				return fmt.Errorf("bad model parameter %q", kv)
			}
			val, err := ParseValue(v)
			if err != nil {
				return err
			}
			switch k {
			case "is":
				m.IS = val
			case "bf":
				m.BF = val
			case "br":
				m.BR = val
			default:
				return fmt.Errorf("unknown BJT model parameter %q", k)
			}
		}
		p.bjtModels[name] = m
	default:
		return fmt.Errorf("unsupported model type %q", typ)
	}
	return nil
}

// parseSource interprets the tail of a V/I line as a waveform.
func parseSource(fields []string) (wave.Waveform, error) {
	if len(fields) == 0 {
		return wave.DC(0), nil
	}
	// Re-join so "sin( a b c )" and "sin(a b c)" both work.
	s := strings.ToLower(strings.Join(fields, " "))
	if strings.HasPrefix(s, "dc ") {
		v, err := ParseValue(strings.TrimSpace(s[3:]))
		return wave.DC(v), err
	}
	if open := strings.Index(s, "("); open >= 0 {
		kind := strings.TrimSpace(s[:open])
		closeIdx := strings.LastIndex(s, ")")
		if closeIdx < open {
			return nil, fmt.Errorf("unbalanced parentheses in source %q", s)
		}
		args := strings.FieldsFunc(s[open+1:closeIdx], func(r rune) bool { return r == ' ' || r == ',' })
		vals := make([]float64, len(args))
		for i, a := range args {
			v, err := ParseValue(a)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		get := func(i int, def float64) float64 {
			if i < len(vals) {
				return vals[i]
			}
			return def
		}
		switch kind {
		case "dc":
			if len(vals) < 1 {
				return nil, fmt.Errorf("dc() needs a value")
			}
			return wave.DC(vals[0]), nil
		case "sin", "sine":
			if len(vals) < 3 {
				return nil, fmt.Errorf("sin() needs offset, amplitude, freq")
			}
			return wave.Sine{Offset: vals[0], Amplitude: vals[1], Freq: vals[2], Phase: get(3, 0)}, nil
		case "step":
			if len(vals) < 2 {
				return nil, fmt.Errorf("step() needs base, elev")
			}
			return wave.Step{Base: vals[0], Elev: vals[1], Delay: get(2, 0), Rise: get(3, 0)}, nil
		case "pulse":
			if len(vals) < 2 {
				return nil, fmt.Errorf("pulse() needs low, high")
			}
			return wave.Pulse{Low: vals[0], High: vals[1], Delay: get(2, 0), Rise: get(3, 0),
				Fall: get(4, 0), Width: get(5, 0), Period: get(6, 0)}, nil
		case "pwl":
			if len(vals)%2 != 0 || len(vals) == 0 {
				return nil, fmt.Errorf("pwl() needs time/value pairs")
			}
			pts := make([]wave.Point, len(vals)/2)
			for i := range pts {
				pts[i] = wave.Point{T: vals[2*i], V: vals[2*i+1]}
			}
			return wave.NewPWL(pts...), nil
		default:
			return nil, fmt.Errorf("unknown source kind %q", kind)
		}
	}
	v, err := ParseValue(s)
	return wave.DC(v), err
}

func (p *parser) parseDevice(c *circuit.Circuit, body string) error {
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return nil
	}
	name := fields[0]
	kind := elementKind(name)
	args := fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("device %s needs %d arguments", name, n)
		}
		return nil
	}
	switch kind {
	case "R", "C", "L":
		if err := need(3); err != nil {
			return err
		}
		v, err := ParseValue(args[2])
		if err != nil {
			return err
		}
		switch kind {
		case "R":
			c.Add(device.NewResistor(name, args[0], args[1], v))
		case "C":
			c.Add(device.NewCapacitor(name, args[0], args[1], v))
		case "L":
			c.Add(device.NewInductor(name, args[0], args[1], v))
		}
	case "D":
		if err := need(2); err != nil {
			return err
		}
		m := device.DefaultDiodeModel()
		for _, kv := range args[2:] {
			k, v, ok := strings.Cut(strings.ToLower(kv), "=")
			if !ok {
				return fmt.Errorf("bad diode parameter %q", kv)
			}
			val, err := ParseValue(v)
			if err != nil {
				return err
			}
			switch k {
			case "is":
				m.IS = val
			case "n":
				m.N = val
			default:
				return fmt.Errorf("unknown diode parameter %q", k)
			}
		}
		c.Add(device.NewDiode(name, args[0], args[1], m))
	case "V", "I":
		if err := need(2); err != nil {
			return err
		}
		w, err := parseSource(args[2:])
		if err != nil {
			return err
		}
		if kind == "V" {
			c.Add(device.NewVSource(name, args[0], args[1], w))
		} else {
			c.Add(device.NewISource(name, args[0], args[1], w))
		}
	case "E", "G":
		if err := need(5); err != nil {
			return err
		}
		g, err := ParseValue(args[4])
		if err != nil {
			return err
		}
		if kind == "E" {
			c.Add(device.NewVCVS(name, args[0], args[1], args[2], args[3], g))
		} else {
			c.Add(device.NewVCCS(name, args[0], args[1], args[2], args[3], g))
		}
	case "M":
		if err := need(4); err != nil {
			return err
		}
		model, ok := p.models[strings.ToLower(args[3])]
		if !ok {
			return fmt.Errorf("MOSFET %s references unknown model %q", name, args[3])
		}
		w, l := 10e-6, 1e-6
		for _, kv := range args[4:] {
			k, v, ok := strings.Cut(strings.ToLower(kv), "=")
			if !ok {
				return fmt.Errorf("bad MOSFET parameter %q", kv)
			}
			val, err := ParseValue(v)
			if err != nil {
				return err
			}
			switch k {
			case "w":
				w = val
			case "l":
				l = val
			default:
				return fmt.Errorf("unknown MOSFET parameter %q", k)
			}
		}
		mm := *model // per-instance copy so corners stay independent
		c.Add(device.NewMOSFET(name, args[0], args[1], args[2], &mm, w, l))
	case "Q":
		if err := need(4); err != nil {
			return err
		}
		model, ok := p.bjtModels[strings.ToLower(args[3])]
		if !ok {
			return fmt.Errorf("BJT %s references unknown model %q", name, args[3])
		}
		mm := *model
		c.Add(device.NewBJT(name, args[0], args[1], args[2], &mm))
	default:
		return fmt.Errorf("unsupported element %q", name)
	}
	return nil
}

// Format renders a circuit back to netlist text (devices only; models
// are inlined as defaults). It is mainly useful for diffing faulty
// netlists in reports.
func Format(c *circuit.Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, ".title %s\n", c.Name())
	for _, d := range c.Devices() {
		switch dev := d.(type) {
		case *device.Resistor:
			fmt.Fprintf(&b, "%s %s %g\n", dev.Name(), joinNodes(dev), dev.R)
		case *device.Capacitor:
			fmt.Fprintf(&b, "%s %s %g\n", dev.Name(), joinNodes(dev), dev.C)
		case *device.Inductor:
			fmt.Fprintf(&b, "%s %s %g\n", dev.Name(), joinNodes(dev), dev.L)
		case *device.VSource:
			fmt.Fprintf(&b, "%s %s %s\n", dev.Name(), joinNodes(dev), dev.W)
		case *device.ISource:
			fmt.Fprintf(&b, "%s %s %s\n", dev.Name(), joinNodes(dev), dev.W)
		case *device.Diode:
			fmt.Fprintf(&b, "%s %s is=%g n=%g\n", dev.Name(), joinNodes(dev), dev.Model.IS, dev.Model.N)
		case *device.MOSFET:
			fmt.Fprintf(&b, "%s %s %s w=%g l=%g\n", dev.Name(), joinNodes(dev),
				dev.Model.Type, dev.W, dev.L)
		case *device.BJT:
			fmt.Fprintf(&b, "%s %s %s is=%g bf=%g\n", dev.Name(), joinNodes(dev),
				dev.Model.Type, dev.Model.IS, dev.Model.BF)
		default:
			fmt.Fprintf(&b, "* %s %s (unrendered)\n", dev.Name(), joinNodes(dev))
		}
	}
	b.WriteString(".end\n")
	return b.String()
}

func joinNodes(d device.Device) string {
	names := d.TerminalNames()
	out := make([]string, len(names))
	for i, n := range names {
		if circuit.IsGround(n) {
			out[i] = "0"
		} else {
			out[i] = n
		}
	}
	return strings.Join(out, " ")
}
