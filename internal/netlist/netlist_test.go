package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
	"repro/internal/wave"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"50k", 50e3}, {"2p", 2e-12}, {"1meg", 1e6}, {"10u", 10e-6},
		{"3.3", 3.3}, {"-5m", -5e-3}, {"1.5n", 1.5e-9}, {"4f", 4e-15},
		{"2g", 2e9}, {"7t", 7e12}, {"100", 100}, {"50kohm", 50e3},
		{"1e3", 1e3}, {"2.5e-6", 2.5e-6},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	for _, bad := range []string{"", "abc", "1.2.3", "5qq"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) accepted", bad)
		}
	}
}

const dividerNetlist = `
* a humble divider
.title divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 1k
.end
`

func TestParseDividerAndSimulate(t *testing.T) {
	c, err := ParseString(dividerNetlist, "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "divider" {
		t.Errorf("name = %s, want title", c.Name())
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage(x, "mid"); math.Abs(got-5) > 1e-6 {
		t.Errorf("V(mid) = %g, want 5", got)
	}
}

func TestParseMOSWithModel(t *testing.T) {
	src := `
.model mynmos nmos vt0=0.6 kp=100u lambda=0.03
Vdd vdd 0 5
Vg g 0 1.2
M1 d g 0 mynmos w=20u l=2u
RL vdd d 10k
`
	c, err := ParseString(src, "amp")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := c.Device("M1").(*device.MOSFET)
	if !ok {
		t.Fatal("M1 missing")
	}
	if m.Model.VT0 != 0.6 || math.Abs(m.Model.KP-100e-6) > 1e-12 || m.Model.Lambda != 0.03 {
		t.Errorf("model = %+v", m.Model)
	}
	if math.Abs(m.W-20e-6) > 1e-12 || math.Abs(m.L-2e-6) > 1e-12 {
		t.Errorf("geometry W=%g L=%g", m.W, m.L)
	}
}

func TestModelDefinedAfterUse(t *testing.T) {
	src := `
M1 d g 0 latemodel
Vd d 0 1
Vg g 0 1
.model latemodel nmos
`
	if _, err := ParseString(src, "x"); err != nil {
		t.Fatalf("late model rejected: %v", err)
	}
}

func TestParseSources(t *testing.T) {
	src := `
I1 a 0 sin(20u 5u 10k)
I2 a 0 step(5u 20u 10n 10n)
V1 b 0 pulse(0 5 1n 1n 1n 10n 20n)
V2 b 0 pwl(0 0 1u 5)
I3 a 0 dc 42u
R1 a 0 1k
R2 b 0 1k
`
	c, err := ParseString(src, "src")
	if err != nil {
		t.Fatal(err)
	}
	near := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Abs(b) }
	s1 := c.Device("I1").(*device.ISource).W.(wave.Sine)
	if !near(s1.Offset, 20e-6) || !near(s1.Amplitude, 5e-6) || !near(s1.Freq, 10e3) {
		t.Errorf("sine = %+v", s1)
	}
	s2 := c.Device("I2").(*device.ISource).W.(wave.Step)
	if !near(s2.Base, 5e-6) || !near(s2.Elev, 20e-6) || !near(s2.Delay, 10e-9) || !near(s2.Rise, 10e-9) {
		t.Errorf("step = %+v", s2)
	}
	if _, ok := c.Device("V1").(*device.VSource).W.(wave.Pulse); !ok {
		t.Error("pulse source not parsed")
	}
	if _, ok := c.Device("V2").(*device.VSource).W.(*wave.PWL); !ok {
		t.Error("pwl source not parsed")
	}
	if dc := c.Device("I3").(*device.ISource).W.DC(); math.Abs(dc-42e-6) > 1e-18 {
		t.Errorf("dc source = %g", dc)
	}
}

func TestParseControlledSources(t *testing.T) {
	src := `
V1 c 0 0.5
E1 out 0 c 0 10
G1 0 out2 c 0 1m
R1 out 0 1k
R2 out2 0 1k
`
	c, err := ParseString(src, "ctl")
	if err != nil {
		t.Fatal(err)
	}
	if e := c.Device("E1").(*device.VCVS); e.Gain != 10 {
		t.Errorf("VCVS gain = %g", e.Gain)
	}
	if g := c.Device("G1").(*device.VCCS); math.Abs(g.Gm-1e-3) > 1e-15 {
		t.Errorf("VCCS gm = %g", g.Gm)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R1 a 0",               // missing value
		"M1 d g 0 nosuchmodel", // unknown model
		"Q1 a b c",             // unsupported element
		"I1 a 0 sin(1)",        // short sine
		"V1 a 0 blorp(1 2)",    // unknown source kind
		".model m1 bjt",        // unsupported model type
		".model m2 nmos vt0",   // malformed parameter
		"M1 d g 0 m w=1u q=2",  // unknown MOS parameter preceded by model
		"I1 a 0 pwl(1 2 3)",    // odd pwl
	}
	for _, src := range bad {
		full := src
		if strings.HasPrefix(src, "M1 d g 0 m ") {
			full = ".model m nmos\n" + src
		}
		if _, err := ParseString(full, "bad"); err == nil {
			t.Errorf("netlist %q accepted", src)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
* header comment
; another comment

V1 a 0 1   ; trailing comment
R1 a 0 1k
`
	c, err := ParseString(src, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Devices()) != 2 {
		t.Errorf("devices = %d, want 2", len(c.Devices()))
	}
}

func TestFormatRoundTrips(t *testing.T) {
	c, err := ParseString(dividerNetlist, "x")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(c)
	c2, err := ParseString(text, "rt")
	if err != nil {
		t.Fatalf("Format output does not re-parse: %v\n%s", err, text)
	}
	if len(c2.Devices()) != len(c.Devices()) {
		t.Errorf("round trip lost devices: %d -> %d", len(c.Devices()), len(c2.Devices()))
	}
	e, err := sim.New(c2, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage(x, "mid"); math.Abs(got-5) > 1e-6 {
		t.Errorf("round-tripped V(mid) = %g", got)
	}
}

func TestFormatMOSFET(t *testing.T) {
	src := `
.model m nmos
M1 d g 0 m w=5u l=1u
Vd d 0 2
Vg g 0 2
`
	c, err := ParseString(src, "m")
	if err != nil {
		t.Fatal(err)
	}
	text := Format(c)
	if !strings.Contains(text, "M1 d g 0 nmos") {
		t.Errorf("Format output:\n%s", text)
	}
}
