package netlist

import (
	"fmt"
	"strings"
)

// Subcircuit support: SPICE-style .subckt / .ends definitions and X
// instantiation lines. Instances are flattened at parse time — internal
// nodes and device names are prefixed with the instance path
// ("X1.node"), ports are substituted with the caller's nets, and nested
// subcircuits expand recursively up to a fixed depth.
//
//	.subckt NAME port1 port2 ...
//	R1 port1 n1 10k        ; n1 is internal -> X?.n1
//	.ends
//	X1 netA netB NAME      ; instantiates NAME with ports bound
//
// The flattening prefix uses '.' which is an ordinary character in node
// names everywhere else in this package.

const maxSubcktDepth = 16

// elementKind returns the element letter of a (possibly instance-
// prefixed) device name: "X1.R5" -> "R".
func elementKind(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	if name == "" {
		return ""
	}
	return strings.ToUpper(name[:1])
}

type subckt struct {
	name  string
	ports []string
	lines []string // raw body device lines
}

// extractSubckts splits body lines into subcircuit definitions and
// the remaining top-level lines. Input lines carry a "lineno " prefix.
func extractSubckts(lines []string) (map[string]*subckt, []string, error) {
	defs := make(map[string]*subckt)
	var top []string
	var cur *subckt
	for _, l := range lines {
		n, body, _ := strings.Cut(l, " ")
		low := strings.ToLower(body)
		switch {
		case strings.HasPrefix(low, ".subckt"):
			if cur != nil {
				return nil, nil, fmt.Errorf("line %s: nested .subckt definition", n)
			}
			fields := strings.Fields(body)
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("line %s: .subckt needs a name and at least one port", n)
			}
			cur = &subckt{name: strings.ToLower(fields[1]), ports: fields[2:]}
		case strings.HasPrefix(low, ".ends"):
			if cur == nil {
				return nil, nil, fmt.Errorf("line %s: .ends without .subckt", n)
			}
			if _, dup := defs[cur.name]; dup {
				return nil, nil, fmt.Errorf("line %s: duplicate subcircuit %q", n, cur.name)
			}
			defs[cur.name] = cur
			cur = nil
		default:
			// .model cards are global even when written inside a
			// definition; hoist them so instances can reference them.
			if cur != nil && !strings.HasPrefix(low, ".model") {
				cur.lines = append(cur.lines, l)
			} else {
				top = append(top, l)
			}
		}
	}
	if cur != nil {
		return nil, nil, fmt.Errorf("unterminated .subckt %q", cur.name)
	}
	return defs, top, nil
}

// expandInstances replaces X lines with prefixed copies of their
// subcircuit bodies, recursively.
func expandInstances(lines []string, defs map[string]*subckt, depth int) ([]string, error) {
	if depth > maxSubcktDepth {
		return nil, fmt.Errorf("subcircuit nesting deeper than %d (recursive definition?)", maxSubcktDepth)
	}
	var out []string
	for _, l := range lines {
		n, body, _ := strings.Cut(l, " ")
		fields := strings.Fields(body)
		if len(fields) == 0 || elementKind(fields[0]) != "X" {
			out = append(out, l)
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %s: X line needs nets and a subcircuit name", n)
		}
		instName := fields[0]
		subName := strings.ToLower(fields[len(fields)-1])
		nets := fields[1 : len(fields)-1]
		def, ok := defs[subName]
		if !ok {
			return nil, fmt.Errorf("line %s: unknown subcircuit %q", n, subName)
		}
		if len(nets) != len(def.ports) {
			return nil, fmt.Errorf("line %s: %s has %d nets for %d ports of %q",
				n, instName, len(nets), len(def.ports), subName)
		}
		bind := make(map[string]string, len(def.ports))
		for i, p := range def.ports {
			bind[p] = nets[i]
		}
		for _, bl := range def.lines {
			bn, bbody, _ := strings.Cut(bl, " ")
			rewritten, err := prefixLine(bbody, instName, bind)
			if err != nil {
				return nil, fmt.Errorf("line %s (in %s): %w", bn, instName, err)
			}
			out = append(out, bn+" "+rewritten)
		}
	}
	// Another pass if any X lines came out of the expansion.
	for _, l := range out {
		_, body, _ := strings.Cut(l, " ")
		f := strings.Fields(body)
		if len(f) > 0 && elementKind(f[0]) == "X" {
			return expandInstances(out, defs, depth+1)
		}
	}
	return out, nil
}

// prefixLine rewrites one body line of a subcircuit for an instance:
// the device name and every internal node get the instance prefix, port
// nodes map to the bound nets, and ground stays ground.
func prefixLine(body, inst string, bind map[string]string) (string, error) {
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return body, nil
	}
	kind := elementKind(fields[0])
	nodeCount, ok := terminalCount[kind]
	if !ok {
		return "", fmt.Errorf("unsupported element %q inside subcircuit", fields[0])
	}
	if kind == "X" {
		// Keep X lines but rewrite their nets; the next expansion pass
		// resolves them.
		nodeCount = len(fields) - 2
	}
	if len(fields) < 1+nodeCount {
		return "", fmt.Errorf("element %q has too few terminals", fields[0])
	}
	out := make([]string, len(fields))
	out[0] = inst + "." + fields[0]
	for i := 1; i <= nodeCount; i++ {
		out[i] = mapNode(fields[i], inst, bind)
	}
	copy(out[1+nodeCount:], fields[1+nodeCount:])
	return strings.Join(out, " "), nil
}

// terminalCount maps element kinds to their node-argument counts.
var terminalCount = map[string]int{
	"R": 2, "C": 2, "L": 2, "D": 2, "V": 2, "I": 2,
	"E": 4, "G": 4, "M": 3, "Q": 3, "X": -1,
}

func mapNode(node, inst string, bind map[string]string) string {
	if bound, ok := bind[node]; ok {
		return bound
	}
	if isGroundName(node) {
		return "0"
	}
	return inst + "." + node
}

func isGroundName(n string) bool {
	switch n {
	case "0", "gnd", "GND", "":
		return true
	}
	return false
}
