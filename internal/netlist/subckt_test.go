package netlist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestSubcktFlattening(t *testing.T) {
	src := `
.title sub-divider
.subckt divider in out
R1 in out 1k
R2 out 0 1k
.ends
V1 top 0 10
X1 top mid divider
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.Device("X1.R1") == nil || c.Device("X1.R2") == nil {
		t.Fatalf("flattened devices missing: %s", c.String())
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage(x, "mid"); math.Abs(got-5) > 1e-6 {
		t.Errorf("V(mid) = %g, want 5", got)
	}
}

func TestSubcktInternalNodesPrefixed(t *testing.T) {
	src := `
.subckt rr a b
R1 a m 1k
R2 m b 1k
.ends
V1 in 0 4
X1 in out rr
RL out 0 2k
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	if !c.HasNode("X1.m") {
		t.Errorf("internal node not prefixed; nodes = %v", c.Nodes())
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	// 4 V across 1k+1k+2k -> 2 V at out.
	if got := e.Voltage(x, "out"); math.Abs(got-2) > 1e-6 {
		t.Errorf("V(out) = %g, want 2", got)
	}
}

func TestSubcktMultipleInstances(t *testing.T) {
	src := `
.subckt half a b
R1 a b 1k
.ends
V1 in 0 3
X1 in m half
X2 m 0 half
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage(x, "m"); math.Abs(got-1.5) > 1e-6 {
		t.Errorf("V(m) = %g, want 1.5", got)
	}
}

func TestSubcktNested(t *testing.T) {
	src := `
.subckt unit a b
R1 a b 1k
.ends
.subckt pair a b
X1 a m unit
X2 m b unit
.ends
V1 in 0 2
X9 in 0 pair
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	// Expect fully-flattened names like X9.X1.R1 and the nested internal
	// node X9.m.
	found := false
	for _, d := range c.Devices() {
		if strings.HasPrefix(d.Name(), "X9.X1.") {
			found = true
		}
	}
	if !found {
		t.Errorf("nested flattening missing: %s", c.String())
	}
	if !c.HasNode("X9.m") {
		t.Errorf("nested internal node missing; nodes = %v", c.Nodes())
	}
}

func TestSubcktWithMOSAndModel(t *testing.T) {
	src := `
.subckt inv in out vdd
.model n nmos
.model p pmos
MN out in 0 n w=10u l=1u
MP out in vdd p w=30u l=1u
.ends
Vdd vdd 0 5
Vin in 0 2.5
X1 in out vdd inv
RL out 0 10meg
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(c, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	x, err := e.OperatingPoint()
	if err != nil {
		t.Fatal(err)
	}
	v := e.Voltage(x, "out")
	if v < 0 || v > 5 {
		t.Errorf("inverter out = %g outside rails", v)
	}
}

func TestSubcktErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated": ".subckt s a\nR1 a 0 1k\n",
		"ends-without": ".ends\n",
		"nested-def":   ".subckt a x\n.subckt b y\n.ends\n.ends\n",
		"unknown-sub":  "V1 a 0 1\nX1 a nosuch\n",
		"port-arity":   ".subckt s a b\nR1 a b 1k\n.ends\nV1 x 0 1\nX1 x s\n",
		"dup-def":      ".subckt s a\nR1 a 0 1\n.ends\n.subckt s a\nR1 a 0 1\n.ends\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src, name); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSubcktRecursionBounded(t *testing.T) {
	src := `
.subckt loop a
X1 a loop
.ends
V1 n 0 1
X1 n loop
`
	if _, err := ParseString(src, "loop"); err == nil {
		t.Error("recursive subcircuit accepted")
	}
}

func TestSubcktGroundStaysGlobal(t *testing.T) {
	src := `
.subckt g a
R1 a 0 1k
.ends
V1 n 0 1
X1 n g
`
	c, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if strings.Contains(n, ".0") {
			t.Errorf("ground was prefixed: %v", c.Nodes())
		}
	}
}
