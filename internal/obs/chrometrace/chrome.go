// Package chrometrace converts a JSONL run journal into the Chrome
// trace-event format (the JSON object form with a traceEvents array),
// so any run opens directly in Perfetto or chrome://tracing.
//
// The mapping (documented in DESIGN.md §13):
//
//   - Every closed journal span becomes one complete ("X") event. Its
//     lane (Chrome tid) is the span name — one lane per phase — so the
//     timeline shows phase lanes: generate-all, optimize, impact-loop,
//     compact, coverage, sim.op, ... Slices carry the fault and config
//     of the span in their name ("optimize R3.short#2"), giving
//     per-fault slices inside the phase lane; the base phase name is
//     preserved in the event's cat field for tooling.
//   - Quarantines become global instant events (vertical line across
//     all lanes); retries, checkpoint writes/errors, resumes and fault
//     verdicts become thread-scoped instants on the lane of their
//     enclosing span (or the "events" lane when unparented).
//   - A span whose end attributes report woodbury_fallbacks > 0 (the
//     low-rank update guard tripped) additionally gets a thread-scoped
//     "guard_fallback" instant at its end timestamp.
//   - High-frequency point events (opt_iter, impact_step, cache_hit,
//     cache_miss) are dropped: they would dominate the file size while
//     the aggregate tables already report their counts.
//   - The whole run is one "run" slice on lane 0; a canceled run adds a
//     global "run_canceled" instant at the truncation point.
//
// Journal timestamps are nanoseconds since the run epoch; trace-event
// timestamps are microseconds, so every ts/dur divides by 1e3.
package chrometrace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// Event is one Chrome trace event (the subset of fields the viewers
// consume).
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is the object form of the trace-event format.
type Trace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

// pid is the single process every event lives in: one journal is one
// run.
const pid = 1

// instantScoped are the point-event names rendered as thread-scoped
// instants. quarantine is handled separately (global scope), and the
// high-frequency names are dropped entirely.
var instantScoped = map[string]bool{
	"retry":            true,
	"resume":           true,
	"checkpoint_write": true,
	"checkpoint_error": true,
	"fault_verdict":    true,
	"breaker_trip":     true,
	"breaker_reset":    true,
}

// dropped are the high-frequency point events excluded from the trace.
var dropped = map[string]bool{
	"opt_iter":    true,
	"impact_step": true,
	"cache_hit":   true,
	"cache_miss":  true,
}

// converter carries the lane table through one conversion pass.
type converter struct {
	lanes map[string]int
	order []string // lane names in allocation order (sort index)
	out   []Event
}

// lane returns the tid of a named lane, allocating on first use. Lane 0
// is reserved for the run slice.
func (c *converter) lane(name string) int {
	if tid, ok := c.lanes[name]; ok {
		return tid
	}
	tid := len(c.lanes) + 1
	c.lanes[name] = tid
	c.order = append(c.order, name)
	return tid
}

// Convert reads a JSONL journal and builds its Chrome trace. The
// journal is assumed schema-valid (run it through obs.Validate first);
// malformed JSON still errors, but semantic violations (unbalanced
// spans, missing terminal) degrade to a partial trace rather than
// failing — a truncated timeline of a crashed run is exactly when a
// timeline is most wanted.
func Convert(r io.Reader) (*Trace, error) {
	c := &converter{lanes: make(map[string]int)}
	// Open span_starts, by ID: attributes label the eventual slice, the
	// lane parents thread-scoped instants.
	type openSpan struct {
		name  string
		attrs map[string]any
	}
	open := make(map[uint64]*openSpan)
	var runAttrs map[string]any
	var lastTS int64
	terminal := ""

	dec := json.NewDecoder(r)
	for {
		var ev obs.Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		if ev.TS > lastTS {
			lastTS = ev.TS
		}
		switch ev.Type {
		case obs.TypeRunStart:
			runAttrs = ev.Attrs
		case obs.TypeSpanStart:
			open[ev.Span] = &openSpan{name: ev.Name, attrs: ev.Attrs}
		case obs.TypeSpanEnd:
			args := map[string]any{}
			if sp := open[ev.Span]; sp != nil {
				for k, v := range sp.attrs {
					args[k] = v
				}
				delete(open, ev.Span)
			}
			for k, v := range ev.Attrs {
				args[k] = v
			}
			tid := c.lane(ev.Name)
			// Retrospective spans (sim.*) may report a duration reaching
			// before the epoch; clamp their start like the tracer does.
			start := ev.TS - ev.Dur
			if start < 0 {
				start = 0
			}
			dur := float64(ev.TS-start) / 1e3
			if dur <= 0 {
				// Zero-width slices are invisible; clamp to 1ns.
				dur = 0.001
			}
			c.out = append(c.out, Event{
				Name: sliceName(ev.Name, args), Cat: ev.Name, Ph: "X",
				TS: float64(start) / 1e3, Dur: dur,
				Pid: pid, Tid: tid, Args: args,
			})
			if n, ok := args["woodbury_fallbacks"].(float64); ok && n > 0 {
				c.out = append(c.out, Event{
					Name: "guard_fallback", Cat: "guard", Ph: "i", Scope: "t",
					TS: float64(ev.TS) / 1e3, Pid: pid, Tid: tid,
					Args: map[string]any{"fallbacks": n},
				})
			}
		case obs.TypeEvent:
			switch {
			case ev.Name == "quarantine":
				c.out = append(c.out, Event{
					Name: sliceName(ev.Name, ev.Attrs), Cat: ev.Name, Ph: "i", Scope: "g",
					TS: float64(ev.TS) / 1e3, Pid: pid, Tid: c.lane("events"),
					Args: ev.Attrs,
				})
			case instantScoped[ev.Name]:
				tid := c.lane("events")
				if sp := open[ev.Span]; sp != nil {
					tid = c.lane(sp.name)
				}
				c.out = append(c.out, Event{
					Name: sliceName(ev.Name, ev.Attrs), Cat: ev.Name, Ph: "i", Scope: "t",
					TS: float64(ev.TS) / 1e3, Pid: pid, Tid: tid,
					Args: ev.Attrs,
				})
			case dropped[ev.Name]:
				// High-frequency: counts live in the report tables.
			default:
				// Unknown point events ride along thread-scoped so future
				// schema additions appear without a converter change.
				c.out = append(c.out, Event{
					Name: sliceName(ev.Name, ev.Attrs), Cat: ev.Name, Ph: "i", Scope: "t",
					TS: float64(ev.TS) / 1e3, Pid: pid, Tid: c.lane("events"),
					Args: ev.Attrs,
				})
			}
		case obs.TypeRunEnd, obs.TypeRunCanceled:
			terminal = ev.Type
		}
	}

	// The run slice spans the whole journal on lane 0.
	events := []Event{{
		Name: "run", Cat: "run", Ph: "X", TS: 0,
		Dur: maxf(float64(lastTS)/1e3, 0.001), Pid: pid, Tid: 0, Args: runAttrs,
	}}
	if terminal == obs.TypeRunCanceled {
		events = append(events, Event{
			Name: "run_canceled", Cat: "run", Ph: "i", Scope: "g",
			TS: float64(lastTS) / 1e3, Pid: pid, Tid: 0,
		})
	}
	events = append(events, c.out...)

	// Name the lanes and pin their order: run first, then phases in
	// first-appearance order (generation before compaction before
	// coverage for a typical journal).
	events = append(events, meta("process_name", 0, map[string]any{"name": processName(runAttrs)}))
	events = append(events, meta("thread_name", 0, map[string]any{"name": "run"}),
		meta("thread_sort_index", 0, map[string]any{"sort_index": 0}))
	for i, name := range c.order {
		tid := c.lanes[name]
		events = append(events, meta("thread_name", tid, map[string]any{"name": name}),
			meta("thread_sort_index", tid, map[string]any{"sort_index": i + 1}))
	}
	return &Trace{TraceEvents: events, DisplayTimeUnit: "ms"}, nil
}

// meta builds a metadata record (process/thread naming).
func meta(name string, tid int, args map[string]any) Event {
	return Event{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

// processName labels the process track from the run_start attributes.
func processName(attrs map[string]any) string {
	if cmd, ok := attrs["cmd"].(string); ok {
		return "atpg run (" + cmd + ")"
	}
	return "atpg run"
}

// sliceName labels a slice with its fault (and config) so per-fault
// work is readable without opening the args pane.
func sliceName(base string, attrs map[string]any) string {
	f, _ := attrs["fault"].(string)
	if f == "" {
		return base
	}
	if cfg, ok := attrs["config"].(float64); ok {
		return fmt.Sprintf("%s %s#%d", base, f, int64(cfg))
	}
	return base + " " + f
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Stats summarizes a validated trace.
type Stats struct {
	// Events is the total record count, Complete the number of "X"
	// events per category (the base span name).
	Events   int
	Complete map[string]int
}

// Validate decodes a Chrome trace (object form or bare event array),
// checks structural invariants — known phase letters, non-negative
// timestamps and durations, names on slices, one pid — and that every
// category in requireComplete has at least one complete event. This is
// the CI gate behind `obslint -chrome`.
func Validate(r io.Reader, requireComplete []string) (Stats, error) {
	var st Stats
	raw, err := io.ReadAll(r)
	if err != nil {
		return st, err
	}
	var events []Event
	var obj Trace
	if err := json.Unmarshal(raw, &obj); err == nil && obj.TraceEvents != nil {
		events = obj.TraceEvents
	} else if err := json.Unmarshal(raw, &events); err != nil {
		return st, fmt.Errorf("chrometrace: neither a trace object nor an event array: %w", err)
	}
	st.Complete = make(map[string]int)
	for i, ev := range events {
		switch ev.Ph {
		case "X":
			if ev.Name == "" {
				return st, fmt.Errorf("chrometrace: event %d: complete event without a name", i)
			}
			if ev.Dur < 0 {
				return st, fmt.Errorf("chrometrace: event %d (%s): negative duration %g", i, ev.Name, ev.Dur)
			}
			cat := ev.Cat
			if cat == "" {
				cat = ev.Name
			}
			st.Complete[cat]++
		case "i", "I":
			if ev.Scope != "" && ev.Scope != "g" && ev.Scope != "p" && ev.Scope != "t" {
				return st, fmt.Errorf("chrometrace: event %d (%s): bad instant scope %q", i, ev.Name, ev.Scope)
			}
		case "M", "B", "E", "b", "e", "n", "C":
			// Accepted without further checks.
		default:
			return st, fmt.Errorf("chrometrace: event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
		if ev.TS < 0 {
			return st, fmt.Errorf("chrometrace: event %d (%s): negative timestamp", i, ev.Name)
		}
		st.Events++
	}
	missing := []string{}
	for _, cat := range requireComplete {
		if st.Complete[cat] == 0 {
			missing = append(missing, cat)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return st, fmt.Errorf("chrometrace: no complete events in categories %v", missing)
	}
	return st, nil
}
