package chrometrace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// journalFor traces a miniature run through the real tracer + journal,
// so the converter consumes exactly what production writes.
func journalFor(t *testing.T, cancel bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	tr := obs.New(j, obs.String("cmd", "test"))
	ctx := context.Background()

	gctx, gen := tr.Start(ctx, "generate-all", obs.Int("faults", 2))
	octx, opt := tr.Start(gctx, "optimize", obs.String("fault", "R3.short"), obs.Int("config", 2))
	tr.Event(octx, "retry", obs.Int("attempt", 1))
	tr.Event(octx, "opt_iter", obs.Int("i", 0)) // high-frequency: must be dropped
	opt.End(obs.F64("soft_s", 1.5))
	tr.Complete("sim.op", 5*time.Millisecond, obs.I64("woodbury_fallbacks", 3))
	tr.Event(gctx, "quarantine", obs.String("fault", "C1.open"), obs.String("phase", "optimize"))
	gen.End()
	_, cp := tr.Start(ctx, "compact")
	cp.End()
	_, cov := tr.Start(ctx, "coverage")
	cov.End()
	if cancel {
		tr.Finish(context.Canceled)
	} else {
		tr.Finish(nil)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestConvertShape(t *testing.T) {
	raw := journalFor(t, false)
	tr, err := Convert(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The output must validate through its own gate, with a complete
	// event in every phase of the mini run.
	st, err := Validate(bytes.NewReader(out),
		[]string{"run", "generate-all", "optimize", "compact", "coverage", "sim.op"})
	if err != nil {
		t.Fatalf("self-validation: %v\n%s", err, out)
	}
	if st.Complete["optimize"] != 1 {
		t.Fatalf("optimize complete events = %d, want 1", st.Complete["optimize"])
	}

	byName := map[string][]Event{}
	lanes := map[int]string{}
	for _, ev := range tr.TraceEvents {
		byName[ev.Name] = append(byName[ev.Name], ev)
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes[ev.Tid] = ev.Args["name"].(string)
		}
	}

	// Per-fault slice naming, on the phase's own lane.
	opt := byName["optimize R3.short#2"]
	if len(opt) != 1 || opt[0].Ph != "X" || opt[0].Cat != "optimize" {
		t.Fatalf("optimize slice: %+v", opt)
	}
	if lanes[opt[0].Tid] != "optimize" {
		t.Fatalf("optimize slice on lane %q", lanes[opt[0].Tid])
	}
	if opt[0].Args["soft_s"] != 1.5 {
		t.Fatalf("span_end attrs not merged into args: %v", opt[0].Args)
	}

	// Quarantine: global instant. Retry: thread instant on the lane of
	// its enclosing span (optimize). Guard fallback: instant on sim.op.
	q := byName["quarantine C1.open"]
	if len(q) != 1 || q[0].Ph != "i" || q[0].Scope != "g" {
		t.Fatalf("quarantine instant: %+v", q)
	}
	r := byName["retry"]
	if len(r) != 1 || r[0].Scope != "t" || lanes[r[0].Tid] != "optimize" {
		t.Fatalf("retry instant: %+v (lane %q)", r, lanes[r[0].Tid])
	}
	g := byName["guard_fallback"]
	if len(g) != 1 || lanes[g[0].Tid] != "sim.op" || g[0].Args["fallbacks"] != float64(3) {
		t.Fatalf("guard_fallback instant: %+v", g)
	}

	// High-frequency events must not leak into the trace.
	if len(byName["opt_iter"]) != 0 {
		t.Fatal("opt_iter leaked into the trace")
	}

	// The run slice covers every other event.
	run := byName["run"][0]
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" && ev.TS+ev.Dur > run.TS+run.Dur+1e-9 {
			t.Fatalf("slice %q (%g+%g) outruns the run slice (%g)", ev.Name, ev.TS, ev.Dur, run.Dur)
		}
	}
}

func TestConvertCanceledRun(t *testing.T) {
	tr, err := Convert(bytes.NewReader(journalFor(t, true)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tr.TraceEvents {
		if ev.Name == "run_canceled" && ev.Ph == "i" && ev.Scope == "g" {
			found = true
		}
	}
	if !found {
		t.Fatal("no run_canceled instant")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"traceEvents": [`,
		"unknown phase":  `{"traceEvents": [{"name":"x","ph":"Z","ts":0,"pid":1,"tid":1}]}`,
		"negative ts":    `{"traceEvents": [{"name":"x","ph":"X","ts":-1,"dur":1,"pid":1,"tid":1}]}`,
		"negative dur":   `{"traceEvents": [{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"nameless slice": `{"traceEvents": [{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"bad scope":      `{"traceEvents": [{"name":"x","ph":"i","s":"q","ts":0,"pid":1,"tid":1}]}`,
	}
	for name, doc := range cases {
		if _, err := Validate(strings.NewReader(doc), nil); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// Missing required category is an error that names the category.
	doc := `{"traceEvents": [{"name":"x","cat":"compact","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`
	_, err := Validate(strings.NewReader(doc), []string{"compact", "coverage"})
	if err == nil || !strings.Contains(err.Error(), "coverage") {
		t.Fatalf("missing-category error: %v", err)
	}
	// Bare arrays (the legacy trace format) are accepted.
	if _, err := Validate(strings.NewReader(`[{"name":"x","ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]`), nil); err != nil {
		t.Fatalf("bare array rejected: %v", err)
	}
}
