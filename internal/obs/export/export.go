// Package export is the live observability surface of a run: an opt-in
// HTTP listener serving expvar-style JSON snapshots of the engine and
// solver metrics, a /progress endpoint (units done/total, current phase,
// ETA), a /healthz liveness endpoint, and net/http/pprof for on-line
// profiling.
//
// The server is wired with snapshot providers rather than concrete
// types, so it has no dependency on the engine or core packages; the
// cmds pass closures over Session.Metrics and obs.Progress.Snapshot.
// Providers must be safe for concurrent use (both the engine metrics
// snapshot and the progress tracker are copy-on-read over atomics).
//
// Register mounts the endpoints on any mux, so long-lived hosts (the
// job daemon) reuse the same routes without this package owning their
// listener; Serve remains the one-shot listener used by cmd/atpg
// -listen.
package export

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/obs"
)

// Options wires the export endpoints.
type Options struct {
	// Addr is the listen address (":6060", "127.0.0.1:0", ...). Only
	// Serve reads it; Register mounts on a caller-owned mux.
	Addr string
	// Metrics returns the current metrics snapshot; it is marshaled to
	// JSON as-is on every /metrics request. Nil disables the endpoint.
	Metrics func() any
	// Progress returns the run's progress snapshot. Nil disables
	// /progress.
	Progress func() obs.ProgressSnapshot
	// Prom, when non-nil, enables Prometheus text exposition (format
	// 0.0.4) on /metrics via Accept-header content negotiation: a request
	// whose Accept header names text/plain (or the versioned exposition
	// media type) gets the callback's output; everything else — including
	// no Accept header at all — keeps the JSON snapshot, so existing
	// scrapers see no change.
	Prom func(w io.Writer)
	// Health returns the process's health snapshot, marshaled as-is on
	// /healthz with status 200 when ok is true and 503 when false. Nil
	// enables a trivial always-ok /healthz.
	Health func() (body any, ok bool)
	// Ready, when non-nil, mounts /readyz: readiness as distinct from
	// liveness. A draining job server is alive (healthz ok) but not
	// accepting work (readyz 503), which is what load balancers and
	// rolling restarts key on.
	Ready func() (body any, ok bool)
	// Index disables the "/" usage page when false-returning hosts want
	// to own the root route. Serve always mounts it.
	NoIndex bool
}

// Register mounts the export endpoints (/metrics, /progress, /healthz,
// /debug/pprof/*, and the "/" usage page unless o.NoIndex) on mux.
func Register(mux *http.ServeMux, o Options) {
	if !o.NoIndex {
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/" {
				http.NotFound(w, r)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "atpg observability\n\n/metrics   engine + solver counters (JSON; Prometheus text with Accept: text/plain)\n/progress  run progress (JSON)\n/healthz   liveness (JSON)\n/readyz    readiness (JSON; only on hosts that distinguish it)\n/debug/pprof/  profiling\n")
		})
	}
	if o.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			// Snapshots are point-in-time by construction; a cached reply
			// would defeat the endpoint.
			w.Header().Set("Cache-Control", "no-store")
			if o.Prom != nil && acceptsPromText(r.Header.Get("Accept")) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				o.Prom(w)
				return
			}
			WriteJSON(w, o.Metrics())
		})
	}
	if o.Progress != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Cache-Control", "no-store")
			s := o.Progress()
			// Augment the raw snapshot with human-friendly fields.
			WriteJSON(w, map[string]any{
				"phase":         s.Phase,
				"done":          s.Done,
				"total":         s.Total,
				"percent":       s.Percent(),
				"elapsed":       s.Elapsed.String(),
				"phase_elapsed": s.PhaseElapsed.String(),
				"eta":           s.ETA.String(),
				"eta_ns":        int64(s.ETA),
			})
		})
	}
	health := o.Health
	if health == nil {
		health = func() (any, bool) { return map[string]any{"status": "ok"}, true }
	}
	probe := func(check func() (any, bool)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body, ok := check()
			if !ok {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				_ = enc.Encode(body)
				return
			}
			WriteJSON(w, body)
		}
	}
	mux.HandleFunc("/healthz", probe(health))
	if o.Ready != nil {
		mux.HandleFunc("/readyz", probe(o.Ready))
	}
	// pprof on the private mux (the default mux may not be ours to own).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server is a running export listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds the listener and starts serving in a background
// goroutine. It returns once the address is bound, so Addr() is
// immediately meaningful (useful with ":0").
func Serve(o Options) (*Server, error) {
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return nil, fmt.Errorf("export: listen %s: %w", o.Addr, err)
	}
	mux := http.NewServeMux()
	o.NoIndex = false
	Register(mux, o)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// acceptsPromText reports whether the Accept header prefers the
// Prometheus text exposition over JSON. Deliberately simple: any
// mention of text/plain (what Prometheus scrapers send, with or without
// the version parameter) opts in; absence, */* and application/json
// keep the JSON default.
func acceptsPromText(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == "text/plain" {
			return true
		}
	}
	return false
}

// WriteJSON writes v as indented JSON with status 200 (the endpoints
// are for humans and scrapers alike; indented JSON keeps curl output
// readable).
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
