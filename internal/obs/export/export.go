// Package export is the live observability surface of a run: an opt-in
// HTTP listener serving expvar-style JSON snapshots of the engine and
// solver metrics, a /progress endpoint (units done/total, current phase,
// ETA), and net/http/pprof for on-line profiling.
//
// The server is wired with snapshot providers rather than concrete
// types, so it has no dependency on the engine or core packages; the
// cmds pass closures over Session.Metrics and obs.Progress.Snapshot.
// Providers must be safe for concurrent use (both the engine metrics
// snapshot and the progress tracker are copy-on-read over atomics).
package export

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/obs"
)

// Options wires a Server.
type Options struct {
	// Addr is the listen address (":6060", "127.0.0.1:0", ...).
	Addr string
	// Metrics returns the current metrics snapshot; it is marshaled to
	// JSON as-is on every /metrics request. Nil disables the endpoint.
	Metrics func() any
	// Progress returns the run's progress snapshot. Nil disables
	// /progress.
	Progress func() obs.ProgressSnapshot
}

// Server is a running export listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds the listener and starts serving in a background
// goroutine. It returns once the address is bound, so Addr() is
// immediately meaningful (useful with ":0").
func Serve(o Options) (*Server, error) {
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return nil, fmt.Errorf("export: listen %s: %w", o.Addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "atpg observability\n\n/metrics   engine + solver counters (JSON)\n/progress  run progress (JSON)\n/debug/pprof/  profiling\n")
	})
	if o.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, o.Metrics())
		})
	}
	if o.Progress != nil {
		mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
			s := o.Progress()
			// Augment the raw snapshot with human-friendly fields.
			writeJSON(w, map[string]any{
				"phase":         s.Phase,
				"done":          s.Done,
				"total":         s.Total,
				"percent":       s.Percent(),
				"elapsed":       s.Elapsed.String(),
				"phase_elapsed": s.PhaseElapsed.String(),
				"eta":           s.ETA.String(),
				"eta_ns":        int64(s.ETA),
			})
		})
	}
	// pprof on the private mux (the default mux may not be ours to own).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// writeJSON marshals v with indentation (the endpoints are for humans
// and scrapers alike; indented JSON keeps curl output readable).
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
