package export

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestServeEndpoints: /metrics and /progress serve the providers'
// snapshots as JSON, and pprof answers on the private mux.
func TestServeEndpoints(t *testing.T) {
	prog := obs.NewProgress()
	prog.SetPhase("optimize", 10)
	prog.Step(4)
	srv, err := Serve(Options{
		Addr:     "127.0.0.1:0",
		Metrics:  func() any { return map[string]any{"solves": 42} },
		Progress: prog.Snapshot,
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if m["solves"] != float64(42) {
		t.Fatalf("/metrics solves = %v, want 42", m["solves"])
	}

	code, body = get(t, base+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var p map[string]any
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if p["phase"] != "optimize" || p["done"] != float64(4) || p["total"] != float64(10) {
		t.Fatalf("/progress payload wrong: %v", p)
	}
	if p["percent"] != float64(40) {
		t.Fatalf("/progress percent = %v, want 40", p["percent"])
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	code, _ = get(t, base+"/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// TestServeNilProviders: endpoints without providers 404 instead of
// panicking.
func TestServeNilProviders(t *testing.T) {
	srv, err := Serve(Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics without provider: status %d, want 404", code)
	}
	if code, _ := get(t, base+"/progress"); code != http.StatusNotFound {
		t.Fatalf("/progress without provider: status %d, want 404", code)
	}
}
