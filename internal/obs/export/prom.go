package export

// Prometheus text exposition, format 0.0.4 — the scrape surface of
// /metrics under `Accept: text/plain`. The writer half (PromText,
// PromFromMetrics) renders counters, gauges and cumulative histogram
// buckets; the parser half (ParseProm) is a minimal in-repo validator
// so the round-trip tests and CI need no promtool.
//
// Histograms come in as api.HistogramSnapshot (non-cumulative log-linear
// buckets, nanoseconds for duration series) and go out in the cumulative
// `le` convention Prometheus requires: each _bucket sample counts every
// observation at or below its upper bound, ending at le="+Inf" == _count.
// Cumulative buckets are what make histogram series mergeable across
// scrapes and rate()-able per bucket — the non-cumulative wire shape
// would break both.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/api"
)

// PromLabels is an ordered label set ({{"phase", "optimize"}, ...}).
// Order is preserved on output so expositions are deterministic.
type PromLabels [][2]string

// PromText accumulates one exposition payload. The zero value is ready
// to use. Emit every sample of a family together (header once, then
// samples); the format forbids interleaving families.
type PromText struct {
	b      bytes.Buffer
	headed map[string]bool
}

// header writes the # HELP / # TYPE preamble once per family.
func (p *PromText) header(name, help, typ string) {
	if p.headed[name] {
		return
	}
	if p.headed == nil {
		p.headed = make(map[string]bool)
	}
	p.headed[name] = true
	fmt.Fprintf(&p.b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(&p.b, "# TYPE %s %s\n", name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// sample writes one sample line.
func (p *PromText) sample(name string, labels PromLabels, v float64) {
	p.b.WriteString(name)
	if len(labels) > 0 {
		p.b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				p.b.WriteByte(',')
			}
			fmt.Fprintf(&p.b, `%s="%s"`, kv[0], escapeLabel(kv[1]))
		}
		p.b.WriteByte('}')
	}
	p.b.WriteByte(' ')
	p.b.WriteString(formatPromValue(v))
	p.b.WriteByte('\n')
}

// formatPromValue renders a sample value ("+Inf"/"-Inf"/"NaN" spelled
// the way the format requires).
func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter sample.
func (p *PromText) Counter(name, help string, labels PromLabels, v float64) {
	p.header(name, help, "counter")
	p.sample(name, labels, v)
}

// Gauge emits one gauge sample.
func (p *PromText) Gauge(name, help string, labels PromLabels, v float64) {
	p.header(name, help, "gauge")
	p.sample(name, labels, v)
}

// Histogram emits one histogram series: cumulative _bucket samples per
// upper bound, the le="+Inf" bucket, _sum and _count. Bucket bounds and
// the sum are multiplied by scale (1e-9 turns nanosecond snapshots into
// the seconds Prometheus conventions expect; 1 keeps unitless values).
func (p *PromText) Histogram(name, help string, labels PromLabels, h api.HistogramSnapshot, scale float64) {
	p.header(name, help, "histogram")
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		le := append(append(PromLabels{}, labels...),
			[2]string{"le", formatPromValue(float64(b.Hi) * scale)})
		p.sample(name+"_bucket", le, float64(cum))
	}
	inf := append(append(PromLabels{}, labels...), [2]string{"le", "+Inf"})
	p.sample(name+"_bucket", inf, float64(h.Count))
	p.sample(name+"_sum", labels, float64(h.Sum)*scale)
	p.sample(name+"_count", labels, float64(h.Count))
}

// Bytes returns the accumulated exposition.
func (p *PromText) Bytes() []byte { return p.b.Bytes() }

// WriteTo writes the accumulated exposition to w.
func (p *PromText) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(p.b.Bytes())
	return int64(n), err
}

// PromFromMetrics renders an engine metrics snapshot as the atpg_*
// series: per-phase duration histograms and unit counters, the
// sub-engine duration histograms (sim.* series), the nominal-cache and
// solver-kernel counters, and the task-panic counter. It is the shared
// engine exposition of both `atpg -listen` and the running/last job of
// atpgd.
func PromFromMetrics(p *PromText, m api.MetricsSnapshot) {
	for _, ph := range m.Phases {
		p.Counter("atpg_phase_units_total", "Completed units per engine phase.",
			PromLabels{{"phase", ph.Name}}, float64(ph.Count))
		p.Counter("atpg_phase_wall_seconds_total", "Summed wall time per engine phase.",
			PromLabels{{"phase", ph.Name}}, float64(ph.WallNS)/1e9)
	}
	for _, ph := range m.Phases {
		if ph.Latency != nil && ph.Latency.Count > 0 {
			p.Histogram("atpg_duration_seconds", "Latency distributions of the generation run (per-phase units and per-analysis solves).",
				PromLabels{{"series", "phase:" + ph.Name}}, *ph.Latency, 1e-9)
		}
	}
	for _, d := range m.Durations {
		if d.Count == 0 {
			continue
		}
		if d.Name == "sim.newton_iters" {
			p.Histogram("atpg_newton_iterations", "Newton iterations per analysis (value histogram, unitless).",
				nil, d.HistogramSnapshot, 1)
			continue
		}
		p.Histogram("atpg_duration_seconds", "Latency distributions of the generation run (per-phase units and per-analysis solves).",
			PromLabels{{"series", d.Name}}, d.HistogramSnapshot, 1e-9)
	}
	c := m.Cache
	p.Counter("atpg_cache_hits_total", "Nominal-cache hits.", nil, float64(c.Hits))
	p.Counter("atpg_cache_misses_total", "Nominal-cache misses.", nil, float64(c.Misses))
	p.Counter("atpg_cache_shared_total", "Nominal-cache lookups that joined an in-flight simulation.", nil, float64(c.Shared))
	p.Counter("atpg_cache_evictions_total", "Nominal-cache evictions.", nil, float64(c.Evictions))
	p.Gauge("atpg_cache_entries", "Nominal-cache resident entries.", nil, float64(c.Entries))
	sv := m.Solver
	solver := []struct {
		what string
		v    uint64
	}{
		{"stamps", sv.Stamps},
		{"factorizations", sv.Factorizations},
		{"factor_reuses", sv.FactorReuses},
		{"newton_iterations", sv.NewtonIterations},
		{"solves", sv.Solves},
		{"base_builds", sv.BaseBuilds},
		{"base_hits", sv.BaseHits},
		{"recovery_attempts", sv.RecoveryAttempts},
		{"recoveries", sv.Recoveries},
		{"woodbury_solves", sv.WoodburySolves},
		{"woodbury_fallbacks", sv.WoodburyFallbacks},
		{"faulty_factor_avoided", sv.FaultyFactorAvoided},
	}
	for _, s := range solver {
		p.Counter("atpg_solver_ops_total", "Simulation-kernel work counters, split by kind.",
			PromLabels{{"kind", s.what}}, float64(s.v))
	}
	p.Counter("atpg_task_panics_total", "Panics recovered at the task isolation boundary.", nil, float64(m.TaskPanics))
	p.Counter("atpg_breaker_trips_total", "Low-rank circuit-breaker trips (sessions pinned to the slow path).", nil, float64(m.BreakerTrips))
	open := 0.0
	if m.BreakerOpen {
		open = 1
	}
	p.Gauge("atpg_breaker_open", "Whether the low-rank circuit breaker is currently open (1 = slow path pinned).", nil, open)
}

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name (family name plus any _bucket/_sum/
	// _count suffix).
	Name   string
	Labels map[string]string
	Value  float64
}

// PromDoc is a parsed and validated exposition.
type PromDoc struct {
	Samples []PromSample
	// Types maps family name → declared TYPE.
	Types map[string]string
}

// Family returns the samples belonging to the named family, including a
// histogram family's _bucket/_sum/_count samples.
func (d *PromDoc) Family(name string) []PromSample {
	var out []PromSample
	for _, s := range d.Samples {
		if s.Name == name {
			out = append(out, s)
			continue
		}
		if d.Types[name] == "histogram" &&
			(s.Name == name+"_bucket" || s.Name == name+"_sum" || s.Name == name+"_count") {
			out = append(out, s)
		}
	}
	return out
}

// ParseProm parses and validates a text exposition (format 0.0.4). It
// is deliberately minimal — the subset this package emits — but strict
// within it: malformed lines, samples of a histogram family without a
// TYPE header, non-monotonic cumulative buckets, and le="+Inf" buckets
// disagreeing with _count are all errors. The tests round-trip PromText
// through it, and CI uses it (via cmd/obslint) instead of promtool.
func ParseProm(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = strings.TrimSpace(fields[3])
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("prom: line %d: unknown TYPE %q for %s", lineNo, typ, name)
				}
				if _, dup := doc.Types[name]; dup {
					return nil, fmt.Errorf("prom: line %d: duplicate TYPE for %s", lineNo, name)
				}
				doc.Types[name] = typ
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("prom: line %d: %w", lineNo, err)
		}
		doc.Samples = append(doc.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prom: %w", err)
	}
	if err := doc.validate(); err != nil {
		return nil, err
	}
	return doc, nil
}

// parsePromSample parses `name{k="v",...} value`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQ := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQ && rest[i] == '\\':
				i++
			case rest[i] == '"':
				inQ = !inQ
			case !inQ && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		s.Labels = map[string]string{}
		for _, pair := range splitLabels(rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			k := strings.TrimSpace(pair[:eq])
			v := strings.TrimSpace(pair[eq+1:])
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("unquoted label value %q", pair)
			}
			u := strings.NewReplacer(`\\`, `\`, `\"`, `"`, `\n`, "\n")
			s.Labels[k] = u.Replace(v[1 : len(v)-1])
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; this package never emits one,
	// so take the first field only.
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		rest = rest[:i]
	}
	v, err := parsePromValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	start, inQ := 0, false
	for i := 0; i < len(body); i++ {
		switch {
		case inQ && body[i] == '\\':
			i++
		case body[i] == '"':
			inQ = !inQ
		case !inQ && body[i] == ',':
			out = append(out, body[start:i])
			start = i + 1
		}
	}
	if strings.TrimSpace(body[start:]) != "" {
		out = append(out, body[start:])
	}
	return out
}

// parsePromValue parses a sample value, accepting the format's infinity
// spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// validate checks the histogram invariants: every histogram family's
// series (grouped by labels minus le) must have monotonically
// non-decreasing cumulative buckets ordered by le, an le="+Inf" bucket,
// and _count equal to it.
func (d *PromDoc) validate() error {
	for _, s := range d.Samples {
		fam := s.Name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(s.Name, suf) && d.Types[strings.TrimSuffix(s.Name, suf)] == "histogram" {
				fam = strings.TrimSuffix(s.Name, suf)
			}
		}
		if _, ok := d.Types[fam]; !ok {
			return fmt.Errorf("prom: sample %s has no TYPE header", s.Name)
		}
	}
	type series struct {
		les    []float64
		counts []float64
		count  float64
		hasCnt bool
	}
	groups := map[string]*series{}
	key := func(fam string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(fam)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%s", k, labels[k])
		}
		return b.String()
	}
	for _, s := range d.Samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket") && d.Types[strings.TrimSuffix(s.Name, "_bucket")] == "histogram":
			fam := strings.TrimSuffix(s.Name, "_bucket")
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("prom: %s_bucket without le label", fam)
			}
			lev, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("prom: %s_bucket: bad le %q", fam, le)
			}
			g := groups[key(fam, s.Labels)]
			if g == nil {
				g = &series{}
				groups[key(fam, s.Labels)] = g
			}
			g.les = append(g.les, lev)
			g.counts = append(g.counts, s.Value)
		case strings.HasSuffix(s.Name, "_count") && d.Types[strings.TrimSuffix(s.Name, "_count")] == "histogram":
			fam := strings.TrimSuffix(s.Name, "_count")
			g := groups[key(fam, s.Labels)]
			if g == nil {
				g = &series{}
				groups[key(fam, s.Labels)] = g
			}
			g.count = s.Value
			g.hasCnt = true
		}
	}
	for k, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("prom: histogram series %s has no buckets", k)
		}
		lastInf := g.les[len(g.les)-1]
		if !math.IsInf(lastInf, 1) {
			return fmt.Errorf("prom: histogram series %s missing le=\"+Inf\" bucket", k)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("prom: histogram series %s: le not increasing at %v", k, g.les[i])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("prom: histogram series %s: cumulative count decreases at le=%v", k, g.les[i])
			}
		}
		if !g.hasCnt {
			return fmt.Errorf("prom: histogram series %s has no _count", k)
		}
		if g.count != g.counts[len(g.counts)-1] {
			return fmt.Errorf("prom: histogram series %s: _count %v != le=\"+Inf\" bucket %v", k, g.count, g.counts[len(g.counts)-1])
		}
	}
	return nil
}
