package export

import (
	"bytes"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/api"
)

// sampleSnapshot builds a metrics snapshot with every series kind the
// exposition renders: phases with latency histograms, sub-engine
// durations (including the unitless newton_iters series), cache, solver
// and panic counters.
func sampleSnapshot() api.MetricsSnapshot {
	lat := api.HistogramSnapshot{
		Count: 3, Sum: 1600, Min: 100, Max: 1000, P50: 496, P90: 1008, P99: 1008,
		Buckets: []api.HistogramBucket{
			{Lo: 96, Hi: 99, Count: 1},
			{Lo: 480, Hi: 495, Count: 1},
			{Lo: 992, Hi: 1023, Count: 1},
		},
	}
	return api.MetricsSnapshot{
		V: api.Version,
		Phases: []api.PhaseMetrics{
			{Name: "optimize", Count: 3, WallNS: 1600, Latency: &lat},
			{Name: "box-build", Count: 2, WallNS: 400},
		},
		Durations: []api.NamedHistogram{
			{Name: "sim.op", HistogramSnapshot: lat},
			{Name: "sim.newton_iters", HistogramSnapshot: api.HistogramSnapshot{
				Count: 2, Sum: 9, Min: 4, Max: 5, P50: 4, P90: 5, P99: 5,
				Buckets: []api.HistogramBucket{{Lo: 4, Hi: 4, Count: 1}, {Lo: 5, Hi: 5, Count: 1}},
			}},
		},
		Cache:      api.CacheMetrics{Hits: 10, Misses: 4, Shared: 1, Evictions: 0, Entries: 4},
		Solver:     api.SolverMetrics{Stamps: 100, Solves: 7, NewtonIterations: 9},
		TaskPanics: 1,
	}
}

// TestPromRoundTrip renders an exposition and re-parses it with the
// in-repo parser: every histogram invariant (TYPE headers, cumulative
// monotone buckets, le="+Inf" == _count) must validate, and the parsed
// values must match what went in.
func TestPromRoundTrip(t *testing.T) {
	p := &PromText{}
	PromFromMetrics(p, sampleSnapshot())
	doc, err := ParseProm(bytes.NewReader(p.Bytes()))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, p.Bytes())
	}
	if doc.Types["atpg_duration_seconds"] != "histogram" {
		t.Fatalf("atpg_duration_seconds type %q, want histogram", doc.Types["atpg_duration_seconds"])
	}
	fam := doc.Family("atpg_duration_seconds")
	var buckets, sums, counts int
	var phaseCount float64
	for _, s := range fam {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			buckets++
		case strings.HasSuffix(s.Name, "_sum"):
			sums++
		case strings.HasSuffix(s.Name, "_count"):
			counts++
			if s.Labels["series"] == "phase:optimize" {
				phaseCount = s.Value
			}
		}
	}
	// Two series (phase:optimize, sim.op), 3 finite + 1 inf bucket each.
	if buckets != 8 || sums != 2 || counts != 2 {
		t.Fatalf("duration family: %d buckets, %d sums, %d counts", buckets, sums, counts)
	}
	if phaseCount != 3 {
		t.Fatalf("phase:optimize _count = %v, want 3", phaseCount)
	}
	// Seconds scaling: the sim.op sum is 1600ns.
	for _, s := range fam {
		if strings.HasSuffix(s.Name, "_sum") && s.Labels["series"] == "sim.op" {
			if math.Abs(s.Value-1600e-9) > 1e-15 {
				t.Fatalf("sim.op _sum = %v, want 1.6e-06", s.Value)
			}
		}
	}
	// The unitless newton family must not be rescaled.
	for _, s := range doc.Family("atpg_newton_iterations") {
		if strings.HasSuffix(s.Name, "_sum") && s.Value != 9 {
			t.Fatalf("newton _sum = %v, want 9", s.Value)
		}
	}
	// Counters made it through with their values.
	hit := false
	for _, s := range doc.Samples {
		if s.Name == "atpg_cache_hits_total" {
			hit = true
			if s.Value != 10 {
				t.Fatalf("cache hits = %v, want 10", s.Value)
			}
		}
	}
	if !hit {
		t.Fatal("atpg_cache_hits_total missing")
	}
}

// TestParsePromRejectsInvalid: the validator is not a rubber stamp.
func TestParsePromRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"no type header": "orphan_total 3\n",
		"decreasing cumulative": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 7\n",
		"unterminated labels": "# TYPE c counter\nc_total{a=\"b 3\n",
		"bad value":           "# TYPE c counter\nc_total wat\n",
	}
	for name, in := range cases {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestParsePromLabelEscapes: quoted commas, escaped quotes and
// backslashes survive the round trip.
func TestParsePromLabelEscapes(t *testing.T) {
	p := &PromText{}
	p.Counter("weird_total", "Labels with everything.",
		PromLabels{{"a", `x,y"z\w`}, {"b", "line\nbreak"}}, 1)
	doc, err := ParseProm(bytes.NewReader(p.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, p.Bytes())
	}
	s := doc.Samples[0]
	if s.Labels["a"] != `x,y"z\w` || s.Labels["b"] != "line\nbreak" {
		t.Fatalf("labels mangled: %q", s.Labels)
	}
}

// TestMetricsContentNegotiation: text/plain gets the exposition with
// the versioned content type, everything else keeps JSON, and both
// carry Cache-Control: no-store.
func TestMetricsContentNegotiation(t *testing.T) {
	srv, err := Serve(Options{
		Addr:    "127.0.0.1:0",
		Metrics: func() any { return map[string]any{"solves": 42} },
		Prom: func(w io.Writer) {
			p := &PromText{}
			PromFromMetrics(p, sampleSnapshot())
			_, _ = p.WriteTo(w)
		},
		Ready: func() (any, bool) { return map[string]any{"status": "ready"}, true },
	})
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	fetch := func(accept string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest("GET", base+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		c := &http.Client{Timeout: 5 * time.Second}
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}

	resp, body := fetch("text/plain")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom content type %q", ct)
	}
	if resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatalf("prom cache-control %q", resp.Header.Get("Cache-Control"))
	}
	if _, err := ParseProm(bytes.NewReader(body)); err != nil {
		t.Fatalf("prom body invalid: %v", err)
	}

	// Prometheus-style Accept with parameters still negotiates to text.
	resp, _ = fetch("text/plain;version=0.0.4;q=0.5, */*;q=0.1")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("versioned accept got %q", ct)
	}

	for _, accept := range []string{"", "application/json", "*/*"} {
		resp, body := fetch(accept)
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("accept %q: content type %q, want JSON", accept, ct)
		}
		if !bytes.Contains(body, []byte("42")) {
			t.Fatalf("accept %q: JSON body lost: %s", accept, body)
		}
	}

	// /readyz mounts when a Ready provider exists.
	code, body := get(t, base+"/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte("ready")) {
		t.Fatalf("/readyz: %d %s", code, body)
	}
}
