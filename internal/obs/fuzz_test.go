package obs

import (
	"bytes"
	"testing"
)

// FuzzJournalValidate feeds arbitrary bytes to the journal validator:
// atpgd validates sealed journals from disk after crashes and chaos
// runs, so no input — truncated, interleaved, binary garbage — may
// panic it. Validation must also be deterministic: the same bytes give
// the same verdict on a second pass.
func FuzzJournalValidate(f *testing.F) {
	f.Add([]byte(`{"ts":0,"type":"run_start","v":1}
{"ts":5,"type":"span_start","id":1,"name":"optimize"}
{"ts":9,"type":"span_end","id":1}
{"ts":20,"type":"run_end"}
`))
	f.Add([]byte(`{"ts":0,"type":"run_start","v":2}
{"ts":10,"type":"event","name":"quarantine","attrs":{"fault":"x","reason":"panic"}}
{"ts":20,"type":"run_end"}
`))
	f.Add([]byte(`{"ts":0,"type":"run_start","v":3}
{"ts":10,"type":"event","name":"breaker_trip","attrs":{"threshold":5}}
{"ts":12,"type":"event","name":"breaker_reset","attrs":{"trips":1}}
{"ts":20,"type":"run_end"}
`))
	f.Add([]byte(`{"ts":0,"type":"run_start","v":4}`))
	f.Add([]byte(`{"ts":0,"type":"run_start","v":1}
{"ts":1,"type":"span_start","id":1,"name":"x"}`))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(""))
	f.Add([]byte("{\"ts\":0,\"type\":\"run_start\",\"v\":1}\n\x00\xff\xfe\n"))
	f.Add([]byte(`{"ts":0,"type":"run_start","v":1}
{"ts":10,"type":"run_canceled"}
`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st1, err1 := Validate(bytes.NewReader(data))
		st2, err2 := Validate(bytes.NewReader(data))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("validation verdict flapped: %v vs %v", err1, err2)
		}
		if err1 == nil && st1 != st2 {
			t.Fatalf("validation stats flapped: %+v vs %+v", st1, st2)
		}
	})
}
