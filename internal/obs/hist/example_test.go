package hist_test

import (
	"fmt"
	"time"

	"repro/internal/obs/hist"
)

// ExampleRegistry shows the session-scoping pattern used throughout the
// codebase: record into process-wide named histograms, snapshot at
// session start, and subtract that baseline at session end so the
// report covers only the session's own observations.
func ExampleRegistry() {
	reg := hist.NewRegistry()

	// Earlier work by other sessions lands in the same registry.
	reg.Observe("sim.op", int64(3*time.Millisecond))

	base := reg.Snapshot() // session start

	for _, d := range []time.Duration{
		1 * time.Millisecond, 2 * time.Millisecond, 8 * time.Millisecond,
	} {
		reg.Get("sim.op").RecordDuration(d)
	}

	for _, ns := range hist.SubNamed(reg.Snapshot(), base) {
		s := ns.Snapshot
		fmt.Printf("%s: n=%d min=%v max=%v\n",
			ns.Name, s.Count,
			time.Duration(s.Min), time.Duration(s.Max))
	}
	// Output:
	// sim.op: n=3 min=1ms max=8ms
}
