// Package hist is a fixed-size, lock-free latency histogram for the hot
// paths of the test generator: the engine's per-phase task latencies,
// the simulation kernel's per-analysis wall times, and the job server's
// queue and HTTP timings all record into it.
//
// The bucket scheme is log-linear (HDR-style): values below SubBuckets
// land in exact unit-wide buckets, and every power-of-two range above
// that is divided into SubBuckets linear sub-buckets. Bucket width is
// therefore always at most lower-bound/SubBuckets, which bounds the
// relative error of any reconstructed value (midpoint estimate) by
// RelativeError — the documented contract the property tests enforce.
//
// The record path is a handful of atomic adds on a fixed array: no
// allocation, no locks, no resizing, safe for any number of concurrent
// recorders. Snapshots are consistent-enough copies (buckets are read
// individually; a snapshot taken mid-record can be off by in-flight
// records, never torn within one counter), which is the usual histogram
// trade and fine for telemetry.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// SubBucketBits sets the resolution: each power-of-two range is
	// split into 1<<SubBucketBits linear sub-buckets.
	SubBucketBits = 5
	// SubBuckets is the number of linear sub-buckets per octave (32).
	SubBuckets = 1 << SubBucketBits
	// NumBuckets is the fixed bucket count covering all of int64:
	// SubBuckets exact unit buckets plus SubBuckets per octave for the
	// 63−SubBucketBits octaves above (the top bucket's upper bound is
	// exactly MaxInt64).
	NumBuckets = (63 - SubBucketBits + 1) * SubBuckets
	// RelativeError bounds |estimate − recorded| / recorded for any
	// value reconstructed from its bucket midpoint (values below
	// SubBuckets are exact). The true midpoint bound is 1/(2·SubBuckets);
	// the exported constant keeps a 2× margin for integer rounding.
	RelativeError = 1.0 / SubBuckets
)

// Histogram is a fixed-size concurrent latency histogram. The zero
// value is NOT ready to use (min needs seeding); create with New. A nil
// *Histogram is the disabled histogram: Record is a no-op, Snapshot
// returns the zero Snapshot.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Uint64
}

// New returns an empty histogram.
func New() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a non-negative value to its bucket. Values below
// SubBuckets map exactly; above, the top SubBucketBits bits below the
// leading one select a linear sub-bucket within the value's octave.
func bucketIndex(v int64) int {
	if v < SubBuckets {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // floor(log2 v), ≥ SubBucketBits
	shift := e - SubBucketBits
	m := int((v >> shift) & (SubBuckets - 1))
	return (shift+1)*SubBuckets + m
}

// BucketBounds returns the inclusive [lower, upper] value range of
// bucket i.
func BucketBounds(i int) (lower, upper int64) {
	if i < SubBuckets {
		return int64(i), int64(i)
	}
	shift := i/SubBuckets - 1
	m := int64(i % SubBuckets)
	lower = (SubBuckets + m) << shift
	upper = lower + (1 << shift) - 1
	return lower, upper
}

// bucketMid returns the midpoint estimate for bucket i.
func bucketMid(i int) int64 {
	lo, hi := BucketBounds(i)
	return lo + (hi-lo)/2
}

// Record adds one observation. Negative values clamp to zero. The
// record path is allocation-free: a bucket add, a count add, a sum add,
// and (rarely, only while the extremes are still moving) a min/max CAS.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Merge adds the current contents of other into h. Concurrent Records
// on either side are safe; the merge observes each bucket once.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
			h.count.Add(n)
		}
	}
	h.sum.Add(other.sum.Load())
	if m := other.min.Load(); m != math.MaxInt64 {
		for {
			cur := h.min.Load()
			if m >= cur || h.min.CompareAndSwap(cur, m) {
				break
			}
		}
	}
	if m := other.max.Load(); m > 0 {
		for {
			cur := h.max.Load()
			if m <= cur || h.max.CompareAndSwap(cur, m) {
				break
			}
		}
	}
}

// Reset zeroes the histogram (tests and benchmark harnesses; not meant
// to race with recorders).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
}

// Bucket is one non-empty bucket of a snapshot: Count observations with
// values in [Lower, Upper] (inclusive).
type Bucket struct {
	Lower, Upper int64
	Count        uint64
}

// Snapshot is a point-in-time copy of a histogram: total count and sum,
// observed extremes, and the non-empty buckets in ascending value
// order. The zero Snapshot is an empty histogram.
type Snapshot struct {
	Count    uint64
	Sum      int64
	Min, Max int64
	Buckets  []Bucket
}

// Snapshot copies the histogram's current contents.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Min:   h.min.Load(),
		Max:   h.max.Load(),
	}
	if s.Count == 0 {
		s.Min, s.Max = 0, 0
	}
	if s.Min == math.MaxInt64 {
		s.Min = 0
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lower: lo, Upper: hi, Count: n})
		}
	}
	return s
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as a bucket-midpoint
// estimate clamped to the observed [Min, Max], so single-valued
// histograms report exactly and estimates never exceed the true
// extremes. The estimate is within RelativeError of the true quantile.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= rank {
			mid := b.Lower + (b.Upper-b.Lower)/2
			if mid < s.Min {
				mid = s.Min
			}
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// P50 is the conventional median telemetry percentile.
func (s Snapshot) P50() int64 { return s.Quantile(0.50) }

// P90 is the conventional tail telemetry percentile.
func (s Snapshot) P90() int64 { return s.Quantile(0.90) }

// P99 is the conventional extreme-tail telemetry percentile.
func (s Snapshot) P99() int64 { return s.Quantile(0.99) }

// Sub returns s minus base, bucket by bucket — the scoping operation a
// session uses against cumulative process-wide histograms (base is the
// snapshot taken at session construction, so the difference covers only
// the session's own records). Min and Max cannot be subtracted and keep
// s's values: extremes are process-lifetime, which the consumers
// document.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	if base.Count == 0 {
		return s
	}
	out := Snapshot{
		Count: s.Count - base.Count,
		Sum:   s.Sum - base.Sum,
		Min:   s.Min,
		Max:   s.Max,
	}
	baseAt := make(map[int64]uint64, len(base.Buckets))
	for _, b := range base.Buckets {
		baseAt[b.Lower] = b.Count
	}
	for _, b := range s.Buckets {
		n := b.Count - baseAt[b.Lower]
		if n > 0 {
			out.Buckets = append(out.Buckets, Bucket{Lower: b.Lower, Upper: b.Upper, Count: n})
		}
	}
	if out.Count == 0 {
		out.Min, out.Max = 0, 0
	}
	return out
}

// Cumulative returns the snapshot's buckets as cumulative (upper bound,
// count ≤ bound) pairs — the Prometheus exposition shape.
func (s Snapshot) Cumulative() []Bucket {
	if len(s.Buckets) == 0 {
		return nil
	}
	out := make([]Bucket, len(s.Buckets))
	var cum uint64
	for i, b := range s.Buckets {
		cum += b.Count
		out[i] = Bucket{Lower: b.Lower, Upper: b.Upper, Count: cum}
	}
	return out
}
