package hist

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every bucket index must invert to bounds that contain exactly the
	// values mapping to it.
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo > hi {
			t.Fatalf("bucket %d: lower %d > upper %d", i, lo, hi)
		}
		if got := bucketIndex(lo); got != i {
			t.Fatalf("bucket %d: lower %d maps to bucket %d", i, lo, got)
		}
		if hi < math.MaxInt64 {
			if got := bucketIndex(hi); got != i {
				t.Fatalf("bucket %d: upper %d maps to bucket %d", i, hi, got)
			}
		}
	}
	// Bounds tile the axis with no gaps.
	for i := 1; i < NumBuckets; i++ {
		_, prevHi := BucketBounds(i - 1)
		lo, _ := BucketBounds(i)
		if lo != prevHi+1 {
			t.Fatalf("gap between bucket %d (upper %d) and %d (lower %d)", i-1, prevHi, i, lo)
		}
	}
}

// TestRelativeErrorBound is the property test of the documented
// contract: for any recorded value, the bucket-midpoint estimate is
// within RelativeError of the true value.
func TestRelativeErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func(v int64) {
		i := bucketIndex(v)
		lo, hi := BucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket %d [%d, %d]", v, i, lo, hi)
		}
		mid := bucketMid(i)
		relErr := math.Abs(float64(mid-v)) / math.Max(float64(v), 1)
		if relErr > RelativeError {
			t.Fatalf("value %d: midpoint %d has relative error %.5f > %.5f", v, mid, relErr, RelativeError)
		}
	}
	for v := int64(0); v < 4*SubBuckets; v++ {
		check(v) // exhaustive over the linear region and first octaves
	}
	for i := 0; i < 200000; i++ {
		// Log-uniform values across the full dynamic range.
		e := rng.Float64() * 62
		check(int64(math.Pow(2, e)))
	}
	check(math.MaxInt64)
}

func TestQuantilesAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New()
	vals := make([]int64, 5000)
	for i := range vals {
		// Latency-shaped: log-normal-ish mixture with a heavy tail.
		v := int64(math.Exp(rng.NormFloat64()*1.5+10)) + rng.Int63n(100)
		vals[i] = v
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count %d, want %d", s.Count, len(vals))
	}
	if s.Min != vals[0] || s.Max != vals[len(vals)-1] {
		t.Fatalf("min/max %d/%d, want %d/%d", s.Min, s.Max, vals[0], vals[len(vals)-1])
	}
	var sum int64
	for _, v := range vals {
		sum += v
	}
	if s.Sum != sum {
		t.Fatalf("sum %d, want %d", s.Sum, sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		rank := int(math.Ceil(q*float64(len(vals)))) - 1
		exact := vals[rank]
		got := s.Quantile(q)
		relErr := math.Abs(float64(got-exact)) / float64(exact)
		// The estimate may fall in a neighboring rank's bucket when
		// values tie around the cut; allow twice the per-value bound.
		if relErr > 2*RelativeError {
			t.Errorf("q%.2f: estimate %d vs exact %d (rel err %.5f)", q, got, exact, relErr)
		}
	}
}

func TestSingleValueQuantilesExact(t *testing.T) {
	h := New()
	const v = 123457
	for i := 0; i < 10; i++ {
		h.Record(v)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != v {
			t.Fatalf("quantile %g of single-valued histogram: %d, want %d", q, got, v)
		}
	}
}

func TestEmptyAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Record(5) // must not panic
	nilH.RecordDuration(time.Second)
	if s := nilH.Snapshot(); s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	if s := New().Snapshot(); s.Count != 0 || s.Min != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	var nilR *Registry
	nilR.Observe("x", 1)
	if nilR.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
		b.Record(i * 1000)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 200 {
		t.Fatalf("merged count %d, want 200", s.Count)
	}
	if s.Min != 1 || s.Max != 100000 {
		t.Fatalf("merged min/max %d/%d, want 1/100000", s.Min, s.Max)
	}
	var want int64
	for i := int64(1); i <= 100; i++ {
		want += i + i*1000
	}
	if s.Sum != want {
		t.Fatalf("merged sum %d, want %d", s.Sum, want)
	}
}

func TestSnapshotSub(t *testing.T) {
	h := New()
	for i := int64(0); i < 1000; i++ {
		h.Record(50)
	}
	base := h.Snapshot()
	for i := int64(0); i < 500; i++ {
		h.Record(70000)
	}
	d := h.Snapshot().Sub(base)
	if d.Count != 500 {
		t.Fatalf("sub count %d, want 500", d.Count)
	}
	if d.Sum != 500*70000 {
		t.Fatalf("sub sum %d, want %d", d.Sum, int64(500*70000))
	}
	// The base-era bucket must vanish entirely.
	for _, b := range d.Buckets {
		if b.Lower <= 50 && 50 <= b.Upper {
			t.Fatalf("base bucket survived subtraction: %+v", b)
		}
	}
}

func TestCumulative(t *testing.T) {
	h := New()
	h.Record(1)
	h.Record(1)
	h.Record(1000)
	cum := h.Snapshot().Cumulative()
	if len(cum) != 2 {
		t.Fatalf("cumulative buckets %d, want 2", len(cum))
	}
	if cum[0].Count != 2 || cum[1].Count != 3 {
		t.Fatalf("cumulative counts %d/%d, want 2/3", cum[0].Count, cum[1].Count)
	}
}

// TestConcurrentRecordSnapshotMerge is the race hammer: recorders,
// snapshotters, mergers and registry readers all running concurrently
// must be race-free (run under -race in CI) and lose no records.
func TestConcurrentRecordSnapshotMerge(t *testing.T) {
	const (
		recorders = 8
		perG      = 20000
	)
	h := New()
	reg := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot + merge churn while records are in flight.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := New()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.Snapshot().Quantile(0.99)
				scratch.Merge(h)
				_ = reg.Snapshot()
			}
		}()
	}
	for g := 0; g < recorders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				v := rng.Int63n(1 << 40)
				h.Record(v)
				reg.Observe("lane", v)
			}
		}(g)
	}
	// Wait for recorders (the first `recorders` goroutines started after
	// the churners); then stop churn.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if h.Snapshot().Count == recorders*perG {
			break
		}
		select {
		case <-done:
		default:
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	s := h.Snapshot()
	if s.Count != recorders*perG {
		t.Fatalf("lost records: %d, want %d", s.Count, recorders*perG)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != s.Count {
		t.Fatalf("bucket sum %d != count %d", n, s.Count)
	}
	if rs := reg.Snapshot(); len(rs) != 1 || rs[0].Count != recorders*perG {
		t.Fatalf("registry lost records: %+v", rs)
	}
}

// TestRecordAllocs enforces the zero-alloc record-path contract.
func TestRecordAllocs(t *testing.T) {
	h := New()
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456) }); n != 0 {
		t.Fatalf("Record allocates %.1f times per call, want 0", n)
	}
	reg := NewRegistry()
	reg.Get("warm") // created outside the measured loop
	if n := testing.AllocsPerRun(1000, func() { reg.Observe("warm", 77) }); n != 0 {
		t.Fatalf("Registry.Observe on a warm name allocates %.1f times per call, want 0", n)
	}
}

// BenchmarkRecord is the record-path budget benchmark: a few atomic
// adds, 0 allocs/op.
func BenchmarkRecord(b *testing.B) {
	h := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i) * 31)
	}
}

// BenchmarkRecordParallel measures contention across recorders.
func BenchmarkRecordParallel(b *testing.B) {
	h := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Record(v * 127)
			v++
		}
	})
}
