package hist

import (
	"sort"
	"sync"
)

// Registry is a small named-histogram collection: the engine keeps one
// for its phases, the simulation kernel one for its analyses, the job
// server one for its queue and HTTP timings. Get is cheap enough for
// per-observation lookup (a read lock and a map probe, off the record
// path's inner loops), but hot sites should hold the *Histogram.
//
// A nil *Registry is the disabled registry: Get returns the nil
// histogram (whose Record is a no-op) and Snapshot returns nothing.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]*Histogram)}
}

// Get returns the named histogram, creating it on first use.
func (r *Registry) Get(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.m[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.m[name]; h == nil {
		h = New()
		r.m[name] = h
	}
	return h
}

// Observe records v into the named histogram (creating it on first
// use) — the convenience form for cold call sites.
func (r *Registry) Observe(name string, v int64) { r.Get(name).Record(v) }

// NamedSnapshot pairs a histogram snapshot with its registry name.
type NamedSnapshot struct {
	Name string
	Snapshot
}

// SubNamed returns cur minus base, matched by name — the list form of
// Snapshot.Sub, used to scope a cumulative process-wide registry (the
// simulation kernel's per-analysis histograms) to one session. Names
// present only in cur pass through unchanged; entries whose difference
// is empty are dropped.
func SubNamed(cur, base []NamedSnapshot) []NamedSnapshot {
	if len(base) == 0 {
		return cur
	}
	baseAt := make(map[string]Snapshot, len(base))
	for _, b := range base {
		baseAt[b.Name] = b.Snapshot
	}
	out := make([]NamedSnapshot, 0, len(cur))
	for _, c := range cur {
		d := c.Snapshot.Sub(baseAt[c.Name])
		if d.Count > 0 {
			out = append(out, NamedSnapshot{Name: c.Name, Snapshot: d})
		}
	}
	return out
}

// Snapshot captures every histogram in the registry, sorted by name.
func (r *Registry) Snapshot() []NamedSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]NamedSnapshot, 0, len(r.m))
	for name, h := range r.m {
		out = append(out, NamedSnapshot{Name: name, Snapshot: h.Snapshot()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
