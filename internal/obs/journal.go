package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Journal is the JSONL run-journal sink: one JSON-encoded Event per
// line. Writes are serialized under a mutex and buffered; terminal
// records (run_end / run_canceled) flush eagerly so a journal is
// complete on disk the moment Tracer.Finish returns, even if the
// process later dies before Close.
type Journal struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closed bool
	// Dropped counts events that arrived after Close — stragglers from
	// goroutines still winding down on a canceled run.
	dropped atomic.Uint64
	// err remembers the first write error; subsequent writes are dropped.
	err error
}

// NewJournal returns a journal writing JSONL to w. The caller owns w
// (and closes it after Journal.Close, if it is a file).
func NewJournal(w io.Writer) *Journal {
	return &Journal{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Emit implements Sink.
func (j *Journal) Emit(ev Event) {
	line, merr := json.Marshal(ev)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		j.dropped.Add(1)
		return
	}
	if j.err != nil {
		return
	}
	if merr != nil {
		// An unmarshalable attribute must not corrupt the journal: drop
		// the attrs, keep the record.
		ev.Attrs = map[string]any{"marshal_error": merr.Error()}
		line, merr = json.Marshal(ev)
		if merr != nil {
			return
		}
	}
	if _, err := j.bw.Write(line); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
		return
	}
	if ev.Type == TypeRunEnd || ev.Type == TypeRunCanceled {
		j.err = j.bw.Flush()
	}
}

// Flush forces buffered records out to the underlying writer.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if j.closed {
		return nil
	}
	return j.bw.Flush()
}

// Close flushes and seals the journal; later events are counted in
// Dropped instead of written. Close does not write a terminal record —
// that is Tracer.Finish's job — and returns the first write error seen.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return j.err
	}
	j.closed = true
	if ferr := j.bw.Flush(); j.err == nil {
		j.err = ferr
	}
	return j.err
}

// Dropped returns the number of events discarded after Close.
func (j *Journal) Dropped() uint64 { return j.dropped.Load() }

// Collector is an in-memory sink for tests.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Events returns a snapshot of the collected events.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// ValidationStats summarizes a validated journal.
type ValidationStats struct {
	// Version is the schema version from the run_start record.
	Version int
	// Events is the total record count (including run_start/terminal).
	Events int
	// Spans is the number of span_start records.
	Spans int
	// OpenSpans is the number of spans never closed (only legal on a
	// run_canceled journal).
	OpenSpans int
	// Terminal is the type of the final record (run_end or
	// run_canceled).
	Terminal string
}

// v2EventNames are the point-event names the fault-tolerant runtime
// added in schema v2. A journal that declares v1 must not contain them:
// either its producer lied about the version or the file was stitched
// together from mixed runs — both are worth failing loudly over.
var v2EventNames = map[string]bool{
	"quarantine":       true,
	"retry":            true,
	"checkpoint_write": true,
	"checkpoint_error": true,
	"resume":           true,
}

// v3EventNames are the resource-governance point-event names added in
// schema v3 (the circuit breaker's state transitions). Journals that
// declare v1 or v2 must not contain them.
var v3EventNames = map[string]bool{
	"breaker_trip":  true,
	"breaker_reset": true,
}

// v4EventNames are the distributed-execution point-event names added in
// schema v4: worker lifecycle and shard assignment/merge records
// emitted by a coordinating atpgd. Journals that declare v1..v3 must
// not contain them.
var v4EventNames = map[string]bool{
	"worker_join":   true,
	"worker_lost":   true,
	"shard_assign":  true,
	"shard_done":    true,
	"shard_requeue": true,
}

// schemaRules is the per-version validation vocabulary. Validation
// dispatches on the run_start version explicitly — v1 journals written
// before the fault-tolerant runtime stay first-class citizens instead
// of being accepted (or rejected) by accident of a shared code path.
type schemaRules struct {
	version int
}

// rulesForVersion returns the validation rules for a declared journal
// schema version, or an error for versions this reader does not speak.
func rulesForVersion(v int) (schemaRules, error) {
	switch v {
	case 1, 2, 3, 4:
		return schemaRules{version: v}, nil
	default:
		return schemaRules{}, fmt.Errorf("unsupported schema version %d (this reader speaks v1..v%d)", v, SchemaVersion)
	}
}

// checkEvent applies the version-specific vocabulary to one record.
func (r schemaRules) checkEvent(ev Event) error {
	if r.version < 2 && ev.Type == TypeEvent && v2EventNames[ev.Name] {
		return fmt.Errorf("event %q requires schema v2, journal declares v%d", ev.Name, r.version)
	}
	if r.version < 3 && ev.Type == TypeEvent && v3EventNames[ev.Name] {
		return fmt.Errorf("event %q requires schema v3, journal declares v%d", ev.Name, r.version)
	}
	if r.version < 4 && ev.Type == TypeEvent && v4EventNames[ev.Name] {
		return fmt.Errorf("event %q requires schema v4, journal declares v%d", ev.Name, r.version)
	}
	return nil
}

// Validate checks a JSONL journal against its declared schema version,
// dispatching explicitly on v1 and v2 (see rulesForVersion):
//
//   - the first record is run_start with a known schema version,
//   - span IDs are unique and every span_end matches an open span_start,
//   - timestamps are non-negative,
//   - the record vocabulary matches the declared version (a v1 journal
//     must not carry v2-only resilience events),
//   - the last record is terminal (run_end or run_canceled),
//   - every span is closed, unless the run was canceled (a canceled run
//     is truncated but valid).
//
// It returns the journal's summary statistics alongside the first
// violation found.
func Validate(r io.Reader) (ValidationStats, error) {
	var st ValidationStats
	var rules schemaRules
	open := make(map[uint64]string) // span id -> name
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var last Event
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		line++
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return st, fmt.Errorf("obs: line %d: invalid JSON: %w", line, err)
		}
		st.Events++
		if st.Events == 1 {
			if ev.Type != TypeRunStart {
				return st, fmt.Errorf("obs: line %d: first record is %q, want %q", line, ev.Type, TypeRunStart)
			}
			var rerr error
			if rules, rerr = rulesForVersion(ev.V); rerr != nil {
				return st, fmt.Errorf("obs: line %d: %w", line, rerr)
			}
			st.Version = ev.V
		} else if ev.Type == TypeRunStart {
			return st, fmt.Errorf("obs: line %d: duplicate run_start", line)
		}
		if last.Type == TypeRunEnd || last.Type == TypeRunCanceled {
			return st, fmt.Errorf("obs: line %d: record after terminal %q", line, last.Type)
		}
		if ev.TS < 0 {
			return st, fmt.Errorf("obs: line %d: negative timestamp %d", line, ev.TS)
		}
		if err := rules.checkEvent(ev); err != nil {
			return st, fmt.Errorf("obs: line %d: %w", line, err)
		}
		switch ev.Type {
		case TypeRunStart, TypeEvent, TypeRunEnd, TypeRunCanceled:
		case TypeSpanStart:
			if ev.Span == 0 {
				return st, fmt.Errorf("obs: line %d: span_start without span id", line)
			}
			if _, dup := open[ev.Span]; dup {
				return st, fmt.Errorf("obs: line %d: duplicate span id %d", line, ev.Span)
			}
			open[ev.Span] = ev.Name
			st.Spans++
		case TypeSpanEnd:
			if _, ok := open[ev.Span]; !ok {
				return st, fmt.Errorf("obs: line %d: span_end for unknown span %d", line, ev.Span)
			}
			delete(open, ev.Span)
			if ev.Dur < 0 {
				return st, fmt.Errorf("obs: line %d: negative duration %d", line, ev.Dur)
			}
		default:
			return st, fmt.Errorf("obs: line %d: unknown record type %q", line, ev.Type)
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("obs: reading journal: %w", err)
	}
	if st.Events == 0 {
		return st, fmt.Errorf("obs: empty journal")
	}
	st.Terminal = last.Type
	st.OpenSpans = len(open)
	if last.Type != TypeRunEnd && last.Type != TypeRunCanceled {
		return st, fmt.Errorf("obs: journal ends with %q, want a terminal record", last.Type)
	}
	if st.OpenSpans > 0 && last.Type != TypeRunCanceled {
		return st, fmt.Errorf("obs: %d spans never closed in a completed run", st.OpenSpans)
	}
	return st, nil
}
