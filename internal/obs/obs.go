// Package obs is the observability layer of the test generator: a
// zero-dependency span tracer, a JSONL run journal, and a live progress
// tracker. It sits below every other internal package (obs imports only
// the standard library), so the engine, the generation core, the
// optimizers and the simulation kernel can all emit into one run record
// without import cycles.
//
// The design goal is that a disabled tracer costs a nil check: all
// Tracer and Progress methods are safe (and free) on a nil receiver, so
// instrumented code calls them unconditionally.
//
// The event vocabulary is deliberately small — run_start / span_start /
// span_end / event / run_end / run_canceled — and every record carries a
// monotonic timestamp (nanoseconds since the tracer's epoch, taken from
// the runtime's monotonic clock). The journal schema is versioned (see
// SchemaVersion) so later extensions can evolve it without breaking
// readers.
package obs

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// SchemaVersion is the journal schema version stamped into the run_start
// record. Readers should reject journals with a greater major version.
//
// Version history:
//
//	1 — initial schema (run/span/event records).
//	2 — fault-tolerant runtime events: "quarantine", "retry",
//	    "checkpoint_write", "resume", and a "verdict" attribute on
//	    "fault_verdict". Purely additive; v1 readers that ignore unknown
//	    event names can still consume v2 journals.
//	3 — resource-governance events: "breaker_trip", "breaker_reset",
//	    and a "reason" attribute on "quarantine" ("panic" or "stalled").
//	    Purely additive over v2.
//	4 — distributed-execution events: "worker_join", "worker_lost",
//	    "shard_assign", "shard_done", "shard_requeue", plus a "shard"
//	    attribute on records stitched in from worker journals. Purely
//	    additive over v3.
const SchemaVersion = 4

// Record types of the journal schema (Event.Type).
const (
	// TypeRunStart opens a run; it carries the schema version and run
	// attributes and must be the first record of a journal.
	TypeRunStart = "run_start"
	// TypeSpanStart opens a span (Span and optional Parent IDs).
	TypeSpanStart = "span_start"
	// TypeSpanEnd closes a span; Dur is the span's wall time.
	TypeSpanEnd = "span_end"
	// TypeEvent is a point event (optionally parented to a span).
	TypeEvent = "event"
	// TypeRunEnd terminates a completed run; it must be the last record.
	TypeRunEnd = "run_end"
	// TypeRunCanceled terminates a canceled run. Spans still open at
	// this record are permitted: the journal is truncated but valid.
	TypeRunCanceled = "run_canceled"
)

// Event is one journal record. The zero values of optional fields are
// omitted from the JSON encoding, keeping journal lines compact.
type Event struct {
	// TS is nanoseconds since the tracer's epoch (monotonic clock).
	TS int64 `json:"ts"`
	// Type is one of the Type... constants.
	Type string `json:"type"`
	// Name is the span or event name ("optimize", "cache_hit", ...).
	Name string `json:"name,omitempty"`
	// Span is the span ID for span_start/span_end, or the enclosing span
	// for parented point events.
	Span uint64 `json:"span,omitempty"`
	// Parent is the enclosing span's ID on span_start records.
	Parent uint64 `json:"parent,omitempty"`
	// Dur is the span wall time in nanoseconds on span_end records (and
	// on retrospective spans written by Tracer.Complete).
	Dur int64 `json:"dur_ns,omitempty"`
	// V is the schema version; only stamped on run_start.
	V int `json:"v,omitempty"`
	// Attrs carries the record's key/value attributes.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Sink receives events from a tracer. Implementations must be safe for
// concurrent use; the Journal is the production sink, Collector the
// in-memory one for tests.
type Sink interface {
	Emit(Event)
}

// Attr is one key/value attribute of a span or event.
type Attr struct {
	Key   string
	Value any
}

// String returns a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int returns an int attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// I64 returns an int64 attribute.
func I64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// F64 returns a float64 attribute.
func F64(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool returns a bool attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Any returns an attribute with an arbitrary JSON-marshalable value.
func Any(k string, v any) Attr { return Attr{Key: k, Value: v} }

// attrMap folds attributes into the Event.Attrs map (nil when empty).
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Tracer assigns span IDs and emits events into a sink. A nil *Tracer is
// the disabled tracer: every method is a no-op behind a nil check, so
// instrumentation sites need no conditionals. A Tracer is safe for
// concurrent use when its sink is.
type Tracer struct {
	sink  Sink
	epoch time.Time
	ids   atomic.Uint64
	// sampleEvery keeps one in every n spans (1 = keep all). Point
	// events and run records are never sampled out.
	sampleEvery uint64
	finished    atomic.Bool
}

// TracerOption tunes a tracer at construction.
type TracerOption func(*Tracer)

// SampleEvery keeps one in every n spans (n <= 1 keeps all). Sampled-out
// spans cost one atomic increment and emit nothing; their children
// re-parent to the nearest kept ancestor.
func SampleEvery(n int) TracerOption {
	return func(t *Tracer) {
		if n < 1 {
			n = 1
		}
		t.sampleEvery = uint64(n)
	}
}

// New returns a tracer emitting into sink and writes the run_start
// record (schema version plus the given run attributes). The tracer's
// epoch — the zero of every timestamp — is the moment of this call.
func New(sink Sink, attrs ...Attr) *Tracer {
	return NewWith(sink, attrs, nil)
}

// NewWith is New with tracer options.
func NewWith(sink Sink, attrs []Attr, opts []TracerOption) *Tracer {
	t := &Tracer{sink: sink, epoch: time.Now(), sampleEvery: 1}
	for _, o := range opts {
		o(t)
	}
	t.sink.Emit(Event{TS: 0, Type: TypeRunStart, V: SchemaVersion, Attrs: attrMap(attrs)})
	return t
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// now returns nanoseconds since the epoch on the monotonic clock.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Span is an in-flight span handle. The zero Span (from a nil or
// sampled-out tracer) ends as a no-op.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	start int64
}

// ID returns the span's journal ID (0 for a dropped span).
func (s Span) ID() uint64 { return s.id }

// ctxKey carries the enclosing span ID through a context.
type ctxKey struct{}

// SpanFromContext returns the enclosing span ID recorded in ctx (0 when
// none).
func SpanFromContext(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(ctxKey{}).(uint64)
	return id
}

// Start opens a span named name, parented to the span recorded in ctx
// (if any), and returns a derived context carrying the new span for
// children. On a nil tracer it returns ctx unchanged and a no-op span;
// on a sampled-out span it returns ctx unchanged (children re-parent to
// the nearest kept ancestor) and a no-op span.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, Span) {
	if t == nil {
		return ctx, Span{}
	}
	id := t.ids.Add(1)
	if t.sampleEvery > 1 && id%t.sampleEvery != 0 {
		return ctx, Span{}
	}
	start := t.now()
	t.sink.Emit(Event{
		TS:     start,
		Type:   TypeSpanStart,
		Name:   name,
		Span:   id,
		Parent: SpanFromContext(ctx),
		Attrs:  attrMap(attrs),
	})
	return context.WithValue(ctx, ctxKey{}, id), Span{t: t, id: id, name: name, start: start}
}

// End closes the span, attaching any final attributes (results: the
// optimized S_f, the eviction count, ...).
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := s.t.now()
	s.t.sink.Emit(Event{
		TS:    now,
		Type:  TypeSpanEnd,
		Name:  s.name,
		Span:  s.id,
		Dur:   now - s.start,
		Attrs: attrMap(attrs),
	})
}

// Event records a point event parented to the span in ctx (if any).
func (t *Tracer) Event(ctx context.Context, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.sink.Emit(Event{
		TS:    t.now(),
		Type:  TypeEvent,
		Name:  name,
		Span:  SpanFromContext(ctx),
		Attrs: attrMap(attrs),
	})
}

// Emit records an unparented point event — the variant for call sites
// without a context (the nominal-cache hit path).
func (t *Tracer) Emit(name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.sink.Emit(Event{TS: t.now(), Type: TypeEvent, Name: name, Attrs: attrMap(attrs)})
}

// Complete records a retrospective span of duration d ending now — the
// shape the simulation kernel's per-analysis hook uses, where the span
// is only known once the analysis returns. Retrospective spans respect
// sampling and are unparented.
func (t *Tracer) Complete(name string, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	id := t.ids.Add(1)
	if t.sampleEvery > 1 && id%t.sampleEvery != 0 {
		return
	}
	now := t.now()
	start := now - int64(d)
	if start < 0 {
		start = 0
	}
	t.sink.Emit(Event{TS: start, Type: TypeSpanStart, Name: name, Span: id})
	t.sink.Emit(Event{TS: now, Type: TypeSpanEnd, Name: name, Span: id, Dur: int64(d), Attrs: attrMap(attrs)})
}

// Finish writes the terminal record: run_canceled when err wraps a
// context cancellation (or deadline expiry), run_end otherwise. The
// attributes typically carry the final metrics snapshot. Finish is
// idempotent — only the first call emits — so error paths can call it
// defensively.
func (t *Tracer) Finish(err error, attrs ...Attr) {
	if t == nil || !t.finished.CompareAndSwap(false, true) {
		return
	}
	typ := TypeRunEnd
	if isCancellation(err) {
		typ = TypeRunCanceled
	}
	m := attrMap(attrs)
	if err != nil {
		if m == nil {
			m = make(map[string]any, 1)
		}
		m["error"] = err.Error()
	}
	t.sink.Emit(Event{TS: t.now(), Type: typ, Attrs: m})
}

// isCancellation reports whether err stems from a canceled or expired
// context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
