package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNesting: spans parent through the context, point events attach
// to the enclosing span, and End records a non-negative duration.
func TestSpanNesting(t *testing.T) {
	var c Collector
	tr := New(&c, String("cmd", "test"))
	ctx, outer := tr.Start(context.Background(), "outer")
	cctx, inner := tr.Start(ctx, "inner", Int("k", 3))
	tr.Event(cctx, "tick", F64("s_f", -0.25))
	inner.End(Int("evals", 7))
	outer.End()
	tr.Finish(nil)

	evs := c.Events()
	if len(evs) != 7 {
		t.Fatalf("got %d events, want 7", len(evs))
	}
	if evs[0].Type != TypeRunStart || evs[0].V != SchemaVersion {
		t.Fatalf("first event %+v is not a versioned run_start", evs[0])
	}
	if evs[1].Type != TypeSpanStart || evs[1].Name != "outer" || evs[1].Parent != 0 {
		t.Fatalf("outer span_start wrong: %+v", evs[1])
	}
	if evs[2].Parent != evs[1].Span {
		t.Fatalf("inner span parent = %d, want %d", evs[2].Parent, evs[1].Span)
	}
	if evs[3].Type != TypeEvent || evs[3].Span != evs[2].Span {
		t.Fatalf("event not parented to inner span: %+v", evs[3])
	}
	if evs[4].Type != TypeSpanEnd || evs[4].Dur < 0 {
		t.Fatalf("inner span_end wrong: %+v", evs[4])
	}
	if got := evs[4].Attrs["evals"]; got != 7 {
		t.Fatalf("span_end attr evals = %v, want 7", got)
	}
	if evs[6].Type != TypeRunEnd {
		t.Fatalf("terminal event %+v, want run_end", evs[6])
	}
}

// TestNilTracer: a nil tracer must be inert — no panics, contexts pass
// through unchanged.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	ctx := context.Background()
	octx, sp := tr.Start(ctx, "x", Int("i", 1))
	if octx != ctx {
		t.Fatal("nil tracer changed the context")
	}
	sp.End()
	tr.Event(ctx, "e")
	tr.Emit("e")
	tr.Complete("sim.op", time.Millisecond)
	tr.Finish(nil)
	var p *Progress
	p.SetPhase("x", 10)
	p.Step(1)
	if s := p.Snapshot(); s.Done != 0 || s.Phase != "" {
		t.Fatalf("nil progress snapshot not zero: %+v", s)
	}
}

// TestSampling: SampleEvery(n) keeps roughly one in n spans and never
// drops point events or the terminal record.
func TestSampling(t *testing.T) {
	var c Collector
	tr := NewWith(&c, nil, []TracerOption{SampleEvery(4)})
	for i := 0; i < 100; i++ {
		_, sp := tr.Start(context.Background(), "s")
		sp.End()
	}
	tr.Emit("point")
	tr.Finish(nil)
	starts := 0
	points := 0
	for _, ev := range c.Events() {
		switch ev.Type {
		case TypeSpanStart:
			starts++
		case TypeEvent:
			points++
		}
	}
	if starts != 25 {
		t.Fatalf("kept %d of 100 spans with SampleEvery(4), want 25", starts)
	}
	if points != 1 {
		t.Fatalf("point events sampled out: got %d, want 1", points)
	}
}

// TestFinishCancellation: Finish classifies context cancellation
// (however deeply wrapped) as run_canceled, and is idempotent.
func TestFinishCancellation(t *testing.T) {
	var c Collector
	tr := New(&c)
	wrapped := fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", context.Canceled))
	tr.Finish(wrapped)
	tr.Finish(nil) // must not emit a second terminal
	evs := c.Events()
	last := evs[len(evs)-1]
	if last.Type != TypeRunCanceled {
		t.Fatalf("terminal type %q, want run_canceled", last.Type)
	}
	if !strings.Contains(last.Attrs["error"].(string), "inner") {
		t.Fatalf("terminal error attr lost the chain: %v", last.Attrs["error"])
	}
	terminals := 0
	for _, ev := range evs {
		if ev.Type == TypeRunCanceled || ev.Type == TypeRunEnd {
			terminals++
		}
	}
	if terminals != 1 {
		t.Fatalf("Finish emitted %d terminals, want 1", terminals)
	}
}

// TestJournalRoundTrip: a traced run written through the Journal must
// validate, and its stats must reflect the span count.
func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := New(j, String("cmd", "unit"))
	ctx, sp := tr.Start(context.Background(), "phase")
	for i := 0; i < 10; i++ {
		_, c := tr.Start(ctx, "task", Int("i", i))
		tr.Event(ctx, "cache_miss")
		c.End()
	}
	tr.Complete("sim.op", 42*time.Microsecond, I64("stamps", 12))
	sp.End()
	tr.Finish(nil)
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}

	st, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if st.Version != SchemaVersion {
		t.Fatalf("version %d, want %d", st.Version, SchemaVersion)
	}
	if st.Spans != 12 { // phase + 10 tasks + 1 retrospective
		t.Fatalf("spans %d, want 12", st.Spans)
	}
	if st.OpenSpans != 0 || st.Terminal != TypeRunEnd {
		t.Fatalf("stats %+v: want closed spans and run_end terminal", st)
	}

	// Every line must be standalone JSON.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i+1, err)
		}
	}
}

// TestJournalTruncatedCanceled: open spans are legal when the terminal
// record is run_canceled, and illegal under run_end.
func TestJournalTruncatedCanceled(t *testing.T) {
	mk := func(terminal string) string {
		var b strings.Builder
		b.WriteString(`{"ts":0,"type":"run_start","v":1}` + "\n")
		b.WriteString(`{"ts":5,"type":"span_start","name":"optimize","span":1}` + "\n")
		b.WriteString(`{"ts":9,"type":"` + terminal + `"}` + "\n")
		return b.String()
	}
	st, err := Validate(strings.NewReader(mk(TypeRunCanceled)))
	if err != nil {
		t.Fatalf("canceled journal with open span should validate, got %v", err)
	}
	if st.OpenSpans != 1 {
		t.Fatalf("open spans %d, want 1", st.OpenSpans)
	}
	if _, err := Validate(strings.NewReader(mk(TypeRunEnd))); err == nil {
		t.Fatal("completed journal with open span must fail validation")
	}
}

// TestValidateRejects: structural violations are caught.
func TestValidateRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"no run_start":   `{"ts":0,"type":"event","name":"x"}` + "\n",
		"bad version":    `{"ts":0,"type":"run_start","v":99}` + "\n",
		"no terminal":    `{"ts":0,"type":"run_start","v":1}` + "\n" + `{"ts":1,"type":"event","name":"x"}` + "\n",
		"unknown span":   `{"ts":0,"type":"run_start","v":1}` + "\n" + `{"ts":1,"type":"span_end","span":7}` + "\n" + `{"ts":2,"type":"run_end"}` + "\n",
		"dup span id":    `{"ts":0,"type":"run_start","v":1}` + "\n" + `{"ts":1,"type":"span_start","span":1}` + "\n" + `{"ts":1,"type":"span_start","span":1}` + "\n" + `{"ts":2,"type":"run_end"}` + "\n",
		"after terminal": `{"ts":0,"type":"run_start","v":1}` + "\n" + `{"ts":1,"type":"run_end"}` + "\n" + `{"ts":2,"type":"event","name":"x"}` + "\n",
	}
	for name, journal := range cases {
		if _, err := Validate(strings.NewReader(journal)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
}

// TestJournalDropsAfterClose: stragglers arriving after Close are
// counted, not written.
func TestJournalDropsAfterClose(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := New(j)
	tr.Finish(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	tr.Emit("late")
	if buf.Len() != n {
		t.Fatal("event written after Close")
	}
	if j.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", j.Dropped())
	}
}

// TestTracerConcurrent: concurrent spans and events through a journal
// must produce a valid journal (exercised under -race in CI).
func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := New(j)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, sp := tr.Start(context.Background(), "task", Int("worker", w))
				tr.Event(ctx, "tick", Int("i", i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr.Finish(nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrent journal invalid: %v", err)
	}
	if st.Spans != 400 {
		t.Fatalf("spans %d, want 400", st.Spans)
	}
}

// TestProgress: snapshot math (percent, ETA presence) and phase resets.
func TestProgress(t *testing.T) {
	p := NewProgress()
	p.SetPhase("optimize", 100)
	p.Step(25)
	time.Sleep(time.Millisecond)
	s := p.Snapshot()
	if s.Phase != "optimize" || s.Done != 25 || s.Total != 100 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Percent() != 25 {
		t.Fatalf("percent %v, want 25", s.Percent())
	}
	if s.ETA <= 0 {
		t.Fatalf("ETA %v, want > 0 with work remaining", s.ETA)
	}
	p.SetPhase("coverage", 10)
	s = p.Snapshot()
	if s.Done != 0 || s.Total != 10 || s.Phase != "coverage" {
		t.Fatalf("phase reset failed: %+v", s)
	}
	if s.ETA != 0 {
		t.Fatalf("ETA %v before any unit, want 0", s.ETA)
	}
}
