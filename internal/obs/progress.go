package obs

import (
	"sync/atomic"
	"time"
)

// Progress tracks a run's position through its phases for the live
// /progress endpoint: units done out of total in the current phase, and
// an ETA extrapolated from the phase's own throughput. All fields are
// atomics so Snapshot is torn-read-free against concurrent Step calls;
// a nil *Progress is the disabled tracker (every method is a no-op).
type Progress struct {
	start      time.Time
	phase      atomic.Pointer[string]
	done       atomic.Int64
	total      atomic.Int64
	phaseStart atomic.Int64 // ns since start

	// Run-health counters from the fault-tolerant runtime, cumulative
	// over the whole run (not reset by SetPhase).
	quarantined  atomic.Int64
	retries      atomic.Int64
	undetermined atomic.Int64
	resumed      atomic.Int64
	ckptWrites   atomic.Int64
}

// AddQuarantined records n panic-quarantined tasks.
func (p *Progress) AddQuarantined(n int) {
	if p != nil {
		p.quarantined.Add(int64(n))
	}
}

// AddRetries records n optimizer retry attempts.
func (p *Progress) AddRetries(n int) {
	if p != nil {
		p.retries.Add(int64(n))
	}
}

// AddUndetermined records n faults that ended undetermined.
func (p *Progress) AddUndetermined(n int) {
	if p != nil {
		p.undetermined.Add(int64(n))
	}
}

// AddResumed records n faults restored from a checkpoint.
func (p *Progress) AddResumed(n int) {
	if p != nil {
		p.resumed.Add(int64(n))
	}
}

// AddCheckpointWrites records n completed checkpoint file writes.
func (p *Progress) AddCheckpointWrites(n int) {
	if p != nil {
		p.ckptWrites.Add(int64(n))
	}
}

// NewProgress returns a tracker whose elapsed clock starts now.
func NewProgress() *Progress {
	p := &Progress{start: time.Now()}
	name := ""
	p.phase.Store(&name)
	return p
}

// SetPhase enters a named phase with the given unit total, resetting the
// done counter and the phase clock.
func (p *Progress) SetPhase(name string, total int) {
	if p == nil {
		return
	}
	p.phase.Store(&name)
	p.total.Store(int64(total))
	p.done.Store(0)
	p.phaseStart.Store(int64(time.Since(p.start)))
}

// Step records n completed units of the current phase.
func (p *Progress) Step(n int) {
	if p == nil {
		return
	}
	p.done.Add(int64(n))
}

// ProgressSnapshot is a point-in-time view of a Progress tracker.
type ProgressSnapshot struct {
	// Phase is the current phase name ("" before the first SetPhase).
	Phase string `json:"phase"`
	// Done and Total are the phase's unit counters.
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// Elapsed is the wall time since the tracker was created.
	Elapsed time.Duration `json:"elapsed_ns"`
	// PhaseElapsed is the wall time since the current phase began.
	PhaseElapsed time.Duration `json:"phase_elapsed_ns"`
	// ETA estimates the remaining time of the current phase from its
	// average unit throughput; 0 when unknown (no units done yet).
	ETA time.Duration `json:"eta_ns"`
	// Run-health counters (cumulative over the run).
	Quarantined      int64 `json:"quarantined"`
	Retries          int64 `json:"retries"`
	Undetermined     int64 `json:"undetermined"`
	Resumed          int64 `json:"resumed"`
	CheckpointWrites int64 `json:"checkpoint_writes"`
}

// Percent returns the phase completion in percent (0 when the total is
// unknown).
func (s ProgressSnapshot) Percent() float64 {
	if s.Total <= 0 {
		return 0
	}
	return 100 * float64(s.Done) / float64(s.Total)
}

// Snapshot returns the current progress. Counters are read individually
// from atomics: the snapshot is internally consistent enough for display
// (each field is untorn) without a lock on the Step path.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	elapsed := time.Since(p.start)
	s := ProgressSnapshot{
		Phase:            *p.phase.Load(),
		Done:             p.done.Load(),
		Total:            p.total.Load(),
		Elapsed:          elapsed,
		Quarantined:      p.quarantined.Load(),
		Retries:          p.retries.Load(),
		Undetermined:     p.undetermined.Load(),
		Resumed:          p.resumed.Load(),
		CheckpointWrites: p.ckptWrites.Load(),
	}
	s.PhaseElapsed = elapsed - time.Duration(p.phaseStart.Load())
	if s.Done > 0 && s.Total > s.Done {
		perUnit := s.PhaseElapsed / time.Duration(s.Done)
		s.ETA = perUnit * time.Duration(s.Total-s.Done)
	}
	return s
}
