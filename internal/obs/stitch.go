package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// ShardJournal is one worker shard's sealed journal plus the metadata
// Stitch needs to fold it into the coordinator's journal.
type ShardJournal struct {
	// Shard is the shard ID, stamped as a "shard" attribute on every
	// stitched span_start and event record.
	Shard string
	// Worker is the computing worker's ID, stamped as a "worker"
	// attribute alongside Shard.
	Worker string
	// OffsetNS shifts the shard's timestamps onto the coordinator's
	// epoch — typically the assignment time of the shard. Must be
	// non-negative.
	OffsetNS int64
	// Data is the shard's complete JSONL journal, run_start through
	// run_end. A journal sealed by anything other than run_end is
	// rejected: it may contain open spans, which would make the stitched
	// completed journal invalid.
	Data []byte
}

// Stitch merges a coordinator journal and per-shard worker journals
// into one journal that passes Validate: the coordinator's records come
// first (minus its terminal record), then each shard's records in the
// given order (minus their run_start and run_end), then the
// coordinator's terminal record. Shard span IDs are remapped past the
// previously used maximum so IDs stay unique, shard timestamps are
// shifted by OffsetNS onto the coordinator's epoch, and every stitched
// span_start/event record gains "shard" and "worker" attributes.
//
// Callers pass shards in a deterministic order (shard sequence, not
// completion order) so the stitched journal of a distributed job is
// reproducible run to run up to timing values.
func Stitch(w io.Writer, coordinator []byte, shards []ShardJournal) error {
	coord, err := parseJournal(coordinator)
	if err != nil {
		return fmt.Errorf("obs: stitch: coordinator journal: %w", err)
	}
	last := coord[len(coord)-1]
	if last.Type != TypeRunEnd && last.Type != TypeRunCanceled {
		return fmt.Errorf("obs: stitch: coordinator journal ends with %q, want a terminal record", last.Type)
	}
	body := coord[:len(coord)-1]

	bw := bufio.NewWriterSize(w, 64<<10)
	offset := uint64(0)
	for _, ev := range coord {
		if ev.Span > offset {
			offset = ev.Span
		}
		if ev.Parent > offset {
			offset = ev.Parent
		}
	}
	for _, ev := range body {
		if err := writeEvent(bw, ev); err != nil {
			return err
		}
	}
	for _, sh := range shards {
		if sh.OffsetNS < 0 {
			return fmt.Errorf("obs: stitch: shard %q: negative time offset %d", sh.Shard, sh.OffsetNS)
		}
		evs, err := parseJournal(sh.Data)
		if err != nil {
			return fmt.Errorf("obs: stitch: shard %q journal: %w", sh.Shard, err)
		}
		if evs[0].Type != TypeRunStart {
			return fmt.Errorf("obs: stitch: shard %q journal starts with %q, want %q", sh.Shard, evs[0].Type, TypeRunStart)
		}
		if evs[len(evs)-1].Type != TypeRunEnd {
			return fmt.Errorf("obs: stitch: shard %q journal ends with %q, want %q", sh.Shard, evs[len(evs)-1].Type, TypeRunEnd)
		}
		next := offset
		for _, ev := range evs[1 : len(evs)-1] {
			if ev.Span != 0 {
				ev.Span += offset
				if ev.Span > next {
					next = ev.Span
				}
			}
			if ev.Parent != 0 {
				ev.Parent += offset
				if ev.Parent > next {
					next = ev.Parent
				}
			}
			ev.TS += sh.OffsetNS
			if ev.Type == TypeSpanStart || ev.Type == TypeEvent {
				if ev.Attrs == nil {
					ev.Attrs = make(map[string]any, 2)
				}
				ev.Attrs["shard"] = sh.Shard
				if sh.Worker != "" {
					ev.Attrs["worker"] = sh.Worker
				}
			}
			if err := writeEvent(bw, ev); err != nil {
				return err
			}
		}
		offset = next
	}
	if err := writeEvent(bw, last); err != nil {
		return err
	}
	return bw.Flush()
}

// parseJournal decodes a JSONL journal into events, requiring at least
// one record.
func parseJournal(data []byte) ([]Event, error) {
	var evs []Event
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		line++
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("line %d: invalid JSON: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(evs) == 0 {
		return nil, fmt.Errorf("empty journal")
	}
	return evs, nil
}

// writeEvent appends one record line to the stitched journal.
func writeEvent(bw *bufio.Writer, ev Event) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("obs: stitch: marshal record: %w", err)
	}
	if _, err := bw.Write(line); err != nil {
		return fmt.Errorf("obs: stitch: %w", err)
	}
	if err := bw.WriteByte('\n'); err != nil {
		return fmt.Errorf("obs: stitch: %w", err)
	}
	return nil
}
