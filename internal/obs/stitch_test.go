package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// sealedJournal runs fn against a fresh tracer and returns the sealed
// JSONL bytes.
func sealedJournal(t *testing.T, fn func(tr *Tracer)) []byte {
	t.Helper()
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tr := New(j)
	fn(tr)
	tr.Finish(nil)
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	return buf.Bytes()
}

func TestStitchProducesValidJournal(t *testing.T) {
	coord := sealedJournal(t, func(tr *Tracer) {
		ctx, sp := tr.Start(context.Background(), "run")
		tr.Event(ctx, "shard_assign", String("shard", "j/s0"))
		tr.Event(ctx, "shard_assign", String("shard", "j/s1"))
		sp.End()
	})
	shardA := sealedJournal(t, func(tr *Tracer) {
		ctx, sp := tr.Start(context.Background(), "shard")
		_, inner := tr.Start(ctx, "optimize")
		inner.End()
		sp.End()
	})
	shardB := sealedJournal(t, func(tr *Tracer) {
		_, sp := tr.Start(context.Background(), "shard")
		sp.End()
	})

	var out bytes.Buffer
	err := Stitch(&out, coord, []ShardJournal{
		{Shard: "j/s0", Worker: "w1", OffsetNS: 1000, Data: shardA},
		{Shard: "j/s1", Worker: "w2", OffsetNS: 2000, Data: shardB},
	})
	if err != nil {
		t.Fatalf("stitch: %v", err)
	}

	st, err := Validate(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("stitched journal invalid: %v\n%s", err, out.Bytes())
	}
	if st.Version != SchemaVersion {
		t.Fatalf("stitched version %d, want %d", st.Version, SchemaVersion)
	}
	if st.Terminal != TypeRunEnd {
		t.Fatalf("stitched terminal %q", st.Terminal)
	}
	// 1 coordinator span + 2 shard-A spans + 1 shard-B span.
	if st.Spans != 4 {
		t.Fatalf("stitched spans %d, want 4", st.Spans)
	}
	text := out.String()
	if !strings.Contains(text, `"shard":"j/s0"`) || !strings.Contains(text, `"shard":"j/s1"`) {
		t.Fatalf("stitched journal missing shard tags:\n%s", text)
	}
	if !strings.Contains(text, `"worker":"w1"`) {
		t.Fatalf("stitched journal missing worker tag:\n%s", text)
	}
	if strings.Count(text, `"type":"run_start"`) != 1 {
		t.Fatalf("stitched journal must contain exactly one run_start:\n%s", text)
	}
	if strings.Count(text, `"type":"run_end"`) != 1 {
		t.Fatalf("stitched journal must contain exactly one run_end:\n%s", text)
	}
}

func TestStitchShiftsShardTimestamps(t *testing.T) {
	coord := sealedJournal(t, func(tr *Tracer) {})
	shard := []byte(`{"ts":0,"type":"run_start","v":4}
{"ts":5,"type":"span_start","name":"shard","span":1}
{"ts":9,"type":"span_end","name":"shard","span":1,"dur_ns":4}
{"ts":10,"type":"run_end"}
`)
	var out bytes.Buffer
	if err := Stitch(&out, coord, []ShardJournal{{Shard: "s", OffsetNS: 100, Data: shard}}); err != nil {
		t.Fatalf("stitch: %v", err)
	}
	if !strings.Contains(out.String(), `"ts":105`) || !strings.Contains(out.String(), `"ts":109`) {
		t.Fatalf("timestamps not shifted:\n%s", out.String())
	}
}

func TestStitchRejectsBadInputs(t *testing.T) {
	coord := sealedJournal(t, func(tr *Tracer) {})
	unsealed := []byte(`{"ts":0,"type":"run_start","v":4}
{"ts":5,"type":"span_start","name":"shard","span":1}
`)
	if err := Stitch(&bytes.Buffer{}, coord, []ShardJournal{{Shard: "s", Data: unsealed}}); err == nil {
		t.Fatal("unsealed shard journal accepted")
	}
	canceled := []byte(`{"ts":0,"type":"run_start","v":4}
{"ts":5,"type":"run_canceled"}
`)
	if err := Stitch(&bytes.Buffer{}, coord, []ShardJournal{{Shard: "s", Data: canceled}}); err == nil {
		t.Fatal("canceled shard journal accepted")
	}
	if err := Stitch(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("empty coordinator journal accepted")
	}
	headless := []byte(`{"ts":5,"type":"span_start","name":"x","span":1}
{"ts":9,"type":"run_end"}
`)
	if err := Stitch(&bytes.Buffer{}, coord, []ShardJournal{{Shard: "s", Data: headless}}); err == nil {
		t.Fatal("shard journal without run_start accepted")
	}
	if err := Stitch(&bytes.Buffer{}, coord, []ShardJournal{{Shard: "s", OffsetNS: -1, Data: canceled}}); err == nil {
		t.Fatal("negative offset accepted")
	}
}
