package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestValidateSchemaV1Fixture is the regression test for the
// version-dispatch fix: a journal written before the fault-tolerant
// runtime (schema v1, no verdict attributes, no resilience events) must
// validate as first-class v1, not be rejected by v2-era rules.
func TestValidateSchemaV1Fixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "journal_v1.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := Validate(f)
	if err != nil {
		t.Fatalf("v1 fixture rejected: %v", err)
	}
	if st.Version != 1 {
		t.Fatalf("Version = %d, want 1", st.Version)
	}
	if st.Terminal != TypeRunEnd {
		t.Fatalf("Terminal = %q", st.Terminal)
	}
	if st.Spans != 2 || st.OpenSpans != 0 {
		t.Fatalf("Spans = %d, OpenSpans = %d", st.Spans, st.OpenSpans)
	}
}

// TestValidateSchemaV2Fixture pins the v2 vocabulary: resilience events
// (resume, retry, quarantine, checkpoint_write) are legal under a v2
// run_start.
func TestValidateSchemaV2Fixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "journal_v2.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := Validate(f)
	if err != nil {
		t.Fatalf("v2 fixture rejected: %v", err)
	}
	if st.Version != 2 {
		t.Fatalf("Version = %d, want 2", st.Version)
	}
}

// TestValidateVersionDispatch checks the explicit dispatch edges: a v1
// journal carrying a v2-only event fails with a version message, and an
// undeclared future version is refused up front.
func TestValidateVersionDispatch(t *testing.T) {
	v1WithQuarantine := `{"ts":0,"type":"run_start","v":1}
{"ts":10,"type":"event","name":"quarantine","attrs":{"fault":"x"}}
{"ts":20,"type":"run_end"}
`
	if _, err := Validate(strings.NewReader(v1WithQuarantine)); err == nil {
		t.Fatal("v1 journal with a v2-only event validated")
	} else if !strings.Contains(err.Error(), "requires schema v2") {
		t.Fatalf("wrong error: %v", err)
	}

	v2WithBreaker := `{"ts":0,"type":"run_start","v":2}
{"ts":10,"type":"event","name":"breaker_trip","attrs":{"threshold":5}}
{"ts":20,"type":"run_end"}
`
	if _, err := Validate(strings.NewReader(v2WithBreaker)); err == nil {
		t.Fatal("v2 journal with a v3-only event validated")
	} else if !strings.Contains(err.Error(), "requires schema v3") {
		t.Fatalf("wrong error: %v", err)
	}

	v3WithShard := `{"ts":0,"type":"run_start","v":3}
{"ts":10,"type":"event","name":"shard_assign","attrs":{"shard":"j/s0"}}
{"ts":20,"type":"run_end"}
`
	if _, err := Validate(strings.NewReader(v3WithShard)); err == nil {
		t.Fatal("v3 journal with a v4-only event validated")
	} else if !strings.Contains(err.Error(), "requires schema v4") {
		t.Fatalf("wrong error: %v", err)
	}

	future := `{"ts":0,"type":"run_start","v":5}
{"ts":20,"type":"run_end"}
`
	if _, err := Validate(strings.NewReader(future)); err == nil {
		t.Fatal("future-version journal validated")
	} else if !strings.Contains(err.Error(), "unsupported schema version 5") {
		t.Fatalf("wrong error: %v", err)
	}

	if _, err := rulesForVersion(0); err == nil {
		t.Fatal("rulesForVersion(0) accepted")
	}
	for v := 1; v <= SchemaVersion; v++ {
		if _, err := rulesForVersion(v); err != nil {
			t.Fatalf("rulesForVersion(%d): %v", v, err)
		}
	}
}
