package opt

import (
	"math"
	"testing"
)

// TestBrentObserver: the observer sees every iteration, values are
// monotonically improving at the end, and a nil observer changes
// nothing about the result.
func TestBrentObserver(t *testing.T) {
	f := func(x float64) float64 { return (x - 0.3) * (x - 0.3) }
	var iters int
	var lastF float64 = math.Inf(1)
	res := BrentObserved(f, -1, 1, 1e-6, func(stage string, iter int, x []float64, fx float64) {
		if stage != "brent" {
			t.Fatalf("stage %q, want brent", stage)
		}
		if iter != iters {
			t.Fatalf("iteration %d out of order (want %d)", iter, iters)
		}
		if len(x) != 1 {
			t.Fatalf("observer x dim %d, want 1", len(x))
		}
		if fx > lastF+1e-12 {
			t.Fatalf("best value regressed: %g after %g", fx, lastF)
		}
		lastF = fx
		iters++
	})
	if iters == 0 {
		t.Fatal("observer never called")
	}
	plain := Brent(f, -1, 1, 1e-6)
	if res.X[0] != plain.X[0] || res.F != plain.F || res.Evals != plain.Evals {
		t.Fatalf("observed result %+v differs from plain %+v", res, plain)
	}
}

// TestPowellObserver: per-sweep notifications with improving values, and
// bit-identical results to the unobserved run.
func TestPowellObserver(t *testing.T) {
	rosen := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	box := NewBox([]float64{-2, -2}, []float64{2, 2})
	seed := []float64{-1.2, 1}
	sweeps := 0
	res := PowellObserved(rosen, box, seed, 1e-8, func(stage string, iter int, x []float64, fx float64) {
		if stage != "powell" {
			t.Fatalf("stage %q, want powell", stage)
		}
		if len(x) != 2 {
			t.Fatalf("observer x dim %d, want 2", len(x))
		}
		sweeps++
	})
	if sweeps == 0 {
		t.Fatal("observer never called")
	}
	plain := Powell(rosen, box, seed, 1e-8)
	if res.F != plain.F || res.Evals != plain.Evals {
		t.Fatalf("observed result %+v differs from plain %+v", res, plain)
	}
}

// TestMinimizeObservedDispatch: 1-D boxes route to Brent iterations,
// n-D to Powell sweeps, with results matching Minimize.
func TestMinimizeObservedDispatch(t *testing.T) {
	q1 := func(x []float64) float64 { return (x[0] - 2) * (x[0] - 2) }
	stage := ""
	res := MinimizeObserved(q1, NewBox([]float64{0}, []float64{5}), []float64{1}, 1e-6,
		func(s string, _ int, _ []float64, _ float64) { stage = s })
	if stage != "brent" {
		t.Fatalf("1-D dispatch observed stage %q, want brent", stage)
	}
	plain := Minimize(q1, NewBox([]float64{0}, []float64{5}), []float64{1}, 1e-6)
	if res.F != plain.F || res.X[0] != plain.X[0] {
		t.Fatalf("1-D observed %+v != plain %+v", res, plain)
	}

	q2 := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	stage = ""
	MinimizeObserved(q2, NewBox([]float64{-1, -1}, []float64{1, 1}), []float64{0.5, 0.5}, 1e-6,
		func(s string, _ int, _ []float64, _ float64) { stage = s })
	if stage != "powell" {
		t.Fatalf("2-D dispatch observed stage %q, want powell", stage)
	}
}
