// Package opt implements the derivative-free minimizers the paper's test
// generator uses: Brent's method for single-parameter test configurations
// and Powell's direction-set method (with Brent line searches) for
// multi-parameter ones, plus golden-section search, exhaustive grid
// search and Nelder–Mead for ablation studies.
//
// All minimizers operate inside a rectangular parameter box, mirroring
// the constraint values the paper attaches to every test parameter. They
// count objective evaluations, because simulation count is the paper's
// stated cost concern ("global optimization requires a much larger
// amount of simulations which we consider unacceptable").
package opt

import (
	"fmt"
	"math"
)

// Objective is a scalar function of a parameter vector.
type Objective func(x []float64) float64

// Scalar is a scalar function of one variable.
type Scalar func(x float64) float64

// Result is the outcome of a minimization.
type Result struct {
	X     []float64 // minimizer
	F     float64   // objective at X
	Evals int       // objective evaluations spent
}

// IterObserver receives one notification per optimizer iteration: the
// stage name ("brent" iterations, "powell" sweeps), the iteration
// index, and the current best point and value. It is the hook the
// observability layer uses to journal the trajectory of each S_f search
// — the per-fault tps-trajectory — without the optimizers knowing about
// tracing. The x slice is only valid during the call; observers that
// retain it must copy. A nil observer costs nothing.
type IterObserver func(stage string, iter int, x []float64, f float64)

const (
	defaultTol     = 1e-4
	defaultMaxIter = 100
	goldenRatio    = 0.3819660112501051 // (3 - sqrt(5)) / 2
)

// Brent minimizes f on [a, b] with Brent's combined golden-section /
// parabolic-interpolation method (Brent 1973, ch. 5), the algorithm the
// paper cites for single-parameter test configurations. tol ≤ 0 selects a
// sensible default relative tolerance.
func Brent(f Scalar, a, b, tol float64) Result {
	return BrentObserved(f, a, b, tol, nil)
}

// BrentObserved is Brent with a per-iteration observer (nil behaves
// exactly like Brent): watch sees the current best point after every
// iteration of the main loop.
func BrentObserved(f Scalar, a, b, tol float64, watch IterObserver) Result {
	if tol <= 0 {
		tol = defaultTol
	}
	if a > b {
		a, b = b, a
	}
	evals := 0
	eval := func(x float64) float64 {
		evals++
		return f(x)
	}

	x := a + goldenRatio*(b-a)
	w, v := x, x
	fx := eval(x)
	fw, fv := fx, fx
	var d, e float64
	var watchX []float64
	if watch != nil {
		watchX = make([]float64, 1)
	}

	for it := 0; it < defaultMaxIter; it++ {
		m := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + 1e-12
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Fit a parabola through (v,fv), (w,fw), (x,fx).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, m-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = goldenRatio * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := eval(u)
		if fu <= fx {
			if u < x {
				b = x
			} else {
				a = x
			}
			v, fv = w, fw
			w, fw = x, fx
			x, fx = u, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
		if watch != nil {
			watchX[0] = x
			watch("brent", it, watchX, fx)
		}
	}
	return Result{X: []float64{x}, F: fx, Evals: evals}
}

// GoldenSection minimizes f on [a, b] by pure golden-section search, kept
// as the simplest robust reference for ablations.
func GoldenSection(f Scalar, a, b, tol float64) Result {
	if tol <= 0 {
		tol = defaultTol
	}
	if a > b {
		a, b = b, a
	}
	evals := 0
	eval := func(x float64) float64 {
		evals++
		return f(x)
	}
	phi := 1 - goldenRatio // 0.618...
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := eval(c), eval(d)
	for math.Abs(b-a) > tol*(math.Abs(a)+math.Abs(b))+1e-12 && evals < 200 {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = eval(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = eval(d)
		}
	}
	if fc < fd {
		return Result{X: []float64{c}, F: fc, Evals: evals}
	}
	return Result{X: []float64{d}, F: fd, Evals: evals}
}

// Box is a rectangular feasible region.
type Box struct {
	Lo, Hi []float64
}

// NewBox returns a box; it panics when the bounds are malformed, which is
// a configuration programming error.
func NewBox(lo, hi []float64) Box {
	if len(lo) != len(hi) {
		panic("opt: box bounds length mismatch")
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("opt: box dimension %d inverted: [%g, %g]", i, lo[i], hi[i]))
		}
	}
	return Box{Lo: lo, Hi: hi}
}

// Dim returns the box dimension.
func (b Box) Dim() int { return len(b.Lo) }

// Clamp projects x into the box in place and returns it.
func (b Box) Clamp(x []float64) []float64 {
	for i := range x {
		if x[i] < b.Lo[i] {
			x[i] = b.Lo[i]
		}
		if x[i] > b.Hi[i] {
			x[i] = b.Hi[i]
		}
	}
	return x
}

// Contains reports whether x lies inside the box.
func (b Box) Contains(x []float64) bool {
	for i := range x {
		if x[i] < b.Lo[i] || x[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the box midpoint.
func (b Box) Center() []float64 {
	c := make([]float64, b.Dim())
	for i := range c {
		c[i] = 0.5 * (b.Lo[i] + b.Hi[i])
	}
	return c
}

// Powell minimizes f inside box starting from seed using Powell's
// direction-set method: cyclic line minimizations along a direction set
// that is updated with the overall displacement direction each sweep
// (Acton's formulation, as cited by the paper). Line minimizations use
// Brent on the feasible segment of each direction.
func Powell(f Objective, box Box, seed []float64, tol float64) Result {
	return PowellObserved(f, box, seed, tol, nil)
}

// PowellObserved is Powell with a per-sweep observer (nil behaves
// exactly like Powell): watch sees the current best point after every
// direction-set sweep.
func PowellObserved(f Objective, box Box, seed []float64, tol float64, watch IterObserver) Result {
	n := box.Dim()
	if len(seed) != n {
		panic("opt: seed dimension mismatch")
	}
	if tol <= 0 {
		tol = defaultTol
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	x := make([]float64, n)
	copy(x, seed)
	box.Clamp(x)
	fx := eval(x)

	// Initial direction set: unit coordinate vectors.
	dirs := make([][]float64, n)
	for i := range dirs {
		dirs[i] = make([]float64, n)
		dirs[i][i] = 1
	}

	for sweep := 0; sweep < 30; sweep++ {
		x0 := make([]float64, n)
		copy(x0, x)
		f0 := fx
		biggestDrop := 0.0
		biggestDir := 0

		for i, dir := range dirs {
			fPrev := fx
			var lineEvals int
			x, fx, lineEvals = lineMin(eval, box, x, dir, fx, tol)
			evals += 0 // lineMin already counts through eval
			_ = lineEvals
			if drop := fPrev - fx; drop > biggestDrop {
				biggestDrop = drop
				biggestDir = i
			}
		}

		if watch != nil {
			watch("powell", sweep, x, fx)
		}

		// Convergence: relative improvement over the whole sweep.
		if 2*(f0-fx) <= tol*(math.Abs(f0)+math.Abs(fx))+1e-15 {
			break
		}

		// Extrapolated point along the net displacement.
		xe := make([]float64, n)
		disp := make([]float64, n)
		for i := range x {
			disp[i] = x[i] - x0[i]
			xe[i] = x[i] + disp[i]
		}
		if box.Contains(xe) {
			fe := eval(xe)
			if fe < f0 {
				t := 2*(f0-2*fx+fe)*sq(f0-fx-biggestDrop) - biggestDrop*sq(f0-fe)
				if t < 0 {
					// Replace the direction of largest decrease with the
					// net displacement and minimize along it.
					dirs[biggestDir] = normalize(disp)
					x, fx, _ = lineMin(eval, box, x, dirs[biggestDir], fx, tol)
				}
			}
		}
	}
	return Result{X: x, F: fx, Evals: evals}
}

func sq(v float64) float64 { return v * v }

func normalize(v []float64) []float64 {
	s := 0.0
	for _, c := range v {
		s += c * c
	}
	s = math.Sqrt(s)
	if s == 0 {
		return v
	}
	out := make([]float64, len(v))
	for i, c := range v {
		out[i] = c / s
	}
	return out
}

// lineMin minimizes t ↦ f(x + t·dir) over the feasible t-interval and
// returns the new point and value. If the direction immediately leaves
// the box, the point is returned unchanged.
func lineMin(eval func([]float64) float64, box Box, x []float64, dir []float64, fx, tol float64) ([]float64, float64, int) {
	tLo, tHi := feasibleSegment(box, x, dir)
	if tHi-tLo < 1e-15 {
		return x, fx, 0
	}
	probe := make([]float64, len(x))
	g := func(t float64) float64 {
		for i := range probe {
			probe[i] = x[i] + t*dir[i]
		}
		box.Clamp(probe)
		return eval(probe)
	}
	res := Brent(g, tLo, tHi, tol)
	if res.F < fx {
		out := make([]float64, len(x))
		for i := range out {
			out[i] = x[i] + res.X[0]*dir[i]
		}
		box.Clamp(out)
		return out, res.F, res.Evals
	}
	return x, fx, res.Evals
}

// feasibleSegment returns the t-range for which x + t·dir stays inside
// the box (0 always included).
func feasibleSegment(box Box, x, dir []float64) (tLo, tHi float64) {
	tLo, tHi = math.Inf(-1), math.Inf(1)
	for i := range x {
		if dir[i] == 0 {
			continue
		}
		a := (box.Lo[i] - x[i]) / dir[i]
		b := (box.Hi[i] - x[i]) / dir[i]
		if a > b {
			a, b = b, a
		}
		if a > tLo {
			tLo = a
		}
		if b < tHi {
			tHi = b
		}
	}
	if math.IsInf(tLo, -1) {
		tLo = 0
	}
	if math.IsInf(tHi, 1) {
		tHi = 0
	}
	if tLo > 0 {
		tLo = 0
	}
	if tHi < 0 {
		tHi = 0
	}
	return tLo, tHi
}

// Grid minimizes f by exhaustive evaluation on a uniform nPerAxis^dim
// grid over the box, the brute-force baseline for ablations and the
// sampler behind tps-graphs.
func Grid(f Objective, box Box, nPerAxis int) Result {
	if nPerAxis < 2 {
		nPerAxis = 2
	}
	n := box.Dim()
	idx := make([]int, n)
	x := make([]float64, n)
	best := Result{F: math.Inf(1)}
	evals := 0
	for {
		for i := 0; i < n; i++ {
			x[i] = box.Lo[i] + (box.Hi[i]-box.Lo[i])*float64(idx[i])/float64(nPerAxis-1)
		}
		v := f(x)
		evals++
		if v < best.F {
			best.F = v
			best.X = append([]float64(nil), x...)
		}
		// Odometer increment.
		k := 0
		for k < n {
			idx[k]++
			if idx[k] < nPerAxis {
				break
			}
			idx[k] = 0
			k++
		}
		if k == n {
			break
		}
	}
	best.Evals = evals
	return best
}

// NelderMead minimizes f inside box with the downhill-simplex method,
// provided as an alternative derivative-free optimizer for the ablation
// comparing against Powell.
func NelderMead(f Objective, box Box, seed []float64, tol float64) Result {
	n := box.Dim()
	if tol <= 0 {
		tol = defaultTol
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(box.Clamp(append([]float64(nil), x...)))
	}

	// Initial simplex: seed plus per-axis offsets of 5 % of the range.
	pts := make([][]float64, n+1)
	fv := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), seed...)
		if i > 0 {
			p[i-1] += 0.05 * (box.Hi[i-1] - box.Lo[i-1])
		}
		box.Clamp(p)
		pts[i] = p
		fv[i] = eval(p)
	}

	for it := 0; it < 200; it++ {
		// Order.
		for i := 0; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if fv[j] < fv[i] {
					fv[i], fv[j] = fv[j], fv[i]
					pts[i], pts[j] = pts[j], pts[i]
				}
			}
		}
		if math.Abs(fv[n]-fv[0]) <= tol*(math.Abs(fv[0])+math.Abs(fv[n]))+1e-12 {
			break
		}
		// Centroid of all but worst.
		cen := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				cen[j] += pts[i][j] / float64(n)
			}
		}
		mix := func(a, b []float64, t float64) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = a[i] + t*(b[i]-a[i])
			}
			return box.Clamp(out)
		}
		refl := mix(cen, pts[n], -1)
		fr := eval(refl)
		switch {
		case fr < fv[0]:
			exp := mix(cen, pts[n], -2)
			fe := eval(exp)
			if fe < fr {
				pts[n], fv[n] = exp, fe
			} else {
				pts[n], fv[n] = refl, fr
			}
		case fr < fv[n-1]:
			pts[n], fv[n] = refl, fr
		default:
			con := mix(cen, pts[n], 0.5)
			fc := eval(con)
			if fc < fv[n] {
				pts[n], fv[n] = con, fc
			} else {
				// Shrink towards best.
				for i := 1; i <= n; i++ {
					pts[i] = mix(pts[0], pts[i], 0.5)
					fv[i] = eval(pts[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		if fv[i] < fv[best] {
			best = i
		}
	}
	return Result{X: pts[best], F: fv[best], Evals: evals}
}

// Minimize dispatches per the paper's recipe: Brent for one-parameter
// boxes, Powell for multi-parameter boxes.
func Minimize(f Objective, box Box, seed []float64, tol float64) Result {
	return MinimizeObserved(f, box, seed, tol, nil)
}

// MinimizeObserved is Minimize with a per-iteration observer: Brent
// iterations for one-parameter boxes, Powell sweeps otherwise. A nil
// observer behaves exactly like Minimize.
func MinimizeObserved(f Objective, box Box, seed []float64, tol float64, watch IterObserver) Result {
	if box.Dim() == 1 {
		arg := make([]float64, 1)
		return BrentObserved(func(x float64) float64 {
			arg[0] = x
			return f(arg)
		}, box.Lo[0], box.Hi[0], tol, watch)
	}
	return PowellObserved(f, box, seed, tol, watch)
}
