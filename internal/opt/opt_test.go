package opt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBrentQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.3) * (x - 1.3) }
	res := Brent(f, -5, 5, 1e-8)
	if math.Abs(res.X[0]-1.3) > 1e-5 {
		t.Errorf("min at %g, want 1.3", res.X[0])
	}
	if res.Evals <= 0 || res.Evals > 100 {
		t.Errorf("evals = %d, want a modest count", res.Evals)
	}
}

func TestBrentNonSmooth(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 0.7) }
	res := Brent(f, 0, 2, 1e-8)
	if math.Abs(res.X[0]-0.7) > 1e-4 {
		t.Errorf("min at %g, want 0.7", res.X[0])
	}
}

func TestBrentBoundaryMinimum(t *testing.T) {
	// Monotone decreasing: minimum at the right edge.
	f := func(x float64) float64 { return -x }
	res := Brent(f, 0, 3, 1e-8)
	if math.Abs(res.X[0]-3) > 1e-3 {
		t.Errorf("min at %g, want boundary 3", res.X[0])
	}
}

func TestBrentSwappedBounds(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	res := Brent(f, 2, -2, 1e-8)
	if math.Abs(res.X[0]) > 1e-4 {
		t.Errorf("min at %g, want 0", res.X[0])
	}
}

// TestBrentFindsMinimumOfRandomParabolas is a property test over random
// well-posed scalar problems.
func TestBrentFindsMinimumOfRandomParabolas(t *testing.T) {
	f := func(cRaw float64) bool {
		c := math.Mod(math.Abs(cRaw), 8) - 4 // minimum inside [-5, 5]
		res := Brent(func(x float64) float64 { return 2*(x-c)*(x-c) + 1 }, -5, 5, 1e-8)
		return math.Abs(res.X[0]-c) < 1e-4 && math.Abs(res.F-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGoldenSectionAgreesWithBrent(t *testing.T) {
	f := func(x float64) float64 { return math.Cos(x) }
	b := Brent(f, 0, 6, 1e-8)
	g := GoldenSection(f, 0, 6, 1e-8)
	if math.Abs(b.X[0]-math.Pi) > 1e-4 || math.Abs(g.X[0]-math.Pi) > 1e-3 {
		t.Errorf("brent=%g golden=%g, want π", b.X[0], g.X[0])
	}
	if b.Evals >= g.Evals {
		t.Logf("note: brent evals %d vs golden %d (brent usually cheaper)", b.Evals, g.Evals)
	}
}

func TestBoxClampContains(t *testing.T) {
	b := NewBox([]float64{0, -1}, []float64{1, 1})
	x := b.Clamp([]float64{2, -3})
	if x[0] != 1 || x[1] != -1 {
		t.Errorf("clamped = %v", x)
	}
	if !b.Contains([]float64{0.5, 0}) || b.Contains([]float64{1.5, 0}) {
		t.Error("Contains wrong")
	}
	c := b.Center()
	if c[0] != 0.5 || c[1] != 0 {
		t.Errorf("center = %v", c)
	}
}

func TestNewBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted box accepted")
		}
	}()
	NewBox([]float64{1}, []float64{0})
}

func TestPowellQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-0.3)*(x[0]-0.3) + 2*(x[1]+0.4)*(x[1]+0.4)
	}
	box := NewBox([]float64{-2, -2}, []float64{2, 2})
	res := Powell(f, box, []float64{1.5, 1.5}, 1e-8)
	if math.Abs(res.X[0]-0.3) > 1e-4 || math.Abs(res.X[1]+0.4) > 1e-4 {
		t.Errorf("min at %v, want (0.3, -0.4)", res.X)
	}
}

func TestPowellCorrelatedValley(t *testing.T) {
	// Rotated narrow valley: needs the direction-set update.
	f := func(x []float64) float64 {
		u := x[0] + x[1]
		v := x[0] - x[1]
		return u*u + 100*(v-0.5)*(v-0.5)
	}
	box := NewBox([]float64{-3, -3}, []float64{3, 3})
	res := Powell(f, box, []float64{2, 2}, 1e-10)
	// Minimum at u=0, v=0.5 -> x = (0.25, -0.25).
	if math.Abs(res.X[0]-0.25) > 1e-3 || math.Abs(res.X[1]+0.25) > 1e-3 {
		t.Errorf("min at %v, want (0.25, -0.25)", res.X)
	}
}

func TestPowellRespectsBox(t *testing.T) {
	// Unconstrained minimum outside the box: result must be on the border.
	f := func(x []float64) float64 {
		return (x[0]-5)*(x[0]-5) + (x[1]-5)*(x[1]-5)
	}
	box := NewBox([]float64{0, 0}, []float64{1, 1})
	res := Powell(f, box, []float64{0.5, 0.5}, 1e-8)
	if !box.Contains(res.X) {
		t.Fatalf("minimizer %v escaped the box", res.X)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("min at %v, want (1,1) corner", res.X)
	}
}

func TestPowellSeedDimensionPanics(t *testing.T) {
	box := NewBox([]float64{0}, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("bad seed accepted")
		}
	}()
	Powell(func(x []float64) float64 { return x[0] }, box, []float64{0, 0}, 1e-6)
}

func TestGridFindsGlobalAmongLocals(t *testing.T) {
	// Two-well function: global at x≈-1, local at x≈+1.2.
	f := func(x []float64) float64 {
		return math.Min((x[0]+1)*(x[0]+1), 0.5+(x[0]-1.2)*(x[0]-1.2))
	}
	box := NewBox([]float64{-3}, []float64{3})
	res := Grid(f, box, 61)
	if math.Abs(res.X[0]+1) > 0.11 {
		t.Errorf("grid min at %g, want -1", res.X[0])
	}
	if res.Evals != 61 {
		t.Errorf("evals = %d, want 61", res.Evals)
	}
}

func TestGrid2DEvalCount(t *testing.T) {
	n := 0
	f := func(x []float64) float64 { n++; return x[0] + x[1] }
	box := NewBox([]float64{0, 0}, []float64{1, 1})
	res := Grid(f, box, 5)
	if n != 25 || res.Evals != 25 {
		t.Errorf("evals = %d/%d, want 25", n, res.Evals)
	}
	if res.X[0] != 0 || res.X[1] != 0 {
		t.Errorf("min at %v, want origin", res.X)
	}
}

func TestNelderMeadBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-0.3)*(x[0]-0.3) + 2*(x[1]+0.4)*(x[1]+0.4)
	}
	box := NewBox([]float64{-2, -2}, []float64{2, 2})
	res := NelderMead(f, box, []float64{1.5, 1.5}, 1e-10)
	if math.Abs(res.X[0]-0.3) > 1e-2 || math.Abs(res.X[1]+0.4) > 1e-2 {
		t.Errorf("min at %v, want (0.3, -0.4)", res.X)
	}
}

func TestMinimizeDispatch(t *testing.T) {
	// 1-D goes through Brent.
	one := Minimize(func(x []float64) float64 { return (x[0] - 2) * (x[0] - 2) },
		NewBox([]float64{0}, []float64{4}), []float64{0.1}, 1e-8)
	if math.Abs(one.X[0]-2) > 1e-4 {
		t.Errorf("1-D minimize at %v, want 2", one.X)
	}
	// 2-D goes through Powell.
	two := Minimize(func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		NewBox([]float64{-1, -1}, []float64{1, 1}), []float64{0.9, -0.9}, 1e-8)
	if math.Abs(two.X[0]) > 1e-3 || math.Abs(two.X[1]) > 1e-3 {
		t.Errorf("2-D minimize at %v, want origin", two.X)
	}
}

func TestFeasibleSegment(t *testing.T) {
	box := NewBox([]float64{0, 0}, []float64{1, 1})
	lo, hi := feasibleSegment(box, []float64{0.5, 0.5}, []float64{1, 0})
	if math.Abs(lo+0.5) > 1e-12 || math.Abs(hi-0.5) > 1e-12 {
		t.Errorf("segment = [%g, %g], want [-0.5, 0.5]", lo, hi)
	}
	// Zero direction: degenerate segment containing 0.
	lo, hi = feasibleSegment(box, []float64{0.5, 0.5}, []float64{0, 0})
	if lo > 0 || hi < 0 {
		t.Errorf("zero-dir segment = [%g, %g], must contain 0", lo, hi)
	}
}
