package opt

// PerturbedSeed returns a deterministic jittered copy of seed for a
// retry attempt: each coordinate moves by up to ±frac of its box range,
// clamped back into the box. The jitter derives from salt and the
// coordinate index through a splitmix64-style mixer, so identical
// (seed, box, salt, frac) inputs always produce the identical restart
// point — a requirement for crash-equivalent resume, where a re-run
// retry must land exactly where the interrupted run's retry did.
//
// A stalled Powell trajectory (every line search poisoned, or a ridge
// the direction set cannot escape) restarts from a genuinely different
// point; Brent ignores the seed, so 1-D retries rely on the sim-level
// recovery ladder instead.
func PerturbedSeed(seed []float64, box Box, salt uint64, frac float64) []float64 {
	if frac <= 0 {
		frac = 0.15
	}
	out := make([]float64, len(seed))
	for i := range seed {
		z := splitmix64(salt + uint64(i)*0x9e3779b97f4a7c15)
		// Map to [-1, 1) with 53-bit resolution.
		u := float64(z>>11)/float64(1<<52) - 1
		out[i] = seed[i] + u*frac*(box.Hi[i]-box.Lo[i])
	}
	return box.Clamp(out)
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-mixed 64-bit hash with no state.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SaltFrom derives a perturbation salt from a string identity (fault ID
// plus config index) and an attempt number, FNV-1a over the string mixed
// with the attempt. Deterministic across processes.
func SaltFrom(id string, attempt int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return splitmix64(h ^ uint64(attempt)<<1)
}
