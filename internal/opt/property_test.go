package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPowellNeverWorseThanSeed: the optimizer must return a point at
// least as good as its starting value, for arbitrary smooth objectives.
func TestPowellNeverWorseThanSeed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random positive-definite quadratic with cross terms.
		a := 1 + rng.Float64()*4
		b := 1 + rng.Float64()*4
		c := rng.Float64() // |c| < sqrt(ab) keeps it convex
		cx, cy := rng.Float64()*2-1, rng.Float64()*2-1
		obj := func(x []float64) float64 {
			u, v := x[0]-cx, x[1]-cy
			return a*u*u + b*v*v + c*u*v
		}
		box := NewBox([]float64{-3, -3}, []float64{3, 3})
		seedPt := []float64{rng.Float64()*6 - 3, rng.Float64()*6 - 3}
		res := Powell(obj, box, seedPt, 1e-6)
		return res.F <= obj(box.Clamp(append([]float64(nil), seedPt...)))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPowellFindsConvexMinimum: on convex quadratics inside the box the
// optimizer reaches the analytic minimum.
func TestPowellFindsConvexMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cx, cy := rng.Float64()*4-2, rng.Float64()*4-2 // inside [-3,3]
		obj := func(x []float64) float64 {
			u, v := x[0]-cx, x[1]-cy
			return u*u + 2*v*v
		}
		box := NewBox([]float64{-3, -3}, []float64{3, 3})
		res := Powell(obj, box, []float64{0, 0}, 1e-8)
		return math.Abs(res.X[0]-cx) < 1e-3 && math.Abs(res.X[1]-cy) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBrentStaysInBounds: whatever the objective, the minimizer never
// leaves [a, b].
func TestBrentStaysInBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Float64()*10 - 5
		b := a + 0.1 + rng.Float64()*10
		obj := func(x float64) float64 { return math.Sin(5*x) + 0.1*x }
		res := Brent(obj, a, b, 1e-8)
		return res.X[0] >= a-1e-12 && res.X[0] <= b+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGridMinimumIsTrueGridMinimum: Grid must return the exact minimum
// over its own sample set.
func TestGridMinimumIsTrueGridMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make(map[[2]int]float64)
		obj := func(x []float64) float64 {
			// Deterministic pseudo-random surface keyed by position.
			k := [2]int{int(math.Round(x[0] * 4)), int(math.Round(x[1] * 4))}
			if v, ok := vals[k]; ok {
				return v
			}
			v := rng.NormFloat64()
			vals[k] = v
			return v
		}
		box := NewBox([]float64{0, 0}, []float64{1, 1})
		res := Grid(obj, box, 5)
		min := math.Inf(1)
		for _, v := range vals {
			if v < min {
				min = v
			}
		}
		return res.F == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
