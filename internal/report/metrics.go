package report

import (
	"fmt"
	"io"
	"time"

	"repro/api"
)

// WriteMetrics renders a wire metrics snapshot (api.MetricsSnapshot):
// the per-phase timing table followed by the nominal-cache and
// solver-kernel summary lines. It is the one renderer shared by the
// atpg/experiments -stats flags and by tracereport's run_end metrics
// section; producers convert engine snapshots with repro.WireMetrics.
func WriteMetrics(w io.Writer, m api.MetricsSnapshot) error {
	// Old snapshots (pre-histogram schema) carry no latency data; keep
	// their table narrow instead of printing empty percentile columns.
	withLat := false
	for _, p := range m.Phases {
		if p.Latency != nil && p.Latency.Count > 0 {
			withLat = true
			break
		}
	}
	var t *Table
	if withLat {
		t = NewTable("phase", "units", "wall", "avg/unit", "p50", "p90", "p99", "max")
	} else {
		t = NewTable("phase", "units", "wall", "avg/unit")
	}
	for _, p := range m.Phases {
		if !withLat {
			t.AddRow(p.Name, p.Count,
				time.Duration(p.WallNS).Round(time.Millisecond),
				time.Duration(p.Avg()).Round(time.Microsecond))
			continue
		}
		var p50, p90, p99, max any = "-", "-", "-", "-"
		if l := p.Latency; l != nil && l.Count > 0 {
			p50 = time.Duration(l.P50).Round(time.Microsecond)
			p90 = time.Duration(l.P90).Round(time.Microsecond)
			p99 = time.Duration(l.P99).Round(time.Microsecond)
			max = time.Duration(l.Max).Round(time.Microsecond)
		}
		t.AddRow(p.Name, p.Count,
			time.Duration(p.WallNS).Round(time.Millisecond),
			time.Duration(p.Avg()).Round(time.Microsecond),
			p50, p90, p99, max)
	}
	if _, err := t.WriteTo(w); err != nil {
		return err
	}
	if len(m.Durations) > 0 {
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		d := NewTable("series", "count", "mean", "p50", "p90", "p99", "max")
		for _, h := range m.Durations {
			if h.Count == 0 {
				continue
			}
			if h.Name == "sim.newton_iters" {
				// A value histogram, not a duration: render plain numbers.
				d.AddRow(h.Name, h.Count, fmt.Sprintf("%.1f", h.Mean()),
					h.P50, h.P90, h.P99, h.Max)
				continue
			}
			d.AddRow(h.Name, h.Count,
				time.Duration(int64(h.Mean())).Round(time.Microsecond),
				time.Duration(h.P50).Round(time.Microsecond),
				time.Duration(h.P90).Round(time.Microsecond),
				time.Duration(h.P99).Round(time.Microsecond),
				time.Duration(h.Max).Round(time.Microsecond))
		}
		if _, err := d.WriteTo(w); err != nil {
			return err
		}
	}
	c := m.Cache
	if _, err := fmt.Fprintf(w,
		"\nnominal cache: %d entries, %.1f %% hit rate (%d hits, %d misses, %d shared flights, %d evictions)\n",
		c.Entries, 100*c.HitRate(), c.Hits, c.Misses, c.Shared, c.Evictions); err != nil {
		return err
	}
	sv := m.Solver
	if _, err := fmt.Fprintf(w,
		"solver kernel: %d solves, %d Newton iterations, %d factorizations (%d reused), %d device stamps, %d base snapshots (%d hits)\n",
		sv.Solves, sv.NewtonIterations, sv.Factorizations, sv.FactorReuses, sv.Stamps, sv.BaseBuilds, sv.BaseHits); err != nil {
		return err
	}
	if sv.WoodburySolves > 0 || sv.WoodburyFallbacks > 0 || sv.FaultyFactorAvoided > 0 {
		if _, err := fmt.Fprintf(w,
			"low-rank economy: %d Woodbury solves, %d guard fallbacks, %d faulty factorizations avoided\n",
			sv.WoodburySolves, sv.WoodburyFallbacks, sv.FaultyFactorAvoided); err != nil {
			return err
		}
	}
	if sv.RecoveryAttempts > 0 || sv.Recoveries > 0 || m.TaskPanics > 0 {
		if _, err := fmt.Fprintf(w,
			"resilience: %d recovery-ladder attempts (%d rescued solves), %d isolated task panics\n",
			sv.RecoveryAttempts, sv.Recoveries, m.TaskPanics); err != nil {
			return err
		}
	}
	return nil
}
