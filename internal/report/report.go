// Package report renders experiment results for terminals and files:
// aligned ASCII tables, tps-graph heat maps in the spirit of the paper's
// greyscale contour figures, and CSV series for external plotting.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var n int64
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
		m, err := io.WriteString(w, b.String())
		n += int64(m)
		return err
	}
	if err := line(t.header); err != nil {
		return n, err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return n, err
	}
	for _, r := range t.rows {
		if err := line(r); err != nil {
			return n, err
		}
	}
	return n, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_, _ = t.WriteTo(&b)
	return b.String()
}

// heatRamp maps a sensitivity value onto a glyph. The ramp follows the
// paper's legend orientation: insensitive regions (S near 1) are light,
// detecting regions (S < 0) are dark, catastrophic values are '#'.
var heatRamp = []struct {
	min  float64
	char byte
}{
	{0.5, '.'},  // clearly insensitive
	{0.0, ':'},  // inside the box but deviating
	{-0.5, '+'}, // detected
	{-1.5, 'x'}, // strongly detected
	{-5, 'X'},   // very strongly detected
}

func heatGlyph(s float64) byte {
	for _, r := range heatRamp {
		if s >= r.min {
			return r.char
		}
	}
	return '#'
}

// HeatMap renders a tps-graph-style grid of sensitivities as ASCII.
// s[j][i] is the value at column i, row j; rows print top-down from the
// LAST row so that the second axis increases upward as in the paper's
// figures. axis1/axis2 label the extremes.
func HeatMap(w io.Writer, s [][]float64, axis1, axis2 string) error {
	for j := len(s) - 1; j >= 0; j-- {
		var b strings.Builder
		b.WriteString("  ")
		for _, v := range s[j] {
			b.WriteByte(heatGlyph(v))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	legend := fmt.Sprintf("  x-axis: %s, y-axis: %s (up)\n  glyphs: '.' S>=0.5  ':' 0<=S<0.5  '+' -0.5<=S<0  'x','X','#' stronger detection\n",
		axis1, axis2)
	_, err := io.WriteString(w, legend)
	return err
}

// CSV writes series as comma-separated values with a header row. All
// columns must have equal length.
func CSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("report: %d headers for %d columns", len(headers), len(cols))
	}
	n := 0
	for i, c := range cols {
		if i == 0 {
			n = len(c)
		} else if len(c) != n {
			return fmt.Errorf("report: column %d length %d != %d", i, len(c), n)
		}
	}
	if _, err := io.WriteString(w, strings.Join(headers, ",")+"\n"); err != nil {
		return err
	}
	for r := 0; r < n; r++ {
		cells := make([]string, len(cols))
		for i, c := range cols {
			cells[i] = fmt.Sprintf("%g", c[r])
		}
		if _, err := io.WriteString(w, strings.Join(cells, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// GridCSV writes a 2-D grid as CSV: first column is axis2, first row is
// axis1, matching the tps-graph layout.
func GridCSV(w io.Writer, axis1, axis2 []float64, s [][]float64) error {
	var b strings.Builder
	b.WriteString("axis2\\axis1")
	for _, v := range axis1 {
		fmt.Fprintf(&b, ",%g", v)
	}
	b.WriteByte('\n')
	for j, row := range s {
		a2 := 0.0
		if j < len(axis2) {
			a2 = axis2[j]
		}
		fmt.Fprintf(&b, "%g", a2)
		for _, v := range row {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Engineering formats a value with an SI prefix, e.g. 2e-05 -> "20µ".
func Engineering(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs == 0:
		return "0"
	case abs >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.3g", v)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3gm", v*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3gµ", v*1e6)
	case abs >= 1e-9:
		return fmt.Sprintf("%.3gn", v*1e9)
	default:
		return fmt.Sprintf("%.3gp", v*1e12)
	}
}
