package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("id", "value")
	tb.AddRow(1, 3.14159)
	tb.AddRow("long-identifier", 2)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header+sep+2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id") || !strings.Contains(lines[0], "value") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "3.14159") {
		t.Errorf("float row: %q", lines[2])
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestHeatGlyphRamp(t *testing.T) {
	cases := []struct {
		s    float64
		want byte
	}{
		{1.0, '.'}, {0.5, '.'}, {0.2, ':'}, {-0.1, '+'}, {-1.0, 'x'},
		{-3, 'X'}, {-100, '#'},
	}
	for _, c := range cases {
		if got := heatGlyph(c.s); got != c.want {
			t.Errorf("glyph(%g) = %c, want %c", c.s, got, c.want)
		}
	}
}

func TestHeatMapOrientation(t *testing.T) {
	// Row 0 (bottom) insensitive, row 1 (top) detected: the top line of
	// the rendering must carry the detection glyphs.
	s := [][]float64{{1, 1}, {-1, -1}}
	var b strings.Builder
	if err := HeatMap(&b, s, "p1", "p2"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	if !strings.Contains(lines[0], "xx") {
		t.Errorf("top line %q, want detection row first", lines[0])
	}
	if !strings.Contains(lines[1], "..") {
		t.Errorf("second line %q, want insensitive row", lines[1])
	}
	if !strings.Contains(b.String(), "x-axis: p1") {
		t.Error("legend missing")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"x", "y"}, []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,y\n1,3\n2,4\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, []string{"x"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := CSV(&b, []string{"x", "y"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestGridCSV(t *testing.T) {
	var b strings.Builder
	err := GridCSV(&b, []float64{10, 20}, []float64{1, 2}, [][]float64{{0.1, 0.2}, {0.3, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	s := b.String()
	if !strings.HasPrefix(s, "axis2\\axis1,10,20\n") {
		t.Errorf("header: %q", s)
	}
	if !strings.Contains(s, "1,0.1,0.2\n") || !strings.Contains(s, "2,0.3,0.4\n") {
		t.Errorf("rows: %q", s)
	}
}

func TestEngineering(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {20e-6, "20µ"}, {1.5e3, "1.5k"}, {2.5, "2.5"},
		{3e-3, "3m"}, {4e-9, "4n"}, {5e-12, "5p"}, {7e6, "7M"}, {8e9, "8G"},
	}
	for _, c := range cases {
		if got := Engineering(c.v); got != c.want {
			t.Errorf("Engineering(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}
