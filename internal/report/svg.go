package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Minimal SVG line-plot rendering for waveforms and sweeps, so the tools
// can drop viewable artifacts next to their text reports without any
// external plotting dependency.

// Series is one named line of an SVG plot.
type Series struct {
	Name string
	X, Y []float64
}

// SVGOptions tunes the plot canvas.
type SVGOptions struct {
	Width, Height int
	Title         string
	XLabel        string
	YLabel        string
}

// DefaultSVGOptions returns a 720×420 canvas.
func DefaultSVGOptions(title, xlabel, ylabel string) SVGOptions {
	return SVGOptions{Width: 720, Height: 420, Title: title, XLabel: xlabel, YLabel: ylabel}
}

// seriesColors cycles through a readable palette.
var seriesColors = []string{"#1668b5", "#d1495b", "#2e8b57", "#b8860b", "#6a4fb3", "#444444"}

// SVGPlot renders the series as an SVG line chart. All series must have
// equal-length, non-empty X/Y slices.
func SVGPlot(w io.Writer, opts SVGOptions, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: SVG plot without series")
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d x / %d y points", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// 5 % vertical headroom.
	pad := 0.05 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	const ml, mr, mt, mb = 64, 16, 36, 46 // margins
	pw := float64(opts.Width - ml - mr)
	ph := float64(opts.Height - mt - mb)
	px := func(x float64) float64 { return ml + pw*(x-xmin)/(xmax-xmin) }
	py := func(y float64) float64 { return mt + ph*(1-(y-ymin)/(ymax-ymin)) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		opts.Width, opts.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	// Frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#999"/>`+"\n",
		ml, mt, pw, ph)
	// Title and axis labels.
	if opts.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", ml, xmlEscape(opts.Title))
	}
	if opts.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">%s</text>`+"\n",
			ml+pw/2, opts.Height-10, xmlEscape(opts.XLabel))
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.0f" text-anchor="middle" transform="rotate(-90 14 %.0f)">%s</text>`+"\n",
			mt+ph/2, mt+ph/2, xmlEscape(opts.YLabel))
	}
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="middle" fill="#555">%s</text>`+"\n",
			px(fx), mt+ph+16, Engineering(fx))
		fmt.Fprintf(&b, `<text x="%.0f" y="%.0f" text-anchor="end" fill="#555">%s</text>`+"\n",
			float64(ml-6), py(fy)+4, Engineering(fy))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n",
			ml, py(fy), ml+pw, py(fy))
	}
	// Series.
	for si, s := range series {
		color := seriesColors[si%len(seriesColors)]
		var pts strings.Builder
		for i := range s.X {
			if i > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.2f,%.2f", px(s.X[i]), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			pts.String(), color)
		// Legend.
		ly := mt + 16 + 16*si
		fmt.Fprintf(&b, `<line x1="%.0f" y1="%d" x2="%.0f" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			ml+pw-120, ly, ml+pw-100, ly, color)
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" fill="#333">%s</text>`+"\n",
			ml+pw-94, ly+4, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
