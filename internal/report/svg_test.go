package report

import (
	"strings"
	"testing"
)

func TestSVGPlotBasics(t *testing.T) {
	var b strings.Builder
	err := SVGPlot(&b, DefaultSVGOptions("Step response", "t [s]", "V"),
		Series{Name: "Vout", X: []float64{0, 1e-6, 2e-6}, Y: []float64{2.25, 1.3, 1.25}},
		Series{Name: "Vmid", X: []float64{0, 1e-6, 2e-6}, Y: []float64{3.1, 2.1, 2.05}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "Step response", "Vout", "Vmid", "t [s]"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("polyline count = %d, want 2", strings.Count(out, "<polyline"))
	}
}

func TestSVGPlotErrors(t *testing.T) {
	var b strings.Builder
	if err := SVGPlot(&b, DefaultSVGOptions("", "", "")); err == nil {
		t.Error("no series accepted")
	}
	if err := SVGPlot(&b, DefaultSVGOptions("", "", ""),
		Series{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("ragged series accepted")
	}
	if err := SVGPlot(&b, DefaultSVGOptions("", "", ""),
		Series{Name: "empty"}); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSVGPlotDegenerateRanges(t *testing.T) {
	var b strings.Builder
	// Constant series: the range guards must avoid division by zero.
	err := SVGPlot(&b, DefaultSVGOptions("flat", "x", "y"),
		Series{Name: "c", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") {
		t.Error("degenerate ranges produced NaN coordinates")
	}
}

func TestXMLEscape(t *testing.T) {
	if got := xmlEscape(`a<b>&"c"`); got != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("escape = %q", got)
	}
}
