package server

// The distributed-mode coordinator: a worker registry and shard queue
// behind four HTTP routes. The protocol is pull-based — workers
// register (POST /v1/workers), long-poll for shards, heartbeat while
// computing, and post results — so workers need no listening sockets
// and sit happily behind NAT. Every shard carries a lease: a worker
// that stops checking in (death, partition, SIGKILL mid-shard) has its
// shard re-queued by the reaper, so a lost worker costs a shard retry,
// never the job.
//
// Routes (registered only when Options.Distributed is set):
//
//	POST /v1/workers                register (api.WorkerHello → api.WorkerWelcome)
//	POST /v1/workers/{id}/poll      long-poll for a shard (200 api.ShardRequest | 204)
//	POST /v1/workers/{id}/heartbeat extend lease, report progress (api.WorkerHeartbeat)
//	POST /v1/workers/{id}/result    deliver a shard (api.ShardResult; 410 when stale)

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/failpoint"
	"repro/internal/obs"
)

// Failpoint sites on the distribution seams: fpShardAssign fails shard
// hand-out (the worker sees an error reply and polls again), and
// fpShardMerge fails the coordinator-side merge of a delivered shard —
// the job-fatal path cmd/chaos uses to prove merge failures are loud,
// not silent.
var (
	fpShardAssign = failpoint.At("server.shard.assign")
	fpShardMerge  = failpoint.At("server.shard.merge")
)

// shardState is the lifecycle of one shard inside the coordinator.
type shardState int

const (
	shardPending  shardState = iota // queued, waiting for a worker
	shardAssigned                   // leased to a worker
	shardDone                       // result merged (or taken over locally)
)

// shard is one unit of distributed work: a slice of a job's fault list
// plus the callbacks wiring it back to its job's runner. Mutable fields
// are guarded by the coordinator's mutex.
type shard struct {
	id     string
	jobID  string
	seq    int
	total  int
	faults []string
	req    api.JobRequest

	// results delivers the accepted ShardResult to the job's runner;
	// buffered to the job's shard count, so sends never block.
	results chan<- shardDelivery
	// notify emits a journal event into the job's tracer (safe after the
	// run ends — a sealed journal counts, not writes).
	notify func(name string, attrs ...obs.Attr)
	// progress folds worker-reported fault completions into the job's
	// progress tracker (delta may be negative on requeue).
	progress func(delta int)

	state      shardState
	worker     string
	deadline   time.Time
	assignedAt time.Time
	attempts   int
	reported   int
}

// shardDelivery hands an accepted result (and the assignment time the
// journal stitcher needs) to the runner.
type shardDelivery struct {
	sh         *shard
	res        *api.ShardResult
	assignedAt time.Time
}

// workerState is the registry entry of one live worker.
type workerState struct {
	id       string
	name     string
	pid      int
	joined   time.Time
	lastSeen time.Time
	// completed counts shards this worker delivered (per-worker
	// Prometheus series; the series disappears with the worker).
	completed uint64
}

// coordinator is the distributed-mode state of a Server: worker
// registry, shard queue, and lease bookkeeping.
type coordinator struct {
	lease    time.Duration
	pollWait time.Duration

	mu       sync.Mutex
	seq      int
	workers  map[string]*workerState
	pending  []*shard          // FIFO; requeued shards go to the front
	assigned map[string]*shard // by shard ID
	// runs maps job IDs of active distributed runs to their journal
	// event emitters, so worker lifecycle events land in the journals of
	// the jobs they affect.
	runs map[string]func(name string, attrs ...obs.Attr)
	// wake is closed and replaced whenever work arrives; idle pollers
	// wait on it.
	wake chan struct{}

	assignedTotal  atomic.Uint64
	requeuedTotal  atomic.Uint64
	completedTotal atomic.Uint64
}

func newCoordinator(lease, pollWait time.Duration) *coordinator {
	return &coordinator{
		lease:    lease,
		pollWait: pollWait,
		workers:  make(map[string]*workerState),
		assigned: make(map[string]*shard),
		runs:     make(map[string]func(name string, attrs ...obs.Attr)),
		wake:     make(chan struct{}),
	}
}

// wakeLocked wakes every idle poller. Callers hold c.mu.
func (c *coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// await returns the current wake channel.
func (c *coordinator) await() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wake
}

// attach registers an active distributed run's journal emitter;
// detach removes it.
func (c *coordinator) attach(jobID string, notify func(string, ...obs.Attr)) {
	c.mu.Lock()
	c.runs[jobID] = notify
	c.mu.Unlock()
}

func (c *coordinator) detach(jobID string) {
	c.mu.Lock()
	delete(c.runs, jobID)
	c.mu.Unlock()
}

// notifyRunsLocked emits a worker lifecycle event into every active
// run's journal. Callers hold c.mu; emission itself is lock-free
// (tracers are concurrency-safe).
func (c *coordinator) notifyRunsLocked(name string, attrs ...obs.Attr) {
	for _, notify := range c.runs {
		notify(name, attrs...)
	}
}

// register admits a worker and mints its identity.
func (c *coordinator) register(hello api.WorkerHello) api.WorkerWelcome {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	name := hello.Name
	if name == "" {
		name = id
	}
	now := time.Now()
	c.workers[id] = &workerState{id: id, name: name, pid: hello.PID, joined: now, lastSeen: now}
	c.notifyRunsLocked("worker_join", obs.String("worker", name), obs.Int("pid", hello.PID))
	c.wakeLocked() // an idle fleet may have pollers parked on an empty queue
	return api.WorkerWelcome{
		V:        api.Version,
		WorkerID: id,
		LeaseMS:  c.lease.Milliseconds(),
		PollMS:   c.pollWait.Milliseconds(),
	}
}

// touch refreshes a worker's liveness; reports false for unknown
// workers (the 404 that tells a worker to re-register after a
// coordinator restart).
func (c *coordinator) touch(workerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if ok {
		w.lastSeen = time.Now()
	}
	return ok
}

// enqueue adds a job's shards to the queue.
func (c *coordinator) enqueue(shards []*shard) {
	c.mu.Lock()
	c.pending = append(c.pending, shards...)
	c.wakeLocked()
	c.mu.Unlock()
}

// assign pops the next pending shard for a worker, or nil when the
// queue is empty (or the worker unknown — second return false).
func (c *coordinator) assign(workerID string) (*shard, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return nil, false
	}
	w.lastSeen = time.Now()
	if len(c.pending) == 0 {
		return nil, true
	}
	sh := c.pending[0]
	c.pending = c.pending[1:]
	sh.state = shardAssigned
	sh.worker = workerID
	now := time.Now()
	sh.deadline = now.Add(c.lease)
	sh.assignedAt = now
	sh.attempts++
	c.assigned[sh.id] = sh
	c.assignedTotal.Add(1)
	sh.notify("shard_assign",
		obs.String("shard", sh.id), obs.String("worker", w.name),
		obs.Int("faults", len(sh.faults)), obs.Int("attempt", sh.attempts))
	return sh, true
}

// heartbeat extends a shard lease and folds the worker's progress
// report into the job's tracker. Unknown workers report false.
func (c *coordinator) heartbeat(hb api.WorkerHeartbeat) bool {
	c.mu.Lock()
	w, ok := c.workers[hb.WorkerID]
	if !ok {
		c.mu.Unlock()
		return false
	}
	w.lastSeen = time.Now()
	var progress func(int)
	delta := 0
	if sh := c.assigned[hb.ShardID]; sh != nil && sh.worker == hb.WorkerID && sh.state == shardAssigned {
		sh.deadline = time.Now().Add(c.lease)
		if d := int(hb.Done) - sh.reported; d > 0 {
			sh.reported = int(hb.Done)
			delta, progress = d, sh.progress
		}
	}
	c.mu.Unlock()
	if progress != nil {
		progress(delta)
	}
	return true
}

// result accepts a delivered shard. Results are deterministic, so the
// first delivery wins regardless of which worker (or lease epoch)
// computed it; anything later is stale. Returns resultStale for
// shards this coordinator no longer wants and resultUnknownWorker for
// unregistered workers.
type resultVerdict int

const (
	resultAccepted resultVerdict = iota
	resultStale
	resultUnknownWorker
)

func (c *coordinator) result(workerID string, res *api.ShardResult) resultVerdict {
	c.mu.Lock()
	w, ok := c.workers[workerID]
	if !ok {
		c.mu.Unlock()
		return resultUnknownWorker
	}
	w.lastSeen = time.Now()
	sh := c.assigned[res.ShardID]
	if sh == nil {
		// Not assigned — it may have been requeued and still be pending
		// (presumed-dead worker finishing after all): accept that too.
		for i, p := range c.pending {
			if p.id == res.ShardID && p.jobID == res.JobID {
				sh = p
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				break
			}
		}
	}
	if sh == nil || sh.state == shardDone || sh.jobID != res.JobID {
		c.mu.Unlock()
		return resultStale
	}
	delete(c.assigned, sh.id)
	sh.state = shardDone
	w.completed++
	c.completedTotal.Add(1)
	// Credit the shard's remaining progress units in one step.
	delta := len(sh.faults) - sh.reported
	sh.reported = len(sh.faults)
	progress := sh.progress
	assignedAt := sh.assignedAt
	c.mu.Unlock()

	if delta != 0 {
		progress(delta)
	}
	sh.notify("shard_done",
		obs.String("shard", sh.id), obs.String("worker", res.WorkerID),
		obs.Int("solutions", len(res.Solutions)))
	sh.results <- shardDelivery{sh: sh, res: res, assignedAt: assignedAt}
	return resultAccepted
}

// reap requeues shards whose lease expired and drops workers that
// vanished (no contact for two leases). Runs periodically from the
// server's reaper goroutine.
func (c *coordinator) reap(now time.Time) {
	c.mu.Lock()
	var rollbacks []func()
	for id, sh := range c.assigned {
		if now.Before(sh.deadline) {
			continue
		}
		delete(c.assigned, id)
		sh.state = shardPending
		lost, reported := sh.worker, sh.reported
		sh.worker = ""
		sh.reported = 0
		c.pending = append([]*shard{sh}, c.pending...)
		c.requeuedTotal.Add(1)
		sh.notify("shard_requeue",
			obs.String("shard", sh.id), obs.String("worker", lost),
			obs.Int("attempt", sh.attempts))
		if reported > 0 {
			progress := sh.progress
			rollbacks = append(rollbacks, func() { progress(-reported) })
		}
	}
	cutoff := now.Add(-2 * c.lease)
	for id, w := range c.workers {
		if w.lastSeen.After(cutoff) {
			continue
		}
		delete(c.workers, id)
		c.notifyRunsLocked("worker_lost", obs.String("worker", w.name))
	}
	if len(rollbacks) > 0 || len(c.pending) > 0 {
		c.wakeLocked()
	}
	c.mu.Unlock()
	for _, fn := range rollbacks {
		fn()
	}
}

// steal removes one pending shard of the given job from the queue for
// local execution — the no-workers fallback. The caller (the job's
// runner) owns the shard from here on; a straggler result for it is
// answered with 410.
func (c *coordinator) steal(jobID string) *shard {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, sh := range c.pending {
		if sh.jobID != jobID {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		sh.state = shardDone
		return sh
	}
	return nil
}

// abandon removes every shard of a job (runner exiting: cancellation,
// merge failure, or completion). Workers still computing abandoned
// shards get 410 on delivery and move on.
func (c *coordinator) abandon(jobID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.pending[:0]
	for _, sh := range c.pending {
		if sh.jobID != jobID {
			kept = append(kept, sh)
		}
	}
	c.pending = kept
	for id, sh := range c.assigned {
		if sh.jobID == jobID {
			delete(c.assigned, id)
		}
	}
}

// liveWorkers returns the registered worker count.
func (c *coordinator) liveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// distSnapshot is a point-in-time view of the coordinator for status,
// metrics, and tests.
type distSnapshot struct {
	Workers       []workerInfo
	Pending       int
	Assigned      uint64
	Requeued      uint64
	Completed     uint64
	AssignedLive  int
	WorkersJoined int
}

// workerInfo is one worker's registry view.
type workerInfo struct {
	ID        string
	Name      string
	Completed uint64
}

func (c *coordinator) snapshot() distSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := distSnapshot{
		Pending:       len(c.pending),
		Assigned:      c.assignedTotal.Load(),
		Requeued:      c.requeuedTotal.Load(),
		Completed:     c.completedTotal.Load(),
		AssignedLive:  len(c.assigned),
		WorkersJoined: c.seq,
	}
	for _, w := range c.workers {
		snap.Workers = append(snap.Workers, workerInfo{ID: w.id, Name: w.name, Completed: w.completed})
	}
	return snap
}

// DistStats returns the coordinator's counters (zero value when the
// server is not distributed) — the observability hook tests and
// cmd/chaos assert against.
func (s *Server) DistStats() (workers, pending int, assigned, requeued, completed uint64) {
	if s.coord == nil {
		return 0, 0, 0, 0, 0
	}
	snap := s.coord.snapshot()
	return len(snap.Workers), snap.Pending, snap.Assigned, snap.Requeued, snap.Completed
}

// reapLoop drives lease expiry while the daemon runs.
func (s *Server) reapLoop() {
	t := time.NewTicker(s.opt.WorkerLease / 4)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case now := <-t.C:
			s.coord.reap(now)
		}
	}
}

// workerRoutes mounts the shard protocol.
func (s *Server) workerRoutes() {
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkerJoin)
	s.mux.HandleFunc("POST /v1/workers/{id}/poll", s.handleWorkerPoll)
	s.mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	s.mux.HandleFunc("POST /v1/workers/{id}/result", s.handleWorkerResult)
}

// decodeBody strictly decodes a bounded JSON request body.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{ Validate() error }) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error(), 0)
		return false
	}
	if err := v.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return false
	}
	return true
}

func (s *Server) handleWorkerJoin(w http.ResponseWriter, r *http.Request) {
	var hello api.WorkerHello
	if !decodeBody(w, r, &hello) {
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining", 0)
		return
	}
	welcome := s.coord.register(hello)
	w.Header().Set("Content-Type", "application/json")
	writeWire(w, welcome)
}

func (s *Server) handleWorkerPoll(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	if err := fpShardAssign.Hit(); err != nil {
		writeError(w, http.StatusInternalServerError, "shard assignment failed: "+err.Error(), 0)
		return
	}
	deadline := time.Now().Add(s.coord.pollWait)
	for {
		sh, known := s.coord.assign(workerID)
		if !known {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no such worker %q (re-register)", workerID), 0)
			return
		}
		if sh != nil {
			sr := api.ShardRequest{
				V:        api.Version,
				JobID:    sh.jobID,
				ShardID:  sh.id,
				Seq:      sh.seq,
				Total:    sh.total,
				FaultIDs: sh.faults,
				Request:  sh.req,
			}
			w.Header().Set("Content-Type", "application/json")
			writeWire(w, sr)
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		wait := 250 * time.Millisecond
		if remain < wait {
			wait = remain
		}
		t := time.NewTimer(wait)
		select {
		case <-r.Context().Done():
			t.Stop()
			return
		case <-s.baseCtx.Done():
			t.Stop()
			w.WriteHeader(http.StatusNoContent)
			return
		case <-s.coord.await():
			t.Stop()
		case <-t.C:
		}
	}
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	var hb api.WorkerHeartbeat
	if !decodeBody(w, r, &hb) {
		return
	}
	if hb.WorkerID != workerID {
		writeError(w, http.StatusBadRequest, "heartbeat worker_id does not match path", 0)
		return
	}
	if !s.coord.heartbeat(hb) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such worker %q (re-register)", workerID), 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleWorkerResult(w http.ResponseWriter, r *http.Request) {
	workerID := r.PathValue("id")
	var res api.ShardResult
	if !decodeBody(w, r, &res) {
		return
	}
	switch s.coord.result(workerID, &res) {
	case resultUnknownWorker:
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such worker %q (re-register)", workerID), 0)
	case resultStale:
		// The shard was already delivered, taken over locally, or its job
		// is gone. The worker's effort is redundant, not wrong.
		writeError(w, http.StatusGone, fmt.Sprintf("shard %q is no longer wanted", res.ShardID), 0)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}
