package server

// Acceptance tests of distributed mode. The contract under test is the
// one DESIGN.md §15 states: a coordinator + workers run of a request
// produces result bytes identical to a single-node run — including
// with a worker killed mid-shard, with no workers at all (local
// scavenging), and across a coordinator crash/restart (checkpoint-aware
// resharding). All tests run real ATPG on the reduced macro and are
// skipped under -short.

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/internal/obs"
)

// distRequest is the shared small-but-real job of the distributed
// tests (same shape as the resume tests).
func distRequest() api.JobRequest { return resumeRequest() }

// waitSucceeded waits with real-ATPG patience (waitState's 10s budget
// fits stub executors, not -race engine runs).
func waitSucceeded(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(4 * time.Minute)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.State == api.StateSucceeded {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want succeeded", id, st.State, st.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s never succeeded", id)
}

// distReference computes (once per test process) the single-node
// result bytes of distRequest — the identity target every distributed
// variant must hit.
var (
	distRefOnce  sync.Once
	distRefBytes []byte
)

func distReference(t *testing.T) []byte {
	t.Helper()
	distRefOnce.Do(func() {
		dir, err := os.MkdirTemp(t.TempDir(), "ref")
		if err != nil {
			return
		}
		s, err := New(Options{DataDir: dir, RatePerSec: -1, CheckpointEvery: time.Millisecond})
		if err != nil {
			return
		}
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()
		st := submit(t, hs.URL, distRequest())
		waitSucceeded(t, hs.URL, st.ID)
		paths, err := s.Store().Job(st.ID)
		if err != nil {
			return
		}
		distRefBytes, _ = os.ReadFile(paths.Result)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	if len(distRefBytes) == 0 {
		t.Fatal("single-node reference run failed")
	}
	return distRefBytes
}

// distOptions is the coordinator configuration of the tests: two
// faults per shard (so a four-fault job still exercises partitioning
// and merge without paying four cold sessions), and a lease generous
// enough that heartbeat starvation on a loaded single-core -race box
// never fakes a worker death — the worker-death test kills its victim
// explicitly rather than by lease pressure.
func distOptions(dir string) Options {
	return Options{
		DataDir:         dir,
		RatePerSec:      -1,
		CheckpointEvery: time.Millisecond,
		Distributed:     true,
		ShardSize:       2,
		WorkerLease:     15 * time.Second,
		PollWait:        time.Second,
		FallbackGrace:   time.Hour, // scavenging off unless a test wants it
	}
}

// startTestWorker runs one shard worker against base until the
// returned cancel fires (the test's way of killing a worker).
func startTestWorker(t *testing.T, base, name string, client *http.Client) (context.CancelFunc, <-chan struct{}) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = RunWorker(ctx, WorkerOptions{
			Coordinator: base,
			Name:        name,
			Client:      client,
			Logf:        func(format string, args ...any) { t.Logf("worker %s: "+format, append([]any{name}, args...)...) },
		})
	}()
	t.Cleanup(func() { cancel(); <-done })
	return cancel, done
}

// TestDistributedBitIdentical is the tentpole acceptance test: a
// coordinator with two workers produces result bytes identical to the
// single-node run, and the stitched journal validates with shard-tagged
// spans attributed to both workers.
func TestDistributedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real ATPG runs; skipped under -short")
	}
	want := distReference(t)

	s, err := New(distOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	startTestWorker(t, hs.URL, "alpha", nil)
	startTestWorker(t, hs.URL, "beta", nil)

	st := submit(t, hs.URL, distRequest())
	waitSucceeded(t, hs.URL, st.ID)

	paths, err := s.Store().Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(paths.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed result differs from single-node run:\ndist:   %d bytes\nsingle: %d bytes", len(got), len(want))
	}

	// The stitched journal must validate and attribute shard work.
	jf, err := os.Open(paths.Journal)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	stats, err := obs.Validate(jf)
	if err != nil {
		t.Fatalf("stitched journal invalid: %v", err)
	}
	if stats.Version != obs.SchemaVersion {
		t.Fatalf("journal version %d, want %d", stats.Version, obs.SchemaVersion)
	}
	raw, err := os.ReadFile(paths.Journal)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, wantSub := range []string{`"worker_join"`, `"shard_assign"`, `"shard_done"`, `"shard":"` + st.ID + `/s0"`} {
		if !strings.Contains(text, wantSub) {
			t.Errorf("stitched journal missing %s", wantSub)
		}
	}
	// Two two-fault shards across two workers: scheduling may be
	// lopsided, so only require that at least one named worker shows up.
	if !strings.Contains(text, `"worker":"alpha"`) && !strings.Contains(text, `"worker":"beta"`) {
		t.Error("stitched journal attributes no spans to any worker")
	}

	workers, _, assigned, _, completed := s.DistStats()
	if workers != 2 {
		t.Errorf("DistStats workers = %d, want 2", workers)
	}
	if assigned < 2 || completed < 2 {
		t.Errorf("DistStats assigned/completed = %d/%d, want >= 2 each", assigned, completed)
	}
}

// crashingTransport fails every shard-result delivery and kills its
// worker on the first attempt — a deterministic "worker dies between
// computing a shard and delivering it".
type crashingTransport struct {
	kill    context.CancelFunc
	crashed atomic.Bool
}

func (ct *crashingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if strings.HasSuffix(r.URL.Path, "/result") {
		ct.crashed.Store(true)
		ct.kill()
		return nil, errors.New("worker crashed mid-delivery")
	}
	return http.DefaultTransport.RoundTrip(r)
}

// TestDistributedWorkerDeathRequeues kills a worker mid-shard and
// requires the lease reaper to re-queue its shard, a surviving worker
// to recompute it, and the final bytes to stay identical.
func TestDistributedWorkerDeathRequeues(t *testing.T) {
	if testing.Short() {
		t.Skip("real ATPG runs; skipped under -short")
	}
	want := distReference(t)

	s, err := New(distOptions(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// The victim computes its first shard, then dies delivering it.
	ct := &crashingTransport{}
	cancelVictim, _ := startTestWorker(t, hs.URL, "victim", &http.Client{Transport: ct})
	ct.kill = cancelVictim
	startTestWorker(t, hs.URL, "survivor", nil)

	st := submit(t, hs.URL, distRequest())
	waitSucceeded(t, hs.URL, st.ID)

	if !ct.crashed.Load() {
		t.Log("victim never got a shard (survivor took them all) — requeue not exercised")
	} else {
		_, _, _, requeued, _ := s.DistStats()
		if requeued < 1 {
			t.Errorf("DistStats requeued = %d, want >= 1 after worker death", requeued)
		}
	}

	paths, err := s.Store().Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(paths.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("result after worker death differs from single-node run")
	}
	jf, err := os.Open(paths.Journal)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := obs.Validate(jf); err != nil {
		t.Fatalf("journal invalid after worker death: %v", err)
	}
}

// TestDistributedScavengeFallback runs a distributed daemon with no
// workers at all: after FallbackGrace the coordinator must pull the
// shards back and run them itself, still byte-identical.
func TestDistributedScavengeFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("real ATPG runs; skipped under -short")
	}
	want := distReference(t)

	opt := distOptions(t.TempDir())
	opt.FallbackGrace = 200 * time.Millisecond
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	st := submit(t, hs.URL, distRequest())
	waitSucceeded(t, hs.URL, st.ID)

	paths, err := s.Store().Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(paths.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scavenged result differs from single-node run")
	}
	raw, err := os.ReadFile(paths.Journal)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"worker":"local"`) {
		t.Error("journal does not attribute scavenged shards to the local fallback")
	}
	if _, err := obs.Validate(bytes.NewReader(raw)); err != nil {
		t.Fatalf("journal invalid after scavenging: %v", err)
	}
}

// TestDistributedCoordinatorRestartReshards crashes the coordinator
// mid-job and restarts it over the same data directory: the merge
// checkpoint must confine resharding to the unsolved remainder and the
// final bytes must match the single-node run.
func TestDistributedCoordinatorRestartReshards(t *testing.T) {
	if testing.Short() {
		t.Skip("real ATPG runs; skipped under -short")
	}
	want := distReference(t)

	dir := t.TempDir()
	s1, err := New(distOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	cancelW1, _ := startTestWorker(t, hs1.URL, "gen1", nil)

	st := submit(t, hs1.URL, distRequest())
	paths, err := s1.Store().Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Crash once the first merged shard has been checkpointed (or the
	// job finished first — then the restart path simply serves it).
	deadline := time.Now().Add(4 * time.Minute)
	for time.Now().Before(deadline) {
		if _, err := os.Stat(paths.Checkpoint); err == nil {
			break
		}
		if getStatus(t, hs1.URL, st.ID).State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancelW1()
	s1.Kill()
	hs1.Close()

	s2, err := New(distOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	defer hs2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	startTestWorker(t, hs2.URL, "gen2", nil)

	waitSucceeded(t, hs2.URL, st.ID)
	got, err := os.ReadFile(paths.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restarted coordinator result differs from single-node run")
	}
	jf, err := os.Open(paths.Journal)
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	if _, err := obs.Validate(jf); err != nil {
		t.Fatalf("journal invalid after coordinator restart: %v", err)
	}
}
