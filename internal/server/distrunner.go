package server

// The distributed twin of runner.go: executeSharded runs one job by
// partitioning its fault dictionary into shards, fanning them out
// through the coordinator, and merging worker records back into the
// dictionary-ordered solution slice a local run would have produced.
// Compaction and coverage then run locally over the merged solutions —
// exactly the code path execute takes — so the encoded result is
// byte-identical to a single-node run of the same request.
//
// Durability composes with the existing checkpoint machinery: the merge
// run feeds the job's checkpoint as shards land, so a coordinator
// restart reshards only the unsolved remainder, and a single-node
// checkpoint resumes into a distributed run (and vice versa — the
// fingerprint ignores sharding entirely).

import (
	"bytes"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"context"

	"repro"
	"repro/api"
	"repro/internal/obs"
)

// executeAuto is the execFn of a distributed daemon: jobs run sharded
// when the coordinator exists, locally otherwise.
func (s *Server) executeAuto(ctx context.Context, j *Job, resume bool) error {
	if s.coord != nil {
		return s.executeSharded(ctx, j, resume)
	}
	return s.execute(ctx, j, resume)
}

// emitGate serializes coordinator-side journal events against the seal
// of the job's tracer: shard lifecycle notifications arriving after the
// run finished (a straggler result, a reaped lease) are dropped rather
// than written after the journal's terminal record.
type emitGate struct {
	tr     *obs.Tracer
	mu     sync.RWMutex
	sealed bool
}

func (g *emitGate) emit(name string, attrs ...obs.Attr) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if !g.sealed {
		g.tr.Emit(name, attrs...)
	}
}

func (g *emitGate) seal() {
	g.mu.Lock()
	g.sealed = true
	g.mu.Unlock()
}

// stitchEntry pairs a worker journal with its shard's partition index,
// so stitching order is deterministic regardless of delivery order.
type stitchEntry struct {
	seq int
	sj  obs.ShardJournal
}

// executeSharded runs one job in distributed mode. The coordinator-side
// journal accumulates in memory (teeing live events to the SSE hub as
// usual); at the end the worker journals are stitched into it in shard
// order and the whole thing is written as the job journal.
func (s *Server) executeSharded(ctx context.Context, j *Job, resume bool) (err error) {
	t0 := time.Now()
	var jbuf bytes.Buffer
	journal := obs.NewJournal(&jbuf)

	req := j.Request()
	delta := req.Compact.Delta
	if delta <= 0 {
		delta = repro.DefaultCompactOptions().Delta
	}

	tracer := obs.New(multiSink{journal, j.hub},
		obs.String("cmd", "atpgd"),
		obs.String("job", j.ID),
		obs.F64("delta", delta),
		obs.Bool("distributed", true))
	prog := obs.NewProgress()
	j.mu.Lock()
	j.prog = prog
	j.mu.Unlock()

	gate := &emitGate{tr: tracer}
	s.coord.attach(j.ID, gate.emit)

	var stitches []stitchEntry
	var sys *repro.System
	defer func() {
		// Detach from the coordinator and seal the event gate BEFORE
		// finishing the tracer: anything the shard machinery emits from
		// here on must not land after the journal's terminal record.
		s.coord.abandon(j.ID)
		s.coord.detach(j.ID)
		gate.seal()
		s.engineLive.Store(nil)
		if sys != nil {
			final := repro.WireMetrics(sys.Metrics())
			s.lastEngine.Store(&final)
			tracer.Finish(err, obs.Any("metrics", final))
		} else {
			tracer.Finish(err)
		}
		_ = journal.Close()

		// Stitch worker journals into the coordinator's, in shard order.
		// A stitch failure (e.g. a worker shipped a corrupt journal) must
		// not fail the job: fall back to the coordinator journal alone.
		sort.Slice(stitches, func(a, b int) bool { return stitches[a].seq < stitches[b].seq })
		shardJournals := make([]obs.ShardJournal, len(stitches))
		for i, st := range stitches {
			shardJournals[i] = st.sj
		}
		var out bytes.Buffer
		if serr := obs.Stitch(&out, jbuf.Bytes(), shardJournals); serr != nil {
			fmt.Fprintf(os.Stderr, "atpgd: job %s: journal stitch: %v (keeping coordinator journal)\n", j.ID, serr)
			out.Reset()
			out.Write(jbuf.Bytes())
		}
		if werr := writeFileAtomic(j.paths.Journal, out.Bytes()); werr != nil && err == nil {
			err = werr
		}
	}()

	sys, err = repro.SystemFromRequest(ctx, req,
		repro.WithTracer(tracer),
		repro.WithProgress(prog),
		repro.WithCheckpoint(j.paths.Checkpoint, s.opt.CheckpointEvery, resume),
	)
	if err != nil {
		return err
	}
	live := func() api.MetricsSnapshot { return repro.WireMetrics(sys.Metrics()) }
	s.engineLive.Store(&live)

	faults := sys.RequestFaults()
	merge, err := sys.OpenMerge(faults)
	if err != nil {
		return err
	}
	pending := merge.Pending()

	// Coordinator progress is fault-granular: workers heartbeat their
	// per-shard fault completions and the deltas aggregate here, so SSE
	// subscribers see one unified generate phase across the fleet.
	prog.SetPhase(repro.PhaseGenerate, len(faults))
	if n := len(faults) - len(pending); n > 0 {
		prog.Step(n)
	}

	size := s.opt.ShardSize
	total := (len(pending) + size - 1) / size
	results := make(chan shardDelivery, total)
	shards := make([]*shard, 0, total)
	for seq := 0; seq < total; seq++ {
		chunk := pending[seq*size : min((seq+1)*size, len(pending))]
		ids := make([]string, len(chunk))
		for i, f := range chunk {
			ids[i] = f.ID()
		}
		shards = append(shards, &shard{
			id:       fmt.Sprintf("%s/s%d", j.ID, seq),
			jobID:    j.ID,
			seq:      seq,
			total:    total,
			faults:   ids,
			req:      req,
			results:  results,
			notify:   gate.emit,
			progress: func(d int) { prog.Step(d) },
		})
	}
	s.coord.enqueue(shards)

	mergeShard := func(sols []api.ShardSolution) error {
		for _, ws := range sols {
			if merr := merge.Record(repro.ShardSolutionRecord(ws)); merr != nil {
				return merr
			}
		}
		return nil
	}

	var workerQuar []api.QuarantineInfo
	// The scavenger ticker drives the no-workers fallback: once the
	// fleet has been empty past FallbackGrace, the coordinator pulls
	// pending shards back and runs them through its own session, so a
	// distributed daemon with zero workers degrades to a slower local
	// run instead of hanging.
	scav := time.NewTicker(100 * time.Millisecond)
	defer scav.Stop()
	lastAlive := time.Now()

	for merge.Remaining() > 0 {
		select {
		case <-ctx.Done():
			merge.Flush()
			return fmt.Errorf("server: distributed job %s: %w", j.ID, ctx.Err())

		case d := <-results:
			if ferr := fpShardMerge.Hit(); ferr != nil {
				merge.Flush()
				return fmt.Errorf("server: merge shard %s: %w", d.sh.id, ferr)
			}
			if merr := mergeShard(d.res.Solutions); merr != nil {
				merge.Flush()
				return fmt.Errorf("server: merge shard %s: %w", d.sh.id, merr)
			}
			workerQuar = append(workerQuar, d.res.Quarantined...)
			if d.res.Journal != "" {
				stitches = append(stitches, stitchEntry{seq: d.sh.seq, sj: obs.ShardJournal{
					Shard:    d.sh.id,
					Worker:   d.res.WorkerID,
					OffsetNS: d.assignedAt.Sub(t0).Nanoseconds(),
					Data:     []byte(d.res.Journal),
				}})
			}

		case <-scav.C:
			if s.coord.liveWorkers() > 0 {
				lastAlive = time.Now()
				continue
			}
			if time.Since(lastAlive) < s.opt.FallbackGrace {
				continue
			}
			sh := s.coord.steal(j.ID)
			if sh == nil {
				continue
			}
			gate.emit("shard_assign",
				obs.String("shard", sh.id), obs.String("worker", "local"),
				obs.Int("faults", len(sh.faults)))
			fs, ferr := repro.FaultsByID(faults, sh.faults)
			if ferr != nil {
				merge.Flush()
				return ferr
			}
			sols, gerr := sys.GenerateShardContext(ctx, sh.id, fs)
			// The shard run re-phased the progress tracker at its own
			// scale; restore the job-wide fault-granular phase.
			prog.SetPhase(repro.PhaseGenerate, len(faults))
			if gerr != nil {
				merge.Flush()
				return gerr
			}
			if merr := mergeShard(repro.WireShardSolutions(sols)); merr != nil {
				merge.Flush()
				return merr
			}
			gate.emit("shard_done",
				obs.String("shard", sh.id), obs.String("worker", "local"),
				obs.Int("solutions", len(sols)))
			prog.Step(len(faults) - merge.Remaining())
		}
	}

	sols, err := merge.Solutions()
	if err != nil {
		return err
	}
	quar := append(workerQuar, repro.WireQuarantines(sys.Quarantined())...)
	sort.Slice(quar, func(a, b int) bool {
		if quar[a].FaultID != quar[b].FaultID {
			return quar[a].FaultID < quar[b].FaultID
		}
		return quar[a].Config < quar[b].Config
	})
	j.mu.Lock()
	j.verdicts = repro.WireVerdicts(sols)
	j.quarantined = quar
	j.mu.Unlock()

	copt := repro.DefaultCompactOptions()
	copt.Delta = delta
	cts, err := sys.CompactContext(ctx, sols, copt)
	if err != nil {
		return err
	}
	cov, err := sys.CoverageContext(ctx, repro.TestsOfCompact(cts), faults)
	if err != nil {
		return err
	}

	out, err := api.Encode(repro.WireResult(sys, faults, sols, cts, cov, copt.Delta))
	if err != nil {
		return err
	}
	return writeFileAtomic(j.paths.Result, out)
}
