package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Hub is a fan-out obs.Sink: every trace event of a job is broadcast to
// the subscribed SSE streams. Emit never blocks the producing run — a
// subscriber that stops draining loses events (its channel buffer
// overflows and events are dropped), which is the right trade for a
// monitoring stream riding on top of the authoritative journal file.
// Dropped events are counted (Dropped), so a lossy stream is visible in
// the job status instead of silently incomplete.
type Hub struct {
	mu      sync.Mutex
	subs    map[chan obs.Event]struct{}
	closed  bool
	dropped atomic.Uint64
}

// NewHub returns an open hub with no subscribers.
func NewHub() *Hub {
	return &Hub{subs: make(map[chan obs.Event]struct{})}
}

// Emit implements obs.Sink.
func (h *Hub) Emit(ev obs.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			// Slow subscriber: drop, never block the run.
			h.dropped.Add(1)
		}
	}
}

// Dropped returns the number of events lost to slow subscribers over
// the hub's lifetime.
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// Subscribe registers a buffered event stream and returns it with its
// cancel function. On a closed hub the returned channel is already
// closed (the job is over; the journal file has the full record).
func (h *Hub) Subscribe(buf int) (<-chan obs.Event, func()) {
	if buf <= 0 {
		buf = 256
	}
	ch := make(chan obs.Event, buf)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	return ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}

// Close seals the hub: all subscriber channels are closed (ending their
// SSE streams) and later Emits are dropped.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// multiSink tees trace events to several sinks (journal file + hub).
type multiSink []obs.Sink

// Emit implements obs.Sink.
func (m multiSink) Emit(ev obs.Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
