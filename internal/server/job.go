package server

import (
	"sync"
	"time"

	"repro"
	"repro/api"
	"repro/internal/ckpt"
	"repro/internal/obs"
)

// Job is the in-memory state of one submission. Mutable fields are
// guarded by mu; the persisted projection (jobRecord) is written through
// the ckpt store on every state transition, so a killed daemon can
// rebuild the registry on restart.
type Job struct {
	ID string

	mu       sync.Mutex
	req      api.JobRequest
	state    api.JobState
	created  time.Time
	started  *time.Time
	finished *time.Time
	errMsg   string
	// attempts counts runner starts; > 1 means the job was resumed after
	// a crash or drain.
	attempts int
	// resume forces checkpoint resume on the next start (set when the
	// job is recovered from disk).
	resume bool
	// enqueued is when the job last entered the submission queue (zero
	// for jobs rebuilt from disk in a terminal state); runJob turns it
	// into the queue-wait observation.
	enqueued     time.Time
	userCanceled bool
	verdicts     map[api.Verdict]int
	quarantined  []api.QuarantineInfo

	// Live plumbing, non-nil only while running.
	prog   *obs.Progress
	cancel func()

	hub   *Hub
	paths ckpt.JobPaths
}

// jobRecord is the durable projection of a Job (jobs/<id>/job.json).
type jobRecord struct {
	V           int                  `json:"v"`
	ID          string               `json:"id"`
	State       api.JobState         `json:"state"`
	Created     time.Time            `json:"created"`
	Started     *time.Time           `json:"started,omitempty"`
	Finished    *time.Time           `json:"finished,omitempty"`
	Error       string               `json:"error,omitempty"`
	Attempts    int                  `json:"attempts,omitempty"`
	Verdicts    map[api.Verdict]int  `json:"verdicts,omitempty"`
	Quarantined []api.QuarantineInfo `json:"quarantined,omitempty"`
	Request     api.JobRequest       `json:"request"`
}

// record builds the durable projection under the job's lock.
func (j *Job) record() jobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobRecord{
		V:           api.Version,
		ID:          j.ID,
		State:       j.state,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Error:       j.errMsg,
		Attempts:    j.attempts,
		Verdicts:    j.verdicts,
		Quarantined: j.quarantined,
		Request:     j.req,
	}
}

// jobFromRecord rebuilds a Job from its durable projection.
func jobFromRecord(rec jobRecord, paths ckpt.JobPaths) *Job {
	return &Job{
		ID:          rec.ID,
		req:         rec.Request,
		state:       rec.State,
		created:     rec.Created,
		started:     rec.Started,
		finished:    rec.Finished,
		errMsg:      rec.Error,
		attempts:    rec.Attempts,
		verdicts:    rec.Verdicts,
		quarantined: rec.Quarantined,
		hub:         NewHub(),
		paths:       paths,
	}
}

// Status builds the wire status of the job, including a live progress
// snapshot while it runs.
func (j *Job) Status() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := api.JobStatus{
		V:           api.Version,
		ID:          j.ID,
		State:       j.state,
		Created:     j.created,
		Started:     j.started,
		Finished:    j.finished,
		Verdicts:    j.verdicts,
		Quarantined: j.quarantined,
		Error:       j.errMsg,
		Attempts:    j.attempts,
	}
	if j.hub != nil {
		st.EventsDropped = j.hub.Dropped()
	}
	if j.state == api.StateRunning && j.prog != nil {
		p := repro.WireProgress(j.prog.Snapshot())
		st.Progress = &p
	}
	return st
}

// State returns the job's current lifecycle state.
func (j *Job) State() api.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Request returns a copy of the job's submission request.
func (j *Job) Request() api.JobRequest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.req
}
