package server

// The daemon's Prometheus surface: the latency middleware feeding the
// per-route HTTP histograms, and the text exposition combining the
// atpgd_* server series with the atpg_* engine series of the running
// (or last finished) job.

import (
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/api"
	"repro/internal/obs/export"
	"repro/internal/obs/hist"
)

// timed is the HTTP latency middleware: every request records its wall
// time into the histogram of its route class. SSE streams ("events")
// are included — their durations are connection lifetimes, which the
// route label keeps out of the request-latency series.
func (s *Server) timed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		next.ServeHTTP(w, r)
		s.httpLat.Observe(routeClass(r), int64(time.Since(t0)))
	})
}

// routeClass maps a request onto a bounded label set: path parameters
// collapse to {id} so per-job URLs don't mint unbounded series, and
// unknown paths share one bucket. (Classification is by prefix because
// the mux match isn't observable from middleware on this Go version.)
func routeClass(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/jobs":
		return r.Method + " /v1/jobs"
	case strings.HasPrefix(p, "/v1/jobs/"):
		rest := strings.TrimPrefix(p, "/v1/jobs/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i:] {
			case "/result", "/events":
				return r.Method + " /v1/jobs/{id}" + rest[i:]
			}
			return r.Method + " other"
		}
		return r.Method + " /v1/jobs/{id}"
	case p == "/v1/workers":
		return r.Method + " /v1/workers"
	case strings.HasPrefix(p, "/v1/workers/"):
		rest := strings.TrimPrefix(p, "/v1/workers/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i:] {
			case "/poll", "/heartbeat", "/result":
				return r.Method + " /v1/workers/{id}" + rest[i:]
			}
		}
		return r.Method + " other"
	case p == "/v1/server", p == "/metrics", p == "/progress",
		p == "/healthz", p == "/readyz", p == "/":
		return r.Method + " " + p
	case strings.HasPrefix(p, "/debug/pprof/"):
		return r.Method + " /debug/pprof/*"
	default:
		return r.Method + " other"
	}
}

// wireHist converts a histogram snapshot into the wire shape the
// exposition writer consumes.
func wireHist(s hist.Snapshot) api.HistogramSnapshot {
	out := api.HistogramSnapshot{
		Count: s.Count, Sum: s.Sum, Min: s.Min, Max: s.Max,
		P50: s.P50(), P90: s.P90(), P99: s.P99(),
	}
	for _, b := range s.Buckets {
		out.Buckets = append(out.Buckets, api.HistogramBucket{Lo: b.Lower, Hi: b.Upper, Count: b.Count})
	}
	return out
}

// writeProm renders the daemon's text exposition (format 0.0.4): queue
// and lifecycle gauges, the SSE drop counter, the queue-wait / job-
// duration / HTTP-latency histograms, and the engine series of the
// running job (or, when idle, of the last finished one).
func (s *Server) writeProm(w io.Writer) {
	p := &export.PromText{}
	st := s.status()
	p.Gauge("atpgd_uptime_seconds", "Daemon uptime.", nil, float64(st.UptimeMS)/1e3)
	p.Gauge("atpgd_queue_depth", "Jobs waiting in the submission queue.", nil, float64(st.QueueDepth))
	p.Gauge("atpgd_queue_cap", "Submission queue capacity.", nil, float64(st.QueueCap))
	draining := 0.0
	if st.State == "draining" {
		draining = 1
	}
	p.Gauge("atpgd_draining", "1 while the daemon drains (readyz 503).", nil, draining)
	states := make([]string, 0, len(st.Jobs))
	for state := range st.Jobs {
		states = append(states, string(state))
	}
	sort.Strings(states)
	for _, state := range states {
		p.Gauge("atpgd_jobs", "Jobs per lifecycle state.",
			export.PromLabels{{"state", state}}, float64(st.Jobs[api.JobState(state)]))
	}
	p.Counter("atpgd_sse_events_dropped_total", "SSE events lost to slow subscribers across all jobs.",
		nil, float64(st.EventsDropped))
	p.Counter("atpgd_memory_shed_total", "Submissions rejected by the memory watermark monitor.",
		nil, float64(st.MemShedTotal))
	shedding := 0.0
	if st.MemShedding {
		shedding = 1
	}
	p.Gauge("atpgd_memory_shedding", "1 while the heap is over the high watermark and submissions are shed.",
		nil, shedding)
	if s.opt.MemHighWater > 0 {
		p.Gauge("atpgd_heap_bytes", "Live heap as last sampled by the memory monitor.",
			nil, float64(s.heapBytes.Load()))
	}
	if s.coord != nil {
		snap := s.coord.snapshot()
		p.Gauge("atpgd_workers", "Registered shard workers.", nil, float64(len(snap.Workers)))
		p.Gauge("atpgd_shards_pending", "Shards queued for assignment.", nil, float64(snap.Pending))
		p.Counter("atpgd_shards_assigned_total", "Shard assignments handed to workers (retries included).",
			nil, float64(snap.Assigned))
		p.Counter("atpgd_shards_requeued_total", "Shards re-queued after lease expiry or worker loss.",
			nil, float64(snap.Requeued))
		p.Counter("atpgd_shards_completed_total", "Shard results accepted and merged.",
			nil, float64(snap.Completed))
		sort.Slice(snap.Workers, func(a, b int) bool { return snap.Workers[a].Name < snap.Workers[b].Name })
		for _, w := range snap.Workers {
			p.Counter("atpgd_worker_shards_completed_total", "Shards delivered per registered worker.",
				export.PromLabels{{"worker", w.Name}}, float64(w.Completed))
		}
	}
	if qs := s.queueWait.Snapshot(); qs.Count > 0 {
		p.Histogram("atpgd_queue_wait_seconds", "Time jobs spent queued before a worker picked them up.",
			nil, wireHist(qs), 1e-9)
	}
	if js := s.jobDur.Snapshot(); js.Count > 0 {
		p.Histogram("atpgd_job_duration_seconds", "Wall time of job execution attempts.",
			nil, wireHist(js), 1e-9)
	}
	for _, h := range s.httpLat.Snapshot() {
		if h.Count == 0 {
			continue
		}
		p.Histogram("atpgd_http_request_duration_seconds", "HTTP request latency per route class.",
			export.PromLabels{{"route", h.Name}}, wireHist(h.Snapshot), 1e-9)
	}
	if fn := s.engineLive.Load(); fn != nil && *fn != nil {
		export.PromFromMetrics(p, (*fn)())
	} else if last := s.lastEngine.Load(); last != nil {
		export.PromFromMetrics(p, *last)
	}
	_, _ = p.WriteTo(w)
}
