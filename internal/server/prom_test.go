package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/api"
	"repro/internal/obs"
	"repro/internal/obs/export"
)

// scrape fetches /metrics with the given Accept header.
func scrape(t *testing.T, base, accept string) (*http.Response, []byte) {
	t.Helper()
	req, _ := http.NewRequest("GET", base+"/metrics", nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// TestPromExposition: after a job runs, the text exposition carries the
// daemon's queue/job histograms and validates with the in-repo parser;
// the JSON default stays a ServerStatus.
func TestPromExposition(t *testing.T) {
	_, hs := newTestServer(t, Options{}, instantExec)
	st := submit(t, hs.URL, api.JobRequest{V: 1})
	waitState(t, hs.URL, st.ID, api.StateSucceeded)

	resp, body := scrape(t, hs.URL, "text/plain")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if resp.Header.Get("Cache-Control") != "no-store" {
		t.Fatalf("cache-control %q", resp.Header.Get("Cache-Control"))
	}
	doc, err := export.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, fam := range []string{"atpgd_queue_wait_seconds", "atpgd_job_duration_seconds"} {
		if doc.Types[fam] != "histogram" {
			t.Errorf("%s: type %q, want histogram", fam, doc.Types[fam])
			continue
		}
		var buckets, count int
		for _, s := range doc.Family(fam) {
			if strings.HasSuffix(s.Name, "_bucket") {
				buckets++
			}
			if strings.HasSuffix(s.Name, "_count") {
				count++
			}
		}
		if buckets == 0 || count != 1 {
			t.Errorf("%s: %d buckets, %d counts", fam, buckets, count)
		}
	}
	var sawQueue, sawJobs bool
	for _, s := range doc.Samples {
		switch s.Name {
		case "atpgd_queue_cap":
			sawQueue = true
		case "atpgd_jobs":
			sawJobs = true
		}
	}
	if !sawQueue || !sawJobs {
		t.Fatalf("gauges missing (queue_cap %v, jobs %v)\n%s", sawQueue, sawJobs, body)
	}

	// The HTTP latency middleware has observed the earlier requests by
	// now; a second scrape must carry the per-route histogram.
	_, body = scrape(t, hs.URL, "text/plain")
	if !bytes.Contains(body, []byte(`atpgd_http_request_duration_seconds_bucket{route="GET /metrics"`)) {
		t.Fatalf("no http latency series for GET /metrics:\n%s", body)
	}
	if _, err := export.ParseProm(bytes.NewReader(body)); err != nil {
		t.Fatalf("second exposition invalid: %v", err)
	}

	// JSON stays the default shape.
	resp, body = scrape(t, hs.URL, "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	if !bytes.Contains(body, []byte(`"queue_cap"`)) {
		t.Fatalf("JSON default lost ServerStatus shape: %s", body)
	}
}

// TestPromEngineSeries: a job executed through a stub that seals an
// engine snapshot surfaces atpg_* series on the daemon exposition.
func TestPromEngineSeries(t *testing.T) {
	s, hs := newTestServer(t, Options{}, func(ctx context.Context, j *Job, resume bool) error {
		return writeFileAtomic(j.paths.Result, []byte("{}\n"))
	})
	snap := api.MetricsSnapshot{
		V:      api.Version,
		Phases: []api.PhaseMetrics{{Name: "optimize", Count: 2, WallNS: 1000}},
		Solver: api.SolverMetrics{Solves: 5},
	}
	s.lastEngine.Store(&snap)
	_, body := scrape(t, hs.URL, "text/plain")
	doc, err := export.ParseProm(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	found := false
	for _, smp := range doc.Samples {
		if smp.Name == "atpg_phase_units_total" && smp.Labels["phase"] == "optimize" && smp.Value == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("engine series missing:\n%s", body)
	}
}

// TestEventsDroppedSurfaced: a hub with no draining subscriber counts
// drops, and both the job status and the server status carry them.
func TestEventsDroppedSurfaced(t *testing.T) {
	release := make(chan struct{})
	_, hs := newTestServer(t, Options{}, func(ctx context.Context, j *Job, resume bool) error {
		// One subscriber with a tiny buffer that never drains.
		_, unsub := j.hub.Subscribe(1)
		defer unsub()
		for i := 0; i < 10; i++ {
			j.hub.Emit(obs.Event{Type: "spam"})
		}
		<-release
		return writeFileAtomic(j.paths.Result, []byte("{}\n"))
	})
	st := submit(t, hs.URL, api.JobRequest{V: 1})
	waitState(t, hs.URL, st.ID, api.StateRunning)
	// 10 emits into a 1-buffer channel: ≥ 9 drops, visible while running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if js := getStatus(t, hs.URL, st.ID); js.EventsDropped >= 9 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job status never reported dropped events")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var sst api.ServerStatus
	resp, err := http.Get(hs.URL + "/v1/server")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp, &sst); err != nil {
		t.Fatal(err)
	}
	if sst.EventsDropped < 9 {
		t.Fatalf("server status EventsDropped = %d, want >= 9", sst.EventsDropped)
	}
	_, body := scrape(t, hs.URL, "text/plain")
	if !bytes.Contains(body, []byte("atpgd_sse_events_dropped_total")) {
		t.Fatalf("drop counter missing from exposition:\n%s", body)
	}
	close(release)
	waitState(t, hs.URL, st.ID, api.StateSucceeded)
}

// TestReadyzDrain: /readyz says accepting while serving and 503s the
// moment the drain begins, while /metrics stays reachable.
func TestReadyzDrain(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, hs := newTestServer(t, Options{}, func(ctx context.Context, j *Job, resume bool) error {
		defer once.Do(func() { close(release) })
		<-ctx.Done()
		return ctx.Err()
	})
	st := submit(t, hs.URL, api.JobRequest{V: 1})
	waitState(t, hs.URL, st.ID, api.StateRunning)

	code, body := httpGet(t, hs.URL+"/readyz")
	if code != http.StatusOK || !bytes.Contains(body, []byte(`"accepting": true`)) {
		t.Fatalf("/readyz while serving: %d %s", code, body)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	<-release
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body = httpGet(t, hs.URL+"/readyz")
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/readyz never went unready during drain: %d %s", code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !bytes.Contains(body, []byte(`"accepting": false`)) {
		t.Fatalf("/readyz drain body: %s", body)
	}
	if code, _ := httpGet(t, hs.URL+"/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics during drain: %d", code)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// httpGet fetches a URL and returns status and body.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// jsonDecode decodes an HTTP response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
