package server

import (
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket over job submissions, keyed
// by the client's host (RemoteAddr without the port). It exists to stop
// one misbehaving client from monopolizing the bounded queue, not to be
// a precise traffic shaper.
type rateLimiter struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	b     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter granting rate submissions per second
// with the given burst. rate <= 0 disables limiting.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), b: make(map[string]*bucket)}
}

// clientKey reduces a RemoteAddr to its host part, so every connection
// from one client shares a bucket.
func clientKey(remoteAddr string) string {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		return remoteAddr
	}
	return host
}

// allow consumes one token from key's bucket, reporting whether the
// submission may proceed and, when it may not, how long until the next
// token accrues.
func (l *rateLimiter) allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	bk := l.b[key]
	if bk == nil {
		// Opportunistic pruning keeps the map bounded without a sweeper
		// goroutine: full buckets are idle clients.
		if len(l.b) > 4096 {
			for k, old := range l.b {
				if old.tokens+now.Sub(old.last).Seconds()*l.rate >= l.burst {
					delete(l.b, k)
				}
			}
		}
		bk = &bucket{tokens: l.burst, last: now}
		l.b[key] = bk
	}
	bk.tokens += now.Sub(bk.last).Seconds() * l.rate
	if bk.tokens > l.burst {
		bk.tokens = l.burst
	}
	bk.last = now
	if bk.tokens >= 1 {
		bk.tokens--
		return true, 0
	}
	return false, time.Duration((1 - bk.tokens) / l.rate * float64(time.Second))
}
