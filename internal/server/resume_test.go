package server

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/api"
)

// resumeRequest is the small-but-real job the resume tests run: the
// reduced macro, seed boxes, and a capped fault list keep one run in
// the seconds range while still exercising the full generate → compact
// → coverage pipeline.
func resumeRequest() api.JobRequest {
	return api.JobRequest{
		V:      1,
		Macro:  api.MacroSpec{Builtin: api.MacroSimpleIVConverter},
		Faults: api.FaultSpec{Limit: 4},
		Options: api.RunOptions{
			BoxMode: api.BoxModeSeed,
			Workers: 2,
		},
	}
}

// TestKillRestartResumeBitIdentical is the acceptance test of the
// daemon's durability story: a job interrupted by a drain (the SIGTERM
// path; kill -9 lands in the same recovery code because the persisted
// record still says running) and resumed by a fresh daemon over the
// same data directory must produce a result byte-identical to an
// uninterrupted run of the same request.
func TestKillRestartResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real ATPG runs; skipped under -short")
	}

	// Reference: the same request run uninterrupted (shared with the
	// distributed acceptance tests, which compare against the identical
	// request — one reference run serves the whole package).
	want := distReference(t)
	deadline := time.Now().Add(4 * time.Minute)

	// Interrupted run: drain the daemon once the first checkpoint lands.
	dir := t.TempDir()
	s2, err := New(Options{DataDir: dir, RatePerSec: -1, CheckpointEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	st2 := submit(t, hs2.URL, resumeRequest())
	paths, err := s2.Store().Job(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if _, err := os.Stat(paths.Checkpoint); err == nil {
			break
		}
		if getStatus(t, hs2.URL, st2.ID).State == api.StateSucceeded {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s2.Shutdown(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	dcancel()
	hs2.Close()

	var rec jobRecord
	if err := s2.Store().LoadRecord(st2.ID, &rec); err != nil {
		t.Fatal(err)
	}
	interrupted := rec.State == api.StateInterrupted
	if !interrupted && rec.State != api.StateSucceeded {
		t.Fatalf("after drain job is %s, want interrupted (or already succeeded)", rec.State)
	}

	// Fresh daemon over the same data directory: the interrupted job is
	// re-enqueued with checkpoint resume and runs to completion.
	s3, err := New(Options{DataDir: dir, RatePerSec: -1, CheckpointEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hs3 := httptest.NewServer(s3.Handler())
	defer hs3.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s3.Shutdown(ctx)
	}()
	for getStatus(t, hs3.URL, st2.ID).State != api.StateSucceeded {
		if time.Now().After(deadline) {
			t.Fatalf("resumed job stuck in %s", getStatus(t, hs3.URL, st2.ID).State)
		}
		time.Sleep(100 * time.Millisecond)
	}

	got, err := os.ReadFile(paths.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed:  %d bytes\nuncut:    %d bytes", len(got), len(want))
	}
	if interrupted {
		fin := getStatus(t, hs3.URL, st2.ID)
		if fin.Attempts < 2 {
			t.Fatalf("resumed job attempts = %d, want >= 2", fin.Attempts)
		}
	}
}
